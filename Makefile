# Development entry points for beqos. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race check workload-check bench bench-diff bench-server bench-cluster figures examples cover cover-gate clean

# Benchmarks the regression gate enforces (see bench-diff): the simulator
# validation runs, the enforcement loop, the SCFQ hot path, the
# admission-server throughput suite (ns/op and allocs/op — the serving
# plane's reserve→grant path must stay at 0 allocs/op), the datagram
# transport, the 100k-flow high-concurrency churn, and the per-policy
# admission micro-benchmark (every policy's Admit→Release at 0 allocs/op),
# and the cluster plane (aggregate path-admission churn plus the local-admit
# and forwarded-hop hot paths, both pinned at 0 allocs/op).
BENCH_GATE = BenchmarkS1SimulatedLoad|BenchmarkS2HeavyTailLoad|BenchmarkX4SchedulingEnforcement|BenchmarkMicroSCFQEnqueueDequeue|BenchmarkServerThroughput|BenchmarkServerHighConcurrency|BenchmarkUDPThroughput|BenchmarkPolicyAdmit|BenchmarkClusterThroughput|BenchmarkClusterLocalAdmit|BenchmarkClusterForward

# Absolute metric floors on the fresh bench-diff run (NAME_RE=unit:MIN, see
# cmd/benchjson -floor). The high-concurrency churn measured ~276k req/s
# with 100k standing flows on the CI-class container; 20k req/s is the
# "still fundamentally works at scale" bar, far below normal but well above
# any accidental serialization of the mux or shard paths. The cluster
# aggregate churn measured ~5.4M req/s on the CI-class container; 400k is
# the same order-of-magnitude safety bar. The batched forwarded-hop path
# measured ~2.1M req/s (vs ~190k single-frame); 600k is the "batching still
# pays for itself" bar — roughly 3× the single-frame rate.
BENCH_FLOOR = BenchmarkServerHighConcurrency=req/s:20000,BenchmarkServerHighConcurrency=flows:100000,BenchmarkClusterThroughput/n4=req/s:400000,BenchmarkClusterForwardBatched=req/s:600000

# Packages with concurrency worth racing: the single source of truth for
# both `make race` and CI (which calls `make race`), so the two can never
# drift apart again.
RACE_PKGS = ./internal/core/ ./internal/resv/ ./internal/policy/ ./internal/search/ ./internal/loadgen/ ./internal/sim/ ./internal/sched/ ./internal/sweep/ ./internal/obs/ ./internal/cluster/ ./internal/workload/ ./cmd/beqos/ .

# Coverage floor (percent) enforced by cover-gate on the serving,
# admission-policy, observability, cluster and workload planes.
COVER_PKGS  = ./internal/resv/ ./internal/policy/ ./internal/obs/ ./internal/cluster/ ./internal/workload/
COVER_FLOOR = 70

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Full pre-merge gate: vet, the race-enabled test suite, the policy sweep
# smoke — a live two-cell grid cross-validated against the model — plus
# the workload spec corpus and a scenario-driven live-harness smoke.
check: vet race workload-check
	$(GO) test ./...
	$(GO) run ./cmd/beqos sweep-policy -quick
	$(GO) run ./cmd/beqos load -workload specs/baseline.spec

# Validate the bundled workload spec corpus: every spec must parse (with
# precise line-anchored errors when it does not).
workload-check:
	$(GO) run ./cmd/beqos workload specs

# Run the benchmark suite and archive it as machine-readable JSON. Always
# -benchmem, so every BENCH_core.json entry carries bytes/allocs.
bench:
	$(GO) test -bench=. -benchmem . | tee bench_output.txt | $(GO) run ./cmd/benchjson -o BENCH_core.json
	@echo "wrote BENCH_core.json"

# Benchmark regression gate: rerun the gated benchmarks with -benchmem and
# compare against the committed BENCH_core.json. Fails on >30% ns/op, any
# allocs/op regression, or a BENCH_FLOOR metric below its minimum (see
# cmd/benchjson -diff / -floor). The raw run lands in bench_output.txt and
# the comparison in bench_diff.txt — intermediate files, not a pipeline,
# so a failed gate still leaves both behind for CI to upload and a flaky
# cell can be diagnosed from the artifacts alone.
bench-diff:
	@$(GO) test -bench='$(BENCH_GATE)' -benchmem -run '^$$' . > bench_output.txt || { cat bench_output.txt; exit 1; }
	@$(GO) run ./cmd/benchjson -diff BENCH_core.json -gate '$(BENCH_GATE)' -floor '$(BENCH_FLOOR)' < bench_output.txt > bench_diff.txt; \
	status=$$?; cat bench_diff.txt; exit $$status

# Just the serving-plane suites (sync, pipelined, datagram, and the
# 100k-flow high-concurrency churn; BEQOS_BENCH_1M=1 raises the standing
# population to 1M), for quick iteration on internal/resv.
bench-server:
	$(GO) test -bench='BenchmarkServerThroughput|BenchmarkServerHighConcurrency|BenchmarkUDPThroughput' -benchmem -run '^$$' .

# Just the cluster-plane suites (aggregate N-node churn, the zero-alloc
# local-admit path, and the forwarded-hop path), for quick iteration on
# internal/cluster.
bench-cluster:
	$(GO) test -bench='BenchmarkCluster' -benchmem -run '^$$' .

# Regenerate every paper table and figure into out/ (see EXPERIMENTS.md).
figures:
	$(GO) run ./cmd/figures -out out

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/provisioning
	$(GO) run ./examples/admission
	$(GO) run ./examples/selfsimilar
	$(GO) run ./examples/tradeoff
	$(GO) run ./examples/enforcement

cover:
	$(GO) test -cover ./...

# Coverage gate for the serving + observability planes: writes cover.out
# (CI uploads it as an artifact) and fails below the COVER_FLOOR.
cover-gate:
	$(GO) test -coverprofile=cover.out $(COVER_PKGS)
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	if awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN {exit !(t >= f)}'; then \
		echo "coverage $$total% meets the $(COVER_FLOOR)% floor"; \
	else \
		echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; \
	fi

clean:
	rm -rf out test_output.txt bench_output.txt bench_diff.txt cover.out
