# Development entry points for beqos. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race check bench bench-diff bench-server figures examples cover clean

# Benchmarks the regression gate enforces (see bench-diff): the simulator
# validation runs, the enforcement loop, the SCFQ hot path, and the
# admission-server throughput suite (ns/op and allocs/op — the serving
# plane's reserve→grant path must stay at 0 allocs/op).
BENCH_GATE = BenchmarkS1SimulatedLoad|BenchmarkS2HeavyTailLoad|BenchmarkX4SchedulingEnforcement|BenchmarkMicroSCFQEnqueueDequeue|BenchmarkServerThroughput

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/resv/ ./internal/loadgen/ ./internal/sim/ ./internal/sched/ ./internal/sweep/ .

# Full pre-merge gate: vet plus the race-enabled test suite.
check: vet race
	$(GO) test ./...

# Run the benchmark suite and archive it as machine-readable JSON. Always
# -benchmem, so every BENCH_core.json entry carries bytes/allocs.
bench:
	$(GO) test -bench=. -benchmem . | tee bench_output.txt | $(GO) run ./cmd/benchjson -o BENCH_core.json
	@echo "wrote BENCH_core.json"

# Benchmark regression gate: rerun the gated benchmarks with -benchmem and
# compare against the committed BENCH_core.json. Fails on >30% ns/op or any
# allocs/op regression (see cmd/benchjson -diff).
bench-diff:
	$(GO) test -bench='$(BENCH_GATE)' -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson -diff BENCH_core.json -gate '$(BENCH_GATE)'

# Just the serving-plane throughput suite (net.Pipe + TCP loopback,
# sync and pipelined clients), for quick iteration on internal/resv.
bench-server:
	$(GO) test -bench=BenchmarkServerThroughput -benchmem -run '^$$' .

# Regenerate every paper table and figure into out/ (see EXPERIMENTS.md).
figures:
	$(GO) run ./cmd/figures -out out

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/provisioning
	$(GO) run ./examples/admission
	$(GO) run ./examples/selfsimilar
	$(GO) run ./examples/tradeoff
	$(GO) run ./examples/enforcement

cover:
	$(GO) test -cover ./...

clean:
	rm -rf out test_output.txt bench_output.txt
