# Development entry points for beqos. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race check bench figures examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/resv/ ./internal/sim/ ./internal/sched/ ./internal/sweep/ .

# Full pre-merge gate: vet plus the race-enabled test suite.
check: vet race
	$(GO) test ./...

# Run the benchmark suite and archive it as machine-readable JSON.
bench:
	$(GO) test -bench=. -benchmem . | tee bench_output.txt | $(GO) run ./cmd/benchjson -o BENCH_core.json
	@echo "wrote BENCH_core.json"

# Regenerate every paper table and figure into out/ (see EXPERIMENTS.md).
figures:
	$(GO) run ./cmd/figures -out out

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/provisioning
	$(GO) run ./examples/admission
	$(GO) run ./examples/selfsimilar
	$(GO) run ./examples/tradeoff
	$(GO) run ./examples/enforcement

cover:
	$(GO) test -cover ./...

clean:
	rm -rf out test_output.txt bench_output.txt
