# Development entry points for beqos. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench figures examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/resv/ ./internal/sim/ ./internal/sched/ .

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every paper table and figure into out/ (see EXPERIMENTS.md).
figures:
	$(GO) run ./cmd/figures -out out

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/provisioning
	$(GO) run ./examples/admission
	$(GO) run ./examples/selfsimilar
	$(GO) run ./examples/tradeoff
	$(GO) run ./examples/enforcement

cover:
	$(GO) test -cover ./...

clean:
	rm -rf out test_output.txt bench_output.txt
