package beqos

import (
	"context"
	"net"
	"net/http"
	"time"

	"beqos/internal/obs"
	"beqos/internal/resv"
)

// AdmissionServer is a reservation signaling server for one link: clients
// request reservations, and admission control grants at most kmax(C) of
// them, exactly as the paper's reservation-capable architecture prescribes.
type AdmissionServer struct {
	s *resv.Server
}

// NewAdmissionServer returns a server for a link with the given capacity
// whose applications have the given utility function. Reservations persist
// until torn down or their connection drops.
func NewAdmissionServer(capacity float64, util Utility) (*AdmissionServer, error) {
	s, err := resv.NewServer(capacity, util.f)
	if err != nil {
		return nil, err
	}
	return &AdmissionServer{s: s}, nil
}

// NewAdmissionServerTTL is NewAdmissionServer with RSVP-style soft state:
// reservations expire unless refreshed within ttl (see
// AdmissionClient.Refresh and KeepAlive). Call Close when done.
func NewAdmissionServerTTL(capacity float64, util Utility, ttl time.Duration) (*AdmissionServer, error) {
	s, err := resv.NewServerTTL(capacity, util.f, ttl)
	if err != nil {
		return nil, err
	}
	return &AdmissionServer{s: s}, nil
}

// Close stops the server's soft-state sweeper (if any).
func (a *AdmissionServer) Close() { a.s.Close() }

// NewAdmissionServerBandwidth returns a server that admits by traffic
// specification: a request for rate r is granted exactly r while the sum
// of granted rates stays within capacity. This is the paper's "certain
// amount … of service" admission literally; ttl = 0 disables soft-state
// expiry.
func NewAdmissionServerBandwidth(capacity float64, ttl time.Duration) (*AdmissionServer, error) {
	s, err := resv.NewServerBandwidth(capacity, ttl)
	if err != nil {
		return nil, err
	}
	return &AdmissionServer{s: s}, nil
}

// Allocated returns the sum of granted rates (bandwidth mode) or the
// active count (flow-count mode).
func (a *AdmissionServer) Allocated() float64 { return a.s.Allocated() }

// Serve accepts and serves connections on ln until it closes.
func (a *AdmissionServer) Serve(ln net.Listener) error { return a.s.Serve(ln) }

// ServePacket serves the reservation protocol in datagram mode on pc: one
// frame per datagram, no connection state, client retransmissions answered
// from the live reservation so a re-sent reserve never admits twice (see
// DESIGN.md §11). It blocks until pc closes. A server may serve stream and
// datagram transports at once.
func (a *AdmissionServer) ServePacket(pc net.PacketConn) error { return a.s.ServePacket(pc) }

// HandleConn serves one established connection (useful with net.Pipe).
func (a *AdmissionServer) HandleConn(nc net.Conn) { a.s.HandleConn(nc) }

// Active returns the number of current reservations.
func (a *AdmissionServer) Active() int { return a.s.Active() }

// KMax returns the admission threshold.
func (a *AdmissionServer) KMax() int { return a.s.KMax() }

// Shards returns the lock-stripe width of the server's soft-state tables
// (see DESIGN.md §8).
func (a *AdmissionServer) Shards() int { return a.s.Shards() }

// SetLogf installs a logging callback for protocol events.
func (a *AdmissionServer) SetLogf(logf func(format string, args ...interface{})) {
	a.s.Logf = logf
}

// DebugHandler returns the server's observability endpoints — /metrics
// (Prometheus text, or JSON with ?format=json), /metrics.json, /healthz and
// /debug/pprof/* — ready to mount on any listener (see `beqos serve
// -debug-addr`). The underlying instruments are lock-free; scraping them
// never perturbs the admission path.
func (a *AdmissionServer) DebugHandler() http.Handler {
	return obs.DebugMux(a.s.Registry())
}

// AdmissionClient requests reservations from an AdmissionServer.
type AdmissionClient struct {
	c *resv.Client
}

// DialAdmission connects to an admission server.
func DialAdmission(ctx context.Context, network, addr string) (*AdmissionClient, error) {
	c, err := resv.Dial(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return &AdmissionClient{c: c}, nil
}

// NewAdmissionClient wraps an established connection.
func NewAdmissionClient(nc net.Conn) *AdmissionClient {
	return &AdmissionClient{c: resv.NewClient(nc)}
}

// DialAdmissionUDP connects to an admission server's datagram endpoint
// (AdmissionServer.ServePacket). Requests are retransmitted up to
// maxFlights times after timeout-long silences; the server answers a
// retransmission from the live reservation, so a re-sent reserve never
// admits twice. Zero timeout and maxFlights mean 250ms and 4 flights.
func DialAdmissionUDP(ctx context.Context, addr string, timeout time.Duration, maxFlights int) (*AdmissionClient, error) {
	c, err := resv.DialUDP(ctx, addr, resv.UDPConfig{Timeout: timeout, MaxFlights: maxFlights})
	if err != nil {
		return nil, err
	}
	return &AdmissionClient{c: c}, nil
}

// Close drops the connection, releasing all reservations made through it.
func (a *AdmissionClient) Close() error { return a.c.Close() }

// Reserve requests a reservation for flowID.
func (a *AdmissionClient) Reserve(ctx context.Context, flowID uint64, bandwidth float64) (granted bool, share float64, err error) {
	return a.c.Reserve(ctx, flowID, bandwidth)
}

// Teardown releases flowID's reservation.
func (a *AdmissionClient) Teardown(ctx context.Context, flowID uint64) error {
	return a.c.Teardown(ctx, flowID)
}

// Stats returns the server's admission threshold and active count.
func (a *AdmissionClient) Stats(ctx context.Context) (kmax, active int, err error) {
	return a.c.Stats(ctx)
}

// Refresh renews flowID's soft-state deadline on a TTL server, returning
// the server's TTL.
func (a *AdmissionClient) Refresh(ctx context.Context, flowID uint64) (time.Duration, error) {
	return a.c.Refresh(ctx, flowID)
}

// KeepAlive refreshes flowID at the given interval until ctx is canceled
// or a refresh fails; it blocks.
func (a *AdmissionClient) KeepAlive(ctx context.Context, flowID uint64, interval time.Duration) error {
	return a.c.KeepAlive(ctx, flowID, interval)
}

// AdmissionRetryPolicy governs ReserveWithRetry, the live counterpart of
// the paper's §5.2 retrying extension. Zero-valued backoff fields default
// sensibly: only MaxAttempts is required.
type AdmissionRetryPolicy struct {
	// MaxAttempts bounds total attempts (≥ 1).
	MaxAttempts int
	// BaseDelay is the wait before the first retry (0 = retry
	// immediately); Multiplier scales it after each attempt (≥ 1; 0 means
	// 1, a constant delay); Jitter in [0, 1] randomizes each delay by
	// ±Jitter·delay (0 = no jitter).
	BaseDelay  time.Duration
	Multiplier float64
	Jitter     float64
}

// withDefaults fills unset backoff parameters, the same way UDPConfig
// defaults its zero values: a zero-value-plus-MaxAttempts policy must be
// usable, not rejected by the transport's validation.
func (p AdmissionRetryPolicy) withDefaults() AdmissionRetryPolicy {
	if p.Multiplier == 0 {
		p.Multiplier = 1
	}
	return p
}

// ReserveWithRetry requests a reservation, retrying denials with backoff.
// It returns the number of retries performed so callers can account the
// paper's per-retry utility penalty α.
func (a *AdmissionClient) ReserveWithRetry(ctx context.Context, flowID uint64, bandwidth float64, policy AdmissionRetryPolicy) (granted bool, share float64, retries int, err error) {
	policy = policy.withDefaults()
	return a.c.ReserveWithRetry(ctx, flowID, bandwidth, resv.RetryPolicy{
		MaxAttempts: policy.MaxAttempts,
		BaseDelay:   policy.BaseDelay,
		Multiplier:  policy.Multiplier,
		Jitter:      policy.Jitter,
	})
}
