// Cluster-plane benchmarks: distributed path admission throughput across
// in-process node fleets, the zero-alloc local-admit hot path, and the
// forwarded-hop path over the mux peer transport. One op is a full path
// reserve→grant plus teardown→ok cycle (two protocol round trips), so
// requests/sec = 2e9 / (ns/op), aggregated across every entry node.
// `make bench-diff` gates BenchmarkClusterThroughput with an absolute
// req/s floor alongside the serving-plane benchmarks.
package beqos_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"beqos/internal/cluster"
	"beqos/internal/resv"
)

// benchClusterStart assembles and starts an in-process cluster over spec.
// Gossip ticks are disabled: these benchmarks measure the admission and
// transport paths, not anti-entropy scheduling.
func benchClusterStart(b *testing.B, spec string) *cluster.Cluster {
	b.Helper()
	topo, err := cluster.ParseTopology(spec)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Topology: topo, AntiEntropy: -1})
	if err != nil {
		b.Fatal(err)
	}
	cl.Start()
	b.Cleanup(cl.Close)
	return cl
}

// clusterChurn runs workersPer Local handles per node, each cycling
// reserve→teardown on its node's own pair, until every op of b.N is spent.
// Handles and goroutines are set up outside the timed region (start-gate),
// so the measurement sees only the admission path.
func clusterChurn(b *testing.B, cl *cluster.Cluster, workersPer int) {
	nodes := cl.Len()
	type worker struct {
		l    *cluster.Local
		pair int
		seq  uint64
	}
	var workers []worker
	for ni := 0; ni < nodes; ni++ {
		for w := 0; w < workersPer; w++ {
			workers = append(workers, worker{l: cl.Node(ni).NewLocal(), pair: ni, seq: uint64(w + 1)})
		}
	}
	// Warm every free list and map bucket before the timer.
	for _, w := range workers {
		for i := 0; i < 4; i++ {
			if granted, _, err := w.l.Reserve(w.pair, w.seq, 1); err != nil || !granted {
				b.Fatalf("warmup reserve: granted=%v err=%v", granted, err)
			}
			if err := w.l.Teardown(w.pair, w.seq); err != nil {
				b.Fatal(err)
			}
		}
	}
	iters := b.N/len(workers) + 1
	start := make(chan struct{})
	var wg sync.WaitGroup
	var failed atomic.Bool
	for _, w := range workers {
		wg.Add(1)
		go func(w worker) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				granted, _, err := w.l.Reserve(w.pair, w.seq, 1)
				if err != nil || !granted {
					failed.Store(true)
					return
				}
				if err := w.l.Teardown(w.pair, w.seq); err != nil {
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	b.ReportAllocs()
	b.ResetTimer()
	close(start)
	wg.Wait()
	b.StopTimer()
	if failed.Load() {
		b.Fatal("a churn worker failed")
	}
	reportReqRate(b)
}

// BenchmarkClusterThroughput is the scale-out headline: aggregate path
// admission churn across every entry node of an N-node ring, each node
// placing on its own locally-owned link. n1 is the single-node baseline
// the N=4 aggregate is judged against (on multi-core hosts N=4 rides N
// independent links and admission planes).
func BenchmarkClusterThroughput(b *testing.B) {
	for _, nodes := range []int{1, 4} {
		b.Run(fmt.Sprintf("n%d", nodes), func(b *testing.B) {
			cl := benchClusterStart(b, cluster.Ring(nodes, 1<<20, false))
			clusterChurn(b, cl, 2)
		})
	}
}

// BenchmarkClusterLocalAdmit pins the local-admit hot path: one entry
// node, one locally-owned link, serial reserve→teardown. Must stay at
// 0 allocs/op — claims and path-flow records ride free lists.
func BenchmarkClusterLocalAdmit(b *testing.B) {
	cl := benchClusterStart(b, "node a\nlink l a 1048576\npath p l\npair x a a p\n")
	l := cl.Node(0).NewLocal()
	for i := 0; i < 4; i++ {
		if granted, _, err := l.Reserve(0, 1, 1); err != nil || !granted {
			b.Fatalf("warmup: granted=%v err=%v", granted, err)
		}
		if err := l.Teardown(0, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		granted, _, err := l.Reserve(0, 1, 1)
		if err != nil || !granted {
			b.Fatalf("reserve: granted=%v err=%v", granted, err)
		}
		if err := l.Teardown(0, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportReqRate(b)
}

// BenchmarkClusterForward pins the forwarded-hop path: the entry node owns
// nothing, so every reserve and teardown crosses the mux peer transport to
// the link's owner and back. Must stay at 0 allocs/op on the entry side —
// hops ride the mux client's pooled call slots and vectored writes.
func BenchmarkClusterForward(b *testing.B) {
	cl := benchClusterStart(b, "node entry\nnode owner\nlink l owner 1048576\npath p l\npair x entry owner p\n")
	l := cl.Node(0).NewLocal()
	for i := 0; i < 4; i++ {
		if granted, _, err := l.Reserve(0, 1, 1); err != nil || !granted {
			b.Fatalf("warmup: granted=%v err=%v", granted, err)
		}
		if err := l.Teardown(0, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		granted, _, err := l.Reserve(0, 1, 1)
		if err != nil || !granted {
			b.Fatalf("reserve: granted=%v err=%v", granted, err)
		}
		if err := l.Teardown(0, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportReqRate(b)
}

// BenchmarkClusterForwardBatched is the batched counterpart of
// BenchmarkClusterForward: the same all-remote topology, but each op moves
// a full resv.MaxBatch of flows through one batched dispatch — the hop
// claims coalesce into multi-reserve frames on the peer transport, so 64
// flows pay a handful of RPC round trips instead of 64. One op is
// 64 reserves + 64 teardowns (128 requests); `make bench-diff` holds the
// req/s metric to an absolute floor ≥3x the single-flow forward path.
// Must stay at 0 allocs/op on the entry side.
func BenchmarkClusterForwardBatched(b *testing.B) {
	cl := benchClusterStart(b, "node entry\nnode owner\nlink l owner 1048576\npath p l\npair x entry owner p\n")
	l := cl.Node(0).NewLocal()
	seqs := make([]uint64, resv.MaxBatch)
	for i := range seqs {
		seqs[i] = uint64(i + 1)
	}
	for i := 0; i < 4; i++ {
		v, _, err := l.ReserveBatch(0, seqs, 1)
		if err != nil || v.Count() != len(seqs) {
			b.Fatalf("warmup batch reserve: granted %d/%d err=%v", v.Count(), len(seqs), err)
		}
		tv, err := l.TeardownBatch(0, seqs)
		if err != nil || tv.Count() != len(seqs) {
			b.Fatalf("warmup batch teardown: ok %d/%d err=%v", tv.Count(), len(seqs), err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _, err := l.ReserveBatch(0, seqs, 1)
		if err != nil || v.Count() != len(seqs) {
			b.Fatalf("batch reserve: granted %d/%d err=%v", v.Count(), len(seqs), err)
		}
		tv, err := l.TeardownBatch(0, seqs)
		if err != nil || tv.Count() != len(seqs) {
			b.Fatalf("batch teardown: ok %d/%d err=%v", tv.Count(), len(seqs), err)
		}
	}
	b.StopTimer()
	reportReqRateN(b, 2*len(seqs))
}

// TestClusterAggregateScaling is the scale-out acceptance check: with four
// real cores, a 4-node cluster's aggregate admission throughput must reach
// at least 3× the single-node baseline at equal offered concurrency. The
// measurement needs unshared cores and native speed, so it skips on small
// hosts, under -short, and under the race detector.
func TestClusterAggregateScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("scaling measurement skipped under the race detector")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("scaling measurement needs ≥4 CPUs, have %d", runtime.NumCPU())
	}
	measure := func(nodes, workersPer int) float64 {
		topo, err := cluster.ParseTopology(cluster.Ring(nodes, 1<<20, false))
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(cluster.Config{Topology: topo, AntiEntropy: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		cl.Start()
		const d = 300 * time.Millisecond
		var ops atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for ni := 0; ni < nodes; ni++ {
			for w := 0; w < workersPer; w++ {
				wg.Add(1)
				go func(ni int, seq uint64) {
					defer wg.Done()
					l := cl.Node(ni).NewLocal()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if granted, _, err := l.Reserve(ni, seq, 1); err != nil || !granted {
							t.Errorf("reserve: granted=%v err=%v", granted, err)
							return
						}
						if err := l.Teardown(ni, seq); err != nil {
							t.Error(err)
							return
						}
						ops.Add(1)
					}
				}(ni, uint64(w+1))
			}
		}
		time.Sleep(d)
		close(stop)
		wg.Wait()
		return float64(ops.Load()) / d.Seconds()
	}
	// Equal offered concurrency: 4 workers total in both shapes.
	single := measure(1, 4)
	quad := measure(4, 1)
	t.Logf("aggregate churn: n1 = %.0f ops/s, n4 = %.0f ops/s (%.2fx)", single, quad, quad/single)
	if quad < 3*single {
		t.Errorf("4-node aggregate %.0f ops/s is below 3x the single-node %.0f ops/s", quad, single)
	}
}
