package beqos_test

import (
	"testing"

	"beqos/internal/policy"
)

// BenchmarkPolicyAdmit measures the admission decision itself — one
// Admit→Release cycle per op, no protocol framing — for every policy, with
// allocs/op reported so the zero-allocation default paths are gated by
// `make bench-diff` alongside the end-to-end server benchmarks.
func BenchmarkPolicyAdmit(b *testing.B) {
	const capacity = 8.0
	const kmax = 8
	mk := func(f func() (policy.Policy, error)) policy.Policy {
		p, err := f()
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		pol  policy.Policy
		rate float64
	}{
		{"counting", mk(func() (policy.Policy, error) { return policy.NewCounting(capacity, kmax) }), 0},
		{"bandwidth", mk(func() (policy.Policy, error) { return policy.NewBandwidth(capacity) }), 1},
		{"token-bucket", mk(func() (policy.Policy, error) {
			inner, err := policy.NewCounting(capacity, kmax)
			if err != nil {
				return nil, err
			}
			return policy.NewTokenBucket(inner, 1e9, 1<<20)
		}), 0},
		{"tiered", mk(func() (policy.Policy, error) { return policy.NewTiered(capacity, kmax, 6, 4) }), 0},
		{"measured", mk(func() (policy.Policy, error) { return policy.NewMeasured(capacity, kmax, kmax+2, 1) }), 0},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			now := int64(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += 1000 // advance the policy clock 1µs per decision
				dec := tc.pol.Admit(now, uint64(i), tc.rate, policy.ClassStandard)
				if dec.Admit {
					tc.pol.Release(now, tc.rate)
				}
			}
		})
	}
}

// BenchmarkPolicyAdmitN measures the vectored admission path — one
// AdmitBatch(64)→ReleaseBatch(64) cycle per op. Counting, bandwidth, and
// tiered take their native AdmitN fast path (one CAS for the whole run);
// token-bucket and measured fall back to the conformance-tested serial
// loop. The req-rate comparison against BenchmarkPolicyAdmit is the
// per-decision amortization batching buys below the wire.
func BenchmarkPolicyAdmitN(b *testing.B) {
	const capacity = 128.0
	const kmax = 128
	const batch = 64
	mk := func(f func() (policy.Policy, error)) policy.Policy {
		p, err := f()
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		pol  policy.Policy
		rate float64
	}{
		{"counting", mk(func() (policy.Policy, error) { return policy.NewCounting(capacity, kmax) }), 0},
		{"bandwidth", mk(func() (policy.Policy, error) { return policy.NewBandwidth(capacity) }), 1},
		{"token-bucket", mk(func() (policy.Policy, error) {
			inner, err := policy.NewCounting(capacity, kmax)
			if err != nil {
				return nil, err
			}
			return policy.NewTokenBucket(inner, 1e9, 1<<20)
		}), 0},
		{"tiered", mk(func() (policy.Policy, error) { return policy.NewTiered(capacity, kmax, 96, 64) }), 0},
		{"measured", mk(func() (policy.Policy, error) { return policy.NewMeasured(capacity, kmax, kmax+2, 1) }), 0},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			now := int64(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += 1000
				granted, _ := policy.AdmitBatch(tc.pol, now, uint64(i), tc.rate, policy.ClassStandard, batch)
				if granted != batch {
					b.Fatalf("granted %d/%d with %d slots free", granted, batch, kmax)
				}
				policy.ReleaseBatch(tc.pol, now, tc.rate, batch)
			}
		})
	}
}
