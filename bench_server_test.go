// Serving-plane throughput benchmarks: end-to-end reserve→grant→teardown
// round trips against a live resv.Server, over net.Pipe (no syscalls; pure
// admission-plane cost) and TCP loopback (the deployment transport), at
// 1/8/64 concurrent clients. The pipelined variants keep a window of
// requests in flight per connection, so the server's batched frame I/O can
// coalesce many grants into one write. `make bench-diff` gates these
// alongside the simulator benchmarks: ns/op within tolerance, allocs/op
// never up.
package beqos_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"beqos/internal/resv"
	"beqos/internal/utility"
)

// benchServer returns a flow-count admission server with kmax = capacity
// (rigid unit demand), no TTL.
func benchServer(b *testing.B, capacity float64) *resv.Server {
	b.Helper()
	r, err := utility.NewRigid(1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := resv.NewServer(capacity, r)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return s
}

// benchDialer returns a dial function for the named transport ("pipe" or
// "tcp") connected to s.
func benchDialer(b *testing.B, s *resv.Server, transport string) func() net.Conn {
	b.Helper()
	switch transport {
	case "pipe":
		return func() net.Conn {
			cEnd, sEnd := net.Pipe()
			go s.HandleConn(sEnd)
			return cEnd
		}
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = ln.Close() })
		go func() { _ = s.Serve(ln) }()
		return func() net.Conn {
			nc, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			return nc
		}
	default:
		b.Fatalf("unknown transport %q", transport)
		return nil
	}
}

// BenchmarkServerThroughput measures the admission server's request
// throughput. One op is a full reserve→grant plus teardown→ok cycle
// (two protocol round trips), so requests/sec = 2e9 / (ns/op).
func BenchmarkServerThroughput(b *testing.B) {
	for _, transport := range []string{"pipe", "tcp"} {
		for _, clients := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/c%d", transport, clients), func(b *testing.B) {
				benchSyncClients(b, transport, clients)
			})
		}
		for _, clients := range []int{8, 64} {
			clients := clients
			b.Run(fmt.Sprintf("%s/c%d-pipelined", transport, clients), func(b *testing.B) {
				benchPipelinedClients(b, transport, clients, 32)
			})
		}
	}
}

// benchSyncClients drives `clients` connections, each looping synchronous
// reserve/teardown round trips on its own flow ID.
func benchSyncClients(b *testing.B, transport string, clients int) {
	s := benchServer(b, float64(clients))
	dial := benchDialer(b, s, transport)
	cls := make([]*resv.Client, clients)
	for i := range cls {
		cls[i] = resv.NewClient(dial())
		defer cls[i].Close()
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for i, cl := range cls {
		n := b.N / clients
		if i == 0 {
			n += b.N % clients
		}
		wg.Add(1)
		go func(cl *resv.Client, id uint64, n int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				ok, _, err := cl.Reserve(ctx, id, 1)
				if err != nil || !ok {
					b.Errorf("reserve flow %d: ok=%v err=%v", id, ok, err)
					return
				}
				if err := cl.Teardown(ctx, id); err != nil {
					b.Errorf("teardown flow %d: %v", id, err)
					return
				}
			}
		}(cl, uint64(i+1), n)
	}
	wg.Wait()
	b.StopTimer()
	reportReqRate(b)
}

// benchPipelinedClients keeps `depth` requests in flight per connection:
// each iteration writes a window of reserve frames back to back, collects
// the grants, then does the same for teardowns. A concurrent reader drains
// replies so the pipeline never stalls on an unbuffered transport.
func benchPipelinedClients(b *testing.B, transport string, clients, depth int) {
	s := benchServer(b, float64(clients*depth))
	dial := benchDialer(b, s, transport)
	conns := make([]net.Conn, clients)
	for i := range conns {
		conns[i] = dial()
		defer conns[i].Close()
	}
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for i, nc := range conns {
		n := b.N / clients
		if i == 0 {
			n += b.N % clients
		}
		iters := (n + depth - 1) / depth
		wg.Add(1)
		go func(nc net.Conn, base uint64, iters int) {
			defer wg.Done()
			// One persistent reader per connection: a goroutine spawned per
			// window would dominate the sub-µs per-op cost and add
			// scheduling noise. The reader drains one window's replies per
			// request on the expect channel.
			expect := make(chan resv.MsgType)
			done := make(chan error)
			go func() {
				rbuf := make([]byte, depth*resv.FrameSize)
				for want := range expect {
					if _, err := io.ReadFull(nc, rbuf); err != nil {
						done <- err
						return
					}
					var err error
					for k := 0; k < depth; k++ {
						f, derr := resv.DecodeFrame(rbuf[k*resv.FrameSize : (k+1)*resv.FrameSize])
						if derr != nil {
							err = derr
							break
						}
						if f.Type != want {
							err = fmt.Errorf("reply %d: got %s, want %s", k, f.Type, want)
							break
						}
					}
					done <- err
				}
			}()
			defer close(expect)
			wbuf := make([]byte, 0, depth*resv.FrameSize)
			window := func(typ resv.MsgType, want resv.MsgType) bool {
				wbuf = wbuf[:0]
				for k := 0; k < depth; k++ {
					wbuf = resv.AppendFrame(wbuf, resv.Frame{Type: typ, FlowID: base + uint64(k), Value: 1})
				}
				expect <- want
				if _, err := nc.Write(wbuf); err != nil {
					b.Errorf("write window: %v", err)
					return false
				}
				if err := <-done; err != nil {
					b.Errorf("read window: %v", err)
					return false
				}
				return true
			}
			for j := 0; j < iters; j++ {
				if !window(resv.MsgRequest, resv.MsgGrant) {
					return
				}
				if !window(resv.MsgTeardown, resv.MsgTeardownOK) {
					return
				}
			}
		}(nc, uint64(i)<<32|1, iters)
	}
	wg.Wait()
	b.StopTimer()
	reportReqRate(b)
}

// reportReqRate adds a requests-per-second metric (2 RPCs per op).
func reportReqRate(b *testing.B) {
	reportReqRateN(b, 2)
}

// reportReqRateN adds a requests-per-second metric for benchmarks whose op
// carries perOp requests (batched ops move more than one reserve+teardown).
func reportReqRateN(b *testing.B, perOp int) {
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(perOp*b.N)/b.Elapsed().Seconds(), "req/s")
	}
}

// BenchmarkServerHighConcurrency is the million-connection headline: it
// parks a large population of live reservations on flow-multiplexed
// connections (100k by default; BEQOS_BENCH_1M=1 raises it to 1M), then
// measures reserve→grant→teardown→ok churn through the standing state —
// every admission walking shard tables sized by the autotuner, every reply
// routed through the mux demultiplexer. One op is one churn cycle; the
// steady-state path must not allocate on either side of the pipe.
func BenchmarkServerHighConcurrency(b *testing.B) {
	standing := 100_000
	if os.Getenv("BEQOS_BENCH_1M") != "" {
		standing = 1_000_000
	}
	const churners = 8
	s := benchServer(b, float64(standing+churners))
	dial := benchDialer(b, s, "pipe")

	// Establish the standing population across a small pool of mux
	// connections, in parallel — setup, not measured.
	pool := 4
	muxes := make([]*resv.MuxClient, pool)
	for i := range muxes {
		muxes[i] = resv.NewMuxClient(dial())
		defer muxes[i].Close()
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	per := standing / pool
	for i, m := range muxes {
		lo := uint64(i*per) + 1
		hi := lo + uint64(per)
		if i == pool-1 {
			hi = uint64(standing) + 1
		}
		wg.Add(1)
		go func(m *resv.MuxClient, lo, hi uint64) {
			defer wg.Done()
			for id := lo; id < hi; id++ {
				ok, _, err := m.Reserve(ctx, id, 1)
				if err != nil || !ok {
					b.Errorf("standing reserve %d: ok=%v err=%v", id, ok, err)
					return
				}
			}
		}(m, lo, hi)
	}
	wg.Wait()
	if b.Failed() {
		return
	}
	if got := s.Active(); got != standing {
		b.Fatalf("standing population = %d, want %d", got, standing)
	}

	// Churn through the standing state: each worker cycles its own flow ID
	// above the population on its own mux connection.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < churners; i++ {
		n := b.N / churners
		if i == 0 {
			n += b.N % churners
		}
		id := uint64(standing + i + 1)
		m := muxes[i%pool]
		wg.Add(1)
		go func(m *resv.MuxClient, id uint64, n int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				ok, _, err := m.Reserve(ctx, id, 1)
				if err != nil || !ok {
					b.Errorf("churn reserve %d: ok=%v err=%v", id, ok, err)
					return
				}
				if err := m.Teardown(ctx, id); err != nil {
					b.Errorf("churn teardown %d: %v", id, err)
					return
				}
			}
		}(m, id, n)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(standing), "flows")
	reportReqRate(b)
}

// BenchmarkUDPThroughput measures the datagram transport end to end over
// loopback sockets: one op is a reserve→grant plus teardown→ok cycle, each
// round trip one datagram out and one back through the reader pool.
func BenchmarkUDPThroughput(b *testing.B) {
	for _, clients := range []int{1, 8} {
		clients := clients
		b.Run(fmt.Sprintf("c%d", clients), func(b *testing.B) {
			s := benchServer(b, float64(clients))
			pc, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer pc.Close()
			go func() { _ = s.ServePacket(pc) }()
			cls := make([]*resv.Client, clients)
			for i := range cls {
				nc, err := net.Dial("udp", pc.LocalAddr().String())
				if err != nil {
					b.Fatal(err)
				}
				cls[i] = resv.NewUDPClient(nc, resv.UDPConfig{Timeout: time.Second})
				defer cls[i].Close()
			}
			ctx := context.Background()
			var wg sync.WaitGroup
			b.ReportAllocs()
			b.ResetTimer()
			for i, cl := range cls {
				n := b.N / clients
				if i == 0 {
					n += b.N % clients
				}
				wg.Add(1)
				go func(cl *resv.Client, id uint64, n int) {
					defer wg.Done()
					for j := 0; j < n; j++ {
						ok, _, err := cl.Reserve(ctx, id, 1)
						if err != nil || !ok {
							b.Errorf("reserve flow %d: ok=%v err=%v", id, ok, err)
							return
						}
						if err := cl.Teardown(ctx, id); err != nil {
							b.Errorf("teardown flow %d: %v", id, err)
							return
						}
					}
				}(cl, uint64(i+1), n)
			}
			wg.Wait()
			b.StopTimer()
			reportReqRate(b)
		})
	}
}
