// Benchmarks: one per paper artifact (see DESIGN.md's experiment index),
// each regenerating a representative slice of that table or figure, plus
// micro-benchmarks on the evaluation hot paths. Absolute times are
// machine-dependent; the point is that every artifact has a one-command
// regeneration target:
//
//	go test -bench=BenchmarkFig3 -benchmem .
package beqos_test

import (
	"context"
	"testing"

	"beqos/internal/continuum"
	"beqos/internal/core"
	"beqos/internal/dist"
	"beqos/internal/numeric"
	"beqos/internal/sched"
	"beqos/internal/sim"
	"beqos/internal/sweep"
	"beqos/internal/utility"
)

const kbar = 100.0

func benchLoad(b *testing.B, name string) dist.Discrete {
	b.Helper()
	var d dist.Discrete
	var err error
	switch name {
	case "poisson":
		d, err = dist.NewPoisson(kbar)
	case "exponential":
		d, err = dist.NewExponentialMean(kbar)
	case "algebraic":
		d, err = dist.NewAlgebraicMean(3, kbar)
	}
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func benchUtil(b *testing.B, name string) utility.Function {
	b.Helper()
	if name == "adaptive" {
		return utility.NewAdaptive()
	}
	r, err := utility.NewRigid(1)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func benchModel(b *testing.B, load, util string) *core.Model {
	b.Helper()
	m, err := core.New(benchLoad(b, load), benchUtil(b, util))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// figurePanels regenerates the a/b (utility + bandwidth gap) panels of one
// figure on a coarse capacity grid.
func figurePanels(b *testing.B, m *core.Model) {
	b.Helper()
	for _, c := range []float64{50, 100, 200, 400, 800} {
		_ = m.BestEffort(c)
		_ = m.Reservation(c)
		if _, err := m.BandwidthGap(c); err != nil {
			b.Fatal(err)
		}
	}
}

// gammaPanel regenerates the c/f (price-ratio) panel at two prices.
func gammaPanel(b *testing.B, m *core.Model, prices ...float64) {
	b.Helper()
	for _, p := range prices {
		if _, err := m.GammaEqualize(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 1 ---

func BenchmarkFig1AdaptiveUtility(b *testing.B) {
	a := utility.NewAdaptive()
	for i := 0; i < b.N; i++ {
		for bw := 0.0; bw <= 10; bw += 0.01 {
			_ = a.Eval(bw)
		}
	}
}

// --- Figure 2: Poisson ---

func BenchmarkFig2PoissonRigid(b *testing.B) {
	m := benchModel(b, "poisson", "rigid")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figurePanels(b, m)
	}
}

func BenchmarkFig2PoissonRigidGamma(b *testing.B) {
	m := benchModel(b, "poisson", "rigid")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gammaPanel(b, m, 0.1, 0.01)
	}
}

func BenchmarkFig2PoissonAdaptive(b *testing.B) {
	m := benchModel(b, "poisson", "adaptive")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figurePanels(b, m)
	}
}

func BenchmarkFig2PoissonAdaptiveGamma(b *testing.B) {
	m := benchModel(b, "poisson", "adaptive")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gammaPanel(b, m, 0.1)
	}
}

// --- Figure 3: exponential ---

func BenchmarkFig3ExponentialRigid(b *testing.B) {
	m := benchModel(b, "exponential", "rigid")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figurePanels(b, m)
	}
}

func BenchmarkFig3ExponentialRigidGamma(b *testing.B) {
	m := benchModel(b, "exponential", "rigid")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gammaPanel(b, m, 0.1, 0.01)
	}
}

func BenchmarkFig3ExponentialAdaptive(b *testing.B) {
	m := benchModel(b, "exponential", "adaptive")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figurePanels(b, m)
	}
}

func BenchmarkFig3ExponentialAdaptiveGamma(b *testing.B) {
	m := benchModel(b, "exponential", "adaptive")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gammaPanel(b, m, 0.1)
	}
}

// --- Figure 4: algebraic ---

func BenchmarkFig4AlgebraicRigid(b *testing.B) {
	m := benchModel(b, "algebraic", "rigid")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figurePanels(b, m)
	}
}

func BenchmarkFig4AlgebraicRigidGamma(b *testing.B) {
	m := benchModel(b, "algebraic", "rigid")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gammaPanel(b, m, 0.1, 0.01)
	}
}

func BenchmarkFig4AlgebraicAdaptive(b *testing.B) {
	m := benchModel(b, "algebraic", "adaptive")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figurePanels(b, m)
	}
}

func BenchmarkFig4AlgebraicAdaptiveGamma(b *testing.B) {
	m := benchModel(b, "algebraic", "adaptive")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gammaPanel(b, m, 0.1)
	}
}

// --- T1: continuum closed forms vs quadrature ---

func BenchmarkT1ContinuumAsymptotics(b *testing.B) {
	cf, err := continuum.NewExpRigid(kbar)
	if err != nil {
		b.Fatal(err)
	}
	ed, err := dist.NewExpDensity(1 / kbar)
	if err != nil {
		b.Fatal(err)
	}
	num, err := continuum.NewNumeric(ed, benchUtil(b, "rigid"), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range []float64{50, 200, 800} {
			_ = cf.BestEffort(c)
			_ = num.BestEffort(c)
			if _, err := cf.BandwidthGap(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- T2: worst-case bounds ---

func BenchmarkT2WorstCaseBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, z := range []float64{3, 2.5, 2.2, 2.05} {
			cf, err := continuum.NewAlgRigid(z)
			if err != nil {
				b.Fatal(err)
			}
			_ = cf.GapRatio()
			if _, err := cf.GammaEqualize(1e-6); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- T3: slow-tail regimes ---

func BenchmarkT3SlowTailRegimes(b *testing.B) {
	st, err := utility.NewSlowTail(1.5)
	if err != nil {
		b.Fatal(err)
	}
	ad, err := dist.NewAlgDensity(4)
	if err != nil {
		b.Fatal(err)
	}
	num, err := continuum.NewNumeric(ad, st, st.KStar)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := num.BandwidthGap(300); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E1/E2: sampling extension ---

func BenchmarkE1Sampling(b *testing.B) {
	m := benchModel(b, "exponential", "adaptive")
	sp, err := core.NewSampling(m, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range []float64{100, 200, 400} {
			_ = sp.PerformanceGap(c)
			if _, err := sp.BandwidthGap(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE2SamplingAsymptotics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, z := range []float64{3, 2.5, 2.2} {
			for _, s := range []int{2, 5, 10} {
				_ = continuum.SamplingAlgRigidRatio(z, s)
				_ = continuum.SamplingAlgRampRatio(z, 0.5, s)
			}
		}
	}
}

// --- E3/E4: retrying extension ---

func BenchmarkE3Retrying(b *testing.B) {
	m := benchModel(b, "algebraic", "adaptive")
	rt, err := core.NewRetry(m, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range []float64{200, 400} {
			if _, err := rt.PerformanceGap(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE4RetryAsymptotics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, z := range []float64{3, 2.5, 2.2} {
			for _, alpha := range []float64{0.5, 0.1, 0.01} {
				_ = continuum.RetryAlgRigidRatio(z, alpha)
				_ = continuum.RetryAlgRampRatio(z, 0.5, alpha)
			}
		}
	}
}

// --- S1/S2: simulator validation runs ---

func BenchmarkS1SimulatedLoad(b *testing.B) {
	arr, err := sim.NewPoissonArrivals(10)
	if err != nil {
		b.Fatal(err)
	}
	hold, err := sim.NewExpHolding(10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{
			Capacity: 120, Util: benchUtil(b, "rigid"), Policy: sim.BestEffort,
			Arrivals: arr, Holding: hold,
			Horizon: 2000, Warmup: 100, Samples: 1,
			Seed1: uint64(i), Seed2: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkS2HeavyTailLoad(b *testing.B) {
	arr, err := sim.NewSessionArrivals(4, 1, 1.5)
	if err != nil {
		b.Fatal(err)
	}
	hold, err := sim.NewExpHolding(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{
			Capacity: 1e9, Util: benchUtil(b, "rigid"), Policy: sim.BestEffort,
			Arrivals: arr, Holding: hold,
			Horizon: 2000, Warmup: 100, Samples: 1,
			Seed1: uint64(i), Seed2: 12,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sweep engine and tabulation ---

// BenchmarkModelSweep measures a full figure-style capacity sweep (the 100
// grid points of the fig2 utility/gap panels) on a cold model, through the
// parallel sweep engine. Construction cost (including tabulation) is
// included: this is the figure harness's real unit of work.
func BenchmarkModelSweep(b *testing.B) {
	cs := sweep.Grid(10, 1000, 10)
	ctx := context.Background()
	for _, workers := range []int{1, 0} {
		name := "parallel"
		if workers == 1 {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := benchModel(b, "poisson", "adaptive")
				_, err := sweep.Map(ctx, workers, cs, func(c float64) ([3]float64, error) {
					g, err := m.BandwidthGap(c)
					if err != nil {
						return [3]float64{}, err
					}
					return [3]float64{m.BestEffort(c), m.Reservation(c), g}, nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBandwidthGap measures the Brent inversion on previously unseen
// capacities (cycling a large grid defeats the memo), i.e. the true cost of
// one Δ(C) evaluation on the tabulated model.
func BenchmarkBandwidthGap(b *testing.B) {
	m := benchModel(b, "poisson", "adaptive")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := 100 + float64(i%4096)*0.21
		if _, err := m.BandwidthGap(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTabulatedPMF measures per-term distribution queries inside the
// tabulated range — the innermost loop of every series in the core model —
// against the base distribution's analytic evaluation.
func BenchmarkTabulatedPMF(b *testing.B) {
	base := benchLoad(b, "poisson")
	tab := dist.Tabulate(base)
	b.Run("tabulated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tab.PMF(i%800 + 1)
			_ = tab.TailMean(i % 800)
		}
	})
	b.Run("base", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = base.PMF(i%800 + 1)
			_ = base.TailMean(i % 800)
		}
	})
}

// --- Micro-benchmarks on hot paths ---

func BenchmarkMicroBestEffortPoisson(b *testing.B) {
	m := benchModel(b, "poisson", "adaptive")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.BestEffort(200)
	}
}

func BenchmarkMicroBestEffortAlgebraic(b *testing.B) {
	m := benchModel(b, "algebraic", "adaptive")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.BestEffort(200)
	}
}

func BenchmarkMicroBandwidthGapExponential(b *testing.B) {
	m := benchModel(b, "exponential", "rigid")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.BandwidthGap(200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroHurwitzZeta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = numeric.HurwitzZeta(3, 101)
	}
}

func BenchmarkMicroLambertW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = numeric.LambertWm1(-0.01)
	}
}

func BenchmarkMicroAlgebraicPMF(b *testing.B) {
	d := benchLoad(b, "algebraic")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.PMF(i%1000 + 1)
	}
}

func BenchmarkMicroAlgebraicConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dist.NewAlgebraicMean(3, kbar+float64(i%7)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F0/X1/X2/X3: §2 curves and §5 qualitative extensions ---

func BenchmarkF0FixedLoadCurves(b *testing.B) {
	rigid := benchUtil(b, "rigid")
	adaptive := benchUtil(b, "adaptive")
	for i := 0; i < b.N; i++ {
		_ = core.FixedLoadCurve(rigid, 100, 300)
		_ = core.FixedLoadCurve(adaptive, 100, 300)
		_ = core.FixedLoadCurve(utility.Elastic{}, 100, 300)
	}
}

func BenchmarkX1HeterogeneousFlows(b *testing.B) {
	rigid := benchUtil(b, "rigid")
	mix, err := utility.NewMixture([]utility.Component{
		{Fn: rigid, Weight: 0.5, Demand: 1},
		{Fn: rigid, Weight: 0.5, Demand: 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.New(benchLoad(b, "algebraic"), mix)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range []float64{100, 400} {
			if _, err := m.BandwidthGap(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkX2NonstationaryLoads(b *testing.B) {
	mixed, err := dist.NewMixture(
		[]dist.Discrete{benchLoad(b, "exponential"), benchLoad(b, "algebraic")},
		[]float64{0.8, 0.2})
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.New(mixed, benchUtil(b, "rigid"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range []float64{200, 800} {
			if _, err := m.BandwidthGap(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkX3Footnote9ElasticSampling(b *testing.B) {
	m, err := core.New(benchLoad(b, "exponential"), utility.Elastic{})
	if err != nil {
		b.Fatal(err)
	}
	sp, err := core.NewSamplingWithKMax(m, 10, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range []float64{80, 100, 150} {
			_ = sp.PerformanceGap(c)
		}
	}
}

func BenchmarkX4SchedulingEnforcement(b *testing.B) {
	sources := []sched.Source{
		{Flow: 1, Rate: 0.28, PacketSize: 0.01},
		{Flow: 2, Rate: 0.28, PacketSize: 0.01},
		{Flow: 3, Rate: 0.28, PacketSize: 0.01},
		{Flow: 99, Rate: 5, PacketSize: 0.01},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fq := sched.NewSCFQ()
		for f := 1; f <= 3; f++ {
			if err := fq.SetWeight(f, 1); err != nil {
				b.Fatal(err)
			}
		}
		if err := fq.SetWeight(99, 0.05); err != nil {
			b.Fatal(err)
		}
		if _, err := sched.RunLink(fq, 1, sources, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroSCFQEnqueueDequeue(b *testing.B) {
	s := sched.NewSCFQ()
	for i := 0; i < b.N; i++ {
		if err := s.Enqueue(sched.Packet{Flow: i % 16, Size: 1}); err != nil {
			b.Fatal(err)
		}
		if _, ok := s.Dequeue(); !ok {
			b.Fatal("unexpected empty queue")
		}
	}
}
