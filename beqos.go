// Package beqos is a Go implementation of the analytical framework from
// Lee Breslau and Scott Shenker, "Best-Effort versus Reservations: A Simple
// Comparative Analysis" (SIGCOMM 1998).
//
// The paper asks whether the Internet should stay best-effort-only or adopt
// a reservation-capable (integrated services) architecture. It compares the
// two on a single link whose offered load k (number of flows) is random
// with mean k̄, and whose applications share a utility function π(b) of
// their bandwidth share:
//
//   - Best-effort admits everyone: per-flow utility B(C) = E[k·π(C/k)]/k̄.
//   - Reservations admit at most kmax(C) = argmax k·π(C/k) flows:
//     R(C) ≥ B(C) always.
//
// The interesting questions are how big the edge is — the performance gap
// δ(C) = R(C) − B(C) and the bandwidth gap Δ(C) solving B(C+Δ) = R(C) —
// and what it is worth when capacity is priced: the equalizing price ratio
// γ(p) says how much more expensive reservation-capable bandwidth may be
// before best-effort wins.
//
// This package is the public face of the library: load distributions,
// utility functions, the variable-load model with its gaps and welfare
// analysis, the sampling (§5.1) and retrying (§5.2) extensions, a
// flow-level simulator for generating loads from explicit dynamics, and a
// small reservation signaling protocol with admission control. The
// continuum closed forms live in internal/continuum and drive the figure
// harness in cmd/figures.
package beqos

import (
	"fmt"

	"beqos/internal/core"
	"beqos/internal/dist"
	"beqos/internal/utility"
)

// Load is a distribution of the number of flows requesting service.
type Load struct {
	d dist.Discrete
}

// PoissonLoad returns the paper's Poisson load: tightly concentrated around
// its mean, the closest variable-load analogue of a fixed load.
func PoissonLoad(mean float64) (Load, error) {
	d, err := dist.NewPoisson(mean)
	if err != nil {
		return Load{}, err
	}
	return Load{d: d}, nil
}

// ExponentialLoad returns the paper's exponentially decaying (geometric)
// load with the given mean.
func ExponentialLoad(mean float64) (Load, error) {
	d, err := dist.NewExponentialMean(mean)
	if err != nil {
		return Load{}, err
	}
	return Load{d: d}, nil
}

// AlgebraicLoad returns the paper's heavy-tailed load P(k) ∝ 1/(λ + k^z)
// with tail power z > 2, calibrated to the given mean. Algebraic tails are
// where reservations retain a durable advantage.
func AlgebraicLoad(z, mean float64) (Load, error) {
	d, err := dist.NewAlgebraicMean(z, mean)
	if err != nil {
		return Load{}, err
	}
	return Load{d: d}, nil
}

// EmpiricalLoad builds a load from measured occupancy weights (index k =
// weight of load level k), e.g. a histogram from the simulator or from
// production measurements.
func EmpiricalLoad(weights []float64) (Load, error) {
	d, err := dist.NewEmpirical(weights)
	if err != nil {
		return Load{}, err
	}
	return Load{d: d}, nil
}

// TraceLoad builds a load directly from raw load observations — a trace of
// concurrent-flow counts sampled from a real or simulated link.
func TraceLoad(samples []int) (Load, error) {
	d, err := dist.NewEmpiricalSamples(samples)
	if err != nil {
		return Load{}, err
	}
	return Load{d: d}, nil
}

// Mean returns the load's mean k̄.
func (l Load) Mean() float64 { return l.d.Mean() }

// PMF returns P(k).
func (l Load) PMF(k int) float64 { return l.d.PMF(k) }

// TailProb returns P(K > k).
func (l Load) TailProb(k int) float64 { return l.d.TailProb(k) }

// Utility is an application utility (performance) function π(b).
type Utility struct {
	f utility.Function
}

// RigidUtility returns the paper's rigid application (telephony-style):
// full value at bandwidth 1, nothing below.
func RigidUtility() Utility {
	r, err := utility.NewRigid(1)
	if err != nil {
		panic("beqos: rigid utility construction cannot fail: " + err.Error())
	}
	return Utility{f: r}
}

// AdaptiveUtility returns the paper's equation-2 adaptive application,
// π(b) = 1 − exp(−b²/(κ+b)) with κ ≈ 0.62086 calibrated so kmax(C) = C.
func AdaptiveUtility() Utility { return Utility{f: utility.NewAdaptive()} }

// ElasticUtility returns a traditional data application, π(b) = 1 − e^(−b):
// strictly concave, so admission control never helps and the architectures
// coincide.
func ElasticUtility() Utility { return Utility{f: utility.Elastic{}} }

// RampUtility returns the continuum model's piecewise-linear adaptive
// utility with adaptivity parameter a ∈ (0, 1]; a = 1 is rigid.
func RampUtility(a float64) (Utility, error) {
	r, err := utility.NewRamp(a)
	if err != nil {
		return Utility{}, err
	}
	return Utility{f: r}, nil
}

// SlowTailUtility returns the §3.3 slowly saturating utility
// π(b) = 1 − b^(−τ) for b > 1.
func SlowTailUtility(tau float64) (Utility, error) {
	s, err := utility.NewSlowTail(tau)
	if err != nil {
		return Utility{}, err
	}
	return Utility{f: s}, nil
}

// Name returns the utility's identifier.
func (u Utility) Name() string { return u.f.Name() }

// Eval returns π(b).
func (u Utility) Eval(b float64) float64 { return u.f.Eval(b) }

// Model is the paper's variable-load model for one load/utility pair.
type Model struct {
	m *core.Model
}

// NewModel couples a load distribution with a utility function.
func NewModel(load Load, util Utility) (*Model, error) {
	if load.d == nil || util.f == nil {
		return nil, fmt.Errorf("beqos: load and utility must be constructed, not zero values")
	}
	m, err := core.New(load.d, util.f)
	if err != nil {
		return nil, err
	}
	return &Model{m: m}, nil
}

// MeanLoad returns k̄.
func (m *Model) MeanLoad() float64 { return m.m.MeanLoad() }

// KMax returns the reservation admission threshold kmax(C).
func (m *Model) KMax(c float64) int { return m.m.KMax(c) }

// BestEffort returns the normalized per-flow utility B(C) of the
// best-effort-only architecture.
func (m *Model) BestEffort(c float64) float64 { return m.m.BestEffort(c) }

// Reservation returns the normalized per-flow utility R(C) of the
// reservation-capable architecture.
func (m *Model) Reservation(c float64) float64 { return m.m.Reservation(c) }

// PerformanceGap returns δ(C) = R(C) − B(C).
func (m *Model) PerformanceGap(c float64) float64 { return m.m.PerformanceGap(c) }

// BandwidthGap returns Δ(C), the extra capacity best-effort needs to match
// reservations: B(C + Δ) = R(C).
func (m *Model) BandwidthGap(c float64) (float64, error) { return m.m.BandwidthGap(c) }

// Provision is a welfare-maximizing provisioning decision at a bandwidth
// price.
type Provision = core.Provision

// ProvisionBestEffort returns C_B(p) and W_B(p) (§4).
func (m *Model) ProvisionBestEffort(p float64) (Provision, error) {
	return m.m.ProvisionBestEffort(p)
}

// ProvisionReservation returns C_R(p) and W_R(p) (§4).
func (m *Model) ProvisionReservation(p float64) (Provision, error) {
	return m.m.ProvisionReservation(p)
}

// GammaEqualize returns the equalizing price ratio γ(p): how much more
// expensive reservation-capable bandwidth may be before the
// best-effort-only architecture delivers equal welfare.
func (m *Model) GammaEqualize(p float64) (float64, error) { return m.m.GammaEqualize(p) }

// Sampling returns the §5.1 extension: flows judged by the worst of s load
// samples.
func (m *Model) Sampling(s int) (*Sampling, error) {
	sp, err := core.NewSampling(m.m, s)
	if err != nil {
		return nil, err
	}
	return &Sampling{sp: sp}, nil
}

// SamplingWithKMax is the footnote-9 variant of Sampling: the admission
// threshold is imposed rather than derived from the utility function, which
// lets even elastic applications benefit from reservations when flows are
// judged by their worst sampled moment.
func (m *Model) SamplingWithKMax(s, kmax int) (*Sampling, error) {
	sp, err := core.NewSamplingWithKMax(m.m, s, kmax)
	if err != nil {
		return nil, err
	}
	return &Sampling{sp: sp}, nil
}

// Retry returns the §5.2 extension: blocked reservations retry at utility
// cost alpha per attempt.
func (m *Model) Retry(alpha float64) (*Retry, error) {
	rt, err := core.NewRetry(m.m, alpha)
	if err != nil {
		return nil, err
	}
	return &Retry{rt: rt}, nil
}

// FixedLoadOptimum analyzes the paper's §2 fixed-load model: the
// utility-maximizing number of admitted flows at capacity c, the total
// utility it achieves, and whether a finite maximum exists (false for
// elastic utilities, where admission control never helps).
func FixedLoadOptimum(util Utility, c float64) (kmax int, v float64, finite bool) {
	return core.FixedLoadOptimum(util.f, c)
}

// FixedLoadTotalUtility returns the §2 total utility V(k) = k·π(C/k).
func FixedLoadTotalUtility(util Utility, c float64, k int) float64 {
	return utility.TotalUtility(util.f, c, k)
}

// Sampling is the worst-of-S-samples extension of a Model.
type Sampling struct {
	sp *core.Sampling
}

// BestEffort returns B_S(C).
func (s *Sampling) BestEffort(c float64) float64 { return s.sp.BestEffort(c) }

// Reservation returns R_S(C).
func (s *Sampling) Reservation(c float64) float64 { return s.sp.Reservation(c) }

// PerformanceGap returns δ_S(C).
func (s *Sampling) PerformanceGap(c float64) float64 { return s.sp.PerformanceGap(c) }

// BandwidthGap returns Δ_S(C).
func (s *Sampling) BandwidthGap(c float64) (float64, error) { return s.sp.BandwidthGap(c) }

// GammaEqualize returns γ(p) under sampling.
func (s *Sampling) GammaEqualize(p float64) (float64, error) { return s.sp.GammaEqualize(p) }

// Retry is the retrying extension of a Model.
type Retry struct {
	rt *core.Retry
}

// Equilibrium describes the retry fixed point at a capacity.
type Equilibrium = core.FixedPoint

// Equilibrium returns the self-consistent inflated load at capacity c.
func (r *Retry) Equilibrium(c float64) (Equilibrium, error) { return r.rt.Equilibrium(c) }

// Reservation returns R̃(C), the per-original-flow utility with retries.
func (r *Retry) Reservation(c float64) (float64, error) { return r.rt.Reservation(c) }

// BestEffort returns B(C) (unchanged by retries).
func (r *Retry) BestEffort(c float64) float64 { return r.rt.BestEffort(c) }

// PerformanceGap returns δ̃(C).
func (r *Retry) PerformanceGap(c float64) (float64, error) { return r.rt.PerformanceGap(c) }

// BandwidthGap returns Δ̃(C).
func (r *Retry) BandwidthGap(c float64) (float64, error) { return r.rt.BandwidthGap(c) }

// GammaEqualize returns γ(p) with retries.
func (r *Retry) GammaEqualize(p float64) (float64, error) { return r.rt.GammaEqualize(p) }
