package beqos_test

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"beqos"
)

func TestFacadeEndToEnd(t *testing.T) {
	load, err := beqos.ExponentialLoad(100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := beqos.NewModel(load, beqos.RigidUtility())
	if err != nil {
		t.Fatal(err)
	}
	b, r := m.BestEffort(200), m.Reservation(200)
	if !(r > b && b > 0 && r < 1) {
		t.Errorf("B=%v R=%v out of expected order", b, r)
	}
	if d := m.PerformanceGap(200); math.Abs(d-(r-b)) > 1e-15 {
		t.Errorf("gap inconsistent")
	}
	g, err := m.BandwidthGap(200)
	if err != nil || g <= 0 {
		t.Errorf("bandwidth gap %v, %v", g, err)
	}
	if k := m.KMax(200); k != 200 {
		t.Errorf("kmax = %d, want 200", k)
	}
	if mean := m.MeanLoad(); math.Abs(mean-100) > 1e-6 {
		t.Errorf("mean = %v", mean)
	}
}

func TestFacadeZeroValuesRejected(t *testing.T) {
	if _, err := beqos.NewModel(beqos.Load{}, beqos.RigidUtility()); err == nil {
		t.Error("zero Load should be rejected")
	}
	var u beqos.Utility
	load, _ := beqos.PoissonLoad(10)
	if _, err := beqos.NewModel(load, u); err == nil {
		t.Error("zero Utility should be rejected")
	}
}

func TestFacadeLoadConstructors(t *testing.T) {
	if _, err := beqos.PoissonLoad(-1); err == nil {
		t.Error("bad Poisson mean should fail")
	}
	if _, err := beqos.ExponentialLoad(0); err == nil {
		t.Error("bad exponential mean should fail")
	}
	if _, err := beqos.AlgebraicLoad(2, 100); err == nil {
		t.Error("z = 2 should fail")
	}
	if _, err := beqos.EmpiricalLoad(nil); err == nil {
		t.Error("empty empirical should fail")
	}
	l, err := beqos.AlgebraicLoad(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if l.PMF(1) <= 0 || l.TailProb(100) <= 0 {
		t.Error("algebraic load has empty support")
	}
}

func TestFacadeUtilityConstructors(t *testing.T) {
	if _, err := beqos.RampUtility(0); err == nil {
		t.Error("ramp a = 0 should fail")
	}
	if _, err := beqos.SlowTailUtility(-1); err == nil {
		t.Error("negative τ should fail")
	}
	for _, u := range []beqos.Utility{beqos.RigidUtility(), beqos.AdaptiveUtility(), beqos.ElasticUtility()} {
		if u.Name() == "" {
			t.Error("empty utility name")
		}
		if v := u.Eval(1e9); v < 0.99 {
			t.Errorf("%s: π(huge) = %v", u.Name(), v)
		}
	}
}

func TestFacadeWelfare(t *testing.T) {
	load, err := beqos.PoissonLoad(100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := beqos.NewModel(load, beqos.RigidUtility())
	if err != nil {
		t.Fatal(err)
	}
	pb, err := m.ProvisionBestEffort(0.1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := m.ProvisionReservation(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Welfare < pb.Welfare {
		t.Errorf("W_R %v below W_B %v", pr.Welfare, pb.Welfare)
	}
	g, err := m.GammaEqualize(0.1)
	if err != nil || g < 1 {
		t.Errorf("γ = %v, %v", g, err)
	}
}

func TestFacadeExtensions(t *testing.T) {
	load, err := beqos.ExponentialLoad(100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := beqos.NewModel(load, beqos.AdaptiveUtility())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := m.Sampling(10)
	if err != nil {
		t.Fatal(err)
	}
	if d := sp.PerformanceGap(200); d <= m.PerformanceGap(200) {
		t.Errorf("sampling gap %v should exceed basic %v", d, m.PerformanceGap(200))
	}
	rt, err := m.Retry(0.1)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := rt.Equilibrium(200)
	if err != nil {
		t.Fatal(err)
	}
	if eq.EffectiveMean < 100 {
		t.Errorf("inflated mean %v below k̄", eq.EffectiveMean)
	}
	if _, err := m.Sampling(0); err == nil {
		t.Error("S = 0 should fail")
	}
	if _, err := m.Retry(-1); err == nil {
		t.Error("negative α should fail")
	}
}

func TestFacadeSimulate(t *testing.T) {
	traffic, err := beqos.PoissonTraffic(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := beqos.Simulate(beqos.SimConfig{
		Capacity: 120,
		Util:     beqos.RigidUtility(),
		Traffic:  traffic,
		Horizon:  5000,
		Warmup:   200,
		Samples:  1,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanOccupancy-100) > 5 {
		t.Errorf("occupancy %v, want ≈ 100", res.MeanOccupancy)
	}
	// The measured load plugs straight back into the analytical model.
	m, err := beqos.NewModel(res.MeasuredLoad, beqos.RigidUtility())
	if err != nil {
		t.Fatal(err)
	}
	if b := m.BestEffort(120); !(b > 0.5 && b <= 1) {
		t.Errorf("B from measured load = %v", b)
	}
	// Validation errors.
	if _, err := beqos.Simulate(beqos.SimConfig{}); err == nil {
		t.Error("zero config should fail")
	}
	if _, err := beqos.SessionTraffic(0, 1, 1.5, 10); err == nil {
		t.Error("bad session traffic should fail")
	}
}

func TestFacadeAdmissionProtocol(t *testing.T) {
	srv, err := beqos.NewAdmissionServer(2, beqos.RigidUtility())
	if err != nil {
		t.Fatal(err)
	}
	if srv.KMax() != 2 {
		t.Errorf("kmax = %d", srv.KMax())
	}
	cEnd, sEnd := net.Pipe()
	go srv.HandleConn(sEnd)
	client := beqos.NewAdmissionClient(cEnd)
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Grants carry the worst-case share C/kmax = 2/2, not the instantaneous
	// C/active.
	ok, share, err := client.Reserve(ctx, 1, 1)
	if err != nil || !ok || share != 1 {
		t.Fatalf("reserve: ok=%v share=%v err=%v", ok, share, err)
	}
	kmax, active, err := client.Stats(ctx)
	if err != nil || kmax != 2 || active != 1 {
		t.Fatalf("stats: %d %d %v", kmax, active, err)
	}
	if err := client.Teardown(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// Retry path through the facade.
	ok, _, retries, err := client.ReserveWithRetry(ctx, 2, 1, beqos.AdmissionRetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, Multiplier: 1,
	})
	if err != nil || !ok || retries != 0 {
		t.Fatalf("retry reserve: ok=%v retries=%d err=%v", ok, retries, err)
	}
}

func TestFacadeAdmissionDatagram(t *testing.T) {
	srv, err := beqos.NewAdmissionServer(2, beqos.RigidUtility())
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() { _ = srv.ServePacket(pc) }()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client, err := beqos.DialAdmissionUDP(ctx, pc.LocalAddr().String(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ok, share, err := client.Reserve(ctx, 1, 1)
	if err != nil || !ok || share != 1 {
		t.Fatalf("reserve: ok=%v share=%v err=%v", ok, share, err)
	}
	kmax, active, err := client.Stats(ctx)
	if err != nil || kmax != 2 || active != 1 {
		t.Fatalf("stats: %d %d %v", kmax, active, err)
	}
	if err := client.Teardown(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if srv.Active() != 0 {
		t.Errorf("server still holds %d reservations", srv.Active())
	}
}

func TestFacadeMixtures(t *testing.T) {
	light, err := beqos.ExponentialLoad(100)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := beqos.AlgebraicLoad(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	mixedLoad, err := beqos.MixtureLoad([]beqos.Load{light, heavy}, []float64{0.8, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mixedLoad.Mean()-100) > 1e-6 {
		t.Errorf("mixture mean = %v", mixedLoad.Mean())
	}
	mixedUtil, err := beqos.MixtureUtility([]beqos.UtilityClass{
		{Util: beqos.RigidUtility(), Weight: 1, Demand: 1},
		{Util: beqos.AdaptiveUtility(), Weight: 1, Demand: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := beqos.NewModel(mixedLoad, mixedUtil)
	if err != nil {
		t.Fatal(err)
	}
	b, r := m.BestEffort(200), m.Reservation(200)
	if !(r >= b && b > 0 && r <= 1) {
		t.Errorf("mixture model: B=%v R=%v", b, r)
	}
	// Error paths.
	if _, err := beqos.MixtureLoad([]beqos.Load{{}}, []float64{1}); err == nil {
		t.Error("zero-value load component should fail")
	}
	if _, err := beqos.MixtureUtility([]beqos.UtilityClass{{Weight: 1}}); err == nil {
		t.Error("zero-value utility class should fail")
	}
}

func TestFacadeSamplingWithKMax(t *testing.T) {
	load, err := beqos.ExponentialLoad(100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := beqos.NewModel(load, beqos.ElasticUtility())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := m.SamplingWithKMax(10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d := sp.PerformanceGap(100); d <= 0 {
		t.Errorf("footnote 9: elastic gap under sampling with kmax should be positive, got %v", d)
	}
	if _, err := m.SamplingWithKMax(10, 0); err == nil {
		t.Error("kmax = 0 should fail")
	}
}

func TestFacadeTraceLoad(t *testing.T) {
	load, err := beqos.TraceLoad([]int{90, 100, 110, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(load.Mean()-100) > 1e-12 {
		t.Errorf("trace mean = %v", load.Mean())
	}
	m, err := beqos.NewModel(load, beqos.RigidUtility())
	if err != nil {
		t.Fatal(err)
	}
	if b := m.BestEffort(110); b != 1 {
		t.Errorf("B(110) = %v, want 1 (every trace level fits)", b)
	}
	if _, err := beqos.TraceLoad(nil); err == nil {
		t.Error("empty trace should fail")
	}
}

func TestFacadeFixedLoad(t *testing.T) {
	k, v, finite := beqos.FixedLoadOptimum(beqos.RigidUtility(), 100)
	if !finite || k != 100 || v != 100 {
		t.Errorf("rigid optimum = (%d, %v, %v)", k, v, finite)
	}
	if _, _, finite := beqos.FixedLoadOptimum(beqos.ElasticUtility(), 100); finite {
		t.Error("elastic should have no finite optimum")
	}
	if got := beqos.FixedLoadTotalUtility(beqos.RigidUtility(), 100, 60); got != 60 {
		t.Errorf("V(60) = %v", got)
	}
}

func TestFacadeAdmissionSoftState(t *testing.T) {
	srv, err := beqos.NewAdmissionServerTTL(2, beqos.RigidUtility(), 80*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cEnd, sEnd := net.Pipe()
	go srv.HandleConn(sEnd)
	client := beqos.NewAdmissionClient(cEnd)
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if ok, _, err := client.Reserve(ctx, 1, 1); err != nil || !ok {
		t.Fatalf("reserve: %v %v", ok, err)
	}
	if ttl, err := client.Refresh(ctx, 1); err != nil || ttl != 80*time.Millisecond {
		t.Fatalf("refresh: ttl=%v err=%v", ttl, err)
	}
	// Stop refreshing; the reservation must lapse.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("reservation did not expire through the facade")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFacadeBandwidthAdmission(t *testing.T) {
	srv, err := beqos.NewAdmissionServerBandwidth(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cEnd, sEnd := net.Pipe()
	go srv.HandleConn(sEnd)
	client := beqos.NewAdmissionClient(cEnd)
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ok, rate, err := client.Reserve(ctx, 1, 7)
	if err != nil || !ok || rate != 7 {
		t.Fatalf("reserve 7: ok=%v rate=%v err=%v", ok, rate, err)
	}
	if ok, _, _ := client.Reserve(ctx, 2, 4); ok {
		t.Error("4 should not fit in the remaining 3")
	}
	if got := srv.Allocated(); got != 7 {
		t.Errorf("allocated = %v", got)
	}
	if _, err := beqos.NewAdmissionServerBandwidth(0, 0); err == nil {
		t.Error("zero capacity should fail")
	}
}
