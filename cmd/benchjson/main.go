// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, so benchmark runs can be archived and
// compared across commits (see `make bench`, which writes BENCH_core.json).
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson [-o FILE]
//	go test -bench=. -benchmem . | benchjson -diff BENCH_core.json [-gate REGEX] [-ns-tol 0.30] [-floor RE=unit:MIN,...]
//
// In -diff mode the fresh results are compared against a committed
// baseline: benchmarks whose name matches -gate fail the run when ns/op
// regresses by more than -ns-tol (fractional, default 0.30) or when
// allocs/op increases at all — the allocation wins are a ratchet. Gated
// benchmarks missing from the fresh run also fail, so the gate cannot be
// silently dropped. Non-gated benchmarks are reported but never fail.
//
// -floor adds absolute minimums on custom b.ReportMetric units
// (comma-separated NAME_RE=unit:MIN entries, e.g.
// "HighConcurrency=req/s:20000"): every fresh benchmark matching NAME_RE
// must report the unit at or above MIN, and a floor no benchmark matches
// fails too. Floors are absolute rather than baseline-relative because
// throughput metrics (req/s) vary with the host; the floor encodes the
// "still fundamentally works at scale" bar, not a regression tolerance.
//
// Lines that are not benchmark results (the header, PASS/ok trailers) are
// folded into the report's metadata where recognized and skipped otherwise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units ("req/s", "flows", …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	Package string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	diff := flag.String("diff", "", "baseline JSON report to compare against (gate mode)")
	gate := flag.String("gate", ".", "regexp of benchmark names the gate may fail on")
	nsTol := flag.Float64("ns-tol", 0.30, "allowed fractional ns/op regression on gated benchmarks")
	floorSpec := flag.String("floor", "", "comma-separated NAME_RE=unit:MIN absolute metric floors on the fresh run (diff mode)")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *diff != "" {
		base, err := readReport(*diff)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		gateRe, err := regexp.Compile(*gate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -gate: %v\n", err)
			os.Exit(1)
		}
		floors, err := parseFloors(*floorSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -floor: %v\n", err)
			os.Exit(1)
		}
		failures := diffReports(os.Stdout, base, rep, gateRe, *nsTol)
		failures += checkFloors(os.Stdout, rep, floors)
		if failures > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark regression(s) vs %s\n", failures, *diff)
			os.Exit(1)
		}
		return
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// readReport loads a previously archived JSON report.
func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// diffReports renders a comparison table and returns the number of gate
// failures. A gated benchmark fails when its ns/op regresses by more than
// nsTol (fractional), when its allocs/op increases at all, or when it is
// present in the baseline but missing from the fresh run.
func diffReports(w io.Writer, base, fresh *Report, gateRe *regexp.Regexp, nsTol float64) int {
	baseByName := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	freshNames := make(map[string]bool, len(fresh.Results))
	failures := 0
	fmt.Fprintf(w, "%-44s %14s %14s %8s %10s  %s\n",
		"benchmark", "base ns/op", "new ns/op", "Δns", "allocs", "status")
	for _, r := range fresh.Results {
		freshNames[r.Name] = true
		b, ok := baseByName[r.Name]
		if !ok {
			fmt.Fprintf(w, "%-44s %14s %14.0f %8s %10d  %s\n",
				r.Name, "-", r.NsPerOp, "-", r.AllocsPerOp, "new (no baseline)")
			continue
		}
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = r.NsPerOp/b.NsPerOp - 1
		}
		gated := gateRe.MatchString(r.Name)
		status := "ok"
		if gated {
			switch {
			case ratio > nsTol:
				status = fmt.Sprintf("FAIL: ns/op regressed %.0f%% (tolerance %.0f%%)", 100*ratio, 100*nsTol)
				failures++
			case r.AllocsPerOp > b.AllocsPerOp:
				status = fmt.Sprintf("FAIL: allocs/op %d → %d", b.AllocsPerOp, r.AllocsPerOp)
				failures++
			}
		} else {
			status = "ok (ungated)"
		}
		fmt.Fprintf(w, "%-44s %14.0f %14.0f %+7.0f%% %4d→%-5d  %s\n",
			r.Name, b.NsPerOp, r.NsPerOp, 100*ratio, b.AllocsPerOp, r.AllocsPerOp, status)
	}
	for _, b := range base.Results {
		if !freshNames[b.Name] && gateRe.MatchString(b.Name) {
			fmt.Fprintf(w, "%-44s %14.0f %14s %8s %10s  FAIL: missing from fresh run\n",
				b.Name, b.NsPerOp, "-", "-", "-")
			failures++
		}
	}
	return failures
}

// parse reads go-test benchmark output line by line.
func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseResult(line)
			if ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseResult parses one result line of the form
//
//	BenchmarkName-8   1234   567.8 ns/op [  90 B/op   3 allocs/op]
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			// A custom b.ReportMetric unit (req/s, flows, …).
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// floor is one -floor entry: fresh benchmarks matching the name pattern
// must report the unit at or above min.
type floor struct {
	re   *regexp.Regexp
	unit string
	min  float64
}

// parseFloors parses comma-separated NAME_RE=unit:MIN entries.
func parseFloors(spec string) ([]floor, error) {
	if spec == "" {
		return nil, nil
	}
	var fls []floor
	for _, entry := range strings.Split(spec, ",") {
		name, rest, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("floor %q: want NAME_RE=unit:MIN", entry)
		}
		unit, minStr, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("floor %q: want NAME_RE=unit:MIN", entry)
		}
		re, err := regexp.Compile(name)
		if err != nil {
			return nil, fmt.Errorf("floor %q: %v", entry, err)
		}
		min, err := strconv.ParseFloat(minStr, 64)
		if err != nil {
			return nil, fmt.Errorf("floor %q: %v", entry, err)
		}
		fls = append(fls, floor{re: re, unit: unit, min: min})
	}
	return fls, nil
}

// checkFloors enforces absolute metric floors on the fresh run and returns
// the number of failures. A floor with no matching fresh benchmark fails,
// so a floor cannot be silently dropped by renaming the benchmark.
func checkFloors(w io.Writer, fresh *Report, floors []floor) int {
	failures := 0
	for _, fl := range floors {
		matched := false
		for _, r := range fresh.Results {
			if !fl.re.MatchString(r.Name) {
				continue
			}
			matched = true
			v, ok := r.Metrics[fl.unit]
			switch {
			case !ok:
				fmt.Fprintf(w, "%-44s FLOOR FAIL: no %s metric (want ≥ %g)\n", r.Name, fl.unit, fl.min)
				failures++
			case v < fl.min:
				fmt.Fprintf(w, "%-44s FLOOR FAIL: %s %.0f < %g\n", r.Name, fl.unit, v, fl.min)
				failures++
			default:
				fmt.Fprintf(w, "%-44s floor ok: %s %.0f ≥ %g\n", r.Name, fl.unit, v, fl.min)
			}
		}
		if !matched {
			fmt.Fprintf(w, "%-44s FLOOR FAIL: no benchmark matches (want %s ≥ %g)\n", fl.re, fl.unit, fl.min)
			failures++
		}
	}
	return failures
}
