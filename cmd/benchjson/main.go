// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, so benchmark runs can be archived and
// compared across commits (see `make bench`, which writes BENCH_core.json).
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson [-o FILE]
//
// Lines that are not benchmark results (the header, PASS/ok trailers) are
// folded into the report's metadata where recognized and skipped otherwise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	Package string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse reads go-test benchmark output line by line.
func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseResult(line)
			if ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseResult parses one result line of the form
//
//	BenchmarkName-8   1234   567.8 ns/op [  90 B/op   3 allocs/op]
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, true
}
