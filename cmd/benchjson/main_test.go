package main

import (
	"bufio"
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: beqos
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAlpha-8      100   1000.0 ns/op   96 B/op   2 allocs/op
BenchmarkBeta-8       200   2000.0 ns/op    0 B/op   0 allocs/op
BenchmarkGamma-8      300   3000.0 ns/op
PASS
ok    beqos 1.234s
`

func parseSample(t *testing.T, text string) *Report {
	t.Helper()
	rep, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParse(t *testing.T) {
	rep := parseSample(t, sampleOutput)
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Package != "beqos" {
		t.Errorf("metadata wrong: %+v", rep)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results", len(rep.Results))
	}
	a := rep.Results[0]
	if a.Name != "BenchmarkAlpha" || a.NsPerOp != 1000 || a.BytesPerOp != 96 || a.AllocsPerOp != 2 {
		t.Errorf("alpha parsed wrong: %+v", a)
	}
	if g := rep.Results[2]; g.AllocsPerOp != 0 || g.NsPerOp != 3000 {
		t.Errorf("gamma parsed wrong: %+v", g)
	}
}

// diffCase runs diffReports for a fresh run against the sample baseline.
func diffCase(t *testing.T, fresh string, gate string, nsTol float64) (int, string) {
	t.Helper()
	base := parseSample(t, sampleOutput)
	rep := parseSample(t, fresh)
	var sb strings.Builder
	fails := diffReports(&sb, base, rep, regexp.MustCompile(gate), nsTol)
	return fails, sb.String()
}

func TestDiffClean(t *testing.T) {
	fails, out := diffCase(t, sampleOutput, ".", 0.30)
	if fails != 0 {
		t.Errorf("identical runs should pass, got %d failures:\n%s", fails, out)
	}
}

func TestDiffNsRegression(t *testing.T) {
	fresh := strings.Replace(sampleOutput, "1000.0 ns/op", "1400.0 ns/op", 1)
	fails, out := diffCase(t, fresh, ".", 0.30)
	if fails != 1 || !strings.Contains(out, "ns/op regressed") {
		t.Errorf("40%% ns regression should fail once, got %d:\n%s", fails, out)
	}
	// Within tolerance: 40% is fine at a 50% gate.
	if fails, _ := diffCase(t, fresh, ".", 0.50); fails != 0 {
		t.Errorf("regression within tolerance should pass, got %d failures", fails)
	}
}

func TestDiffAllocRegression(t *testing.T) {
	fresh := strings.Replace(sampleOutput, "96 B/op   2 allocs/op", "96 B/op   3 allocs/op", 1)
	fails, out := diffCase(t, fresh, ".", 0.30)
	if fails != 1 || !strings.Contains(out, "allocs/op 2 → 3") {
		t.Errorf("any allocs/op increase should fail, got %d:\n%s", fails, out)
	}
}

func TestDiffGateRestrictsFailures(t *testing.T) {
	fresh := strings.Replace(sampleOutput, "1000.0 ns/op", "9000.0 ns/op", 1)
	fails, out := diffCase(t, fresh, "BenchmarkBeta", 0.30)
	if fails != 0 {
		t.Errorf("ungated regression should not fail, got %d:\n%s", fails, out)
	}
	if !strings.Contains(out, "ok (ungated)") {
		t.Errorf("ungated rows should still be reported:\n%s", out)
	}
}

func TestDiffMissingGatedBenchmark(t *testing.T) {
	fresh := strings.Replace(sampleOutput, "BenchmarkBeta-8       200   2000.0 ns/op    0 B/op   0 allocs/op\n", "", 1)
	fails, out := diffCase(t, fresh, "BenchmarkBeta", 0.30)
	if fails != 1 || !strings.Contains(out, "missing from fresh run") {
		t.Errorf("dropped gated benchmark should fail, got %d:\n%s", fails, out)
	}
}

func TestDiffNewBenchmarkIsInformational(t *testing.T) {
	fresh := sampleOutput + "BenchmarkDelta-8   50   500.0 ns/op\n"
	fails, out := diffCase(t, fresh, ".", 0.30)
	if fails != 0 || !strings.Contains(out, "new (no baseline)") {
		t.Errorf("benchmark without baseline should not fail, got %d:\n%s", fails, out)
	}
}
