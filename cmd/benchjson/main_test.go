package main

import (
	"bufio"
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: beqos
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAlpha-8      100   1000.0 ns/op   96 B/op   2 allocs/op
BenchmarkBeta-8       200   2000.0 ns/op    0 B/op   0 allocs/op
BenchmarkGamma-8      300   3000.0 ns/op
PASS
ok    beqos 1.234s
`

func parseSample(t *testing.T, text string) *Report {
	t.Helper()
	rep, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParse(t *testing.T) {
	rep := parseSample(t, sampleOutput)
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Package != "beqos" {
		t.Errorf("metadata wrong: %+v", rep)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results", len(rep.Results))
	}
	a := rep.Results[0]
	if a.Name != "BenchmarkAlpha" || a.NsPerOp != 1000 || a.BytesPerOp != 96 || a.AllocsPerOp != 2 {
		t.Errorf("alpha parsed wrong: %+v", a)
	}
	if g := rep.Results[2]; g.AllocsPerOp != 0 || g.NsPerOp != 3000 {
		t.Errorf("gamma parsed wrong: %+v", g)
	}
}

// diffCase runs diffReports for a fresh run against the sample baseline.
func diffCase(t *testing.T, fresh string, gate string, nsTol float64) (int, string) {
	t.Helper()
	base := parseSample(t, sampleOutput)
	rep := parseSample(t, fresh)
	var sb strings.Builder
	fails := diffReports(&sb, base, rep, regexp.MustCompile(gate), nsTol)
	return fails, sb.String()
}

func TestDiffClean(t *testing.T) {
	fails, out := diffCase(t, sampleOutput, ".", 0.30)
	if fails != 0 {
		t.Errorf("identical runs should pass, got %d failures:\n%s", fails, out)
	}
}

func TestDiffNsRegression(t *testing.T) {
	fresh := strings.Replace(sampleOutput, "1000.0 ns/op", "1400.0 ns/op", 1)
	fails, out := diffCase(t, fresh, ".", 0.30)
	if fails != 1 || !strings.Contains(out, "ns/op regressed") {
		t.Errorf("40%% ns regression should fail once, got %d:\n%s", fails, out)
	}
	// Within tolerance: 40% is fine at a 50% gate.
	if fails, _ := diffCase(t, fresh, ".", 0.50); fails != 0 {
		t.Errorf("regression within tolerance should pass, got %d failures", fails)
	}
}

func TestDiffAllocRegression(t *testing.T) {
	fresh := strings.Replace(sampleOutput, "96 B/op   2 allocs/op", "96 B/op   3 allocs/op", 1)
	fails, out := diffCase(t, fresh, ".", 0.30)
	if fails != 1 || !strings.Contains(out, "allocs/op 2 → 3") {
		t.Errorf("any allocs/op increase should fail, got %d:\n%s", fails, out)
	}
}

func TestDiffGateRestrictsFailures(t *testing.T) {
	fresh := strings.Replace(sampleOutput, "1000.0 ns/op", "9000.0 ns/op", 1)
	fails, out := diffCase(t, fresh, "BenchmarkBeta", 0.30)
	if fails != 0 {
		t.Errorf("ungated regression should not fail, got %d:\n%s", fails, out)
	}
	if !strings.Contains(out, "ok (ungated)") {
		t.Errorf("ungated rows should still be reported:\n%s", out)
	}
}

func TestDiffMissingGatedBenchmark(t *testing.T) {
	fresh := strings.Replace(sampleOutput, "BenchmarkBeta-8       200   2000.0 ns/op    0 B/op   0 allocs/op\n", "", 1)
	fails, out := diffCase(t, fresh, "BenchmarkBeta", 0.30)
	if fails != 1 || !strings.Contains(out, "missing from fresh run") {
		t.Errorf("dropped gated benchmark should fail, got %d:\n%s", fails, out)
	}
}

func TestDiffNewBenchmarkIsInformational(t *testing.T) {
	fresh := sampleOutput + "BenchmarkDelta-8   50   500.0 ns/op\n"
	fails, out := diffCase(t, fresh, ".", 0.30)
	if fails != 0 || !strings.Contains(out, "new (no baseline)") {
		t.Errorf("benchmark without baseline should not fail, got %d:\n%s", fails, out)
	}
}

const metricOutput = sampleOutput +
	"BenchmarkHigh-8   500   7000.0 ns/op   100000 flows   276228 req/s   0 B/op   0 allocs/op\n"

func TestParseCustomMetrics(t *testing.T) {
	rep := parseSample(t, metricOutput)
	h := rep.Results[len(rep.Results)-1]
	if h.Name != "BenchmarkHigh" || h.AllocsPerOp != 0 || h.BytesPerOp != 0 {
		t.Fatalf("high parsed wrong: %+v", h)
	}
	if h.Metrics["flows"] != 100000 || h.Metrics["req/s"] != 276228 {
		t.Errorf("custom metrics parsed wrong: %+v", h.Metrics)
	}
	// Plain results carry no metrics map (keeps the JSON compact).
	if rep.Results[0].Metrics != nil {
		t.Errorf("alpha should have no metrics: %+v", rep.Results[0].Metrics)
	}
}

func TestParseFloors(t *testing.T) {
	fls, err := parseFloors("High=req/s:20000,Alpha|Beta=flows:1e5")
	if err != nil {
		t.Fatal(err)
	}
	if len(fls) != 2 || fls[0].unit != "req/s" || fls[0].min != 20000 || fls[1].min != 1e5 {
		t.Errorf("floors parsed wrong: %+v", fls)
	}
	if fls, err := parseFloors(""); err != nil || fls != nil {
		t.Errorf("empty spec should be a no-op, got %v, %v", fls, err)
	}
	for _, bad := range []string{"High", "High=req/s", "High=req/s:fast", "(=req/s:1"} {
		if _, err := parseFloors(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

// floorCase runs checkFloors on a fresh run parsed from text.
func floorCase(t *testing.T, fresh, spec string) (int, string) {
	t.Helper()
	fls, err := parseFloors(spec)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	fails := checkFloors(&sb, parseSample(t, fresh), fls)
	return fails, sb.String()
}

func TestFloorPass(t *testing.T) {
	fails, out := floorCase(t, metricOutput, "High=req/s:20000")
	if fails != 0 || !strings.Contains(out, "floor ok") {
		t.Errorf("metric above floor should pass, got %d:\n%s", fails, out)
	}
}

func TestFloorBelowMinimum(t *testing.T) {
	fails, out := floorCase(t, metricOutput, "High=req/s:300000")
	if fails != 1 || !strings.Contains(out, "FLOOR FAIL") {
		t.Errorf("metric below floor should fail, got %d:\n%s", fails, out)
	}
}

func TestFloorMissingMetricOrBenchmark(t *testing.T) {
	// The matched benchmark lacks the unit: fail.
	fails, out := floorCase(t, metricOutput, "High=widgets/s:1")
	if fails != 1 || !strings.Contains(out, "no widgets/s metric") {
		t.Errorf("missing unit should fail, got %d:\n%s", fails, out)
	}
	// No benchmark matches the pattern at all: fail, so a rename cannot
	// silently drop the floor.
	fails, out = floorCase(t, metricOutput, "Vanished=req/s:1")
	if fails != 1 || !strings.Contains(out, "no benchmark matches") {
		t.Errorf("unmatched floor should fail, got %d:\n%s", fails, out)
	}
}
