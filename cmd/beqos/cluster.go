package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"time"

	"beqos/internal/cluster"
	"beqos/internal/obs"
)

// cmdCluster runs an N-node admission cluster in one process: every node
// owns its topology links, serves the resv wire protocol to clients on its
// own listener, places path reservations with two-choice routing, and
// forwards remote hops to the owning node over the in-process peer plane.
// Stock clients (`beqos load -addr`, `beqos reserve -addr`) can point at
// any node's listener; their flow IDs address pair 0.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	topoFile := fs.String("topology", "", "topology spec file (node/link/path/pair lines; overrides -nodes)")
	nodes := fs.Int("nodes", 4, "generate a ring topology with this many nodes (when -topology is empty)")
	capacity := fs.Float64("capacity", 32, "per-link capacity of the generated ring")
	alt := fs.Bool("alt", true, "give each generated pair an alternate two-hop path (exercises two-choice)")
	utilName := fs.String("util", "adaptive", "utility function deriving each link's kmax: rigid, adaptive")
	ttl := fs.Duration("ttl", 0, "soft-state TTL: unrefreshed path reservations expire on every hop (0 = never)")
	routerName := fs.String("router", "two-choice", "path placement: two-choice (balanced allocation), hash (consistent hash)")
	antiEntropy := fs.Duration("anti-entropy", cluster.DefaultAntiEntropy, "periodic full-gossip interval (negative = piggybacked gossip only)")
	stale := fs.Duration("stale", 0, "gossip staleness bound before two-choice falls back to hashing (0 = 8x anti-entropy)")
	listen := fs.String("listen", "127.0.0.1:4750", "client-plane base address; node i listens on port+i")
	debugAddr := fs.String("debug-addr", "", "per-node /metrics, /healthz, /debug/pprof base address, port+i per node (empty = off)")
	printOnly := fs.Bool("print", false, "validate and describe the topology, then exit without serving")
	quiet := fs.Bool("quiet", false, "suppress per-event logging")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := cluster.Ring(*nodes, *capacity, *alt)
	if *topoFile != "" {
		raw, err := os.ReadFile(*topoFile)
		if err != nil {
			return err
		}
		spec = string(raw)
	}
	topo, err := cluster.ParseTopology(spec)
	if err != nil {
		return err
	}
	util, err := parseUtility(*utilName)
	if err != nil {
		return err
	}
	var router cluster.RouterMode
	switch *routerName {
	case "two-choice":
		router = cluster.RouteTwoChoice
	case "hash":
		router = cluster.RouteHash
	default:
		return fmt.Errorf("unknown -router %q (want two-choice or hash)", *routerName)
	}

	cfg := cluster.Config{
		Topology:    topo,
		Util:        util,
		TTL:         *ttl,
		Router:      router,
		AntiEntropy: *antiEntropy,
		Stale:       *stale,
	}
	if !*quiet {
		cfg.Logf = func(format string, a ...interface{}) {
			fmt.Printf(format+"\n", a...)
		}
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	defer cl.Close()

	fmt.Printf("beqos: cluster of %d nodes, %d links, %d pairs (router %s, util %s)\n",
		len(topo.Nodes), len(topo.Links), len(topo.Pairs), router, util.Name())
	for gi := range topo.Links {
		l := &topo.Links[gi]
		fmt.Printf("  link %-12s owner %-8s capacity %-8g kmax %d\n",
			l.ID, topo.Nodes[l.Owner], l.Capacity, cl.Bounds()[gi])
	}
	for pi := range topo.Pairs {
		pr := &topo.Pairs[pi]
		fmt.Printf("  pair %-12s %s -> %-8s %d candidate path(s)\n",
			pr.ID, topo.Nodes[pr.Src], topo.Nodes[pr.Dst], len(pr.Paths))
	}
	if *printOnly {
		return nil
	}

	cl.Start()
	host, portStr, err := net.SplitHostPort(*listen)
	if err != nil {
		return fmt.Errorf("-listen: %w", err)
	}
	basePort, err := strconv.Atoi(portStr)
	if err != nil {
		return fmt.Errorf("-listen: %w", err)
	}
	lns := make([]net.Listener, 0, cl.Len())
	defer func() {
		for _, ln := range lns {
			_ = ln.Close()
		}
	}()
	for i := 0; i < cl.Len(); i++ {
		addr := net.JoinHostPort(host, strconv.Itoa(basePort+i))
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return fmt.Errorf("node %s listener: %w", topo.Nodes[i], err)
		}
		lns = append(lns, ln)
		go func(n *cluster.Node, ln net.Listener) { _ = n.ServeClients(ln) }(cl.Node(i), ln)
		fmt.Printf("beqos: node %-8s serving clients on tcp %s\n", topo.Nodes[i], ln.Addr())
	}
	if *debugAddr != "" {
		dhost, dportStr, err := net.SplitHostPort(*debugAddr)
		if err != nil {
			return fmt.Errorf("-debug-addr: %w", err)
		}
		dport, err := strconv.Atoi(dportStr)
		if err != nil {
			return fmt.Errorf("-debug-addr: %w", err)
		}
		for i := 0; i < cl.Len(); i++ {
			dln, err := net.Listen("tcp", net.JoinHostPort(dhost, strconv.Itoa(dport+i)))
			if err != nil {
				return fmt.Errorf("node %s debug listener: %w", topo.Nodes[i], err)
			}
			lns = append(lns, dln)
			go func(n *cluster.Node, dln net.Listener) {
				_ = http.Serve(dln, obs.DebugMux(n.Registry()))
			}(cl.Node(i), dln)
			fmt.Printf("beqos: node %-8s observability on http://%s (/metrics, /healthz, /debug/pprof/)\n",
				topo.Nodes[i], dln.Addr())
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	fmt.Println("beqos: cluster shutting down")
	// Give in-flight placements a beat to finish before the teardown.
	time.Sleep(50 * time.Millisecond)
	return nil
}
