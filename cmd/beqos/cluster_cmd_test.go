package main

import (
	"net"
	"os"
	"path/filepath"
	"testing"

	"beqos/internal/cluster"
)

func TestCmdClusterPrint(t *testing.T) {
	// Generated ring, validated and described without serving.
	if err := cmdCluster([]string{"-print", "-nodes", "3", "-capacity", "16"}); err != nil {
		t.Fatal(err)
	}
	// From a spec file.
	dir := t.TempDir()
	spec := filepath.Join(dir, "topo.spec")
	if err := os.WriteFile(spec, []byte("node a\nlink l a 8\npath p l\npair x a a p\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCluster([]string{"-print", "-topology", spec}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdClusterErrors(t *testing.T) {
	if err := cmdCluster([]string{"-print", "-router", "nope"}); err == nil {
		t.Error("unknown router accepted")
	}
	if err := cmdCluster([]string{"-print", "-util", "nope"}); err == nil {
		t.Error("unknown utility accepted")
	}
	if err := cmdCluster([]string{"-print", "-topology", "/does/not/exist"}); err == nil {
		t.Error("missing topology file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.spec")
	if err := os.WriteFile(bad, []byte("link orphan nowhere 8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCluster([]string{"-print", "-topology", bad}); err == nil {
		t.Error("invalid topology accepted")
	}
	if err := cmdCluster([]string{"-listen", "not-an-address", "-nodes", "1"}); err == nil {
		t.Error("malformed -listen accepted")
	}
}

// TestCmdLoadAgainstClusterNode is the interop acceptance: the stock load
// harness, pointed at a cluster node's client listener, measures the same
// blocking the analytical model predicts — a single-pair, single-link
// cluster is semantically one admission server.
func TestCmdLoadAgainstClusterNode(t *testing.T) {
	topo, err := cluster.ParseTopology("node a\nlink l a 10\npath p l\npair x a a p\n")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = cl.Node(0).ServeClients(ln) }()

	err = cmdLoad([]string{
		"-addr", ln.Addr().String(),
		"-capacity", "10", "-util", "adaptive", "-mean", "10", "-hold", "0.5",
		"-duration", "30", "-seed", "7",
	})
	if err != nil {
		t.Fatal(err)
	}
	if a := cl.Node(0).LinkActive(0); a != 0 {
		t.Errorf("cluster node still holds %d claims after the harness", a)
	}
}
