package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"time"

	"beqos"
	"beqos/internal/obs"
	"beqos/internal/report"
	"beqos/internal/resv"
	"beqos/internal/sim"
	"beqos/internal/sweep"
)

// modelFlags registers the shared -load/-mean/-z/-util flags on fs and
// returns a builder that resolves them into a Model after parsing.
func modelFlags(fs *flag.FlagSet) func() (*beqos.Model, error) {
	loadName := fs.String("load", "poisson", "load distribution: poisson, exponential, algebraic, trace")
	mean := fs.Float64("mean", 100, "mean offered load k̄")
	z := fs.Float64("z", 3.0, "algebraic tail power (with -load algebraic)")
	traceFile := fs.String("trace", "", "file of whitespace-separated load samples (with -load trace)")
	utilName := fs.String("util", "rigid", "utility function: rigid, adaptive, elastic")
	return func() (*beqos.Model, error) {
		var load beqos.Load
		var err error
		switch *loadName {
		case "poisson":
			load, err = beqos.PoissonLoad(*mean)
		case "exponential":
			load, err = beqos.ExponentialLoad(*mean)
		case "algebraic":
			load, err = beqos.AlgebraicLoad(*z, *mean)
		case "trace":
			load, err = loadTrace(*traceFile)
		default:
			return nil, fmt.Errorf("unknown load %q", *loadName)
		}
		if err != nil {
			return nil, err
		}
		var util beqos.Utility
		switch *utilName {
		case "rigid":
			util = beqos.RigidUtility()
		case "adaptive":
			util = beqos.AdaptiveUtility()
		case "elastic":
			util = beqos.ElasticUtility()
		default:
			return nil, fmt.Errorf("unknown utility %q", *utilName)
		}
		return beqos.NewModel(load, util)
	}
}

// loadTrace reads whitespace-separated integer load samples from a file.
func loadTrace(path string) (beqos.Load, error) {
	if path == "" {
		return beqos.Load{}, fmt.Errorf("-load trace requires -trace FILE")
	}
	f, err := os.Open(path)
	if err != nil {
		return beqos.Load{}, err
	}
	defer f.Close()
	var samples []int
	sc := bufio.NewScanner(f)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		v, err := strconv.Atoi(sc.Text())
		if err != nil {
			return beqos.Load{}, fmt.Errorf("trace %s: %w", path, err)
		}
		samples = append(samples, v)
	}
	if err := sc.Err(); err != nil {
		return beqos.Load{}, err
	}
	return beqos.TraceLoad(samples)
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	build := modelFlags(fs)
	capacity := fs.Float64("capacity", 200, "link capacity C")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := build()
	if err != nil {
		return err
	}
	b := m.BestEffort(*capacity)
	r := m.Reservation(*capacity)
	gap, err := m.BandwidthGap(*capacity)
	if err != nil {
		return err
	}
	tb := report.NewTable("quantity", "value")
	tb.AddRow("capacity C", *capacity)
	tb.AddRow("kmax(C)", m.KMax(*capacity))
	tb.AddRow("best-effort B(C)", b)
	tb.AddRow("reservation R(C)", r)
	tb.AddRow("performance gap δ(C)", r-b)
	tb.AddRow("bandwidth gap Δ(C)", gap)
	return tb.Render(os.Stdout)
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	build := modelFlags(fs)
	cmin := fs.Float64("cmin", 50, "first capacity")
	cmax := fs.Float64("cmax", 1000, "last capacity")
	step := fs.Float64("step", 50, "capacity step")
	csvOut := fs.Bool("csv", false, "emit CSV instead of a table")
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !(*step > 0) || !(*cmax >= *cmin) {
		return fmt.Errorf("need cmin ≤ cmax and step > 0")
	}
	m, err := build()
	if err != nil {
		return err
	}
	// The sweep runs in parallel; sweep.Map preserves grid order, so the
	// table and CSV are identical for every worker count.
	cs := sweep.Grid(*cmin, *cmax, *step)
	rows, err := sweep.Map(context.Background(), *parallel, cs, func(c float64) ([]float64, error) {
		b := m.BestEffort(c)
		r := m.Reservation(c)
		gap, err := m.BandwidthGap(c)
		if err != nil {
			return nil, err
		}
		return []float64{c, b, r, r - b, gap}, nil
	})
	if err != nil {
		return err
	}
	tb := report.NewTable("C", "B(C)", "R(C)", "delta", "Delta")
	for _, row := range rows {
		tb.AddRow(row[0], row[1], row[2], row[3], row[4])
	}
	if *csvOut {
		return report.WriteCSV(os.Stdout, []string{"C", "B", "R", "delta", "Delta"}, rows)
	}
	return tb.Render(os.Stdout)
}

func cmdWelfare(args []string) error {
	fs := flag.NewFlagSet("welfare", flag.ExitOnError)
	build := modelFlags(fs)
	price := fs.Float64("price", 0.01, "unit bandwidth price p")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := build()
	if err != nil {
		return err
	}
	pb, err := m.ProvisionBestEffort(*price)
	if err != nil {
		return err
	}
	pr, err := m.ProvisionReservation(*price)
	if err != nil {
		return err
	}
	gamma, err := m.GammaEqualize(*price)
	if err != nil {
		return err
	}
	tb := report.NewTable("quantity", "best-effort", "reservation")
	tb.AddRow("capacity C(p)", pb.Capacity, pr.Capacity)
	tb.AddRow("welfare W(p)", pb.Welfare, pr.Welfare)
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	_, err = fmt.Printf("\nequalizing price ratio γ(%g) = %.4f\n"+
		"(reservation bandwidth may cost up to %.1f%% more and still win)\n",
		*price, gamma, (gamma-1)*100)
	return err
}

func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	capacity := fs.Float64("capacity", 120, "link capacity C")
	rate := fs.Float64("rate", 10, "flow arrival rate")
	hold := fs.Float64("hold", 10, "mean holding time")
	reserve := fs.Bool("reserve", false, "enable reservation admission control")
	horizon := fs.Float64("horizon", 20000, "simulated duration")
	samples := fs.Int("samples", 1, "utility samples per flow (0 = time average)")
	seed := fs.Uint64("seed", 1, "random seed")
	utilName := fs.String("util", "rigid", "utility function: rigid, adaptive")
	workloadPath := fs.String("workload", "", "drive the run from a declarative scenario spec file (-rate/-hold/-horizon are ignored; per-phase results)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workloadPath != "" {
		return simWorkload(*workloadPath, *capacity, *utilName, *reserve, *samples, *seed)
	}
	util := beqos.RigidUtility()
	if *utilName == "adaptive" {
		util = beqos.AdaptiveUtility()
	}
	traffic, err := beqos.PoissonTraffic(*rate, *hold)
	if err != nil {
		return err
	}
	res, err := beqos.Simulate(beqos.SimConfig{
		Capacity:     *capacity,
		Util:         util,
		Traffic:      traffic,
		Reservations: *reserve,
		Horizon:      *horizon,
		Warmup:       *horizon / 20,
		Samples:      *samples,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}
	tb := report.NewTable("quantity", "value")
	tb.AddRow("offered load", *rate**hold)
	tb.AddRow("mean occupancy", res.MeanOccupancy)
	tb.AddRow("flows", res.Flows)
	tb.AddRow("admitted", res.Admitted)
	tb.AddRow("rejected", res.Rejected)
	tb.AddRow("blocking rate", res.BlockingRate)
	tb.AddRow("mean per-flow utility", res.MeanUtility)
	return tb.Render(os.Stdout)
}

// simWorkload runs the flow-level simulator from a declarative scenario
// spec and reports per-phase arrival/admission breakdowns.
func simWorkload(path string, capacity float64, utilName string, reserve bool, samples int, seed uint64) error {
	scn, err := loadWorkloadSpec(path)
	if err != nil {
		return err
	}
	util, err := parseUtility(utilName)
	if err != nil {
		return err
	}
	pol := sim.BestEffort
	if reserve {
		pol = sim.Reservation
	}
	res, err := sim.Run(sim.Config{
		Capacity: capacity,
		Util:     util,
		Policy:   pol,
		Workload: scn,
		Samples:  samples,
		Seed1:    seed,
		Seed2:    seed ^ 0x9e3779b97f4a7c15,
	})
	if err != nil {
		return err
	}
	fmt.Printf("beqos: sim scenario %q (%s, capacity %g, util %s, %g time units, seed %d)\n",
		scn.Name, pol, capacity, util.Name(), scn.Duration(), seed)
	tb := report.NewTable("quantity", "value")
	tb.AddRow("mean occupancy", res.AvgOccupancy)
	tb.AddRow("flows", res.Flows)
	tb.AddRow("admitted", res.Admitted)
	tb.AddRow("rejected", res.Rejected)
	tb.AddRow("mean per-flow utility", res.MeanUtility)
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	pt := report.NewTable("phase", "window", "flows", "admitted", "rejected")
	for i, ph := range scn.Phases {
		pt.AddRow(ph.Name, fmt.Sprintf("[%g, %g)", ph.Start, ph.Start+ph.Duration),
			res.PhaseFlows[i], res.PhaseAdmitted[i], res.PhaseRejected[i])
	}
	return pt.Render(os.Stdout)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":4742", "listen address")
	capacity := fs.Float64("capacity", 8, "link capacity C")
	utilName := fs.String("util", "rigid", "utility function: rigid, adaptive")
	ttl := fs.Duration("ttl", 0, "soft-state TTL: unrefreshed reservations expire (0 = never)")
	transport := fs.String("transport", "tcp", "serving transport: tcp (stream and mux clients), udp (datagram mode), all (both on the same address)")
	quiet := fs.Bool("quiet", false, "suppress per-event logging")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (empty = off)")
	policyName := fs.String("policy", "counting", "admission policy: counting, bandwidth, token-bucket, tiered, measured")
	knobs := registerPolicyKnobs(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	util, err := parseUtility(*utilName)
	if err != nil {
		return err
	}
	pol, err := buildServePolicy(*policyName, *capacity, util, knobs)
	if err != nil {
		return err
	}
	srv, err := resv.NewServerPolicy(pol, *ttl)
	if err != nil {
		return err
	}
	defer srv.Close()
	if !*quiet {
		srv.Logf = func(format string, a ...interface{}) {
			fmt.Printf(format+"\n", a...)
		}
	}
	var ln net.Listener
	var pc net.PacketConn
	switch *transport {
	case "tcp", "all":
		if ln, err = net.Listen("tcp", *addr); err != nil {
			return err
		}
	case "udp":
	default:
		return fmt.Errorf("unknown -transport %q (want tcp, udp, or all)", *transport)
	}
	if *transport == "udp" || *transport == "all" {
		if pc, err = net.ListenPacket("udp", *addr); err != nil {
			if ln != nil {
				_ = ln.Close()
			}
			return err
		}
	}
	ttlNote := "reservations never expire"
	if *ttl > 0 {
		ttlNote = fmt.Sprintf("soft-state TTL %v", *ttl)
	}
	if ln != nil {
		fmt.Printf("beqos: admission server on tcp %s (capacity %g, policy %s, kmax %d, %d shards, %s)\n",
			ln.Addr(), *capacity, pol.Name(), srv.KMax(), srv.Shards(), ttlNote)
	}
	if pc != nil {
		fmt.Printf("beqos: admission server on udp %s (capacity %g, policy %s, kmax %d, %d shards, %s)\n",
			pc.LocalAddr(), *capacity, pol.Name(), srv.KMax(), srv.Shards(), ttlNote)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var dln net.Listener
	if *debugAddr != "" {
		dln, err = net.Listen("tcp", *debugAddr)
		if err != nil {
			if ln != nil {
				_ = ln.Close()
			}
			if pc != nil {
				_ = pc.Close()
			}
			return fmt.Errorf("debug listener: %w", err)
		}
		fmt.Printf("beqos: observability on http://%s (/metrics, /healthz, /debug/pprof/)\n", dln.Addr())
		go func() { _ = http.Serve(dln, obs.DebugMux(srv.Registry())) }()
	}
	go func() {
		<-ctx.Done()
		if ln != nil {
			_ = ln.Close()
		}
		if pc != nil {
			_ = pc.Close()
		}
		if dln != nil {
			_ = dln.Close()
		}
	}()
	errc := make(chan error, 2)
	if ln != nil {
		go func() { errc <- srv.Serve(ln) }()
	}
	if pc != nil {
		go func() { errc <- srv.ServePacket(pc) }()
	}
	err = <-errc
	if ctx.Err() != nil {
		fmt.Println("beqos: shutting down")
		return nil
	}
	return err
}

func cmdReserve(args []string) error {
	fs := flag.NewFlagSet("reserve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:4742", "server address")
	flows := fs.Int("flows", 12, "number of reservations to request")
	hold := fs.Duration("hold", 2*time.Second, "how long to hold granted reservations")
	retries := fs.Int("retries", 0, "retry attempts per denied flow")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	client, err := beqos.DialAdmission(ctx, "tcp", *addr)
	if err != nil {
		return err
	}
	defer client.Close()
	granted, denied := 0, 0
	for id := 1; id <= *flows; id++ {
		var ok bool
		var share float64
		var nRetries int
		if *retries > 0 {
			ok, share, nRetries, err = client.ReserveWithRetry(ctx, uint64(id), 1, beqos.AdmissionRetryPolicy{
				MaxAttempts: *retries + 1,
				BaseDelay:   100 * time.Millisecond,
				Multiplier:  1.5,
				Jitter:      0.3,
			})
		} else {
			ok, share, err = client.Reserve(ctx, uint64(id), 1)
		}
		if err != nil {
			return err
		}
		if ok {
			granted++
			fmt.Printf("flow %2d: GRANTED share %.3g (after %d retries)\n", id, share, nRetries)
		} else {
			denied++
			fmt.Printf("flow %2d: DENIED\n", id)
		}
	}
	kmax, active, err := client.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\ngranted %d, denied %d; server at %d/%d reservations\n", granted, denied, active, kmax)
	if *hold > 0 && granted > 0 {
		fmt.Printf("holding reservations for %v…\n", *hold)
		time.Sleep(*hold)
	}
	return nil
}

func cmdGamma(args []string) error {
	fs := flag.NewFlagSet("gamma", flag.ExitOnError)
	build := modelFlags(fs)
	pmin := fs.Float64("pmin", 0.001, "lowest price")
	pmax := fs.Float64("pmax", 0.5, "highest price")
	points := fs.Int("points", 8, "log-spaced price points")
	csvOut := fs.Bool("csv", false, "emit CSV instead of a table")
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !(*pmin > 0) || !(*pmax > *pmin) || *points < 2 {
		return fmt.Errorf("need 0 < pmin < pmax and ≥ 2 points")
	}
	m, err := build()
	if err != nil {
		return err
	}
	ps := sweep.LogGrid(*pmin, *pmax, *points)
	rows, err := sweep.Map(context.Background(), *parallel, ps, func(p float64) ([]float64, error) {
		g, err := m.GammaEqualize(p)
		if err != nil {
			return nil, err
		}
		pb, err := m.ProvisionBestEffort(p)
		if err != nil {
			return nil, err
		}
		pr, err := m.ProvisionReservation(p)
		if err != nil {
			return nil, err
		}
		return []float64{p, g, pb.Capacity, pr.Capacity, pb.Welfare, pr.Welfare}, nil
	})
	if err != nil {
		return err
	}
	tb := report.NewTable("p", "gamma", "C_B", "C_R", "W_B", "W_R")
	for _, row := range rows {
		tb.AddRow(row[0], row[1], row[2], row[3], row[4], row[5])
	}
	if *csvOut {
		return report.WriteCSV(os.Stdout, []string{"p", "gamma", "C_B", "C_R", "W_B", "W_R"}, rows)
	}
	return tb.Render(os.Stdout)
}

func cmdFixedLoad(args []string) error {
	fs := flag.NewFlagSet("fixedload", flag.ExitOnError)
	capacity := fs.Float64("capacity", 100, "link capacity C")
	utilName := fs.String("util", "rigid", "utility function: rigid, adaptive, elastic")
	ktop := fs.Int("ktop", 0, "tabulate V(k) up to this k (0 = summary only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var util beqos.Utility
	switch *utilName {
	case "rigid":
		util = beqos.RigidUtility()
	case "adaptive":
		util = beqos.AdaptiveUtility()
	case "elastic":
		util = beqos.ElasticUtility()
	default:
		return fmt.Errorf("unknown utility %q", *utilName)
	}
	kmax, v, finite := beqos.FixedLoadOptimum(util, *capacity)
	if !finite {
		fmt.Printf("V(k) = k·π(C/k) increases without a finite maximum at C = %g:\n", *capacity)
		fmt.Println("the utility is elastic; admission control never helps and the")
		fmt.Println("best-effort-only architecture is ideal (§2).")
	} else {
		fmt.Printf("V(k) = k·π(C/k) peaks at kmax = %d with V = %.4f at C = %g:\n", kmax, v, *capacity)
		fmt.Println("admission control should deny service beyond kmax (§2).")
	}
	if *ktop > 0 {
		tb := report.NewTable("k", "V(k)")
		for k := 1; k <= *ktop; k++ {
			tb.AddRow(k, beqos.FixedLoadTotalUtility(util, *capacity, k))
		}
		fmt.Println()
		return tb.Render(os.Stdout)
	}
	return nil
}

func cmdPlot(args []string) error {
	fs := flag.NewFlagSet("plot", flag.ExitOnError)
	build := modelFlags(fs)
	cmin := fs.Float64("cmin", 10, "first capacity")
	cmax := fs.Float64("cmax", 1000, "last capacity")
	points := fs.Int("points", 60, "number of capacities")
	gap := fs.Bool("gap", false, "plot the bandwidth gap Δ(C) instead of B/R")
	width := fs.Int("width", 72, "plot width in characters")
	height := fs.Int("height", 18, "plot height in characters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !(*cmin > 0) || !(*cmax > *cmin) || *points < 2 {
		return fmt.Errorf("need 0 < cmin < cmax and ≥ 2 points")
	}
	m, err := build()
	if err != nil {
		return err
	}
	step := (*cmax - *cmin) / float64(*points-1)
	var cs, bs, rs, gaps []float64
	for i := 0; i < *points; i++ {
		c := *cmin + float64(i)*step
		cs = append(cs, c)
		if *gap {
			g, err := m.BandwidthGap(c)
			if err != nil {
				return err
			}
			gaps = append(gaps, g)
		} else {
			bs = append(bs, m.BestEffort(c))
			rs = append(rs, m.Reservation(c))
		}
	}
	var p report.Plot
	p.XLabel = "capacity C"
	if *gap {
		p.Title = "bandwidth gap Δ(C): extra capacity best-effort needs"
		p.YLabel = "Δ"
		if err := p.Add(report.Series{Name: "Δ(C)", X: cs, Y: gaps}); err != nil {
			return err
		}
	} else {
		p.Title = "per-flow utility: best-effort vs reservations"
		p.YLabel = "utility"
		if err := p.Add(report.Series{Name: "B(C)", X: cs, Y: bs}); err != nil {
			return err
		}
		if err := p.Add(report.Series{Name: "R(C)", X: cs, Y: rs}); err != nil {
			return err
		}
	}
	return p.Render(os.Stdout, *width, *height)
}

func cmdExtension(args []string) error {
	fs := flag.NewFlagSet("extension", flag.ExitOnError)
	build := modelFlags(fs)
	capacity := fs.Float64("capacity", 200, "link capacity C")
	samples := fs.Int("samples", 0, "sampling extension: judge flows by the worst of S samples")
	alpha := fs.Float64("retry-alpha", -1, "retry extension: per-retry utility penalty α (≥ 0 enables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := build()
	if err != nil {
		return err
	}
	if (*samples > 0) == (*alpha >= 0) {
		return fmt.Errorf("pass exactly one of -samples S or -retry-alpha α")
	}
	tb := report.NewTable("quantity", "basic model", "with extension")
	if *samples > 0 {
		sp, err := m.Sampling(*samples)
		if err != nil {
			return err
		}
		gBasic, err := m.BandwidthGap(*capacity)
		if err != nil {
			return err
		}
		gExt, err := sp.BandwidthGap(*capacity)
		if err != nil {
			return err
		}
		tb.AddRow("B(C)", m.BestEffort(*capacity), sp.BestEffort(*capacity))
		tb.AddRow("R(C)", m.Reservation(*capacity), sp.Reservation(*capacity))
		tb.AddRow("performance gap δ(C)", m.PerformanceGap(*capacity), sp.PerformanceGap(*capacity))
		tb.AddRow("bandwidth gap Δ(C)", gBasic, gExt)
		if err := tb.Render(os.Stdout); err != nil {
			return err
		}
		_, err = fmt.Printf("\nsampling S = %d (§5.1): flows judged by their worst sampled moment\n", *samples)
		return err
	}
	rt, err := m.Retry(*alpha)
	if err != nil {
		return err
	}
	rExt, err := rt.Reservation(*capacity)
	if err != nil {
		return err
	}
	dExt, err := rt.PerformanceGap(*capacity)
	if err != nil {
		return err
	}
	gBasic, err := m.BandwidthGap(*capacity)
	if err != nil {
		return err
	}
	gExt, err := rt.BandwidthGap(*capacity)
	if err != nil {
		return err
	}
	eq, err := rt.Equilibrium(*capacity)
	if err != nil {
		return err
	}
	tb.AddRow("R(C)", m.Reservation(*capacity), rExt)
	tb.AddRow("performance gap δ(C)", m.PerformanceGap(*capacity), dExt)
	tb.AddRow("bandwidth gap Δ(C)", gBasic, gExt)
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	_, err = fmt.Printf("\nretrying α = %g (§5.2): inflated load L̂ = %.2f, blocking θ = %.4f, retries/flow D = %.4f\n",
		*alpha, eq.EffectiveMean, eq.Blocking, eq.Retries)
	return err
}
