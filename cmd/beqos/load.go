package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"beqos/internal/core"
	"beqos/internal/dist"
	"beqos/internal/loadgen"
	"beqos/internal/report"
	"beqos/internal/resv"
	"beqos/internal/utility"
	"beqos/internal/workload"
)

// cmdLoad runs the load harness against an admission server — in-process
// over net.Pipe by default, or a running one with -addr — and
// cross-validates the measured blocking and utility against the analytical
// model. It exits non-zero when any check falls outside the 3σ bound, so
// it doubles as an end-to-end oracle for the serving layer.
func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	addr := fs.String("addr", "", "attack a running server at this address instead of an in-process one")
	capacity := fs.Float64("capacity", 100, "link capacity C (must match the server when -addr is set)")
	utilName := fs.String("util", "adaptive", "utility function: rigid, adaptive")
	mean := fs.Float64("mean", 100, "offered load k̄ (arrival rate is k̄/hold)")
	hold := fs.Float64("hold", 1, "mean flow holding time, virtual time units")
	duration := fs.Float64("duration", 80, "measured horizon, virtual time units")
	warmup := fs.Float64("warmup", 0, "excluded warmup prefix (0 = 5·hold)")
	conns := fs.Int("conns", 4, "client connections")
	seed := fs.Uint64("seed", 1, "random seed (fixed seed ⇒ identical statistics)")
	dropEvery := fs.Int("drop-every", 0, "drop a connection at every n-th reserved departure (0 = off)")
	retries := fs.Int("retries", 0, "extra attempts per denied arrival via the retry path")
	probeTTL := fs.Duration("probe-ttl", 0, "also probe soft state against a TTL server (0 = skip)")
	transport := fs.String("transport", "classic", "protocol transport: classic (one stream per endpoint), mux (flow-multiplexed streams), udp (datagram mode with retransmission)")
	batch := fs.Int("batch", 0, "coalesce simultaneous protocol ops into multi-reserve bodies of up to n ops (stream transports; 0/1 = single-frame)")
	udpLoss := fs.Int("udp-loss", 0, "drop every n-th datagram in each direction (udp transport; 0 = lossless)")
	udpTimeout := fs.Duration("udp-timeout", 0, "datagram retransmit flight timeout (0 = 25ms)")
	workloadPath := fs.String("workload", "", "drive the run from a declarative scenario spec file instead of the stationary Poisson pump (-mean/-hold/-duration/-warmup are ignored)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var util utility.Function
	switch *utilName {
	case "rigid":
		r, err := utility.NewRigid(1)
		if err != nil {
			return err
		}
		util = r
	case "adaptive":
		util = utility.NewAdaptive()
	default:
		return fmt.Errorf("unknown utility %q (the load harness needs admission control; elastic has none)", *utilName)
	}
	if !(*hold > 0) || !(*mean > 0) {
		return fmt.Errorf("need positive -mean and -hold")
	}

	cfg := loadgen.Config{
		Capacity:     *capacity,
		Util:         util,
		Conns:        *conns,
		Seed1:        *seed,
		Seed2:        *seed ^ 0x9e3779b97f4a7c15,
		DropEvery:    *dropEvery,
		Transport:    *transport,
		UDPLossEvery: *udpLoss,
		UDPTimeout:   *udpTimeout,
		Batch:        *batch,
	}
	var scn *workload.Scenario
	if *workloadPath != "" {
		s, err := loadWorkloadSpec(*workloadPath)
		if err != nil {
			return err
		}
		scn = s
		cfg.Workload = s
	} else {
		cfg.Rate = *mean / *hold
		cfg.Hold = *hold
		cfg.Duration = *duration
		cfg.Warmup = *warmup
	}
	if *retries > 0 {
		cfg.RetryAttempts = *retries + 1
	}
	target := "in-process server"
	if *addr != "" {
		cfg.Addr = *addr
		target = "server at " + *addr
	} else {
		srv, err := resv.NewServer(*capacity, util)
		if err != nil {
			return err
		}
		cfg.Server = srv
	}
	if scn != nil {
		fmt.Printf("beqos: load harness vs %s (capacity %g, util %s, scenario %q: %d phases over %g time units, %d conns, %s transport, seed %d)\n",
			target, *capacity, util.Name(), scn.Name, len(scn.Phases), scn.Duration(), cfg.Conns, cfg.Transport, *seed)
	} else {
		fmt.Printf("beqos: load harness vs %s (capacity %g, util %s, k̄ %g, %d conns, %s transport, seed %d)\n",
			target, *capacity, util.Name(), *mean, cfg.Conns, cfg.Transport, *seed)
	}

	res, err := loadgen.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("flows %d  attempts %d  denied %d  grants %d  teardowns %d  retries %d  drops %d  reissued %d  peak load %d\n",
		res.Flows, res.Attempts, res.Denied, res.Grants, res.Teardowns, res.Retries, res.Drops, res.Reissued, res.PeakLoad)
	if *batch >= 2 {
		fmt.Printf("batched bodies %d carrying %d ops (batch limit %d)\n", res.Batches, res.BatchedOps, *batch)
	}
	if cfg.Transport == "udp" {
		timeout := cfg.UDPTimeout
		if timeout == 0 {
			timeout = 25 * time.Millisecond
		}
		lossNote := "lossless"
		if *udpLoss > 0 {
			lossNote = fmt.Sprintf("loss 1/%d each way", *udpLoss)
		}
		fmt.Printf("udp retransmits %d (flight timeout %v, %s)\n", res.UDPRetransmits, timeout, lossNote)
	}
	fmt.Println()

	if scn != nil {
		pt := report.NewTable("phase", "window", "flows", "deny rate", "overload", "mean load", "utility")
		for _, ps := range res.Phases {
			pt.AddRow(ps.Name, fmt.Sprintf("[%g, %g)", ps.Start, ps.End), ps.Flows,
				fmt.Sprintf("%.4f±%.4f", ps.DenyRate, ps.DenySigma),
				fmt.Sprintf("%.4f", ps.OverloadFraction),
				fmt.Sprintf("%.1f", ps.MeanLoad),
				fmt.Sprintf("%.4f", ps.MeanUtility))
		}
		if err := pt.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	// The oracle: per-phase checks against the model wherever the scenario
	// is analytically tractable, the classic whole-run battery otherwise
	// (and additionally when the whole scenario is one stationary segment).
	var cr *loadgen.CheckReport
	if scn != nil {
		r, err := loadgen.CrossCheckWorkload(res, scn, util, *capacity)
		if err != nil {
			return err
		}
		cr = r
		if smean, ok := scn.Stationary(); ok {
			load, err := dist.NewPoisson(smean)
			if err != nil {
				return err
			}
			m, err := core.New(load, util)
			if err != nil {
				return err
			}
			classic, err := loadgen.CrossCheck(res, m, *capacity)
			if err != nil {
				return err
			}
			seen := map[string]bool{}
			for _, ck := range cr.Checks {
				seen[ck.Name] = true
			}
			for _, ck := range classic.Checks {
				if !seen[ck.Name] {
					cr.Checks = append(cr.Checks, ck)
				}
			}
		}
	} else {
		load, err := dist.NewPoisson(*mean)
		if err != nil {
			return err
		}
		m, err := core.New(load, util)
		if err != nil {
			return err
		}
		r, err := loadgen.CrossCheck(res, m, *capacity)
		if err != nil {
			return err
		}
		cr = r
	}
	tb := report.NewTable("statistic", "measured", "model", "sigma", "z", "ok")
	for _, ck := range cr.Checks {
		ok := "yes"
		if !ck.OK {
			ok = "NO"
		}
		tb.AddRow(ck.Name, ck.Measured, ck.Predicted, ck.Sigma, ck.Z, ok)
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	lat := res.Latency
	fmt.Printf("\nlatency: %d rpcs  p50 %v  p95 %v  p99 %v  max %v  (wall %v)\n",
		lat.Count, latDur(lat.Quantile(0.5)), latDur(lat.Quantile(0.95)),
		latDur(lat.Quantile(0.99)), latDur(lat.Max), res.Elapsed.Round(time.Millisecond))

	// For an in-process run the server's /metrics instruments must agree
	// with the harness's client-side tallies — the same conservation law an
	// operator would check by scraping a live server. Grants count
	// admissions only (a re-sent grant lands in resv_dup_reserves_total),
	// so the grant equality holds even under injected datagram loss;
	// denial equality does not — a denial whose reply is lost is counted
	// once per retransmitted attempt on the server, once on the client.
	if cfg.Server != nil {
		sm := cfg.Server.Metrics()
		if g := int(sm.Grants.Load()); g != res.Grants {
			return fmt.Errorf("server /metrics disagree with the harness: grants %d vs %d", g, res.Grants)
		}
		if *udpLoss > 0 {
			fmt.Printf("server /metrics agree: grants %d (dup reserves %d; denial tallies incomparable under loss: server %d, client %d)\n",
				res.Grants, sm.DupReserves.Load(), sm.Denials.Load(), res.Denied)
		} else {
			if d := int(sm.Denials.Load()); d != res.Denied {
				return fmt.Errorf("server /metrics disagree with the harness: denials %d vs %d", d, res.Denied)
			}
			fmt.Printf("server /metrics agree: grants %d, denials %d\n", res.Grants, res.Denied)
		}
	}

	if *probeTTL > 0 {
		pcfg := loadgen.ProbeConfig{Addr: *addr}
		if *addr == "" {
			psrv, err := resv.NewServerTTL(*capacity, util, *probeTTL)
			if err != nil {
				return err
			}
			defer psrv.Close()
			pcfg.Server = psrv
		}
		pr, err := loadgen.ProbeSoftState(pcfg)
		if err != nil {
			return err
		}
		status := "OK"
		if !pr.OK() {
			status = "FAILED"
		}
		fmt.Printf("soft-state probe: ttl %v  kept %d/%d  expired %d/%d  retry granted %v after %d retries  %s\n",
			pr.TTL, pr.Kept, pr.Keepers, pr.Expired, pr.Stalled, pr.RetryGranted, pr.Retries, status)
		if !pr.OK() {
			return fmt.Errorf("soft-state probe failed: %+v", pr)
		}
	}
	if !cr.AllOK() {
		return fmt.Errorf("cross-validation failed: %v", cr.Failed())
	}
	fmt.Println("\ncross-validation: all checks within 3σ of the analytical model")
	return nil
}

// latDur renders a latency histogram value (nanoseconds) as a duration.
func latDur(ns uint64) time.Duration {
	return time.Duration(ns).Round(time.Microsecond)
}
