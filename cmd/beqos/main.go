// Command beqos is the command-line interface to the best-effort versus
// reservations model (Breslau & Shenker, SIGCOMM 1998).
//
// Usage:
//
//	beqos eval    -load poisson -mean 100 -util rigid -capacity 200
//	beqos sweep   -load algebraic -z 3 -util adaptive -cmin 50 -cmax 1000 -step 50
//	beqos welfare -load exponential -util rigid -price 0.01
//	beqos gamma   -load algebraic -util rigid -pmin 0.001 -pmax 0.5
//	beqos fixedload -capacity 100 -util adaptive
//	beqos sim     -capacity 120 -rate 10 -hold 10 -reserve
//	beqos serve   -addr :4742 -capacity 8 -transport all -debug-addr :4743
//	beqos reserve -addr localhost:4742 -flows 12
//	beqos load    -capacity 100 -util adaptive -mean 100 -probe-ttl 250ms
//	beqos load    -capacity 100 -util adaptive -mean 100 -transport udp -udp-loss 10
//	beqos serve   -addr :4742 -capacity 8 -policy tiered -tier-standard 6
//	beqos sweep-policy -policy tiered -mode live -k1 1,0.75,0.5
//	beqos sweep-policy -policy token-bucket -k1 2,6,12 -k2 4,8
//	beqos cluster -nodes 4 -capacity 32 -router two-choice -listen 127.0.0.1:4750
//	beqos workload specs
//	beqos sim     -capacity 120 -util adaptive -reserve -workload specs/flashcrowd.spec
//	beqos load    -capacity 100 -util adaptive -workload specs/baseline.spec
//
// Every subcommand prints -h help. Loads: poisson, exponential, algebraic
// (with -z). Utilities: rigid, adaptive, elastic.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "eval":
		err = cmdEval(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "welfare":
		err = cmdWelfare(os.Args[2:])
	case "gamma":
		err = cmdGamma(os.Args[2:])
	case "fixedload":
		err = cmdFixedLoad(os.Args[2:])
	case "plot":
		err = cmdPlot(os.Args[2:])
	case "extension":
		err = cmdExtension(os.Args[2:])
	case "sim":
		err = cmdSim(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "reserve":
		err = cmdReserve(os.Args[2:])
	case "load":
		err = cmdLoad(os.Args[2:])
	case "sweep-policy":
		err = cmdSweepPolicy(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "workload":
		err = cmdWorkload(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "beqos: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "beqos: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `beqos — best-effort versus reservations (SIGCOMM 1998)

Commands:
  eval      compute B(C), R(C), δ(C), Δ(C) and kmax at one capacity
  sweep     tabulate the same quantities over a capacity range
  welfare   provisioning and the equalizing price ratio γ(p) at a price
  gamma     sweep γ(p) over a log-spaced price range
  fixedload analyze the §2 fixed-load model V(k) = k·π(C/k)
  plot      render B/R or Δ curves as an ASCII chart
  extension evaluate the §5 sampling or retrying extension at a capacity
  sim       run the flow-level simulator on one link
  serve     run a reservation admission-control server (-transport tcp,
            udp, or all; -debug-addr serves /metrics, /healthz, /debug/pprof)
  reserve   request reservations from a running server
  load      drive an admission server with Poisson load and cross-validate
            the measured blocking and utility against the analytical model
            (-transport classic, mux, or udp; -udp-loss injects packet loss)
  sweep-policy
            grid-search an admission policy's knobs over the simulator or
            the live load harness, cross-validating each cell against the
            model where a closed form exists (-quick is a CI smoke)
  cluster   run an N-node path-admission cluster in one process: per-node
            client listeners, two-choice or hashed path placement, gossiped
            link occupancy (-topology spec file or a generated -nodes ring)
  workload  validate a corpus of declarative scenario spec files and
            summarize each (sim and load consume them via -workload)

Run 'beqos <command> -h' for flags.
`)
}
