package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"beqos"
)

func TestCmdEval(t *testing.T) {
	if err := cmdEval([]string{"-load", "exponential", "-util", "rigid", "-capacity", "200"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-load", "nope"}); err == nil {
		t.Error("unknown load should fail")
	}
	if err := cmdEval([]string{"-util", "nope"}); err == nil {
		t.Error("unknown utility should fail")
	}
}

func TestCmdSweep(t *testing.T) {
	if err := cmdSweep([]string{"-load", "poisson", "-cmin", "50", "-cmax", "150", "-step", "50"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep([]string{"-cmin", "100", "-cmax", "50"}); err == nil {
		t.Error("inverted range should fail")
	}
	if err := cmdSweep([]string{"-step", "0"}); err == nil {
		t.Error("zero step should fail")
	}
	if err := cmdSweep([]string{"-csv", "-cmin", "100", "-cmax", "100", "-step", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdWelfare(t *testing.T) {
	if err := cmdWelfare([]string{"-load", "exponential", "-price", "0.05"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdWelfare([]string{"-price", "-1"}); err == nil {
		t.Error("negative price should fail")
	}
}

func TestCmdSim(t *testing.T) {
	if err := cmdSim([]string{"-capacity", "120", "-horizon", "2000", "-util", "adaptive"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSim([]string{"-capacity", "120", "-horizon", "2000", "-reserve"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSim([]string{"-capacity", "0"}); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestServeAndReserveOverLoopback(t *testing.T) {
	// Start a server the way cmdServe does, then drive it with cmdReserve.
	srv, err := beqos.NewAdmissionServer(3, beqos.RigidUtility())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.Serve(ln) }()

	err = cmdReserve([]string{
		"-addr", ln.Addr().String(),
		"-flows", "5",
		"-hold", "0s",
	})
	if err != nil {
		t.Fatal(err)
	}
	// The client connection closed, so reservations were released.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Active() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.Active() != 0 {
		t.Errorf("server still holds %d reservations", srv.Active())
	}
}

func TestCmdReserveConnectError(t *testing.T) {
	err := cmdReserve([]string{"-addr", "127.0.0.1:1"})
	if err == nil || !strings.Contains(err.Error(), "dial") {
		t.Errorf("expected dial error, got %v", err)
	}
}

func TestCmdLoad(t *testing.T) {
	// A small in-process acceptance run with fault injection, the retry
	// path, and the soft-state probe. cmdLoad returns an error when any
	// cross-validation check falls outside 3σ, so a nil error IS the
	// assertion.
	err := cmdLoad([]string{
		"-capacity", "10", "-util", "adaptive", "-mean", "10", "-hold", "0.5",
		"-duration", "30", "-conns", "2", "-seed", "3",
		"-drop-every", "9", "-retries", "2", "-probe-ttl", "150ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cmdLoad([]string{"-util", "elastic"}); err == nil {
		t.Error("elastic utility should fail (no admission threshold)")
	}
	if err := cmdLoad([]string{"-mean", "0"}); err == nil {
		t.Error("zero mean should fail")
	}
	if err := cmdLoad([]string{"-capacity", "-5"}); err == nil {
		t.Error("negative capacity should fail")
	}
}

func TestCmdWorkload(t *testing.T) {
	specs := filepath.Join("..", "..", "specs")
	if err := cmdWorkload([]string{specs}); err != nil {
		t.Fatal(err)
	}
	if err := cmdWorkload([]string{filepath.Join(specs, "baseline.spec")}); err != nil {
		t.Fatal(err)
	}
	if err := cmdWorkload([]string{}); err == nil {
		t.Error("no arguments should fail")
	}
	if err := cmdWorkload([]string{filepath.Join(specs, "no-such.spec")}); err == nil {
		t.Error("missing spec should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.spec")
	if err := os.WriteFile(bad, []byte("scenario broken\nphase p 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdWorkload([]string{bad}); err == nil {
		t.Error("invalid spec should fail")
	}
}

func TestCmdSimWorkload(t *testing.T) {
	spec := filepath.Join("..", "..", "specs", "flashcrowd.spec")
	if err := cmdSim([]string{"-capacity", "120", "-util", "adaptive", "-reserve", "-workload", spec}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSim([]string{"-workload", "no-such.spec"}); err == nil {
		t.Error("missing spec should fail")
	}
}

func TestCmdLoadWorkload(t *testing.T) {
	// The per-phase oracle is live here: a nil error means every
	// tractable phase sat within 3σ of the model.
	spec := filepath.Join("..", "..", "specs", "baseline.spec")
	if err := cmdLoad([]string{"-capacity", "100", "-util", "adaptive", "-workload", spec, "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdLoad([]string{"-capacity", "100", "-workload", "no-such.spec"}); err == nil {
		t.Error("missing spec should fail")
	}
}

func TestCmdLoadOverTCP(t *testing.T) {
	// The harness must also work against a server across a real socket,
	// the way `beqos serve` + `beqos load -addr` compose.
	srv, err := beqos.NewAdmissionServer(10, beqos.AdaptiveUtility())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.Serve(ln) }()
	err = cmdLoad([]string{
		"-addr", ln.Addr().String(),
		"-capacity", "10", "-util", "adaptive", "-mean", "10", "-hold", "0.5",
		"-duration", "30", "-seed", "5",
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Active() != 0 {
		t.Errorf("server still holds %d reservations after the harness", srv.Active())
	}
}

func TestCmdLoadTransports(t *testing.T) {
	// The mux transport with connection faults, and the udp transport with
	// injected datagram loss: both must still pass the 3σ cross-validation
	// and the exact grant agreement cmdLoad enforces.
	err := cmdLoad([]string{
		"-capacity", "10", "-util", "adaptive", "-mean", "10", "-hold", "0.5",
		"-duration", "30", "-conns", "2", "-seed", "3",
		"-transport", "mux", "-drop-every", "9",
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cmdLoad([]string{
		"-capacity", "10", "-util", "adaptive", "-mean", "10", "-hold", "0.5",
		"-duration", "30", "-conns", "2", "-seed", "3",
		"-transport", "udp", "-udp-loss", "20", "-udp-timeout", "10ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cmdLoad([]string{"-transport", "quic"}); err == nil {
		t.Error("unknown transport should fail")
	}
	if err := cmdLoad([]string{"-udp-loss", "10"}); err == nil {
		t.Error("-udp-loss without -transport udp should fail")
	}
}

func TestCmdLoadOverUDP(t *testing.T) {
	// The harness against a datagram server across a real socket, the way
	// `beqos serve -transport udp` + `beqos load -addr -transport udp`
	// compose.
	srv, err := beqos.NewAdmissionServer(10, beqos.AdaptiveUtility())
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() { _ = srv.ServePacket(pc) }()
	err = cmdLoad([]string{
		"-addr", pc.LocalAddr().String(),
		"-capacity", "10", "-util", "adaptive", "-mean", "10", "-hold", "0.5",
		"-duration", "30", "-seed", "5", "-transport", "udp",
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Active() != 0 {
		t.Errorf("server still holds %d reservations after the harness", srv.Active())
	}
}

func TestCmdGamma(t *testing.T) {
	if err := cmdGamma([]string{"-load", "poisson", "-pmin", "0.05", "-pmax", "0.3", "-points", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGamma([]string{"-pmin", "0.5", "-pmax", "0.1"}); err == nil {
		t.Error("inverted price range should fail")
	}
	if err := cmdGamma([]string{"-csv", "-pmin", "0.05", "-pmax", "0.3", "-points", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdFixedLoad(t *testing.T) {
	if err := cmdFixedLoad([]string{"-capacity", "50", "-util", "rigid", "-ktop", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdFixedLoad([]string{"-util", "elastic"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdFixedLoad([]string{"-util", "nope"}); err == nil {
		t.Error("unknown utility should fail")
	}
}

func TestCmdEvalWithTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.txt")
	if err := os.WriteFile(path, []byte("90 100 110 95 105 100 100\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-load", "trace", "-trace", path, "-capacity", "100"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-load", "trace"}); err == nil {
		t.Error("missing trace file should fail")
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("12 potato"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-load", "trace", "-trace", bad}); err == nil {
		t.Error("non-numeric trace should fail")
	}
}

func TestCmdPlot(t *testing.T) {
	if err := cmdPlot([]string{"-load", "exponential", "-cmin", "50", "-cmax", "400", "-points", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPlot([]string{"-gap", "-cmin", "50", "-cmax", "200", "-points", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPlot([]string{"-cmin", "100", "-cmax", "50"}); err == nil {
		t.Error("inverted range should fail")
	}
}

func TestCmdExtension(t *testing.T) {
	if err := cmdExtension([]string{"-load", "exponential", "-util", "adaptive", "-samples", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdExtension([]string{"-load", "algebraic", "-util", "adaptive", "-retry-alpha", "0.1", "-capacity", "300"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdExtension([]string{}); err == nil {
		t.Error("neither extension selected should fail")
	}
	if err := cmdExtension([]string{"-samples", "5", "-retry-alpha", "0.1"}); err == nil {
		t.Error("both extensions selected should fail")
	}
}
