package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"beqos/internal/policy"
	"beqos/internal/report"
	"beqos/internal/search"
	"beqos/internal/utility"
)

// parseUtility maps a -util flag value onto an admission-capable utility.
func parseUtility(name string) (utility.Function, error) {
	switch name {
	case "rigid":
		return utility.NewRigid(1)
	case "adaptive":
		return utility.NewAdaptive(), nil
	default:
		return nil, fmt.Errorf("unknown utility %q (admission control needs a finite kmax; elastic has none)", name)
	}
}

// policyKnobs carries the per-policy tuning flags of `serve -policy`.
type policyKnobs struct {
	tbRate, tbBurst             float64
	tierStandard, tierSheddable int
	measureTarget, measureTau   float64
}

// registerPolicyKnobs declares the knob flags on fs and returns the struct
// they land in.
func registerPolicyKnobs(fs *flag.FlagSet) *policyKnobs {
	kn := &policyKnobs{}
	fs.Float64Var(&kn.tbRate, "tb-rate", 0, "token-bucket refill rate, admissions per second (required with -policy token-bucket)")
	fs.Float64Var(&kn.tbBurst, "tb-burst", 0, "token-bucket burst depth (0 = kmax)")
	fs.IntVar(&kn.tierStandard, "tier-standard", 0, "tiered: standard-class admission limit (0 = kmax)")
	fs.IntVar(&kn.tierSheddable, "tier-sheddable", 0, "tiered: sheddable-class admission limit (0 = the standard limit)")
	fs.Float64Var(&kn.measureTarget, "measure-target", 0, "measured: occupancy target the estimator gates on (0 = kmax)")
	fs.Float64Var(&kn.measureTau, "measure-tau", 0, "measured: occupancy-estimator time constant in seconds (0 = 30)")
	return kn
}

// buildServePolicy constructs the admission policy `serve -policy` names.
func buildServePolicy(name string, capacity float64, util utility.Function, kn *policyKnobs) (policy.Policy, error) {
	if name == "bandwidth" {
		return policy.NewBandwidth(capacity)
	}
	kmax, ok := utility.KMax(util, capacity)
	if !ok {
		return nil, fmt.Errorf("utility %q has no finite kmax at capacity %g", util.Name(), capacity)
	}
	switch name {
	case "counting":
		return policy.NewCounting(capacity, kmax)
	case "token-bucket":
		inner, err := policy.NewCounting(capacity, kmax)
		if err != nil {
			return nil, err
		}
		if !(kn.tbRate > 0) {
			return nil, fmt.Errorf("-policy token-bucket needs -tb-rate > 0 (admissions per second)")
		}
		burst := kn.tbBurst
		if burst == 0 {
			burst = float64(kmax)
		}
		return policy.NewTokenBucket(inner, kn.tbRate, burst)
	case "tiered":
		std, shed := kn.tierStandard, kn.tierSheddable
		if std == 0 {
			std = kmax
		}
		if shed == 0 {
			shed = std
		}
		return policy.NewTiered(capacity, kmax, std, shed)
	case "measured":
		target := kn.measureTarget
		if target == 0 {
			target = float64(kmax)
		}
		tau := kn.measureTau
		if tau == 0 {
			tau = 30
		}
		return policy.NewMeasured(capacity, kmax, target, tau)
	default:
		return nil, fmt.Errorf("unknown policy %q (want counting, bandwidth, token-bucket, tiered, or measured)", name)
	}
}

// parseFloats parses a comma-separated knob grid.
func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("knob grid %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// cmdSweepPolicy grid-searches an admission policy's knobs over the
// simulator or the live load harness and cross-validates every cell that
// has a closed-form counterpart. It exits non-zero when a checked cell
// falls outside the 3σ bound or any cell records protocol anomalies, so
// `sweep-policy -quick` doubles as a CI smoke for the policy plane.
func cmdSweepPolicy(args []string) error {
	fs := flag.NewFlagSet("sweep-policy", flag.ExitOnError)
	policyName := fs.String("policy", "counting", "admission policy: counting, bandwidth, token-bucket, tiered, measured")
	mode := fs.String("mode", "sim", "measurement plane: sim (replicated simulator) or live (load harness against a real server; clock-free policies only)")
	capacity := fs.Float64("capacity", 8, "link capacity C")
	utilName := fs.String("util", "rigid", "utility function: rigid, adaptive")
	kmax := fs.Int("kmax", 0, "critical admission threshold (0 = derive kmax(C) from the utility)")
	mean := fs.Float64("mean", 6, "offered load k̄ (arrival rate is k̄/hold)")
	hold := fs.Float64("hold", 0.5, "mean flow holding time, virtual time units")
	duration := fs.Float64("duration", 200, "measured horizon per cell, virtual time units")
	replicates := fs.Int("replicates", 4, "independent sim replications per cell")
	k1Flag := fs.String("k1", "", "comma-separated K1 grid (tiered: standard fraction of kmax; token-bucket: refill rate; measured: target fraction of kmax)")
	k2Flag := fs.String("k2", "", "comma-separated K2 grid (tiered: sheddable fraction; token-bucket: burst; measured: estimator τ)")
	quick := fs.Bool("quick", false, "fast CI smoke: live tiered cells at the full and half standard tier")
	parallel := fs.Int("parallel", 0, "cell-level workers (0 = GOMAXPROCS)")
	seed := fs.Uint64("seed", 1, "random seed (fixed seed ⇒ identical reports)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	util, err := parseUtility(*utilName)
	if err != nil {
		return err
	}
	k1, err := parseFloats(*k1Flag)
	if err != nil {
		return err
	}
	k2, err := parseFloats(*k2Flag)
	if err != nil {
		return err
	}
	if !(*hold > 0) || !(*mean > 0) {
		return fmt.Errorf("need positive -mean and -hold")
	}
	spec := search.Spec{
		Policy:     *policyName,
		Capacity:   *capacity,
		Util:       util,
		KMax:       *kmax,
		Rate:       *mean / *hold,
		Hold:       *hold,
		Duration:   *duration,
		Mode:       *mode,
		Replicates: *replicates,
		K1:         k1,
		K2:         k2,
		Seed1:      *seed,
		Seed2:      *seed ^ 0x9e3779b97f4a7c15,
		Workers:    *parallel,
	}
	if *quick {
		// A deliberately small live grid: the full-tier cell must pass the
		// complete model cross-validation and the half-tier cell its PASTA
		// counterpart, in about a second.
		rigid, err := utility.NewRigid(1)
		if err != nil {
			return err
		}
		spec = search.Spec{
			Policy:   "tiered",
			Capacity: 8,
			Util:     rigid,
			Rate:     12,
			Hold:     0.5,
			Duration: 120,
			Mode:     "live",
			K1:       []float64{1, 0.5},
			Seed1:    spec.Seed1,
			Seed2:    spec.Seed2,
			Workers:  *parallel,
		}
	}
	rep, err := search.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	tb := report.NewTable("k1", "k2", "L", "blocking", "sigma", "model", "z", "shed", "status")
	for _, c := range rep.Cells {
		status := "ok"
		switch {
		case !c.OK:
			status = "FAIL"
		case c.Degenerate:
			status = "DEGENERATE"
		case !c.Checked:
			status = "unchecked"
		}
		model, z := "-", "-"
		if c.Checked {
			model = fmt.Sprintf("%.4f", c.Predicted)
			z = fmt.Sprintf("%.2f", c.Z)
		}
		tb.AddRow(c.K1, c.K2, c.Limit, fmt.Sprintf("%.4f", c.Blocking),
			fmt.Sprintf("%.4f", c.Sigma), model, z, fmt.Sprintf("%.3f", c.ShedFraction), status)
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\npolicy %s (%s mode): kmax %d, offered load %.3g, %d/%d cells with an analytical counterpart\n",
		rep.Policy, rep.Mode, rep.KMax, rep.MeanLoad, rep.Checked(), len(rep.Cells))
	if !rep.AllOK() {
		return fmt.Errorf("policy search failed: a checked cell missed its analytical counterpart by more than %gσ or recorded anomalies", search.SigmaBound)
	}
	fmt.Println("all checked cells within the 3σ bound; no anomalies")
	return nil
}
