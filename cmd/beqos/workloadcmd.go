package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"beqos/internal/report"
	"beqos/internal/workload"
)

// loadWorkloadSpec reads and parses one scenario spec file.
func loadWorkloadSpec(path string) (*workload.Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	scn, err := workload.Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return scn, nil
}

// cmdWorkload validates a corpus of workload spec files and summarizes
// each scenario. It exits non-zero when any spec fails to parse, so it
// doubles as the CI spec-corpus gate (`make workload-check`).
func cmdWorkload(args []string) error {
	fs := flag.NewFlagSet("workload", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: beqos workload <spec-file-or-dir>...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("workload: need spec files or directories to validate")
	}
	var paths []string
	for _, arg := range fs.Args() {
		info, err := os.Stat(arg)
		if err != nil {
			return err
		}
		if !info.IsDir() {
			paths = append(paths, arg)
			continue
		}
		found, err := filepath.Glob(filepath.Join(arg, "*.spec"))
		if err != nil {
			return err
		}
		if len(found) == 0 {
			return fmt.Errorf("workload: no *.spec files in %s", arg)
		}
		paths = append(paths, found...)
	}
	sort.Strings(paths)

	tb := report.NewTable("file", "scenario", "phases", "duration", "classes", "stationary")
	var failures []string
	for _, path := range paths {
		scn, err := loadWorkloadSpec(path)
		if err != nil {
			failures = append(failures, err.Error())
			fmt.Fprintf(os.Stderr, "beqos: %v\n", err)
			continue
		}
		stationary := "no"
		if mean, ok := scn.Stationary(); ok {
			stationary = fmt.Sprintf("k̄ = %g", mean)
		}
		tb.AddRow(filepath.Base(path), scn.Name, len(scn.Phases), scn.Duration(), len(scn.Classes), stationary)
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	if len(failures) > 0 {
		return fmt.Errorf("workload: %d of %d specs failed to parse", len(failures), len(paths))
	}
	fmt.Printf("\n%d specs valid\n", len(paths))
	return nil
}
