package main

import (
	"fmt"

	"beqos/internal/core"
	"beqos/internal/dist"
	"beqos/internal/report"
	"beqos/internal/sched"
	"beqos/internal/sweep"
	"beqos/internal/utility"
)

// f0FixedLoad renders the §2 fixed-load curves V(k) = k·π(C/k) whose shape
// decides whether admission control pays: peaked for rigid and adaptive
// (inelastic) applications, monotone for elastic ones.
func (h *harness) f0FixedLoad() error {
	const c = 100.0
	rigid, err := utility.NewRigid(1)
	if err != nil {
		return err
	}
	fns := []utility.Function{rigid, utility.NewAdaptive(), utility.Elastic{}}
	const kTop = 300
	var rows [][]float64
	var p report.Plot
	p.Title = fmt.Sprintf("§2 fixed-load model: V(k) = k·π(C/k) at C = %g", c)
	p.XLabel = "offered load k"
	p.YLabel = "V(k)"
	ks := make([]float64, kTop)
	for i := range ks {
		ks[i] = float64(i + 1)
	}
	curves := make([][]float64, len(fns))
	for i, f := range fns {
		curves[i] = core.FixedLoadCurve(f, c, kTop)
		if err := p.Add(report.Series{Name: f.Name(), X: ks, Y: curves[i]}); err != nil {
			return err
		}
	}
	for k := 0; k < kTop; k++ {
		rows = append(rows, []float64{ks[k], curves[0][k], curves[1][k], curves[2][k]})
	}
	if err := h.writeCSV("f0_fixedload", []string{"k", "V_rigid", "V_adaptive", "V_elastic"}, rows); err != nil {
		return err
	}
	return h.writePlot("f0_fixedload", &p)
}

// x1Heterogeneous shows the §5 heterogeneous-flows extension: mixtures of
// sizes and utilities perturb the C ≈ k̄ region while leaving the
// asymptotic laws intact.
func (h *harness) x1Heterogeneous() error {
	rigid, err := utility.NewRigid(1)
	if err != nil {
		return err
	}
	mix, err := utility.NewMixture([]utility.Component{
		{Fn: rigid, Weight: 0.5, Demand: 1},
		{Fn: rigid, Weight: 0.3, Demand: 2},
		{Fn: utility.NewAdaptive(), Weight: 0.2, Demand: 0.5},
	})
	if err != nil {
		return err
	}
	load, err := h.load("algebraic")
	if err != nil {
		return err
	}
	pure, err := core.New(load, rigid)
	if err != nil {
		return err
	}
	hetero, err := core.New(load, mix)
	if err != nil {
		return err
	}
	tb := report.NewTable("C", "delta pure", "delta hetero", "Delta pure", "Delta hetero")
	var rows [][]float64
	cs := []float64{50, 100, 200, 400, 800, 1600}
	if h.quick {
		cs = []float64{100, 400}
	}
	type x1Row struct{ dp, dh, gp, gh float64 }
	points, err := sweep.Map(h.context(), h.workers, cs, func(c float64) (x1Row, error) {
		dp := pure.PerformanceGap(c)
		dh := hetero.PerformanceGap(c)
		gp, err := pure.BandwidthGap(c)
		if err != nil {
			return x1Row{}, err
		}
		gh, err := hetero.BandwidthGap(c)
		if err != nil {
			return x1Row{}, err
		}
		return x1Row{dp: dp, dh: dh, gp: gp, gh: gh}, nil
	})
	if err != nil {
		return err
	}
	for i, c := range cs {
		pt := points[i]
		tb.AddRow(c, pt.dp, pt.dh, pt.gp, pt.gh)
		rows = append(rows, []float64{c, pt.dp, pt.dh, pt.gp, pt.gh})
	}
	if err := h.writeCSV("x1_heterogeneous", []string{"C", "delta_pure", "delta_hetero", "Delta_pure", "Delta_hetero"}, rows); err != nil {
		return err
	}
	return h.writeTable("x1_heterogeneous", tb)
}

// x2Nonstationary shows the §5 nonstationary-loads extension: a mixture of
// load regimes inherits the heaviest component's asymptotics.
func (h *harness) x2Nonstationary() error {
	rigid, err := utility.NewRigid(1)
	if err != nil {
		return err
	}
	light, err := h.load("exponential")
	if err != nil {
		return err
	}
	heavy, err := h.load("algebraic")
	if err != nil {
		return err
	}
	mixed, err := dist.NewMixture([]dist.Discrete{light, heavy}, []float64{0.8, 0.2})
	if err != nil {
		return err
	}
	mLight, err := core.New(light, rigid)
	if err != nil {
		return err
	}
	mMixed, err := core.New(mixed, rigid)
	if err != nil {
		return err
	}
	mHeavy, err := core.New(heavy, rigid)
	if err != nil {
		return err
	}
	tb := report.NewTable("C", "Delta light", "Delta 80/20 mix", "Delta heavy")
	var rows [][]float64
	cs := []float64{100, 200, 400, 800, 1600}
	if h.quick {
		cs = []float64{200, 800}
	}
	type x2Row struct{ gl, gm, gh float64 }
	points, err := sweep.Map(h.context(), h.workers, cs, func(c float64) (x2Row, error) {
		gl, err := mLight.BandwidthGap(c)
		if err != nil {
			return x2Row{}, err
		}
		gm, err := mMixed.BandwidthGap(c)
		if err != nil {
			return x2Row{}, err
		}
		gh, err := mHeavy.BandwidthGap(c)
		if err != nil {
			return x2Row{}, err
		}
		return x2Row{gl: gl, gm: gm, gh: gh}, nil
	})
	if err != nil {
		return err
	}
	for i, c := range cs {
		pt := points[i]
		tb.AddRow(c, pt.gl, pt.gm, pt.gh)
		rows = append(rows, []float64{c, pt.gl, pt.gm, pt.gh})
	}
	if err := h.writeCSV("x2_nonstationary", []string{"C", "Delta_light", "Delta_mix", "Delta_heavy"}, rows); err != nil {
		return err
	}
	return h.writeTable("x2_nonstationary", tb)
}

// x3Footnote9 exhibits footnote 9: with sampling, even elastic
// applications gain from reservations once a finite kmax is imposed.
func (h *harness) x3Footnote9() error {
	load, err := h.load("exponential")
	if err != nil {
		return err
	}
	m, err := core.New(load, utility.Elastic{})
	if err != nil {
		return err
	}
	tb := report.NewTable("S", "C", "kmax", "B_S", "R_S", "delta_S")
	var rows [][]float64
	for _, s := range []int{1, 5, 10} {
		sp, err := core.NewSamplingWithKMax(m, s, 100)
		if err != nil {
			return err
		}
		for _, c := range []float64{80, 100, 150} {
			b := sp.BestEffort(c)
			r := sp.Reservation(c)
			tb.AddRow(s, c, 100, b, r, r-b)
			rows = append(rows, []float64{float64(s), c, 100, b, r, r - b})
		}
	}
	if err := h.writeCSV("x3_footnote9", []string{"S", "C", "kmax", "B", "R", "delta"}, rows); err != nil {
		return err
	}
	return h.writeTable("x3_footnote9", tb)
}

// x4Enforcement tabulates the scheduling substrate's effect: FIFO versus
// fair queueing for reserved flows facing an unreserved aggressor.
func (h *harness) x4Enforcement() error {
	reserved := []sched.Source{
		{Flow: 1, Rate: 0.28, PacketSize: 0.01},
		{Flow: 2, Rate: 0.28, PacketSize: 0.01},
		{Flow: 3, Rate: 0.28, PacketSize: 0.01},
	}
	tb := report.NewTable("aggressor rate", "victim FIFO", "victim SCFQ", "aggressor FIFO", "aggressor SCFQ")
	var rows [][]float64
	for _, rate := range []float64{0.5, 1, 2, 5, 10} {
		aggressor := sched.Source{Flow: 99, Rate: rate, PacketSize: 0.01}
		sources := append(append([]sched.Source{}, reserved...), aggressor)
		fifoStats, err := sched.RunLink(sched.NewFIFO(), 1, sources, 200)
		if err != nil {
			return err
		}
		fq := sched.NewSCFQ()
		for _, r := range reserved {
			if err := fq.SetWeight(r.Flow, 1); err != nil {
				return err
			}
		}
		if err := fq.SetWeight(99, 0.05); err != nil {
			return err
		}
		fqStats, err := sched.RunLink(fq, 1, sources, 200)
		if err != nil {
			return err
		}
		tb.AddRow(rate, fifoStats[1].Throughput, fqStats[1].Throughput,
			fifoStats[99].Throughput, fqStats[99].Throughput)
		rows = append(rows, []float64{rate, fifoStats[1].Throughput, fqStats[1].Throughput,
			fifoStats[99].Throughput, fqStats[99].Throughput})
	}
	if err := h.writeCSV("x4_enforcement",
		[]string{"aggr_rate", "victim_fifo", "victim_scfq", "aggr_fifo", "aggr_scfq"}, rows); err != nil {
		return err
	}
	return h.writeTable("x4_enforcement", tb)
}
