package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"beqos/internal/continuum"
	"beqos/internal/core"
	"beqos/internal/dist"
	"beqos/internal/report"
	"beqos/internal/sim"
	"beqos/internal/sweep"
	"beqos/internal/utility"
)

// kbar is the paper's mean offered load.
const kbar = 100.0

// harness owns the output directory, grid sizing, and the worker budget for
// the parallel sweeps. Every grid is evaluated through sweep.Map, which
// preserves input order, so the emitted CSV rows are byte-identical to a
// sequential run regardless of the worker count.
type harness struct {
	dir     string
	quick   bool
	workers int
	ctx     context.Context
}

// context returns the harness's cancellation context.
func (h *harness) context() context.Context {
	if h.ctx != nil {
		return h.ctx
	}
	return context.Background()
}

// cGrid returns the capacity grid for the figure sweeps.
func (h *harness) cGrid() []float64 {
	step := 10.0
	if h.quick {
		step = 100
	}
	return sweep.Grid(step, 1000, step)
}

// pGrid returns a log-spaced price grid. Quick mode shrinks it to 3 points;
// sweep.LogGrid guards the degenerate n < 2 case.
func (h *harness) pGrid(lo, hi float64, n int) []float64 {
	if h.quick {
		n = 3
	}
	return sweep.LogGrid(lo, hi, n)
}

func (h *harness) writeCSV(name string, header []string, rows [][]float64) error {
	f, err := os.Create(filepath.Join(h.dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return report.WriteCSV(f, header, rows)
}

func (h *harness) writePlot(name string, p *report.Plot) error {
	f, err := os.Create(filepath.Join(h.dir, name+".txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	return p.Render(f, 72, 20)
}

func (h *harness) load(name string) (dist.Discrete, error) {
	switch name {
	case "poisson":
		return dist.NewPoisson(kbar)
	case "exponential":
		return dist.NewExponentialMean(kbar)
	case "algebraic":
		return dist.NewAlgebraicMean(3.0, kbar)
	default:
		return nil, fmt.Errorf("unknown load %q", name)
	}
}

func (h *harness) util(name string) (utility.Function, error) {
	switch name {
	case "rigid":
		return utility.NewRigid(1)
	case "adaptive":
		return utility.NewAdaptive(), nil
	default:
		return nil, fmt.Errorf("unknown utility %q", name)
	}
}

func (h *harness) model(loadName, utilName string) (*core.Model, error) {
	load, err := h.load(loadName)
	if err != nil {
		return nil, err
	}
	util, err := h.util(utilName)
	if err != nil {
		return nil, err
	}
	return core.New(load, util)
}

// fig1 renders the adaptive utility curve of Figure 1.
func (h *harness) fig1() error {
	a := utility.NewAdaptive()
	var rows [][]float64
	var xs, ys []float64
	for b := 0.0; b <= 10; b += 0.05 {
		v := a.Eval(b)
		rows = append(rows, []float64{b, v})
		xs = append(xs, b)
		ys = append(ys, v)
	}
	if err := h.writeCSV("fig1_adaptive_utility", []string{"b", "pi"}, rows); err != nil {
		return err
	}
	var p report.Plot
	p.Title = fmt.Sprintf("Figure 1: adaptive utility π(b) = 1 − exp(−b²/(κ+b)), κ = %.5f", a.Kappa)
	p.XLabel = "bandwidth b"
	p.YLabel = "π(b)"
	if err := p.Add(report.Series{Name: "π", X: xs, Y: ys}); err != nil {
		return err
	}
	return h.writePlot("fig1_adaptive_utility", &p)
}

// gapsRow is one capacity point of a figure's utility/gap panels.
type gapsRow struct {
	b, r, g float64
}

// gammaRow is one price point of a figure's welfare panel.
type gammaRow struct {
	gamma  float64
	pb, pr core.Provision
}

// figureFamily renders the six panels of Figures 2–4 for one load.
func (h *harness) figureFamily(prefix, loadName string) error {
	for _, utilName := range []string{"rigid", "adaptive"} {
		m, err := h.model(loadName, utilName)
		if err != nil {
			return err
		}
		// Panels a/d (utility curves) and b/e (bandwidth gap), swept in
		// parallel over the capacity grid.
		cs := h.cGrid()
		points, err := sweep.Map(h.context(), h.workers, cs, func(c float64) (gapsRow, error) {
			b := m.BestEffort(c)
			r := m.Reservation(c)
			g, gerr := m.BandwidthGap(c)
			if gerr != nil {
				return gapsRow{}, fmt.Errorf("%s/%s at C=%g: %w", loadName, utilName, c, gerr)
			}
			return gapsRow{b: b, r: r, g: g}, nil
		})
		if err != nil {
			return err
		}
		var utilRows, gapRows [][]float64
		var bs, rs, gaps []float64
		for i, c := range cs {
			pt := points[i]
			utilRows = append(utilRows, []float64{c, pt.b, pt.r, pt.r - pt.b})
			gapRows = append(gapRows, []float64{c, pt.g})
			bs = append(bs, pt.b)
			rs = append(rs, pt.r)
			gaps = append(gaps, pt.g)
		}
		base := fmt.Sprintf("%s_%s_%s", prefix, loadName, utilName)
		if err := h.writeCSV(base+"_utility", []string{"C", "B", "R", "delta"}, utilRows); err != nil {
			return err
		}
		if err := h.writeCSV(base+"_gap", []string{"C", "Delta"}, gapRows); err != nil {
			return err
		}
		var up report.Plot
		up.Title = fmt.Sprintf("%s: %s load, %s applications — normalized utility", prefix, loadName, utilName)
		up.XLabel = "capacity C"
		up.YLabel = "utility"
		if err := up.Add(report.Series{Name: "B(C)", X: cs, Y: bs}); err != nil {
			return err
		}
		if err := up.Add(report.Series{Name: "R(C)", X: cs, Y: rs}); err != nil {
			return err
		}
		if err := h.writePlot(base+"_utility", &up); err != nil {
			return err
		}
		var gp report.Plot
		gp.Title = fmt.Sprintf("%s: %s load, %s applications — bandwidth gap Δ(C)", prefix, loadName, utilName)
		gp.XLabel = "capacity C"
		gp.YLabel = "Δ"
		if err := gp.Add(report.Series{Name: "Δ(C)", X: cs, Y: gaps}); err != nil {
			return err
		}
		if err := h.writePlot(base+"_gap", &gp); err != nil {
			return err
		}
		// Panels c/f: equalizing price ratio γ(p), swept in parallel over
		// the price grid.
		lo := 1e-3
		if loadName == "algebraic" && utilName == "adaptive" {
			lo = 1e-2 // heavy case; see DESIGN.md timing notes
		}
		ps := h.pGrid(lo, 0.6, 10)
		gpoints, err := sweep.Map(h.context(), h.workers, ps, func(p float64) (gammaRow, error) {
			gamma, gerr := m.GammaEqualize(p)
			if gerr != nil {
				return gammaRow{}, fmt.Errorf("%s/%s γ(%g): %w", loadName, utilName, p, gerr)
			}
			pb, gerr := m.ProvisionBestEffort(p)
			if gerr != nil {
				return gammaRow{}, gerr
			}
			pr, gerr := m.ProvisionReservation(p)
			if gerr != nil {
				return gammaRow{}, gerr
			}
			return gammaRow{gamma: gamma, pb: pb, pr: pr}, nil
		})
		if err != nil {
			return err
		}
		var gammaRows [][]float64
		var gammas []float64
		for i, p := range ps {
			gr := gpoints[i]
			gammaRows = append(gammaRows, []float64{p, gr.gamma, gr.pb.Capacity, gr.pr.Capacity, gr.pb.Welfare, gr.pr.Welfare})
			gammas = append(gammas, gr.gamma)
		}
		if err := h.writeCSV(base+"_gamma",
			[]string{"p", "gamma", "C_B", "C_R", "W_B", "W_R"}, gammaRows); err != nil {
			return err
		}
		var pp report.Plot
		pp.Title = fmt.Sprintf("%s: %s load, %s applications — equalizing price ratio γ(p)", prefix, loadName, utilName)
		pp.XLabel = "price p"
		pp.YLabel = "γ"
		if err := pp.Add(report.Series{Name: "γ(p)", X: ps, Y: gammas}); err != nil {
			return err
		}
		if err := h.writePlot(base+"_gamma", &pp); err != nil {
			return err
		}
	}
	return nil
}

// t1Continuum cross-tabulates the continuum closed forms against
// quadrature.
func (h *harness) t1Continuum() error {
	expR, err := continuum.NewExpRigid(kbar)
	if err != nil {
		return err
	}
	expA, err := continuum.NewExpRamp(kbar, 0.5)
	if err != nil {
		return err
	}
	algR, err := continuum.NewAlgRigid(3)
	if err != nil {
		return err
	}
	algA, err := continuum.NewAlgRamp(3, 0.5)
	if err != nil {
		return err
	}
	type cfCase struct {
		name string
		b, r func(float64) float64
	}
	cases := []cfCase{
		{"exp/rigid", expR.BestEffort, expR.Reservation},
		{"exp/ramp(0.5)", expA.BestEffort, expA.Reservation},
		{"alg(3)/rigid", algR.BestEffort, algR.Reservation},
		{"alg(3)/ramp(0.5)", algA.BestEffort, algA.Reservation},
	}
	numerics := make([]*continuum.Numeric, len(cases))
	expD, err := dist.NewExpDensity(1 / kbar)
	if err != nil {
		return err
	}
	algD, err := dist.NewAlgDensity(3)
	if err != nil {
		return err
	}
	rigid, err := utility.NewRigid(1)
	if err != nil {
		return err
	}
	ramp, err := utility.NewRamp(0.5)
	if err != nil {
		return err
	}
	if numerics[0], err = continuum.NewNumeric(expD, rigid, nil); err != nil {
		return err
	}
	if numerics[1], err = continuum.NewNumeric(expD, ramp, nil); err != nil {
		return err
	}
	if numerics[2], err = continuum.NewNumeric(algD, rigid, nil); err != nil {
		return err
	}
	if numerics[3], err = continuum.NewNumeric(algD, ramp, nil); err != nil {
		return err
	}
	tb := report.NewTable("case", "C", "B closed", "B quad", "R closed", "R quad")
	var rows [][]float64
	for i, cse := range cases {
		for _, c := range []float64{50, 200, 800} {
			bc, bq := cse.b(c), numerics[i].BestEffort(c)
			rc, rq := cse.r(c), numerics[i].Reservation(c)
			tb.AddRow(cse.name, c, bc, bq, rc, rq)
			rows = append(rows, []float64{float64(i), c, bc, bq, rc, rq})
		}
	}
	if err := h.writeCSV("t1_continuum", []string{"case", "C", "B_closed", "B_quad", "R_closed", "R_quad"}, rows); err != nil {
		return err
	}
	return h.writeTable("t1_continuum", tb)
}

func (h *harness) writeTable(name string, tb *report.Table) error {
	f, err := os.Create(filepath.Join(h.dir, name+".txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tb.Render(f)
}

// t2WorstCase sweeps z toward 2 to exhibit the e−1 and e bounds.
func (h *harness) t2WorstCase() error {
	tb := report.NewTable("z", "gap ratio (z−1)^(1/(z−2))", "Δ/C slope", "γ(p→0)")
	var rows [][]float64
	for _, z := range []float64{4, 3.5, 3, 2.7, 2.5, 2.3, 2.2, 2.1, 2.05, 2.01} {
		cf, err := continuum.NewAlgRigid(z)
		if err != nil {
			return err
		}
		ratio := cf.GapRatio()
		gamma, err := cf.GammaEqualize(1e-8)
		if err != nil {
			return err
		}
		tb.AddRow(z, ratio, ratio-1, gamma)
		rows = append(rows, []float64{z, ratio, ratio - 1, gamma})
	}
	tb.AddRow("z→2⁺ bound", continuum.WorstCaseGammaLimit(), continuum.WorstCaseGapSlope(), continuum.WorstCaseGammaLimit())
	if err := h.writeCSV("t2_worstcase", []string{"z", "ratio", "slope", "gamma0"}, rows); err != nil {
		return err
	}
	return h.writeTable("t2_worstcase", tb)
}

// t3SlowTail measures the Δ(C) growth exponent for slow-tail utilities.
func (h *harness) t3SlowTail() error {
	type stCase struct{ z, tau float64 }
	cases := []stCase{
		{3, 2}, {3.5, 1.5}, {4, 1.5}, {4, 1.2}, {4.5, 1},
	}
	type stRow struct{ predicted, measured float64 }
	points, err := sweep.Map(h.context(), h.workers, cases, func(cse stCase) (stRow, error) {
		st, err := utility.NewSlowTail(cse.tau)
		if err != nil {
			return stRow{}, err
		}
		d, err := dist.NewAlgDensity(cse.z)
		if err != nil {
			return stRow{}, err
		}
		num, err := continuum.NewNumeric(d, st, st.KStar)
		if err != nil {
			return stRow{}, err
		}
		c1, c2 := 300.0, 1200.0
		g1, err := num.BandwidthGap(c1)
		if err != nil {
			return stRow{}, err
		}
		g2, err := num.BandwidthGap(c2)
		if err != nil {
			return stRow{}, err
		}
		return stRow{
			predicted: continuum.SlowTailGapExponent(cse.z, cse.tau),
			measured:  math.Log(g2/g1) / math.Log(c2/c1),
		}, nil
	})
	if err != nil {
		return err
	}
	tb := report.NewTable("z", "tau", "predicted exponent", "measured exponent")
	var rows [][]float64
	for i, cse := range cases {
		tb.AddRow(cse.z, cse.tau, points[i].predicted, points[i].measured)
		rows = append(rows, []float64{cse.z, cse.tau, points[i].predicted, points[i].measured})
	}
	if err := h.writeCSV("t3_slowtail", []string{"z", "tau", "predicted", "measured"}, rows); err != nil {
		return err
	}
	return h.writeTable("t3_slowtail", tb)
}

// e1Sampling sweeps the §5.1 extension. The four load/utility combinations
// are independent models, so they run concurrently; within one combination
// the (S, C) grid stays sequential to keep each worker's cache walk warm.
func (h *harness) e1Sampling() error {
	sValues := []int{1, 2, 5, 10}
	cValues := []float64{50, 100, 150, 200, 300, 400}
	if h.quick {
		sValues = []int{1, 10}
		cValues = []float64{100, 200}
	}
	type combo struct{ loadName, utilName string }
	var combos []combo
	for _, loadName := range []string{"exponential", "algebraic"} {
		for _, utilName := range []string{"rigid", "adaptive"} {
			combos = append(combos, combo{loadName, utilName})
		}
	}
	type comboRow struct {
		s    int
		c    float64
		d, g float64
	}
	results, err := sweep.Map(h.context(), h.workers, combos, func(cb combo) ([]comboRow, error) {
		m, err := h.model(cb.loadName, cb.utilName)
		if err != nil {
			return nil, err
		}
		var out []comboRow
		for _, s := range sValues {
			sp, err := core.NewSampling(m, s)
			if err != nil {
				return nil, err
			}
			for _, c := range cValues {
				d := sp.PerformanceGap(c)
				g, err := sp.BandwidthGap(c)
				if err != nil {
					return nil, err
				}
				out = append(out, comboRow{s: s, c: c, d: d, g: g})
			}
		}
		return out, nil
	})
	if err != nil {
		return err
	}
	var rows [][]float64
	tb := report.NewTable("load", "util", "S", "C", "delta_S", "Delta_S")
	for i, cb := range combos {
		for _, r := range results[i] {
			tb.AddRow(cb.loadName, cb.utilName, r.s, r.c, r.d, r.g)
			rows = append(rows, []float64{float64(r.s), r.c, r.d, r.g})
		}
	}
	if err := h.writeCSV("e1_sampling", []string{"S", "C", "delta", "Delta"}, rows); err != nil {
		return err
	}
	if err := h.writeTable("e1_sampling", tb); err != nil {
		return err
	}
	// Welfare under sampling: γ(p) for the exp/adaptive S = 10 case the
	// paper's §5.1 numbers correspond to, against the basic model.
	m, err := h.model("exponential", "adaptive")
	if err != nil {
		return err
	}
	sp, err := core.NewSampling(m, 10)
	if err != nil {
		return err
	}
	ps := []float64{0.1, 0.03, 0.01}
	if h.quick {
		ps = []float64{0.1}
	}
	type gpair struct{ gb, gs float64 }
	gpoints, err := sweep.Map(h.context(), h.workers, ps, func(p float64) (gpair, error) {
		gb, err := m.GammaEqualize(p)
		if err != nil {
			return gpair{}, err
		}
		gs, err := sp.GammaEqualize(p)
		if err != nil {
			return gpair{}, err
		}
		return gpair{gb: gb, gs: gs}, nil
	})
	if err != nil {
		return err
	}
	gtb := report.NewTable("p", "gamma_basic", "gamma_S10")
	var grows [][]float64
	for i, p := range ps {
		gtb.AddRow(p, gpoints[i].gb, gpoints[i].gs)
		grows = append(grows, []float64{p, gpoints[i].gb, gpoints[i].gs})
	}
	if err := h.writeCSV("e1_sampling_gamma", []string{"p", "gamma_basic", "gamma_S10"}, grows); err != nil {
		return err
	}
	return h.writeTable("e1_sampling_gamma", gtb)
}

// e2SamplingAsym tabulates the §5.1 asymptotic ratios.
func (h *harness) e2SamplingAsym() error {
	tb := report.NewTable("z", "S", "rigid ratio (S(z−1))^(1/(z−2))", "ramp(0.5) ratio")
	var rows [][]float64
	for _, z := range []float64{4, 3, 2.5, 2.2} {
		for _, s := range []int{1, 2, 5, 10} {
			rig := continuum.SamplingAlgRigidRatio(z, s)
			ram := continuum.SamplingAlgRampRatio(z, 0.5, s)
			tb.AddRow(z, s, rig, ram)
			rows = append(rows, []float64{z, float64(s), rig, ram})
		}
	}
	if err := h.writeCSV("e2_sampling_asym", []string{"z", "S", "rigid", "ramp"}, rows); err != nil {
		return err
	}
	return h.writeTable("e2_sampling_asym", tb)
}

// e3Retry sweeps the §5.2 extension with α = 0.1. Each load/utility
// combination owns its model and retry caches, so the six combinations run
// concurrently on the worker pool.
func (h *harness) e3Retry() error {
	const alpha = 0.1
	cValues := []float64{150, 200, 300, 400, 600}
	if h.quick {
		cValues = []float64{200, 400}
	}
	type combo struct{ loadName, utilName string }
	var combos []combo
	for _, loadName := range []string{"poisson", "exponential", "algebraic"} {
		for _, utilName := range []string{"rigid", "adaptive"} {
			combos = append(combos, combo{loadName, utilName})
		}
	}
	type retryRow struct {
		c                 float64
		dB, dR, g         float64
		effMean, blocking float64
	}
	results, err := sweep.Map(h.context(), h.workers, combos, func(cb combo) ([]retryRow, error) {
		m, err := h.model(cb.loadName, cb.utilName)
		if err != nil {
			return nil, err
		}
		rt, err := core.NewRetry(m, alpha)
		if err != nil {
			return nil, err
		}
		var out []retryRow
		for _, c := range cValues {
			dB := m.PerformanceGap(c)
			dR, err := rt.PerformanceGap(c)
			if err != nil {
				return nil, err
			}
			g, err := rt.BandwidthGap(c)
			if err != nil {
				return nil, err
			}
			fp, err := rt.Equilibrium(c)
			if err != nil {
				return nil, err
			}
			out = append(out, retryRow{c: c, dB: dB, dR: dR, g: g, effMean: fp.EffectiveMean, blocking: fp.Blocking})
		}
		return out, nil
	})
	if err != nil {
		return err
	}
	tb := report.NewTable("load", "util", "C", "delta_basic", "delta_retry", "Delta_retry", "L_hat", "theta")
	var rows [][]float64
	for i, cb := range combos {
		for _, r := range results[i] {
			tb.AddRow(cb.loadName, cb.utilName, r.c, r.dB, r.dR, r.g, r.effMean, r.blocking)
			rows = append(rows, []float64{r.c, r.dB, r.dR, r.g, r.effMean, r.blocking})
		}
	}
	if err := h.writeCSV("e3_retry", []string{"C", "delta_basic", "delta_retry", "Delta_retry", "L_hat", "theta"}, rows); err != nil {
		return err
	}
	// The headline welfare result: retry γ(p) for the algebraic/adaptive
	// case grows as bandwidth cheapens.
	m, err := h.model("algebraic", "adaptive")
	if err != nil {
		return err
	}
	rt, err := core.NewRetry(m, alpha)
	if err != nil {
		return err
	}
	ps := []float64{0.2, 0.1, 0.03, 0.01}
	if h.quick {
		ps = []float64{0.1}
	}
	type gpair struct{ gb, gr float64 }
	gpoints, err := sweep.Map(h.context(), h.workers, ps, func(p float64) (gpair, error) {
		gb, err := m.GammaEqualize(p)
		if err != nil {
			return gpair{}, err
		}
		gr, err := rt.GammaEqualize(p)
		if err != nil {
			return gpair{}, err
		}
		return gpair{gb: gb, gr: gr}, nil
	})
	if err != nil {
		return err
	}
	gtb := report.NewTable("p", "gamma_basic", "gamma_retry")
	var grows [][]float64
	for i, p := range ps {
		gtb.AddRow(p, gpoints[i].gb, gpoints[i].gr)
		grows = append(grows, []float64{p, gpoints[i].gb, gpoints[i].gr})
	}
	if err := h.writeCSV("e3_retry_gamma", []string{"p", "gamma_basic", "gamma_retry"}, grows); err != nil {
		return err
	}
	if err := h.writeTable("e3_retry_gamma", gtb); err != nil {
		return err
	}
	return h.writeTable("e3_retry", tb)
}

// e4RetryAsym tabulates the §5.2 asymptotic ratios.
func (h *harness) e4RetryAsym() error {
	tb := report.NewTable("z", "alpha", "rigid ratio ((z−1)/α)^(1/(z−2))", "ramp(0.5) ratio")
	var rows [][]float64
	for _, z := range []float64{4, 3, 2.5, 2.2} {
		for _, alpha := range []float64{0.5, 0.1, 0.01} {
			rig := continuum.RetryAlgRigidRatio(z, alpha)
			ram := continuum.RetryAlgRampRatio(z, 0.5, alpha)
			tb.AddRow(z, alpha, rig, ram)
			rows = append(rows, []float64{z, alpha, rig, ram})
		}
	}
	if err := h.writeCSV("e4_retry_asym", []string{"z", "alpha", "rigid", "ramp"}, rows); err != nil {
		return err
	}
	return h.writeTable("e4_retry_asym", tb)
}

// s1SimPoisson validates the analytical model against simulated Poisson
// dynamics. The six (capacity, policy) runs are independent seeded
// simulations, so they run concurrently.
func (h *harness) s1SimPoisson() error {
	horizon := 30000.0
	if h.quick {
		horizon = 3000
	}
	rigid, err := utility.NewRigid(1)
	if err != nil {
		return err
	}
	arr, err := sim.NewPoissonArrivals(10)
	if err != nil {
		return err
	}
	hold, err := sim.NewExpHolding(10)
	if err != nil {
		return err
	}
	load, err := dist.NewPoisson(kbar)
	if err != nil {
		return err
	}
	m, err := core.New(load, rigid)
	if err != nil {
		return err
	}
	type simCase struct {
		c      float64
		policy sim.Policy
	}
	var cases []simCase
	for _, c := range []float64{90, 110, 130} {
		for _, policy := range []sim.Policy{sim.BestEffort, sim.Reservation} {
			cases = append(cases, simCase{c: c, policy: policy})
		}
	}
	type simRow struct {
		simUtil, modelUtil, blocking float64
	}
	points, err := sweep.Map(h.context(), h.workers, cases, func(cse simCase) (simRow, error) {
		res, err := sim.Run(sim.Config{
			Capacity: cse.c, Util: rigid, Policy: cse.policy,
			Arrivals: arr, Holding: hold,
			Horizon: horizon, Warmup: horizon / 60, Samples: 1,
			Seed1: 1, Seed2: 2,
		})
		if err != nil {
			return simRow{}, err
		}
		want := m.BestEffort(cse.c)
		if cse.policy == sim.Reservation {
			want = m.Reservation(cse.c)
		}
		return simRow{simUtil: res.MeanUtility, modelUtil: want, blocking: res.BlockingRate}, nil
	})
	if err != nil {
		return err
	}
	tb := report.NewTable("C", "policy", "sim utility", "model utility", "sim blocking")
	var rows [][]float64
	for i, cse := range cases {
		pt := points[i]
		tb.AddRow(cse.c, cse.policy.String(), pt.simUtil, pt.modelUtil, pt.blocking)
		rows = append(rows, []float64{cse.c, float64(cse.policy), pt.simUtil, pt.modelUtil, pt.blocking})
	}
	if err := h.writeCSV("s1_sim_poisson", []string{"C", "policy", "sim_util", "model_util", "blocking"}, rows); err != nil {
		return err
	}
	return h.writeTable("s1_sim_poisson", tb)
}

// s2SimHeavyTail contrasts measured session-traffic loads with Poisson.
func (h *harness) s2SimHeavyTail() error {
	horizon := 40000.0
	if h.quick {
		horizon = 4000
	}
	rigid, err := utility.NewRigid(1)
	if err != nil {
		return err
	}
	hold, err := sim.NewExpHolding(8)
	if err != nil {
		return err
	}
	poissonArr, err := sim.NewPoissonArrivals(100.0 / 8)
	if err != nil {
		return err
	}
	sessionArr, err := sim.NewSessionArrivals(100.0/(8*3), 1, 1.5) // mean batch 3
	if err != nil {
		return err
	}
	type tailCase struct {
		name string
		arr  sim.Arrivals
	}
	cases := []tailCase{{"poisson", poissonArr}, {"sessions", sessionArr}}
	type tailRow struct {
		mean, variance, d, g float64
	}
	points, err := sweep.Map(h.context(), h.workers, cases, func(tc tailCase) (tailRow, error) {
		res, err := sim.Run(sim.Config{
			Capacity: 1e9, Util: rigid, Policy: sim.BestEffort,
			Arrivals: tc.arr, Holding: hold,
			Horizon: horizon, Warmup: horizon / 40, Samples: 1,
			Seed1: 11, Seed2: 12,
		})
		if err != nil {
			return tailRow{}, err
		}
		mean := res.AvgOccupancy
		variance := res.Occupancy.SquareTailMean(-1) - mean*mean
		m, err := core.New(res.Occupancy, rigid)
		if err != nil {
			return tailRow{}, err
		}
		d := m.PerformanceGap(150)
		g, err := m.BandwidthGap(150)
		if err != nil {
			return tailRow{}, err
		}
		return tailRow{mean: mean, variance: variance, d: d, g: g}, nil
	})
	if err != nil {
		return err
	}
	tb := report.NewTable("traffic", "mean occ", "occ variance", "delta(150)", "Delta(150)")
	var rows [][]float64
	for i, tc := range cases {
		pt := points[i]
		tb.AddRow(tc.name, pt.mean, pt.variance, pt.d, pt.g)
		rows = append(rows, []float64{float64(i), pt.mean, pt.variance, pt.d, pt.g})
	}
	if err := h.writeCSV("s2_sim_heavytail", []string{"traffic", "mean", "variance", "delta150", "Delta150"}, rows); err != nil {
		return err
	}
	return h.writeTable("s2_sim_heavytail", tb)
}
