package main

import (
	"math"
	"testing"
)

// TestPGridQuickMode pins the quick-mode grid shrink: forcing n = 3 must
// still produce a finite, increasing grid spanning [lo, hi], and degenerate
// requests (n < 2) must not divide by zero.
func TestPGridQuickMode(t *testing.T) {
	h := &harness{quick: true}
	ps := h.pGrid(1e-3, 0.6, 10)
	if len(ps) != 3 {
		t.Fatalf("quick pGrid has %d points, want 3", len(ps))
	}
	if ps[0] != 1e-3 {
		t.Errorf("first = %v, want 1e-3", ps[0])
	}
	if math.Abs(ps[2]-0.6) > 1e-15 {
		t.Errorf("last = %v, want 0.6", ps[2])
	}
	for i, p := range ps {
		if math.IsNaN(p) || math.IsInf(p, 0) || p <= 0 {
			t.Fatalf("point %d = %v, want finite positive", i, p)
		}
		if i > 0 && p <= ps[i-1] {
			t.Fatalf("grid not increasing at %d: %v then %v", i, ps[i-1], p)
		}
	}
	// A caller passing a degenerate request must get the single-point grid,
	// not NaN from 0/0 (quick mode overrides n to 3 first, so check the
	// guard on a non-quick harness).
	if got := (&harness{}).pGrid(0.05, 0.6, 1); len(got) != 1 || got[0] != 0.05 {
		t.Fatalf("pGrid(n=1) = %v, want [0.05]", got)
	}
}

// TestCGridQuickMode checks the capacity grid in both modes.
func TestCGridQuickMode(t *testing.T) {
	full := (&harness{}).cGrid()
	if len(full) != 100 || full[0] != 10 || full[len(full)-1] != 1000 {
		t.Fatalf("full cGrid: %d points [%v … %v], want 100 [10 … 1000]",
			len(full), full[0], full[len(full)-1])
	}
	quick := (&harness{quick: true}).cGrid()
	if len(quick) != 10 || quick[0] != 100 || quick[len(quick)-1] != 1000 {
		t.Fatalf("quick cGrid: %d points [%v … %v], want 10 [100 … 1000]",
			len(quick), quick[0], quick[len(quick)-1])
	}
}
