// Command figures regenerates every table and figure of Breslau & Shenker
// (SIGCOMM 1998) from this library, writing one CSV (for external plotting)
// and one ASCII rendering per artifact into an output directory.
//
// Usage:
//
//	figures [-out DIR] [-only fig1,fig2,...] [-quick]
//
// Experiments (see DESIGN.md for the index):
//
//	fig1        adaptive utility curve (Figure 1)
//	fig2        Poisson load: utility, bandwidth gap, price ratio (Figure 2)
//	fig3        exponential load (Figure 3)
//	fig4        algebraic load, z = 3 (Figure 4)
//	t1          continuum closed forms vs quadrature (§3.2–3.3)
//	t2          worst-case bounds as z → 2⁺ (§3.3, §4)
//	t3          slow-tail utility regimes (§3.3)
//	e1          sampling extension sweeps (§5.1)
//	e2          sampling asymptotic ratios (§5.1)
//	e3          retrying extension sweeps (§5.2)
//	e4          retry asymptotic ratios (§5.2)
//	s1          simulated Poisson dynamics vs the analytical model
//	s2          simulated heavy-tailed sessions vs Poisson
//	f0          §2 fixed-load curves V(k) for rigid/adaptive/elastic
//	x1          §5 heterogeneous flows (utility mixtures)
//	x2          §5 nonstationary loads (distribution mixtures)
//	x3          footnote 9: elastic applications gain under sampling
//	x4          scheduling substrate: FIFO collapse vs fair-queueing isolation
//
// -quick shrinks every grid for a fast smoke run. -parallel sets the worker
// count for the grid sweeps (0, the default, uses GOMAXPROCS; 1 forces
// sequential evaluation). The output artifacts are byte-identical for every
// worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	outDir := flag.String("out", "out", "output directory for CSV and ASCII artifacts")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	quick := flag.Bool("quick", false, "use coarse grids for a fast smoke run")
	parallel := flag.Int("parallel", 0, "worker goroutines per sweep (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
	h := &harness{dir: *outDir, quick: *quick, workers: *parallel, ctx: context.Background()}
	experiments := map[string]func() error{
		"f0":   h.f0FixedLoad,
		"fig1": h.fig1,
		"fig2": func() error { return h.figureFamily("fig2", "poisson") },
		"fig3": func() error { return h.figureFamily("fig3", "exponential") },
		"fig4": func() error { return h.figureFamily("fig4", "algebraic") },
		"t1":   h.t1Continuum,
		"t2":   h.t2WorstCase,
		"t3":   h.t3SlowTail,
		"e1":   h.e1Sampling,
		"e2":   h.e2SamplingAsym,
		"e3":   h.e3Retry,
		"e4":   h.e4RetryAsym,
		"s1":   h.s1SimPoisson,
		"s2":   h.s2SimHeavyTail,
		"x1":   h.x1Heterogeneous,
		"x2":   h.x2Nonstationary,
		"x3":   h.x3Footnote9,
		"x4":   h.x4Enforcement,
	}
	var ids []string
	if *only != "" {
		ids = strings.Split(*only, ",")
	} else {
		for id := range experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	}
	failed := false
	for _, id := range ids {
		run, ok := experiments[strings.TrimSpace(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown experiment %q\n", id)
			failed = true
			continue
		}
		start := time.Now()
		if err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s failed: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Printf("figures: %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
