package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHarnessQuickRuns(t *testing.T) {
	dir := t.TempDir()
	h := &harness{dir: dir, quick: true}
	cases := map[string]func() error{
		"f0":   h.f0FixedLoad,
		"fig1": h.fig1,
		"t1":   h.t1Continuum,
		"t2":   h.t2WorstCase,
		"e2":   h.e2SamplingAsym,
		"e4":   h.e4RetryAsym,
		"x1":   h.x1Heterogeneous,
		"x2":   h.x2Nonstationary,
		"x3":   h.x3Footnote9,
		"x4":   h.x4Enforcement,
		"s1":   h.s1SimPoisson,
		"s2":   h.s2SimHeavyTail,
		"e1":   h.e1Sampling,
		"e3":   h.e3Retry,
		"t3":   h.t3SlowTail,
	}
	for id, run := range cases {
		if err := run(); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var csvs, txts int
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".csv":
			csvs++
		case ".txt":
			txts++
		}
	}
	if csvs < len(cases) || txts < len(cases) {
		t.Errorf("expected ≥ %d CSVs and TXTs, got %d and %d", len(cases), csvs, txts)
	}
}

func TestHarnessFigureFamilyQuick(t *testing.T) {
	dir := t.TempDir()
	h := &harness{dir: dir, quick: true}
	if err := h.figureFamily("fig3", "exponential"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"fig3_exponential_rigid_utility.csv",
		"fig3_exponential_rigid_gap.txt",
		"fig3_exponential_adaptive_gamma.csv",
	} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing artifact %s: %v", want, err)
		}
	}
	// The utility CSV must have the header and monotone B column.
	data, err := os.ReadFile(filepath.Join(dir, "fig3_exponential_rigid_utility.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "C,B,R,delta") {
		t.Errorf("unexpected CSV header: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestHarnessUnknownLoad(t *testing.T) {
	h := &harness{dir: t.TempDir()}
	if _, err := h.load("nope"); err == nil {
		t.Error("unknown load should fail")
	}
	if _, err := h.util("nope"); err == nil {
		t.Error("unknown utility should fail")
	}
}
