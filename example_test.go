package beqos_test

import (
	"fmt"
	"log"

	"beqos"
)

// The basic comparison: per-flow utilities under each architecture.
func ExampleNewModel() {
	load, err := beqos.ExponentialLoad(100)
	if err != nil {
		log.Fatal(err)
	}
	model, err := beqos.NewModel(load, beqos.RigidUtility())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B(200) = %.2f\n", model.BestEffort(200))
	fmt.Printf("R(200) = %.2f\n", model.Reservation(200))
	// Output:
	// B(200) = 0.59
	// R(200) = 0.86
}

// How much extra capacity does best-effort need to match reservations?
func ExampleModel_BandwidthGap() {
	load, err := beqos.ExponentialLoad(100)
	if err != nil {
		log.Fatal(err)
	}
	model, err := beqos.NewModel(load, beqos.RigidUtility())
	if err != nil {
		log.Fatal(err)
	}
	gap, err := model.BandwidthGap(200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Δ(200) = %.0f\n", gap)
	// Output:
	// Δ(200) = 151
}

// With heavy-tailed loads the reservation advantage survives cheap
// bandwidth: γ(p) converges to (z−1)^(1/(z−2)) = 2 for z = 3.
func ExampleModel_GammaEqualize() {
	load, err := beqos.AlgebraicLoad(3, 100)
	if err != nil {
		log.Fatal(err)
	}
	model, err := beqos.NewModel(load, beqos.RigidUtility())
	if err != nil {
		log.Fatal(err)
	}
	gamma, err := model.GammaEqualize(0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("γ(0.01) = %.2f\n", gamma)
	// Output:
	// γ(0.01) = 2.00
}

// The §2 fixed-load model: rigid applications want admission control,
// elastic ones never do.
func ExampleFixedLoadOptimum() {
	kmax, v, finite := beqos.FixedLoadOptimum(beqos.RigidUtility(), 100)
	fmt.Printf("rigid: kmax = %d, V = %.0f, finite = %v\n", kmax, v, finite)
	_, _, finite = beqos.FixedLoadOptimum(beqos.ElasticUtility(), 100)
	fmt.Printf("elastic: finite = %v\n", finite)
	// Output:
	// rigid: kmax = 100, V = 100, finite = true
	// elastic: finite = false
}

// Generate a load from explicit flow dynamics and feed it back into the
// analytical model.
func ExampleSimulate() {
	traffic, err := beqos.PoissonTraffic(10, 10) // offered load 100
	if err != nil {
		log.Fatal(err)
	}
	res, err := beqos.Simulate(beqos.SimConfig{
		Capacity: 150,
		Util:     beqos.RigidUtility(),
		Traffic:  traffic,
		Horizon:  20000,
		Warmup:   500,
		Samples:  1,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("occupancy near 100: %v\n", res.MeanOccupancy > 95 && res.MeanOccupancy < 105)
	model, err := beqos.NewModel(res.MeasuredLoad, beqos.RigidUtility())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured-load B(150) above 0.99: %v\n", model.BestEffort(150) > 0.99)
	// Output:
	// occupancy near 100: true
	// measured-load B(150) above 0.99: true
}
