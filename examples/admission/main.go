// Admission: a live reservation-signaling session over loopback TCP. An
// admission-control server guards a small link with the model's
// utility-maximizing threshold kmax(C); a burst of clients requests
// reservations, some are denied, and the deniers retry with backoff while
// early holders depart — the paper's §5.2 retry dynamics made concrete.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"beqos"
)

func main() {
	const capacity = 4.0 // kmax(C) = 4 with rigid b̂ = 1
	server, err := beqos.NewAdmissionServer(capacity, beqos.RigidUtility())
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() {
		if err := server.Serve(ln); err != nil {
			// net.ErrClosed on shutdown is expected.
			return
		}
	}()
	fmt.Printf("admission server on %s: capacity %g, kmax %d\n\n",
		ln.Addr(), capacity, server.KMax())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	var mu sync.Mutex
	results := make(map[uint64]string)

	// Ten clients race for four slots. Each holds its reservation briefly,
	// so retrying clients eventually get in.
	for id := uint64(1); id <= 10; id++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			client, err := beqos.DialAdmission(ctx, "tcp", ln.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer client.Close()
			granted, share, retries, err := client.ReserveWithRetry(ctx, id, 1, beqos.AdmissionRetryPolicy{
				MaxAttempts: 20,
				BaseDelay:   50 * time.Millisecond,
				Multiplier:  1.3,
				Jitter:      0.3,
			})
			if err != nil {
				log.Fatal(err)
			}
			mu.Lock()
			if granted {
				results[id] = fmt.Sprintf("granted share %.3g after %d retries", share, retries)
			} else {
				results[id] = fmt.Sprintf("gave up after %d retries", retries)
			}
			mu.Unlock()
			if granted {
				// Hold, then depart so someone else can enter.
				time.Sleep(150 * time.Millisecond)
				if err := client.Teardown(ctx, id); err != nil {
					log.Fatal(err)
				}
			}
		}(id)
	}
	wg.Wait()

	for id := uint64(1); id <= 10; id++ {
		fmt.Printf("flow %2d: %s\n", id, results[id])
	}
	fmt.Printf("\nfinal active reservations: %d\n", server.Active())
	fmt.Println("\nEvery flow was eventually served: admission control trades instant")
	fmt.Println("access for guaranteed shares, and retries (at a utility cost α per")
	fmt.Println("attempt — §5.2) recover the utility the basic model writes off.")
}
