// Enforcement: the two halves of the reservation architecture working
// together. Admission control (the paper's kmax) decides who gets in, and
// fair queueing — the GPS-style scheduling the integrated-services
// architecture presumes — makes the granted shares real on the wire.
//
// Three reserved flows and one unreserved aggressor share a unit link.
// Under best-effort FIFO the aggressor starves everyone; under fair
// queueing the reserved flows keep the shares the admission controller
// granted.
package main

import (
	"fmt"
	"log"

	"beqos/internal/sched"
)

func main() {
	const capacity = 1.0
	// Three well-behaved reserved flows, each wanting ~28% of the link…
	reserved := []sched.Source{
		{Flow: 1, Rate: 0.28, PacketSize: 0.01},
		{Flow: 2, Rate: 0.28, PacketSize: 0.01},
		{Flow: 3, Rate: 0.28, PacketSize: 0.01},
	}
	// …and an aggressor blasting 5× the link capacity.
	aggressor := sched.Source{Flow: 99, Rate: 5, PacketSize: 0.01}
	sources := append(append([]sched.Source{}, reserved...), aggressor)

	fifoStats, err := sched.RunLink(sched.NewFIFO(), capacity, sources, 200)
	if err != nil {
		log.Fatal(err)
	}
	fq := sched.NewSCFQ()
	// Admission granted each reserved flow an equal share; the aggressor
	// is unreserved and gets a tiny best-effort weight.
	for _, r := range reserved {
		if err := fq.SetWeight(r.Flow, 1); err != nil {
			log.Fatal(err)
		}
	}
	if err := fq.SetWeight(aggressor.Flow, 0.05); err != nil {
		log.Fatal(err)
	}
	fqStats, err := sched.RunLink(fq, capacity, sources, 200)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("flow        offered rate   FIFO throughput   fair-queue throughput")
	for _, src := range sources {
		name := fmt.Sprintf("reserved %d", src.Flow)
		if src.Flow == 99 {
			name = "aggressor "
		}
		fmt.Printf("%-11s %12.2f %17.3f %23.3f\n",
			name, src.Rate, fifoStats[src.Flow].Throughput, fqStats[src.Flow].Throughput)
	}

	fmt.Println("\nFIFO lets the aggressor convert its demand into share — the reserved")
	fmt.Println("flows collapse to ~5% each. Fair queueing pins them at their granted")
	fmt.Println("~28%, which is precisely why the paper's reservation-capable")
	fmt.Println("architecture needs both admission control and GPS-style scheduling.")
}
