// Provisioning: a capacity-planning what-if in the paper's §4 welfare
// model. A provider buys capacity at unit price p and recovers user
// utility; how much capacity should it buy under each architecture, how
// does welfare compare, and how does the answer change as bandwidth gets
// cheaper?
//
// The punchline the paper proves and this example reproduces: with Poisson
// or exponential loads the reservation advantage evaporates as p → 0, but
// with heavy-tailed (algebraic) loads γ(p) converges to (z−1)^(1/(z−2)) —
// for z = 3, reservations stay worth a 2× bandwidth-cost premium no matter
// how cheap bandwidth becomes.
package main

import (
	"fmt"
	"log"

	"beqos"
)

func main() {
	prices := []float64{0.3, 0.1, 0.03, 0.01, 0.003, 0.001}

	for _, tc := range []struct {
		name string
		load func() (beqos.Load, error)
	}{
		{"exponential load (light tail)", func() (beqos.Load, error) { return beqos.ExponentialLoad(100) }},
		{"algebraic load z=3 (heavy tail)", func() (beqos.Load, error) { return beqos.AlgebraicLoad(3, 100) }},
	} {
		load, err := tc.load()
		if err != nil {
			log.Fatal(err)
		}
		model, err := beqos.NewModel(load, beqos.RigidUtility())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s, rigid applications ==\n", tc.name)
		fmt.Println("   price p    C_B(p)    C_R(p)     W_B(p)     W_R(p)   γ(p)")
		for _, p := range prices {
			pb, err := model.ProvisionBestEffort(p)
			if err != nil {
				log.Fatal(err)
			}
			pr, err := model.ProvisionReservation(p)
			if err != nil {
				log.Fatal(err)
			}
			gamma, err := model.GammaEqualize(p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10.3f %9.0f %9.0f %10.2f %10.2f  %.3f\n",
				p, pb.Capacity, pr.Capacity, pb.Welfare, pr.Welfare, gamma)
		}
		fmt.Println()
	}

	fmt.Println("Reading the tables: under the light-tailed load γ(p) sinks toward 1")
	fmt.Println("as bandwidth cheapens — overprovisioned best-effort is good enough.")
	fmt.Println("Under the heavy-tailed load γ(p) settles at 2: the reservation")
	fmt.Println("architecture keeps a durable 2× cost advantage (the paper's bound")
	fmt.Println("for z → 2⁺ is e ≈ 2.72).")
}
