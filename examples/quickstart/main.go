// Quickstart: compare the best-effort-only and reservation-capable
// architectures on one link, reproducing the core quantities of Breslau &
// Shenker (SIGCOMM 1998) — per-flow utilities B(C) and R(C), the
// performance gap δ(C), the bandwidth gap Δ(C), and the equalizing price
// ratio γ(p).
package main

import (
	"fmt"
	"log"

	"beqos"
)

func main() {
	// Mean offered load of 100 flows, exponentially distributed — the
	// paper's middle-ground load assumption.
	load, err := beqos.ExponentialLoad(100)
	if err != nil {
		log.Fatal(err)
	}

	// Rigid applications (telephony-style): all-or-nothing utility.
	model, err := beqos.NewModel(load, beqos.RigidUtility())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("capacity   B(C)     R(C)     δ(C)     Δ(C)")
	for _, c := range []float64{100, 200, 400, 800} {
		b := model.BestEffort(c)
		r := model.Reservation(c)
		gap, err := model.BandwidthGap(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.0f   %.4f   %.4f   %.4f   %6.1f\n", c, b, r, r-b, gap)
	}

	// How much more may reservation-capable bandwidth cost before
	// best-effort-only wins on welfare?
	gamma, err := model.GammaEqualize(0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAt bandwidth price 0.01, reservations tolerate a %.0f%% cost premium (γ = %.3f).\n",
		(gamma-1)*100, gamma)

	// Adaptive applications shrink the advantage dramatically.
	adaptive, err := beqos.NewModel(load, beqos.AdaptiveUtility())
	if err != nil {
		log.Fatal(err)
	}
	gammaAd, err := adaptive.GammaEqualize(0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("With adaptive applications the premium collapses to %.1f%% (γ = %.3f).\n",
		(gammaAd-1)*100, gammaAd)
}
