// Selfsimilar: does the load's tail really decide the debate? The paper's
// conclusion hangs on whether future Internet loads look Poisson-ish or
// heavy-tailed. This example generates both from explicit flow dynamics —
// memoryless arrivals versus heavy-tailed session batches — measures the
// stationary occupancy each produces, feeds the *measured* distributions
// back into the analytical model, and compares the architectures.
package main

import (
	"fmt"
	"log"

	"beqos"
)

func run(name string, traffic beqos.Traffic) beqos.Load {
	res, err := beqos.Simulate(beqos.SimConfig{
		Capacity: 1e9, // uncapped: we only want the demand process
		Util:     beqos.RigidUtility(),
		Traffic:  traffic,
		Horizon:  60000,
		Warmup:   2000,
		Samples:  1,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s mean occupancy %.1f, P(K > 2·mean) = %.5f\n",
		name, res.MeanOccupancy, res.MeasuredLoad.TailProb(int(2*res.MeanOccupancy)))
	return res.MeasuredLoad
}

func main() {
	fmt.Println("Measuring stationary loads from two traffic generators:")
	poisson, err := beqos.PoissonTraffic(10, 10) // offered load 100
	if err != nil {
		log.Fatal(err)
	}
	sessions, err := beqos.SessionTraffic(10.0/3, 1, 1.5, 10) // ≈ same mean, Pareto batches
	if err != nil {
		log.Fatal(err)
	}
	loadP := run("memoryless flows:", poisson)
	loadS := run("heavy-tailed sessions:", sessions)

	fmt.Println("\nFeeding the measured loads into the analytical model (rigid apps):")
	fmt.Println("capacity     Poisson-traffic δ, Δ       session-traffic δ, Δ")
	for _, c := range []float64{120, 150, 200} {
		row := fmt.Sprintf("%8.0f", c)
		for _, load := range []beqos.Load{loadP, loadS} {
			m, err := beqos.NewModel(load, beqos.RigidUtility())
			if err != nil {
				log.Fatal(err)
			}
			d := m.PerformanceGap(c)
			g, err := m.BandwidthGap(c)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("      %.4f, %6.1f", d, g)
		}
		fmt.Println(row)
	}

	fmt.Println("\nThe session-driven load is overdispersed, so both the performance")
	fmt.Println("gap and the extra bandwidth best-effort needs stay large at")
	fmt.Println("capacities where the memoryless load's gaps have already vanished —")
	fmt.Println("the dynamic counterpart of the paper's algebraic-load conclusion.")
}
