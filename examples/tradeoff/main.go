// Tradeoff: the paper's bottom line as a decision table. The reservation
// architecture buys performance at the cost of complexity; model that
// complexity as a per-unit-bandwidth cost premium and ask, for each
// assumption about future loads and applications, whether the premium is
// worth paying. The answer is a comparison against the equalizing price
// ratio γ(p): reservations win exactly when premium < γ(p) − 1.
package main

import (
	"fmt"
	"log"

	"beqos"
)

type scenario struct {
	name string
	load func() (beqos.Load, error)
	util beqos.Utility
}

func main() {
	scenarios := []scenario{
		{"poisson + rigid", func() (beqos.Load, error) { return beqos.PoissonLoad(100) }, beqos.RigidUtility()},
		{"poisson + adaptive", func() (beqos.Load, error) { return beqos.PoissonLoad(100) }, beqos.AdaptiveUtility()},
		{"exponential + rigid", func() (beqos.Load, error) { return beqos.ExponentialLoad(100) }, beqos.RigidUtility()},
		{"exponential + adaptive", func() (beqos.Load, error) { return beqos.ExponentialLoad(100) }, beqos.AdaptiveUtility()},
		{"algebraic z=3 + rigid", func() (beqos.Load, error) { return beqos.AlgebraicLoad(3, 100) }, beqos.RigidUtility()},
		{"algebraic z=3 + adaptive", func() (beqos.Load, error) { return beqos.AlgebraicLoad(3, 100) }, beqos.AdaptiveUtility()},
	}
	premiums := []float64{0.02, 0.10, 0.50}
	const price = 0.01 // moderately cheap bandwidth

	fmt.Printf("Bandwidth price p = %g. 'R' = reservations worth the premium, '.' = best-effort wins.\n\n", price)
	fmt.Printf("%-26s %8s", "scenario", "γ(p)")
	for _, pr := range premiums {
		fmt.Printf("   +%3.0f%%", pr*100)
	}
	fmt.Println()
	for _, sc := range scenarios {
		load, err := sc.load()
		if err != nil {
			log.Fatal(err)
		}
		m, err := beqos.NewModel(load, sc.util)
		if err != nil {
			log.Fatal(err)
		}
		gamma, err := m.GammaEqualize(price)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %8.3f", sc.name, gamma)
		for _, pr := range premiums {
			verdict := "."
			if pr < gamma-1 {
				verdict = "R"
			}
			fmt.Printf("   %5s", verdict)
		}
		fmt.Println()
	}

	fmt.Println("\nThe paper's discussion (§6), as a table: with light-tailed loads and")
	fmt.Println("adaptive applications, almost no complexity premium is justified; with")
	fmt.Println("rigid applications a ~10% premium is; and with heavy-tailed loads the")
	fmt.Println("reservation architecture survives ~50–100% premiums regardless of how")
	fmt.Println("cheap bandwidth becomes.")
}
