module beqos

go 1.22
