package beqos_test

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"beqos"
	"beqos/internal/sched"
)

// TestGrandLoop ties all four layers of the reproduction together for one
// link: the analytical model picks the admission threshold, the flow-level
// simulator confirms the stationary behavior, the signaling protocol
// enforces the threshold against live clients, and the packet scheduler
// delivers the granted shares on the wire.
func TestGrandLoop(t *testing.T) {
	const capacity = 8.0

	// 1. Analytical layer: rigid applications at C = 8 ⇒ kmax = 8, and at
	// mean offered load 10 the reservation architecture beats best-effort.
	load, err := beqos.PoissonLoad(10)
	if err != nil {
		t.Fatal(err)
	}
	model, err := beqos.NewModel(load, beqos.RigidUtility())
	if err != nil {
		t.Fatal(err)
	}
	kmax := model.KMax(capacity)
	if kmax != 8 {
		t.Fatalf("model kmax(%g) = %d, want 8", capacity, kmax)
	}
	if d := model.PerformanceGap(capacity); d <= 0 {
		t.Fatalf("expected a positive reservation advantage, δ = %v", d)
	}

	// 2. Dynamic layer: simulated reservations never exceed kmax and the
	// measured utility lands near (slightly below) the static prediction.
	traffic, err := beqos.PoissonTraffic(1, 10) // offered load 10
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := beqos.Simulate(beqos.SimConfig{
		Capacity:     capacity,
		Util:         beqos.RigidUtility(),
		Traffic:      traffic,
		Reservations: true,
		Horizon:      20000,
		Warmup:       500,
		Samples:      1,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := model.Reservation(capacity); simRes.MeanUtility > want+0.02 ||
		simRes.MeanUtility < want-0.1 {
		t.Errorf("simulated reservation utility %v vs model %v", simRes.MeanUtility, want)
	}

	// 3. Signaling layer: the protocol grants exactly kmax of 12
	// competing live requests.
	srv, err := beqos.NewAdmissionServer(capacity, beqos.RigidUtility())
	if err != nil {
		t.Fatal(err)
	}
	if srv.KMax() != kmax {
		t.Fatalf("server kmax %d differs from model %d", srv.KMax(), kmax)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.Serve(ln) }()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var mu sync.Mutex
	granted := make([]uint64, 0, kmax)
	var wg sync.WaitGroup
	clients := make([]*beqos.AdmissionClient, 12)
	for i := range clients {
		c, err := beqos.DialAdmission(ctx, "tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
		wg.Add(1)
		go func(id uint64, c *beqos.AdmissionClient) {
			defer wg.Done()
			ok, _, err := c.Reserve(ctx, id, 1)
			if err != nil {
				t.Error(err)
				return
			}
			if ok {
				mu.Lock()
				granted = append(granted, id)
				mu.Unlock()
			}
		}(uint64(i+1), c)
	}
	wg.Wait()
	if len(granted) != kmax {
		t.Fatalf("protocol granted %d reservations, want kmax = %d", len(granted), kmax)
	}

	// 4. Scheduling layer: the granted flows, each weighted equally, hold
	// their C/kmax share on the wire against an unreserved blaster.
	fq := sched.NewSCFQ()
	sources := make([]sched.Source, 0, kmax+1)
	for _, id := range granted {
		if err := fq.SetWeight(int(id), 1); err != nil {
			t.Fatal(err)
		}
		sources = append(sources, sched.Source{
			Flow: int(id), Rate: capacity / float64(kmax), PacketSize: 0.05,
		})
	}
	if err := fq.SetWeight(1000, 0.01); err != nil {
		t.Fatal(err)
	}
	sources = append(sources, sched.Source{Flow: 1000, Rate: 3 * capacity, PacketSize: 0.05})
	stats, err := sched.RunLink(fq, capacity, sources, 100)
	if err != nil {
		t.Fatal(err)
	}
	wantShare := capacity / float64(kmax)
	for _, id := range granted {
		if got := stats[int(id)].Throughput; math.Abs(got-wantShare) > 0.1*wantShare {
			t.Errorf("flow %d throughput %v, want ≈ %v (granted share)", id, got, wantShare)
		}
	}
}
