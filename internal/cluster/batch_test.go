package cluster

import (
	"sync"
	"testing"
	"time"
)

// TestClusterBatchLifecycle walks a batched path reservation end to end on
// the shared-bottleneck fixture: one ReserveBatch claims every hop for all
// its flows, the verdict reports each grant, both links carry exactly the
// granted claims, and one TeardownBatch drains everything.
func TestClusterBatchLifecycle(t *testing.T) {
	cl := startCluster(t, sharedSpec, Config{})
	topo := cl.topo
	laIdx, shIdx := topo.LinkIndex("la"), topo.LinkIndex("shared")

	la := cl.Node(0).NewLocal()
	seqs := []uint64{1, 2, 3, 4, 5, 6}
	verdict, share, err := la.ReserveBatch(0, seqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := verdict.Count(); got != len(seqs) {
		t.Fatalf("batch of %d on an empty path granted %d (verdict %b)", len(seqs), got, verdict)
	}
	if !(share > 0) {
		t.Fatalf("granted batch share %g", share)
	}
	if a := cl.Node(0).LinkActive(laIdx); a != int64(len(seqs)) {
		t.Errorf("link la holds %d claims, %d flows granted", a, len(seqs))
	}
	if a := cl.Node(2).LinkActive(shIdx); a != int64(len(seqs)) {
		t.Errorf("shared link holds %d claims, %d flows granted", a, len(seqs))
	}

	down, err := la.TeardownBatch(0, seqs)
	if err != nil {
		t.Fatal(err)
	}
	if got := down.Count(); got != len(seqs) {
		t.Fatalf("batched teardown of %d flows confirmed %d (verdict %b)", len(seqs), got, down)
	}
	if a := cl.Node(0).LinkActive(laIdx); a != 0 {
		t.Errorf("link la holds %d claims after batched teardown", a)
	}
	if a := cl.Node(2).LinkActive(shIdx); a != 0 {
		t.Errorf("shared link holds %d claims after batched teardown", a)
	}
	// A second batched teardown of the same flows confirms nothing and
	// releases nothing — teardown is exactly-once under batching too.
	down, err = la.TeardownBatch(0, seqs)
	if err != nil {
		t.Fatal(err)
	}
	if down != 0 {
		t.Errorf("re-teardown batch confirmed bits %b, want none", down)
	}
	if a := cl.Node(2).LinkActive(shIdx); a != 0 {
		t.Errorf("shared link at %d after duplicate batched teardown", a)
	}
}

// TestClusterBatchPartialGrantRollsBack pins the multi-hop partial-grant
// contract: a batch straddling the shared link's remaining headroom grants
// exactly the free slots as a prefix, and every denied flow's
// already-claimed upstream hop is rolled back — the entry link holds
// exactly the granted claims, never the attempted ones.
func TestClusterBatchPartialGrantRollsBack(t *testing.T) {
	const j = 3 // free slots left on the shared link
	cl := startCluster(t, sharedSpec, Config{})
	topo := cl.topo
	laIdx, shIdx := topo.LinkIndex("la"), topo.LinkIndex("shared")
	bound := cl.Bounds()[shIdx]

	lb := cl.Node(1).NewLocal()
	var fill []uint64
	for i := 0; i < bound-j; i++ {
		granted, _, err := lb.Reserve(1, uint64(i), 1)
		if err != nil || !granted {
			t.Fatalf("fill reserve %d: granted=%v err=%v", i, granted, err)
		}
		fill = append(fill, uint64(i))
	}

	la := cl.Node(0).NewLocal()
	seqs := []uint64{10, 11, 12, 13, 14, 15, 16, 17}
	verdict, _, err := la.ReserveBatch(0, seqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := verdict.Count(); got != j {
		t.Fatalf("batch of %d against %d free slots granted %d (verdict %b)", len(seqs), j, got, verdict)
	}
	for i := 0; i < j; i++ {
		if !verdict.Granted(i) {
			t.Fatalf("partial grant is not a prefix: verdict %b", verdict)
		}
	}
	if a := cl.Node(2).LinkActive(shIdx); a != int64(bound) {
		t.Errorf("shared link holds %d claims, bound is %d", a, bound)
	}
	if a := cl.Node(0).LinkActive(laIdx); a != j {
		t.Errorf("link la holds %d claims, %d flows granted — denied flows left residue", a, j)
	}
	if r := cl.Node(0).Metrics().Rollbacks.Load(); r == 0 {
		t.Error("no rollbacks recorded despite denials on the shared link")
	}

	// Drain: batched teardown of the granted prefix plus the fill side.
	down, err := la.TeardownBatch(0, seqs[:j])
	if err != nil || down.Count() != j {
		t.Fatalf("teardown of the granted prefix: verdict %b err %v", down, err)
	}
	down, err = lb.TeardownBatch(1, fill)
	if err != nil || down.Count() != len(fill) {
		t.Fatalf("teardown of the fill: verdict %b err %v", down, err)
	}
	for _, link := range []struct {
		node int
		idx  int
	}{{0, laIdx}, {2, shIdx}} {
		if a := cl.Node(link.node).LinkActive(link.idx); a != 0 {
			t.Errorf("link %s holds %d claims after full teardown", topo.Links[link.idx].ID, a)
		}
	}
}

// TestClusterBatchRacedBoundary races batched admissions from both entry
// nodes on the shared bottleneck with the hop coalescer's Nagle flush
// enabled: grants across every batch must sum to exactly the shared bound,
// denied flows must leave zero upstream residue, and concurrent batched
// teardowns release every grant exactly once. Run under -race in CI.
func TestClusterBatchRacedBoundary(t *testing.T) {
	cl := startCluster(t, sharedSpec, Config{HopBatchDelay: time.Millisecond})
	topo := cl.topo
	laIdx, lbIdx, shIdx := topo.LinkIndex("la"), topo.LinkIndex("lb"), topo.LinkIndex("shared")
	bound := cl.Bounds()[shIdx]

	const workers, per = 4, 8
	type side struct {
		local *Local
		pair  int
		mu    sync.Mutex
		seqs  []uint64
	}
	sides := []*side{
		{local: cl.Node(0).NewLocal(), pair: 0},
		{local: cl.Node(1).NewLocal(), pair: 1},
	}
	var wg sync.WaitGroup
	for _, s := range sides {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(s *side, w int) {
				defer wg.Done()
				batch := make([]uint64, per)
				for i := range batch {
					batch[i] = uint64(w*per + i)
				}
				verdict, _, err := s.local.ReserveBatch(s.pair, batch, 1)
				if err != nil {
					t.Errorf("batch reserve: %v", err)
					return
				}
				s.mu.Lock()
				for i, seq := range batch {
					if verdict.Granted(i) {
						s.seqs = append(s.seqs, seq)
					}
				}
				s.mu.Unlock()
			}(s, w)
		}
	}
	wg.Wait()

	grantsX, grantsY := int64(len(sides[0].seqs)), int64(len(sides[1].seqs))
	if total := grantsX + grantsY; total != int64(bound) {
		t.Errorf("raced batches granted %d paths through a link with bound %d (offered %d)",
			total, bound, 2*workers*per)
	}
	if a := cl.Node(0).LinkActive(laIdx); a != grantsX {
		t.Errorf("link la holds %d claims, %d grants", a, grantsX)
	}
	if a := cl.Node(1).LinkActive(lbIdx); a != grantsY {
		t.Errorf("link lb holds %d claims, %d grants", a, grantsY)
	}

	// Concurrent batched teardowns: every grant released exactly once.
	for _, s := range sides {
		if len(s.seqs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s *side) {
			defer wg.Done()
			verdict, err := s.local.TeardownBatch(s.pair, s.seqs)
			if err != nil {
				t.Errorf("batch teardown: %v", err)
				return
			}
			if verdict.Count() != len(s.seqs) {
				t.Errorf("batched teardown of %d grants confirmed %d", len(s.seqs), verdict.Count())
			}
		}(s)
	}
	wg.Wait()
	for _, link := range []struct {
		node int
		idx  int
	}{{0, laIdx}, {1, lbIdx}, {2, shIdx}} {
		if a := cl.Node(link.node).LinkActive(link.idx); a != 0 {
			t.Errorf("link %s holds %d claims after full teardown", topo.Links[link.idx].ID, a)
		}
	}
}

// TestClusterBatchOwnerKilled: batched admissions over a dead link owner
// fail cleanly — no grant bits, no claims stranded on the live entry link.
func TestClusterBatchOwnerKilled(t *testing.T) {
	cl := startCluster(t, sharedSpec, Config{AntiEntropy: -1})
	topo := cl.topo
	laIdx := topo.LinkIndex("la")

	cl.Kill(2) // owner of the shared link
	la := cl.Node(0).NewLocal()
	verdict, _, err := la.ReserveBatch(0, []uint64{1, 2, 3, 4}, 1)
	if err == nil && verdict != 0 {
		t.Fatalf("batch through a dead owner granted bits %b", verdict)
	}
	if a := cl.Node(0).LinkActive(laIdx); a != 0 {
		t.Errorf("link la holds %d claims after a batch failed on its dead downstream", a)
	}
	if f := cl.Node(0).Metrics().ForwardErrors.Load(); f == 0 {
		t.Error("no forward errors recorded against the dead owner")
	}
}

// TestClusterGossipSuppression pins delta suppression on the anti-entropy
// tick: once a link's occupancy has been advertised, further ticks are
// suppressed (and counted) until the occupancy moves, so a quiet cluster's
// gossip traffic collapses to zero frames.
func TestClusterGossipSuppression(t *testing.T) {
	// One remote-owned link: node a places over it, node b owns it. Only b
	// has links to advertise, so b's counters tell the whole story.
	const spec = "node a\nnode b\nlink l b 64\npath p l\npair x a b p\n"
	cl := startCluster(t, spec, Config{AntiEntropy: 2 * time.Millisecond})
	b := cl.Node(1)

	waitFor(t, "first occupancy snapshot sent", func() bool {
		return b.Metrics().GossipOut.Load() >= 1
	})
	waitFor(t, "anti-entropy suppression to engage", func() bool {
		return b.Metrics().GossipSuppressed.Load() >= 1
	})
	// Stable occupancy: suppression keeps counting while sends stay flat.
	out := b.Metrics().GossipOut.Load()
	sup := b.Metrics().GossipSuppressed.Load()
	waitFor(t, "five more suppressed ticks", func() bool {
		return b.Metrics().GossipSuppressed.Load() >= sup+5
	})
	if now := b.Metrics().GossipOut.Load(); now != out {
		t.Fatalf("gossip out moved %d → %d while occupancy was stable", out, now)
	}

	// Occupancy moves: the next tick (or the batch reply's piggyback)
	// re-advertises the link.
	l := cl.Node(0).NewLocal()
	verdict, _, err := l.ReserveBatch(0, []uint64{1, 2, 3}, 1)
	if err != nil || verdict.Count() != 3 {
		t.Fatalf("batch reserve: verdict %b err %v", verdict, err)
	}
	waitFor(t, "changed occupancy re-advertised", func() bool {
		return b.Metrics().GossipOut.Load() > out
	})

	// And the new level is suppressed in turn once advertised.
	out2 := b.Metrics().GossipOut.Load()
	sup2 := b.Metrics().GossipSuppressed.Load()
	waitFor(t, "suppression at the new occupancy", func() bool {
		return b.Metrics().GossipSuppressed.Load() >= sup2+5
	})
	if now := b.Metrics().GossipOut.Load(); now > out2+1 {
		t.Fatalf("gossip out kept climbing (%d → %d) after the new occupancy was advertised", out2, now)
	}
}
