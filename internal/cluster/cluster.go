package cluster

import (
	"fmt"
	"net"
	"time"

	"beqos/internal/utility"
)

// Config describes a cluster to assemble over a parsed topology.
type Config struct {
	// Topology is the parsed cluster description. Required.
	Topology *Topology
	// Util is the utility function every link's admission bound is derived
	// from (kmax(C) per link capacity). Defaults to the adaptive utility.
	Util utility.Function
	// TTL is the soft-state lifetime of a path reservation; 0 disables
	// expiry (reservations live until torn down or their connection drops).
	TTL time.Duration
	// Router selects the placement strategy. Defaults to RouteTwoChoice.
	Router RouterMode
	// AntiEntropy is the periodic full-gossip interval. Defaults to 25ms;
	// negative disables the tick (piggybacked gossip still flows).
	AntiEntropy time.Duration
	// Stale bounds how old a gossiped load signal may be before two-choice
	// falls back to hashed placement. Defaults to 8× AntiEntropy; negative
	// disables the check (signals never go stale).
	Stale time.Duration
	// HopBatchDelay is the latency bound of the per-peer hop coalescer's
	// Nagle flush: an outbound hop RPC waits up to this long for companions
	// before shipping (a full batch of resv.MaxBatch ships immediately).
	// 0, the default, flushes eagerly — concurrency alone sets the batch
	// size via group commit.
	HopBatchDelay time.Duration
	// Logf, if non-nil, receives one line per notable node event.
	Logf func(format string, args ...interface{})
}

// DefaultAntiEntropy is the default full-gossip interval.
const DefaultAntiEntropy = 25 * time.Millisecond

// Cluster is an assembled set of nodes sharing a topology, with the peer
// plane wired over in-process pipes. Use New + Start for tests, benchmarks
// and the in-process `beqos cluster` mode; production-shaped deployments
// wire nodes over TCP themselves with Node.HandlePeerConn/connect helpers.
type Cluster struct {
	topo   *Topology
	bounds []int
	nodes  []*Node
	ae     time.Duration
}

// Bounds returns the per-link admission bounds (indexed like
// Topology.Links) the cluster derived from its utility function.
func (c *Cluster) Bounds() []int { return c.bounds }

// New derives every link's admission bound from the utility function and
// builds one Node per topology node. Call Start to wire the peer plane.
func New(cfg Config) (*Cluster, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("cluster: config needs a topology")
	}
	util := cfg.Util
	if util == nil {
		util = utility.NewAdaptive()
	}
	topo := cfg.Topology
	bounds := make([]int, len(topo.Links))
	for i := range topo.Links {
		k, ok := utility.KMax(util, topo.Links[i].Capacity)
		if !ok {
			return nil, fmt.Errorf("cluster: utility %q has no finite kmax for link %s (capacity %g); reservations need a rigid or adaptive utility",
				util.Name(), topo.Links[i].ID, topo.Links[i].Capacity)
		}
		bounds[i] = k
	}
	ae := cfg.AntiEntropy
	if ae == 0 {
		ae = DefaultAntiEntropy
	}
	if ae < 0 {
		ae = 0 // no periodic tick; piggybacked gossip only
	}
	stale := cfg.Stale
	if stale == 0 {
		if ae > 0 {
			stale = 8 * ae
		} else {
			stale = 8 * DefaultAntiEntropy
		}
	}
	if stale < 0 {
		stale = 0 // router treats 0 as "never stale"
	}
	c := &Cluster{topo: topo, bounds: bounds, nodes: make([]*Node, len(topo.Nodes)), ae: ae}
	for i := range topo.Nodes {
		n, err := newNode(i, topo, bounds, cfg.TTL, cfg.Router, stale, cfg.HopBatchDelay)
		if err != nil {
			return nil, err
		}
		n.Logf = cfg.Logf
		c.nodes[i] = n
	}
	return c, nil
}

// Start wires the peer plane — one in-process pipe per ordered node pair,
// mux client on the initiator end, peer-plane server on the other — and
// launches every node's background loops. Nodes listed in skip are left
// unwired and dormant; bring them in later with Join (late-join tests).
func (c *Cluster) Start(skip ...int) {
	skipped := make(map[int]bool, len(skip))
	for _, i := range skip {
		skipped[i] = true
	}
	for i, ni := range c.nodes {
		if skipped[i] {
			continue
		}
		for j, nj := range c.nodes {
			if i == j || skipped[j] {
				continue
			}
			a, b := net.Pipe()
			ni.connectPeer(j, a)
			go nj.HandlePeerConn(b)
		}
	}
	for i, n := range c.nodes {
		if !skipped[i] {
			n.start(c.ae)
		}
	}
}

// Join wires one additional node into a running cluster (a late joiner for
// convergence tests): pipes in both directions between it and every node
// already serving, then its background loops.
func (c *Cluster) Join(i int) {
	ni := c.nodes[i]
	for j, nj := range c.nodes {
		if i == j {
			continue
		}
		a, b := net.Pipe()
		ni.connectPeer(j, a)
		go nj.HandlePeerConn(b)
		a, b = net.Pipe()
		nj.connectPeer(i, a)
		go ni.HandlePeerConn(b)
	}
	ni.start(c.ae)
}

// Len returns the number of nodes.
func (c *Cluster) Len() int { return len(c.nodes) }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Kill stops node i abruptly: its connections drop, so peers release every
// claim its entry plane held on them immediately, and claims on the dead
// node's own links become unreachable (their clients' TTLs expire them from
// the client side; the dead node's state is gone with it).
func (c *Cluster) Kill(i int) { c.nodes[i].Close() }

// Close stops every node.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		n.Close()
	}
}
