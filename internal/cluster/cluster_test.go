package cluster

import (
	"sync"
	"testing"
	"time"
)

// sharedSpec is the conformance fixture: two entry-side links feeding one
// tight shared link owned by a third node, so concurrent path admissions
// from two entry nodes race on the same bottleneck.
const sharedSpec = `
node a
node b
node c
link la a 1000
link lb b 1000
link shared c 8
path pa la,shared
path pb lb,shared
pair x a c pa
pair y b c pb
`

func mustTopo(t testing.TB, spec string) *Topology {
	t.Helper()
	topo, err := ParseTopology(spec)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func startCluster(t testing.TB, spec string, cfg Config) *Cluster {
	t.Helper()
	cfg.Topology = mustTopo(t, spec)
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	t.Cleanup(cl.Close)
	return cl
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPathAdmissionConformance is the cluster invariant check: concurrent
// admissions from two entry nodes racing on a shared link never over-admit
// it, every denied path leaves zero upstream residue, and every grant is
// released exactly once. Run under -race in CI.
func TestPathAdmissionConformance(t *testing.T) {
	cl := startCluster(t, sharedSpec, Config{})
	topo := cl.topo
	laIdx, lbIdx, shIdx := topo.LinkIndex("la"), topo.LinkIndex("lb"), topo.LinkIndex("shared")
	sharedBound := cl.Bounds()[shIdx]

	const workers, per = 4, 16
	type side struct {
		local *Local
		pair  int
		mu    sync.Mutex
		seqs  []uint64
	}
	sides := []*side{
		{local: cl.Node(0).NewLocal(), pair: 0},
		{local: cl.Node(1).NewLocal(), pair: 1},
	}
	var wg sync.WaitGroup
	for _, s := range sides {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(s *side, w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					seq := uint64(w*per + i)
					granted, share, err := s.local.Reserve(s.pair, seq, 1)
					if err != nil {
						t.Errorf("reserve: %v", err)
						return
					}
					if granted {
						if !(share > 0) {
							t.Errorf("granted share %g", share)
						}
						s.mu.Lock()
						s.seqs = append(s.seqs, seq)
						s.mu.Unlock()
					}
				}
			}(s, w)
		}
	}
	wg.Wait()

	grantsX, grantsY := int64(len(sides[0].seqs)), int64(len(sides[1].seqs))
	total := grantsX + grantsY
	if total != int64(sharedBound) {
		t.Errorf("granted %d paths through a link with bound %d (offered %d)", total, sharedBound, 2*workers*per)
	}
	if a := cl.Node(2).LinkActive(shIdx); a != total {
		t.Errorf("shared link holds %d claims, %d paths granted", a, total)
	}
	// No-residue: the entry links hold exactly the granted claims — every
	// denial rolled its upstream hop back.
	if a := cl.Node(0).LinkActive(laIdx); a != grantsX {
		t.Errorf("link la holds %d claims, %d grants", a, grantsX)
	}
	if a := cl.Node(1).LinkActive(lbIdx); a != grantsY {
		t.Errorf("link lb holds %d claims, %d grants", a, grantsY)
	}
	if r := cl.Node(0).Metrics().Rollbacks.Load() + cl.Node(1).Metrics().Rollbacks.Load(); r == 0 {
		t.Error("no rollbacks recorded despite denials on the shared link")
	}

	// Release exactly once: tear every grant down concurrently; everything
	// must drain to zero (a double release would underflow the policy).
	for _, s := range sides {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(s *side, w int) {
				defer wg.Done()
				s.mu.Lock()
				seqs := s.seqs
				s.mu.Unlock()
				for i, seq := range seqs {
					if i%workers != w {
						continue
					}
					if err := s.local.Teardown(s.pair, seq); err != nil {
						t.Errorf("teardown seq %d: %v", seq, err)
					}
				}
			}(s, w)
		}
	}
	wg.Wait()
	for _, link := range []struct {
		node int
		idx  int
	}{{0, laIdx}, {1, lbIdx}, {2, shIdx}} {
		if a := cl.Node(link.node).LinkActive(link.idx); a != 0 {
			t.Errorf("link %s holds %d claims after full teardown", topo.Links[link.idx].ID, a)
		}
	}
	// A second teardown of the same flow is an error, not a second release.
	if err := sides[0].local.Teardown(0, sides[0].seqs[0]); err == nil {
		t.Error("re-teardown of a released flow succeeded")
	}
	if a := cl.Node(2).LinkActive(shIdx); a != 0 {
		t.Errorf("shared link at %d after duplicate teardown", a)
	}
}

// TestRollbackLeavesNoResidue pins the single-flow version: fill the
// shared link from one side, then a path admission from the other side
// must deny AND leave its already-claimed upstream hop released.
func TestRollbackLeavesNoResidue(t *testing.T) {
	cl := startCluster(t, sharedSpec, Config{})
	topo := cl.topo
	laIdx, shIdx := topo.LinkIndex("la"), topo.LinkIndex("shared")
	bound := cl.Bounds()[shIdx]

	lb := cl.Node(1).NewLocal()
	for i := 0; i < bound; i++ {
		granted, _, err := lb.Reserve(1, uint64(i), 1)
		if err != nil || !granted {
			t.Fatalf("fill reserve %d: granted=%v err=%v", i, granted, err)
		}
	}
	la := cl.Node(0).NewLocal()
	granted, _, err := la.Reserve(0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if granted {
		t.Fatal("admission through a full shared link granted")
	}
	if a := cl.Node(0).LinkActive(laIdx); a != 0 {
		t.Fatalf("denied path left %d claims on its upstream link", a)
	}
	if v := cl.Node(0).Metrics().Rollbacks.Load(); v != 1 {
		t.Fatalf("rollbacks = %d, want 1", v)
	}
	// One slot freed makes the same path admissible — the rollback did not
	// eat anyone else's slot.
	if err := lb.Teardown(1, 0); err != nil {
		t.Fatal(err)
	}
	granted, _, err = la.Reserve(0, 1, 1)
	if err != nil || !granted {
		t.Fatalf("reserve after slot freed: granted=%v err=%v", granted, err)
	}
}

// TestLocalFlowLifecycle covers the client-plane protocol edges on a Local
// handle: duplicate reserve, unknown teardown/refresh, stats aggregation,
// and Close rolling back everything the handle holds.
func TestLocalFlowLifecycle(t *testing.T) {
	cl := startCluster(t, sharedSpec, Config{TTL: time.Minute})
	topo := cl.topo
	shIdx := topo.LinkIndex("shared")

	l := cl.Node(0).NewLocal()
	granted, _, err := l.Reserve(0, 7, 1)
	if err != nil || !granted {
		t.Fatalf("reserve: granted=%v err=%v", granted, err)
	}
	if _, _, err := l.Reserve(0, 7, 1); err == nil {
		t.Error("duplicate reserve succeeded")
	}
	if err := l.Teardown(0, 99); err == nil {
		t.Error("teardown of unknown flow succeeded")
	}
	if err := l.Refresh(0, 99); err == nil {
		t.Error("refresh of unknown flow succeeded")
	}
	if err := l.Refresh(0, 7); err != nil {
		t.Errorf("refresh of live flow: %v", err)
	}

	kmax, _, err := l.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var wantKmax int64
	for _, b := range cl.Bounds() {
		wantKmax += int64(b)
	}
	if kmax != wantKmax {
		t.Errorf("stats kmax = %d, want cluster-wide %d", kmax, wantKmax)
	}

	l.Close()
	if a := cl.Node(2).LinkActive(shIdx); a != 0 {
		t.Errorf("closed handle left %d claims on the shared link", a)
	}
}

// TestStatsConvergesEverywhere: after gossip settles, every node reports
// the same cluster-wide active count for flows it never placed or carried.
func TestStatsConvergesEverywhere(t *testing.T) {
	cl := startCluster(t, sharedSpec, Config{AntiEntropy: 2 * time.Millisecond})
	l := cl.Node(0).NewLocal()
	const flows = 5
	for i := 0; i < flows; i++ {
		granted, _, err := l.Reserve(0, uint64(i), 1)
		if err != nil || !granted {
			t.Fatalf("reserve %d: granted=%v err=%v", i, granted, err)
		}
	}
	for i := 0; i < cl.Len(); i++ {
		i := i
		h := cl.Node(i).NewLocal()
		waitFor(t, "stats convergence", func() bool {
			_, active, err := h.Stats()
			return err == nil && active == 2*flows // la + shared, one claim each per flow
		})
		h.Close()
	}
}

// TestLateJoinConvergence: a node wired in after the cluster carried load
// learns every remote link's occupancy via anti-entropy and can route and
// answer stats without having seen any of the original traffic.
func TestLateJoinConvergence(t *testing.T) {
	topoSpec := sharedSpec + "pair z c a pa\n" // give the late joiner a pair to place
	cfg := Config{Topology: mustTopo(t, topoSpec), AntiEntropy: 2 * time.Millisecond}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Start(2) // node c (owner of the shared link) joins late

	// Load the entry links while c is dormant: use a pair whose path stays
	// off c's links. There is none in this fixture — every path crosses
	// shared — so instead carry load after join and verify the joiner
	// converges from zero knowledge.
	cl.Join(2)
	l := cl.Node(0).NewLocal()
	const flows = 4
	for i := 0; i < flows; i++ {
		granted, _, err := l.Reserve(0, uint64(i), 1)
		if err != nil || !granted {
			t.Fatalf("reserve %d: granted=%v err=%v", i, granted, err)
		}
	}
	h := cl.Node(2).NewLocal()
	defer h.Close()
	waitFor(t, "late joiner stats convergence", func() bool {
		_, active, err := h.Stats()
		return err == nil && active == 2*flows
	})
	// And the joiner can place: pair z routes c→a over pa (la + shared),
	// both remote to c's entry plane until now.
	granted, _, err := h.Reserve(2, 0, 1)
	if err != nil || !granted {
		t.Fatalf("late joiner placement: granted=%v err=%v", granted, err)
	}
}

// TestKilledNodeReleasesAndExpires: killing an entry node releases the
// claims it forwarded to live nodes immediately (connection drop), and a
// killed link owner stops receiving placements — paths over its links deny
// — while entry-side flow state drains via TTL.
func TestKilledNodeReleasesAndExpires(t *testing.T) {
	cl := startCluster(t, sharedSpec, Config{TTL: 150 * time.Millisecond, AntiEntropy: 2 * time.Millisecond})
	topo := cl.topo
	laIdx, shIdx := topo.LinkIndex("la"), topo.LinkIndex("shared")

	la := cl.Node(0).NewLocal()
	for i := 0; i < 3; i++ {
		granted, _, err := la.Reserve(0, uint64(i), 1)
		if err != nil || !granted {
			t.Fatalf("reserve %d: granted=%v err=%v", i, granted, err)
		}
	}
	if a := cl.Node(2).LinkActive(shIdx); a != 3 {
		t.Fatalf("shared link holds %d claims, want 3", a)
	}

	// Kill the entry node: the shared link's owner sees the peer
	// connection drop and releases node a's claims at once — no TTL wait.
	cl.Kill(0)
	waitFor(t, "killed entry node's remote claims released", func() bool {
		return cl.Node(2).LinkActive(shIdx) == 0
	})
	_ = laIdx // node a's own link state died with it

	// Kill the shared link's owner too: placements over it now fail fast
	// at the surviving entry node.
	lb := cl.Node(1).NewLocal()
	granted, _, err := lb.Reserve(1, 100, 1)
	if err != nil || !granted {
		t.Fatalf("pre-kill placement: granted=%v err=%v", granted, err)
	}
	cl.Kill(2)
	granted, _, err = lb.Reserve(1, 101, 1)
	if err != nil {
		t.Fatal(err)
	}
	if granted {
		t.Fatal("placement over a killed link owner granted")
	}
	if cl.Node(1).Metrics().ForwardErrors.Load() == 0 {
		t.Error("no forward errors recorded against the killed owner")
	}
	// The surviving entry node's flow state for the pre-kill grant expires
	// via TTL (it can no longer refresh or tear down through the dead
	// owner), releasing its local hop.
	lbIdx := topo.LinkIndex("lb")
	waitFor(t, "TTL expiry of the orphaned flow", func() bool {
		return cl.Node(1).LinkActive(lbIdx) == 0
	})
	if cl.Node(1).Metrics().Expiries.Load() == 0 {
		t.Error("no expiries recorded for the orphaned flow")
	}
}

// TestRefreshExtendsTTL: refreshed reservations outlive several TTL
// windows; unrefreshed ones expire on every hop.
func TestRefreshExtendsTTL(t *testing.T) {
	cl := startCluster(t, sharedSpec, Config{TTL: 400 * time.Millisecond})
	topo := cl.topo
	shIdx := topo.LinkIndex("shared")

	l := cl.Node(0).NewLocal()
	granted, _, err := l.Reserve(0, 1, 1)
	if err != nil || !granted {
		t.Fatalf("reserve: granted=%v err=%v", granted, err)
	}
	for i := 0; i < 8; i++ {
		time.Sleep(80 * time.Millisecond)
		if err := l.Refresh(0, 1); err != nil {
			t.Fatalf("refresh %d: %v", i, err)
		}
	}
	if a := cl.Node(2).LinkActive(shIdx); a != 1 {
		t.Fatalf("refreshed flow expired: shared link holds %d claims", a)
	}
	waitFor(t, "expiry after refreshes stop", func() bool {
		return cl.Node(2).LinkActive(shIdx) == 0 && cl.Node(0).LinkActive(topo.LinkIndex("la")) == 0
	})
}

// twoPathSpec gives one pair two disjoint single-link paths on different
// owners, so placement choice is observable per link.
const twoPathSpec = `
node a
node b
node c
link lb b 8
link lc c 8
path via-b lb
path via-c lc
pair x a b via-b,via-c
pair fill-b a b via-b
`

// TestTwoChoiceAvoidsLoadedPath: with one candidate pre-loaded and fresh
// gossip, two-choice placements all land on the empty path; consistent
// hashing splits and therefore blocks once the loaded path fills.
func TestTwoChoiceAvoidsLoadedPath(t *testing.T) {
	for _, mode := range []RouterMode{RouteTwoChoice, RouteHash} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cl := startCluster(t, twoPathSpec, Config{Router: mode, AntiEntropy: 2 * time.Millisecond})
			topo := cl.topo
			lbIdx, lcIdx := topo.LinkIndex("lb"), topo.LinkIndex("lc")
			bound := cl.Bounds()[lbIdx]

			l := cl.Node(0).NewLocal()
			// Pre-load via-b to its bound through the single-path pair.
			for i := 0; i < bound; i++ {
				granted, _, err := l.Reserve(1, uint64(i), 1)
				if err != nil || !granted {
					t.Fatalf("fill %d: granted=%v err=%v", i, granted, err)
				}
			}
			// Let the entry node's view of both links go fresh.
			waitFor(t, "fresh load signal for lb", func() bool {
				now := cl.Node(0).nowNanos()
				load, fresh := cl.Node(0).pathLoad(topo.pathIdx["via-b"], now)
				return fresh && load >= 1
			})
			waitFor(t, "fresh load signal for lc", func() bool {
				_, fresh := cl.Node(0).pathLoad(topo.pathIdx["via-c"], cl.Node(0).nowNanos())
				return fresh
			})

			grants := 0
			for i := 0; i < bound; i++ {
				granted, _, err := l.Reserve(0, uint64(i), 1)
				if err != nil {
					t.Fatal(err)
				}
				if granted {
					grants++
				}
			}
			switch mode {
			case RouteTwoChoice:
				// Every placement sees via-b full and via-c emptier; all
				// land on via-c.
				if grants != bound {
					t.Errorf("two-choice granted %d/%d with an empty alternate path", grants, bound)
				}
				if a := cl.Node(2).LinkActive(lcIdx); int(a) != bound {
					t.Errorf("alternate link holds %d claims, want %d", a, bound)
				}
				if cl.Node(0).Metrics().RouteAlt.Load() == 0 {
					t.Error("no alternate placements recorded")
				}
			case RouteHash:
				// The hash splits placements over both paths regardless of
				// load, so some land on the full via-b and block.
				if grants == bound {
					t.Skip("hash happened to avoid the loaded path for every flow ID (improbable)")
				}
				if cl.Node(0).Metrics().PathDenies.Load() == 0 {
					t.Error("hash placement recorded no denies on a full path")
				}
			}
		})
	}
}

// TestBurstPlacementBalances: a back-to-back burst from one entry node —
// faster than any gossip round trip — still spreads over both candidate
// paths, because the router folds the node's own outstanding claims into
// each remote link's load estimate. Without own-claim sharpening the whole
// burst herds onto whichever path the last gossip round called empty.
func TestBurstPlacementBalances(t *testing.T) {
	cl := startCluster(t, twoPathSpec, Config{AntiEntropy: 2 * time.Millisecond})
	topo := cl.topo
	bound := cl.Bounds()[topo.LinkIndex("lb")]

	// Wait until both links' (empty) snapshots have arrived, so no
	// placement falls back to plain hashing.
	waitFor(t, "both load signals fresh", func() bool {
		now := cl.Node(0).nowNanos()
		_, fb := cl.Node(0).pathLoad(topo.pathIdx["via-b"], now)
		_, fc := cl.Node(0).pathLoad(topo.pathIdx["via-c"], now)
		return fb && fc
	})
	l := cl.Node(0).NewLocal()
	grants := 0
	for i := 0; i < 2*bound; i++ {
		granted, _, err := l.Reserve(0, uint64(i), 1)
		if err != nil {
			t.Fatal(err)
		}
		if granted {
			grants++
		}
	}
	if grants != 2*bound {
		t.Errorf("burst granted %d/%d across two paths of bound %d each", grants, 2*bound, bound)
	}
	if v := cl.Node(0).Metrics().RouteFallback.Load(); v != 0 {
		t.Errorf("%d placements fell back to hashing despite fresh signals", v)
	}
}

// TestStaleSignalsFallBackToHash: with gossip disabled the entry node
// never learns remote loads, so two-choice degrades to the hash anchor and
// says so in its metrics.
func TestStaleSignalsFallBackToHash(t *testing.T) {
	cl := startCluster(t, twoPathSpec, Config{AntiEntropy: -1})
	l := cl.Node(0).NewLocal()
	const flows = 8
	for i := 0; i < flows; i++ {
		if _, _, err := l.Reserve(0, uint64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if v := cl.Node(0).Metrics().RouteFallback.Load(); v != flows {
		t.Errorf("route fallbacks = %d, want %d (every placement blind)", v, flows)
	}
}

// TestLocalAdmitZeroAlloc: the steady-state local-admit hot path — a
// reserve and teardown over a single locally-owned link — allocates
// nothing once claim and flow records are in the free lists.
func TestLocalAdmitZeroAlloc(t *testing.T) {
	cl := startCluster(t, "node a\nlink l a 64\npath p l\npair x a a p\n", Config{AntiEntropy: -1})
	l := cl.Node(0).NewLocal()
	// Warm the free lists.
	for i := 0; i < 4; i++ {
		if _, _, err := l.Reserve(0, 1, 1); err != nil {
			t.Fatal(err)
		}
		if err := l.Teardown(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		granted, _, err := l.Reserve(0, 1, 1)
		if err != nil || !granted {
			t.Fatalf("reserve: granted=%v err=%v", granted, err)
		}
		if err := l.Teardown(0, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("local admit+teardown allocates %v/op, want 0", allocs)
	}
}
