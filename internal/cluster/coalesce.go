package cluster

import (
	"errors"
	"sync"
	"time"

	"beqos/internal/resv"
)

// errNodeClosed fails hop ops still pending when their node shuts down.
var errNodeClosed = errors.New("cluster: node closed")

// hopOp is one remote-hop operation (claim or release) awaiting a
// coalesced flush to its link's owner. Ops are recycled through the
// coalescer's free list, so the steady-state forward path allocates
// nothing.
type hopOp struct {
	frame resv.Frame // MsgRequest or MsgTeardown, FlowID = linkIdx<<48 | hopKey
	// granted/err are valid after done is received: granted is the op's
	// verdict bit, err a transport-level failure of the whole flush.
	granted bool
	err     error
	co      *coalescer // owner free list, so any holder can recycle with op.co.put(op)
	done    chan struct{}
	next    *hopOp
}

// wait blocks until the op's flush delivered its result.
func (op *hopOp) wait() { <-op.done }

// coalescer batches one peer's outbound hop RPCs: enqueued ops accumulate
// in a FIFO and a dedicated flusher ships them as MsgReserveBatch bodies —
// up to resv.MaxBatch ops per RPC, flushed the moment the flusher is idle,
// or after the configured Nagle delay (whichever fills a batch first) when
// one is set. Claims and teardowns to the same peer share batches, and
// FIFO order is preserved end to end — the owner processes body ops in
// order, so a teardown enqueued before a claim frees its slot first,
// exactly as the unbatched wire behaved.
//
// The flusher is serial per peer: while one batch RPC is in flight, new
// ops pile up and ship together on the next flush (group commit), so
// concurrency raises the coalescing factor instead of the RPC rate.
type coalescer struct {
	mc    *resv.MuxClient
	n     *Node
	delay time.Duration

	mu    sync.Mutex
	head  *hopOp
	tail  *hopOp
	npend int
	free  *hopOp
	dead  bool

	wake chan struct{} // 1-buffered: pending work exists
	full chan struct{} // 1-buffered: a full batch is waiting (cuts the Nagle delay short)
}

func newCoalescer(n *Node, mc *resv.MuxClient, delay time.Duration) *coalescer {
	return &coalescer{
		mc:    mc,
		n:     n,
		delay: delay,
		wake:  make(chan struct{}, 1),
		full:  make(chan struct{}, 1),
	}
}

// enqueue hands one op to the flusher and returns its rendezvous, nil when
// the node is shutting down (the caller treats nil as a transport error).
// After wait, the caller reads the results and returns the op with put.
func (co *coalescer) enqueue(f resv.Frame) *hopOp {
	co.mu.Lock()
	if co.dead {
		co.mu.Unlock()
		return nil
	}
	op := co.free
	if op != nil {
		co.free = op.next
		op.next = nil
	} else {
		op = &hopOp{co: co, done: make(chan struct{}, 1)}
	}
	op.frame, op.granted, op.err = f, false, nil
	if co.tail != nil {
		co.tail.next = op
	} else {
		co.head = op
	}
	co.tail = op
	co.npend++
	fullNow := co.npend >= resv.MaxBatch
	co.mu.Unlock()
	select {
	case co.wake <- struct{}{}:
	default:
	}
	if fullNow {
		select {
		case co.full <- struct{}{}:
		default:
		}
	}
	return op
}

// put recycles a completed op.
func (co *coalescer) put(op *hopOp) {
	co.mu.Lock()
	op.next = co.free
	co.free = op
	co.mu.Unlock()
}

// take pops up to one batch of pending ops, FIFO.
func (co *coalescer) take(ops []*hopOp) []*hopOp {
	co.mu.Lock()
	for co.head != nil && len(ops) < resv.MaxBatch {
		op := co.head
		co.head = op.next
		op.next = nil
		if co.head == nil {
			co.tail = nil
		}
		co.npend--
		ops = append(ops, op)
	}
	co.mu.Unlock()
	return ops
}

func (co *coalescer) pending() int {
	co.mu.Lock()
	n := co.npend
	co.mu.Unlock()
	return n
}

// run is the flusher loop. It exits when the node stops, failing every
// still-pending op so no claimant blocks forever.
func (co *coalescer) run(stop <-chan struct{}) {
	defer co.n.wg.Done()
	ops := make([]*hopOp, 0, resv.MaxBatch)
	body := make([]resv.Frame, 0, resv.MaxBatch)
	for {
		select {
		case <-co.wake:
		case <-stop:
			co.shutdown()
			return
		}
		if co.delay > 0 && co.pending() < resv.MaxBatch {
			// Latency-bounded Nagle: hold the flush for up to delay, cut
			// short the moment a full batch is waiting.
			t := time.NewTimer(co.delay)
			select {
			case <-co.full:
			case <-t.C:
			case <-stop:
				t.Stop()
				co.shutdown()
				return
			}
			t.Stop()
		}
		for {
			ops = co.take(ops[:0])
			if len(ops) == 0 {
				break
			}
			if len(ops) == 1 {
				// A lone op rides the classic single-frame RPC, keeping the
				// unbatched wire byte-identical: an uncoalesced cluster puts
				// exactly the frames on the wire it always did.
				op := ops[0]
				if op.frame.Type == resv.MsgRequest {
					op.granted, _, op.err = co.mc.ReserveClass(co.n.ctx, op.frame.FlowID, op.frame.Value, op.frame.Class)
				} else {
					op.err = co.mc.Teardown(co.n.ctx, op.frame.FlowID)
					op.granted = op.err == nil
				}
				op.done <- struct{}{}
				continue
			}
			body = body[:0]
			for _, op := range ops {
				body = append(body, op.frame)
			}
			v, _, err := co.mc.ReserveBatch(co.n.ctx, body)
			for i, op := range ops {
				op.err = err
				if err == nil {
					op.granted = v.Granted(i)
				}
				op.done <- struct{}{}
			}
		}
	}
}

// shutdown marks the coalescer dead and fails everything still queued.
func (co *coalescer) shutdown() {
	co.mu.Lock()
	co.dead = true
	head := co.head
	co.head, co.tail, co.npend = nil, nil, 0
	co.mu.Unlock()
	for op := head; op != nil; {
		next := op.next
		op.next = nil
		op.err = errNodeClosed
		op.done <- struct{}{}
		op = next
	}
}
