package cluster

import (
	"strings"
	"testing"
)

// FuzzParseTopology drives the spec parser with arbitrary text: it must
// never panic, and any spec it accepts must be internally consistent —
// every index in a parsed topology in range, every declared ID resolvable.
// The seed corpus covers each directive, each error branch, and the Ring
// generator's output.
func FuzzParseTopology(f *testing.F) {
	f.Add("node a\nlink ab a 10\npath p ab\npair x a a p\n")
	f.Add(Ring(4, 32, true))
	f.Add(Ring(1, 8, false))
	f.Add("# only comments\n\n   \n")
	f.Add("node a\nnode a\n")
	f.Add("link ab nowhere 10\n")
	f.Add("node a\nlink ab a -1\n")
	f.Add("node a\nlink ab a 1e309\n")
	f.Add("node a\nlink ab a 10\npath p ab,ab\n")
	f.Add("node a\nlink ab a 10\npath p ab\npair x a b p,p\n")
	f.Add("pair x a b p\n")
	f.Add("node a\r\nlink ab a 10\n")
	f.Add(strings.Repeat("node x\n", 3))
	f.Fuzz(func(t *testing.T, spec string) {
		topo, err := ParseTopology(spec)
		if err != nil {
			if topo != nil {
				t.Fatal("non-nil topology alongside an error")
			}
			return
		}
		if len(topo.Nodes) == 0 || len(topo.Pairs) == 0 {
			t.Fatal("accepted a topology with no nodes or no pairs")
		}
		if len(topo.Nodes) > MaxNodes || len(topo.Links) > MaxLinks || len(topo.Pairs) > MaxPairs {
			t.Fatalf("accepted an oversized topology: %d nodes, %d links, %d pairs",
				len(topo.Nodes), len(topo.Links), len(topo.Pairs))
		}
		for i, l := range topo.Links {
			if l.Owner < 0 || l.Owner >= len(topo.Nodes) {
				t.Fatalf("link %d owner %d out of range", i, l.Owner)
			}
			if !(l.Capacity > 0) {
				t.Fatalf("link %d capacity %g accepted", i, l.Capacity)
			}
			if l.Index != i {
				t.Fatalf("link %d carries index %d", i, l.Index)
			}
			if topo.LinkIndex(l.ID) != i {
				t.Fatalf("link %q does not resolve to its own index", l.ID)
			}
		}
		for i, p := range topo.Paths {
			if len(p.Links) == 0 && p.ID == "" {
				t.Fatalf("path %d is empty and unnamed", i)
			}
			if len(p.Links) > MaxPathLinks {
				t.Fatalf("path %q has %d links", p.ID, len(p.Links))
			}
			for _, gi := range p.Links {
				if gi < 0 || gi >= len(topo.Links) {
					t.Fatalf("path %q traverses out-of-range link %d", p.ID, gi)
				}
			}
		}
		for i, pr := range topo.Pairs {
			if pr.Index != i {
				t.Fatalf("pair %d carries index %d", i, pr.Index)
			}
			if pr.Src < 0 || pr.Src >= len(topo.Nodes) || pr.Dst < 0 || pr.Dst >= len(topo.Nodes) {
				t.Fatalf("pair %q endpoints out of range", pr.ID)
			}
			for _, pi := range pr.Paths {
				if pi < 0 || pi >= len(topo.Paths) {
					t.Fatalf("pair %q references out-of-range path %d", pr.ID, pi)
				}
			}
		}
		for _, n := range topo.Nodes {
			if topo.NodeIndex(n) < 0 {
				t.Fatalf("node %q does not resolve", n)
			}
		}
	})
}
