package cluster

import (
	"sync"

	"beqos/internal/policy"
	"beqos/internal/resv"
)

// linkState is one locally-owned link: the admission policy that bounds it
// and the claim table that makes every admission releasable exactly once.
// The policy's CAS-bounded counters are the no-over-admit guarantee —
// concurrent claims (from this node's entry flows and from every peer
// forwarding hops here) race on the same atomics the single-link serving
// plane uses. The claim table is the bookkeeping around the decision:
// which hop keys hold slots, who owns them (an inbound peer connection, or
// this node's own entry plane), and when they expire.
type linkState struct {
	link  Link
	bound int
	pol   policy.Policy
	// needsClock mirrors resv's polClock: the default counting policy is
	// clockless and must not pay a time read per admission.
	needsClock bool

	mu     sync.Mutex
	claims map[uint64]*claim
	free   *claim
	// expired is sweep scratch, reused across ticks.
	expired []*claim
}

// claim is one admitted hop on this link. Claims are recycled through the
// free list so the steady-state admit path allocates nothing.
type claim struct {
	key   uint64
	owner *peerSess // inbound peer connection, nil for entry-local claims
	rate  float64
	// deadline is the expiry instant in node-monotonic nanoseconds; 0
	// means the claim never expires (no cluster TTL).
	deadline int64
	next     *claim
}

func newLinkState(l Link, bound int) (*linkState, error) {
	counting, err := policy.NewCounting(l.Capacity, bound)
	if err != nil {
		return nil, err
	}
	var pol policy.Policy = counting
	ls := &linkState{link: l, bound: bound, pol: pol, claims: make(map[uint64]*claim)}
	if cu, ok := pol.(policy.ClockUser); ok && cu.NeedsClock() {
		ls.needsClock = true
	}
	return ls, nil
}

func (ls *linkState) polNow(now int64) int64 {
	if ls.needsClock {
		return now
	}
	return 0
}

// admitStatus is admit's verdict beyond the policy's own decision.
type admitStatus int8

const (
	admitGranted admitStatus = iota
	admitDenied
	admitDuplicate
)

// admit claims one hop on the link: the policy decides (lock-free deny),
// the claim table records. A duplicate hop key rolls the policy claim back
// and leaves all state untouched — hop keys are minted per admission by
// entry nodes, so a duplicate is a protocol error, not a retransmit.
func (ls *linkState) admit(now int64, key uint64, rate float64, class uint8, owner *peerSess, deadline int64) (policy.Decision, admitStatus) {
	dec := ls.pol.Admit(ls.polNow(now), key, rate, class)
	if !dec.Admit {
		return dec, admitDenied
	}
	ls.mu.Lock()
	if _, dup := ls.claims[key]; dup {
		ls.mu.Unlock()
		ls.pol.Release(ls.polNow(now), rate)
		return dec, admitDuplicate
	}
	c := ls.free
	if c != nil {
		ls.free = c.next
		c.next = nil
	} else {
		c = new(claim)
	}
	c.key, c.owner, c.rate, c.deadline = key, owner, rate, deadline
	ls.claims[key] = c
	if owner != nil {
		owner.track(uint64(ls.link.Index)<<idxShift | key)
	}
	ls.mu.Unlock()
	return dec, admitGranted
}

// admitN claims one run of batched hops on the link — identical rate and
// class, distinct hop keys — with a single vectored policy claim and one
// claim-table pass. The policy grants a prefix (exact at the kmax
// boundary); installed ops get their bit set in verdict at base+i. A
// duplicate hop key inside the granted prefix returns its single policy
// claim and keeps its bit clear, exactly like the unbatched duplicate
// path.
func (ls *linkState) admitN(now int64, frames []resv.Frame, owner *peerSess, deadline int64, base int, verdict *resv.BatchVerdict) (installed int, dec policy.Decision) {
	rate, class := frames[0].Value, frames[0].Class
	pnow := ls.polNow(now)
	granted, dec := policy.AdmitBatch(ls.pol, pnow, frames[0].FlowID&keyMask, rate, class, len(frames))
	if granted == 0 {
		return 0, dec
	}
	ls.mu.Lock()
	for i := 0; i < granted; i++ {
		key := frames[i].FlowID & keyMask
		if _, dup := ls.claims[key]; dup {
			ls.pol.Release(pnow, rate)
			continue
		}
		c := ls.free
		if c != nil {
			ls.free = c.next
			c.next = nil
		} else {
			c = new(claim)
		}
		c.key, c.owner, c.rate, c.deadline = key, owner, rate, deadline
		ls.claims[key] = c
		if owner != nil {
			owner.track(uint64(ls.link.Index)<<idxShift | key)
		}
		*verdict |= 1 << uint(base+i)
		installed++
	}
	ls.mu.Unlock()
	return installed, dec
}

// release returns the hop's claim to the policy. It reports false when no
// claim holds the key — already released, expired, or never admitted — so
// every racing release path (teardown, rollback, connection drop, TTL)
// composes to exactly one policy release per admission.
func (ls *linkState) release(now int64, key uint64) bool {
	ls.mu.Lock()
	c, ok := ls.claims[key]
	if !ok {
		ls.mu.Unlock()
		return false
	}
	delete(ls.claims, key)
	if c.owner != nil {
		c.owner.untrack(uint64(ls.link.Index)<<idxShift | key)
	}
	rate := c.rate
	c.owner = nil
	c.next = ls.free
	ls.free = c
	ls.pol.Release(ls.polNow(now), rate)
	ls.mu.Unlock()
	return true
}

// refresh renews the claim's deadline; it reports whether the claim lives.
func (ls *linkState) refresh(key uint64, deadline int64) bool {
	ls.mu.Lock()
	c, ok := ls.claims[key]
	if ok {
		c.deadline = deadline
	}
	ls.mu.Unlock()
	return ok
}

// expire releases every claim whose deadline has passed and returns how
// many went. The scan is proportional to the live claims on this link —
// the cluster plane's TTL is a correctness backstop (crashed entry nodes,
// partitioned peers), not a per-request hot path, so it trades the resv
// plane's timing wheels for simplicity.
func (ls *linkState) expire(now int64) int {
	ls.mu.Lock()
	ls.expired = ls.expired[:0]
	for _, c := range ls.claims {
		if c.deadline != 0 && c.deadline <= now {
			ls.expired = append(ls.expired, c)
		}
	}
	for _, c := range ls.expired {
		delete(ls.claims, c.key)
		if c.owner != nil {
			c.owner.untrack(uint64(ls.link.Index)<<idxShift | c.key)
		}
		ls.pol.Release(ls.polNow(now), c.rate)
		c.owner = nil
		c.next = ls.free
		ls.free = c
	}
	n := len(ls.expired)
	ls.mu.Unlock()
	return n
}

// peerSess tracks the claims an inbound peer connection owns, so dropping
// the connection (a crashed or partitioned entry node) releases them
// without waiting for the TTL backstop. IDs are wire hop IDs
// (linkIdx<<48 | hopKey).
type peerSess struct {
	mu     sync.Mutex
	claims map[uint64]struct{}
	// lastGossip is the last active count piggybacked on a batch reply to
	// this connection, per local link (indexed like Node.links, -1 = never
	// sent). Only the serving goroutine touches it, so no lock.
	lastGossip []int64
}

func newPeerSess(nlinks int) *peerSess {
	s := &peerSess{claims: make(map[uint64]struct{}), lastGossip: make([]int64, nlinks)}
	for i := range s.lastGossip {
		s.lastGossip[i] = -1
	}
	return s
}

func (p *peerSess) track(wireID uint64) {
	p.mu.Lock()
	p.claims[wireID] = struct{}{}
	p.mu.Unlock()
}

func (p *peerSess) untrack(wireID uint64) {
	p.mu.Lock()
	delete(p.claims, wireID)
	p.mu.Unlock()
}

// drain snapshots and clears the tracked set — the connection is gone, so
// nothing races new claims onto it.
func (p *peerSess) drain() []uint64 {
	p.mu.Lock()
	ids := make([]uint64, 0, len(p.claims))
	for id := range p.claims {
		ids = append(ids, id)
	}
	p.claims = make(map[uint64]struct{})
	p.mu.Unlock()
	return ids
}
