package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"beqos/internal/obs"
	"beqos/internal/resv"
)

// Node is one member of a beqos cluster: it owns the admission policies of
// its links, serves the resv wire protocol on two planes — a client plane
// (path reservations, FlowID = pairIdx<<48 | seq) and a peer plane (link
// hops from other nodes, FlowID = linkIdx<<48 | hopKey) — and gossips its
// links' occupancy so every other node can route against it.
//
// The hot paths are allocation-free at steady state: a local admission is
// a policy CAS plus free-listed claim bookkeeping, and a forwarded hop
// rides the mux transport's pooled call slots and vectored writes.
type Node struct {
	idx  int
	name string
	topo *Topology

	ttl        time.Duration
	staleNanos int64
	routerMode RouterMode
	hopDelay   time.Duration
	epoch      time.Time

	// links are the locally-owned links; byGlobal maps a global link index
	// to its local state (nil for links other nodes own). bounds holds
	// every link's admission bound — local and remote — since topology and
	// utility are cluster-wide knowledge; kmaxSum is their sum, the
	// cluster-wide Stats threshold.
	links    []*linkState
	byGlobal []*linkState
	bounds   []int
	kmaxSum  int

	// peers[j] is the outbound transport to node j (nil for self, and
	// until the cluster wires it — late-joining nodes appear when their
	// pointer lands).
	peers []atomic.Pointer[peer]
	view  *view
	// own[g] counts the claims THIS node's entry plane currently holds on
	// remote link g. It is a lower bound on g's true occupancy that no
	// gossip lag can stale, so the router folds it into the load estimate —
	// without it, a burst of placements from one entry node herds onto
	// whichever path the last gossip round said was empty.
	own []atomic.Int64

	// hopSeq mints hop keys: idx<<40 | seq identifies one path admission
	// on every link it claims, unique across concurrently-placing entry
	// nodes. gossipSeq versions this node's occupancy snapshots.
	hopSeq    atomic.Uint64
	gossipSeq atomic.Uint64

	cmu    sync.Mutex
	cconns map[*cconn]struct{}

	reg     *obs.Registry
	metrics *nodeMetrics

	ctx      context.Context
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	imu     sync.Mutex
	inbound map[net.Conn]struct{}

	// Logf, if non-nil, receives one line per notable event (rollbacks,
	// forward errors, expiries). Set before serving.
	Logf func(format string, args ...interface{})
}

// peer is the outbound state toward one other node: the mux transport hops
// ride, the coalescer that batches them into multi-reserve frames, and the
// piggyback dedup — the last active count gossiped per local link, so
// forwarding traffic re-advertises a link only when its occupancy actually
// moved.
type peer struct {
	mc       *resv.MuxClient
	co       *coalescer
	lastSent []atomic.Int64
}

// pathFlow is one granted path reservation at its entry node.
type pathFlow struct {
	id     uint64 // client-facing FlowID (pairIdx<<48 | seq)
	hopKey uint64 // the 48-bit key claimed on every link of the path
	path   int32  // topology path index
	// pending marks an admission still claiming its hops; only the
	// admitting goroutine may touch a pending flow.
	pending  bool
	share    float64
	deadline int64
	next     *pathFlow
}

// cconn is one client connection's (or Local handle's) path-flow table.
type cconn struct {
	mu     sync.Mutex
	closed bool
	flows  map[uint64]*pathFlow
	free   *pathFlow
}

func newCConn() *cconn {
	return &cconn{flows: make(map[uint64]*pathFlow)}
}

// get pops a recycled pathFlow (or makes one). Caller holds c.mu.
func (c *cconn) get() *pathFlow {
	pf := c.free
	if pf != nil {
		c.free = pf.next
		pf.next = nil
		return pf
	}
	return new(pathFlow)
}

// put recycles a pathFlow. Caller holds c.mu.
func (c *cconn) put(pf *pathFlow) {
	*pf = pathFlow{next: c.free}
	c.free = pf
}

// nodeMetrics is a node's instrument set (registered as cluster_*).
type nodeMetrics struct {
	PathRequests  *obs.Counter
	PathGrants    *obs.Counter
	PathDenies    *obs.Counter
	PathTeardowns *obs.Counter
	Rollbacks     *obs.Counter
	Forwards      *obs.Counter
	ForwardErrors *obs.Counter
	GossipIn      *obs.Counter
	GossipOut     *obs.Counter
	// GossipSuppressed counts anti-entropy snapshots skipped because the
	// peer already holds the link's current occupancy — delta suppression.
	GossipSuppressed *obs.Counter
	Expiries         *obs.Counter
	RouteFallback    *obs.Counter
	RouteAlt         *obs.Counter
	Errors           *obs.Counter
	HopNS            *obs.Histogram
	RequestNS        *obs.Histogram
}

func newNodeMetrics(reg *obs.Registry) *nodeMetrics {
	return &nodeMetrics{
		PathRequests:     reg.Counter("cluster_path_requests_total", "path reservation requests handled at this entry node"),
		PathGrants:       reg.Counter("cluster_path_grants_total", "path reservations granted end to end"),
		PathDenies:       reg.Counter("cluster_path_denies_total", "path reservations denied by some link"),
		PathTeardowns:    reg.Counter("cluster_path_teardowns_total", "path reservations torn down by their client"),
		Rollbacks:        reg.Counter("cluster_rollbacks_total", "denied paths whose upstream claims were rolled back"),
		Forwards:         reg.Counter("cluster_forwards_total", "link hops forwarded to peer nodes"),
		ForwardErrors:    reg.Counter("cluster_forward_errors_total", "forwarded hops failed by transport errors (unreachable peers)"),
		GossipIn:         reg.Counter("cluster_gossip_in_total", "occupancy snapshots received"),
		GossipOut:        reg.Counter("cluster_gossip_out_total", "occupancy snapshots sent (piggybacked + anti-entropy)"),
		GossipSuppressed: reg.Counter("cluster_gossip_suppressed_total", "anti-entropy snapshots suppressed (peer already current)"),
		Expiries:         reg.Counter("cluster_expiries_total", "claims and path flows expired by the TTL backstop"),
		RouteFallback:    reg.Counter("cluster_route_fallback_total", "two-choice placements degraded to consistent hash on stale load signals"),
		RouteAlt:         reg.Counter("cluster_route_alternate_total", "two-choice placements that picked the less-loaded alternate over the hash anchor"),
		Errors:           reg.Counter("cluster_errors_total", "protocol errors answered"),
		HopNS:            reg.Histogram("cluster_hop_ns", "per-hop forward round-trip latency, nanoseconds"),
		RequestNS:        reg.Histogram("cluster_request_ns", "per-request service latency, nanoseconds (batch-amortized)"),
	}
}

// newNode builds a node over the shared topology. bounds must hold every
// link's admission bound (the cluster computes them once from the utility
// function).
func newNode(idx int, topo *Topology, bounds []int, ttl time.Duration, router RouterMode, stale, hopDelay time.Duration) (*Node, error) {
	n := &Node{
		idx:        idx,
		name:       topo.Nodes[idx],
		topo:       topo,
		ttl:        ttl,
		staleNanos: int64(stale),
		routerMode: router,
		hopDelay:   hopDelay,
		epoch:      time.Now(),
		byGlobal:   make([]*linkState, len(topo.Links)),
		bounds:     bounds,
		peers:      make([]atomic.Pointer[peer], len(topo.Nodes)),
		view:       newView(len(topo.Links)),
		own:        make([]atomic.Int64, len(topo.Links)),
		cconns:     make(map[*cconn]struct{}),
		reg:        obs.New(),
		ctx:        context.Background(),
		stop:       make(chan struct{}),
		inbound:    make(map[net.Conn]struct{}),
	}
	for gi := range topo.Links {
		l := &topo.Links[gi]
		if l.Owner != idx {
			continue
		}
		ls, err := newLinkState(*l, bounds[gi])
		if err != nil {
			return nil, fmt.Errorf("cluster: node %s link %s: %w", n.name, l.ID, err)
		}
		n.links = append(n.links, ls)
		n.byGlobal[gi] = ls
		n.kmaxSum = 0 // recomputed below over all links
	}
	for _, b := range bounds {
		n.kmaxSum += b
	}
	n.metrics = newNodeMetrics(n.reg)
	n.reg.GaugeFunc("cluster_node_index", "this node's index in the topology", func() float64 { return float64(idx) })
	n.reg.GaugeFunc("cluster_active_total", "cluster-wide active path claims as this node sees them", func() float64 {
		return float64(n.activeSum())
	})
	for _, ls := range n.links {
		ls := ls
		id := metricName(ls.link.ID)
		n.reg.GaugeFunc("cluster_link_active_"+id, "live claims on link "+ls.link.ID, func() float64 {
			return float64(ls.pol.Active())
		})
		n.reg.GaugeFunc("cluster_link_bound_"+id, "admission bound kmax of link "+ls.link.ID, func() float64 {
			return float64(ls.bound)
		})
	}
	return n, nil
}

// metricName makes a link ID safe as a metric-name suffix.
func metricName(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, id)
}

// Name returns the node's topology name.
func (n *Node) Name() string { return n.name }

// Index returns the node's topology index.
func (n *Node) Index() int { return n.idx }

// Registry returns the node's metrics registry, for /metrics mounting.
func (n *Node) Registry() *obs.Registry { return n.reg }

// Metrics returns the node's instrument set.
func (n *Node) Metrics() *nodeMetrics { return n.metrics }

// LinkActive returns the live claim count of a locally-owned link, or -1
// when the link is owned elsewhere.
func (n *Node) LinkActive(global int) int64 {
	if global < 0 || global >= len(n.byGlobal) || n.byGlobal[global] == nil {
		return -1
	}
	return n.byGlobal[global].pol.Active()
}

// nowNanos is the node's monotonic clock.
func (n *Node) nowNanos() int64 { return int64(time.Since(n.epoch)) }

func (n *Node) logf(format string, args ...interface{}) {
	if n.Logf != nil {
		n.Logf(format, args...)
	}
}

// connectPeer installs the outbound transport to node j over an
// established connection (the other end must be served by j's
// HandlePeerConn). Safe to call while the node is serving — late joins
// become routable the moment the pointer lands.
func (n *Node) connectPeer(j int, nc net.Conn) {
	p := &peer{mc: resv.NewMuxClient(nc), lastSent: make([]atomic.Int64, len(n.links))}
	for i := range p.lastSent {
		p.lastSent[i].Store(-1)
	}
	// Occupancy snapshots piggybacked on the owner's batch replies arrive
	// outside any request/reply pairing; route them into the gossip view.
	p.mc.OnGossip(func(f resv.Frame) { n.applyGossip(f, n.nowNanos()) })
	p.co = newCoalescer(n, p.mc, n.hopDelay)
	n.wg.Add(1)
	go p.co.run(n.stop)
	n.peers[j].Store(p)
}

// start launches the node's background loops: the anti-entropy gossip
// tick and, with a TTL, the expiry sweep.
func (n *Node) start(antiEntropy time.Duration) {
	if antiEntropy > 0 {
		n.wg.Add(1)
		go n.antiEntropyLoop(antiEntropy)
	}
	if n.ttl > 0 {
		n.wg.Add(1)
		go n.expireLoop()
	}
}

// Close stops the node: background loops, outbound peer transports, and
// inbound connections. Claims its outbound flows held on other nodes are
// released by their connection drops; claims held on this node die with
// the process (or, for tests, with the claim tables).
func (n *Node) Close() {
	n.stopOnce.Do(func() {
		close(n.stop)
		for j := range n.peers {
			if p := n.peers[j].Load(); p != nil {
				_ = p.mc.Close()
			}
		}
		n.imu.Lock()
		for nc := range n.inbound {
			_ = nc.Close()
		}
		n.imu.Unlock()
	})
	n.wg.Wait()
}

func (n *Node) antiEntropyLoop(interval time.Duration) {
	defer n.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
			for j := range n.peers {
				if p := n.peers[j].Load(); p != nil {
					n.gossipAll(p)
				}
			}
		}
	}
}

// gossipAll advertises local links to one peer — the anti-entropy tick. A
// link whose occupancy the peer already holds is suppressed (and counted):
// a quiet cluster's anti-entropy traffic collapses to zero frames while a
// freshly-joined peer, whose lastSent slots are all -1, still gets the
// full snapshot.
func (n *Node) gossipAll(p *peer) {
	for li, ls := range n.links {
		a := ls.pol.Active()
		if p.lastSent[li].Load() == a {
			n.metrics.GossipSuppressed.Inc()
			continue
		}
		if n.postGossip(p, ls, a) {
			p.lastSent[li].Store(a)
		}
	}
}

// piggyback advertises local links whose occupancy moved since the last
// snapshot this peer got — called on the forward path, so gossip rides the
// vectored writes request traffic already pays for.
func (n *Node) piggyback(p *peer) {
	for li, ls := range n.links {
		a := ls.pol.Active()
		if p.lastSent[li].Load() == a {
			continue
		}
		if n.postGossip(p, ls, a) {
			p.lastSent[li].Store(a)
		}
	}
}

func (n *Node) postGossip(p *peer, ls *linkState, active int64) bool {
	v := n.gossipSeq.Add(1)
	queued, err := p.mc.Post(resv.Frame{
		Type:   resv.MsgGossip,
		FlowID: uint64(ls.link.Index)<<idxShift | v&keyMask,
		Value:  float64(active),
	})
	if err != nil || !queued {
		// Not on the wire (closed transport or full send queue): leave
		// lastSent stale so the snapshot is retried, not forgotten.
		return false
	}
	n.metrics.GossipOut.Inc()
	return true
}

// applyGossip installs a received occupancy snapshot.
func (n *Node) applyGossip(f resv.Frame, now int64) {
	g := int(f.FlowID >> idxShift)
	if g >= len(n.topo.Links) || n.byGlobal[g] != nil {
		return // unknown link, or our own (the policy is the truth)
	}
	a := f.Value
	if math.IsNaN(a) || a < 0 || a > float64(maxGossipActive) || a != math.Trunc(a) {
		return
	}
	if n.view.apply(g, f.FlowID&keyMask, int64(a), now) {
		n.metrics.GossipIn.Inc()
	}
}

// maxGossipActive bounds a gossiped count to what float64 carries exactly.
const maxGossipActive = int64(1) << 53

// activeSum is the cluster-wide active claim count as this node sees it:
// its own links' policies plus the gossip view of every remote link.
func (n *Node) activeSum() int64 {
	var sum int64
	for g := range n.topo.Links {
		if ls := n.byGlobal[g]; ls != nil {
			sum += ls.pol.Active()
		} else {
			a, _ := n.view.load(g)
			sum += a
		}
	}
	return sum
}

func (n *Node) expireLoop() {
	defer n.wg.Done()
	res := n.ttl / 4
	if res < time.Millisecond {
		res = time.Millisecond
	}
	tick := time.NewTicker(res)
	defer tick.Stop()
	var scratch []expiredFlow
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
			now := n.nowNanos()
			for _, ls := range n.links {
				if m := ls.expire(now); m > 0 {
					n.metrics.Expiries.Add(uint64(m))
					n.logf("cluster %s: expired %d claims on link %s", n.name, m, ls.link.ID)
				}
			}
			scratch = n.expireFlows(now, scratch[:0])
		}
	}
}

type expiredFlow struct {
	path   int32
	hopKey uint64
}

// expireFlows sweeps every client connection's path flows and rolls back
// the expired ones end to end (their link claims may have expired first at
// their owners; release is idempotent by claim-table removal).
func (n *Node) expireFlows(now int64, scratch []expiredFlow) []expiredFlow {
	n.cmu.Lock()
	conns := make([]*cconn, 0, len(n.cconns))
	for c := range n.cconns {
		conns = append(conns, c)
	}
	n.cmu.Unlock()
	for _, c := range conns {
		scratch = scratch[:0]
		c.mu.Lock()
		for id, pf := range c.flows {
			if !pf.pending && pf.deadline != 0 && pf.deadline <= now {
				scratch = append(scratch, expiredFlow{path: pf.path, hopKey: pf.hopKey})
				delete(c.flows, id)
				c.put(pf)
			}
		}
		c.mu.Unlock()
		for _, e := range scratch {
			n.releaseHops(int(e.path), e.hopKey, len(n.topo.Paths[e.path].Links), now)
			n.metrics.Expiries.Inc()
		}
	}
	return scratch
}

// ---- serving ----

const (
	readBufSize         = 4096
	writeFlushThreshold = 16 * 1024
)

// ServeClients accepts client-plane connections until ln closes. It always
// returns a non-nil error (net.ErrClosed after a clean shutdown).
func (n *Node) ServeClients(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		go n.HandleClientConn(nc)
	}
}

// HandleClientConn serves one client-plane connection: path reservations
// addressed by pair (FlowID = pairIdx<<48 | seq), stats, refreshes, and
// teardowns. Dropping the connection rolls back every path flow it holds.
func (n *Node) HandleClientConn(nc net.Conn) {
	c := newCConn()
	n.cmu.Lock()
	n.cconns[c] = struct{}{}
	n.cmu.Unlock()
	n.trackInbound(nc)
	n.serveConn(nc, func(f resv.Frame, now int64) resv.Frame {
		return n.dispatchClient(c, f, now)
	}, func(ops []resv.Frame, now int64, out []resv.Frame) []resv.Frame {
		return append(out, n.dispatchClientBatch(c, ops, now))
	})
	n.untrackInbound(nc)
	n.cmu.Lock()
	delete(n.cconns, c)
	n.cmu.Unlock()
	n.rollbackConn(c)
}

// HandlePeerConn serves one peer-plane connection: single-link hops
// addressed by global link index (FlowID = linkIdx<<48 | hopKey) and
// gossip. Dropping the connection releases every claim it owns — a
// crashed entry node frees its downstream hops without waiting for TTL.
func (n *Node) HandlePeerConn(nc net.Conn) {
	sess := newPeerSess(len(n.links))
	n.trackInbound(nc)
	n.serveConn(nc, func(f resv.Frame, now int64) resv.Frame {
		return n.dispatchPeer(sess, f, now)
	}, func(ops []resv.Frame, now int64, out []resv.Frame) []resv.Frame {
		out = append(out, n.dispatchPeerBatch(sess, ops, now))
		return n.appendReplyGossip(sess, out)
	})
	n.untrackInbound(nc)
	now := n.nowNanos()
	for _, wireID := range sess.drain() {
		if ls := n.byGlobal[wireID>>idxShift]; ls != nil {
			ls.release(now, wireID&keyMask)
		}
	}
}

func (n *Node) trackInbound(nc net.Conn) {
	n.imu.Lock()
	n.inbound[nc] = struct{}{}
	n.imu.Unlock()
}

func (n *Node) untrackInbound(nc net.Conn) {
	n.imu.Lock()
	delete(n.inbound, nc)
	n.imu.Unlock()
}

// serveConn is the shared batched frame loop (the resv serving idiom):
// decode every complete frame one read buffered, dispatch, coalesce the
// replies into one write, flush on idle. Gossip frames produce no reply
// (dispatch returns the zero Frame). batch, when non-nil, serves a
// collected MsgReserveBatch body — it appends its reply frames (the
// verdict bitmap, plus any piggybacked gossip) to out.
func (n *Node) serveConn(nc net.Conn, dispatch func(resv.Frame, int64) resv.Frame, batch func(ops []resv.Frame, now int64, out []resv.Frame) []resv.Frame) {
	defer func() { _ = nc.Close() }()
	br := bufio.NewReaderSize(nc, readBufSize)
	wbuf := make([]byte, 0, 1024)
	var frames, replies []resv.Frame
	var bc resv.BatchCollector
	for {
		if _, err := br.Peek(resv.FrameSize); err != nil {
			if n.Logf != nil && !(errors.Is(err, io.EOF) && br.Buffered() == 0) && !errors.Is(err, net.ErrClosed) {
				n.logf("cluster %s: connection %v closed: %v", n.name, nc.RemoteAddr(), err)
			}
			return
		}
		data, _ := br.Peek(br.Buffered())
		var rest []byte
		var derr error
		frames, rest, derr = resv.DecodeFrames(frames[:0], data)
		if _, err := br.Discard(len(data) - len(rest)); err != nil {
			return
		}
		t0 := time.Now()
		now := n.nowNanos()
		for _, f := range frames {
			var reply resv.Frame
			switch {
			case bc.Active():
				done, berr := bc.Add(f)
				if berr != nil {
					// The batch body broke off; fail it and serve the
					// offending frame on its own, like the resv server.
					n.metrics.Errors.Inc()
					wbuf = resv.AppendFrame(wbuf, resv.Frame{Type: resv.MsgError, FlowID: f.FlowID, Value: float64(resv.ErrCodeBadRequest)})
					reply = dispatch(f, now)
				} else if done {
					replies = batch(bc.Ops(), now, replies[:0])
					for _, r := range replies {
						wbuf = resv.AppendFrame(wbuf, r)
					}
					if len(wbuf) >= writeFlushThreshold && !n.flush(nc, &wbuf) {
						return
					}
					continue
				} else {
					continue
				}
			case f.Type == resv.MsgReserveBatch && batch != nil:
				if berr := bc.Begin(f); berr != nil {
					n.metrics.Errors.Inc()
					reply = resv.Frame{Type: resv.MsgError, FlowID: f.FlowID, Value: float64(resv.ErrCodeBadRequest)}
				} else {
					continue
				}
			default:
				reply = dispatch(f, now)
			}
			if reply.Type == 0 {
				continue
			}
			wbuf = resv.AppendFrame(wbuf, reply)
			if len(wbuf) >= writeFlushThreshold {
				if !n.flush(nc, &wbuf) {
					return
				}
			}
		}
		if len(frames) > 0 {
			n.metrics.RequestNS.RecordN(uint64(time.Since(t0))/uint64(len(frames)), uint64(len(frames)))
		}
		if !n.flush(nc, &wbuf) {
			return
		}
		if derr != nil {
			n.logf("cluster %s: connection %v closed: %v", n.name, nc.RemoteAddr(), derr)
			return
		}
	}
}

func (n *Node) flush(nc net.Conn, wbuf *[]byte) bool {
	if len(*wbuf) == 0 {
		return true
	}
	_, err := nc.Write(*wbuf)
	*wbuf = (*wbuf)[:0]
	return err == nil
}

// rollbackConn releases every installed path flow of a departing client
// connection. Pending flows (an admission mid-claim on another goroutine)
// are left to their admitting goroutine, which observes closed at
// finalization and rolls itself back.
func (n *Node) rollbackConn(c *cconn) {
	now := n.nowNanos()
	c.mu.Lock()
	c.closed = true
	flows := make([]expiredFlow, 0, len(c.flows))
	for id, pf := range c.flows {
		if pf.pending {
			continue
		}
		flows = append(flows, expiredFlow{path: pf.path, hopKey: pf.hopKey})
		delete(c.flows, id)
		c.put(pf)
	}
	c.mu.Unlock()
	for _, e := range flows {
		n.releaseHops(int(e.path), e.hopKey, len(n.topo.Paths[e.path].Links), now)
	}
	if len(flows) > 0 {
		n.logf("cluster %s: released %d path flows from departing client", n.name, len(flows))
	}
}

// ---- client-plane dispatch ----

func (n *Node) dispatchClient(c *cconn, f resv.Frame, now int64) resv.Frame {
	switch f.Type {
	case resv.MsgRequest:
		return n.reservePath(c, f, now)
	case resv.MsgTeardown:
		return n.teardownPath(c, f, now)
	case resv.MsgRefresh:
		return n.refreshPath(c, f, now)
	case resv.MsgStats:
		return n.statsReply(f)
	case resv.MsgGossip:
		n.applyGossip(f, now)
		return resv.Frame{}
	default:
		n.metrics.Errors.Inc()
		return resv.Frame{Type: resv.MsgError, FlowID: f.FlowID, Value: float64(resv.ErrCodeBadRequest)}
	}
}

// reservePath admits one flow along a pair's routed path: all links or
// none. Upstream claims are rolled back the moment any hop denies or an
// owner is unreachable, so a denied path leaves no residue anywhere.
func (n *Node) reservePath(c *cconn, f resv.Frame, now int64) resv.Frame {
	pairIdx := int(f.FlowID >> idxShift)
	if pairIdx >= len(n.topo.Pairs) || !(f.Value >= 0) || math.IsInf(f.Value, 0) {
		n.metrics.Errors.Inc()
		return resv.Frame{Type: resv.MsgError, FlowID: f.FlowID, Value: float64(resv.ErrCodeBadRequest)}
	}
	n.metrics.PathRequests.Inc()
	pr := &n.topo.Pairs[pairIdx]
	pathIdx, fallback, alternate := n.route(pr, f.FlowID, now)
	if fallback {
		n.metrics.RouteFallback.Inc()
	}
	if alternate {
		n.metrics.RouteAlt.Inc()
	}

	// Install a pending placeholder first: it reserves the client flow ID
	// on this connection, and marks the hops below as owned by this
	// admission until it finalizes.
	hopKey := uint64(n.idx)<<entryShift | n.hopSeq.Add(1)&seqMask
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		n.metrics.Errors.Inc()
		return resv.Frame{Type: resv.MsgError, FlowID: f.FlowID, Value: float64(resv.ErrCodeBadRequest)}
	}
	if _, dup := c.flows[f.FlowID]; dup {
		c.mu.Unlock()
		n.metrics.Errors.Inc()
		return resv.Frame{Type: resv.MsgError, FlowID: f.FlowID, Value: float64(resv.ErrCodeDuplicateFlow)}
	}
	pf := c.get()
	pf.id, pf.hopKey, pf.path, pf.pending = f.FlowID, hopKey, int32(pathIdx), true
	c.flows[f.FlowID] = pf
	c.mu.Unlock()

	var deadline int64
	if n.ttl > 0 {
		deadline = now + int64(n.ttl)
	}
	path := &n.topo.Paths[pathIdx]
	minShare := math.MaxFloat64
	var denyLoad float64
	claimed, failed := 0, false
	for _, g := range path.Links {
		if ls := n.byGlobal[g]; ls != nil {
			dec, st := ls.admit(now, hopKey, f.Value, f.Class, nil, deadline)
			if st != admitGranted {
				denyLoad, failed = dec.Load, true
				break
			}
			if dec.Share < minShare {
				minShare = dec.Share
			}
		} else {
			p := n.peers[n.topo.Links[g].Owner].Load()
			if p == nil {
				n.metrics.ForwardErrors.Inc()
				failed = true
				break
			}
			wireID := uint64(g)<<idxShift | hopKey
			t0 := n.nowNanos()
			op := p.co.enqueue(resv.Frame{Type: resv.MsgRequest, Class: f.Class, FlowID: wireID, Value: f.Value})
			if op == nil {
				n.metrics.ForwardErrors.Inc()
				failed = true
				break
			}
			op.wait()
			granted, err := op.granted, op.err
			p.co.put(op)
			n.metrics.HopNS.Record(uint64(n.nowNanos() - t0))
			n.metrics.Forwards.Inc()
			n.piggyback(p)
			if err != nil {
				n.metrics.ForwardErrors.Inc()
				n.logf("cluster %s: forward to link %s failed: %v", n.name, n.topo.Links[g].ID, err)
				failed = true
				break
			}
			if !granted {
				a, _ := n.view.load(g)
				denyLoad, failed = float64(a), true
				break
			}
			n.own[g].Add(1)
			if share := n.linkShare(g); share < minShare {
				minShare = share
			}
		}
		claimed++
	}
	if failed {
		n.releaseHops(pathIdx, hopKey, claimed, now)
		if claimed > 0 {
			n.metrics.Rollbacks.Inc()
		}
		c.mu.Lock()
		delete(c.flows, f.FlowID)
		c.put(pf)
		c.mu.Unlock()
		n.metrics.PathDenies.Inc()
		return resv.Frame{Type: resv.MsgDeny, FlowID: f.FlowID, Value: denyLoad}
	}
	c.mu.Lock()
	if c.closed {
		// The connection dropped while the hops were being claimed; nobody
		// else will roll this flow back.
		delete(c.flows, f.FlowID)
		c.put(pf)
		c.mu.Unlock()
		n.releaseHops(pathIdx, hopKey, len(path.Links), now)
		n.metrics.PathDenies.Inc()
		return resv.Frame{Type: resv.MsgDeny, FlowID: f.FlowID, Value: 0}
	}
	pf.share, pf.deadline, pf.pending = minShare, deadline, false
	c.mu.Unlock()
	n.metrics.PathGrants.Inc()
	return resv.Frame{Type: resv.MsgGrant, FlowID: f.FlowID, Value: minShare}
}

// linkShare is link g's worst-case per-flow share, computed from the
// cluster-wide topology and bounds — the same C/kmax the owner's counting
// policy reports in a single-op grant, available locally so batched grants
// need no per-op share on the wire.
func (n *Node) linkShare(g int) float64 {
	return n.topo.Links[g].Capacity / float64(n.bounds[g])
}

// releaseHops releases the first upTo links of a path claimed under
// hopKey: local links through their claim tables, remote links by
// best-effort teardown (an owner that already expired the claim answers
// unknown-flow, which is exactly the release-once outcome; an unreachable
// owner's TTL reaps it). Every remote link in the released prefix was
// granted, so its own-claim count comes down with it.
func (n *Node) releaseHops(pathIdx int, hopKey uint64, upTo int, now int64) {
	path := &n.topo.Paths[pathIdx]
	for i := upTo - 1; i >= 0; i-- {
		g := path.Links[i]
		if ls := n.byGlobal[g]; ls != nil {
			ls.release(now, hopKey)
			continue
		}
		n.own[g].Add(-1)
		if p := n.peers[n.topo.Links[g].Owner].Load(); p != nil {
			if op := p.co.enqueue(resv.Frame{Type: resv.MsgTeardown, FlowID: uint64(g)<<idxShift | hopKey}); op != nil {
				op.wait()
				p.co.put(op)
			}
		}
	}
}

func (n *Node) teardownPath(c *cconn, f resv.Frame, now int64) resv.Frame {
	c.mu.Lock()
	pf, ok := c.flows[f.FlowID]
	if !ok || pf.pending {
		c.mu.Unlock()
		n.metrics.Errors.Inc()
		return resv.Frame{Type: resv.MsgError, FlowID: f.FlowID, Value: float64(resv.ErrCodeUnknownFlow)}
	}
	pathIdx, hopKey := int(pf.path), pf.hopKey
	delete(c.flows, f.FlowID)
	c.put(pf)
	c.mu.Unlock()
	n.releaseHops(pathIdx, hopKey, len(n.topo.Paths[pathIdx].Links), now)
	n.metrics.PathTeardowns.Inc()
	return resv.Frame{Type: resv.MsgTeardownOK, FlowID: f.FlowID, Value: float64(n.activeSum())}
}

func (n *Node) refreshPath(c *cconn, f resv.Frame, now int64) resv.Frame {
	c.mu.Lock()
	pf, ok := c.flows[f.FlowID]
	if !ok || pf.pending {
		c.mu.Unlock()
		n.metrics.Errors.Inc()
		return resv.Frame{Type: resv.MsgError, FlowID: f.FlowID, Value: float64(resv.ErrCodeUnknownFlow)}
	}
	var deadline int64
	if n.ttl > 0 {
		deadline = now + int64(n.ttl)
	}
	pf.deadline = deadline
	pathIdx, hopKey := int(pf.path), pf.hopKey
	c.mu.Unlock()
	path := &n.topo.Paths[pathIdx]
	for _, g := range path.Links {
		if ls := n.byGlobal[g]; ls != nil {
			ls.refresh(hopKey, deadline)
		} else if p := n.peers[n.topo.Links[g].Owner].Load(); p != nil {
			_, _ = p.mc.Refresh(n.ctx, uint64(g)<<idxShift|hopKey)
		}
	}
	return resv.Frame{Type: resv.MsgRefreshOK, FlowID: f.FlowID, Value: n.ttl.Seconds()}
}

// ---- client-plane batch dispatch ----

// batchOpKind classifies one op of a client-plane batch.
type batchOpKind uint8

const (
	batchSkip    batchOpKind = iota // invalid op or completed teardown: bit already decided
	batchReserve                    // a path admission in flight
)

// batchFlow is one batch op's working state: the pending path flow, the
// claimed-or-enqueued prefix of its path, and the remote rendezvous per
// hop position (nil = local hop, claimed inline).
type batchFlow struct {
	kind     batchOpKind
	failed   bool
	pf       *pathFlow
	id       uint64
	hopKey   uint64
	pathIdx  int32
	nlinks   int // length of the path prefix claimed locally or enqueued remotely
	minShare float64
	ops      [MaxPathLinks]*hopOp
}

// batchScratch is the pooled working state of dispatchClientBatch, sized
// for resv.MaxBatch ops of MaxPathLinks hops each so the steady state
// allocates nothing.
type batchScratch struct {
	flows [resv.MaxBatch]batchFlow
	waves []*hopOp // remote teardowns (client ops + rollbacks) awaiting completion
	peers [(MaxNodes + 63) / 64]uint64
}

var batchScratchPool = sync.Pool{New: func() interface{} {
	return &batchScratch{waves: make([]*hopOp, 0, resv.MaxBatch*MaxPathLinks)}
}}

// dispatchClientBatch serves one client-plane MsgReserveBatch body: every
// request op routes, installs its pending flow, claims local hops inline
// and enqueues remote hops on their owners' coalescers — so N flows
// sharing a next hop cost one batched hop RPC instead of N round trips —
// then all rendezvous complete and each flow finalizes all-or-nothing.
// Teardown ops release in place (body order is preserved per peer, so a
// teardown's freed slot is claimable by a later op in the same batch). The
// reply's verdict bit i reports op i; Value is the minimum granted
// worst-case share across the batch's granted flows.
//
// Per-flow atomicity is exactly the single-op path's: a flow whose hops
// partially grant — some links full, an owner unreachable, or the client
// connection dropping mid-batch — rolls back every hop it claimed before
// the reply ships, leaving no residue anywhere.
func (n *Node) dispatchClientBatch(c *cconn, ops []resv.Frame, now int64) resv.Frame {
	sc := batchScratchPool.Get().(*batchScratch)
	sc.waves = sc.waves[:0]
	for i := range sc.peers {
		sc.peers[i] = 0
	}
	var verdict resv.BatchVerdict
	var deadline int64
	if n.ttl > 0 {
		deadline = now + int64(n.ttl)
	}
	t0 := n.nowNanos()
	nremote := 0

	// Phase 1: walk ops in order — teardowns release, requests install and
	// fan their hop claims out.
	for i := range ops {
		f := ops[i]
		bf := &sc.flows[i]
		*bf = batchFlow{}
		switch f.Type {
		case resv.MsgTeardown:
			c.mu.Lock()
			pf, ok := c.flows[f.FlowID]
			if !ok || pf.pending {
				c.mu.Unlock()
				n.metrics.Errors.Inc()
				continue
			}
			pathIdx, hopKey := int(pf.path), pf.hopKey
			delete(c.flows, f.FlowID)
			c.put(pf)
			c.mu.Unlock()
			verdict |= 1 << uint(i)
			n.metrics.PathTeardowns.Inc()
			for _, g := range n.topo.Paths[pathIdx].Links {
				if ls := n.byGlobal[g]; ls != nil {
					ls.release(now, hopKey)
					continue
				}
				n.own[g].Add(-1)
				owner := n.topo.Links[g].Owner
				if p := n.peers[owner].Load(); p != nil {
					if op := p.co.enqueue(resv.Frame{Type: resv.MsgTeardown, FlowID: uint64(g)<<idxShift | hopKey}); op != nil {
						sc.waves = append(sc.waves, op)
						sc.peers[owner>>6] |= 1 << uint(owner&63)
						nremote++
					}
				}
			}
		case resv.MsgRequest:
			pairIdx := int(f.FlowID >> idxShift)
			if pairIdx >= len(n.topo.Pairs) || !(f.Value >= 0) || math.IsInf(f.Value, 0) {
				n.metrics.Errors.Inc()
				continue
			}
			n.metrics.PathRequests.Inc()
			pr := &n.topo.Pairs[pairIdx]
			pathIdx, fallback, alternate := n.route(pr, f.FlowID, now)
			if fallback {
				n.metrics.RouteFallback.Inc()
			}
			if alternate {
				n.metrics.RouteAlt.Inc()
			}
			hopKey := uint64(n.idx)<<entryShift | n.hopSeq.Add(1)&seqMask
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				n.metrics.Errors.Inc()
				continue
			}
			if _, dup := c.flows[f.FlowID]; dup {
				c.mu.Unlock()
				n.metrics.Errors.Inc()
				continue
			}
			pf := c.get()
			pf.id, pf.hopKey, pf.path, pf.pending = f.FlowID, hopKey, int32(pathIdx), true
			c.flows[f.FlowID] = pf
			c.mu.Unlock()
			bf.kind, bf.pf, bf.id, bf.hopKey, bf.pathIdx = batchReserve, pf, f.FlowID, hopKey, int32(pathIdx)
			bf.minShare = math.MaxFloat64
			for pos, g := range n.topo.Paths[pathIdx].Links {
				if ls := n.byGlobal[g]; ls != nil {
					dec, st := ls.admit(now, hopKey, f.Value, f.Class, nil, deadline)
					if st != admitGranted {
						bf.failed = true
						break
					}
					bf.ops[pos] = nil
					bf.nlinks = pos + 1
					if dec.Share < bf.minShare {
						bf.minShare = dec.Share
					}
					continue
				}
				owner := n.topo.Links[g].Owner
				var op *hopOp
				if p := n.peers[owner].Load(); p != nil {
					op = p.co.enqueue(resv.Frame{Type: resv.MsgRequest, Class: f.Class, FlowID: uint64(g)<<idxShift | hopKey, Value: f.Value})
				}
				if op == nil {
					n.metrics.ForwardErrors.Inc()
					bf.failed = true
					break
				}
				sc.peers[owner>>6] |= 1 << uint(owner&63)
				nremote++
				n.metrics.Forwards.Inc()
				bf.ops[pos] = op
				bf.nlinks = pos + 1
				if share := n.linkShare(g); share < bf.minShare {
					bf.minShare = share
				}
			}
		default:
			n.metrics.Errors.Inc()
		}
	}

	// Phase 2: every rendezvous completes. The coalescers have been
	// batching the enqueued ops per owner the whole time.
	for _, op := range sc.waves {
		op.wait()
		op.co.put(op)
	}
	sc.waves = sc.waves[:0]
	for i := range ops {
		bf := &sc.flows[i]
		if bf.kind != batchReserve {
			continue
		}
		for pos := 0; pos < bf.nlinks; pos++ {
			op := bf.ops[pos]
			if op == nil {
				continue
			}
			op.wait()
			switch {
			case op.err != nil:
				n.metrics.ForwardErrors.Inc()
				bf.failed = true
			case !op.granted:
				bf.failed = true
			default:
				n.own[n.topo.Paths[bf.pathIdx].Links[pos]].Add(1)
			}
		}
	}
	if nremote > 0 {
		elapsed := n.nowNanos() - t0
		if elapsed < 0 {
			elapsed = 0
		}
		n.metrics.HopNS.RecordN(uint64(elapsed)/uint64(nremote), uint64(nremote))
	}

	// Phase 3: finalize each flow all-or-nothing.
	minShare := math.MaxFloat64
	granted := 0
	for i := range ops {
		bf := &sc.flows[i]
		if bf.kind != batchReserve {
			continue
		}
		ok := !bf.failed
		if ok {
			c.mu.Lock()
			if c.closed {
				// The connection dropped while the hops were being claimed;
				// nobody else will roll this flow back.
				ok = false
			} else {
				bf.pf.share, bf.pf.deadline, bf.pf.pending = bf.minShare, deadline, false
			}
			c.mu.Unlock()
		}
		if ok {
			verdict |= 1 << uint(i)
			granted++
			n.metrics.PathGrants.Inc()
			if bf.minShare < minShare {
				minShare = bf.minShare
			}
			for pos := 0; pos < bf.nlinks; pos++ {
				if op := bf.ops[pos]; op != nil {
					op.co.put(op)
				}
			}
			continue
		}
		path := &n.topo.Paths[bf.pathIdx]
		rolled := false
		for pos := bf.nlinks - 1; pos >= 0; pos-- {
			g := path.Links[pos]
			op := bf.ops[pos]
			if op == nil {
				n.byGlobal[g].release(now, bf.hopKey)
				rolled = true
				continue
			}
			if op.err == nil && op.granted {
				n.own[g].Add(-1)
				if p := n.peers[n.topo.Links[g].Owner].Load(); p != nil {
					if top := p.co.enqueue(resv.Frame{Type: resv.MsgTeardown, FlowID: uint64(g)<<idxShift | bf.hopKey}); top != nil {
						sc.waves = append(sc.waves, top)
					}
				}
				rolled = true
			}
			op.co.put(op)
		}
		if rolled {
			n.metrics.Rollbacks.Inc()
		}
		c.mu.Lock()
		delete(c.flows, bf.id)
		c.put(bf.pf)
		c.mu.Unlock()
		n.metrics.PathDenies.Inc()
	}
	// Rollback teardowns complete before the reply ships, so a client that
	// immediately retries sees the freed slots.
	for _, op := range sc.waves {
		op.wait()
		op.co.put(op)
	}

	// One piggyback pass per touched peer: gossip about this node's own
	// links rides the coalesced writes the batch already paid for.
	for j := range n.peers {
		if sc.peers[j>>6]&(1<<uint(j&63)) == 0 {
			continue
		}
		if p := n.peers[j].Load(); p != nil {
			n.piggyback(p)
		}
	}
	batchScratchPool.Put(sc)
	if granted == 0 {
		minShare = 0
	}
	return resv.Frame{Type: resv.MsgReserveBatchReply, FlowID: uint64(verdict), Value: minShare}
}

func (n *Node) statsReply(f resv.Frame) resv.Frame {
	reply, err := resv.StatsReplyFrame(n.kmaxSum, n.activeSum())
	if err != nil {
		n.metrics.Errors.Inc()
		return resv.Frame{Type: resv.MsgError, FlowID: f.FlowID, Value: float64(resv.ErrCodeBadRequest)}
	}
	return reply
}

// ---- peer-plane dispatch ----

func (n *Node) dispatchPeer(sess *peerSess, f resv.Frame, now int64) resv.Frame {
	switch f.Type {
	case resv.MsgRequest:
		ls := n.localLink(f.FlowID)
		if ls == nil || !(f.Value >= 0) || math.IsInf(f.Value, 0) {
			n.metrics.Errors.Inc()
			return resv.Frame{Type: resv.MsgError, FlowID: f.FlowID, Value: float64(resv.ErrCodeBadRequest)}
		}
		var deadline int64
		if n.ttl > 0 {
			deadline = now + int64(n.ttl)
		}
		dec, st := ls.admit(now, f.FlowID&keyMask, f.Value, f.Class, sess, deadline)
		switch st {
		case admitGranted:
			return resv.Frame{Type: resv.MsgGrant, FlowID: f.FlowID, Value: dec.Share}
		case admitDuplicate:
			n.metrics.Errors.Inc()
			return resv.Frame{Type: resv.MsgError, FlowID: f.FlowID, Value: float64(resv.ErrCodeDuplicateFlow)}
		default:
			return resv.Frame{Type: resv.MsgDeny, FlowID: f.FlowID, Value: dec.Load}
		}
	case resv.MsgTeardown:
		ls := n.localLink(f.FlowID)
		if ls == nil {
			n.metrics.Errors.Inc()
			return resv.Frame{Type: resv.MsgError, FlowID: f.FlowID, Value: float64(resv.ErrCodeBadRequest)}
		}
		if !ls.release(now, f.FlowID&keyMask) {
			return resv.Frame{Type: resv.MsgError, FlowID: f.FlowID, Value: float64(resv.ErrCodeUnknownFlow)}
		}
		return resv.Frame{Type: resv.MsgTeardownOK, FlowID: f.FlowID, Value: float64(ls.pol.Active())}
	case resv.MsgRefresh:
		ls := n.localLink(f.FlowID)
		if ls == nil {
			n.metrics.Errors.Inc()
			return resv.Frame{Type: resv.MsgError, FlowID: f.FlowID, Value: float64(resv.ErrCodeBadRequest)}
		}
		var deadline int64
		if n.ttl > 0 {
			deadline = now + int64(n.ttl)
		}
		if !ls.refresh(f.FlowID&keyMask, deadline) {
			return resv.Frame{Type: resv.MsgError, FlowID: f.FlowID, Value: float64(resv.ErrCodeUnknownFlow)}
		}
		return resv.Frame{Type: resv.MsgRefreshOK, FlowID: f.FlowID, Value: n.ttl.Seconds()}
	case resv.MsgStats:
		return n.statsReply(f)
	case resv.MsgGossip:
		n.applyGossip(f, now)
		return resv.Frame{}
	default:
		n.metrics.Errors.Inc()
		return resv.Frame{Type: resv.MsgError, FlowID: f.FlowID, Value: float64(resv.ErrCodeBadRequest)}
	}
}

// dispatchPeerBatch serves one batched peer-plane body in order: runs of
// consecutive claims on the same link with identical rate and class go
// through one vectored link admission (one policy CAS for the whole run),
// teardowns release singly, and the reply is one verdict bitmap. Value
// carries the minimum granted share across the batch's runs — entry nodes
// compute per-link shares from cluster-wide knowledge and ignore it.
func (n *Node) dispatchPeerBatch(sess *peerSess, ops []resv.Frame, now int64) resv.Frame {
	var verdict resv.BatchVerdict
	share := math.MaxFloat64
	var deadline int64
	if n.ttl > 0 {
		deadline = now + int64(n.ttl)
	}
	for i := 0; i < len(ops); {
		f := ops[i]
		if f.Type == resv.MsgTeardown {
			if ls := n.localLink(f.FlowID); ls != nil && ls.release(now, f.FlowID&keyMask) {
				verdict |= 1 << uint(i)
			} else {
				n.metrics.Errors.Inc()
			}
			i++
			continue
		}
		j := i + 1
		for j < len(ops) && ops[j].Type == resv.MsgRequest &&
			ops[j].FlowID>>idxShift == f.FlowID>>idxShift &&
			ops[j].Value == f.Value && ops[j].Class == f.Class {
			j++
		}
		ls := n.localLink(f.FlowID)
		if ls == nil || !(f.Value >= 0) || math.IsInf(f.Value, 0) {
			n.metrics.Errors.Add(uint64(j - i))
			i = j
			continue
		}
		installed, dec := ls.admitN(now, ops[i:j], sess, deadline, i, &verdict)
		if installed > 0 && dec.Share < share {
			share = dec.Share
		}
		i = j
	}
	if share == math.MaxFloat64 {
		share = 0
	}
	return resv.Frame{Type: resv.MsgReserveBatchReply, FlowID: uint64(verdict), Value: share}
}

// appendReplyGossip piggybacks occupancy snapshots of local links whose
// active count moved since this connection last saw one — batch replies
// carry the freshest load signal straight back to the entry node whose
// burst just changed it, so the two-choice router sharpens under batched
// load instead of staling until the next anti-entropy tick.
func (n *Node) appendReplyGossip(sess *peerSess, out []resv.Frame) []resv.Frame {
	for li, ls := range n.links {
		a := ls.pol.Active()
		if sess.lastGossip[li] == a {
			continue
		}
		sess.lastGossip[li] = a
		v := n.gossipSeq.Add(1)
		out = append(out, resv.Frame{
			Type:   resv.MsgGossip,
			FlowID: uint64(ls.link.Index)<<idxShift | v&keyMask,
			Value:  float64(a),
		})
		n.metrics.GossipOut.Inc()
	}
	return out
}

// localLink resolves a peer-plane FlowID's link index to local state, nil
// when out of range or owned elsewhere.
func (n *Node) localLink(flowID uint64) *linkState {
	g := int(flowID >> idxShift)
	if g >= len(n.byGlobal) {
		return nil
	}
	return n.byGlobal[g]
}

// ---- in-process client handle ----

// Local is an in-process client-plane handle: the same dispatch the wire
// serves, minus the wire. It is the zero-copy path for co-located load
// generators and the benchmark's view of the local-admit hot path. A
// Local's flows are scoped to it like a connection's: Close rolls them
// back. Safe for concurrent use.
type Local struct {
	n *Node
	c *cconn
}

// NewLocal opens an in-process client handle on the node.
func (n *Node) NewLocal() *Local {
	c := newCConn()
	n.cmu.Lock()
	n.cconns[c] = struct{}{}
	n.cmu.Unlock()
	return &Local{n: n, c: c}
}

// Reserve requests a path reservation for (pair, seq). It reports whether
// the path was granted and the granted worst-case share.
func (l *Local) Reserve(pair int, seq uint64, bandwidth float64) (granted bool, share float64, err error) {
	f := resv.Frame{Type: resv.MsgRequest, FlowID: FlowID(pair, seq), Value: bandwidth}
	r := l.n.dispatchClient(l.c, f, l.n.nowNanos())
	switch r.Type {
	case resv.MsgGrant:
		return true, r.Value, nil
	case resv.MsgDeny:
		return false, 0, nil
	default:
		return false, 0, fmt.Errorf("cluster: reserve pair %d seq %d: error code %d", pair, seq, uint64(r.Value))
	}
}

// Teardown releases (pair, seq)'s path reservation.
func (l *Local) Teardown(pair int, seq uint64) error {
	f := resv.Frame{Type: resv.MsgTeardown, FlowID: FlowID(pair, seq)}
	r := l.n.dispatchClient(l.c, f, l.n.nowNanos())
	if r.Type != resv.MsgTeardownOK {
		return fmt.Errorf("cluster: teardown pair %d seq %d: error code %d", pair, seq, uint64(r.Value))
	}
	return nil
}

// ReserveBatch requests up to resv.MaxBatch path reservations on one pair
// in a single batched dispatch: hop claims sharing a next hop coalesce
// into one peer RPC. Bit i of the verdict reports (pair, seqs[i]); share
// is the minimum granted worst-case share across the granted flows.
func (l *Local) ReserveBatch(pair int, seqs []uint64, bandwidth float64) (resv.BatchVerdict, float64, error) {
	if len(seqs) < 1 || len(seqs) > resv.MaxBatch {
		return 0, 0, fmt.Errorf("cluster: batch of %d flows (want 1..%d)", len(seqs), resv.MaxBatch)
	}
	var ops [resv.MaxBatch]resv.Frame
	for i, s := range seqs {
		ops[i] = resv.Frame{Type: resv.MsgRequest, FlowID: FlowID(pair, s), Value: bandwidth}
	}
	r := l.n.dispatchClientBatch(l.c, ops[:len(seqs)], l.n.nowNanos())
	if r.Type != resv.MsgReserveBatchReply {
		return 0, 0, fmt.Errorf("cluster: batch reserve pair %d: error code %d", pair, uint64(r.Value))
	}
	return resv.BatchVerdict(r.FlowID), r.Value, nil
}

// TeardownBatch releases up to resv.MaxBatch path reservations on one pair
// in a single batched dispatch. Bit i of the verdict reports whether
// (pair, seqs[i]) existed and was released.
func (l *Local) TeardownBatch(pair int, seqs []uint64) (resv.BatchVerdict, error) {
	if len(seqs) < 1 || len(seqs) > resv.MaxBatch {
		return 0, fmt.Errorf("cluster: batch of %d flows (want 1..%d)", len(seqs), resv.MaxBatch)
	}
	var ops [resv.MaxBatch]resv.Frame
	for i, s := range seqs {
		ops[i] = resv.Frame{Type: resv.MsgTeardown, FlowID: FlowID(pair, s)}
	}
	r := l.n.dispatchClientBatch(l.c, ops[:len(seqs)], l.n.nowNanos())
	if r.Type != resv.MsgReserveBatchReply {
		return 0, fmt.Errorf("cluster: batch teardown pair %d: error code %d", pair, uint64(r.Value))
	}
	return resv.BatchVerdict(r.FlowID), nil
}

// Refresh renews (pair, seq)'s soft state end to end.
func (l *Local) Refresh(pair int, seq uint64) error {
	f := resv.Frame{Type: resv.MsgRefresh, FlowID: FlowID(pair, seq)}
	r := l.n.dispatchClient(l.c, f, l.n.nowNanos())
	if r.Type != resv.MsgRefreshOK {
		return fmt.Errorf("cluster: refresh pair %d seq %d: error code %d", pair, seq, uint64(r.Value))
	}
	return nil
}

// Stats returns the cluster-wide admission threshold (Σ link bounds) and
// the active claim total as this node sees it.
func (l *Local) Stats() (kmax, active int64, err error) {
	r := l.n.dispatchClient(l.c, resv.Frame{Type: resv.MsgStats}, l.n.nowNanos())
	return resv.ParseStatsReply(r)
}

// Close rolls back every flow reserved through the handle.
func (l *Local) Close() {
	l.n.cmu.Lock()
	delete(l.n.cconns, l.c)
	l.n.cmu.Unlock()
	l.n.rollbackConn(l.c)
}
