package cluster

import "math"

// RouterMode selects how a node places a reserve request among a pair's
// candidate paths.
type RouterMode uint8

const (
	// RouteTwoChoice samples two candidate paths by hashing the flow ID
	// and places on the less loaded — balanced-allocation routing, which
	// drives path blocking exponentially below single-sample placement at
	// equal offered load. When any sampled path's load signal is stale,
	// the router degrades to the RouteHash placement for that request, per
	// the balanced-allocation analysis: acting on stale load is worse than
	// not acting on it (herding onto yesterday's shortest queue).
	RouteTwoChoice RouterMode = iota
	// RouteHash places by consistent hash of the flow ID alone — the
	// static baseline, and the stale-signal fallback.
	RouteHash
)

// String implements fmt.Stringer.
func (m RouterMode) String() string {
	if m == RouteHash {
		return "hash"
	}
	return "two-choice"
}

// splitmix64 is the final mixing function of SplitMix64 — the same mixer
// the repo's RNG substreams use — turning sequential flow IDs into
// uniformly spread placement samples.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// route picks the path for one reserve request. fallback reports that a
// two-choice placement degraded to the hash anchor because a sampled
// path's load signal was stale; alternate reports that two-choice picked
// the secondary sample over the hash anchor.
func (n *Node) route(pr *Pair, flowID uint64, now int64) (pathIdx int, fallback, alternate bool) {
	k := len(pr.Paths)
	if k == 1 {
		return pr.Paths[0], false, false
	}
	h := splitmix64(flowID)
	primary := int(h % uint64(k))
	if n.routerMode == RouteHash {
		return pr.Paths[primary], false, false
	}
	second := int((h >> 32) % uint64(k-1))
	if second >= primary {
		second++
	}
	lp, okP := n.pathLoad(pr.Paths[primary], now)
	ls, okS := n.pathLoad(pr.Paths[second], now)
	if !okP || !okS {
		return pr.Paths[primary], true, false
	}
	if ls < lp {
		return pr.Paths[second], false, true
	}
	return pr.Paths[primary], false, false
}

// pathLoad is a path's bottleneck utilization: the maximum over its links
// of active/bound. Locally-owned links read their policy directly (always
// fresh); remote links read the gossip view sharpened by this node's own
// outstanding claims on the link — a lower bound no gossip lag can stale,
// so a burst of placements from one entry node sees its own effect
// immediately instead of herding onto the last advertised empty path. A
// snapshot older than the staleness bound (or never received) still makes
// the whole path's signal untrustworthy: the own-claim count says nothing
// about other entry nodes.
func (n *Node) pathLoad(pathIdx int, now int64) (load float64, fresh bool) {
	p := &n.topo.Paths[pathIdx]
	for _, g := range p.Links {
		var active int64
		if ls := n.byGlobal[g]; ls != nil {
			active = ls.pol.Active()
		} else {
			var updated int64
			active, updated = n.view.load(g)
			if updated == 0 || (n.staleNanos > 0 && now-updated > n.staleNanos) {
				return 0, false
			}
			if own := n.own[g].Load(); own > active {
				active = own
			}
		}
		if u := float64(active) / float64(n.bounds[g]); u > load {
			load = u
		}
	}
	return load, true
}

// pathShareFloor is the worst-case share a grant on this path guarantees:
// the minimum over links of capacity/bound — each link's counting-policy
// grant value — so the path promise is as strong as its tightest link.
func (n *Node) pathShareFloor(p *Path) float64 {
	share := math.MaxFloat64
	for _, g := range p.Links {
		if s := n.topo.Links[g].Capacity / float64(n.bounds[g]); s < share {
			share = s
		}
	}
	return share
}
