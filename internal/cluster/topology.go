// Package cluster generalizes the single-link admission plane to a
// cluster of beqos nodes owning the links of a multi-link topology, with
// flows admitted along paths (DESIGN.md §13).
//
// The design composes two results from the literature (PAPERS.md):
//
//   - Jaramillo & Ying, "Distributed Admission Control without Knowledge
//     of the Capacity Region": each link runs its own capacity-oblivious
//     admission rule (here, any internal/policy.Policy) and a path is
//     admitted iff every link on it admits — all-or-nothing, with the
//     entry node rolling back upstream claims when a downstream hop
//     denies, so the per-link no-over-admit and release-exactly-once
//     invariants hold end to end;
//   - Anagnostopoulos et al., "Steady State Analysis of Balanced-
//     Allocation Routing": reserve requests are placed with
//     power-of-two-choices between candidate paths, falling back to
//     consistent hashing when the load signals are stale.
//
// Inter-node hops reuse the resv wire protocol over flow-multiplexed
// stream connections, and per-link occupancy spreads by gossip —
// versioned monotone snapshots piggybacked on existing traffic plus a
// periodic anti-entropy tick — so any node can answer Stats and feed the
// router without a synchronous fan-out.
package cluster

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Wire packing limits. A client-facing FlowID packs the pair index in its
// top 16 bits; an inter-node hop FlowID packs the global link index there
// instead, and the low 48 bits carry a hop key whose top 8 bits name the
// entry node (so concurrent entry nodes can never mint colliding keys on
// a shared link).
const (
	idxShift = 48
	keyMask  = uint64(1)<<idxShift - 1

	entryShift = 40
	seqMask    = uint64(1)<<entryShift - 1

	// MaxNodes/MaxLinks/MaxPairs bound a topology to what the packing
	// addresses: 8 bits of entry node, 16 bits of link or pair index.
	MaxNodes = 1 << 8
	MaxLinks = 1 << 16
	MaxPairs = 1 << 16

	// MaxPathLinks bounds a path's hop count: rollback state lives in a
	// fixed array on the admission path, so it must have a compile-time
	// size. 16 hops is far beyond any plausible diameter.
	MaxPathLinks = 16
)

// FlowID packs a client-facing flow identifier: the pair the flow belongs
// to and a caller-chosen 48-bit sequence number. Pair 0 with seq ≤ 2^48-1
// is the identity, so pair-unaware clients (a stock resv.MuxClient, the
// loadgen harness) address the first pair with their ordinary flow IDs.
func FlowID(pair int, seq uint64) uint64 {
	return uint64(pair)<<idxShift | seq&keyMask
}

// Link is one capacity-bearing resource, owned by exactly one node — the
// node that runs its admission policy and gossips its occupancy.
type Link struct {
	// ID names the link in specs, errors, and metrics.
	ID string
	// Owner is the owning node's index in Topology.Nodes.
	Owner int
	// Capacity is the link capacity C handed to the admission policy.
	Capacity float64
	// Index is the link's global index (its position in Topology.Links),
	// the value carried in hop frames and gossip.
	Index int
}

// Path is an ordered sequence of links a flow reserves across.
type Path struct {
	// ID names the path.
	ID string
	// Links are global link indices, in claim order.
	Links []int
}

// Pair is one endpoint pair with its candidate paths — the unit the
// router load-balances between.
type Pair struct {
	// ID names the pair.
	ID string
	// Src and Dst are node indices; they document the pair's endpoints
	// (the spec validator checks they exist, routing itself only uses the
	// candidate set).
	Src, Dst int
	// Paths are indices into Topology.Paths, in declaration order. The
	// first is the consistent-hash anchor when only one choice is viable.
	Paths []int
	// Index is the pair's position in Topology.Pairs — the value client
	// frames carry in their FlowID's top 16 bits.
	Index int
}

// Topology is a validated cluster description: nodes, the links they own,
// candidate paths, and endpoint pairs.
type Topology struct {
	// Nodes are the node names; a node's index is its identity everywhere
	// else (link ownership, hop keys, pair endpoints).
	Nodes []string
	Links []Link
	Paths []Path
	Pairs []Pair

	nodeIdx map[string]int
	linkIdx map[string]int
	pathIdx map[string]int
}

// NodeIndex returns the index of the named node, or -1.
func (t *Topology) NodeIndex(name string) int {
	if i, ok := t.nodeIdx[name]; ok {
		return i
	}
	return -1
}

// LinkIndex returns the global index of the named link, or -1.
func (t *Topology) LinkIndex(id string) int {
	if i, ok := t.linkIdx[id]; ok {
		return i
	}
	return -1
}

// ParseTopology parses and validates a topology spec. The format is line
// based; '#' starts a comment and blank lines are skipped:
//
//	node <name>
//	link <id> <owner-node> <capacity>
//	path <id> <link>[,<link>...]
//	pair <id> <src-node> <dst-node> <path>[,<path>...]
//
// Declaration order defines every index: the i-th link directive is
// global link i, the i-th pair directive is wire pair i. Forward
// references are errors — a link's owner, a path's links, and a pair's
// paths must already be declared — which keeps every error message
// anchored to the line that caused it.
func ParseTopology(spec string) (*Topology, error) {
	t := &Topology{
		nodeIdx: make(map[string]int),
		linkIdx: make(map[string]int),
		pathIdx: make(map[string]int),
	}
	pairIdx := make(map[string]int)
	lines := strings.Split(spec, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		lineNo := ln + 1
		switch fields[0] {
		case "node":
			if len(fields) != 2 {
				return nil, specErr(lineNo, "node directive wants 'node <name>', got %d fields", len(fields))
			}
			name := fields[1]
			if _, dup := t.nodeIdx[name]; dup {
				return nil, specErr(lineNo, "duplicate node %q", name)
			}
			if len(t.Nodes) >= MaxNodes {
				return nil, specErr(lineNo, "too many nodes (max %d)", MaxNodes)
			}
			t.nodeIdx[name] = len(t.Nodes)
			t.Nodes = append(t.Nodes, name)
		case "link":
			if len(fields) != 4 {
				return nil, specErr(lineNo, "link directive wants 'link <id> <owner-node> <capacity>', got %d fields", len(fields))
			}
			id := fields[1]
			if _, dup := t.linkIdx[id]; dup {
				return nil, specErr(lineNo, "duplicate link %q", id)
			}
			owner, ok := t.nodeIdx[fields[2]]
			if !ok {
				return nil, specErr(lineNo, "link %q references unknown node %q", id, fields[2])
			}
			cap, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, specErr(lineNo, "link %q: bad capacity %q: %v", id, fields[3], err)
			}
			if !(cap > 0) || math.IsInf(cap, 0) {
				return nil, specErr(lineNo, "link %q: capacity must be positive and finite, got %g", id, cap)
			}
			if len(t.Links) >= MaxLinks {
				return nil, specErr(lineNo, "too many links (max %d)", MaxLinks)
			}
			t.linkIdx[id] = len(t.Links)
			t.Links = append(t.Links, Link{ID: id, Owner: owner, Capacity: cap, Index: len(t.Links)})
		case "path":
			if len(fields) != 3 {
				return nil, specErr(lineNo, "path directive wants 'path <id> <link>[,<link>...]', got %d fields", len(fields))
			}
			id := fields[1]
			if _, dup := t.pathIdx[id]; dup {
				return nil, specErr(lineNo, "duplicate path %q", id)
			}
			var links []int
			seen := make(map[int]bool)
			for _, lid := range strings.Split(fields[2], ",") {
				if lid == "" {
					return nil, specErr(lineNo, "path %q has an empty link reference", id)
				}
				gi, ok := t.linkIdx[lid]
				if !ok {
					return nil, specErr(lineNo, "path %q traverses unknown link %q", id, lid)
				}
				if seen[gi] {
					return nil, specErr(lineNo, "path %q traverses link %q twice", id, lid)
				}
				seen[gi] = true
				links = append(links, gi)
			}
			if len(links) > MaxPathLinks {
				return nil, specErr(lineNo, "path %q has %d links (max %d)", id, len(links), MaxPathLinks)
			}
			t.pathIdx[id] = len(t.Paths)
			t.Paths = append(t.Paths, Path{ID: id, Links: links})
		case "pair":
			if len(fields) != 5 {
				return nil, specErr(lineNo, "pair directive wants 'pair <id> <src> <dst> <path>[,<path>...]', got %d fields", len(fields))
			}
			id := fields[1]
			if _, dup := pairIdx[id]; dup {
				return nil, specErr(lineNo, "duplicate pair %q", id)
			}
			src, ok := t.nodeIdx[fields[2]]
			if !ok {
				return nil, specErr(lineNo, "pair %q: unknown src node %q", id, fields[2])
			}
			dst, ok := t.nodeIdx[fields[3]]
			if !ok {
				return nil, specErr(lineNo, "pair %q: unknown dst node %q", id, fields[3])
			}
			var paths []int
			seen := make(map[int]bool)
			for _, pid := range strings.Split(fields[4], ",") {
				if pid == "" {
					return nil, specErr(lineNo, "pair %q has an empty path reference", id)
				}
				pi, ok := t.pathIdx[pid]
				if !ok {
					return nil, specErr(lineNo, "pair %q references unknown path %q", id, pid)
				}
				if seen[pi] {
					return nil, specErr(lineNo, "pair %q references path %q twice", id, pid)
				}
				seen[pi] = true
				paths = append(paths, pi)
			}
			if len(t.Pairs) >= MaxPairs {
				return nil, specErr(lineNo, "too many pairs (max %d)", MaxPairs)
			}
			pairIdx[id] = len(t.Pairs)
			t.Pairs = append(t.Pairs, Pair{ID: id, Src: src, Dst: dst, Paths: paths, Index: len(t.Pairs)})
		default:
			return nil, specErr(lineNo, "unknown directive %q (want node, link, path, or pair)", fields[0])
		}
	}
	if len(t.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: topology declares no nodes")
	}
	if len(t.Pairs) == 0 {
		return nil, fmt.Errorf("cluster: topology declares no pairs")
	}
	return t, nil
}

func specErr(line int, format string, args ...interface{}) error {
	return fmt.Errorf("cluster: topology line %d: %s", line, fmt.Sprintf(format, args...))
}

// Ring renders the spec of an n-node ring: node i owns link l<i> of the
// given capacity, and pair p<i> (src n<i>, dst n<i+1 mod n>) routes over
// l<i> — plus, when alt is true, an alternate path over the successor's
// link l<i+1 mod n>, giving the two-choice router a real choice. It is
// both the default topology of `beqos cluster -nodes N` and the scaling
// benchmark's fixture; round-tripping it through ParseTopology keeps the
// generator honest.
func Ring(n int, capacity float64, alt bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %d-node ring, capacity %g per link\n", n, capacity)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "node n%d\n", i)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "link l%d n%d %g\n", i, i, capacity)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "path via-l%d l%d\n", i, i)
	}
	for i := 0; i < n; i++ {
		paths := fmt.Sprintf("via-l%d", i)
		if alt && n > 1 {
			paths += fmt.Sprintf(",via-l%d", (i+1)%n)
		}
		fmt.Fprintf(&b, "pair p%d n%d n%d %s\n", i, i, (i+1)%n, paths)
	}
	return b.String()
}
