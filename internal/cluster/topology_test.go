package cluster

import (
	"strings"
	"testing"
)

func TestParseTopologyRoundTrip(t *testing.T) {
	topo, err := ParseTopology(Ring(4, 32, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 4 || len(topo.Links) != 4 || len(topo.Paths) != 4 || len(topo.Pairs) != 4 {
		t.Fatalf("ring(4) parsed to %d nodes, %d links, %d paths, %d pairs",
			len(topo.Nodes), len(topo.Links), len(topo.Paths), len(topo.Pairs))
	}
	for i, l := range topo.Links {
		if l.Owner != i || l.Capacity != 32 || l.Index != i {
			t.Errorf("link %d = %+v, want owner/index %d capacity 32", i, l, i)
		}
	}
	for i, p := range topo.Pairs {
		if len(p.Paths) != 2 {
			t.Fatalf("pair %d has %d candidate paths, want 2", i, len(p.Paths))
		}
		if got := topo.Paths[p.Paths[0]].Links[0]; got != i {
			t.Errorf("pair %d primary path over link %d, want %d", i, got, i)
		}
		if got := topo.Paths[p.Paths[1]].Links[0]; got != (i+1)%4 {
			t.Errorf("pair %d alternate path over link %d, want %d", i, got, (i+1)%4)
		}
	}
	if topo.NodeIndex("n2") != 2 || topo.NodeIndex("zz") != -1 {
		t.Error("NodeIndex lookup broken")
	}
	if topo.LinkIndex("l3") != 3 || topo.LinkIndex("zz") != -1 {
		t.Error("LinkIndex lookup broken")
	}
}

func TestParseTopologyCommentsAndBlanks(t *testing.T) {
	spec := `
# a comment
node a   # trailing comment

link ab a 10
path p ab
pair x a a p
`
	topo, err := ParseTopology(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 1 || len(topo.Links) != 1 {
		t.Fatalf("parsed %d nodes, %d links", len(topo.Nodes), len(topo.Links))
	}
}

// TestParseTopologyErrors is the fail-fast contract: every malformed spec
// must come back as an error naming the offending line and construct, not
// a panic mid-run.
func TestParseTopologyErrors(t *testing.T) {
	base := "node a\nnode b\nlink ab a 10\nlink ba b 10\npath p ab\n"
	cases := []struct {
		name, spec, want string
	}{
		{"empty", "", "no nodes"},
		{"no pairs", base, "no pairs"},
		{"unknown directive", "nodule a\n", `unknown directive "nodule"`},
		{"node arity", "node\n", "node directive wants"},
		{"duplicate node", "node a\nnode a\n", `duplicate node "a"`},
		{"link arity", "node a\nlink ab a\n", "link directive wants"},
		{"duplicate link", base + "link ab a 5\n", `duplicate link "ab"`},
		{"link unknown owner", "node a\nlink xy zz 10\n", `unknown node "zz"`},
		{"link bad capacity", "node a\nlink ab a ten\n", "bad capacity"},
		{"link zero capacity", "node a\nlink ab a 0\n", "capacity must be positive"},
		{"link negative capacity", "node a\nlink ab a -3\n", "capacity must be positive"},
		{"link inf capacity", "node a\nlink ab a +Inf\n", "capacity must be positive and finite"},
		{"path arity", base + "path q\n", "path directive wants"},
		{"duplicate path", base + "path p ba\n", `duplicate path "p"`},
		{"path missing link", base + "path q nolink\n", `unknown link "nolink"`},
		{"path empty link ref", base + "path q ab,\n", "empty link reference"},
		{"path repeated link", base + "path q ab,ab\n", `traverses link "ab" twice`},
		{"pair arity", base + "pair x a b\n", "pair directive wants"},
		{"pair unknown src", base + "pair x zz b p\n", `unknown src node "zz"`},
		{"pair unknown dst", base + "pair x a zz p\n", `unknown dst node "zz"`},
		{"pair unknown path", base + "pair x a b nopath\n", `unknown path "nopath"`},
		{"pair empty path ref", base + "pair x a b p,\n", "empty path reference"},
		{"pair repeated path", base + "pair x a b p,p\n", `references path "p" twice`},
		{"duplicate pair", base + "pair x a b p\npair x b a p\n", `duplicate pair "x"`},
		{"forward link owner", "link ab a 10\nnode a\n", `unknown node "a"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTopology(tc.spec)
			if err == nil {
				t.Fatalf("spec %q parsed, want error containing %q", tc.spec, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseTopologyPathTooLong(t *testing.T) {
	var b strings.Builder
	b.WriteString("node a\n")
	links := make([]string, 0, MaxPathLinks+1)
	for i := 0; i <= MaxPathLinks; i++ {
		id := "l" + strings.Repeat("x", 1) + string(rune('a'+i%26)) + string(rune('a'+i/26))
		b.WriteString("link " + id + " a 10\n")
		links = append(links, id)
	}
	b.WriteString("path long " + strings.Join(links, ",") + "\n")
	_, err := ParseTopology(b.String())
	if err == nil || !strings.Contains(err.Error(), "max 16") {
		t.Fatalf("overlong path: err = %v, want hop-count error", err)
	}
}

func TestFlowIDPacking(t *testing.T) {
	if got := FlowID(0, 7); got != 7 {
		t.Errorf("FlowID(0, 7) = %d, want 7 (pair 0 must be the identity)", got)
	}
	if got := FlowID(3, 7); got != 3<<48|7 {
		t.Errorf("FlowID(3, 7) = %#x", got)
	}
	// Sequence bits beyond 48 must not bleed into the pair index.
	if got := FlowID(1, 1<<60|5); got != 1<<48|5 {
		t.Errorf("FlowID(1, 1<<60|5) = %#x", got)
	}
}
