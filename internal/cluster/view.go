package cluster

import "sync/atomic"

// view is a node's eventually-consistent picture of every remote link's
// occupancy, fed by gossip (MsgGossip frames piggybacked on forwarded
// traffic plus the periodic anti-entropy tick). Snapshots are versioned by
// a counter the owning node alone increments, so application is monotone:
// a frame that arrives out of order (an anti-entropy burst overtaking a
// piggyback on another connection) can never roll occupancy backwards.
//
// Each link's cell has a single writer — gossip for link g only arrives on
// the one inbound connection from g's owner — so the three fields need no
// joint atomicity: the version gate alone keeps updates monotone, and the
// router reading active/updated mid-store sees either the old or the new
// snapshot, both of which were true recently.
type view struct {
	cells []viewCell
}

type viewCell struct {
	active  atomic.Int64
	version atomic.Uint64
	// updated is the local receive time (nanoseconds on the viewing node's
	// monotonic clock); 0 means no snapshot has ever arrived. The router
	// compares it against the staleness bound before trusting active.
	updated atomic.Int64
}

func newView(nlinks int) *view {
	return &view{cells: make([]viewCell, nlinks)}
}

// apply installs a snapshot if its version advances the cell. It reports
// whether the snapshot was fresh.
func (v *view) apply(link int, version uint64, active int64, now int64) bool {
	c := &v.cells[link]
	if version <= c.version.Load() {
		return false
	}
	c.active.Store(active)
	c.version.Store(version)
	c.updated.Store(now)
	return true
}

// load returns the link's last gossiped active count and when it arrived
// (0 = never).
func (v *view) load(link int) (active int64, updated int64) {
	c := &v.cells[link]
	return c.active.Load(), c.updated.Load()
}
