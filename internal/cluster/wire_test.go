package cluster

import (
	"context"
	"net"
	"testing"
	"time"

	"beqos/internal/resv"
)

// singleSpec makes a one-node, one-link cluster — semantically a single
// resv server, so stock clients (whose FlowIDs have empty top bits and
// therefore address pair 0) speak to it unchanged.
const singleSpec = "node a\nlink l a 8\npath p l\npair x a a p\n"

func serveWire(t *testing.T, n *Node) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() { _ = n.ServeClients(ln) }()
	return ln.Addr().String()
}

// TestWireStockClient drives a cluster node's client plane with the
// unmodified resv mux client: grants up to the path bound, denies past it,
// cluster stats, refresh, teardown — the whole wire surface.
func TestWireStockClient(t *testing.T) {
	cl := startCluster(t, singleSpec, Config{})
	addr := serveWire(t, cl.Node(0))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	mc, err := resv.DialMux(ctx, "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mc.Close() }()

	bound := cl.Bounds()[0]
	for i := 0; i < bound; i++ {
		granted, share, err := mc.Reserve(ctx, uint64(i), 1)
		if err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
		if !granted || !(share > 0) {
			t.Fatalf("reserve %d: granted=%v share=%g", i, granted, share)
		}
	}
	granted, _, err := mc.Reserve(ctx, uint64(bound), 1)
	if err != nil {
		t.Fatal(err)
	}
	if granted {
		t.Fatal("reserve past the path bound granted")
	}
	kmax, active, err := mc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if kmax != bound || active != bound {
		t.Fatalf("stats = (%d, %d), want (%d, %d)", kmax, active, bound, bound)
	}
	if _, err := mc.Refresh(ctx, 0); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if err := mc.Teardown(ctx, 0); err != nil {
		t.Fatalf("teardown: %v", err)
	}
	if err := mc.Teardown(ctx, 0); err == nil {
		t.Fatal("duplicate teardown succeeded")
	}
	if a := cl.Node(0).LinkActive(0); a != int64(bound-1) {
		t.Fatalf("link holds %d claims, want %d", a, bound-1)
	}
}

// TestWireConnDropRollsBack: a client connection that disappears takes its
// path reservations with it, exactly like the single-link serving plane.
func TestWireConnDropRollsBack(t *testing.T) {
	cl := startCluster(t, singleSpec, Config{})
	addr := serveWire(t, cl.Node(0))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	mc, err := resv.DialMux(ctx, "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		granted, _, err := mc.Reserve(ctx, uint64(i), 1)
		if err != nil || !granted {
			t.Fatalf("reserve %d: granted=%v err=%v", i, granted, err)
		}
	}
	if a := cl.Node(0).LinkActive(0); a != 4 {
		t.Fatalf("link holds %d claims, want 4", a)
	}
	_ = mc.Close()
	waitFor(t, "connection-drop rollback", func() bool {
		return cl.Node(0).LinkActive(0) == 0
	})
}

// TestWireMultiNodeEntry: clients on different nodes of one cluster share
// the same admission state — a pair's bound binds across entry points.
func TestWireMultiNodeEntry(t *testing.T) {
	cl := startCluster(t, sharedSpec, Config{})
	topo := cl.topo
	shIdx := topo.LinkIndex("shared")
	bound := cl.Bounds()[shIdx]

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	mcA, err := resv.DialMux(ctx, "tcp", serveWire(t, cl.Node(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mcA.Close() }()
	mcB, err := resv.DialMux(ctx, "tcp", serveWire(t, cl.Node(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mcB.Close() }()

	grants := 0
	for i := 0; i < bound; i++ {
		// Alternate entry nodes; pair index rides the FlowID top bits.
		var granted bool
		var err error
		if i%2 == 0 {
			granted, _, err = mcA.Reserve(ctx, FlowID(0, uint64(i)), 1)
		} else {
			granted, _, err = mcB.Reserve(ctx, FlowID(1, uint64(i)), 1)
		}
		if err != nil {
			t.Fatal(err)
		}
		if granted {
			grants++
		}
	}
	if grants != bound {
		t.Fatalf("granted %d, want the full shared bound %d", grants, bound)
	}
	granted, _, err := mcA.Reserve(ctx, FlowID(0, 1000), 1)
	if err != nil {
		t.Fatal(err)
	}
	if granted {
		t.Fatal("grant past the shared bound via a second entry node")
	}
}
