package continuum

import "math"

// This file collects the paper's asymptotic laws (§3.3, §4, §5) as directly
// callable formulas. They are cross-validated against the quadrature model
// and the discrete model in tests.

// WorstCaseGammaLimit returns e, the paper's conjectured maximal asymptotic
// equalizing price ratio: lim_{z→2⁺} lim_{p→0} γ(p) in the basic model. If
// reservation-capable networks cost more than e times per unit bandwidth,
// best-effort-only wins regardless of the load distribution (in the basic
// model).
func WorstCaseGammaLimit() float64 { return math.E }

// WorstCaseGapSlope returns e − 1, the paper's conjectured maximal
// asymptotic bandwidth-gap slope: lim_{z→2⁺} lim_{C→∞} Δ(C)/C in the basic
// model. Best-effort networks never need more than e times the bandwidth of
// a reservation network to match its performance.
func WorstCaseGapSlope() float64 { return math.E - 1 }

// ExpRigidGapLaw returns the §3.3 logarithmic law for the exponential/rigid
// bandwidth gap, Δ(C) ≈ ln(1 + βC)/β: overprovisioning never stops paying
// (the gap keeps growing), but only logarithmically.
func ExpRigidGapLaw(beta, c float64) float64 {
	return math.Log1p(beta*c) / beta
}

// rampCoef returns (k̄ − E)/k̄ for the ramp utility under algebraic load:
// the fraction of best-effort overload losses that adaptivity does not
// recover. It rises from 1/(z−1) at a → 0 (where reservations confer no
// advantage) to 1 at a → 1 (the rigid case).
func rampCoef(z, a float64) float64 {
	kbar := (z - 1) / (z - 2)
	e := ((1 - math.Pow(a, z-1)) - a*kbar*(1-math.Pow(a, z-2))) / (1 - a)
	return (kbar - e) / kbar
}

// SamplingAlgRigidRatio returns the §5.1 limit
// lim_{C→∞} (C+Δ(C))/C = lim_{p→0} γ(p) = (S(z−1))^(1/(z−2)) for algebraic
// load with rigid applications judged by the worst of S samples. It
// diverges as z → 2⁺ for any S > 1: sampling removes the basic model's
// e-bounds.
func SamplingAlgRigidRatio(z float64, s int) float64 {
	return math.Pow(float64(s)*(z-1), 1/(z-2))
}

// SamplingAlgRampRatio is the adaptive analogue of SamplingAlgRigidRatio:
// (S(z−1)(k̄−E)/k̄)^(1/(z−2)). It also diverges as z → 2⁺.
func SamplingAlgRampRatio(z, a float64, s int) float64 {
	return math.Pow(float64(s)*(z-1)*rampCoef(z, a), 1/(z-2))
}

// RetryAlgRigidRatio returns the §5.2 limit
// lim_{C→∞} (C+Δ(C))/C = lim_{p→0} γ(p) = ((z−1)/α)^(1/(z−2)) for
// algebraic load, rigid applications, and retry penalty α. It diverges as
// z → 2⁺ and as α → 0 (free retries).
func RetryAlgRigidRatio(z, alpha float64) float64 {
	return math.Pow((z-1)/alpha, 1/(z-2))
}

// RetryAlgRampRatio is the adaptive analogue of RetryAlgRigidRatio:
// ((z−1)(k̄−E)/(α·k̄))^(1/(z−2)).
func RetryAlgRampRatio(z, a, alpha float64) float64 {
	return math.Pow((z-1)*rampCoef(z, a)/alpha, 1/(z-2))
}

// SlowTailGapExponent returns the asymptotic growth exponent g of the
// bandwidth gap, Δ(C) ~ C^g, for algebraic load (power z) and the §3.3
// slow-tail utility π(b) = 1 − b^(−τ):
//
//	τ ≥ z−2:        g = 1      (linear growth, as with fast-saturating π)
//	z−3 < τ < z−2:  g = τ+3−z  (still growing, but sublinearly)
//	τ < z−3:        g = τ+3−z  (negative: the gap eventually shrinks)
//
// How fast the utility saturates thus interacts with how heavy the load
// tail is to set the fate of overprovisioning.
func SlowTailGapExponent(z, tau float64) float64 {
	if tau >= z-2 {
		return 1
	}
	return tau + 3 - z
}

// SamplingExpRigidGapLaw returns the §5.1 large-C approximation
// δ(C) ≈ e^(−βC)·(S(1+βC) − 1) for exponential load, rigid applications
// and S samples.
func SamplingExpRigidGapLaw(beta, c float64, s int) float64 {
	return math.Exp(-beta*c) * (float64(s)*(1+beta*c) - 1)
}
