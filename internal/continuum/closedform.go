package continuum

import (
	"fmt"
	"math"

	"beqos/internal/core"
	"beqos/internal/numeric"
)

// ExpRigid is the paper's closed-form continuum case: exponential load
// density p(k) = β e^(−βk) with rigid applications (b̂ = 1, kmax(C) = C).
type ExpRigid struct {
	// Beta is the load decay rate; the mean load is 1/β.
	Beta float64
}

// NewExpRigid returns the case with mean load kbar (β = 1/k̄).
func NewExpRigid(kbar float64) (ExpRigid, error) {
	if !(kbar > 0) {
		return ExpRigid{}, fmt.Errorf("continuum: mean load must be positive, got %g", kbar)
	}
	return ExpRigid{Beta: 1 / kbar}, nil
}

// BestEffort returns B(C) = 1 − e^(−βC)(1 + βC).
func (e ExpRigid) BestEffort(c float64) float64 {
	if c <= 0 {
		return 0
	}
	bc := e.Beta * c
	return 1 - math.Exp(-bc)*(1+bc)
}

// Reservation returns R(C) = 1 − e^(−βC).
func (e ExpRigid) Reservation(c float64) float64 {
	if c <= 0 {
		return 0
	}
	return -math.Expm1(-e.Beta * c)
}

// PerformanceGap returns δ(C) = βC·e^(−βC).
func (e ExpRigid) PerformanceGap(c float64) float64 {
	if c <= 0 {
		return 0
	}
	bc := e.Beta * c
	return bc * math.Exp(-bc)
}

// BandwidthGap returns Δ(C), the solution of βΔ = ln(1 + β(C + Δ)); it
// grows like ln(βC)/β for large C even though δ(C) vanishes.
func (e ExpRigid) BandwidthGap(c float64) (float64, error) {
	if c <= 0 {
		return 0, nil
	}
	f := func(d float64) float64 {
		return e.Beta*d - math.Log1p(e.Beta*(c+d))
	}
	hi := 2 / e.Beta * (1 + math.Log1p(e.Beta*c))
	for f(hi) < 0 {
		hi *= 2
	}
	return numeric.Brent(f, 0, hi, 1e-12*(1+c))
}

// ProvisionBestEffort returns the §4 closed form: the optimal capacity
// solves p = βC·e^(−βC), i.e. βC = h(p) with h the largest root of
// h·e^(−h) = p (the −W₋₁ branch of Lambert W), giving
// W_B(p) = (1/β)(1 − p − p/h − p·h).
func (e ExpRigid) ProvisionBestEffort(p float64) (core.Provision, error) {
	if !(p > 0) {
		return core.Provision{}, fmt.Errorf("continuum: price must be positive, got %g", p)
	}
	if p >= 1/math.E {
		// No capacity recovers its cost: δV/δC = βCe^(−βC) ≤ 1/e < p.
		return core.Provision{Price: p}, nil
	}
	h := -numeric.LambertWm1(-p)
	c := h / e.Beta
	w := (1 - p - p/h - p*h) / e.Beta
	if w <= 0 {
		return core.Provision{Price: p}, nil
	}
	return core.Provision{Price: p, Capacity: c, Welfare: w}, nil
}

// ProvisionReservation returns the §4 closed form: C = −ln(p)/β and
// W_R(p) = (1/β)(1 − p + p·ln p).
func (e ExpRigid) ProvisionReservation(p float64) (core.Provision, error) {
	if !(p > 0) {
		return core.Provision{}, fmt.Errorf("continuum: price must be positive, got %g", p)
	}
	if p >= 1 {
		return core.Provision{Price: p}, nil
	}
	c := -math.Log(p) / e.Beta
	w := (1 - p + p*math.Log(p)) / e.Beta
	return core.Provision{Price: p, Capacity: c, Welfare: w}, nil
}

// GammaEqualize solves the paper's relation
// γ(1 − ln γ − ln p) = 1 + 1/h(p) + h(p) for the equalizing price ratio.
// γ(p) → 1 as p → 0: for exponential loads, cheap bandwidth erases the
// reservation advantage.
func (e ExpRigid) GammaEqualize(p float64) (float64, error) {
	pb, err := e.ProvisionBestEffort(p)
	if err != nil {
		return 0, err
	}
	if pb.Welfare <= 0 {
		return 1, nil
	}
	// Solve W_R(γp) = W_B(p) directly; monotone decreasing in γ.
	f := func(gamma float64) float64 {
		pr, perr := e.ProvisionReservation(gamma * p)
		if perr != nil {
			return math.NaN()
		}
		return pr.Welfare - pb.Welfare
	}
	hi := 2.0
	for f(hi) > 0 {
		hi *= 2
		if hi > 1e9 {
			return 0, fmt.Errorf("continuum: γ bracket exceeded at p=%g", p)
		}
	}
	return numeric.Brent(f, 1, hi, 1e-12)
}

// ExpRamp is exponential load with the continuum adaptive (ramp) utility of
// parameter a ∈ (0, 1): π is 0 below a, linear on [a, 1], 1 above.
type ExpRamp struct {
	Beta float64
	A    float64
}

// NewExpRamp returns the case with mean load kbar and adaptivity a.
func NewExpRamp(kbar, a float64) (ExpRamp, error) {
	if !(kbar > 0) {
		return ExpRamp{}, fmt.Errorf("continuum: mean load must be positive, got %g", kbar)
	}
	if !(a > 0 && a < 1) {
		return ExpRamp{}, fmt.Errorf("continuum: ramp parameter must be in (0, 1), got %g", a)
	}
	return ExpRamp{Beta: 1 / kbar, A: a}, nil
}

// BestEffort returns
// B(C) = 1 − e^(−βC) − (a/(1−a))·(e^(−βC) − e^(−βC/a)).
func (e ExpRamp) BestEffort(c float64) float64 {
	if c <= 0 {
		return 0
	}
	ebc := math.Exp(-e.Beta * c)
	ebca := math.Exp(-e.Beta * c / e.A)
	return 1 - ebc - e.A/(1-e.A)*(ebc-ebca)
}

// Reservation returns R(C) = 1 − e^(−βC): identical to the rigid case,
// since kmax(C) = C and admitted flows all operate at b ≥ 1.
func (e ExpRamp) Reservation(c float64) float64 {
	if c <= 0 {
		return 0
	}
	return -math.Expm1(-e.Beta * c)
}

// PerformanceGap returns δ(C) = (a/(1−a))·(e^(−βC) − e^(−βC/a)).
func (e ExpRamp) PerformanceGap(c float64) float64 {
	if c <= 0 {
		return 0
	}
	return e.A / (1 - e.A) * (math.Exp(-e.Beta*c) - math.Exp(-e.Beta*c/e.A))
}

// BandwidthGap solves B(C+Δ) = R(C). For large C it converges to the
// constant −ln(1−a)/β — adaptivity changes the exponential case
// qualitatively (the rigid gap grows logarithmically forever). The equation
// is solved in loss space (1−B and 1−R), which stays well conditioned even
// when both utilities are within machine epsilon of 1:
//
//	βΔ = ln(1 + (a/(1−a))·(1 − e^(−β(C+Δ)(1−a)/a)))
func (e ExpRamp) BandwidthGap(c float64) (float64, error) {
	if c <= 0 {
		return 0, nil
	}
	f := func(d float64) float64 {
		ramp := e.A / (1 - e.A) * (-math.Expm1(-e.Beta * (c + d) * (1 - e.A) / e.A))
		return e.Beta*d - math.Log1p(ramp)
	}
	hi := (1 - math.Log(1-e.A)) / e.Beta
	for f(hi) < 0 {
		hi *= 2
	}
	return numeric.Brent(f, 0, hi, 1e-12*(1+c))
}

// GapLimit returns lim_{C→∞} Δ(C) = −ln(1−a)/β.
func (e ExpRamp) GapLimit() float64 { return -math.Log(1-e.A) / e.Beta }

// AlgRigid is the paper's heavy-tailed continuum case: algebraic load
// density p(k) = (z−1)k^(−z) on [1, ∞) with rigid applications.
// The mean load is k̄ = (z−1)/(z−2).
type AlgRigid struct {
	Z float64
}

// NewAlgRigid returns the case with tail power z > 2.
func NewAlgRigid(z float64) (AlgRigid, error) {
	if !(z > 2) {
		return AlgRigid{}, fmt.Errorf("continuum: tail power must exceed 2, got %g", z)
	}
	return AlgRigid{Z: z}, nil
}

// Mean returns k̄ = (z−1)/(z−2).
func (a AlgRigid) Mean() float64 { return (a.Z - 1) / (a.Z - 2) }

// BestEffort returns B(C) = 1 − C^(2−z) for C ≥ 1.
func (a AlgRigid) BestEffort(c float64) float64 {
	if c <= 1 {
		return 0
	}
	return 1 - math.Pow(c, 2-a.Z)
}

// Reservation returns R(C) = 1 − C^(2−z)/(z−1) for C ≥ 1.
func (a AlgRigid) Reservation(c float64) float64 {
	if c <= 1 {
		return 0
	}
	return 1 - math.Pow(c, 2-a.Z)/(a.Z-1)
}

// PerformanceGap returns δ(C) = C^(2−z)·(z−2)/(z−1).
func (a AlgRigid) PerformanceGap(c float64) float64 {
	if c <= 1 {
		return 0
	}
	return math.Pow(c, 2-a.Z) * (a.Z - 2) / (a.Z - 1)
}

// BandwidthGap returns the paper's linear law
// Δ(C) = C·((z−1)^(1/(z−2)) − 1): unlike the exponential case, the extra
// bandwidth needed grows in proportion to capacity itself.
func (a AlgRigid) BandwidthGap(c float64) float64 {
	if c <= 1 {
		return 0
	}
	return c * (a.GapRatio() - 1)
}

// GapRatio returns (C+Δ)/C = (z−1)^(1/(z−2)), which is also the p → 0
// limit of γ(p). As z → 2⁺ it approaches e — the paper's conjectured
// worst-case asymptotic advantage of reservations.
func (a AlgRigid) GapRatio() float64 {
	return math.Pow(a.Z-1, 1/(a.Z-2))
}

// ProvisionBestEffort returns the closed form: C = ((z−1)/p)^(1/(z−1)) and
// the corresponding welfare.
func (a AlgRigid) ProvisionBestEffort(p float64) (core.Provision, error) {
	if !(p > 0) {
		return core.Provision{}, fmt.Errorf("continuum: price must be positive, got %g", p)
	}
	c := math.Pow((a.Z-1)/p, 1/(a.Z-1))
	if c <= 1 {
		return core.Provision{Price: p}, nil
	}
	w := a.Mean()*a.BestEffort(c) - p*c
	if w <= 0 {
		return core.Provision{Price: p}, nil
	}
	return core.Provision{Price: p, Capacity: c, Welfare: w}, nil
}

// ProvisionReservation returns the closed form: C = p^(−1/(z−1)) and
// W_R(p) = k̄ − p^((z−2)/(z−1))·(z−1)/(z−2).
func (a AlgRigid) ProvisionReservation(p float64) (core.Provision, error) {
	if !(p > 0) {
		return core.Provision{}, fmt.Errorf("continuum: price must be positive, got %g", p)
	}
	c := math.Pow(p, -1/(a.Z-1))
	if c <= 1 {
		return core.Provision{Price: p}, nil
	}
	w := a.Mean() - math.Pow(p, (a.Z-2)/(a.Z-1))*(a.Z-1)/(a.Z-2)
	if w <= 0 {
		return core.Provision{Price: p}, nil
	}
	return core.Provision{Price: p, Capacity: c, Welfare: w}, nil
}

// GammaEqualize solves W_R(γp) = W_B(p). For small p it approaches the
// constant (z−1)^(1/(z−2)) — the advantage does not vanish with cheap
// bandwidth, unlike the exponential and Poisson cases.
func (a AlgRigid) GammaEqualize(p float64) (float64, error) {
	pb, err := a.ProvisionBestEffort(p)
	if err != nil {
		return 0, err
	}
	if pb.Welfare <= 0 {
		return 1, nil
	}
	f := func(gamma float64) float64 {
		pr, perr := a.ProvisionReservation(gamma * p)
		if perr != nil {
			return math.NaN()
		}
		return pr.Welfare - pb.Welfare
	}
	hi := 2.0
	for f(hi) > 0 {
		hi *= 2
		if hi > 1e9 {
			return 0, fmt.Errorf("continuum: γ bracket exceeded at p=%g", p)
		}
	}
	return numeric.Brent(f, 1, hi, 1e-12)
}

// AlgRamp is algebraic load with the ramp utility of parameter a.
type AlgRamp struct {
	Z float64
	A float64
}

// NewAlgRamp returns the case with tail power z > 2 and adaptivity
// a ∈ (0, 1).
func NewAlgRamp(z, a float64) (AlgRamp, error) {
	if !(z > 2) {
		return AlgRamp{}, fmt.Errorf("continuum: tail power must exceed 2, got %g", z)
	}
	if !(a > 0 && a < 1) {
		return AlgRamp{}, fmt.Errorf("continuum: ramp parameter must be in (0, 1), got %g", a)
	}
	return AlgRamp{Z: z, A: a}, nil
}

// Mean returns k̄ = (z−1)/(z−2).
func (r AlgRamp) Mean() float64 { return (r.Z - 1) / (r.Z - 2) }

// rampHead returns E = [(1−a^(z−1)) − a·k̄·(1−a^(z−2))]/(1−a), the ramp
// region's contribution coefficient: V_B(C) = k̄ − C^(2−z)·(k̄ − E).
func (r AlgRamp) rampHead() float64 {
	kbar := r.Mean()
	return ((1 - math.Pow(r.A, r.Z-1)) - r.A*kbar*(1-math.Pow(r.A, r.Z-2))) / (1 - r.A)
}

// BestEffort returns B(C) = 1 − C^(2−z)·(k̄ − E)/k̄ for C ≥ 1.
func (r AlgRamp) BestEffort(c float64) float64 {
	if c <= 1 {
		return 0
	}
	kbar := r.Mean()
	return 1 - math.Pow(c, 2-r.Z)*(kbar-r.rampHead())/kbar
}

// Reservation returns R(C) = 1 − C^(2−z)/(z−1), as in the rigid case.
func (r AlgRamp) Reservation(c float64) float64 {
	if c <= 1 {
		return 0
	}
	return 1 - math.Pow(c, 2-r.Z)/(r.Z-1)
}

// PerformanceGap returns δ(C) = R(C) − B(C).
func (r AlgRamp) PerformanceGap(c float64) float64 {
	return r.Reservation(c) - r.BestEffort(c)
}

// GapRatio returns lim (C+Δ(C))/C = ((z−1)(k̄−E)/k̄)^(1/(z−2)), the
// adaptive analogue of the rigid (z−1)^(1/(z−2)). It ranges from 1 (a → 0)
// to the rigid value (a → 1).
func (r AlgRamp) GapRatio() float64 {
	kbar := r.Mean()
	return math.Pow((r.Z-1)*(kbar-r.rampHead())/kbar, 1/(r.Z-2))
}

// BandwidthGap returns the exact linear law Δ(C) = C·(GapRatio − 1)
// (exact for C/a ≥ ... all C with C ≥ 1 up to the ramp edge corrections,
// which vanish once C·(ratio−1) ≥ C(1/a−1); see package tests for the
// numeric cross-check).
func (r AlgRamp) BandwidthGap(c float64) float64 {
	if c <= 1 {
		return 0
	}
	return c * (r.GapRatio() - 1)
}

// GammaEqualize returns γ(p): both welfare curves have the form
// k̄ − A_i·p^((z−2)/(z−1)), so γ is the constant (A_B/A_R)^((z−1)/(z−2))
// whenever both architectures provision positively.
func (r AlgRamp) GammaEqualize(p float64) (float64, error) {
	kbar := r.Mean()
	head := kbar - r.rampHead()
	// W_B(p) = k̄ − A_B·p^((z−2)/(z−1)) with
	// A_B = ((z−2)·head)^(1/(z−1))·(z−1)/(z−2)·head^(... ): derive from
	// V_B = k̄ − C^(2−z)·head, optimal C = ((z−2)·head/p)^(1/(z−1)).
	z := r.Z
	cb := math.Pow((z-2)*head/p, 1/(z-1))
	wb := kbar - math.Pow(cb, 2-z)*head - p*cb
	if cb <= 1 || wb <= 0 {
		return 1, nil
	}
	ar, err := NewAlgRigid(z)
	if err != nil {
		return 0, err
	}
	f := func(gamma float64) float64 {
		pr, perr := ar.ProvisionReservation(gamma * p)
		if perr != nil {
			return math.NaN()
		}
		return pr.Welfare - wb
	}
	hi := 2.0
	for f(hi) > 0 {
		hi *= 2
		if hi > 1e9 {
			return 0, fmt.Errorf("continuum: γ bracket exceeded at p=%g", p)
		}
	}
	return numeric.Brent(f, 1, hi, 1e-12)
}
