// Package continuum implements the continuum version of the variable-load
// model (Breslau & Shenker, SIGCOMM 1998, §3.2–§5): load is a continuous
// density p(k), k ∈ [0, ∞), which makes the model analytically tractable.
// The package provides both a generic quadrature-based evaluator (Numeric)
// and the paper's closed forms for every case it derives — exponential and
// algebraic loads crossed with rigid and piecewise-linear ("ramp") adaptive
// utilities — plus the asymptotic laws for the basic model and the sampling
// and retrying extensions. Closed forms and quadrature cross-validate each
// other in the package tests.
package continuum

import (
	"fmt"
	"math"
	"sort"

	"beqos/internal/core"
	"beqos/internal/dist"
	"beqos/internal/numeric"
	"beqos/internal/utility"
)

// quadTol is the absolute quadrature tolerance for normalized utilities.
const quadTol = 1e-11

// Numeric evaluates the continuum model for an arbitrary continuous load
// density and utility function by adaptive quadrature.
type Numeric struct {
	load dist.Continuous
	util utility.Function
	// kmax returns the continuum admission threshold kmax(C).
	kmax func(c float64) float64
	mean float64
}

// NewNumeric returns a quadrature-based continuum model. kmax gives the
// continuum admission threshold (e.g. C for rigid and ramp utilities,
// C(τ+1)^(−1/τ) for the slow-tail family); pass nil for kmax(C) = C.
func NewNumeric(load dist.Continuous, util utility.Function, kmax func(c float64) float64) (*Numeric, error) {
	if load == nil || util == nil {
		return nil, fmt.Errorf("continuum: load and utility must be non-nil")
	}
	if kmax == nil {
		kmax = func(c float64) float64 { return c }
	}
	mean := load.Mean()
	if !(mean > 0) || math.IsInf(mean, 0) {
		return nil, fmt.Errorf("continuum: load mean must be positive and finite, got %g", mean)
	}
	return &Numeric{load: load, util: util, kmax: kmax, mean: mean}, nil
}

// MeanLoad returns the density's mean k̄.
func (n *Numeric) MeanLoad() float64 { return n.mean }

// integrate computes ∫ k·p(k)·π(C/k) dk over [lo, hi] (hi may be +Inf),
// splitting at the utility's kink points k = C and k = C/a-style breaks.
func (n *Numeric) integrate(c, lo, hi float64) float64 {
	f := func(k float64) float64 {
		if k <= 0 {
			return 0
		}
		return k * n.load.PDF(k) * n.util.Eval(c/k)
	}
	// Kink candidates: where the bandwidth share crosses the utility's
	// characteristic points b = 1 and (for ramps) b = a. Integrating in
	// pieces keeps the adaptive quadrature efficient and accurate.
	breaks := []float64{c}
	if r, ok := n.util.(utility.Ramp); ok {
		breaks = append(breaks, c/r.A)
	}
	if _, ok := n.util.(utility.SlowTail); ok {
		breaks = append(breaks, c) // π vanishes below b = 1, i.e. beyond k = C
	}
	pts := []float64{lo}
	for _, b := range breaks {
		if b > lo && (math.IsInf(hi, 1) || b < hi) {
			pts = append(pts, b)
		}
	}
	sort.Float64s(pts)
	var sum float64
	for i := 0; i+1 < len(pts); i++ {
		sum += numeric.Integrate(f, pts[i], pts[i+1], quadTol)
	}
	last := pts[len(pts)-1]
	if math.IsInf(hi, 1) {
		sum += numeric.IntegrateToInf(f, last, quadTol)
	} else if hi > last {
		sum += numeric.Integrate(f, last, hi, quadTol)
	}
	return sum
}

// BestEffort returns the normalized utility
// B(C) = (1/k̄)·∫ k·p(k)·π(C/k) dk.
func (n *Numeric) BestEffort(c float64) float64 {
	if c <= 0 {
		return 0
	}
	return n.integrate(c, 0, math.Inf(1)) / n.mean
}

// Reservation returns the normalized utility
// R(C) = (1/k̄)·(∫₀^kmax k·p(k)·π(C/k) dk + kmax·π(C/kmax)·P(K > kmax)).
func (n *Numeric) Reservation(c float64) float64 {
	if c <= 0 {
		return 0
	}
	km := n.kmax(c)
	if km <= 0 {
		return 0
	}
	head := n.integrate(c, 0, km)
	overflow := km * n.util.Eval(c/km) * n.load.TailProb(km)
	return (head + overflow) / n.mean
}

// PerformanceGap returns δ(C) = R(C) − B(C).
func (n *Numeric) PerformanceGap(c float64) float64 {
	return n.Reservation(c) - n.BestEffort(c)
}

// BandwidthGap returns Δ(C) solving B(C + Δ) = R(C).
func (n *Numeric) BandwidthGap(c float64) (float64, error) {
	r := n.Reservation(c)
	b := n.BestEffort(c)
	if r-b <= 1e-10 {
		return 0, nil
	}
	f := func(delta float64) float64 { return n.BestEffort(c+delta) - r }
	hi := math.Max(c, 1.0)
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("continuum: bandwidth gap diverges at C=%g", c)
		}
	}
	return numeric.Brent(f, 0, hi, 1e-9*(1+c))
}

// TotalBestEffort returns V_B(C) = k̄·B(C) for the welfare model.
func (n *Numeric) TotalBestEffort(c float64) float64 { return n.mean * n.BestEffort(c) }

// TotalReservation returns V_R(C) = k̄·R(C).
func (n *Numeric) TotalReservation(c float64) float64 { return n.mean * n.Reservation(c) }

// ProvisionBestEffort returns the §4 provisioning decision for best-effort.
func (n *Numeric) ProvisionBestEffort(p float64) (core.Provision, error) {
	return core.MaximizeWelfare(n.TotalBestEffort, p, n.mean)
}

// ProvisionReservation returns the §4 provisioning decision for
// reservations.
func (n *Numeric) ProvisionReservation(p float64) (core.Provision, error) {
	return core.MaximizeWelfare(n.TotalReservation, p, n.mean)
}

// GammaEqualize returns the equalizing price ratio γ(p).
func (n *Numeric) GammaEqualize(p float64) (float64, error) {
	return core.GammaFromValues(n.TotalBestEffort, n.TotalReservation, p, n.mean)
}
