package continuum

import (
	"math"
	"testing"

	"beqos/internal/dist"
	"beqos/internal/utility"
)

const kbar = 100.0

func expDensity(t testing.TB) dist.Continuous {
	t.Helper()
	d, err := dist.NewExpDensity(1 / kbar)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func algDensity(t testing.TB, z float64) dist.Continuous {
	t.Helper()
	d, err := dist.NewAlgDensity(z)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func rigidFn(t testing.TB) utility.Function {
	t.Helper()
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func rampFn(t testing.TB, a float64) utility.Function {
	t.Helper()
	r, err := utility.NewRamp(a)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNumericValidation(t *testing.T) {
	if _, err := NewNumeric(nil, rigidFn(t), nil); err == nil {
		t.Error("nil load should fail")
	}
	if _, err := NewNumeric(expDensity(t), nil, nil); err == nil {
		t.Error("nil utility should fail")
	}
}

func TestExpRigidClosedFormVsQuadrature(t *testing.T) {
	cf, err := NewExpRigid(kbar)
	if err != nil {
		t.Fatal(err)
	}
	num, err := NewNumeric(expDensity(t), rigidFn(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{10, 50, 100, 250, 600} {
		if a, b := cf.BestEffort(c), num.BestEffort(c); math.Abs(a-b) > 1e-6 {
			t.Errorf("B(%g): closed %v vs quadrature %v", c, a, b)
		}
		if a, b := cf.Reservation(c), num.Reservation(c); math.Abs(a-b) > 1e-6 {
			t.Errorf("R(%g): closed %v vs quadrature %v", c, a, b)
		}
	}
}

func TestExpRampClosedFormVsQuadrature(t *testing.T) {
	for _, a := range []float64{0.25, 0.5, 0.9} {
		cf, err := NewExpRamp(kbar, a)
		if err != nil {
			t.Fatal(err)
		}
		num, err := NewNumeric(expDensity(t), rampFn(t, a), nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []float64{20, 100, 300} {
			if x, y := cf.BestEffort(c), num.BestEffort(c); math.Abs(x-y) > 1e-6 {
				t.Errorf("a=%g B(%g): closed %v vs quadrature %v", a, c, x, y)
			}
			if x, y := cf.Reservation(c), num.Reservation(c); math.Abs(x-y) > 1e-6 {
				t.Errorf("a=%g R(%g): closed %v vs quadrature %v", a, c, x, y)
			}
		}
	}
}

func TestAlgRigidClosedFormVsQuadrature(t *testing.T) {
	for _, z := range []float64{2.5, 3, 4} {
		cf, err := NewAlgRigid(z)
		if err != nil {
			t.Fatal(err)
		}
		num, err := NewNumeric(algDensity(t, z), rigidFn(t), nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []float64{2, 8, 50, 400} {
			if x, y := cf.BestEffort(c), num.BestEffort(c); math.Abs(x-y) > 1e-6 {
				t.Errorf("z=%g B(%g): closed %v vs quadrature %v", z, c, x, y)
			}
			if x, y := cf.Reservation(c), num.Reservation(c); math.Abs(x-y) > 1e-6 {
				t.Errorf("z=%g R(%g): closed %v vs quadrature %v", z, c, x, y)
			}
		}
	}
}

func TestAlgRampClosedFormVsQuadrature(t *testing.T) {
	for _, a := range []float64{0.3, 0.7} {
		for _, z := range []float64{2.5, 3} {
			cf, err := NewAlgRamp(z, a)
			if err != nil {
				t.Fatal(err)
			}
			num, err := NewNumeric(algDensity(t, z), rampFn(t, a), nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range []float64{3, 20, 150} {
				if x, y := cf.BestEffort(c), num.BestEffort(c); math.Abs(x-y) > 1e-6 {
					t.Errorf("z=%g a=%g B(%g): closed %v vs quadrature %v", z, a, c, x, y)
				}
				if x, y := cf.Reservation(c), num.Reservation(c); math.Abs(x-y) > 1e-6 {
					t.Errorf("z=%g a=%g R(%g): closed %v vs quadrature %v", z, a, c, x, y)
				}
			}
		}
	}
}

func TestExpRigidBandwidthGapLaw(t *testing.T) {
	cf, err := NewExpRigid(kbar)
	if err != nil {
		t.Fatal(err)
	}
	// Δ solves βΔ = ln(1+β(C+Δ)); for large C it tracks ln(1+βC)/β.
	for _, c := range []float64{200, 1000, 5000, 50000} {
		g, err := cf.BandwidthGap(c)
		if err != nil {
			t.Fatal(err)
		}
		// Definition check: B(C+Δ) = R(C).
		if got, want := cf.BestEffort(c+g), cf.Reservation(c); math.Abs(got-want) > 1e-9 {
			t.Errorf("B(C+Δ) = %v, want R(C) = %v at C=%g", got, want, c)
		}
		// The log law is asymptotic: only hold it to account at large C.
		if c >= 5000 {
			law := ExpRigidGapLaw(1/kbar, c)
			if math.Abs(g-law) > 0.1*law {
				t.Errorf("Δ(%g) = %v, log law ≈ %v", c, g, law)
			}
		}
	}
}

func TestExpRampGapConvergesToConstant(t *testing.T) {
	cf, err := NewExpRamp(kbar, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	limit := cf.GapLimit()
	if want := -math.Log(1-0.6) * kbar; math.Abs(limit-want) > 1e-12 {
		t.Errorf("GapLimit = %v, want %v", limit, want)
	}
	g, err := cf.BandwidthGap(5000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-limit) > 0.02*limit {
		t.Errorf("Δ(5000) = %v, limit %v", g, limit)
	}
}

func TestAlgRigidGapLinear(t *testing.T) {
	cf, err := NewAlgRigid(3)
	if err != nil {
		t.Fatal(err)
	}
	// z = 3: ratio = 2, slope = 1, and the closed form satisfies the
	// definition B(C+Δ) = R(C) exactly.
	if r := cf.GapRatio(); math.Abs(r-2) > 1e-12 {
		t.Errorf("GapRatio = %v, want 2", r)
	}
	for _, c := range []float64{5, 50, 500} {
		g := cf.BandwidthGap(c)
		if got, want := cf.BestEffort(c+g), cf.Reservation(c); math.Abs(got-want) > 1e-12 {
			t.Errorf("B(C+Δ) = %v, want R(C) = %v at C=%g", got, want, c)
		}
		if math.Abs(g/c-1) > 1e-12 {
			t.Errorf("Δ(%g)/C = %v, want 1", c, g/c)
		}
	}
}

func TestAlgRigidGapRatioApproachesEAsZTo2(t *testing.T) {
	prev := 0.0
	for _, z := range []float64{4, 3, 2.5, 2.2, 2.05, 2.01} {
		cf, err := NewAlgRigid(z)
		if err != nil {
			t.Fatal(err)
		}
		r := cf.GapRatio()
		if r <= prev {
			t.Errorf("GapRatio(z=%g) = %v not increasing toward e", z, r)
		}
		if r >= math.E {
			t.Errorf("GapRatio(z=%g) = %v exceeds e", z, r)
		}
		prev = r
	}
	cf, _ := NewAlgRigid(2.0001)
	if r := cf.GapRatio(); math.Abs(r-math.E) > 1e-3 {
		t.Errorf("GapRatio(z→2⁺) = %v, want → e = %v", r, math.E)
	}
	if WorstCaseGapSlope() != math.E-1 || WorstCaseGammaLimit() != math.E {
		t.Error("worst-case constants wrong")
	}
}

func TestExpRigidWelfareClosedForms(t *testing.T) {
	cf, err := NewExpRigid(kbar)
	if err != nil {
		t.Fatal(err)
	}
	num, err := NewNumeric(expDensity(t), rigidFn(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.01, 0.1, 0.3} {
		cb, err := cf.ProvisionBestEffort(p)
		if err != nil {
			t.Fatal(err)
		}
		nb, err := num.ProvisionBestEffort(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cb.Welfare-nb.Welfare) > 1e-3*(1+nb.Welfare) {
			t.Errorf("W_B(%g): closed %v vs numeric %v", p, cb.Welfare, nb.Welfare)
		}
		cr, err := cf.ProvisionReservation(p)
		if err != nil {
			t.Fatal(err)
		}
		nr, err := num.ProvisionReservation(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cr.Welfare-nr.Welfare) > 1e-3*(1+nr.Welfare) {
			t.Errorf("W_R(%g): closed %v vs numeric %v", p, cr.Welfare, nr.Welfare)
		}
	}
}

func TestExpRigidGammaConvergesToOne(t *testing.T) {
	cf, err := NewExpRigid(kbar)
	if err != nil {
		t.Fatal(err)
	}
	// Convergence is doubly logarithmic (γ − 1 ~ ln ln(1/p)/ln(1/p)), so
	// even p = 1e-12 leaves γ ≈ 1.1; check monotone descent and the rate.
	prev := math.Inf(1)
	for _, p := range []float64{0.1, 0.01, 1e-3, 1e-5, 1e-9, 1e-12} {
		g, err := cf.GammaEqualize(p)
		if err != nil {
			t.Fatal(err)
		}
		if g < 1 || g > prev {
			t.Errorf("γ(%g) = %v not decreasing toward 1 (prev %v)", p, g, prev)
		}
		prev = g
		if p <= 1e-5 {
			l := math.Log(1 / p)
			if approx := 1 + math.Log(l)/l; math.Abs(g-approx) > 0.5*(approx-1) {
				t.Errorf("γ(%g) = %v, doubly-log approximation ≈ %v", p, g, approx)
			}
		}
	}
	if prev > 1.15 {
		t.Errorf("γ(1e-12) = %v, should be within 0.15 of 1", prev)
	}
}

func TestAlgRigidGammaConstant(t *testing.T) {
	// The paper's key heavy-tail result: γ(p) → (z−1)^(1/(z−2)) as p → 0
	// (equal to the bandwidth-gap ratio), not 1.
	for _, z := range []float64{2.5, 3, 4} {
		cf, err := NewAlgRigid(z)
		if err != nil {
			t.Fatal(err)
		}
		g, err := cf.GammaEqualize(1e-7)
		if err != nil {
			t.Fatal(err)
		}
		if want := cf.GapRatio(); math.Abs(g-want) > 2e-2*want {
			t.Errorf("z=%g: γ(1e-7) = %v, want → GapRatio = %v", z, g, want)
		}
	}
}

func TestAlgRigidWelfareClosedFormVsNumeric(t *testing.T) {
	cf, err := NewAlgRigid(3)
	if err != nil {
		t.Fatal(err)
	}
	num, err := NewNumeric(algDensity(t, 3), rigidFn(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.001, 0.01, 0.1} {
		cb, err := cf.ProvisionBestEffort(p)
		if err != nil {
			t.Fatal(err)
		}
		nb, err := num.ProvisionBestEffort(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cb.Welfare-nb.Welfare) > 1e-3*(1+nb.Welfare) {
			t.Errorf("W_B(%g): closed %v vs numeric %v", p, cb.Welfare, nb.Welfare)
		}
	}
}

func TestAlgRampRatioInterpolatesRigid(t *testing.T) {
	cf3, err := NewAlgRigid(3)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for _, a := range []float64{0.1, 0.3, 0.6, 0.9, 0.999} {
		r, err := NewAlgRamp(3, a)
		if err != nil {
			t.Fatal(err)
		}
		ratio := r.GapRatio()
		if ratio < prev-1e-12 {
			t.Errorf("GapRatio not increasing in a at a=%g: %v after %v", a, ratio, prev)
		}
		prev = ratio
	}
	// a → 1 recovers the rigid ratio.
	r, _ := NewAlgRamp(3, 0.999999)
	if math.Abs(r.GapRatio()-cf3.GapRatio()) > 1e-3 {
		t.Errorf("GapRatio(a→1) = %v, rigid = %v", r.GapRatio(), cf3.GapRatio())
	}
}

func TestAlgRampGammaMatchesGapRatio(t *testing.T) {
	// The paper's identity lim_{p→0} γ(p) = lim_{C→∞} (C+Δ)/C also holds
	// in the adaptive case.
	r, err := NewAlgRamp(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := r.GammaEqualize(1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if want := r.GapRatio(); math.Abs(g-want) > 2e-2*want {
		t.Errorf("γ(1e-7) = %v, want GapRatio = %v", g, want)
	}
}

func TestSlowTailGapExponentRegimes(t *testing.T) {
	cases := []struct {
		z, tau, want float64
	}{
		{3, 2, 1},      // τ > z−2: linear
		{3.5, 1.5, 1},  // τ = z−2: boundary, linear
		{4, 1.5, 0.5},  // z−3 < τ < z−2: sublinear growth
		{4.5, 1, -0.5}, // τ < z−3: shrinking gap
	}
	for _, c := range cases {
		if got := SlowTailGapExponent(c.z, c.tau); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("exponent(z=%g, τ=%g) = %v, want %v", c.z, c.tau, got, c.want)
		}
	}
}

func TestSlowTailNumericMatchesExponent(t *testing.T) {
	// Measure the growth exponent of Δ(C) numerically and compare with the
	// §3.3 prediction, for one case in each regime.
	cases := []struct {
		z, tau float64
	}{
		{3, 2},   // linear regime
		{4, 1.5}, // sublinear regime
		{4.5, 1}, // shrinking regime
	}
	for _, cse := range cases {
		st, err := utility.NewSlowTail(cse.tau)
		if err != nil {
			t.Fatal(err)
		}
		num, err := NewNumeric(algDensity(t, cse.z), st, st.KStar)
		if err != nil {
			t.Fatal(err)
		}
		c1, c2 := 300.0, 1200.0
		g1, err := num.BandwidthGap(c1)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := num.BandwidthGap(c2)
		if err != nil {
			t.Fatal(err)
		}
		got := math.Log(g2/g1) / math.Log(c2/c1)
		want := SlowTailGapExponent(cse.z, cse.tau)
		if math.Abs(got-want) > 0.15 {
			t.Errorf("z=%g τ=%g: measured exponent %v, predicted %v (Δ=%v→%v)",
				cse.z, cse.tau, got, want, g1, g2)
		}
	}
}

func TestExtensionRatioFormulas(t *testing.T) {
	if got := SamplingAlgRigidRatio(3, 1); math.Abs(got-2) > 1e-12 {
		t.Errorf("sampling S=1 should reduce to basic ratio 2, got %v", got)
	}
	if got := SamplingAlgRigidRatio(3, 2); math.Abs(got-4) > 1e-12 {
		t.Errorf("sampling z=3 S=2: got %v, want 4", got)
	}
	if got := RetryAlgRigidRatio(3, 0.1); math.Abs(got-20) > 1e-12 {
		t.Errorf("retry z=3 α=0.1: got %v, want 20", got)
	}
	// Divergence as z → 2⁺ for S > 1 and for retries: the basic model's
	// e-bounds disappear.
	if SamplingAlgRigidRatio(2.05, 2) < 100 {
		t.Error("sampling ratio should blow up as z → 2⁺")
	}
	if RetryAlgRigidRatio(2.05, 0.1) < 1e6 {
		t.Error("retry ratio should blow up as z → 2⁺")
	}
	// Ramp variants interpolate: below the rigid value, above 1.
	if r := SamplingAlgRampRatio(3, 0.5, 2); !(r > 1 && r < 4) {
		t.Errorf("sampling ramp ratio out of range: %v", r)
	}
	if r := RetryAlgRampRatio(3, 0.5, 0.1); !(r > 1 && r < 20) {
		t.Errorf("retry ramp ratio out of range: %v", r)
	}
}

func TestSamplingExpRigidLawShape(t *testing.T) {
	// The sampling law reduces to the basic δ at S = 1 and grows with S.
	beta := 1 / kbar
	c := 300.0
	base := SamplingExpRigidGapLaw(beta, c, 1)
	cf, err := NewExpRigid(kbar)
	if err != nil {
		t.Fatal(err)
	}
	if want := cf.PerformanceGap(c); math.Abs(base-want) > 1e-12 {
		t.Errorf("S=1 law %v vs basic δ %v", base, want)
	}
	if SamplingExpRigidGapLaw(beta, c, 5) <= base {
		t.Error("sampling law should grow with S")
	}
}

func TestClosedFormValidation(t *testing.T) {
	if _, err := NewExpRigid(0); err == nil {
		t.Error("zero mean should fail")
	}
	if _, err := NewExpRamp(0, 0.5); err == nil {
		t.Error("zero mean should fail")
	}
	if _, err := NewExpRamp(100, 1); err == nil {
		t.Error("a = 1 should fail (use the rigid case)")
	}
	if _, err := NewAlgRigid(1.5); err == nil {
		t.Error("z ≤ 2 should fail")
	}
	if _, err := NewAlgRamp(3, 0); err == nil {
		t.Error("a = 0 should fail")
	}
	cf, _ := NewExpRigid(kbar)
	if _, err := cf.ProvisionBestEffort(0); err == nil {
		t.Error("zero price should fail")
	}
	if _, err := cf.ProvisionReservation(-1); err == nil {
		t.Error("negative price should fail")
	}
}

func TestClosedFormDegeneratePrices(t *testing.T) {
	cf, _ := NewExpRigid(kbar)
	// Price above 1/e: best-effort buys nothing.
	pb, err := cf.ProvisionBestEffort(0.5)
	if err != nil || pb.Welfare != 0 {
		t.Errorf("W_B(0.5) = %+v, %v", pb, err)
	}
	// Price above 1: reservations buy nothing either, γ = 1.
	pr, err := cf.ProvisionReservation(1.5)
	if err != nil || pr.Welfare != 0 {
		t.Errorf("W_R(1.5) = %+v, %v", pr, err)
	}
	g, err := cf.GammaEqualize(0.9)
	if err != nil || g != 1 {
		t.Errorf("γ(0.9) = %v, %v (want degenerate 1)", g, err)
	}
}

func TestNumericGammaMatchesClosedForm(t *testing.T) {
	cf, err := NewAlgRigid(3)
	if err != nil {
		t.Fatal(err)
	}
	num, err := NewNumeric(algDensity(t, 3), rigidFn(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := 0.01
	gNum, err := num.GammaEqualize(p)
	if err != nil {
		t.Fatal(err)
	}
	gCf, err := cf.GammaEqualize(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gNum-gCf) > 0.02*gCf {
		t.Errorf("numeric γ(%g) = %v vs closed form %v", p, gNum, gCf)
	}
}

func TestNumericZeroCapacity(t *testing.T) {
	num, err := NewNumeric(expDensity(t), rigidFn(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if num.BestEffort(0) != 0 || num.Reservation(-1) != 0 {
		t.Error("nonpositive capacity should give zero utility")
	}
	if num.MeanLoad() != kbar {
		t.Errorf("mean = %v", num.MeanLoad())
	}
}
