package continuum_test

import (
	"fmt"
	"log"

	"beqos/internal/continuum"
)

// The paper's two headline asymptotic laws, from the closed forms.
func Example() {
	// Exponential load: the bandwidth gap grows only logarithmically…
	exp, err := continuum.NewExpRigid(100)
	if err != nil {
		log.Fatal(err)
	}
	g1, err := exp.BandwidthGap(10000)
	if err != nil {
		log.Fatal(err)
	}
	g2, err := exp.BandwidthGap(100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exp: 10x capacity grows Δ by %.1fx\n", g2/g1)

	// …while algebraic load makes it linear with a universal z → 2⁺ bound.
	alg, err := continuum.NewAlgRigid(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alg z=3: Δ(C)/C = %.0f, γ(p→0) = %.0f\n",
		alg.BandwidthGap(1000)/1000, alg.GapRatio())
	fmt.Printf("worst case as z→2: γ → %.3f\n", continuum.WorstCaseGammaLimit())
	// Output:
	// exp: 10x capacity grows Δ by 1.5x
	// alg z=3: Δ(C)/C = 1, γ(p→0) = 2
	// worst case as z→2: γ → 2.718
}
