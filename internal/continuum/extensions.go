package continuum

import (
	"fmt"
	"math"

	"beqos/internal/numeric"
)

// This file implements the §5 extensions in the continuum model, where
// they admit (near-)closed forms.
//
// Sampling (§5.1), rigid applications: a flow's S size-biased load samples
// are i.i.d. with CDF F_Q, and the flow performs at the worst one. For
// rigid applications a best-effort flow succeeds iff every sample is ≤ C,
// so B_S(C) = F_Q(C)^S = B(C)^S (the basic best-effort utility is exactly
// F_Q(C)). Reservations are unaffected by the extra samples: admitted
// flows never see an effective load above kmax = C, where π = 1 already,
// so R_S = R.
//
// Retrying (§5.2): the offered load inflates to the same density family
// with mean L̂ solving L̂ = k̄(1 + D), D = θ/(1−θ), θ the blocking rate at
// L̂; then R̃(C) = (1+D)·R_{L̂}(C) − αD.

// ExpRigidSampling is the continuum sampling model for exponential load and
// rigid applications.
type ExpRigidSampling struct {
	base ExpRigid
	s    int
}

// NewExpRigidSampling returns the S-sample case with mean load kbar.
func NewExpRigidSampling(kbar float64, s int) (ExpRigidSampling, error) {
	if s < 1 {
		return ExpRigidSampling{}, fmt.Errorf("continuum: sampling needs S ≥ 1, got %d", s)
	}
	base, err := NewExpRigid(kbar)
	if err != nil {
		return ExpRigidSampling{}, err
	}
	return ExpRigidSampling{base: base, s: s}, nil
}

// BestEffort returns B_S(C) = B(C)^S.
func (e ExpRigidSampling) BestEffort(c float64) float64 {
	return math.Pow(e.base.BestEffort(c), float64(e.s))
}

// Reservation returns R(C), unchanged by sampling for rigid applications.
func (e ExpRigidSampling) Reservation(c float64) float64 {
	return e.base.Reservation(c)
}

// PerformanceGap returns δ_S(C) = R(C) − B(C)^S; to first order in the
// tails it is e^(−βC)·(S(1+βC) − 1), the paper's law.
func (e ExpRigidSampling) PerformanceGap(c float64) float64 {
	return e.Reservation(c) - e.BestEffort(c)
}

// BandwidthGap solves B(C+Δ)^S = R(C) in loss space.
func (e ExpRigidSampling) BandwidthGap(c float64) (float64, error) {
	if c <= 0 {
		return 0, nil
	}
	// ln B_S = S·ln(1 − loss_B); target ln R = ln(1 − e^(−βC)).
	target := math.Log1p(-math.Exp(-e.base.Beta * c))
	f := func(d float64) float64 {
		bc := e.base.Beta * (c + d)
		lossB := math.Exp(-bc) * (1 + bc)
		return float64(e.s)*math.Log1p(-lossB) - target
	}
	hi := math.Max(c, 1.0)
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("continuum: sampling gap diverges at C=%g", c)
		}
	}
	return numeric.Brent(f, 0, hi, 1e-10*(1+c))
}

// AlgRigidSampling is the continuum sampling model for algebraic load and
// rigid applications.
type AlgRigidSampling struct {
	base AlgRigid
	s    int
}

// NewAlgRigidSampling returns the S-sample case with tail power z.
func NewAlgRigidSampling(z float64, s int) (AlgRigidSampling, error) {
	if s < 1 {
		return AlgRigidSampling{}, fmt.Errorf("continuum: sampling needs S ≥ 1, got %d", s)
	}
	base, err := NewAlgRigid(z)
	if err != nil {
		return AlgRigidSampling{}, err
	}
	return AlgRigidSampling{base: base, s: s}, nil
}

// BestEffort returns B_S(C) = (1 − C^(2−z))^S.
func (a AlgRigidSampling) BestEffort(c float64) float64 {
	return math.Pow(a.base.BestEffort(c), float64(a.s))
}

// Reservation returns R(C), unchanged by sampling.
func (a AlgRigidSampling) Reservation(c float64) float64 {
	return a.base.Reservation(c)
}

// PerformanceGap returns δ_S(C) ≈ C^(2−z)·(S − 1/(z−1)) for large C.
func (a AlgRigidSampling) PerformanceGap(c float64) float64 {
	return a.Reservation(c) - a.BestEffort(c)
}

// BandwidthGap solves B(C+Δ)^S = R(C); asymptotically
// (C+Δ)/C → (S(z−1))^(1/(z−2)), the paper's divergent-as-z→2⁺ ratio.
func (a AlgRigidSampling) BandwidthGap(c float64) (float64, error) {
	if c <= 1 {
		return 0, nil
	}
	target := math.Log(a.base.Reservation(c))
	f := func(d float64) float64 {
		return float64(a.s)*math.Log1p(-math.Pow(c+d, 2-a.base.Z)) - target
	}
	hi := c * SamplingAlgRigidRatio(a.base.Z, a.s) * 2
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e15 {
			return 0, fmt.Errorf("continuum: sampling gap diverges at C=%g", c)
		}
	}
	return numeric.Brent(f, 0, hi, 1e-10*(1+c))
}

// ExpRigidRetry is the continuum retry model for exponential load and rigid
// applications: blocked flows retry at penalty α, inflating the offered
// load self-consistently.
type ExpRigidRetry struct {
	kbar  float64
	alpha float64
}

// NewExpRigidRetry returns the case with mean load kbar and per-retry
// penalty alpha ≥ 0.
func NewExpRigidRetry(kbar, alpha float64) (ExpRigidRetry, error) {
	if !(kbar > 0) {
		return ExpRigidRetry{}, fmt.Errorf("continuum: mean load must be positive, got %g", kbar)
	}
	if !(alpha >= 0) {
		return ExpRigidRetry{}, fmt.Errorf("continuum: retry penalty must be nonnegative, got %g", alpha)
	}
	return ExpRigidRetry{kbar: kbar, alpha: alpha}, nil
}

// Equilibrium solves L̂ = k̄(1 + θ/(1−θ)) with θ(L) = e^(−C/L), the
// blocked-mass fraction of the exponential density with mean L. It fails
// in the retry-storm regime.
func (e ExpRigidRetry) Equilibrium(c float64) (lhat, theta float64, err error) {
	// Blocked fraction at mean L: E[(k−C)+]/L = e^(−C/L).
	g := func(l float64) float64 {
		th := math.Exp(-c / l)
		if th >= 1 {
			return math.Inf(-1)
		}
		return l - e.kbar*(1+th/(1-th))
	}
	lo, hi := e.kbar, e.kbar
	for i := 0; ; i++ {
		hi *= 2
		if g(hi) >= 0 {
			break
		}
		if i > 13 {
			return 0, 0, fmt.Errorf("continuum: retry storm at C=%g", c)
		}
	}
	lhat, err = numeric.Brent(g, lo, hi, 1e-10*lo)
	if err != nil {
		return 0, 0, err
	}
	return lhat, math.Exp(-c / lhat), nil
}

// Reservation returns R̃(C) = (1+D)(1 − e^(−C/L̂)) − αD; for large C it
// approaches 1 − α·e^(−βC), the paper's limit.
func (e ExpRigidRetry) Reservation(c float64) (float64, error) {
	lhat, theta, err := e.Equilibrium(c)
	if err != nil {
		return 0, err
	}
	d := theta / (1 - theta)
	r := -math.Expm1(-c / lhat)
	return (1+d)*r - e.alpha*d, nil
}

// BestEffort returns the basic B(C) (retries do not arise without
// blocking).
func (e ExpRigidRetry) BestEffort(c float64) float64 {
	base := ExpRigid{Beta: 1 / e.kbar}
	return base.BestEffort(c)
}

// PerformanceGap returns δ̃(C) = R̃(C) − B(C).
func (e ExpRigidRetry) PerformanceGap(c float64) (float64, error) {
	r, err := e.Reservation(c)
	if err != nil {
		return 0, err
	}
	return r - e.BestEffort(c), nil
}

// AlgRigidRetry is the continuum retry model for algebraic load and rigid
// applications, using the scale family p_L(k) = ((z−1)/s)(k/s)^(−z) for
// k ≥ s with s = L(z−2)/(z−1) (so the mean is L).
type AlgRigidRetry struct {
	z     float64
	kbar  float64
	alpha float64
}

// NewAlgRigidRetry returns the case with tail power z > 2, mean load kbar,
// and per-retry penalty alpha > 0 (α = 0 has no finite equilibrium in the
// asymptotic ratio, which diverges as ((z−1)/α)^(1/(z−2))).
func NewAlgRigidRetry(z, kbar, alpha float64) (AlgRigidRetry, error) {
	if !(z > 2) {
		return AlgRigidRetry{}, fmt.Errorf("continuum: tail power must exceed 2, got %g", z)
	}
	if !(kbar > 0) || !(alpha >= 0) {
		return AlgRigidRetry{}, fmt.Errorf("continuum: need kbar > 0 and alpha ≥ 0, got (%g, %g)", kbar, alpha)
	}
	return AlgRigidRetry{z: z, kbar: kbar, alpha: alpha}, nil
}

// scaledTheta returns the blocked-mass fraction at capacity c under the
// scale family with mean l: θ = (c/s)^(2−z)/(z−1) for c ≥ s.
func (a AlgRigidRetry) scaledTheta(c, l float64) float64 {
	s := l * (a.z - 2) / (a.z - 1)
	if c <= s {
		return 1
	}
	return math.Pow(c/s, 2-a.z) / (a.z - 1)
}

// Equilibrium solves the retry fixed point.
func (a AlgRigidRetry) Equilibrium(c float64) (lhat, theta float64, err error) {
	g := func(l float64) float64 {
		th := a.scaledTheta(c, l)
		if th >= 1 {
			return math.Inf(-1)
		}
		return l - a.kbar*(1+th/(1-th))
	}
	lo, hi := a.kbar, a.kbar
	for i := 0; ; i++ {
		hi *= 2
		if g(hi) >= 0 {
			break
		}
		if i > 13 {
			return 0, 0, fmt.Errorf("continuum: retry storm at C=%g", c)
		}
	}
	lhat, err = numeric.Brent(g, lo, hi, 1e-10*lo)
	if err != nil {
		return 0, 0, err
	}
	return lhat, a.scaledTheta(c, lhat), nil
}

// Reservation returns R̃(C) under retries; for large C,
// R̃ ≈ 1 − α·C̃^(2−z)/(z−1) with C̃ the capacity in scaled units.
func (a AlgRigidRetry) Reservation(c float64) (float64, error) {
	lhat, theta, err := a.Equilibrium(c)
	if err != nil {
		return 0, err
	}
	d := theta / (1 - theta)
	// R at mean lhat: scale to the unit family. R_unit(x) = 1 − x^(2−z)/(z−1)
	// for x ≥ 1, with x = c/s.
	s := lhat * (a.z - 2) / (a.z - 1)
	x := c / s
	r := 0.0
	if x > 1 {
		r = 1 - math.Pow(x, 2-a.z)/(a.z-1)
	}
	return (1+d)*r - a.alpha*d, nil
}

// BestEffort returns the basic B(C) for the k̄-scaled algebraic family.
func (a AlgRigidRetry) BestEffort(c float64) float64 {
	s := a.kbar * (a.z - 2) / (a.z - 1)
	x := c / s
	if x <= 1 {
		return 0
	}
	return 1 - math.Pow(x, 2-a.z)
}

// BandwidthGap solves B(C+Δ) = R̃(C); asymptotically
// (C+Δ)/C → ((z−1)/α)^(1/(z−2)).
func (a AlgRigidRetry) BandwidthGap(c float64) (float64, error) {
	r, err := a.Reservation(c)
	if err != nil {
		return 0, err
	}
	if r >= 1 {
		return 0, fmt.Errorf("continuum: R̃(%g) = %g leaves no solvable gap", c, r)
	}
	f := func(d float64) float64 { return a.BestEffort(c+d) - r }
	hi := c * (RetryAlgRigidRatio(a.z, math.Max(a.alpha, 1e-6)) + 1)
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e15 {
			return 0, fmt.Errorf("continuum: retry gap diverges at C=%g", c)
		}
	}
	return numeric.Brent(f, 0, hi, 1e-10*(1+c))
}
