package continuum

import (
	"math"
	"testing"
)

func TestExpRigidSamplingReducesToBasic(t *testing.T) {
	sp, err := NewExpRigidSampling(kbar, 1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewExpRigid(kbar)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{50, 200, 800} {
		if got, want := sp.BestEffort(c), base.BestEffort(c); math.Abs(got-want) > 1e-15 {
			t.Errorf("S=1 B(%g) = %v, want %v", c, got, want)
		}
		g1, err := sp.BandwidthGap(c)
		if err != nil {
			t.Fatal(err)
		}
		g0, err := base.BandwidthGap(c)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(g1-g0) > 1e-6*(1+g0) {
			t.Errorf("S=1 Δ(%g) = %v, basic %v", c, g1, g0)
		}
	}
}

func TestExpRigidSamplingPaperLaw(t *testing.T) {
	// δ_S(C) ≈ e^(−βC)(S(1+βC) − 1) for large C.
	for _, s := range []int{2, 5, 10} {
		sp, err := NewExpRigidSampling(kbar, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []float64{600, 1000} {
			got := sp.PerformanceGap(c)
			want := SamplingExpRigidGapLaw(1/kbar, c, s)
			if math.Abs(got-want) > 0.08*want {
				t.Errorf("S=%d δ(%g) = %v, law %v", s, c, got, want)
			}
		}
	}
}

func TestExpRigidSamplingGapDefinition(t *testing.T) {
	sp, err := NewExpRigidSampling(kbar, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{100, 400, 2000} {
		g, err := sp.BandwidthGap(c)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := sp.BestEffort(c+g), sp.Reservation(c); math.Abs(got-want) > 1e-9 {
			t.Errorf("B_S(C+Δ) = %v, want R = %v at C=%g", got, want, c)
		}
	}
	if _, err := NewExpRigidSampling(kbar, 0); err == nil {
		t.Error("S = 0 should fail")
	}
}

func TestAlgRigidSamplingAsymptoticRatio(t *testing.T) {
	// (C+Δ)/C → (S(z−1))^(1/(z−2)).
	for _, tc := range []struct {
		z float64
		s int
	}{{3, 2}, {3, 10}, {4, 5}} {
		sp, err := NewAlgRigidSampling(tc.z, tc.s)
		if err != nil {
			t.Fatal(err)
		}
		c := 1e5
		g, err := sp.BandwidthGap(c)
		if err != nil {
			t.Fatal(err)
		}
		got := (c + g) / c
		want := SamplingAlgRigidRatio(tc.z, tc.s)
		if math.Abs(got-want) > 5e-3*want {
			t.Errorf("z=%g S=%d ratio = %v, want %v", tc.z, tc.s, got, want)
		}
	}
}

func TestAlgRigidSamplingGapExceedsBasic(t *testing.T) {
	base, err := NewAlgRigid(3)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewAlgRigidSampling(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := 100.0
	g, err := sp.BandwidthGap(c)
	if err != nil {
		t.Fatal(err)
	}
	if g <= base.BandwidthGap(c) {
		t.Errorf("sampling Δ(%g) = %v not above basic %v", c, g, base.BandwidthGap(c))
	}
}

func TestExpRigidRetryEquilibrium(t *testing.T) {
	rt, err := NewExpRigidRetry(kbar, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	lhat, theta, err := rt.Equilibrium(150)
	if err != nil {
		t.Fatal(err)
	}
	if lhat < kbar || !(theta > 0 && theta < 1) {
		t.Errorf("equilibrium (%v, %v) implausible", lhat, theta)
	}
	// Self-consistency.
	if want := kbar * (1 + theta/(1-theta)); math.Abs(lhat-want) > 1e-6*want {
		t.Errorf("L̂ = %v, want %v", lhat, want)
	}
	// Storm at tiny capacity.
	if _, _, err := rt.Equilibrium(5); err == nil {
		t.Error("tiny capacity should be a retry storm")
	}
}

func TestExpRigidRetryLargeCApproachesPaperLimit(t *testing.T) {
	// R̃(C) → 1 − α·e^(−βC) for large C (the only disutility is the retry
	// penalty).
	rt, err := NewExpRigidRetry(kbar, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{600, 1000} {
		r, err := rt.Reservation(c)
		if err != nil {
			t.Fatal(err)
		}
		theta := math.Exp(-c / kbar)
		want := 1 - 0.1*theta
		// The paper's limit is first-order in θ; allow its O(θ²) error.
		if math.Abs(r-want) > 2*theta*theta+1e-12 {
			t.Errorf("R̃(%g) = %v, want ≈ %v (±%g)", c, r, want, 2*theta*theta)
		}
	}
}

func TestExpRigidRetryBeatsBasic(t *testing.T) {
	rt, err := NewExpRigidRetry(kbar, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewExpRigid(kbar)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{150, 300} {
		r, err := rt.Reservation(c)
		if err != nil {
			t.Fatal(err)
		}
		if r <= base.Reservation(c) {
			t.Errorf("R̃(%g) = %v not above basic %v", c, r, base.Reservation(c))
		}
	}
}

func TestAlgRigidRetryAsymptoticRatio(t *testing.T) {
	// (C+Δ)/C → ((z−1)/α)^(1/(z−2)).
	for _, tc := range []struct{ z, alpha float64 }{{3, 0.1}, {3, 0.5}, {4, 0.1}} {
		rt, err := NewAlgRigidRetry(tc.z, kbar, tc.alpha)
		if err != nil {
			t.Fatal(err)
		}
		c := 1e6
		g, err := rt.BandwidthGap(c)
		if err != nil {
			t.Fatal(err)
		}
		got := (c + g) / c
		want := RetryAlgRigidRatio(tc.z, tc.alpha)
		if math.Abs(got-want) > 1e-2*want {
			t.Errorf("z=%g α=%g ratio = %v, want %v", tc.z, tc.alpha, got, want)
		}
	}
}

func TestAlgRigidRetryValidation(t *testing.T) {
	if _, err := NewAlgRigidRetry(2, 100, 0.1); err == nil {
		t.Error("z = 2 should fail")
	}
	if _, err := NewAlgRigidRetry(3, -1, 0.1); err == nil {
		t.Error("negative mean should fail")
	}
	if _, err := NewExpRigidRetry(0, 0.1); err == nil {
		t.Error("zero mean should fail")
	}
	if _, err := NewExpRigidRetry(100, -1); err == nil {
		t.Error("negative alpha should fail")
	}
}

func TestContinuumRetryMatchesDiscreteDirection(t *testing.T) {
	// Both treatments agree on the direction and order of magnitude of the
	// retry amplification for the exponential case at moderate C.
	rt, err := NewExpRigidRetry(kbar, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewExpRigid(kbar)
	if err != nil {
		t.Fatal(err)
	}
	c := 200.0
	dRetry, err := rt.PerformanceGap(c)
	if err != nil {
		t.Fatal(err)
	}
	dBasic := base.PerformanceGap(c)
	if !(dRetry > dBasic && dRetry < 4*dBasic) {
		t.Errorf("retry δ̃(%g) = %v vs basic %v: expected moderate amplification", c, dRetry, dBasic)
	}
}
