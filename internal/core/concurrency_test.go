package core

import (
	"context"
	"math"
	"sync"
	"testing"

	"beqos/internal/dist"
	"beqos/internal/sweep"
	"beqos/internal/utility"
)

// concurrencyModel builds the Poisson/adaptive model shared by the tests
// below.
func concurrencyModel(t *testing.T) *Model {
	t.Helper()
	load, err := dist.NewPoisson(100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(load, utility.NewAdaptive())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestModelConcurrentUse hammers one shared Model from 32 goroutines — the
// thread-safety contract documented on Model — and checks every concurrent
// result against a sequentially computed reference. Run under -race this
// also exercises the memoization caches and the lazy Poisson table for data
// races.
func TestModelConcurrentUse(t *testing.T) {
	m := concurrencyModel(t)
	cs := []float64{40, 80, 100, 120, 160, 200, 300, 400}

	type ref struct {
		b, r, g float64
		kmax    int
	}
	want := make([]ref, len(cs))
	seq := concurrencyModel(t) // separate instance: cold caches for the reference
	for i, c := range cs {
		g, err := seq.BandwidthGap(c)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ref{b: seq.BestEffort(c), r: seq.Reservation(c), g: g, kmax: seq.KMax(c)}
	}

	const goroutines = 32
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				// Stagger the starting point so goroutines collide on
				// different capacities each round.
				for off := 0; off < len(cs); off++ {
					i := (worker + round + off) % len(cs)
					c := cs[i]
					if got := m.BestEffort(c); math.Float64bits(got) != math.Float64bits(want[i].b) {
						t.Errorf("B(%g) = %v concurrently, want %v", c, got, want[i].b)
						return
					}
					if got := m.Reservation(c); math.Float64bits(got) != math.Float64bits(want[i].r) {
						t.Errorf("R(%g) = %v concurrently, want %v", c, got, want[i].r)
						return
					}
					if got := m.KMax(c); got != want[i].kmax {
						t.Errorf("KMax(%g) = %d concurrently, want %d", c, got, want[i].kmax)
						return
					}
					got, err := m.BandwidthGap(c)
					if err != nil {
						errs <- err
						return
					}
					if math.Float64bits(got) != math.Float64bits(want[i].g) {
						t.Errorf("Δ(%g) = %v concurrently, want %v", c, got, want[i].g)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestExtensionsConcurrentUse exercises the Sampling and Retry extensions'
// internal caches from many goroutines against sequential references.
func TestExtensionsConcurrentUse(t *testing.T) {
	load, err := dist.NewExponentialMean(100)
	if err != nil {
		t.Fatal(err)
	}
	rigid, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(load, rigid)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSampling(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRetry(m, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cs := []float64{150, 200, 300, 400}
	wantB := make([]float64, len(cs))
	wantR := make([]float64, len(cs))
	for i, c := range cs {
		wantB[i] = sp.BestEffort(c)
		r, err := rt.Reservation(c)
		if err != nil {
			t.Fatal(err)
		}
		wantR[i] = r
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				i := (worker + round) % len(cs)
				if got := sp.BestEffort(cs[i]); math.Float64bits(got) != math.Float64bits(wantB[i]) {
					t.Errorf("sampling B(%g) = %v concurrently, want %v", cs[i], got, wantB[i])
					return
				}
				got, err := rt.Reservation(cs[i])
				if err != nil {
					t.Errorf("retry R(%g): %v", cs[i], err)
					return
				}
				if math.Float64bits(got) != math.Float64bits(wantR[i]) {
					t.Errorf("retry R(%g) = %v concurrently, want %v", cs[i], got, wantR[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestParallelSweepDeterministic checks the end-to-end guarantee the figure
// harness relies on: sweeping a shared Model over a capacity grid in
// parallel yields rows bit-identical to a sequential sweep.
func TestParallelSweepDeterministic(t *testing.T) {
	m := concurrencyModel(t)
	cs := sweep.Grid(10, 400, 10)
	eval := func(c float64) ([3]float64, error) {
		g, err := m.BandwidthGap(c)
		if err != nil {
			return [3]float64{}, err
		}
		return [3]float64{m.BestEffort(c), m.Reservation(c), g}, nil
	}
	want, err := sweep.Map(context.Background(), 1, cs, eval)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sweep.Map(context.Background(), 16, cs, eval)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := 0; j < 3; j++ {
			if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
				t.Fatalf("row %d field %d: parallel %v, sequential %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}
