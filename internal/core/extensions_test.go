package core

import (
	"math"
	"testing"

	"beqos/internal/dist"
	"beqos/internal/utility"
)

func TestFixedLoadOptimum(t *testing.T) {
	r := rigid(t)
	k, v, finite := FixedLoadOptimum(r, 100)
	if !finite || k != 100 || v != 100 {
		t.Errorf("rigid: got (%d, %v, %v), want (100, 100, true)", k, v, finite)
	}
	if _, _, finite := FixedLoadOptimum(utility.Elastic{}, 100); finite {
		t.Error("elastic should report no finite optimum")
	}
	a := utility.NewAdaptive()
	k, _, finite = FixedLoadOptimum(a, 100)
	if !finite || k < 99 || k > 101 {
		t.Errorf("adaptive kmax(100) = %d, want ≈ 100 (κ* calibration)", k)
	}
}

func TestFixedLoadCurveShape(t *testing.T) {
	// Rigid: V(k) = k up to C, then 0 — peaked, admission control helps.
	curve := FixedLoadCurve(rigid(t), 50, 100)
	if curve[49] != 50 || curve[50] != 0 {
		t.Errorf("rigid curve: V(50) = %v, V(51) = %v", curve[49], curve[50])
	}
	// Elastic: V strictly increasing everywhere.
	curve = FixedLoadCurve(utility.Elastic{}, 50, 400)
	for i := 1; i < len(curve); i++ {
		if curve[i] <= curve[i-1] {
			t.Fatalf("elastic V(k) not increasing at k = %d", i+1)
		}
	}
}

func TestAdmissionGain(t *testing.T) {
	r := rigid(t)
	if g := AdmissionGain(r, 100, 50); g != 0 {
		t.Errorf("no gain below kmax, got %v", g)
	}
	// At k = 150 > kmax = 100, best-effort collapses to 0, admission
	// recovers 100.
	if g := AdmissionGain(r, 100, 150); g != 100 {
		t.Errorf("gain = %v, want 100", g)
	}
	if g := AdmissionGain(utility.Elastic{}, 100, 500); g != 0 {
		t.Errorf("elastic gain = %v, want 0", g)
	}
}

func TestFootnote9ElasticBenefitsUnderSampling(t *testing.T) {
	// Footnote 9: "even with elastic applications the reservation-capable
	// network can provide higher utility [under sampling]… we need to
	// discard the standard kmax (infinite for elastic applications) and
	// use some finite value."
	m := model(t, exponential(t), utility.Elastic{})
	sp, err := NewSamplingWithKMax(m, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	c := 100.0
	b, r := sp.BestEffort(c), sp.Reservation(c)
	if !(r > b) {
		t.Errorf("elastic under sampling with kmax=100: R_S(%g) = %v should exceed B_S = %v", c, r, b)
	}
	// Without the override, elastic reservations collapse to best-effort.
	plain, err := NewSampling(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.Reservation(c); math.Abs(got-plain.BestEffort(c)) > 1e-12 {
		t.Errorf("elastic without override: R_S = %v should equal B_S = %v", got, plain.BestEffort(c))
	}
}

func TestSamplingWithKMaxValidation(t *testing.T) {
	m := model(t, exponential(t), rigid(t))
	if _, err := NewSamplingWithKMax(m, 5, 0); err == nil {
		t.Error("kmax = 0 should fail")
	}
	if _, err := NewSamplingWithKMax(m, 0, 10); err == nil {
		t.Error("S = 0 should fail")
	}
}

func TestHeterogeneousMixturePerturbsMidRangeNotAsymptotics(t *testing.T) {
	// §5: heterogeneous flows (here: half rigid at demand 1, half rigid at
	// demand 2) change the C ≈ k̄ region but not the algebraic case's
	// linear Δ(C) law.
	rigidFn := rigid(t)
	mix, err := utility.NewMixture([]utility.Component{
		{Fn: rigidFn, Weight: 0.5, Demand: 1},
		{Fn: rigidFn, Weight: 0.5, Demand: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	pure := model(t, algebraic(t, 3), rigidFn)
	hetero := model(t, algebraic(t, 3), mix)
	// Mid-range values differ materially…
	if d1, d2 := pure.PerformanceGap(100), hetero.PerformanceGap(100); math.Abs(d1-d2) < 1e-3 {
		t.Errorf("heterogeneity should perturb the k̄ region: pure %v vs hetero %v", d1, d2)
	}
	// …but the asymptotic bandwidth-gap growth stays linear.
	g800, err := hetero.BandwidthGap(800)
	if err != nil {
		t.Fatal(err)
	}
	g1600, err := hetero.BandwidthGap(1600)
	if err != nil {
		t.Fatal(err)
	}
	ratio := g1600 / g800
	if math.Abs(ratio-2) > 0.35 {
		t.Errorf("heterogeneous Δ growth ratio = %v, want ≈ 2 (linear)", ratio)
	}
}

func TestNonstationaryMixtureLoad(t *testing.T) {
	// §5: nonstationary loads (a mixture of regimes). A light/heavy
	// mixture inherits the heavy component's asymptotics.
	light := exponential(t)
	heavy := algebraic(t, 3)
	mixed, err := dist.NewMixture([]dist.Discrete{light, heavy}, []float64{0.8, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	m := model(t, mixed, rigid(t))
	// Basic sanity.
	for _, c := range []float64{100, 400} {
		b, r := m.BestEffort(c), m.Reservation(c)
		if !(r >= b && b >= 0 && r <= 1) {
			t.Errorf("mixture model out of range at C=%g: B=%v R=%v", c, b, r)
		}
	}
	// Asymptotically linear Δ (the algebraic component dominates).
	g800, err := m.BandwidthGap(800)
	if err != nil {
		t.Fatal(err)
	}
	g1600, err := m.BandwidthGap(1600)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := g1600 / g800; math.Abs(ratio-2) > 0.35 {
		t.Errorf("mixture Δ growth ratio = %v, want ≈ 2 (heavy tail dominates)", ratio)
	}
	// A purely light-tailed mixture keeps slow (logarithmic) growth.
	lightMix, err := dist.NewMixture([]dist.Discrete{poisson(t), light}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ml := model(t, lightMix, rigid(t))
	h800, err := ml.BandwidthGap(800)
	if err != nil {
		t.Fatal(err)
	}
	h1600, err := ml.BandwidthGap(1600)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := h1600 / h800; ratio > 1.5 {
		t.Errorf("light mixture Δ ratio = %v, should grow sublinearly", ratio)
	}
}
