package core

import (
	"math"

	"beqos/internal/utility"
)

// FixedLoadOptimum analyzes the §2 fixed-load model at capacity c: the
// utility-maximizing number of admitted flows, the total utility V(kmax)
// it achieves, and whether a finite maximum exists at all. finite = false
// identifies elastic utilities, for which denying access never raises
// total utility and the best-effort-only architecture is ideal.
func FixedLoadOptimum(f utility.Function, c float64) (kmax int, v float64, finite bool) {
	k, ok := utility.KMax(f, c)
	if !ok {
		return 0, 0, false
	}
	return k, utility.TotalUtility(f, c, k), true
}

// FixedLoadCurve tabulates V(k) = k·π(C/k) for k = 1…kTop, the §2 curve
// whose shape (monotone versus peaked) decides whether admission control
// pays.
func FixedLoadCurve(f utility.Function, c float64, kTop int) []float64 {
	out := make([]float64, kTop)
	for k := 1; k <= kTop; k++ {
		out[k-1] = utility.TotalUtility(f, c, k)
	}
	return out
}

// AdmissionGain returns the §2 fixed-load advantage of admission control at
// load k: V(min(k, kmax)) − V(k), the utility recovered by turning excess
// flows away. It is 0 for k ≤ kmax and for elastic utilities.
func AdmissionGain(f utility.Function, c float64, k int) float64 {
	kmax, _, finite := FixedLoadOptimum(f, c)
	if !finite || k <= kmax {
		return 0
	}
	gain := utility.TotalUtility(f, c, kmax) - utility.TotalUtility(f, c, k)
	return math.Max(gain, 0)
}
