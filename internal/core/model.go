// Package core implements the analytical models of Breslau & Shenker,
// "Best-Effort versus Reservations: A Simple Comparative Analysis"
// (SIGCOMM 1998): the fixed-load model (§2), the discrete variable-load
// model with its performance and bandwidth gaps (§3.1), the variable
// capacity (welfare) model (§4), and the sampling and retrying extensions
// (§5).
//
// Throughout, a Model couples a load distribution P(k) — the probability
// that k flows request service — with an application utility function π(b).
// A best-effort-only network admits every flow and splits capacity evenly;
// a reservation-capable network admits at most kmax(C) flows, the number
// maximizing total utility, and rejected flows receive zero bandwidth.
package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"beqos/internal/dist"
	"beqos/internal/numeric"
	"beqos/internal/utility"
)

// defaultTol is the absolute tolerance used for series truncation and root
// finding on normalized utilities (which lie in [0, 1]).
const defaultTol = 1e-10

// maxMemoEntries bounds each per-Model memoization cache. Sweeps, Brent
// inversions and welfare scans revisit far fewer points than this; the cap
// only guards pathological callers against unbounded growth.
const maxMemoEntries = 1 << 20

// memo is a concurrency-safe, size-capped memoization cache for pure
// float64-keyed evaluations.
type memo[V any] struct {
	m sync.Map
	n atomic.Int64
}

func (mc *memo[V]) get(c float64) (V, bool) {
	if v, ok := mc.m.Load(c); ok {
		return v.(V), true
	}
	var zero V
	return zero, false
}

func (mc *memo[V]) put(c float64, v V) V {
	if mc.n.Load() < maxMemoEntries {
		if _, loaded := mc.m.LoadOrStore(c, v); !loaded {
			mc.n.Add(1)
		}
	}
	return v
}

// Model is the paper's variable-load model: a single link whose offered
// load (number of flows) is drawn from a static probability distribution.
//
// A Model is safe for concurrent use by multiple goroutines: the load
// distribution is wrapped in an immutable tabulated decorator at
// construction, the utility functions are stateless, and the memoization
// caches below are concurrency-safe. Methods are pure functions of their
// arguments, so concurrent and sequential evaluation return bit-identical
// results regardless of interleaving.
type Model struct {
	load dist.Discrete
	util utility.Function
	mean float64
	// inelastic records whether the utility admits a finite kmax; when
	// false (elastic utilities) the reservation network admits everyone
	// and the two architectures coincide.
	inelastic bool
	tol       float64
	// kcut is the summation index beyond which heavy-tailed loads switch
	// from term-by-term summation to an integral tail (see dist.RealPMF).
	// It is far past the bulk of the load mass, so the integrand is smooth
	// and slowly varying there.
	kcut int

	// Memoization caches: Brent inversions (BandwidthGap), welfare scans
	// (GammaEqualize) and grid sweeps re-evaluate the same capacities many
	// times; caching the pure results makes repeats O(1).
	kmaxMemo memo[int]
	beMemo   memo[float64]
	resvMemo memo[float64]
}

// New returns a variable-load model for the given load distribution and
// utility function. The load is wrapped in a dist.Tabulate decorator, so
// every per-term PMF/CDF/tail query in the series below is an array load.
func New(load dist.Discrete, util utility.Function) (*Model, error) {
	if load == nil || util == nil {
		return nil, fmt.Errorf("core: load and utility must be non-nil")
	}
	mean := load.Mean()
	if !(mean > 0) || math.IsInf(mean, 0) {
		return nil, fmt.Errorf("core: load mean must be positive and finite, got %g", mean)
	}
	load = dist.Tabulate(load)
	_, inelastic := utility.KMax(util, math.Max(mean, 16))
	kcut := 4 * load.Quantile(0.999)
	if kcut < 1024 {
		kcut = 1024
	}
	return &Model{
		load:      load,
		util:      util,
		mean:      mean,
		inelastic: inelastic,
		tol:       defaultTol,
		kcut:      kcut,
	}, nil
}

// Load returns the model's load distribution (the tabulated decorator
// wrapping the distribution passed to New).
func (m *Model) Load() dist.Discrete { return m.load }

// Util returns the model's utility function.
func (m *Model) Util() utility.Function { return m.util }

// MeanLoad returns k̄, the mean offered load.
func (m *Model) MeanLoad() float64 { return m.mean }

// KMax returns the admission threshold kmax(C) used by the
// reservation-capable architecture, or the largest representable load for
// elastic utilities (for which admission control never helps).
func (m *Model) KMax(c float64) int {
	if k, ok := m.kmaxMemo.get(c); ok {
		return k
	}
	k, ok := utility.KMax(m.util, c)
	if !ok {
		k = math.MaxInt32
	}
	return m.kmaxMemo.put(c, k)
}

// TotalBestEffort returns V_B(C) = Σ_k P(k)·k·π(C/k): the expected total
// utility of the best-effort-only architecture at capacity C.
func (m *Model) TotalBestEffort(c float64) float64 {
	if v, ok := m.beMemo.get(c); ok {
		return v
	}
	return m.beMemo.put(c, m.totalBestEffort(c))
}

func (m *Model) totalBestEffort(c float64) float64 {
	if c <= 0 {
		return 0
	}
	// Fast exact path for rigid utilities: π(C/k) is 1 for k ≤ C/b̂ and 0
	// beyond, so V_B = k̄ − TailMean(⌊C/b̂⌋).
	if r, ok := m.util.(utility.Rigid); ok {
		cut := int(math.Floor(c / r.Bhat))
		return m.mean - m.load.TailMean(cut)
	}
	rp, hasRealPMF := dist.AsRealPMF(m.load)
	kcut := m.kcut
	var sum numeric.KahanSum
	check := 32 // next index at which to test the truncation bound
	for k := 1; ; k++ {
		pk := m.load.PMF(k)
		sum.Add(pk * float64(k) * m.util.Eval(c/float64(k)))
		// π is nondecreasing in b = C/k, hence nonincreasing in k, so the
		// remaining mass is at most π(C/k)·TailMean(k). The bound costs a
		// tail-moment evaluation, so test it at geometrically spaced
		// checkpoints.
		if k == check || pk == 0 {
			if bound := m.util.Eval(c/float64(k)) * m.load.TailMean(k); bound <= m.tol*(1+sum.Sum()) {
				break
			}
			check += 32 + check/4
		}
		if hasRealPMF && k >= kcut {
			// Midpoint-rule integral tail: Σ_{j>k} j·P(j)·π(C/j)
			// ≈ ∫_{k+1/2}^∞ x·P(x)·π(C/x) dx.
			sum.Add(numeric.IntegrateToInf(func(x float64) float64 {
				return x * rp.PMFAt(x) * m.util.Eval(c/x)
			}, float64(k)+0.5, m.tol/100))
			break
		}
		if k > 1<<26 {
			break
		}
	}
	return sum.Sum()
}

// TotalReservation returns V_R(C): the expected total utility of the
// reservation-capable architecture at capacity C. When k flows request
// service, min(k, kmax) are admitted, each receiving C/min(k, kmax);
// rejected flows receive zero utility.
func (m *Model) TotalReservation(c float64) float64 {
	if v, ok := m.resvMemo.get(c); ok {
		return v
	}
	return m.resvMemo.put(c, m.totalReservation(c))
}

func (m *Model) totalReservation(c float64) float64 {
	if c <= 0 {
		return 0
	}
	if !m.inelastic {
		// Elastic utilities: admitting everyone maximizes utility, so the
		// reservation network behaves exactly like best-effort.
		return m.TotalBestEffort(c)
	}
	kmax := m.KMax(c)
	if kmax <= 0 {
		return 0
	}
	// Fast exact path for rigid utilities: every admitted flow receives at
	// least b̂, so V_R = E[k; k ≤ kmax] + kmax·P(k > kmax).
	if _, ok := m.util.(utility.Rigid); ok {
		return m.mean - m.load.TailMean(kmax) + float64(kmax)*m.load.TailProb(kmax)
	}
	var sum numeric.KahanSum
	head := kmax
	if rp, ok := dist.AsRealPMF(m.load); ok && kmax > m.kcut {
		// Heavy-tailed loads: sum directly through the bulk, then close the
		// smooth remainder of the head with a midpoint-rule integral.
		head = m.kcut
		sum.Add(numeric.Integrate(func(x float64) float64 {
			return x * rp.PMFAt(x) * m.util.Eval(c/x)
		}, float64(head)+0.5, float64(kmax)+0.5, m.tol/100))
	}
	for k := 1; k <= head; k++ {
		sum.Add(m.load.PMF(k) * float64(k) * m.util.Eval(c/float64(k)))
		// Terms are bounded by k·P(k); once the remaining head mass is
		// negligible (π ≤ 1), skip straight to the overflow term.
		if k%64 == 0 && m.load.TailMean(k) <= m.tol*(1+sum.Sum()) {
			break
		}
	}
	// All loads beyond kmax admit exactly kmax flows at share C/kmax.
	sum.Add(float64(kmax) * m.util.Eval(c/float64(kmax)) * m.load.TailProb(kmax))
	return sum.Sum()
}

// BestEffort returns the normalized per-flow utility B(C) = V_B(C)/k̄.
// Since π ≤ 1, B lies in [0, 1].
func (m *Model) BestEffort(c float64) float64 {
	return m.TotalBestEffort(c) / m.mean
}

// Reservation returns the normalized per-flow utility R(C) = V_R(C)/k̄.
func (m *Model) Reservation(c float64) float64 {
	return m.TotalReservation(c) / m.mean
}

// PerformanceGap returns δ(C) = R(C) − B(C), the per-flow utility advantage
// of the reservation-capable architecture.
func (m *Model) PerformanceGap(c float64) float64 {
	return m.Reservation(c) - m.BestEffort(c)
}

// BandwidthGap returns Δ(C), the extra capacity the best-effort-only
// architecture needs to match reservation performance:
// B(C + Δ) = R(C). B is nondecreasing in capacity, so Δ is found by
// monotone inversion; it is 0 whenever the gap is already below the model
// tolerance.
func (m *Model) BandwidthGap(c float64) (float64, error) {
	r := m.Reservation(c)
	b := m.BestEffort(c)
	if r-b <= m.tol {
		return 0, nil
	}
	f := func(delta float64) float64 { return m.BestEffort(c+delta) - r }
	// Expand the bracket geometrically: B approaches sup_k π-weighted
	// mean ≤ 1 from below, and R(C) < that supremum for the distributions
	// considered, but guard against pathological cases anyway.
	hi := math.Max(c, 1.0)
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("core: bandwidth gap diverges at C=%g (B never reaches R=%g)", c, r)
		}
	}
	return numeric.Brent(f, 0, hi, 1e-9*(1+c))
}

// Gaps returns B(C), R(C), δ(C) and Δ(C) in one call, sharing the
// underlying evaluations.
func (m *Model) Gaps(c float64) (b, r, delta, bwGap float64, err error) {
	b = m.BestEffort(c)
	r = m.Reservation(c)
	delta = r - b
	bwGap, err = m.BandwidthGap(c)
	return b, r, delta, bwGap, err
}

// FixedLoadTotal returns the fixed-load model's total utility
// V(k) = k·π(C/k) (§2), exposed for the fixed-load analyses and examples.
func (m *Model) FixedLoadTotal(c float64, k int) float64 {
	return utility.TotalUtility(m.util, c, k)
}
