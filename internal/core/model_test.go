package core

import (
	"math"
	"testing"
	"testing/quick"

	"beqos/internal/dist"
	"beqos/internal/utility"
)

// kbar is the paper's mean offered load for all numerical work.
const kbar = 100.0

func poisson(t testing.TB) dist.Discrete {
	t.Helper()
	d, err := dist.NewPoisson(kbar)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func exponential(t testing.TB) dist.Discrete {
	t.Helper()
	d, err := dist.NewExponentialMean(kbar)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func algebraic(t testing.TB, z float64) dist.Discrete {
	t.Helper()
	d, err := dist.NewAlgebraicMean(z, kbar)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func rigid(t testing.TB) utility.Function {
	t.Helper()
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func model(t testing.TB, load dist.Discrete, util utility.Function) *Model {
	t.Helper()
	m, err := New(load, util)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func allModels(t testing.TB) map[string]*Model {
	return map[string]*Model{
		"poisson/rigid":        model(t, poisson(t), rigid(t)),
		"poisson/adaptive":     model(t, poisson(t), utility.NewAdaptive()),
		"exponential/rigid":    model(t, exponential(t), rigid(t)),
		"exponential/adaptive": model(t, exponential(t), utility.NewAdaptive()),
		"algebraic/rigid":      model(t, algebraic(t, 3), rigid(t)),
		"algebraic/adaptive":   model(t, algebraic(t, 3), utility.NewAdaptive()),
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, rigid(t)); err == nil {
		t.Error("nil load should fail")
	}
	if _, err := New(poisson(t), nil); err == nil {
		t.Error("nil utility should fail")
	}
}

func TestZeroCapacity(t *testing.T) {
	for name, m := range allModels(t) {
		if m.BestEffort(0) != 0 || m.Reservation(0) != 0 {
			t.Errorf("%s: nonzero utility at zero capacity", name)
		}
		if m.BestEffort(-5) != 0 {
			t.Errorf("%s: nonzero utility at negative capacity", name)
		}
	}
}

func TestReservationDominatesBestEffort(t *testing.T) {
	// R(C) ≥ B(C) for every model and capacity: overload terms are
	// replaced by the fixed-load maximum V(kmax) ≥ V(k).
	for name, m := range allModels(t) {
		for _, c := range []float64{1, 10, 50, 100, 150, 200, 400, 1000} {
			b, r := m.BestEffort(c), m.Reservation(c)
			if r < b-1e-9 {
				t.Errorf("%s: R(%g) = %v < B(%g) = %v", name, c, r, c, b)
			}
			if b < 0 || r > 1+1e-9 {
				t.Errorf("%s: utilities out of range at C=%g: B=%v R=%v", name, c, b, r)
			}
		}
	}
}

func TestBestEffortMonotoneInCapacity(t *testing.T) {
	for name, m := range allModels(t) {
		prevB, prevR := 0.0, 0.0
		for c := 10.0; c <= 500; c += 10 {
			b, r := m.BestEffort(c), m.Reservation(c)
			if b < prevB-1e-9 {
				t.Errorf("%s: B not monotone at C=%g (%v after %v)", name, c, b, prevB)
			}
			if r < prevR-1e-9 {
				t.Errorf("%s: R not monotone at C=%g (%v after %v)", name, c, r, prevR)
			}
			prevB, prevR = b, r
		}
	}
}

func TestElasticArchitecturesCoincide(t *testing.T) {
	m := model(t, poisson(t), utility.Elastic{})
	for _, c := range []float64{5, 50, 100, 300} {
		b, r := m.BestEffort(c), m.Reservation(c)
		if math.Abs(b-r) > 1e-12 {
			t.Errorf("elastic: R(%g)=%v differs from B(%g)=%v", c, r, c, b)
		}
	}
}

// naiveTotalBestEffort recomputes V_B by long direct summation, bypassing
// the integral tail acceleration.
func naiveTotalBestEffort(m *Model, c float64) float64 {
	var sum float64
	for k := 1; k <= 6_000_000; k++ {
		sum += m.load.PMF(k) * float64(k) * m.util.Eval(c/float64(k))
	}
	return sum
}

func TestIntegralTailAccelerationMatchesNaiveSum(t *testing.T) {
	// The algebraic distribution exercises the dist.RealPMF tail path.
	m := model(t, algebraic(t, 3), utility.NewAdaptive())
	for _, c := range []float64{50, 100, 400} {
		fast := m.TotalBestEffort(c)
		slow := naiveTotalBestEffort(m, c)
		if math.Abs(fast-slow) > 2e-5*(1+slow) {
			t.Errorf("C=%g: accelerated %v vs naive %v", c, fast, slow)
		}
	}
}

func TestBandwidthGapDefinition(t *testing.T) {
	// B(C + Δ(C)) = R(C) by construction.
	for name, m := range allModels(t) {
		for _, c := range []float64{50, 100, 200} {
			r := m.Reservation(c)
			d, err := m.BandwidthGap(c)
			if err != nil {
				t.Fatalf("%s at C=%g: %v", name, c, err)
			}
			if d < 0 {
				t.Errorf("%s: negative gap at C=%g", name, c)
			}
			if d == 0 {
				continue
			}
			// For rigid utilities B(C) is a step function of capacity
			// (jumps at integer C), so require bracketing within one step
			// rather than exact equality.
			if lo := m.BestEffort(c + d - 1); lo > r+1e-6 {
				t.Errorf("%s: B(C+Δ−1) = %v exceeds R(C) = %v", name, lo, r)
			}
			if hi := m.BestEffort(c + d + 1); hi < r-1e-6 {
				t.Errorf("%s: B(C+Δ+1) = %v below R(C) = %v", name, hi, r)
			}
		}
	}
}

func TestGapsConsistent(t *testing.T) {
	m := model(t, exponential(t), rigid(t))
	b, r, delta, bw, err := m.Gaps(150)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(delta-(r-b)) > 1e-15 {
		t.Errorf("delta inconsistent: %v vs %v", delta, r-b)
	}
	want, err := m.BandwidthGap(150)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bw-want) > 1e-9 {
		t.Errorf("bandwidth gap inconsistent: %v vs %v", bw, want)
	}
}

func TestRigidFastPathMatchesGeneric(t *testing.T) {
	// Strip the Rigid type so the generic series path runs, and compare.
	type bareRigid struct{ utility.Function }
	r := rigid(t)
	for _, load := range []dist.Discrete{poisson(t), exponential(t), algebraic(t, 3)} {
		fast := model(t, load, r)
		slow := model(t, load, bareRigid{r})
		for _, c := range []float64{25, 99.5, 100, 250} {
			if a, b := fast.TotalBestEffort(c), slow.TotalBestEffort(c); math.Abs(a-b) > 1e-6*(1+b) {
				t.Errorf("%T B at C=%g: fast %v vs generic %v", load, c, a, b)
			}
			if a, b := fast.TotalReservation(c), slow.TotalReservation(c); math.Abs(a-b) > 1e-6*(1+b) {
				t.Errorf("%T R at C=%g: fast %v vs generic %v", load, c, a, b)
			}
		}
	}
}

// --- Paper headline numbers (Figures 2–4) ---

func TestPaperPoissonRigidPeaks(t *testing.T) {
	// Fig 2a/2b: δ peaks near 0.8 and Δ peaks near 80 below C = k̄, and
	// both vanish extremely fast for C > k̄.
	m := model(t, poisson(t), rigid(t))
	var maxDelta, maxGap float64
	for c := 5.0; c <= 140; c += 5 {
		d := m.PerformanceGap(c)
		if d > maxDelta {
			maxDelta = d
		}
		g, err := m.BandwidthGap(c)
		if err != nil {
			t.Fatal(err)
		}
		if g > maxGap {
			maxGap = g
		}
	}
	if maxDelta < 0.7 || maxDelta > 0.9 {
		t.Errorf("Poisson/rigid δ peak = %v, paper ≈ 0.8", maxDelta)
	}
	if maxGap < 60 || maxGap > 100 {
		t.Errorf("Poisson/rigid Δ peak = %v, paper ≈ 80", maxGap)
	}
	// Superexponential vanishing beyond k̄.
	if d := m.PerformanceGap(200); d > 1e-10 {
		t.Errorf("Poisson/rigid δ(2k̄) = %v, paper < 1e-15", d)
	}
}

func TestPaperExponentialRigidGapValues(t *testing.T) {
	// §3.3: δ(2k̄) ≈ .27 and δ(4k̄) ≈ .07 for exponential load and rigid
	// applications.
	m := model(t, exponential(t), rigid(t))
	if d := m.PerformanceGap(200); math.Abs(d-0.27) > 0.03 {
		t.Errorf("exp/rigid δ(200) = %v, paper ≈ 0.27", d)
	}
	if d := m.PerformanceGap(400); math.Abs(d-0.07) > 0.02 {
		t.Errorf("exp/rigid δ(400) = %v, paper ≈ 0.07", d)
	}
}

func TestPaperExponentialRigidGapGrowsLogarithmically(t *testing.T) {
	// Δ(C) ≈ ln(1 + βC)/β for large C: monotone increasing, with ratios
	// matching the log law.
	m := model(t, exponential(t), rigid(t))
	beta := math.Log(1.01)
	prev := 0.0
	var gaps []float64
	for _, c := range []float64{200, 400, 800, 1600} {
		g, err := m.BandwidthGap(c)
		if err != nil {
			t.Fatal(err)
		}
		if g <= prev {
			t.Errorf("exp/rigid Δ(%g) = %v not increasing (prev %v)", c, g, prev)
		}
		prev = g
		gaps = append(gaps, g)
	}
	// The continuum law is asymptotic; at C = 16k̄ the discrete value is
	// within a few percent.
	want := math.Log(1+beta*1600) / beta
	if g := gaps[len(gaps)-1]; math.Abs(g-want) > 0.12*want {
		t.Errorf("exp/rigid Δ(1600) = %v, continuum law ≈ %v", g, want)
	}
	// Increments match the log law too: Δ(1600) − Δ(800) ≈ ln(·)/β.
	wantInc := math.Log((1+beta*1600)/(1+beta*800)) / beta
	if inc := gaps[3] - gaps[2]; math.Abs(inc-wantInc) > 0.3*wantInc {
		t.Errorf("exp/rigid Δ increment = %v, log law ≈ %v", inc, wantInc)
	}
}

func TestPaperExponentialAdaptiveGapShrinks(t *testing.T) {
	// Fig 3d/3e: with adaptive applications the peak δ is reduced by about
	// a factor of 10, δ(2k̄) < .01, δ(4k̄) < .001, and Δ(C) peaks (≈9)
	// and then decreases for C > k̄.
	m := model(t, exponential(t), utility.NewAdaptive())
	if d := m.PerformanceGap(200); d >= 0.01 {
		t.Errorf("exp/adaptive δ(200) = %v, paper < .01", d)
	}
	if d := m.PerformanceGap(400); d >= 0.001 {
		t.Errorf("exp/adaptive δ(400) = %v, paper < .001", d)
	}
	gPeak := 0.0
	for c := 20.0; c <= 120; c += 10 {
		g, err := m.BandwidthGap(c)
		if err != nil {
			t.Fatal(err)
		}
		if g > gPeak {
			gPeak = g
		}
	}
	if gPeak < 4 || gPeak > 15 {
		t.Errorf("exp/adaptive Δ peak = %v, paper ≈ 9", gPeak)
	}
	g300, err := m.BandwidthGap(300)
	if err != nil {
		t.Fatal(err)
	}
	if g300 >= gPeak {
		t.Errorf("exp/adaptive Δ(300) = %v should fall below the peak %v", g300, gPeak)
	}
}

func TestPaperAlgebraicRigidGapValues(t *testing.T) {
	// Fig 4a: δ(2k̄) ≈ .20 and δ(4k̄) ≈ .10 for z = 3 (both read off the
	// published figure, so tolerances are loose; the asymptotic invariant
	// δ ∝ 1/C is checked tightly below).
	m := model(t, algebraic(t, 3), rigid(t))
	if d := m.PerformanceGap(200); math.Abs(d-0.20) > 0.05 {
		t.Errorf("alg/rigid δ(200) = %v, paper ≈ .20", d)
	}
	if d := m.PerformanceGap(400); d < 0.08 || d > 0.18 {
		t.Errorf("alg/rigid δ(400) = %v, paper figure ≈ .10", d)
	}
	// For z = 3 the tail gives δ(C) ∝ 1/C asymptotically: the ratio
	// δ(16k̄)/δ(32k̄) approaches 2.
	ratio := m.PerformanceGap(1600) / m.PerformanceGap(3200)
	if math.Abs(ratio-2) > 0.25 {
		t.Errorf("alg/rigid δ(1600)/δ(3200) = %v, want → 2", ratio)
	}
}

func TestPaperAlgebraicRigidGapLinear(t *testing.T) {
	// Fig 4b and §3.3: Δ(C) grows linearly with slope ≈ 1 for z = 3
	// ((z−1)^(1/(z−2)) − 1 = 1).
	m := model(t, algebraic(t, 3), rigid(t))
	g400, err := m.BandwidthGap(400)
	if err != nil {
		t.Fatal(err)
	}
	g800, err := m.BandwidthGap(800)
	if err != nil {
		t.Fatal(err)
	}
	slope := (g800 - g400) / 400
	if math.Abs(slope-1) > 0.3 {
		t.Errorf("alg/rigid Δ slope = %v, paper ≈ 1", slope)
	}
}

func TestPaperAlgebraicAdaptiveSlopeReduced(t *testing.T) {
	// Fig 4e: Δ(C) still linear but with slope reduced by a factor > 20.
	mr := model(t, algebraic(t, 3), rigid(t))
	ma := model(t, algebraic(t, 3), utility.NewAdaptive())
	gr800, err := mr.BandwidthGap(800)
	if err != nil {
		t.Fatal(err)
	}
	gr400, err := mr.BandwidthGap(400)
	if err != nil {
		t.Fatal(err)
	}
	ga800, err := ma.BandwidthGap(800)
	if err != nil {
		t.Fatal(err)
	}
	ga400, err := ma.BandwidthGap(400)
	if err != nil {
		t.Fatal(err)
	}
	slopeR := (gr800 - gr400) / 400
	slopeA := (ga800 - ga400) / 400
	if slopeA <= 0 {
		t.Fatalf("alg/adaptive slope = %v, want positive", slopeA)
	}
	if ratio := slopeR / slopeA; ratio < 10 {
		t.Errorf("slope ratio rigid/adaptive = %v, paper > 20", ratio)
	}
}

func TestKMaxMatchesUtility(t *testing.T) {
	m := model(t, poisson(t), rigid(t))
	prop := func(seed uint32) bool {
		c := float64(seed%100000)/100 + 1
		want, ok := utility.KMax(m.util, c)
		return ok && m.KMax(c) == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFixedLoadTotal(t *testing.T) {
	m := model(t, poisson(t), rigid(t))
	if got := m.FixedLoadTotal(10, 5); got != 5 {
		t.Errorf("V(5) at C=10: %v", got)
	}
	if got := m.FixedLoadTotal(10, 11); got != 0 {
		t.Errorf("V(11) at C=10: %v", got)
	}
}

// naiveTotalReservation recomputes V_R by direct summation.
func naiveTotalReservation(m *Model, c float64) float64 {
	kmax := m.KMax(c)
	var sum float64
	for k := 1; k <= kmax; k++ {
		sum += m.load.PMF(k) * float64(k) * m.util.Eval(c/float64(k))
	}
	sum += float64(kmax) * m.util.Eval(c/float64(kmax)) * m.load.TailProb(kmax)
	return sum
}

func TestTotalsMatchNaiveAcrossLoads(t *testing.T) {
	// Every acceleration path (rigid fast path, integral tails, reservation
	// head break) agrees with plain summation.
	for name, m := range allModels(t) {
		for _, c := range []float64{30, 100, 250, 700} {
			slowB := naiveTotalBestEffort(m, c)
			if fast := m.TotalBestEffort(c); math.Abs(fast-slowB) > 3e-5*(1+slowB) {
				t.Errorf("%s: V_B(%g) fast %v vs naive %v", name, c, fast, slowB)
			}
			slowR := naiveTotalReservation(m, c)
			if fast := m.TotalReservation(c); math.Abs(fast-slowR) > 3e-5*(1+slowR) {
				t.Errorf("%s: V_R(%g) fast %v vs naive %v", name, c, fast, slowR)
			}
		}
	}
}
