package core

import (
	"math"
	"testing"
	"testing/quick"

	"beqos/internal/dist"
	"beqos/internal/utility"
)

// propertyModels builds a small zoo of models indexed by seed, reused
// across the quick properties below (model construction is the expensive
// part).
func propertyModels(t *testing.T) []*Model {
	t.Helper()
	var models []*Model
	rigidFn := rigid(t)
	ramp, err := utility.NewRamp(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, load := range []dist.Discrete{poisson(t), exponential(t), algebraic(t, 3), algebraic(t, 2.5)} {
		for _, util := range []utility.Function{rigidFn, utility.NewAdaptive(), ramp} {
			models = append(models, model(t, load, util))
		}
	}
	return models
}

func TestPropertyReservationDominates(t *testing.T) {
	models := propertyModels(t)
	prop := func(seedM uint32, seedC float64) bool {
		m := models[int(seedM)%len(models)]
		c := math.Mod(math.Abs(seedC), 2000)
		b, r := m.BestEffort(c), m.Reservation(c)
		return r >= b-1e-9 && b >= -1e-12 && r <= 1+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyBestEffortMonotone(t *testing.T) {
	models := propertyModels(t)
	prop := func(seedM uint32, seedC, seedD float64) bool {
		m := models[int(seedM)%len(models)]
		c := math.Mod(math.Abs(seedC), 1000)
		d := math.Mod(math.Abs(seedD), 500)
		return m.BestEffort(c+d) >= m.BestEffort(c)-1e-9 &&
			m.Reservation(c+d) >= m.Reservation(c)-1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyBandwidthGapNonnegativeAndSolving(t *testing.T) {
	models := propertyModels(t)
	prop := func(seedM uint32, seedC float64) bool {
		m := models[int(seedM)%len(models)]
		c := 10 + math.Mod(math.Abs(seedC), 400)
		g, err := m.BandwidthGap(c)
		if err != nil || g < 0 {
			return false
		}
		if g == 0 {
			return true
		}
		// Bracketing within one step (rigid utilities step at integers).
		r := m.Reservation(c)
		return m.BestEffort(c+g-1) <= r+1e-6 && m.BestEffort(c+g+1) >= r-1e-6
	}
	cfg := &quick.Config{MaxCount: 40} // gap solving is the pricey part
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertySamplingOneEqualsBasic(t *testing.T) {
	models := propertyModels(t)
	prop := func(seedM uint32, seedC float64) bool {
		m := models[int(seedM)%len(models)]
		c := 1 + math.Mod(math.Abs(seedC), 600)
		sp, err := NewSampling(m, 1)
		if err != nil {
			return false
		}
		return math.Abs(sp.BestEffort(c)-m.BestEffort(c)) < 1e-7 &&
			math.Abs(sp.Reservation(c)-m.Reservation(c)) < 1e-7
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertySamplingMonotoneInS(t *testing.T) {
	m := model(t, exponential(t), utility.NewAdaptive())
	sps := make([]*Sampling, 0, 4)
	for _, s := range []int{1, 2, 4, 8} {
		sp, err := NewSampling(m, s)
		if err != nil {
			t.Fatal(err)
		}
		sps = append(sps, sp)
	}
	prop := func(seedC float64) bool {
		c := 1 + math.Mod(math.Abs(seedC), 600)
		prev := math.Inf(1)
		for _, sp := range sps {
			b := sp.BestEffort(c)
			if b > prev+1e-9 {
				return false
			}
			prev = b
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyKMaxOptimality(t *testing.T) {
	// The admitted count kmax is never worse than its neighbors in
	// fixed-load total utility.
	models := propertyModels(t)
	prop := func(seedM uint32, seedC float64) bool {
		m := models[int(seedM)%len(models)]
		c := 1 + math.Mod(math.Abs(seedC), 1000)
		k := m.KMax(c)
		v := m.FixedLoadTotal(c, k)
		return v >= m.FixedLoadTotal(c, k-1)-1e-12 &&
			v >= m.FixedLoadTotal(c, k+1)-1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyRetryBounded(t *testing.T) {
	m := model(t, algebraic(t, 3), utility.NewAdaptive())
	rt, err := NewRetry(m, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seedC float64) bool {
		c := 120 + math.Mod(math.Abs(seedC), 800)
		r, err := rt.Reservation(c)
		if err != nil {
			return false
		}
		fp, err := rt.Equilibrium(c)
		if err != nil {
			return false
		}
		// R̃ ∈ (0, 1]; the equilibrium load is inflated but consistent.
		return r > 0 && r <= 1+1e-9 &&
			fp.EffectiveMean >= kbar &&
			math.Abs(fp.EffectiveMean-kbar*(1+fp.Retries)) < 1e-3*fp.EffectiveMean
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
