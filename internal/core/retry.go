package core

import (
	"fmt"
	"math"
	"sync"

	"beqos/internal/dist"
	"beqos/internal/numeric"
)

// Retry is the paper's §5.2 extension: in the reservation-capable network a
// blocked flow does not give up (zero utility) but retries later, paying a
// utility penalty α per retry. Retries swell the offered load; the paper
// models the inflated load as the same distribution family with a larger
// mean L̂, determined self-consistently from the blocking it induces.
//
// A Retry caches equilibria and inflated distributions internally; the
// caches are guarded by a mutex, so a Retry is safe for concurrent use
// (equilibrium solves serialize, but the Model evaluations they feed do
// not).
type Retry struct {
	m     *Model
	fam   dist.Family
	alpha float64

	// mu guards every cache field below, including lastL.
	mu sync.Mutex
	// distCache memoizes WithMean results on a fine relative grid
	// (≈0.01%): the equilibrium solves visit smoothly varying means, and
	// family recalibration is the dominant cost.
	distCache  map[int64]dist.Discrete
	modelCache map[int64]*Model
	// eqCache memoizes equilibria by admission threshold, the only part of
	// the capacity that the fixed point depends on.
	eqCache map[int]FixedPoint
	eqErr   map[int]error
}

// NewRetry returns the retrying extension of the model with per-retry
// penalty alpha ≥ 0. The model's load distribution must belong to a
// mean-parameterized family (all the built-in distributions do).
func NewRetry(m *Model, alpha float64) (*Retry, error) {
	if !(alpha >= 0) {
		return nil, fmt.Errorf("core: retry penalty must be nonnegative, got %g", alpha)
	}
	fam, ok := dist.AsFamily(m.load)
	if !ok {
		return nil, fmt.Errorf("core: retry extension needs a mean-parameterized load family, got %T", m.load)
	}
	return &Retry{
		m: m, fam: fam, alpha: alpha,
		distCache:  make(map[int64]dist.Discrete),
		modelCache: make(map[int64]*Model),
		eqCache:    make(map[int]FixedPoint),
		eqErr:      make(map[int]error),
	}, nil
}

// Alpha returns the per-retry utility penalty.
func (rt *Retry) Alpha() float64 { return rt.alpha }

// Model returns the underlying basic model.
func (rt *Retry) Model() *Model { return rt.m }

// FixedPoint describes the self-consistent retry equilibrium at a capacity.
type FixedPoint struct {
	// EffectiveMean is L̂, the retry-inflated mean offered load.
	EffectiveMean float64
	// Blocking is θ, the per-attempt blocking rate at the inflated load.
	Blocking float64
	// Retries is D = θ/(1−θ), the expected number of retries per
	// original flow.
	Retries float64
}

// blockingRate returns the per-attempt blocking rate under load d with
// admission threshold kmax: E[(k − kmax)+]/E[k].
func blockingRate(d dist.Discrete, kmax int) float64 {
	if kmax <= 0 {
		return 1
	}
	blocked := d.TailMean(kmax) - float64(kmax)*d.TailProb(kmax)
	if blocked < 0 {
		blocked = 0
	}
	return blocked / d.Mean()
}

// meanKey quantizes a mean onto a fine relative grid for memoization.
func meanKey(mean float64) int64 {
	return int64(math.Round(math.Log(mean) * 8192))
}

// withMean returns the family recalibrated to (a quantized neighborhood of)
// the given mean. The caller must hold rt.mu.
func (rt *Retry) withMean(mean float64) (dist.Discrete, error) {
	key := meanKey(mean)
	if d, ok := rt.distCache[key]; ok {
		return d, nil
	}
	// Rebuild at the center of the quantization cell for determinism.
	center := math.Exp(float64(key) / 8192)
	d, err := rt.fam.WithMean(center)
	if err != nil {
		return nil, err
	}
	rt.distCache[key] = d
	return d, nil
}

// inflatedModel returns a Model over the quantized inflated distribution.
// The caller must hold rt.mu; core.New tabulates the inflated distribution,
// so every equilibrium's model gets the same O(1) evaluation paths as the
// base model's.
func (rt *Retry) inflatedModel(mean float64) (*Model, error) {
	key := meanKey(mean)
	if m, ok := rt.modelCache[key]; ok {
		return m, nil
	}
	d, err := rt.withMean(mean)
	if err != nil {
		return nil, err
	}
	m, err := New(d, rt.m.util)
	if err != nil {
		return nil, err
	}
	rt.modelCache[key] = m
	return m, nil
}

// Equilibrium solves the retry fixed point at capacity c:
// L̂ = k̄·(1 + D(L̂)) with D = θ/(1−θ) and θ the blocking rate of the
// family recalibrated to mean L̂. It fails when blocking is so severe that
// retries snowball without bound (a retry storm). Results are cached by
// admission threshold.
func (rt *Retry) Equilibrium(c float64) (FixedPoint, error) {
	kmax := rt.m.KMax(c)
	if kmax <= 0 {
		return FixedPoint{}, fmt.Errorf("core: capacity %g admits no flows; retry storm", c)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if fp, ok := rt.eqCache[kmax]; ok {
		return fp, nil
	}
	if err, ok := rt.eqErr[kmax]; ok {
		return FixedPoint{}, err
	}
	fp, err := rt.solveEquilibrium(kmax)
	if err != nil {
		rt.eqErr[kmax] = err
		return FixedPoint{}, err
	}
	rt.eqCache[kmax] = fp
	return fp, nil
}

// solveEquilibrium runs the damped fixed-point iteration; the caller must
// hold rt.mu.
func (rt *Retry) solveEquilibrium(kmax int) (FixedPoint, error) {
	thetaAt := func(l float64) (float64, error) {
		d, err := rt.withMean(l)
		if err != nil {
			return 0, err
		}
		return blockingRate(d, kmax), nil
	}
	// Damped fixed-point iteration L ← k̄(1 + D(L)). Starting from k̄ for
	// every threshold keeps the solve deterministic regardless of the order
	// capacities are visited (a warm start from a previous equilibrium
	// would make the converged value depend on solve order within the
	// iteration tolerance); converges quickly away from retry storms.
	l := rt.m.mean
	converged := false
	var theta float64
	for i := 0; i < 60; i++ {
		th, err := thetaAt(l)
		if err != nil {
			return FixedPoint{}, err
		}
		if th >= 0.95 {
			break // near-storm: switch to the robust bracketed solve
		}
		next := rt.m.mean * (1 + th/(1-th))
		if math.Abs(next-l) <= 1e-6*l {
			theta, l, converged = th, next, true
			break
		}
		l = 0.5*l + 0.5*next
	}
	if !converged {
		// Bracketed fallback: g(L) = L − k̄(1 + D(L)) crosses zero from
		// below at the fixed point (if one exists).
		g := func(l float64) float64 {
			th, err := thetaAt(l)
			if err != nil || th >= 1 {
				return math.Inf(-1)
			}
			return l - rt.m.mean*(1+th/(1-th))
		}
		lo := rt.m.mean
		hi := lo
		for i := 0; ; i++ {
			hi *= 2
			if g(hi) >= 0 {
				break
			}
			// Beyond ~8000 retries per flow the equilibrium is physically
			// meaningless: call it a storm.
			if i > 13 {
				return FixedPoint{}, fmt.Errorf("core: retry storm at kmax=%d: no fixed point below %g·k̄", kmax, hi/rt.m.mean)
			}
		}
		var err error
		l, err = numeric.Brent(g, lo, hi, 1e-6*lo)
		if err != nil {
			return FixedPoint{}, fmt.Errorf("core: retry fixed point at kmax=%d: %w", kmax, err)
		}
		theta, err = thetaAt(l)
		if err != nil {
			return FixedPoint{}, err
		}
		if theta >= 1 {
			return FixedPoint{}, fmt.Errorf("core: retry storm at kmax=%d", kmax)
		}
	}
	return FixedPoint{EffectiveMean: l, Blocking: theta, Retries: theta / (1 - theta)}, nil
}

// Reservation returns the per-original-flow utility of the
// reservation-capable network with retries:
//
//	R̃(C) = (1 + D)·R_{L̂}(C) − α·D
//
// where R_{L̂} is the basic per-attempt reservation utility under the
// inflated load. (Each original flow makes 1 + D attempts on average,
// exactly one of which is admitted; the per-attempt utility absorbs
// blocking, and each retry costs α.)
func (rt *Retry) Reservation(c float64) (float64, error) {
	fp, err := rt.Equilibrium(c)
	if err != nil {
		return 0, err
	}
	rt.mu.Lock()
	inflated, err := rt.inflatedModel(fp.EffectiveMean)
	rt.mu.Unlock()
	if err != nil {
		return 0, err
	}
	r := inflated.Reservation(c)
	return (1+fp.Retries)*r - rt.alpha*fp.Retries, nil
}

// BestEffort returns B(C): best-effort flows are never blocked, so retries
// do not arise and the basic model applies unchanged.
func (rt *Retry) BestEffort(c float64) float64 {
	return rt.m.BestEffort(c)
}

// PerformanceGap returns δ̃(C) = R̃(C) − B(C).
func (rt *Retry) PerformanceGap(c float64) (float64, error) {
	r, err := rt.Reservation(c)
	if err != nil {
		return 0, err
	}
	return r - rt.m.BestEffort(c), nil
}

// BandwidthGap returns Δ̃(C) solving B(C + Δ) = R̃(C).
func (rt *Retry) BandwidthGap(c float64) (float64, error) {
	r, err := rt.Reservation(c)
	if err != nil {
		return 0, err
	}
	b := rt.m.BestEffort(c)
	if r-b <= rt.m.tol {
		return 0, nil
	}
	f := func(delta float64) float64 { return rt.m.BestEffort(c+delta) - r }
	hi := math.Max(c, 1.0)
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("core: retry bandwidth gap diverges at C=%g", c)
		}
	}
	return numeric.Brent(f, 0, hi, 1e-9*(1+c))
}

// TotalReservation returns k̄·R̃(C) for the welfare model; capacities in a
// retry storm are worth zero welfare.
func (rt *Retry) TotalReservation(c float64) float64 {
	r, err := rt.Reservation(c)
	if err != nil {
		return 0
	}
	return rt.m.mean * r
}

// ProvisionReservation returns C_R(p) and W_R(p) under retries.
func (rt *Retry) ProvisionReservation(p float64) (Provision, error) {
	return maximizeWelfare(rt.TotalReservation, p, rt.m.mean)
}

// GammaEqualize returns the equalizing price ratio γ(p) with retries on the
// reservation side.
func (rt *Retry) GammaEqualize(p float64) (float64, error) {
	return gammaEqualize(rt.m.TotalBestEffort, rt.TotalReservation, p, rt.m.mean)
}
