package core

import (
	"math"
	"testing"

	"beqos/internal/utility"
)

func TestRetryValidation(t *testing.T) {
	m := model(t, algebraic(t, 3), utility.NewAdaptive())
	if _, err := NewRetry(m, -0.5); err == nil {
		t.Error("negative penalty should fail")
	}
	rt, err := NewRetry(m, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Alpha() != 0.1 || rt.Model() != m {
		t.Error("accessors broken")
	}
}

func TestRetryEquilibriumShape(t *testing.T) {
	m := model(t, algebraic(t, 3), utility.NewAdaptive())
	rt, err := NewRetry(m, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	prevTheta := 1.0
	for _, c := range []float64{150, 300, 600, 1200} {
		fp, err := rt.Equilibrium(c)
		if err != nil {
			t.Fatalf("C=%g: %v", c, err)
		}
		if fp.EffectiveMean < kbar {
			t.Errorf("C=%g: L̂ = %v below k̄", c, fp.EffectiveMean)
		}
		if !(fp.Blocking > 0 && fp.Blocking < 1) {
			t.Errorf("C=%g: θ = %v out of (0,1)", c, fp.Blocking)
		}
		if want := fp.Blocking / (1 - fp.Blocking); math.Abs(fp.Retries-want) > 1e-12 {
			t.Errorf("C=%g: D = %v, want θ/(1−θ) = %v", c, fp.Retries, want)
		}
		// Self-consistency: L̂ = k̄(1 + D).
		if want := kbar * (1 + fp.Retries); math.Abs(fp.EffectiveMean-want) > 1e-3*want {
			t.Errorf("C=%g: L̂ = %v, want k̄(1+D) = %v", c, fp.EffectiveMean, want)
		}
		// Blocking falls as capacity grows.
		if fp.Blocking >= prevTheta {
			t.Errorf("C=%g: θ = %v did not fall (prev %v)", c, fp.Blocking, prevTheta)
		}
		prevTheta = fp.Blocking
	}
}

func TestRetryStormAtTinyCapacity(t *testing.T) {
	m := model(t, algebraic(t, 3), rigid(t))
	rt, err := NewRetry(m, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Equilibrium(0.2); err == nil {
		t.Error("capacity admitting no flows should be a retry storm")
	}
	// Deeply undersized capacity: every flow is nearly always blocked and
	// retries snowball.
	if _, err := rt.Equilibrium(2); err == nil {
		t.Error("capacity 2 at mean load 100 should be a retry storm")
	}
}

func TestRetryBeatsBasicReservation(t *testing.T) {
	// With a modest penalty, eventually-admitted flows recover utility the
	// basic model wrote off as zero: R̃ > R where blocking is material.
	m := model(t, algebraic(t, 3), utility.NewAdaptive())
	rt, err := NewRetry(m, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{200, 400} {
		r, err := rt.Reservation(c)
		if err != nil {
			t.Fatal(err)
		}
		if base := m.Reservation(c); r <= base {
			t.Errorf("C=%g: R̃ = %v not above basic R = %v", c, r, base)
		}
		if r > 1 {
			t.Errorf("C=%g: R̃ = %v exceeds 1", c, r)
		}
	}
}

func TestRetryPenaltyMonotone(t *testing.T) {
	// Larger α → lower R̃.
	m := model(t, algebraic(t, 3), utility.NewAdaptive())
	prev := math.Inf(1)
	for _, alpha := range []float64{0, 0.1, 0.5, 1} {
		rt, err := NewRetry(m, alpha)
		if err != nil {
			t.Fatal(err)
		}
		r, err := rt.Reservation(300)
		if err != nil {
			t.Fatal(err)
		}
		if r > prev+1e-12 {
			t.Errorf("α=%g: R̃ = %v increased (prev %v)", alpha, r, prev)
		}
		prev = r
	}
}

func TestPaperRetryAlgebraicAmplifiesGap(t *testing.T) {
	// §5.2 (α = 0.1): the algebraic cases change significantly, with the
	// effects most apparent for C ≫ k̄; the paper reports the adaptive
	// performance gap at 4k̄ growing about tenfold (.027 vs .0025 — their
	// numbers are first-order in θ; our exact fixed point gives the same
	// ~10× amplification).
	m := model(t, algebraic(t, 3), utility.NewAdaptive())
	rt, err := NewRetry(m, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	dRetry, err := rt.PerformanceGap(400)
	if err != nil {
		t.Fatal(err)
	}
	dBasic := m.PerformanceGap(400)
	if ratio := dRetry / dBasic; ratio < 5 || ratio > 20 {
		t.Errorf("retry amplification at 4k̄ = %v, paper ≈ 10×", ratio)
	}
}

func TestPaperRetryPoissonMinimalEffect(t *testing.T) {
	// §5.2: "the Poisson and exponential cases show minimal effects of
	// retrying".
	m := model(t, poisson(t), rigid(t))
	rt, err := NewRetry(m, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{150, 200} {
		dRetry, err := rt.PerformanceGap(c)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(dRetry - m.PerformanceGap(c)); diff > 0.02 {
			t.Errorf("poisson/rigid retry effect at C=%g: %v, should be minimal", c, diff)
		}
	}
}

func TestPaperRetryGammaGrowsAsBandwidthCheapens(t *testing.T) {
	// §5.2: with retries in the algebraic case the γ(p) curve turns over
	// at very small p so that γ grows as bandwidth gets cheaper — "as
	// bandwidth gets cheaper, the advantage of reservation-capable
	// networks increases!"
	m := model(t, algebraic(t, 3), utility.NewAdaptive())
	rt, err := NewRetry(m, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := rt.GammaEqualize(0.1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := rt.GammaEqualize(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !(g2 > g1) {
		t.Errorf("retry γ should grow as p falls: γ(0.1)=%v γ(0.01)=%v", g1, g2)
	}
	// And it far exceeds the basic model's γ ≈ 1.02.
	gBasic, err := m.GammaEqualize(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !(g2 > gBasic+0.1) {
		t.Errorf("retry γ(0.01)=%v should far exceed basic %v", g2, gBasic)
	}
}

func TestRetryBandwidthGapExceedsBasic(t *testing.T) {
	m := model(t, algebraic(t, 3), utility.NewAdaptive())
	rt, err := NewRetry(m, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	c := 400.0
	gRetry, err := rt.BandwidthGap(c)
	if err != nil {
		t.Fatal(err)
	}
	gBasic, err := m.BandwidthGap(c)
	if err != nil {
		t.Fatal(err)
	}
	if gRetry <= gBasic {
		t.Errorf("retry Δ(%g) = %v not above basic %v", c, gRetry, gBasic)
	}
}

func TestRetryBestEffortUnchanged(t *testing.T) {
	m := model(t, exponential(t), rigid(t))
	rt, err := NewRetry(m, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{50, 200} {
		if rt.BestEffort(c) != m.BestEffort(c) {
			t.Errorf("best-effort side must be unaffected by retries at C=%g", c)
		}
	}
}
