package core

import (
	"fmt"
	"math"
	"sync"

	"beqos/internal/dist"
	"beqos/internal/numeric"
)

// Sampling is the paper's §5.1 extension: instead of experiencing a single
// static load level, a flow samples the load S times and its utility is
// determined by the worst (maximum) sample, modeling users who judge a call
// by its worst stretch. Each sample is drawn from the size-biased
// distribution Q(k) = k·P(k)/k̄ — the load as seen by an arriving flow.
//
// In the reservation-capable network the admission decision is made at the
// first sample (a flow arriving at load k > kmax is admitted with
// probability kmax/k), and admitted flows never see an effective load above
// kmax: subsequent samples are clipped there.
type Sampling struct {
	m *Model
	s int
	q dist.SizeBiased
	// kmaxOverride, when positive, fixes the admission threshold
	// independent of the utility function — the paper's footnote 9, which
	// notes that under sampling even *elastic* applications can benefit
	// from reservations if some finite kmax is imposed.
	kmaxOverride int
	// cdfQ lazily caches F_Q(k) for k = 0, 1, …; the size-biased CDF costs
	// a tail-moment evaluation per entry, and the series below walk it
	// sequentially for every capacity. Guarded by mu so a Sampling, like
	// the Model it extends, is safe for concurrent use.
	mu   sync.Mutex
	cdfQ []float64
}

// NewSampling returns the S-sample extension of the model; s ≥ 1.
// S = 1 reduces exactly to the basic model.
func NewSampling(m *Model, s int) (*Sampling, error) {
	if s < 1 {
		return nil, fmt.Errorf("core: sampling needs S ≥ 1, got %d", s)
	}
	q, err := dist.NewSizeBiased(m.load)
	if err != nil {
		return nil, fmt.Errorf("core: sampling: %w", err)
	}
	return &Sampling{m: m, s: s, q: q, cdfQ: []float64{0}}, nil
}

// NewSamplingWithKMax is NewSampling with an explicit admission threshold,
// enabling the footnote-9 analysis: with sampling, a reservation network
// capping concurrency at a hand-chosen kmax can outperform best-effort even
// for elastic utilities, whose standard kmax is infinite.
func NewSamplingWithKMax(m *Model, s, kmax int) (*Sampling, error) {
	if kmax < 1 {
		return nil, fmt.Errorf("core: sampling kmax must be ≥ 1, got %d", kmax)
	}
	sp, err := NewSampling(m, s)
	if err != nil {
		return nil, err
	}
	sp.kmaxOverride = kmax
	return sp, nil
}

// kmaxAt returns the admission threshold in effect at capacity c.
func (sp *Sampling) kmaxAt(c float64) (int, bool) {
	if sp.kmaxOverride > 0 {
		return sp.kmaxOverride, true
	}
	if !sp.m.inelastic {
		return 0, false
	}
	return sp.m.KMax(c), true
}

// S returns the number of samples.
func (sp *Sampling) S() int { return sp.s }

// Model returns the underlying basic model.
func (sp *Sampling) Model() *Model { return sp.m }

// fq returns F_Q(k), extending the cache as needed.
func (sp *Sampling) fq(k int) float64 {
	if k < 0 {
		return 0
	}
	sp.mu.Lock()
	for len(sp.cdfQ) <= k {
		sp.cdfQ = append(sp.cdfQ, sp.q.CDF(len(sp.cdfQ)))
	}
	v := sp.cdfQ[k]
	sp.mu.Unlock()
	return v
}

// BestEffort returns the per-flow utility of the best-effort-only network
// under S-sampling: B_S(C) = Σ_k Q_S(k)·π(C/k), with Q_S the max-of-S law
// of the size-biased load.
func (sp *Sampling) BestEffort(c float64) float64 {
	if c <= 0 {
		return 0
	}
	sExp := float64(sp.s)
	var sum numeric.KahanSum
	prevPow := 0.0
	for k := 1; ; k++ {
		fk := sp.fq(k)
		pow := math.Pow(fk, sExp)
		sum.Add((pow - prevPow) * sp.m.util.Eval(c/float64(k)))
		prevPow = pow
		// Remaining mass is 1 − F^S(k), each term weighted by at most
		// π(C/(k+1)).
		if bound := (1 - pow) * sp.m.util.Eval(c/float64(k+1)); bound <= sp.m.tol*(1+sum.Sum()) {
			break
		}
		if k > 1<<26 {
			break
		}
	}
	return sum.Sum()
}

// Reservation returns the per-flow utility of the reservation-capable
// network under S-sampling. Admitted flows with first sample k ≤ kmax have
// effective worst-case load max(k, clipped max of S−1 further samples),
// whose law below kmax is F_Q^S; all remaining admitted mass (including
// flows admitted from overloads with probability kmax/k) operates at
// exactly kmax.
func (sp *Sampling) Reservation(c float64) float64 {
	if c <= 0 {
		return 0
	}
	kmax, controlled := sp.kmaxAt(c)
	if !controlled {
		return sp.BestEffort(c)
	}
	if kmax <= 0 {
		return 0
	}
	sExp := float64(sp.s)
	var sum numeric.KahanSum
	prevPow := 0.0
	for k := 1; k < kmax; k++ {
		pow := math.Pow(sp.fq(k), sExp)
		sum.Add((pow - prevPow) * sp.m.util.Eval(c/float64(k)))
		prevPow = pow
	}
	piAtMax := sp.m.util.Eval(c / float64(kmax))
	// Atom at kmax among first-sample-admitted flows: F_Q(kmax) − F_Q^S(kmax−1).
	sum.Add(piAtMax * (sp.fq(kmax) - prevPow))
	// Flows arriving during overload (first sample k > kmax), admitted with
	// probability kmax/k: Σ_{k>kmax} Q(k)·kmax/k = kmax·P(K > kmax)/k̄.
	sum.Add(piAtMax * float64(kmax) * sp.m.load.TailProb(kmax) / sp.m.mean)
	return sum.Sum()
}

// PerformanceGap returns δ_S(C) = R_S(C) − B_S(C).
func (sp *Sampling) PerformanceGap(c float64) float64 {
	return sp.Reservation(c) - sp.BestEffort(c)
}

// BandwidthGap returns Δ_S(C) solving B_S(C + Δ) = R_S(C).
func (sp *Sampling) BandwidthGap(c float64) (float64, error) {
	r := sp.Reservation(c)
	b := sp.BestEffort(c)
	if r-b <= sp.m.tol {
		return 0, nil
	}
	f := func(delta float64) float64 { return sp.BestEffort(c+delta) - r }
	hi := math.Max(c, 1.0)
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("core: sampling bandwidth gap diverges at C=%g", c)
		}
	}
	return numeric.Brent(f, 0, hi, 1e-9*(1+c))
}

// TotalBestEffort returns k̄·B_S(C), the total-utility view used by the
// welfare model.
func (sp *Sampling) TotalBestEffort(c float64) float64 {
	return sp.m.mean * sp.BestEffort(c)
}

// TotalReservation returns k̄·R_S(C).
func (sp *Sampling) TotalReservation(c float64) float64 {
	return sp.m.mean * sp.Reservation(c)
}

// ProvisionBestEffort returns C_B(p) and W_B(p) under sampling.
func (sp *Sampling) ProvisionBestEffort(p float64) (Provision, error) {
	return maximizeWelfare(sp.TotalBestEffort, p, sp.m.mean)
}

// ProvisionReservation returns C_R(p) and W_R(p) under sampling.
func (sp *Sampling) ProvisionReservation(p float64) (Provision, error) {
	return maximizeWelfare(sp.TotalReservation, p, sp.m.mean)
}

// GammaEqualize returns the equalizing price ratio γ(p) under sampling.
func (sp *Sampling) GammaEqualize(p float64) (float64, error) {
	return gammaEqualize(sp.TotalBestEffort, sp.TotalReservation, p, sp.m.mean)
}
