package core

import (
	"math"
	"testing"

	"beqos/internal/utility"
)

func TestSamplingValidation(t *testing.T) {
	m := model(t, poisson(t), rigid(t))
	if _, err := NewSampling(m, 0); err == nil {
		t.Error("S = 0 should fail")
	}
	sp, err := NewSampling(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sp.S() != 3 || sp.Model() != m {
		t.Error("accessors broken")
	}
}

func TestSamplingOneReducesToBasicModel(t *testing.T) {
	// With S = 1 the sampling model must reproduce the basic model
	// exactly: the single sample is the size-biased load, and averaging
	// per-flow utility over Q(k) = k·P(k)/k̄ is identical to the
	// V/k̄ normalization of §3.1.
	for name, m := range allModels(t) {
		sp, err := NewSampling(m, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []float64{10, 50, 100, 200, 400} {
			if b1, b := sp.BestEffort(c), m.BestEffort(c); math.Abs(b1-b) > 1e-7 {
				t.Errorf("%s: B_1(%g) = %v vs B = %v", name, c, b1, b)
			}
			if r1, r := sp.Reservation(c), m.Reservation(c); math.Abs(r1-r) > 1e-7 {
				t.Errorf("%s: R_1(%g) = %v vs R = %v", name, c, r1, r)
			}
		}
	}
}

func TestSamplingReservationDominates(t *testing.T) {
	for name, m := range allModels(t) {
		for _, s := range []int{2, 5} {
			sp, err := NewSampling(m, s)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range []float64{25, 100, 300} {
				b, r := sp.BestEffort(c), sp.Reservation(c)
				if r < b-1e-9 {
					t.Errorf("%s S=%d: R_S(%g) = %v < B_S(%g) = %v", name, s, c, r, c, b)
				}
				if b < -1e-12 || r > 1+1e-9 {
					t.Errorf("%s S=%d: out of range at C=%g: B=%v R=%v", name, s, c, b, r)
				}
			}
		}
	}
}

func TestSamplingBestEffortDecreasesInS(t *testing.T) {
	// More samples → judged by a worse (higher) load → lower utility.
	m := model(t, exponential(t), utility.NewAdaptive())
	for _, c := range []float64{50, 150, 400} {
		prev := math.Inf(1)
		for _, s := range []int{1, 2, 4, 8, 16} {
			sp, err := NewSampling(m, s)
			if err != nil {
				t.Fatal(err)
			}
			b := sp.BestEffort(c)
			if b > prev+1e-9 {
				t.Errorf("B_S(%g) increased at S=%d: %v after %v", c, s, b, prev)
			}
			prev = b
		}
	}
}

func TestSamplingGapsGrowWithS(t *testing.T) {
	// §5.1: with both adaptive and rigid applications, the performance and
	// bandwidth gaps increase relative to the basic model for the
	// exponential and algebraic loads.
	for _, util := range []string{"rigid", "adaptive"} {
		for _, loadName := range []string{"exponential", "algebraic"} {
			m := allModels(t)[loadName+"/"+util]
			s1, err := NewSampling(m, 1)
			if err != nil {
				t.Fatal(err)
			}
			s5, err := NewSampling(m, 5)
			if err != nil {
				t.Fatal(err)
			}
			c := 200.0
			if d1, d5 := s1.PerformanceGap(c), s5.PerformanceGap(c); d5 <= d1 {
				t.Errorf("%s/%s: δ_5(%g) = %v not above δ_1 = %v", loadName, util, c, d5, d1)
			}
		}
	}
}

func TestPaperSamplingExponentialAdaptive(t *testing.T) {
	// §5.1 (S = 10): δ(2k̄) ≈ .21 (vs < .01 in the basic model), and the
	// bandwidth gap peaks around 2k̄ near C ≈ 1.5k̄ (vs a peak below .1k̄
	// in the basic model), yet still vanishes asymptotically.
	m := model(t, exponential(t), utility.NewAdaptive())
	sp, err := NewSampling(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d := sp.PerformanceGap(200); math.Abs(d-0.21) > 0.05 {
		t.Errorf("sampling exp/adaptive δ(200) = %v, paper ≈ .21", d)
	}
	if d := m.PerformanceGap(200); d >= 0.01 {
		t.Errorf("basic exp/adaptive δ(200) = %v, paper < .01", d)
	}
	var peakG, peakC float64
	for c := 40.0; c <= 400; c += 20 {
		g, gerr := sp.BandwidthGap(c)
		if gerr != nil {
			t.Fatal(gerr)
		}
		if g > peakG {
			peakG, peakC = g, c
		}
	}
	if peakG < 1.4*kbar || peakG > 2.6*kbar {
		t.Errorf("sampling Δ peak = %v, paper ≈ 2k̄", peakG)
	}
	if peakC < 1.0*kbar || peakC > 2.0*kbar {
		t.Errorf("sampling Δ peak at C = %v, paper ≈ 1.5k̄", peakC)
	}
	// Asymptotically the exponential gap still converges to zero.
	g8, err := sp.BandwidthGap(800)
	if err != nil {
		t.Fatal(err)
	}
	if g8 >= peakG/2 {
		t.Errorf("sampling Δ(800) = %v, should fall well below the peak %v", g8, peakG)
	}
}

func TestSamplingPoissonBarelyAffected(t *testing.T) {
	// §5.1: "Multiple samplings has little effect on the Poisson case
	// since this distribution results in very little variance in load."
	m := model(t, poisson(t), rigid(t))
	s1, err := NewSampling(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	s10, err := NewSampling(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{150, 200} {
		d1, d10 := s1.PerformanceGap(c), s10.PerformanceGap(c)
		if math.Abs(d10-d1) > 0.02 {
			t.Errorf("poisson/rigid: δ_10(%g) − δ_1(%g) = %v, should be small", c, c, d10-d1)
		}
	}
}

func TestSamplingGammaExceedsBasic(t *testing.T) {
	m := model(t, exponential(t), utility.NewAdaptive())
	sp, err := NewSampling(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := 0.05
	gBasic, err := m.GammaEqualize(p)
	if err != nil {
		t.Fatal(err)
	}
	gSamp, err := sp.GammaEqualize(p)
	if err != nil {
		t.Fatal(err)
	}
	if gSamp <= gBasic {
		t.Errorf("sampling γ(%g) = %v not above basic %v", p, gSamp, gBasic)
	}
}

func TestSamplingZeroCapacity(t *testing.T) {
	m := model(t, exponential(t), rigid(t))
	sp, err := NewSampling(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sp.BestEffort(0) != 0 || sp.Reservation(0) != 0 {
		t.Error("nonzero utility at zero capacity")
	}
}

func TestSamplingElasticCoincides(t *testing.T) {
	m := model(t, poisson(t), utility.Elastic{})
	sp, err := NewSampling(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{50, 150} {
		if b, r := sp.BestEffort(c), sp.Reservation(c); math.Abs(b-r) > 1e-12 {
			t.Errorf("elastic sampling: R(%g)=%v ≠ B(%g)=%v", c, r, c, b)
		}
	}
}
