package core

import (
	"fmt"
	"math"

	"beqos/internal/numeric"
)

// Provision is the outcome of the variable capacity model (§4): the
// welfare-maximizing capacity C(p) at unit bandwidth price p, and the
// resulting welfare W(p) = V(C(p)) − p·C(p).
type Provision struct {
	// Price is the unit bandwidth price p.
	Price float64
	// Capacity is the welfare-maximizing capacity C(p).
	Capacity float64
	// Welfare is W(p) = V(C(p)) − p·C(p).
	Welfare float64
}

// MaximizeWelfare maximizes value(C) − p·C over C ≥ 0, where value is an
// architecture's total-utility function bounded above by vmax (for π ≤ 1,
// vmax = k̄). The optimum lies in [0, vmax/p]; a log-spaced scan plus local
// refinement handles objectives that are stepped (rigid utilities) or span
// several decades of capacity. It is exported for reuse by the continuum
// model, which shares the §4 welfare machinery.
func MaximizeWelfare(value func(float64) float64, p, vmax float64) (Provision, error) {
	return maximizeWelfare(value, p, vmax)
}

func maximizeWelfare(value func(float64) float64, p, mean float64) (Provision, error) {
	if !(p > 0) {
		return Provision{}, fmt.Errorf("core: bandwidth price must be positive, got %g", p)
	}
	hi := mean / p
	if hi < 1 {
		hi = 1
	}
	obj := func(c float64) float64 { return value(c) - p*c }
	c, w := numeric.MaxScanLog(obj, 1e-3, hi, 320, 1e-6)
	if w <= 0 {
		// Providing no capacity (zero welfare) beats any paid capacity.
		return Provision{Price: p}, nil
	}
	return Provision{Price: p, Capacity: c, Welfare: w}, nil
}

// ProvisionBestEffort returns the best-effort-only provisioning decision at
// price p: C_B(p) and W_B(p).
func (m *Model) ProvisionBestEffort(p float64) (Provision, error) {
	return maximizeWelfare(m.TotalBestEffort, p, m.mean)
}

// ProvisionReservation returns the reservation-capable provisioning decision
// at price p: C_R(p) and W_R(p).
func (m *Model) ProvisionReservation(p float64) (Provision, error) {
	return maximizeWelfare(m.TotalReservation, p, m.mean)
}

// GammaEqualize returns the equalizing price ratio γ(p) = p̂/p, where p̂ is
// the bandwidth price at which the reservation-capable network's welfare
// falls to the best-effort network's welfare at price p:
// W_R(p̂) = W_B(p). γ quantifies how much more expensive
// reservation-capable bandwidth may be (e.g. due to architectural
// complexity) before best-effort becomes the more cost-effective choice.
//
// γ(p) ≥ 1 always (reservations weakly dominate at equal price). If both
// welfares are zero at p (bandwidth too expensive for either architecture),
// γ is reported as 1.
func (m *Model) GammaEqualize(p float64) (float64, error) {
	return gammaEqualize(m.TotalBestEffort, m.TotalReservation, p, m.mean)
}

// GammaFromValues computes the equalizing price ratio γ(p) for arbitrary
// architecture total-utility functions (best-effort and reservation), both
// bounded above by vmax. It is exported for reuse by the continuum model.
func GammaFromValues(valueB, valueR func(float64) float64, p, vmax float64) (float64, error) {
	return gammaEqualize(valueB, valueR, p, vmax)
}

// gammaEqualize implements GammaEqualize for arbitrary architecture value
// functions, shared with the sampling and retrying extensions.
func gammaEqualize(valueB, valueR func(float64) float64, p, mean float64) (float64, error) {
	pb, err := maximizeWelfare(valueB, p, mean)
	if err != nil {
		return 0, err
	}
	wantW := pb.Welfare
	wr := func(price float64) float64 {
		pr, perr := maximizeWelfare(valueR, price, mean)
		if perr != nil {
			return math.NaN()
		}
		return pr.Welfare
	}
	if wantW <= 0 {
		return 1, nil
	}
	// W_R is continuous and strictly decreasing in price while positive;
	// W_R(p) ≥ W_B(p), so the equalizing price is ≥ p. Expand the bracket
	// upward.
	g := func(price float64) float64 { return wr(price) - wantW }
	if g(p) < 0 {
		// Numerical degeneracy (the two architectures coincide): γ = 1.
		return 1, nil
	}
	hi := p * 2
	for g(hi) > 0 {
		hi *= 2
		if hi > p*1e9 {
			return 0, fmt.Errorf("core: equalizing price beyond %g·p", 1e9)
		}
	}
	phat, err := numeric.Brent(g, p, hi, 1e-9*p)
	if err != nil {
		return 0, err
	}
	return phat / p, nil
}
