package core

import (
	"math"
	"testing"

	"beqos/internal/utility"
)

func TestProvisionRejectsBadPrice(t *testing.T) {
	m := model(t, poisson(t), rigid(t))
	if _, err := m.ProvisionBestEffort(0); err == nil {
		t.Error("zero price should fail")
	}
	if _, err := m.ProvisionReservation(-1); err == nil {
		t.Error("negative price should fail")
	}
}

func TestWelfareBasicShape(t *testing.T) {
	// For every model: W_R(p) ≥ W_B(p) ≥ 0, both weakly decreasing in p,
	// and C·p ≤ k̄ at the optimum (capacity is never bought beyond its
	// possible value).
	for name, m := range allModels(t) {
		prevB, prevR := math.Inf(1), math.Inf(1)
		for _, p := range []float64{0.01, 0.05, 0.2, 0.5} {
			pb, err := m.ProvisionBestEffort(p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			pr, err := m.ProvisionReservation(p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if pb.Welfare < 0 || pr.Welfare < pb.Welfare-1e-6 {
				t.Errorf("%s p=%g: W_B=%v W_R=%v violates 0 ≤ W_B ≤ W_R",
					name, p, pb.Welfare, pr.Welfare)
			}
			if pb.Welfare > prevB+1e-6 || pr.Welfare > prevR+1e-6 {
				t.Errorf("%s p=%g: welfare not decreasing in price", name, p)
			}
			prevB, prevR = pb.Welfare, pr.Welfare
			if pb.Capacity*p > m.MeanLoad()+1e-6 {
				t.Errorf("%s p=%g: spent %v exceeds max possible utility",
					name, p, pb.Capacity*p)
			}
		}
	}
}

func TestGammaAtLeastOne(t *testing.T) {
	for name, m := range allModels(t) {
		for _, p := range []float64{0.01, 0.1} {
			g, err := m.GammaEqualize(p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if g < 1-1e-9 {
				t.Errorf("%s: γ(%g) = %v < 1", name, p, g)
			}
		}
	}
}

func TestPaperPoissonRigidGamma(t *testing.T) {
	// §4: "The price ratio that makes two architectures equivalent varies,
	// for most values of p, between 1.1 and 1.2" and provisioning stays
	// below 1.4k̄ for all but the smallest prices.
	m := model(t, poisson(t), rigid(t))
	for _, p := range []float64{0.05, 0.1, 0.3} {
		g, err := m.GammaEqualize(p)
		if err != nil {
			t.Fatal(err)
		}
		if g < 1.05 || g > 1.25 {
			t.Errorf("poisson/rigid γ(%g) = %v, paper ≈ 1.1–1.2", p, g)
		}
		pb, err := m.ProvisionBestEffort(p)
		if err != nil {
			t.Fatal(err)
		}
		if pb.Capacity > 1.4*kbar {
			t.Errorf("poisson/rigid C_B(%g) = %v, paper < 1.4k̄", p, pb.Capacity)
		}
	}
}

func TestPaperPoissonAdaptiveGammaNearOne(t *testing.T) {
	// §4: with adaptive applications under Poisson load the equalizing
	// ratio is effectively 1 for all but the highest prices.
	m := model(t, poisson(t), utility.NewAdaptive())
	for _, p := range []float64{0.01, 0.1} {
		g, err := m.GammaEqualize(p)
		if err != nil {
			t.Fatal(err)
		}
		if g > 1.01 {
			t.Errorf("poisson/adaptive γ(%g) = %v, paper ≈ 1", p, g)
		}
	}
}

func TestPaperAlgebraicRigidGammaApproachesTwo(t *testing.T) {
	// §4: for algebraic load with rigid applications,
	// γ(p) → (z−1)^(1/(z−2)) = 2 for z = 3 as p → 0, and γ does NOT
	// converge to 1 (the architectural advantage persists no matter how
	// cheap bandwidth becomes).
	m := model(t, algebraic(t, 3), rigid(t))
	g, err := m.GammaEqualize(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-2) > 0.15 {
		t.Errorf("alg/rigid γ(0.001) = %v, paper → 2", g)
	}
	gSmaller, err := m.GammaEqualize(1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gSmaller-2) > math.Abs(g-2)+1e-3 {
		t.Errorf("alg/rigid γ not converging to 2: γ(1e-3)=%v γ(1e-4)=%v", g, gSmaller)
	}
}

func TestPaperAlgebraicAdaptiveGammaSmallButAboveOne(t *testing.T) {
	// §4: "In the discrete case, γ(p) is approximately 1.02 as p
	// approaches zero" for algebraic load with adaptive applications.
	m := model(t, algebraic(t, 3), utility.NewAdaptive())
	g, err := m.GammaEqualize(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if g < 1.005 || g > 1.06 {
		t.Errorf("alg/adaptive γ(0.001) = %v, paper ≈ 1.02", g)
	}
}

func TestPaperExponentialGammaConvergesToOne(t *testing.T) {
	// §4: for exponential (and Poisson) loads the equalizing ratio
	// converges to 1 as bandwidth becomes cheap.
	m := model(t, exponential(t), rigid(t))
	g1, err := m.GammaEqualize(1e-2)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m.GammaEqualize(1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if !(g2 < g1) {
		t.Errorf("exp/rigid γ should decrease toward 1: γ(1e-2)=%v γ(1e-4)=%v", g1, g2)
	}
	if g2 > 1.35 {
		t.Errorf("exp/rigid γ(1e-4) = %v, should be approaching 1", g2)
	}
}

func TestExpensiveBandwidthZeroWelfare(t *testing.T) {
	// At prices above the maximum marginal utility, building any network
	// loses money; γ is reported as 1.
	m := model(t, exponential(t), rigid(t))
	pb, err := m.ProvisionBestEffort(5)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Welfare != 0 || pb.Capacity != 0 {
		t.Errorf("W_B(5) = %+v, want zero provisioning", pb)
	}
	g, err := m.GammaEqualize(5)
	if err != nil {
		t.Fatal(err)
	}
	if g != 1 {
		t.Errorf("γ(5) = %v, want 1 (degenerate)", g)
	}
}
