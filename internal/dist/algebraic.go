package dist

import (
	"fmt"
	"math"

	"beqos/internal/numeric"
)

// Algebraic is the paper's discrete algebraic (power-law) load distribution,
//
//	P(k) = ν / (λ + k^z),  k ≥ 1,
//
// with tail power z > 2 so the mean is finite. The two-parameter form lets
// the mean vary while holding the asymptotic power-law tail ν·k^(−z) fixed,
// exactly as the paper describes ("k^(−z) versus ν/(λ+k^z)"): λ perturbs
// the distribution only at low k. This form reproduces the paper's Figure 4
// values (δ ≈ .20 at C = 2k̄ and ≈ .10 at C = 4k̄ for z = 3), which the
// shifted form ν(λ+k)^(−z) does not.
//
// Moments and tails have no closed form; they are computed once at
// construction as exact backward partial sums up to a switch point far past
// the low-k perturbation, closed with a midpoint-rule integral for the
// smooth remainder (relative error ≲ 10⁻⁷ of the remainder itself).
type Algebraic struct {
	z, lambda float64
	norm      float64 // ν
	// suffix0[m] = Σ_{k=m}^{kts} (λ+k^z)^(−1), suffix1 likewise with a k
	// factor, suffix2 with k². Index 1 … kts+1 (entry kts+1 is 0).
	suffix0, suffix1, suffix2 []float64
	tail0, tail1, tail2       float64 // integrals beyond kts
	kts                       int
	mean                      float64
}

// NewAlgebraic returns the algebraic distribution with tail power z > 2 and
// shift lambda ≥ 0.
func NewAlgebraic(z, lambda float64) (Algebraic, error) {
	if !(z > 2) {
		return Algebraic{}, fmt.Errorf("dist: algebraic tail power must exceed 2 for a finite mean, got %g", z)
	}
	if !(lambda >= 0) || math.IsInf(lambda, 0) {
		return Algebraic{}, fmt.Errorf("dist: algebraic shift must be nonnegative and finite, got %g", lambda)
	}
	a := Algebraic{z: z, lambda: lambda}
	// The perturbation matters for k^z ≲ λ, i.e. k ≲ λ^(1/z); switch to the
	// integral tail well beyond that and beyond the midpoint-error floor.
	// For very large λ the PMF is essentially flat on the unit scale
	// everywhere, so the midpoint integral is accurate from a small fixed
	// switch point and the summed prefix can stay short (the tail is then
	// evaluated by quadrature rather than the series).
	scale := math.Pow(lambda+1, 1/z)
	kts := 2048
	if 16*scale <= 1<<17 {
		kts = int(16*scale) + 2048
	}
	a.kts = kts
	a.tail0 = algTailIntegral(lambda, z, 0, float64(kts)+0.5)
	a.tail1 = algTailIntegral(lambda, z, 1, float64(kts)+0.5)
	if z > 3 {
		a.tail2 = algTailIntegral(lambda, z, 2, float64(kts)+0.5)
	} else {
		a.tail2 = math.Inf(1)
	}
	a.suffix0 = make([]float64, kts+2)
	a.suffix1 = make([]float64, kts+2)
	a.suffix2 = make([]float64, kts+2)
	a.suffix2[kts+1] = 0
	for k := kts; k >= 1; k-- {
		kf := float64(k)
		fk := 1 / (lambda + math.Pow(kf, z))
		a.suffix0[k] = a.suffix0[k+1] + fk
		a.suffix1[k] = a.suffix1[k+1] + kf*fk
		a.suffix2[k] = a.suffix2[k+1] + kf*kf*fk
	}
	a.norm = 1 / (a.suffix0[1] + a.tail0)
	a.mean = a.norm * (a.suffix1[1] + a.tail1)
	return a, nil
}

// NewAlgebraicMean returns the algebraic distribution with tail power z,
// with λ calibrated so the mean equals the given value. The achievable
// means start at ζ(z−1)/ζ(z) (the λ = 0 pure power law); smaller requests
// are an error.
func NewAlgebraicMean(z, mean float64) (Algebraic, error) {
	if !(z > 2) {
		return Algebraic{}, fmt.Errorf("dist: algebraic tail power must exceed 2, got %g", z)
	}
	minMean := numeric.RiemannZeta(z-1) / numeric.RiemannZeta(z)
	if !(mean >= minMean) {
		return Algebraic{}, fmt.Errorf("dist: algebraic(z=%g) mean must be ≥ %.6g, got %g", z, minMean, mean)
	}
	meanAt := func(lambda float64) float64 {
		d, err := NewAlgebraic(z, lambda)
		if err != nil {
			return math.NaN()
		}
		return d.Mean()
	}
	// The continuum limit gives mean ≈ λ^(1/z)·sin(π/z)/sin(2π/z) for large
	// λ; use it as a warm start for a secant iteration, falling back to a
	// bracketed Brent solve if the secant wanders.
	ratio := math.Sin(math.Pi/z) / math.Sin(2*math.Pi/z)
	l0 := math.Pow(mean/ratio, z)
	l1 := l0 * 1.05
	f0, f1 := meanAt(l0)-mean, meanAt(l1)-mean
	for i := 0; i < 24 && f1 != f0; i++ {
		if math.Abs(f1) <= 1e-10*mean {
			return NewAlgebraic(z, l1)
		}
		next := l1 - f1*(l1-l0)/(f1-f0)
		if !(next >= 0) || math.IsNaN(next) || next > 1e18 {
			break
		}
		l0, f0 = l1, f1
		l1 = next
		f1 = meanAt(l1) - mean
	}
	if math.Abs(f1) <= 1e-10*mean {
		return NewAlgebraic(z, l1)
	}
	// Fallback: bracket geometrically and solve with Brent.
	hi := math.Pow(mean, z)*4 + 4
	for meanAt(hi) < mean {
		hi *= 4
		if hi > 1e18 {
			return Algebraic{}, fmt.Errorf("dist: cannot bracket algebraic mean %g", mean)
		}
	}
	lambda, err := numeric.Brent(func(l float64) float64 { return meanAt(l) - mean }, 0, hi, 1e-7)
	if err != nil {
		return Algebraic{}, fmt.Errorf("dist: calibrating algebraic mean: %w", err)
	}
	return NewAlgebraic(z, lambda)
}

// Z returns the tail power z.
func (a Algebraic) Z() float64 { return a.z }

// Lambda returns the shift parameter λ.
func (a Algebraic) Lambda() float64 { return a.lambda }

// PMF returns P(k).
func (a Algebraic) PMF(k int) float64 {
	if k < 1 {
		return 0
	}
	return a.norm / (a.lambda + math.Pow(float64(k), a.z))
}

// CDF returns P(K ≤ k).
func (a Algebraic) CDF(k int) float64 {
	if k < 1 {
		return 0
	}
	return 1 - a.TailProb(k)
}

// Mean returns the calibrated mean load.
func (a Algebraic) Mean() float64 { return a.mean }

// tailSum returns Σ_{j>k} j^pow·P(j)/ν using the precomputed suffixes for
// k below the switch point and the midpoint integral beyond.
func (a Algebraic) tailSum(k, pow int) float64 {
	if k < 1 {
		k = 0
	}
	if k < a.kts {
		var s, t float64
		switch pow {
		case 0:
			s, t = a.suffix0[k+1], a.tail0
		case 1:
			s, t = a.suffix1[k+1], a.tail1
		default:
			s, t = a.suffix2[k+1], a.tail2
		}
		return s + t
	}
	return algTailIntegral(a.lambda, a.z, pow, float64(k)+0.5)
}

// algTailIntegral returns ∫_M^∞ x^pow/(λ+x^z) dx. When λ·M^(−z) is small
// it uses the expansion 1/(λ+x^z) = x^(−z)·Σ_j (−λ x^(−z))^j (five terms
// reach near machine precision at the switch point's 16^(−z) ratio);
// otherwise it falls back to quadrature with the substitution scaled to the
// tail's decay scale λ^(1/z).
func algTailIntegral(lambda, z float64, pow int, m float64) float64 {
	if lambda*math.Pow(m, -z) > 1e-4 {
		scale := math.Max(m, math.Pow(lambda, 1/z))
		return numeric.IntegrateToInfScaled(func(x float64) float64 {
			return math.Pow(x, float64(pow)) / (lambda + math.Pow(x, z))
		}, m, scale, 1e-15)
	}
	var sum, coef float64
	coef = 1
	for j := 0; j < 5; j++ {
		expo := float64(j+1)*z - float64(pow) - 1
		sum += coef * math.Pow(m, -expo) / expo
		coef *= -lambda
	}
	return sum
}

// TailProb returns P(K > k).
func (a Algebraic) TailProb(k int) float64 {
	if k < 1 {
		return 1
	}
	return a.norm * a.tailSum(k, 0)
}

// TailMean returns Σ_{j>k} j·P(j).
func (a Algebraic) TailMean(k int) float64 {
	return a.norm * a.tailSum(k, 1)
}

// SquareTailMean returns Σ_{j>k} j²·P(j). It is +Inf when z ≤ 3, where the
// second moment genuinely diverges.
func (a Algebraic) SquareTailMean(k int) float64 {
	if a.z <= 3 {
		return math.Inf(1)
	}
	return a.norm * a.tailSum(k, 2)
}

// Quantile returns the smallest k with CDF(k) ≥ p.
func (a Algebraic) Quantile(p float64) int {
	return quantileByScan(a, p, int(a.mean)+1)
}

// WithMean implements Family: same tail power z, recalibrated λ.
func (a Algebraic) WithMean(mean float64) (Discrete, error) {
	d, err := NewAlgebraicMean(a.z, mean)
	if err != nil {
		return nil, err
	}
	return d, nil
}
