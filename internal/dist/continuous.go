package dist

import (
	"fmt"
	"math"
)

// Continuous is a probability density over continuous load levels k ≥ 0,
// used by the paper's continuum model (§3.2).
type Continuous interface {
	// PDF returns the density p(x).
	PDF(x float64) float64
	// CDF returns P(K ≤ x).
	CDF(x float64) float64
	// Mean returns ∫ x p(x) dx.
	Mean() float64
	// TailProb returns P(K > x).
	TailProb(x float64) float64
	// TailMean returns ∫_x^∞ t p(t) dt.
	TailMean(x float64) float64
}

// ExpDensity is the continuum exponential load density p(k) = β e^(−βk),
// k ≥ 0, with mean 1/β.
type ExpDensity struct {
	beta float64
}

// NewExpDensity returns the exponential density with rate beta > 0.
func NewExpDensity(beta float64) (ExpDensity, error) {
	if !(beta > 0) {
		return ExpDensity{}, fmt.Errorf("dist: continuum exponential rate must be positive, got %g", beta)
	}
	return ExpDensity{beta: beta}, nil
}

// Beta returns the rate β.
func (e ExpDensity) Beta() float64 { return e.beta }

// PDF returns β e^(−βx) for x ≥ 0.
func (e ExpDensity) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.beta * math.Exp(-e.beta*x)
}

// CDF returns 1 − e^(−βx).
func (e ExpDensity) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return -math.Expm1(-e.beta * x)
}

// Mean returns 1/β.
func (e ExpDensity) Mean() float64 { return 1 / e.beta }

// TailProb returns e^(−βx).
func (e ExpDensity) TailProb(x float64) float64 {
	if x < 0 {
		return 1
	}
	return math.Exp(-e.beta * x)
}

// TailMean returns ∫_x^∞ t β e^(−βt) dt = e^(−βx)(x + 1/β).
func (e ExpDensity) TailMean(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return math.Exp(-e.beta*x) * (x + 1/e.beta)
}

// AlgDensity is the continuum algebraic load density of the paper,
// p(k) = (z−1) k^(−z) for k ≥ 1 (and 0 below 1), with z > 2 so the mean
// (z−1)/(z−2) is finite.
type AlgDensity struct {
	z float64
}

// NewAlgDensity returns the algebraic density with tail power z > 2.
func NewAlgDensity(z float64) (AlgDensity, error) {
	if !(z > 2) {
		return AlgDensity{}, fmt.Errorf("dist: continuum algebraic tail power must exceed 2, got %g", z)
	}
	return AlgDensity{z: z}, nil
}

// Z returns the tail power z.
func (a AlgDensity) Z() float64 { return a.z }

// PDF returns (z−1) x^(−z) for x ≥ 1.
func (a AlgDensity) PDF(x float64) float64 {
	if x < 1 {
		return 0
	}
	return (a.z - 1) * math.Pow(x, -a.z)
}

// CDF returns 1 − x^(1−z) for x ≥ 1.
func (a AlgDensity) CDF(x float64) float64 {
	if x < 1 {
		return 0
	}
	return 1 - math.Pow(x, 1-a.z)
}

// Mean returns (z−1)/(z−2).
func (a AlgDensity) Mean() float64 { return (a.z - 1) / (a.z - 2) }

// TailProb returns x^(1−z) for x ≥ 1.
func (a AlgDensity) TailProb(x float64) float64 {
	if x < 1 {
		return 1
	}
	return math.Pow(x, 1-a.z)
}

// TailMean returns ∫_x^∞ t (z−1) t^(−z) dt = (z−1)/(z−2) · x^(2−z) for
// x ≥ 1.
func (a AlgDensity) TailMean(x float64) float64 {
	if x < 1 {
		x = 1
	}
	return (a.z - 1) / (a.z - 2) * math.Pow(x, 2-a.z)
}
