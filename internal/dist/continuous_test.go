package dist

import (
	"math"
	"testing"

	"beqos/internal/numeric"
)

func checkContinuousInvariants(t *testing.T, d Continuous, name string) {
	t.Helper()
	// Density integrates to 1.
	total := numeric.IntegrateToInf(d.PDF, 0, 1e-12)
	if math.Abs(total-1) > 1e-7 {
		t.Errorf("%s: ∫ pdf = %v", name, total)
	}
	// Mean matches quadrature.
	mean := numeric.IntegrateToInf(func(x float64) float64 { return x * d.PDF(x) }, 0, 1e-12)
	if math.Abs(mean-d.Mean()) > 1e-6*(1+d.Mean()) {
		t.Errorf("%s: mean quadrature %v vs %v", name, mean, d.Mean())
	}
	for _, x := range []float64{0, 0.5, 1, 2, 10, 100} {
		if math.Abs(d.CDF(x)+d.TailProb(x)-1) > 1e-12 {
			t.Errorf("%s: CDF+Tail at %g = %v", name, x, d.CDF(x)+d.TailProb(x))
		}
		tm := numeric.IntegrateToInf(func(u float64) float64 { return u * d.PDF(u) }, x, 1e-12)
		if math.Abs(tm-d.TailMean(x)) > 1e-6*(1+tm) {
			t.Errorf("%s: TailMean(%g) quadrature %v vs %v", name, x, tm, d.TailMean(x))
		}
	}
}

func TestExpDensity(t *testing.T) {
	e, err := NewExpDensity(0.01)
	if err != nil {
		t.Fatal(err)
	}
	checkContinuousInvariants(t, e, "exp")
	if math.Abs(e.Mean()-100) > 1e-12 {
		t.Errorf("mean: %v", e.Mean())
	}
	if _, err := NewExpDensity(0); err == nil {
		t.Error("zero rate should fail")
	}
}

func TestAlgDensity(t *testing.T) {
	a, err := NewAlgDensity(3)
	if err != nil {
		t.Fatal(err)
	}
	checkContinuousInvariants(t, a, "alg")
	if want := 2.0; math.Abs(a.Mean()-want) > 1e-12 {
		t.Errorf("mean: %v, want %v", a.Mean(), want)
	}
	if _, err := NewAlgDensity(2); err == nil {
		t.Error("z = 2 should fail")
	}
}
