// Package dist implements the load distributions P(k) of the variable-load
// model in Breslau & Shenker (SIGCOMM 1998): Poisson, exponential
// (geometric), and the two-parameter algebraic (power-law) distribution, all
// calibrated to a given mean offered load k̄, plus empirical distributions
// measured from simulation and the derived views the paper's extensions
// need (size-biased "flow's-eye" distribution and max-of-S order
// statistics). It also provides the continuum-model densities.
package dist

// Discrete is a probability distribution over nonnegative integer load
// levels k (the number of flows requesting service).
//
// Implementations must provide exact or near-machine-precision tails:
// TailProb and TailMean are used by the model to bound truncation error, so
// they must not themselves be naive truncated sums.
type Discrete interface {
	// PMF returns P(k). It is 0 for k outside the support (including k < 0).
	PMF(k int) float64
	// CDF returns P(K ≤ k). CDF(k) = 0 for k below the support.
	CDF(k int) float64
	// Mean returns the expected load k̄ = Σ k·P(k).
	Mean() float64
	// TailProb returns P(K > k) = Σ_{j>k} P(j).
	TailProb(k int) float64
	// TailMean returns Σ_{j>k} j·P(j), the mean mass in the tail.
	TailMean(k int) float64
	// Quantile returns the smallest k with CDF(k) ≥ p, for p in [0, 1).
	Quantile(p float64) int
}

// Family is a distribution family parameterized by its mean, used by the
// retry extension, which inflates the offered load while keeping the
// distribution's shape.
type Family interface {
	Discrete
	// WithMean returns a distribution of the same family (same shape
	// parameters) recalibrated to the given mean.
	WithMean(mean float64) (Discrete, error)
}

// quantileByScan finds the smallest k with CDF(k) ≥ p by doubling then
// binary search, using only the distribution's CDF.
func quantileByScan(d Discrete, p float64, start int) int {
	if p <= 0 {
		return 0
	}
	lo, hi := 0, start
	if hi < 1 {
		hi = 1
	}
	for d.CDF(hi) < p {
		lo = hi
		hi *= 2
		if hi > 1<<40 {
			return hi
		}
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if d.CDF(mid) >= p {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
