package dist

import (
	"math"
	"testing"
)

// sumPMF sums d.PMF over [0, top].
func sumPMF(d Discrete, top int) float64 {
	var s float64
	for k := 0; k <= top; k++ {
		s += d.PMF(k)
	}
	return s
}

// bruteTailMean computes Σ_{j>k} j·P(j) by brute force up to top.
func bruteTailMean(d Discrete, k, top int) float64 {
	var s float64
	for j := k + 1; j <= top; j++ {
		s += float64(j) * d.PMF(j)
	}
	return s
}

// bruteSquareTail computes Σ_{j>k} j²·P(j) by brute force up to top.
func bruteSquareTail(d Discrete, k, top int) float64 {
	var s float64
	for j := k + 1; j <= top; j++ {
		s += float64(j) * float64(j) * d.PMF(j)
	}
	return s
}

func checkDiscreteInvariants(t *testing.T, d Discrete, top int, tol float64) {
	t.Helper()
	if got := sumPMF(d, top); math.Abs(got-1) > tol {
		t.Errorf("PMF does not normalize: Σ = %v", got)
	}
	if got := bruteTailMean(d, 0, top); math.Abs(got-d.Mean()) > tol*(1+d.Mean()) {
		t.Errorf("Mean mismatch: brute %v vs Mean() %v", got, d.Mean())
	}
	for _, k := range []int{0, 1, 2, 5, 50, 100, 150, 400} {
		cdf, tail := d.CDF(k), d.TailProb(k)
		if math.Abs(cdf+tail-1) > tol {
			t.Errorf("CDF(%d)+TailProb(%d) = %v, want 1", k, k, cdf+tail)
		}
		if brute := bruteTailMean(d, k, top); math.Abs(brute-d.TailMean(k)) > tol*(1+brute) {
			t.Errorf("TailMean(%d): brute %v vs %v", k, brute, d.TailMean(k))
		}
		if d.CDF(k) < d.CDF(k-1)-1e-15 {
			t.Errorf("CDF not monotone at %d", k)
		}
	}
	for _, p := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.999, 0.999999} {
		q := d.Quantile(p)
		if d.CDF(q) < p {
			t.Errorf("Quantile(%g) = %d but CDF = %v < p", p, q, d.CDF(q))
		}
		if q > 0 && d.CDF(q-1) >= p {
			t.Errorf("Quantile(%g) = %d not minimal: CDF(%d) = %v", p, q, q-1, d.CDF(q-1))
		}
	}
}

func TestPoissonInvariants(t *testing.T) {
	p, err := NewPoisson(100)
	if err != nil {
		t.Fatal(err)
	}
	checkDiscreteInvariants(t, p, 1000, 1e-10)
	if math.Abs(p.Mean()-100) > 1e-12 {
		t.Errorf("mean: %v", p.Mean())
	}
}

func TestPoissonTinyTailPrecision(t *testing.T) {
	p, _ := NewPoisson(100)
	// P(K > 300) is astronomically small but must be positive and finite.
	tail := p.TailProb(300)
	if !(tail > 0 && tail < 1e-50) {
		t.Errorf("TailProb(300) = %v, want tiny positive", tail)
	}
}

func TestPoissonSquareTail(t *testing.T) {
	p, _ := NewPoisson(100)
	for _, k := range []int{0, 50, 100, 200} {
		brute := bruteSquareTail(p, k, 1500)
		got := p.SquareTailMean(k)
		if math.Abs(brute-got) > 1e-7*(1+brute) {
			t.Errorf("SquareTailMean(%d): brute %v vs %v", k, brute, got)
		}
	}
	// E[K²] = ν² + ν.
	if got := p.SquareTailMean(0); math.Abs(got-(100*100+100)) > 1e-6 {
		t.Errorf("E[K²] = %v, want 10100", got)
	}
}

func TestPoissonErrors(t *testing.T) {
	for _, nu := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewPoisson(nu); err == nil {
			t.Errorf("NewPoisson(%v) should fail", nu)
		}
	}
}

func TestExponentialInvariants(t *testing.T) {
	e, err := NewExponentialMean(100)
	if err != nil {
		t.Fatal(err)
	}
	checkDiscreteInvariants(t, e, 20000, 1e-9)
	if math.Abs(e.Mean()-100) > 1e-9 {
		t.Errorf("calibrated mean: %v", e.Mean())
	}
	if want := math.Log(1.01); math.Abs(e.Beta()-want) > 1e-14 {
		t.Errorf("beta: %v, want ln(1.01) = %v", e.Beta(), want)
	}
}

func TestExponentialSquareTail(t *testing.T) {
	e, _ := NewExponentialMean(20)
	for _, k := range []int{0, 5, 40, 111} {
		brute := bruteSquareTail(e, k, 5000)
		got := e.SquareTailMean(k)
		if math.Abs(brute-got) > 1e-8*(1+brute) {
			t.Errorf("SquareTailMean(%d): brute %v vs %v", k, brute, got)
		}
	}
}

func TestExponentialErrors(t *testing.T) {
	if _, err := NewExponential(0); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := NewExponentialMean(-3); err == nil {
		t.Error("negative mean should fail")
	}
}

func TestAlgebraicInvariants(t *testing.T) {
	a, err := NewAlgebraicMean(3.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	// The z = 3 tail converges slowly; rely on exact tails and check the
	// head sum against 1 − TailProb.
	const top = 200000
	head := sumPMF(a, top)
	if want := a.CDF(top); math.Abs(head-want) > 1e-9 {
		t.Errorf("head sum %v vs CDF %v", head, want)
	}
	if math.Abs(head+a.TailProb(top)-1) > 1e-9 {
		t.Errorf("head + exact tail = %v, want 1", head+a.TailProb(top))
	}
	if math.Abs(a.Mean()-100) > 1e-6 {
		t.Errorf("calibrated mean: %v", a.Mean())
	}
	// TailMean against brute force + exact remainder.
	for _, k := range []int{0, 10, 100, 1000} {
		brute := bruteTailMean(a, k, top) + a.TailMean(top)
		got := a.TailMean(k)
		if math.Abs(brute-got) > 1e-8*(1+brute) {
			t.Errorf("TailMean(%d): brute %v vs %v", k, brute, got)
		}
	}
	for _, p := range []float64{0.5, 0.9, 0.999} {
		q := a.Quantile(p)
		if a.CDF(q) < p || (q > 1 && a.CDF(q-1) >= p) {
			t.Errorf("Quantile(%g) = %d inconsistent", p, q)
		}
	}
}

func TestAlgebraicSquareTail(t *testing.T) {
	a, err := NewAlgebraicMean(4.0, 50)
	if err != nil {
		t.Fatal(err)
	}
	const top = 300000
	for _, k := range []int{0, 7, 90} {
		// Close the brute-force sum with the exact remainder beyond top
		// (for z = 4 the j² tail decays only like 1/j²).
		brute := bruteSquareTail(a, k, top) + a.SquareTailMean(top)
		got := a.SquareTailMean(k)
		if math.Abs(brute-got) > 1e-8*(1+brute) {
			t.Errorf("SquareTailMean(%d): brute %v vs %v", k, brute, got)
		}
	}
	a3, _ := NewAlgebraicMean(3.0, 100)
	if !math.IsInf(a3.SquareTailMean(0), 1) {
		t.Error("z = 3 second moment should be +Inf")
	}
}

func TestAlgebraicErrors(t *testing.T) {
	if _, err := NewAlgebraic(2.0, 1); err == nil {
		t.Error("z = 2 should fail")
	}
	if _, err := NewAlgebraic(3, -1); err == nil {
		t.Error("negative lambda should fail")
	}
	if _, err := NewAlgebraicMean(3, 0.5); err == nil {
		t.Error("unachievably small mean should fail")
	}
}

func TestAlgebraicMeanGrowsWithLambda(t *testing.T) {
	prev := 0.0
	for _, l := range []float64{0, 1, 10, 100, 1000} {
		a, err := NewAlgebraic(3, l)
		if err != nil {
			t.Fatal(err)
		}
		m := a.Mean()
		if m <= prev {
			t.Errorf("mean not increasing: λ=%g mean=%v prev=%v", l, m, prev)
		}
		prev = m
	}
}

func TestFamilyWithMean(t *testing.T) {
	fams := []Family{
		mustPoisson(t, 100),
		mustExpMean(t, 100),
		mustAlgMean(t, 3, 100),
	}
	for _, f := range fams {
		d, err := f.WithMean(150)
		if err != nil {
			t.Fatalf("%T: %v", f, err)
		}
		if math.Abs(d.Mean()-150) > 1e-6 {
			t.Errorf("%T rescaled mean: %v", f, d.Mean())
		}
	}
}

func mustPoisson(t *testing.T, nu float64) Poisson {
	t.Helper()
	p, err := NewPoisson(nu)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustExpMean(t *testing.T, m float64) Exponential {
	t.Helper()
	e, err := NewExponentialMean(m)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustAlgMean(t *testing.T, z, m float64) Algebraic {
	t.Helper()
	a, err := NewAlgebraicMean(z, m)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAlgebraicHugeMeanUsesQuadratureTails(t *testing.T) {
	// Means far above the switch-point regime exercise the capped prefix
	// plus quadrature tail path; invariants must still hold.
	a, err := NewAlgebraicMean(3, 5e4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Mean()-5e4) > 1 {
		t.Errorf("calibrated mean = %v", a.Mean())
	}
	if got := a.CDF(10) + a.TailProb(10); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF+Tail = %v", got)
	}
	// The tail beyond the mean still carries the power-law mass.
	if tp := a.TailProb(int(2 * a.Mean())); !(tp > 0 && tp < 0.5) {
		t.Errorf("TailProb(2·mean) = %v", tp)
	}
	q := a.Quantile(0.5)
	if a.CDF(q) < 0.5 || (q > 1 && a.CDF(q-1) >= 0.5) {
		t.Errorf("median %d inconsistent", q)
	}
}

// bareDiscrete hides optional interfaces (SquareTailer, RealPMF).
type bareDiscrete struct{ Discrete }

func TestSquareTailGenericFallback(t *testing.T) {
	base := mustPoisson(t, 30)
	wrapped := bareDiscrete{base}
	q, err := NewSizeBiased(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	// Fallback summation must match the exact Poisson identity.
	exact, _ := NewSizeBiased(base)
	for _, k := range []int{0, 10, 40} {
		if a, b := q.TailMean(k), exact.TailMean(k); math.Abs(a-b) > 1e-6*(1+b) {
			t.Errorf("fallback TailMean(%d) = %v vs exact %v", k, a, b)
		}
	}
}
