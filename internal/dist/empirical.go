package dist

import (
	"fmt"
	"math"
)

// Empirical is a distribution given by explicit weights over k = 0, 1, …,
// len(weights)−1, e.g. a stationary occupancy histogram measured by the
// flow-level simulator. Weights are normalized at construction.
type Empirical struct {
	pmf      []float64
	cdf      []float64
	tailMean []float64 // tailMean[k] = Σ_{j>k} j·pmf[j]
	sqTail   []float64 // sqTail[k] = Σ_{j>k} j²·pmf[j]
	mean     float64
}

// NewEmpiricalSamples builds an empirical distribution from raw load
// observations (e.g. a measurement trace of concurrent-flow counts). Every
// sample must be nonnegative.
func NewEmpiricalSamples(samples []int) (*Empirical, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("dist: empirical needs at least one sample")
	}
	max := 0
	for i, s := range samples {
		if s < 0 {
			return nil, fmt.Errorf("dist: sample[%d] = %d is negative", i, s)
		}
		if s > max {
			max = s
		}
	}
	weights := make([]float64, max+1)
	for _, s := range samples {
		weights[s]++
	}
	return NewEmpirical(weights)
}

// NewEmpirical builds an empirical distribution from nonnegative weights
// (they need not sum to one). At least one weight must be positive.
func NewEmpirical(weights []float64) (*Empirical, error) {
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("dist: empirical weight[%d] = %g is invalid", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: empirical weights sum to %g; need positive mass", total)
	}
	e := &Empirical{
		pmf:      make([]float64, len(weights)),
		cdf:      make([]float64, len(weights)),
		tailMean: make([]float64, len(weights)+1),
		sqTail:   make([]float64, len(weights)+1),
	}
	run := 0.0
	for i, w := range weights {
		e.pmf[i] = w / total
		run += e.pmf[i]
		e.cdf[i] = run
		e.mean += float64(i) * e.pmf[i]
	}
	for i := len(weights) - 1; i >= 0; i-- {
		e.tailMean[i] = e.tailMean[i+1] + float64(i)*e.pmf[i]
		e.sqTail[i] = e.sqTail[i+1] + float64(i)*float64(i)*e.pmf[i]
	}
	return e, nil
}

// PMF returns P(k).
func (e *Empirical) PMF(k int) float64 {
	if k < 0 || k >= len(e.pmf) {
		return 0
	}
	return e.pmf[k]
}

// CDF returns P(K ≤ k).
func (e *Empirical) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= len(e.cdf) {
		return 1
	}
	return e.cdf[k]
}

// Mean returns the distribution mean.
func (e *Empirical) Mean() float64 { return e.mean }

// TailProb returns P(K > k).
func (e *Empirical) TailProb(k int) float64 {
	if k < 0 {
		return 1
	}
	if k >= len(e.cdf) {
		return 0
	}
	return 1 - e.cdf[k]
}

// TailMean returns Σ_{j>k} j·P(j).
func (e *Empirical) TailMean(k int) float64 {
	if k < 0 {
		k = -1
	}
	if k+1 >= len(e.tailMean) {
		return 0
	}
	return e.tailMean[k+1]
}

// SquareTailMean returns Σ_{j>k} j²·P(j).
func (e *Empirical) SquareTailMean(k int) float64 {
	if k < 0 {
		k = -1
	}
	if k+1 >= len(e.sqTail) {
		return 0
	}
	return e.sqTail[k+1]
}

// Quantile returns the smallest k with CDF(k) ≥ p.
func (e *Empirical) Quantile(p float64) int {
	if p <= 0 {
		return 0
	}
	for k, c := range e.cdf {
		if c >= p {
			return k
		}
	}
	return len(e.cdf) - 1
}
