package dist

import (
	"fmt"
	"math"
)

// Exponential is the exponentially decaying (geometric) load distribution of
// the paper, P(k) = (1 − e^(−β)) e^(−βk) for k ≥ 0. Its mean is
// k̄ = 1/(e^β − 1), so β = ln(1 + 1/k̄).
type Exponential struct {
	beta float64
	q    float64 // e^(−β)
}

// NewExponential returns the distribution with decay rate beta > 0.
func NewExponential(beta float64) (Exponential, error) {
	if !(beta > 0) || math.IsInf(beta, 0) {
		return Exponential{}, fmt.Errorf("dist: exponential rate must be positive and finite, got %g", beta)
	}
	return Exponential{beta: beta, q: math.Exp(-beta)}, nil
}

// NewExponentialMean returns the distribution calibrated to the given mean,
// i.e. with β = ln(1 + 1/mean).
func NewExponentialMean(mean float64) (Exponential, error) {
	if !(mean > 0) {
		return Exponential{}, fmt.Errorf("dist: exponential mean must be positive, got %g", mean)
	}
	return NewExponential(math.Log1p(1 / mean))
}

// Beta returns the decay rate β.
func (e Exponential) Beta() float64 { return e.beta }

// PMF returns P(k).
func (e Exponential) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	return (1 - e.q) * math.Exp(-e.beta*float64(k))
}

// CDF returns P(K ≤ k) = 1 − e^(−β(k+1)).
func (e Exponential) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	return -math.Expm1(-e.beta * float64(k+1))
}

// Mean returns 1/(e^β − 1).
func (e Exponential) Mean() float64 { return 1 / math.Expm1(e.beta) }

// TailProb returns P(K > k) = e^(−β(k+1)).
func (e Exponential) TailProb(k int) float64 {
	if k < 0 {
		return 1
	}
	return math.Exp(-e.beta * float64(k+1))
}

// TailMean returns Σ_{j>k} j·P(j) = q^(k+1)·((k+1) − kq)/(1−q) where
// q = e^(−β) (closed form for the geometric series derivative).
func (e Exponential) TailMean(k int) float64 {
	if k < 0 {
		return e.Mean()
	}
	kf := float64(k)
	return math.Pow(e.q, kf+1) * ((kf + 1) - kf*e.q) / (1 - e.q)
}

// Quantile returns the smallest k with CDF(k) ≥ p, in closed form.
func (e Exponential) Quantile(p float64) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		p = math.Nextafter(1, 0)
	}
	k := int(math.Ceil(-math.Log1p(-p)/e.beta - 1))
	if k < 0 {
		k = 0
	}
	// Guard against floating-point edge effects at the boundary.
	for e.CDF(k) < p {
		k++
	}
	for k > 0 && e.CDF(k-1) >= p {
		k--
	}
	return k
}

// WithMean implements Family.
func (e Exponential) WithMean(mean float64) (Discrete, error) {
	d, err := NewExponentialMean(mean)
	if err != nil {
		return nil, err
	}
	return d, nil
}
