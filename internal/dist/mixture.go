package dist

import (
	"fmt"
	"math"
)

// Mixture is a convex combination of load distributions: with probability
// w_i the link faces component i's load. It models the paper's §5
// "nonstationary loads" extension — e.g. diurnal alternation between a
// high-load and a low-load regime — where the probability distribution of
// loads is itself a mixture rather than a single stationary family.
//
// All moments and tails are exact weighted sums of the components', so the
// asymptotic machinery (and the paper's conclusion that nonstationarity
// leaves the large-C asymptotics to the heaviest component) carries over
// unchanged.
type Mixture struct {
	comps   []Discrete
	weights []float64
	mean    float64
}

// NewMixture returns the mixture of comps with the given nonnegative
// weights (normalized at construction).
func NewMixture(comps []Discrete, weights []float64) (*Mixture, error) {
	if len(comps) == 0 || len(comps) != len(weights) {
		return nil, fmt.Errorf("dist: mixture needs matching non-empty components and weights (%d vs %d)", len(comps), len(weights))
	}
	var total float64
	for i, w := range weights {
		if comps[i] == nil {
			return nil, fmt.Errorf("dist: mixture component %d is nil", i)
		}
		if !(w >= 0) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("dist: mixture weight %d = %g is invalid", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: mixture weights sum to %g; need positive mass", total)
	}
	m := &Mixture{
		comps:   append([]Discrete(nil), comps...),
		weights: make([]float64, len(weights)),
	}
	for i, w := range weights {
		m.weights[i] = w / total
		m.mean += m.weights[i] * comps[i].Mean()
	}
	return m, nil
}

// Components returns the number of components.
func (m *Mixture) Components() int { return len(m.comps) }

// PMF returns Σ w_i·P_i(k).
func (m *Mixture) PMF(k int) float64 {
	var s float64
	for i, c := range m.comps {
		s += m.weights[i] * c.PMF(k)
	}
	return s
}

// CDF returns Σ w_i·F_i(k).
func (m *Mixture) CDF(k int) float64 {
	var s float64
	for i, c := range m.comps {
		s += m.weights[i] * c.CDF(k)
	}
	return s
}

// Mean returns Σ w_i·k̄_i.
func (m *Mixture) Mean() float64 { return m.mean }

// TailProb returns Σ w_i·P_i(K > k).
func (m *Mixture) TailProb(k int) float64 {
	var s float64
	for i, c := range m.comps {
		s += m.weights[i] * c.TailProb(k)
	}
	return s
}

// TailMean returns Σ w_i·TailMean_i(k).
func (m *Mixture) TailMean(k int) float64 {
	var s float64
	for i, c := range m.comps {
		s += m.weights[i] * c.TailMean(k)
	}
	return s
}

// SquareTailMean returns Σ w_i·SquareTailMean_i(k) (+Inf if any component
// with positive weight diverges).
func (m *Mixture) SquareTailMean(k int) float64 {
	var s float64
	for i, c := range m.comps {
		if m.weights[i] == 0 {
			continue
		}
		s += m.weights[i] * squareTail(c, k)
	}
	return s
}

// Quantile returns the smallest k with CDF(k) ≥ p.
func (m *Mixture) Quantile(p float64) int {
	return quantileByScan(m, p, int(m.mean)+1)
}

// PMFAt implements RealPMF. Components without a smooth extension
// contribute their PMF at the nearest integer — a piecewise-constant
// extension whose unit-cell integrals still equal the exact sums, so the
// midpoint tail acceleration stays correct for mixtures of smooth and
// finite-support components.
func (m *Mixture) PMFAt(x float64) float64 {
	var s float64
	for i, c := range m.comps {
		if rp, ok := c.(RealPMF); ok {
			s += m.weights[i] * rp.PMFAt(x)
		} else {
			s += m.weights[i] * c.PMF(int(math.Round(x)))
		}
	}
	return s
}
