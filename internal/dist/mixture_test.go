package dist

import (
	"math"
	"testing"
)

func TestMixtureValidation(t *testing.T) {
	p := mustPoisson(t, 10)
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture should fail")
	}
	if _, err := NewMixture([]Discrete{p}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewMixture([]Discrete{nil}, []float64{1}); err == nil {
		t.Error("nil component should fail")
	}
	if _, err := NewMixture([]Discrete{p}, []float64{-1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewMixture([]Discrete{p}, []float64{0}); err == nil {
		t.Error("zero total weight should fail")
	}
}

func TestMixtureSingleComponentIsIdentity(t *testing.T) {
	p := mustPoisson(t, 40)
	m, err := NewMixture([]Discrete{p}, []float64{7}) // weight normalizes away
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 10, 40, 80} {
		if math.Abs(m.PMF(k)-p.PMF(k)) > 1e-15 {
			t.Errorf("PMF(%d) differs", k)
		}
		if math.Abs(m.TailMean(k)-p.TailMean(k)) > 1e-12 {
			t.Errorf("TailMean(%d) differs", k)
		}
	}
	if math.Abs(m.Mean()-40) > 1e-12 {
		t.Errorf("mean = %v", m.Mean())
	}
}

func TestMixtureInvariants(t *testing.T) {
	// A bimodal "diurnal" load: low regime around 30, high regime around
	// 150.
	lo := mustPoisson(t, 30)
	hi := mustPoisson(t, 150)
	m, err := NewMixture([]Discrete{lo, hi}, []float64{0.7, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	checkDiscreteInvariants(t, m, 600, 1e-9)
	if want := 0.7*30 + 0.3*150; math.Abs(m.Mean()-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", m.Mean(), want)
	}
	if m.Components() != 2 {
		t.Errorf("components = %d", m.Components())
	}
}

func TestMixtureHeavyComponentDominatesTail(t *testing.T) {
	light := mustExpMean(t, 100)
	heavy := mustAlgMean(t, 3, 100)
	m, err := NewMixture([]Discrete{light, heavy}, []float64{0.9, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Far in the tail, the exponential contribution has vanished and the
	// mixture tail is 0.1 × the algebraic tail.
	for _, k := range []int{3000, 10000} {
		got := m.TailProb(k)
		want := 0.1 * heavy.TailProb(k)
		if math.Abs(got-want) > 1e-3*want {
			t.Errorf("TailProb(%d) = %v, want ≈ %v", k, got, want)
		}
	}
}

func TestMixturePMFAtSmoothAndEmpirical(t *testing.T) {
	alg := mustAlgMean(t, 3, 50)
	emp, err := NewEmpirical([]float64{0, 1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMixture([]Discrete{alg, emp}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// At integers, PMFAt agrees with PMF.
	for _, k := range []int{1, 2, 3, 10, 100} {
		if got, want := m.PMFAt(float64(k)), m.PMF(k); math.Abs(got-want) > 1e-15 {
			t.Errorf("PMFAt(%d) = %v, PMF = %v", k, got, want)
		}
	}
	// Beyond the empirical support, only the smooth component remains.
	if got, want := m.PMFAt(55.5), 0.5*alg.PMFAt(55.5); math.Abs(got-want) > 1e-15 {
		t.Errorf("PMFAt(55.5) = %v, want %v", got, want)
	}
}

func TestMixtureSquareTail(t *testing.T) {
	a := mustPoisson(t, 20)
	b := mustExpMean(t, 50)
	m, err := NewMixture([]Discrete{a, b}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 10, 60} {
		want := 0.5*a.SquareTailMean(k) + 0.5*b.SquareTailMean(k)
		if got := m.SquareTailMean(k); math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("SquareTailMean(%d) = %v, want %v", k, got, want)
		}
	}
}
