package dist

import (
	"fmt"
	"math"
)

// Poisson is the Poisson load distribution of the paper,
// P(k) = ν^k e^(−ν) / k!, describing load tightly concentrated around its
// mean ν with extremely rare excursions.
type Poisson struct {
	nu float64
}

// NewPoisson returns a Poisson load distribution with mean nu > 0.
func NewPoisson(nu float64) (Poisson, error) {
	if !(nu > 0) || math.IsInf(nu, 0) {
		return Poisson{}, fmt.Errorf("dist: Poisson mean must be positive and finite, got %g", nu)
	}
	return Poisson{nu: nu}, nil
}

// PMF returns P(k), evaluated in log space to stay finite for large k.
func (p Poisson) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(p.nu) - p.nu - lg)
}

// CDF returns P(K ≤ k).
func (p Poisson) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	// Sum the PMF directly; the support that matters is O(ν + sqrt(ν)·40).
	var s, comp float64
	for j := 0; j <= k; j++ {
		t := p.PMF(j)
		y := t - comp
		ns := s + y
		comp = (ns - s) - y
		s = ns
		// Once far past the mode, remaining terms underflow.
		if float64(j) > p.nu && t < 1e-320 {
			break
		}
	}
	if s > 1 {
		return 1
	}
	return s
}

// Mean returns ν.
func (p Poisson) Mean() float64 { return p.nu }

// TailProb returns P(K > k).
func (p Poisson) TailProb(k int) float64 {
	if k < 0 {
		return 1
	}
	// For k below the mean, 1 − CDF is well conditioned; above the mean sum
	// the tail directly so tiny tails are not lost to cancellation.
	if float64(k) < p.nu {
		return 1 - p.CDF(k)
	}
	var s, comp float64
	for j := k + 1; ; j++ {
		t := p.PMF(j)
		y := t - comp
		ns := s + y
		comp = (ns - s) - y
		s = ns
		if float64(j) > p.nu && (t < 1e-320 || t < 1e-18*s) {
			break
		}
	}
	return s
}

// TailMean returns Σ_{j>k} j·P(j) = ν·P(K > k−1), using the Poisson identity
// j·P(j; ν) = ν·P(j−1; ν).
func (p Poisson) TailMean(k int) float64 {
	return p.nu * p.TailProb(k-1)
}

// Quantile returns the smallest k with CDF(k) ≥ q.
func (p Poisson) Quantile(q float64) int {
	return quantileByScan(p, q, int(p.nu)+1)
}

// WithMean implements Family.
func (p Poisson) WithMean(mean float64) (Discrete, error) {
	d, err := NewPoisson(mean)
	if err != nil {
		return nil, err
	}
	return d, nil
}
