package dist

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// maxPoissonTable caps the lazily built Poisson summary table. Means large
// enough to overflow it (ν ≳ 2M) fall back to the direct summation paths.
const maxPoissonTable = 1 << 21

// Poisson is the Poisson load distribution of the paper,
// P(k) = ν^k e^(−ν) / k!, describing load tightly concentrated around its
// mean ν with extremely rare excursions.
//
// CDF, TailProb and Quantile are served from a lazily built table of prefix
// and suffix sums over the effective support (ν ± 40σ), computed once with
// the stable recurrence P(k) = P(k−1)·ν/k, so each call is O(1) instead of
// an O(k) re-summation. The table is guarded by sync.Once; Poisson values
// (which share the table through an internal pointer) are safe for
// concurrent use.
type Poisson struct {
	nu  float64
	tab *poissonTable
}

// poissonTable holds the shared prefix/suffix sums of a Poisson
// distribution, built once on first use.
type poissonTable struct {
	once sync.Once
	pmf  []float64 // pmf[k] = P(k), k = 0 … top
	cdf  []float64 // cdf[k] = P(K ≤ k), forward Kahan sums, clamped to 1
	tail []float64 // tail[k] = P(K > k), backward Kahan sums
}

// NewPoisson returns a Poisson load distribution with mean nu > 0.
func NewPoisson(nu float64) (Poisson, error) {
	if !(nu > 0) || math.IsInf(nu, 0) {
		return Poisson{}, fmt.Errorf("dist: Poisson mean must be positive and finite, got %g", nu)
	}
	return Poisson{nu: nu, tab: &poissonTable{}}, nil
}

// table returns the shared summary table, building it on first use, or nil
// when the support is too large to tabulate.
func (p Poisson) table() *poissonTable {
	if p.tab == nil {
		return nil
	}
	p.tab.once.Do(func() {
		top := int(p.nu+40*math.Sqrt(p.nu)) + 64
		if top > maxPoissonTable {
			return
		}
		pmf := make([]float64, top+1)
		// Seed at the mode in log space, then extend outward with the
		// stable multiplicative recurrence P(k+1) = P(k)·ν/(k+1).
		mode := int(p.nu)
		if mode > top {
			mode = top
		}
		pmf[mode] = p.PMF(mode)
		for k := mode; k > 0; k-- {
			pmf[k-1] = pmf[k] * float64(k) / p.nu
		}
		for k := mode; k < top; k++ {
			pmf[k+1] = pmf[k] * p.nu / float64(k+1)
		}
		cdf := make([]float64, top+1)
		var s, comp float64
		for k, t := range pmf {
			y := t - comp
			ns := s + y
			comp = (ns - s) - y
			s = ns
			if s > 1 {
				s = 1
			}
			cdf[k] = s
		}
		tail := make([]float64, top+1)
		s, comp = 0, 0
		for k := top - 1; k >= 0; k-- {
			t := pmf[k+1]
			y := t - comp
			ns := s + y
			comp = (ns - s) - y
			s = ns
			tail[k] = s
		}
		p.tab.pmf, p.tab.cdf, p.tab.tail = pmf, cdf, tail
	})
	if p.tab.pmf == nil {
		return nil
	}
	return p.tab
}

// PMF returns P(k), evaluated in log space to stay finite for large k.
func (p Poisson) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(p.nu) - p.nu - lg)
}

// CDF returns P(K ≤ k).
func (p Poisson) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if t := p.table(); t != nil {
		if k >= len(t.cdf) {
			return 1
		}
		return t.cdf[k]
	}
	// Untabulated fallback: sum the PMF directly; the support that matters
	// is O(ν + sqrt(ν)·40).
	var s, comp float64
	for j := 0; j <= k; j++ {
		t := p.PMF(j)
		y := t - comp
		ns := s + y
		comp = (ns - s) - y
		s = ns
		// Once far past the mode, remaining terms underflow.
		if float64(j) > p.nu && t < 1e-320 {
			break
		}
	}
	if s > 1 {
		return 1
	}
	return s
}

// Mean returns ν.
func (p Poisson) Mean() float64 { return p.nu }

// TailProb returns P(K > k).
func (p Poisson) TailProb(k int) float64 {
	if k < 0 {
		return 1
	}
	if t := p.table(); t != nil {
		if k >= len(t.tail) {
			// Beyond 40σ the tail underflows; match the summation path.
			return p.tailSum(k)
		}
		return t.tail[k]
	}
	// For k below the mean, 1 − CDF is well conditioned; above the mean sum
	// the tail directly so tiny tails are not lost to cancellation.
	if float64(k) < p.nu {
		return 1 - p.CDF(k)
	}
	return p.tailSum(k)
}

// tailSum computes P(K > k) by direct summation from k+1.
func (p Poisson) tailSum(k int) float64 {
	var s, comp float64
	for j := k + 1; ; j++ {
		t := p.PMF(j)
		y := t - comp
		ns := s + y
		comp = (ns - s) - y
		s = ns
		if float64(j) > p.nu && (t < 1e-320 || t < 1e-18*s) {
			break
		}
	}
	return s
}

// TailMean returns Σ_{j>k} j·P(j) = ν·P(K > k−1), using the Poisson identity
// j·P(j; ν) = ν·P(j−1; ν).
func (p Poisson) TailMean(k int) float64 {
	return p.nu * p.TailProb(k-1)
}

// Quantile returns the smallest k with CDF(k) ≥ q.
func (p Poisson) Quantile(q float64) int {
	if t := p.table(); t != nil {
		if q <= 0 {
			return 0
		}
		n := len(t.cdf)
		i := sort.Search(n, func(k int) bool { return t.cdf[k] >= q })
		if i < n {
			return i
		}
		// q exceeds every tabulated prefix sum (q ≥ 1 − 40σ tail mass).
		return quantileByScan(p, q, n)
	}
	return quantileByScan(p, q, int(p.nu)+1)
}

// WithMean implements Family.
func (p Poisson) WithMean(mean float64) (Discrete, error) {
	d, err := NewPoisson(mean)
	if err != nil {
		return nil, err
	}
	return d, nil
}
