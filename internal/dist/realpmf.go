package dist

import "math"

// RealPMF is an optional extension of Discrete for distributions whose PMF
// formula extends smoothly to real arguments. Consumers use it to replace
// slowly converging series tails Σ_{k>K} g(k)·P(k) with the midpoint-rule
// integral ∫_{K+1/2}^∞ g(x)·PMFAt(x) dx, which is exact to O(1/K²) relative
// error for smooth slowly varying integrands. This matters for the
// heavy-tailed algebraic distribution, whose sums would otherwise need
// millions of terms.
type RealPMF interface {
	// PMFAt evaluates the PMF formula at a real argument x ≥ 0.
	PMFAt(x float64) float64
}

// PMFAt extends the Poisson PMF via the gamma function.
func (p Poisson) PMFAt(x float64) float64 {
	if x < 0 {
		return 0
	}
	lg, _ := math.Lgamma(x + 1)
	return math.Exp(x*math.Log(p.nu) - p.nu - lg)
}

// PMFAt extends the geometric form (1−q)e^(−βx) to real x.
func (e Exponential) PMFAt(x float64) float64 {
	if x < 0 {
		return 0
	}
	return (1 - e.q) * math.Exp(-e.beta*x)
}

// PMFAt extends ν/(λ+x^z) to real x.
func (a Algebraic) PMFAt(x float64) float64 {
	if x < 1 {
		return 0
	}
	return a.norm / (a.lambda + math.Pow(x, a.z))
}
