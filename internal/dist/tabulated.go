package dist

import (
	"sort"
	"sync"
)

// Tabulated table sizing: the table covers the effective support out to
// tabulatedPad·Quantile(tabulatedQuantile) — the same padding rule as the
// model's series cutoff kcut — clamped to [tabulatedMin, tabulatedMax].
// Beyond the table every query falls through to the base distribution's
// analytic tail, so the cap bounds memory without affecting correctness.
const (
	tabulatedQuantile = 0.999
	tabulatedPad      = 4
	tabulatedMin      = 1024
	tabulatedMax      = 1 << 17
)

// Tabulated is a read-through decorator that precomputes PMF, CDF, TailProb
// and TailMean arrays over the base distribution's effective support, using
// stable recurrences where the family provides one (Poisson, geometric).
// Inside the table every query is an O(1) array load — no Lgamma, Pow or
// O(k) re-summation per call; outside it, queries delegate to the base
// distribution's exact analytic tails, so values match the base to within
// ordinary floating-point roundoff everywhere.
//
// A Tabulated is immutable after construction (the lazy square-tail cache is
// guarded by sync.Once) and therefore safe for concurrent use whenever its
// base distribution is.
type Tabulated struct {
	base     Discrete
	mean     float64
	pmf      []float64 // pmf[k] = P(k), k = 0 … kTop
	cdf      []float64 // cdf[k] = P(K ≤ k)
	tailProb []float64 // tailProb[k] = P(K > k), seeded from the base tail
	tailMean []float64 // tailMean[k] = Σ_{j>k} j·P(j), likewise

	// sqTail is built lazily (only the size-biased view needs it) when the
	// base does not provide exact square tails itself.
	sqOnce sync.Once
	sqTail []float64
	sqRest float64
}

// Tabulate wraps d in a Tabulated decorator. It is idempotent, and returns
// already-array-backed distributions (Empirical) unchanged.
func Tabulate(d Discrete) Discrete {
	switch d.(type) {
	case *Tabulated, *Empirical:
		return d
	}
	kTop := tabulatedPad * d.Quantile(tabulatedQuantile)
	if kTop < tabulatedMin {
		kTop = tabulatedMin
	}
	if kTop > tabulatedMax {
		kTop = tabulatedMax
	}
	t := &Tabulated{
		base:     d,
		mean:     d.Mean(),
		pmf:      make([]float64, kTop+1),
		cdf:      make([]float64, kTop+1),
		tailProb: make([]float64, kTop+1),
		tailMean: make([]float64, kTop+1),
	}
	fillPMF(d, t.pmf)
	var s, comp float64
	for k, pk := range t.pmf {
		y := pk - comp
		ns := s + y
		comp = (ns - s) - y
		s = ns
		if s > 1 {
			s = 1
		}
		t.cdf[k] = s
	}
	// Seed the suffix arrays with the base's exact analytic tails so the
	// table and the beyond-table region agree to machine precision.
	t.tailProb[kTop] = d.TailProb(kTop)
	t.tailMean[kTop] = d.TailMean(kTop)
	for k := kTop - 1; k >= 0; k-- {
		t.tailProb[k] = t.tailProb[k+1] + t.pmf[k+1]
		t.tailMean[k] = t.tailMean[k+1] + float64(k+1)*t.pmf[k+1]
	}
	return t
}

// fillPMF writes P(k) for k = 0 … len(dst)−1, using a stable multiplicative
// recurrence for the families that have one instead of per-entry
// transcendental calls.
func fillPMF(d Discrete, dst []float64) {
	switch b := d.(type) {
	case Poisson:
		if pt := b.table(); pt != nil {
			n := copy(dst, pt.pmf)
			for k := n; k < len(dst); k++ {
				dst[k] = b.PMF(k) // beyond 40σ: underflows to ~0
			}
			return
		}
	case Exponential:
		// P(k) = (1−q)·q^k: geometric recurrence.
		dst[0] = 1 - b.q
		for k := 1; k < len(dst); k++ {
			dst[k] = dst[k-1] * b.q
		}
		return
	}
	for k := range dst {
		dst[k] = d.PMF(k)
	}
}

// Base returns the distribution being tabulated.
func (t *Tabulated) Base() Discrete { return t.base }

// PMF returns P(k).
func (t *Tabulated) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	if k < len(t.pmf) {
		return t.pmf[k]
	}
	return t.base.PMF(k)
}

// CDF returns P(K ≤ k).
func (t *Tabulated) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if k < len(t.cdf) {
		return t.cdf[k]
	}
	return t.base.CDF(k)
}

// Mean returns the base mean.
func (t *Tabulated) Mean() float64 { return t.mean }

// TailProb returns P(K > k).
func (t *Tabulated) TailProb(k int) float64 {
	if k < 0 {
		return 1
	}
	if k < len(t.tailProb) {
		return t.tailProb[k]
	}
	return t.base.TailProb(k)
}

// TailMean returns Σ_{j>k} j·P(j).
func (t *Tabulated) TailMean(k int) float64 {
	if k < 0 {
		return t.base.TailMean(k)
	}
	if k < len(t.tailMean) {
		return t.tailMean[k]
	}
	return t.base.TailMean(k)
}

// Quantile returns the smallest k with CDF(k) ≥ p.
func (t *Tabulated) Quantile(p float64) int {
	if p <= 0 {
		return 0
	}
	n := len(t.cdf)
	if p <= t.cdf[n-1] {
		return sort.Search(n, func(k int) bool { return t.cdf[k] >= p })
	}
	return t.base.Quantile(p)
}

// SquareTailMean returns Σ_{j>k} j²·P(j), delegating to the base's exact
// implementation when it has one and to a lazily built table otherwise.
func (t *Tabulated) SquareTailMean(k int) float64 {
	if st, ok := t.base.(SquareTailer); ok {
		return st.SquareTailMean(k)
	}
	t.sqOnce.Do(func() {
		kTop := len(t.pmf) - 1
		t.sqRest = squareTail(t.base, kTop)
		t.sqTail = make([]float64, kTop+1)
		t.sqTail[kTop] = t.sqRest
		for j := kTop - 1; j >= 0; j-- {
			jf := float64(j + 1)
			t.sqTail[j] = t.sqTail[j+1] + jf*jf*t.pmf[j+1]
		}
	})
	if k < 0 {
		k = -1
	}
	if k+1 < len(t.sqTail) {
		if k < 0 {
			return t.sqTail[0] // j = 0 contributes nothing
		}
		return t.sqTail[k]
	}
	return squareTail(t.base, k)
}

// AsRealPMF reports whether d (unwrapping a Tabulated decorator) extends
// its PMF smoothly to real arguments, and returns that extension.
func AsRealPMF(d Discrete) (RealPMF, bool) {
	if t, ok := d.(*Tabulated); ok {
		d = t.base
	}
	rp, ok := d.(RealPMF)
	return rp, ok
}

// AsFamily reports whether d (unwrapping a Tabulated decorator) belongs to
// a mean-parameterized family, and returns that family.
func AsFamily(d Discrete) (Family, bool) {
	if t, ok := d.(*Tabulated); ok {
		d = t.base
	}
	f, ok := d.(Family)
	return f, ok
}

// ensure interface conformance at compile time.
var (
	_ Discrete     = (*Tabulated)(nil)
	_ SquareTailer = (*Tabulated)(nil)
)
