package dist

import (
	"math"
	"testing"
)

// tabulatedBases returns the distributions the models actually tabulate.
func tabulatedBases(t *testing.T) map[string]Discrete {
	t.Helper()
	pois, err := NewPoisson(100)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExponentialMean(100)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewAlgebraicMean(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Discrete{"poisson": pois, "exponential": exp, "algebraic": alg}
}

// TestTabulatedMatchesBase checks that the decorator agrees with the base
// distribution everywhere: inside the table, at its edge, and beyond it.
func TestTabulatedMatchesBase(t *testing.T) {
	for name, base := range tabulatedBases(t) {
		t.Run(name, func(t *testing.T) {
			tab, ok := Tabulate(base).(*Tabulated)
			if !ok {
				t.Fatalf("Tabulate returned %T, want *Tabulated", Tabulate(base))
			}
			kTop := len(tab.pmf) - 1
			ks := []int{0, 1, 2, 37, 100, 163, 500, 1000, kTop - 1, kTop, kTop + 1, kTop + 500}
			// The algebraic base's own CDF/tail evaluations are internally
			// consistent only to ~1e-11, which bounds how closely a table
			// summed from its PMF can agree with them.
			const tol = 1e-10
			for _, k := range ks {
				if got, want := tab.PMF(k), base.PMF(k); math.Abs(got-want) > tol*(1+math.Abs(want)) {
					t.Errorf("PMF(%d) = %v, base %v", k, got, want)
				}
				if got, want := tab.CDF(k), base.CDF(k); math.Abs(got-want) > tol*(1+want) {
					t.Errorf("CDF(%d) = %v, base %v", k, got, want)
				}
				if got, want := tab.TailProb(k), base.TailProb(k); math.Abs(got-want) > tol*(1+want) {
					t.Errorf("TailProb(%d) = %v, base %v", k, got, want)
				}
				if got, want := tab.TailMean(k), base.TailMean(k); math.Abs(got-want) > 1e-8*(1+want) {
					t.Errorf("TailMean(%d) = %v, base %v", k, got, want)
				}
			}
			if got, want := tab.Mean(), base.Mean(); got != want {
				t.Errorf("Mean = %v, base %v", got, want)
			}
			for _, p := range []float64{0, 0.001, 0.25, 0.5, 0.9, 0.999, 0.9999999} {
				if got, want := tab.Quantile(p), base.Quantile(p); got != want {
					t.Errorf("Quantile(%v) = %d, base %d", p, got, want)
				}
			}
		})
	}
}

// TestTabulatedInternalConsistency checks the identities that tie the four
// tables together: CDF + TailProb = 1 and TailMean(k) − TailMean(k+1) =
// (k+1)·P(k+1).
func TestTabulatedInternalConsistency(t *testing.T) {
	for name, base := range tabulatedBases(t) {
		t.Run(name, func(t *testing.T) {
			tab := Tabulate(base).(*Tabulated)
			for k := 0; k < len(tab.pmf)-1; k++ {
				if s := tab.CDF(k) + tab.TailProb(k); math.Abs(s-1) > 1e-10 {
					t.Fatalf("CDF(%d)+TailProb(%d) = %v, want 1", k, k, s)
				}
				diff := tab.TailMean(k) - tab.TailMean(k+1)
				want := float64(k+1) * tab.PMF(k+1)
				if math.Abs(diff-want) > 1e-9*(1+want) {
					t.Fatalf("TailMean(%d)−TailMean(%d) = %v, want %v", k, k+1, diff, want)
				}
			}
		})
	}
}

// TestTabulatedSquareTail checks SquareTailMean against brute force for a
// base with and without its own SquareTailer implementation.
func TestTabulatedSquareTail(t *testing.T) {
	for name, base := range tabulatedBases(t) {
		t.Run(name, func(t *testing.T) {
			tab := Tabulate(base).(*Tabulated)
			for _, k := range []int{-1, 0, 50, 200} {
				got := tab.SquareTailMean(k)
				want := squareTail(base, k)
				if math.Abs(got-want) > 1e-9*(1+want) {
					t.Errorf("SquareTailMean(%d) = %v, want %v", k, got, want)
				}
			}
		})
	}
}

// TestTabulateIdempotent checks that re-tabulating is a no-op and that
// already-array-backed distributions pass through unchanged.
func TestTabulateIdempotent(t *testing.T) {
	pois, err := NewPoisson(50)
	if err != nil {
		t.Fatal(err)
	}
	tab := Tabulate(pois)
	if again := Tabulate(tab); again != tab {
		t.Errorf("Tabulate(Tabulate(d)) allocated a new decorator")
	}
	emp, err := NewEmpirical([]float64{0.25, 0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if got := Tabulate(emp); got != Discrete(emp) {
		t.Errorf("Tabulate(*Empirical) = %T, want the Empirical unchanged", got)
	}
}

// TestTabulatedUnwrap checks that the As* helpers see through the decorator
// to the base's optional interfaces.
func TestTabulatedUnwrap(t *testing.T) {
	alg, err := NewAlgebraicMean(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	tab := Tabulate(alg)
	if _, ok := tab.(RealPMF); ok {
		t.Fatalf("*Tabulated unexpectedly implements RealPMF directly")
	}
	rp, ok := AsRealPMF(tab)
	if !ok {
		t.Fatalf("AsRealPMF failed to unwrap the decorator")
	}
	if got, want := rp.PMFAt(123.5), alg.PMFAt(123.5); got != want {
		t.Errorf("unwrapped PMFAt = %v, want %v", got, want)
	}
	fam, ok := AsFamily(tab)
	if !ok {
		t.Fatalf("AsFamily failed to unwrap the decorator")
	}
	refit, err := fam.WithMean(140)
	if err != nil {
		t.Fatal(err)
	}
	if got := refit.Mean(); math.Abs(got-140) > 1e-6 {
		t.Errorf("unwrapped family WithMean(140).Mean() = %v", got)
	}
	// Direct (undecorated) arguments unwrap to themselves.
	if _, ok := AsRealPMF(alg); !ok {
		t.Errorf("AsRealPMF(base) = false, want true")
	}
	emp, err := NewEmpirical([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := AsRealPMF(emp); ok {
		t.Errorf("AsRealPMF(empirical) = true, want false (no real extension)")
	}
}
