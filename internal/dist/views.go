package dist

import (
	"fmt"
	"math"
)

// SquareTailer is an optional extension of Discrete providing exact second
// moments of the tail, Σ_{j>k} j²·P(j). The size-biased view needs it; the
// built-in distributions all implement it (the algebraic one returns +Inf
// when z ≤ 3, where the second moment genuinely diverges).
type SquareTailer interface {
	SquareTailMean(k int) float64
}

// SquareTailMean implements SquareTailer for Poisson using the identity
// j²·P(j; ν) = ν·(j−1)·P(j−1; ν) + ν·P(j−1; ν).
func (p Poisson) SquareTailMean(k int) float64 {
	return p.nu * (p.TailMean(k-1) + p.TailProb(k-1))
}

// SquareTailMean implements SquareTailer for Exponential via the closed form
// for Σ_{j≥m} j(j−1)q^j + Σ_{j≥m} j·q^j.
func (e Exponential) SquareTailMean(k int) float64 {
	if k < 0 {
		k = -1
	}
	m := float64(k + 1)
	q := e.q
	u := 1 - q
	qm := math.Pow(q, m)
	// Σ_{j≥m} j(j−1) q^j = m(m−1) q^m/u + 2m q^(m+1)/u² + 2 q^(m+2)/u³
	jj1 := m*(m-1)*qm/u + 2*m*qm*q/(u*u) + 2*qm*q*q/(u*u*u)
	// Σ_{j≥m} j q^j = q^m (m − (m−1) q)/u²
	j1 := qm * (m - (m-1)*q) / (u * u)
	return u * (jj1 + j1)
}

// squareTail computes Σ_{j>k} j²·P(j) for an arbitrary Discrete, using the
// exact SquareTailer when available and a high-quantile truncated sum
// otherwise.
func squareTail(d Discrete, k int) float64 {
	if st, ok := d.(SquareTailer); ok {
		return st.SquareTailMean(k)
	}
	top := d.Quantile(1 - 1e-15)
	var s float64
	for j := k + 1; j <= top; j++ {
		jf := float64(j)
		s += jf * jf * d.PMF(j)
	}
	return s
}

// SizeBiased is the "flow's-eye" view of a load distribution: the
// probability that an arriving flow shares the link with k−1 others is
// Q(k) = k·P(k)/k̄. The paper's sampling extension (§5.1) draws a flow's
// experienced load levels from Q.
type SizeBiased struct {
	base     Discrete
	baseMean float64
}

// NewSizeBiased returns the size-biased view of base.
func NewSizeBiased(base Discrete) (SizeBiased, error) {
	m := base.Mean()
	if !(m > 0) || math.IsInf(m, 0) {
		return SizeBiased{}, fmt.Errorf("dist: size-biased view needs a positive finite base mean, got %g", m)
	}
	return SizeBiased{base: base, baseMean: m}, nil
}

// Base returns the underlying distribution.
func (s SizeBiased) Base() Discrete { return s.base }

// PMF returns Q(k) = k·P(k)/k̄.
func (s SizeBiased) PMF(k int) float64 {
	if k < 1 {
		return 0
	}
	return float64(k) * s.base.PMF(k) / s.baseMean
}

// CDF returns P(Q ≤ k) = 1 − TailMean_P(k)/k̄.
func (s SizeBiased) CDF(k int) float64 {
	if k < 1 {
		return 0
	}
	return 1 - s.TailProb(k)
}

// TailProb returns Σ_{j>k} Q(j) = TailMean_P(k)/k̄.
func (s SizeBiased) TailProb(k int) float64 {
	if k < 1 {
		k = 0
	}
	return s.base.TailMean(k) / s.baseMean
}

// Mean returns E_Q[K] = E_P[K²]/k̄. It is +Inf when the base second moment
// diverges (algebraic z ≤ 3).
func (s SizeBiased) Mean() float64 {
	return squareTail(s.base, 0) / s.baseMean
}

// TailMean returns Σ_{j>k} j·Q(j) = Σ_{j>k} j²·P(j)/k̄.
func (s SizeBiased) TailMean(k int) float64 {
	return squareTail(s.base, k) / s.baseMean
}

// Quantile returns the smallest k with CDF(k) ≥ p.
func (s SizeBiased) Quantile(p float64) int {
	return quantileByScan(s, p, int(s.baseMean)+1)
}

// MaxOfS is the distribution of the maximum of S independent draws from a
// base distribution. The paper's sampling extension evaluates a flow at the
// worst of S load samples.
type MaxOfS struct {
	base Discrete
	s    int
}

// NewMaxOfS returns the max-of-s view of base; s must be ≥ 1.
func NewMaxOfS(base Discrete, s int) (MaxOfS, error) {
	if s < 1 {
		return MaxOfS{}, fmt.Errorf("dist: max-of-S needs S ≥ 1, got %d", s)
	}
	return MaxOfS{base: base, s: s}, nil
}

// S returns the number of samples.
func (m MaxOfS) S() int { return m.s }

// CDF returns F(k)^S.
func (m MaxOfS) CDF(k int) float64 {
	f := m.base.CDF(k)
	if f <= 0 {
		return 0
	}
	return math.Pow(f, float64(m.s))
}

// PMF returns F(k)^S − F(k−1)^S.
func (m MaxOfS) PMF(k int) float64 {
	v := m.CDF(k) - m.CDF(k-1)
	if v < 0 {
		return 0
	}
	return v
}

// TailProb returns 1 − F(k)^S, computed as −expm1(S·log1p(−T)) with
// T = P(K > k), so tiny tails keep full relative precision.
func (m MaxOfS) TailProb(k int) float64 {
	t := m.base.TailProb(k)
	if t >= 1 {
		return 1
	}
	return -math.Expm1(float64(m.s) * math.Log1p(-t))
}

// Mean returns E[max] = Σ_{k≥0} P(max > k). It is +Inf when the base mean
// is infinite.
func (m MaxOfS) Mean() float64 {
	if math.IsInf(m.base.TailMean(0), 1) {
		return math.Inf(1)
	}
	var sum float64
	for k := 0; ; k++ {
		t := m.TailProb(k)
		sum += t
		// The base tail bounds the remaining mass:
		// Σ_{j>k} P(max > j) ≤ S · Σ_{j>k} P(K > j) ≤ S·TailMean_P(k).
		if t < 1e-15 && float64(m.s)*m.base.TailMean(k) < 1e-12*(1+sum) {
			break
		}
		if k > 1<<26 {
			break
		}
	}
	return sum
}

// TailMean returns Σ_{j>k} j·P(max = j) via the identity
// Σ_{j>k} j·p_j = (k+1)·P(max > k) + Σ_{j>k} P(max > j).
func (m MaxOfS) TailMean(k int) float64 {
	if k < 0 {
		return m.Mean()
	}
	if math.IsInf(m.base.TailMean(0), 1) {
		return math.Inf(1)
	}
	sum := float64(k+1) * m.TailProb(k)
	for j := k + 1; ; j++ {
		t := m.TailProb(j)
		sum += t
		if t < 1e-15 && float64(m.s)*m.base.TailMean(j) < 1e-12*(1+sum) {
			break
		}
		if j > 1<<26 {
			break
		}
	}
	return sum
}

// Quantile returns the smallest k with CDF(k) ≥ p.
func (m MaxOfS) Quantile(p float64) int {
	if p <= 0 {
		return 0
	}
	// F_max(k) ≥ p ⇔ F(k) ≥ p^(1/S).
	return m.base.Quantile(math.Pow(p, 1/float64(m.s)))
}
