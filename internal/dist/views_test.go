package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmpiricalBasics(t *testing.T) {
	e, err := NewEmpirical([]float64{0, 2, 4, 2, 0, 2}) // mass at 1,2,3,5
	if err != nil {
		t.Fatal(err)
	}
	checkDiscreteInvariants(t, e, 10, 1e-12)
	want := (1*2 + 2*4 + 3*2 + 5*2) / 10.0
	if math.Abs(e.Mean()-want) > 1e-12 {
		t.Errorf("mean: %v, want %v", e.Mean(), want)
	}
	if e.PMF(99) != 0 || e.PMF(-1) != 0 {
		t.Error("PMF outside support should be 0")
	}
	if e.CDF(99) != 1 {
		t.Error("CDF beyond support should be 1")
	}
}

func TestEmpiricalErrors(t *testing.T) {
	if _, err := NewEmpirical([]float64{0, 0}); err == nil {
		t.Error("zero mass should fail")
	}
	if _, err := NewEmpirical([]float64{1, -1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewEmpirical([]float64{math.NaN()}); err == nil {
		t.Error("NaN weight should fail")
	}
}

func TestSizeBiasedAgainstBrute(t *testing.T) {
	bases := []Discrete{
		mustPoisson(t, 50),
		mustExpMean(t, 30),
		mustAlgMean(t, 3.5, 20),
	}
	for _, base := range bases {
		q, err := NewSizeBiased(base)
		if err != nil {
			t.Fatal(err)
		}
		kbar := base.Mean()
		for _, k := range []int{1, 5, 30, 77} {
			want := float64(k) * base.PMF(k) / kbar
			if got := q.PMF(k); math.Abs(got-want) > 1e-14 {
				t.Errorf("%T Q(%d): %v vs %v", base, k, got, want)
			}
		}
		// Q normalizes.
		top := base.Quantile(1 - 1e-13)
		var s float64
		for k := 1; k <= top; k++ {
			s += q.PMF(k)
		}
		s += q.TailProb(top)
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("%T size-biased mass: %v", base, s)
		}
		// CDF + TailProb = 1.
		for _, k := range []int{1, 10, 40} {
			if math.Abs(q.CDF(k)+q.TailProb(k)-1) > 1e-12 {
				t.Errorf("%T CDF/Tail inconsistent at %d", base, k)
			}
		}
	}
}

func TestSizeBiasedPoissonMean(t *testing.T) {
	// For Poisson, E_Q[K] = E[K²]/ν = ν + 1.
	base := mustPoisson(t, 100)
	q, _ := NewSizeBiased(base)
	if got := q.Mean(); math.Abs(got-101) > 1e-6 {
		t.Errorf("size-biased Poisson mean: %v, want 101", got)
	}
}

func TestSizeBiasedHeavyTailInfiniteMean(t *testing.T) {
	base := mustAlgMean(t, 3.0, 100)
	q, _ := NewSizeBiased(base)
	if !math.IsInf(q.Mean(), 1) {
		t.Errorf("size-biased algebraic z=3 mean should be +Inf, got %v", q.Mean())
	}
}

func TestSizeBiasedErrors(t *testing.T) {
	e, _ := NewEmpirical([]float64{1}) // all mass at 0 → mean 0
	if _, err := NewSizeBiased(e); err == nil {
		t.Error("zero-mean base should fail")
	}
}

func TestMaxOfOneIsBase(t *testing.T) {
	base := mustExpMean(t, 25)
	m, err := NewMaxOfS(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1, 10, 100} {
		if math.Abs(m.PMF(k)-base.PMF(k)) > 1e-14 {
			t.Errorf("PMF(%d) differs: %v vs %v", k, m.PMF(k), base.PMF(k))
		}
		if math.Abs(m.TailProb(k)-base.TailProb(k)) > 1e-12 {
			t.Errorf("TailProb(%d) differs", k)
		}
	}
	if math.Abs(m.Mean()-base.Mean()) > 1e-6*(1+base.Mean()) {
		t.Errorf("mean differs: %v vs %v", m.Mean(), base.Mean())
	}
}

func TestMaxOfSCDFPower(t *testing.T) {
	base := mustPoisson(t, 40)
	prop := func(seedK, seedS uint32) bool {
		k := int(seedK % 120)
		s := int(seedS%8) + 1
		m, err := NewMaxOfS(base, s)
		if err != nil {
			return false
		}
		want := math.Pow(base.CDF(k), float64(s))
		return math.Abs(m.CDF(k)-want) < 1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxOfSNormalizes(t *testing.T) {
	base := mustExpMean(t, 15)
	m, _ := NewMaxOfS(base, 5)
	top := base.Quantile(1 - 1e-12)
	var s float64
	for k := 0; k <= top; k++ {
		s += m.PMF(k)
	}
	s += m.TailProb(top)
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("max-of-5 mass: %v", s)
	}
}

func TestMaxOfSMeanMonotoneInS(t *testing.T) {
	base := mustPoisson(t, 30)
	prev := 0.0
	for s := 1; s <= 8; s *= 2 {
		m, _ := NewMaxOfS(base, s)
		mean := m.Mean()
		if mean < prev {
			t.Errorf("mean not monotone in S: S=%d mean=%v prev=%v", s, mean, prev)
		}
		prev = mean
	}
}

func TestMaxOfSTailMeanAgainstBrute(t *testing.T) {
	base := mustExpMean(t, 10)
	m, _ := NewMaxOfS(base, 3)
	for _, k := range []int{0, 4, 25} {
		brute := bruteTailMean(m, k, 3000)
		got := m.TailMean(k)
		if math.Abs(brute-got) > 1e-6*(1+brute) {
			t.Errorf("TailMean(%d): brute %v vs %v", k, brute, got)
		}
	}
}

func TestMaxOfSQuantile(t *testing.T) {
	base := mustPoisson(t, 60)
	m, _ := NewMaxOfS(base, 4)
	for _, p := range []float64{0.1, 0.5, 0.99} {
		q := m.Quantile(p)
		if m.CDF(q) < p {
			t.Errorf("Quantile(%g)=%d: CDF=%v < p", p, q, m.CDF(q))
		}
		if q > 0 && m.CDF(q-1) >= p {
			t.Errorf("Quantile(%g)=%d not minimal", p, q)
		}
	}
}

func TestMaxOfSErrors(t *testing.T) {
	if _, err := NewMaxOfS(mustPoisson(t, 5), 0); err == nil {
		t.Error("S = 0 should fail")
	}
}

func TestSamplingViewComposition(t *testing.T) {
	// The sampling extension composes size-biased + max-of-S; the composed
	// distribution must still normalize.
	base := mustAlgMean(t, 3.0, 100)
	q, err := NewSizeBiased(base)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaxOfS(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	const top = 100000
	var s float64
	for k := 1; k <= top; k++ {
		s += m.PMF(k)
	}
	s += m.TailProb(top)
	if math.Abs(s-1) > 1e-8 {
		t.Errorf("composed mass: %v", s)
	}
}

func TestEmpiricalFromSamples(t *testing.T) {
	e, err := NewEmpiricalSamples([]int{2, 2, 3, 5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.PMF(2); math.Abs(got-0.6) > 1e-15 {
		t.Errorf("P(2) = %v, want 0.6", got)
	}
	if got := e.Mean(); math.Abs(got-14.0/5) > 1e-12 {
		t.Errorf("mean = %v, want 2.8", got)
	}
	if _, err := NewEmpiricalSamples(nil); err == nil {
		t.Error("empty samples should fail")
	}
	if _, err := NewEmpiricalSamples([]int{1, -2}); err == nil {
		t.Error("negative sample should fail")
	}
}
