package loadgen

import (
	"math"
	"strings"
	"testing"

	"beqos/internal/resv"
	"beqos/internal/utility"
)

// TestBatchedRunMatchesSingleFrame pins the determinism contract of the
// -batch knob: batching changes the wire framing, not the experiment.
// Requests draw no randomness and the server grants batch bodies in order,
// so a batched run must reproduce the single-frame run's statistics bit
// for bit — same flows, same denials, same occupancy distribution.
func TestBatchedRunMatchesSingleFrame(t *testing.T) {
	util := utility.NewAdaptive()
	const c = 50.0
	run := func(batch int) *Result {
		t.Helper()
		res, err := Run(Config{
			Server:   newServer(t, c, util),
			Capacity: c,
			Util:     util,
			Rate:     60,
			Hold:     1,
			Duration: 40,
			Seed1:    7, Seed2: 7,
			Batch: batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	single, batched := run(0), run(16)

	if batched.Batches == 0 || batched.BatchedOps < 2*batched.Batches {
		t.Fatalf("batched run issued %d multi-op bodies carrying %d ops — batching never engaged",
			batched.Batches, batched.BatchedOps)
	}
	if single.Batches != 0 {
		t.Fatalf("single-frame run issued %d batches", single.Batches)
	}
	for _, cmp := range []struct {
		name            string
		single, batched int
	}{
		{"flows", single.Flows, batched.Flows},
		{"first-denied", single.FirstDenied, batched.FirstDenied},
		{"attempts", single.Attempts, batched.Attempts},
		{"denied", single.Denied, batched.Denied},
		{"grants", single.Grants, batched.Grants},
		{"teardowns", single.Teardowns, batched.Teardowns},
		{"peak-load", single.PeakLoad, batched.PeakLoad},
		{"anomalies", 0, batched.Anomalies},
		{"final-active", 0, batched.FinalActive},
	} {
		if cmp.single != cmp.batched {
			t.Errorf("%s: single-frame %d, batched %d", cmp.name, cmp.single, cmp.batched)
		}
	}
	if len(single.OccupancyWeights) != len(batched.OccupancyWeights) {
		t.Fatalf("occupancy support differs: %d vs %d states",
			len(single.OccupancyWeights), len(batched.OccupancyWeights))
	}
	for k := range single.OccupancyWeights {
		if math.Abs(single.OccupancyWeights[k]-batched.OccupancyWeights[k]) > 1e-12 {
			t.Fatalf("occupancy weight at k=%d diverged: %g vs %g",
				k, single.OccupancyWeights[k], batched.OccupancyWeights[k])
		}
	}
}

// TestBatchedRunSurvivesDrops exercises the batched drop/reissue path on
// the mux transport: survivor re-reserves travel as batch bodies and the
// books still close exactly.
func TestBatchedRunSurvivesDrops(t *testing.T) {
	util := utility.NewAdaptive()
	const c = 50.0
	res, err := Run(Config{
		Server:   newServer(t, c, util),
		Capacity: c,
		Util:     util,
		Rate:     60,
		Hold:     1,
		Duration: 30,
		Seed1:    11, Seed2: 11,
		Transport: "mux",
		DropEvery: 25,
		Batch:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops == 0 {
		t.Fatal("drop injection never fired — the scenario tests nothing")
	}
	if res.Batches == 0 {
		t.Fatal("batching never engaged")
	}
	if res.Anomalies != 0 {
		t.Errorf("anomalies = %d, want 0", res.Anomalies)
	}
	if res.FinalActive != 0 {
		t.Errorf("final active = %d, want 0", res.FinalActive)
	}
}

// TestBatchConfigValidation: the knob rejects what the wire cannot carry.
func TestBatchConfigValidation(t *testing.T) {
	util := utility.NewAdaptive()
	base := func() Config {
		return Config{
			Server:   newServer(t, 10, util),
			Capacity: 10,
			Util:     util,
			Rate:     5,
			Hold:     1,
			Duration: 2,
			Seed1:    1, Seed2: 1,
		}
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"oversized", func(c *Config) { c.Batch = resv.MaxBatch + 1 }, "batch"},
		{"negative", func(c *Config) { c.Batch = -1 }, "batch"},
		{"udp", func(c *Config) { c.Batch = 4; c.Transport = "udp" }, "udp"},
		{"retries", func(c *Config) { c.Batch = 4; c.RetryAttempts = 3 }, "retry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			_, err := Run(cfg)
			if err == nil {
				t.Fatalf("config %+v accepted", tc.name)
			}
			if !strings.Contains(strings.ToLower(err.Error()), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
