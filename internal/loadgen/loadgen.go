// Package loadgen is a concurrent load harness for the resv admission
// plane: it drives a resv.Server with open-loop Poisson flow arrivals and
// exponential holding times (the dynamics whose stationary occupancy is the
// paper's Poisson load), exercises the full protocol surface — reserve,
// teardown, refresh/keep-alive under TTL, retry backoff, connection drops,
// stalled clients — and measures blocking, occupancy, per-flow utility and
// request latency. CrossCheck then compares the measurements against the
// analytical model's P(k > kmax) and R(C): a live, end-to-end oracle for
// the admission server.
//
// Flow dynamics run in deterministic virtual time (a discrete-event clock
// shared with internal/sim), while every reservation decision is a real
// protocol round trip against the server under test, over net.Pipe for an
// in-process target or any net.Conn transport for a remote one. Flows
// denied a reservation stay in the offered population for their holding
// time and re-request as capacity frees (the paper's reservation-capable
// network still carries them best-effort), so the offered population is an
// unconstrained M/M/∞ process with Poisson occupancy — exactly the load
// distribution the analytical model postulates.
package loadgen

import (
	"context"
	"fmt"
	"math"
	"net"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"beqos/internal/obs"
	"beqos/internal/resv"
	"beqos/internal/rng"
	"beqos/internal/sim"
	"beqos/internal/utility"
	"beqos/internal/workload"
)

// rpcTimeout bounds any single protocol round trip.
const rpcTimeout = 10 * time.Second

// retryJitterStream is the rng.Substream index reserved for retry-backoff
// jitter, disjoint from the flow-dynamics stream (the base seed itself).
const retryJitterStream = 0x6a09e667

// batches is the number of equal time slices used for batch-means standard
// errors. Batch means absorb the serial correlation of occupancy samples
// (correlation time ≈ one holding time) that a naive binomial sigma would
// ignore.
const batches = 16

// Config describes one load-harness run.
type Config struct {
	// Server is an in-process target, reached over net.Pipe. When nil,
	// Network/Addr name a remote server instead.
	Server  *resv.Server
	Network string
	Addr    string

	// Capacity and Util describe the link under test; they must match the
	// server's configuration for the cross-validation to be meaningful.
	Capacity float64
	Util     utility.Function

	// Conns is the number of client connections; flows are assigned
	// round-robin across them (default 4).
	Conns int

	// Rate is the flow arrival rate λ and Hold the mean holding time, both
	// in virtual time units; the offered load is k̄ = λ·Hold.
	Rate float64
	Hold float64

	// Duration is the measured horizon and Warmup the excluded prefix
	// (default 5·Hold), in virtual time units. The run also pre-fills the
	// link with round(k̄) flows at time zero so warmup starts near
	// stationarity.
	Duration float64
	Warmup   float64

	// Workload, when non-nil, drives the run from a declarative scenario
	// (internal/workload) instead of the stationary Poisson pump:
	// arrivals, holding times, prefill, phases and per-flow wire classes
	// all come from the scenario's deterministic stream, seeded from
	// Seed1/Seed2. Rate, Hold, Duration and Warmup must be zero (the
	// scenario defines them); Class still applies when the scenario has
	// no class mixture. Results gain per-phase breakdowns (Result.Phases).
	Workload *workload.Scenario
	// WorkloadRecord, when non-nil, observes every consumed workload
	// record in stream order — the golden-determinism trace hook.
	WorkloadRecord func(workload.Flow)

	// Seed1, Seed2 seed the deterministic random source. Identical
	// configurations produce identical measurements.
	Seed1, Seed2 uint64

	// DropEvery > 0 injects a fault at every n-th reserved-flow departure:
	// the departing flow's connection is closed mid-flight instead of
	// sending a teardown, the server's connection-scoped release is awaited,
	// and the surviving flows re-establish their reservations over a fresh
	// connection.
	DropEvery int

	// RetryAttempts > 1 drives each arrival through ReserveWithRetry with
	// that many attempts (immediate, zero-backoff retries — the slot state
	// cannot change between synchronous attempts, so this exercises the
	// retry path without perturbing the measurements). The retry policy's
	// jitter RNG is seeded from the run seed, so retrying runs stay
	// deterministic.
	RetryAttempts int

	// Class tags every reservation request with an admission class
	// (policy.ClassStandard / ClassCritical / ClassSheddable) for
	// class-aware server policies. It must fit the wire's class space
	// (≤ resv.ClassMask) and is incompatible with RetryAttempts > 1: the
	// retry path is class-blind.
	Class uint8

	// PolicyDenies declares that the server runs an admission policy that
	// may deny below the critical threshold kmax — token-bucket shedding,
	// class tiers, measurement-based gating — so a denial with free
	// capacity is expected behavior, not an anomaly. Grants beyond kmax
	// and wrong grant shares are still counted as anomalies.
	PolicyDenies bool

	// Transport selects how the harness reaches the server: "classic" (one
	// stream connection per endpoint, the default), "mux" (each endpoint is
	// a flow-multiplexed stream client), or "udp" (datagram mode with
	// client-side retransmission).
	Transport string

	// UDPLossEvery ≥ 2 drops every n-th outgoing and every n-th incoming
	// datagram across the whole endpoint pool (udp transport only):
	// deterministic packet loss in both directions that forces the client
	// retransmit path and the server dedup path while the measurements stay
	// exact — a retransmitted reserve never admits twice. 1 would drop
	// every retransmission too, so it is rejected.
	UDPLossEvery int
	// UDPTimeout is the datagram retransmit flight timeout (default 25ms —
	// loopback-fast so injected loss costs milliseconds, not the 250ms
	// wide-area default).
	UDPTimeout time.Duration

	// Batch ≥ 2 coalesces protocol ops into multi-reserve bodies of up to
	// that many ops wherever the dynamics offer more than one op at a single
	// virtual instant: the pre-fill, burst arrivals, a departure's teardown
	// with the promotion reserves it frees, post-drop re-establishment, and
	// the final cleanup. The server processes a body in op order, so every
	// batched run keeps the exact sequential semantics — same grants, same
	// denials, same statistics — while paying one round trip per body. Lone
	// ops still travel as classic single frames. Batch framing is
	// stream-only (classic or mux transport) and the retry path is
	// single-frame, so Batch is incompatible with Transport "udp" and with
	// RetryAttempts > 1. 0 or 1 means single-frame operation.
	Batch int
}

func (cfg *Config) withDefaults() (Config, error) {
	c := *cfg
	if c.Server == nil && c.Addr == "" {
		return c, fmt.Errorf("loadgen: need an in-process Server or a remote Addr")
	}
	if c.Server != nil && c.Addr != "" {
		return c, fmt.Errorf("loadgen: Server and Addr are mutually exclusive")
	}
	if !(c.Capacity > 0) {
		return c, fmt.Errorf("loadgen: capacity must be positive, got %g", c.Capacity)
	}
	if c.Util == nil {
		return c, fmt.Errorf("loadgen: utility must be non-nil")
	}
	if c.Workload != nil {
		if c.Rate != 0 || c.Hold != 0 || c.Duration != 0 || c.Warmup != 0 {
			return c, fmt.Errorf("loadgen: Workload defines the dynamics; Rate, Hold, Duration and Warmup must be zero")
		}
		if len(c.Workload.Classes) > 0 {
			if c.Class != 0 {
				return c, fmt.Errorf("loadgen: the workload scenario carries its own class mixture; Class must be zero")
			}
			if c.RetryAttempts > 1 {
				return c, fmt.Errorf("loadgen: a class-mixture workload and RetryAttempts are mutually exclusive (the retry path is class-blind)")
			}
			for _, cl := range c.Workload.Classes {
				if cl.Tier > resv.ClassMask {
					return c, fmt.Errorf("loadgen: workload class %q tier %d does not fit the wire's class space (max %d)", cl.Name, cl.Tier, resv.ClassMask)
				}
			}
		}
		c.Warmup = c.Workload.Warmup
		c.Duration = c.Workload.Duration() - c.Workload.Warmup
	} else {
		if !(c.Rate > 0) || !(c.Hold > 0) {
			return c, fmt.Errorf("loadgen: need positive rate and holding time, got (%g, %g)", c.Rate, c.Hold)
		}
		if !(c.Duration > 0) {
			return c, fmt.Errorf("loadgen: duration must be positive, got %g", c.Duration)
		}
		if c.Warmup < 0 {
			return c, fmt.Errorf("loadgen: warmup must be nonnegative, got %g", c.Warmup)
		}
		if c.Warmup == 0 {
			c.Warmup = 5 * c.Hold
		}
	}
	if c.Conns == 0 {
		c.Conns = 4
	}
	if c.Conns < 1 {
		return c, fmt.Errorf("loadgen: need at least one connection, got %d", c.Conns)
	}
	if c.DropEvery < 0 || c.RetryAttempts < 0 {
		return c, fmt.Errorf("loadgen: DropEvery and RetryAttempts must be nonnegative")
	}
	if c.Class > resv.ClassMask {
		return c, fmt.Errorf("loadgen: class %d does not fit the wire's class space (max %d)", c.Class, resv.ClassMask)
	}
	if c.Class != 0 && c.RetryAttempts > 1 {
		return c, fmt.Errorf("loadgen: Class and RetryAttempts are mutually exclusive (the retry path is class-blind)")
	}
	switch c.Transport {
	case "":
		c.Transport = "classic"
	case "classic", "mux":
	case "udp":
		if c.DropEvery > 0 {
			return c, fmt.Errorf("loadgen: DropEvery needs a connection to drop; the udp transport has none (its fault model is UDPLossEvery)")
		}
	default:
		return c, fmt.Errorf("loadgen: unknown transport %q (want classic, mux, or udp)", c.Transport)
	}
	if c.UDPLossEvery != 0 {
		if c.Transport != "udp" {
			return c, fmt.Errorf("loadgen: UDPLossEvery applies only to the udp transport, not %q", c.Transport)
		}
		if c.UDPLossEvery < 2 {
			return c, fmt.Errorf("loadgen: UDPLossEvery must be ≥ 2 (1 would drop every retransmission too), got %d", c.UDPLossEvery)
		}
	}
	if c.UDPTimeout == 0 {
		c.UDPTimeout = 25 * time.Millisecond
	}
	if c.Batch < 0 || c.Batch > resv.MaxBatch {
		return c, fmt.Errorf("loadgen: Batch must be in [0, %d], got %d", resv.MaxBatch, c.Batch)
	}
	if c.Batch >= 2 {
		if c.Transport == "udp" {
			return c, fmt.Errorf("loadgen: Batch needs a stream transport; batch framing does not exist on udp")
		}
		if c.RetryAttempts > 1 {
			return c, fmt.Errorf("loadgen: Batch and RetryAttempts are mutually exclusive (the retry path is single-frame)")
		}
	}
	return c, nil
}

// Result reports one run's measurements. All statistics are deterministic
// for a fixed seed; only Latency and Elapsed depend on wall-clock behavior.
type Result struct {
	// KMax is the server-reported admission threshold.
	KMax int
	// Flows counts arrivals inside the measurement window (each issues
	// exactly one first attempt); FirstDenied counts their denials.
	// DenyRate = FirstDenied/Flows estimates the probability an arriving
	// flow finds the link full, P(k ≥ kmax) under Poisson load.
	Flows       int
	FirstDenied int
	DenyRate    float64
	// Attempts and Denied count every reservation request over the whole
	// run, including warmup, re-requests when capacity frees, retries, and
	// post-drop re-establishment.
	Attempts  int
	Denied    int
	Grants    int
	Teardowns int
	Retries   int
	// Drops, Reconnects and Reissued count injected connection faults and
	// the reservations re-established afterwards.
	Drops      int
	Reconnects int
	Reissued   int
	// Anomalies counts protocol responses that contradict the harness's
	// book-keeping: a denial with free capacity, a grant beyond kmax, or a
	// grant share that is not C/kmax. Zero on a correct server.
	Anomalies int

	// OverloadFraction is the time-weighted fraction of the measurement
	// window with offered population k > kmax — the direct estimator of the
	// paper's blocking probability P(k > kmax).
	OverloadFraction float64
	// MeanUtility is the measured per-flow utility: admitted flows score
	// π(C/n) at the instantaneous reserved count n, unreserved flows score
	// zero — the estimator of the paper's R(C).
	MeanUtility float64
	// MeasuredMeanLoad is the time-averaged offered population (→ k̄).
	MeasuredMeanLoad float64
	PeakLoad         int

	// Batch-means standard errors for the ratio statistics above.
	OverloadSigma float64
	DenySigma     float64
	UtilitySigma  float64
	LoadSigma     float64

	// OccupancyWeights is the time-weighted offered-population histogram
	// (index k = time spent with k flows present), ready for EmpiricalLoad.
	OccupancyWeights []float64

	// Latency is the wall-clock protocol round-trip-time distribution in
	// nanoseconds, snapshotted from the endpoint pool's shared
	// resv.ClientMetrics RTT histogram (the same instrument a remote
	// harness would scrape from /metrics).
	Latency obs.HistSnapshot

	// UDPRetransmits counts datagram re-sends after a reply timeout (udp
	// transport under UDPLossEvery; 0 otherwise).
	UDPRetransmits int

	// Batches counts the multi-op bodies issued in batch mode and
	// BatchedOps the protocol ops they carried (0 in single-frame mode;
	// lone ops always travel as single frames and are not counted here).
	Batches    int
	BatchedOps int

	// Phases holds the per-phase measured breakdown of a workload-driven
	// run (indexed like Config.Workload.Phases; nil otherwise).
	Phases []PhaseStats

	// FinalActive is the server's reservation count after cleanup (0 on a
	// correct server: every grant was matched by a teardown or release).
	FinalActive int
	Elapsed     time.Duration
}

// flow is one offered flow's harness-side state.
type flow struct {
	id       uint64
	conn     int
	tier     uint8 // wire admission class carried on every request
	phase    int   // scenario phase index (workload runs only)
	present  bool
	reserved bool
}

// arrival is one pre-drawn arrival: the holding time comes off the RNG
// when the group is built (before any protocol round trip — RPCs draw
// nothing, so the draw sequence matches the legacy draw-inside-arrive
// order exactly), and the tier/phase come from the workload record or the
// run-wide Class.
type arrival struct {
	hold  float64
	tier  uint8
	phase int
}

// rclient is the protocol surface the harness drives. *resv.Client covers
// the classic and udp transports and *resv.MuxClient the mux transport;
// the harness is indifferent beyond this interface.
type rclient interface {
	Reserve(ctx context.Context, flowID uint64, bandwidth float64) (bool, float64, error)
	ReserveClass(ctx context.Context, flowID uint64, bandwidth float64, class uint8) (bool, float64, error)
	ReserveWithRetry(ctx context.Context, flowID uint64, bandwidth float64, policy resv.RetryPolicy) (bool, float64, int, error)
	ReserveBatch(ctx context.Context, ops []resv.Frame) (resv.BatchVerdict, float64, error)
	Teardown(ctx context.Context, flowID uint64) error
	Stats(ctx context.Context) (int, int, error)
	SetMetrics(m *resv.ClientMetrics)
	Close() error
}

// endpoint is one client connection and the reservations living on it.
type endpoint struct {
	client   rclient
	reserved map[uint64]*flow
}

// lossDebug (BEQOS_LOSS_DEBUG=1) traces every datagram through the loss
// layer — direction, pass/drop, decoded type and flow — for diagnosing
// fault-injection runs frame by frame.
var lossDebug = os.Getenv("BEQOS_LOSS_DEBUG") != ""

// lossyConn injects deterministic datagram loss in both directions: every
// n-th outgoing write (request loss — the server never hears it) and every
// n-th incoming read (reply loss — the server answered, forcing the dedup
// path) across the pool. The counters are shared by all endpoints, so
// identical configurations lose identical packets.
type lossyConn struct {
	net.Conn
	every    uint64
	sent     *atomic.Uint64
	received *atomic.Uint64
}

func (lc *lossyConn) Write(b []byte) (int, error) {
	if lc.sent.Add(1)%lc.every == 0 {
		if lossDebug {
			f, _ := resv.DecodeDatagram(b)
			fmt.Fprintf(os.Stderr, "LOSS send DROP %s flow=%d\n", f.Type, f.FlowID)
		}
		return len(b), nil // lost on the wire
	}
	if lossDebug {
		f, _ := resv.DecodeDatagram(b)
		fmt.Fprintf(os.Stderr, "LOSS send pass %s flow=%d\n", f.Type, f.FlowID)
	}
	return lc.Conn.Write(b)
}

func (lc *lossyConn) Read(b []byte) (int, error) {
	for {
		n, err := lc.Conn.Read(b)
		if err != nil {
			return n, err
		}
		if lc.received.Add(1)%lc.every == 0 {
			if lossDebug {
				f, _ := resv.DecodeDatagram(b[:n])
				fmt.Fprintf(os.Stderr, "LOSS recv DROP %s flow=%d val=%g\n", f.Type, f.FlowID, f.Value)
			}
			continue // the reply is lost; the client's timer handles it
		}
		if lossDebug {
			f, _ := resv.DecodeDatagram(b[:n])
			fmt.Fprintf(os.Stderr, "LOSS recv pass %s flow=%d val=%g\n", f.Type, f.FlowID, f.Value)
		}
		return n, nil
	}
}

type runner struct {
	cfg   Config
	eng   *sim.Engine
	src   *rng.Source
	eps   []*endpoint
	share float64 // expected grant share C/kmax

	// retryRand feeds the retry policies' jitter, on its own substream of
	// the run seed so retrying runs are as deterministic as plain ones.
	retryRand func() float64

	// cm is the endpoint pool's shared instrument set; every protocol
	// round trip lands here, and finish() derives the Result's attempt,
	// outcome, retry and latency statistics from it instead of bespoke
	// per-call-site tallies.
	cm *resv.ClientMetrics

	// udpLn is the in-process datagram listener (udp transport against an
	// in-process Server); lossSent/lossRecv are the pool-wide loss counters.
	udpLn    net.PacketConn
	lossSent atomic.Uint64
	lossRecv atomic.Uint64

	kmax     int
	nextID   uint64
	rrNext   int
	pop      int
	nres     int
	waiting  []*flow
	dropTick int

	// piTimes[n] = n·π(C/n) for n in [0, kmax], the total-utility table.
	piTimes []float64

	// Per-batch accumulators over the measurement window.
	last     float64
	time     []float64
	overload []float64
	popInt   []float64
	utilInt  []float64
	firstAtt []float64
	firstDen []float64
	occ      []float64
	peak     int

	// Workload-mode state: the scenario stream, its one-record lookahead
	// (so simultaneous records group into one virtual instant), and the
	// per-phase accumulators.
	wl     *workload.Stream
	wlNext workload.Flow
	wlOK   bool
	phases []phaseAccum

	res Result
	err error // first RPC/transport failure; aborts the run
}

// Run executes one load-harness run and returns its measurements.
func Run(cfg Config) (*Result, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	r := &runner{
		cfg:      c,
		eng:      sim.NewEngine(),
		src:      rng.New(c.Seed1, c.Seed2),
		time:     make([]float64, batches),
		overload: make([]float64, batches),
		popInt:   make([]float64, batches),
		utilInt:  make([]float64, batches),
		firstAtt: make([]float64, batches),
		firstDen: make([]float64, batches),
	}
	r.cm = resv.NewClientMetrics(obs.New())
	js1, js2 := rng.Substream(c.Seed1, c.Seed2, retryJitterStream)
	r.retryRand = rng.New(js1, js2).Float64
	defer func() {
		for _, ep := range r.eps {
			_ = ep.client.Close()
		}
		if r.udpLn != nil {
			_ = r.udpLn.Close()
		}
	}()
	for i := 0; i < c.Conns; i++ {
		ep, err := r.connect()
		if err != nil {
			return nil, err
		}
		r.eps = append(r.eps, ep)
	}
	kmax, active, err := r.stats()
	if err != nil {
		return nil, fmt.Errorf("loadgen: initial stats: %w", err)
	}
	if kmax < 1 {
		return nil, fmt.Errorf("loadgen: server reports kmax = %d", kmax)
	}
	if active != 0 {
		return nil, fmt.Errorf("loadgen: server already holds %d reservations; the harness needs exclusive use", active)
	}
	r.kmax = kmax
	r.res.KMax = kmax
	r.share = c.Capacity / float64(kmax)
	r.piTimes = make([]float64, kmax+1)
	for n := 1; n <= kmax; n++ {
		r.piTimes[n] = float64(n) * c.Util.Eval(c.Capacity/float64(n))
	}

	if c.Workload != nil {
		// Scenario-driven dynamics: the stream owns all randomness. The
		// t=0 group (prefill plus any zero-time arrivals) lands before the
		// event loop starts, exactly like the stationary pre-fill.
		r.wl = c.Workload.Stream(c.Seed1, c.Seed2)
		r.phases = make([]phaseAccum, len(c.Workload.Phases))
		r.pull()
		r.arriveGroup(r.takeGroup(0))
		if r.err != nil {
			return nil, r.err
		}
		r.pumpWorkload()
	} else {
		arr, err := sim.NewPoissonArrivals(c.Rate)
		if err != nil {
			return nil, err
		}
		hold, err := sim.NewExpHolding(c.Hold)
		if err != nil {
			return nil, err
		}

		// Pre-fill the link with round(k̄) flows so warmup starts near the
		// stationary regime (exponential holding is memoryless, so a fresh
		// holding time is the correct stationary residual).
		r.arriveGroup(r.drawGroup(hold, int(c.Rate*c.Hold+0.5)))
		if r.err != nil {
			return nil, r.err
		}
		var pump func()
		pump = func() {
			wait, batch := arr.Next(r.src)
			r.eng.Schedule(wait, func() {
				if r.err != nil {
					return
				}
				r.arriveGroup(r.drawGroup(hold, batch))
				pump()
			})
		}
		pump()
	}
	horizon := c.Warmup + c.Duration
	r.eng.Run(horizon)
	if r.err != nil {
		return nil, r.err
	}
	r.advance(horizon)

	// Clean teardown of everything still reserved, then confirm the server
	// agrees the link is empty.
	for _, ep := range r.eps {
		ids := make([]uint64, 0, len(ep.reserved))
		for id := range ep.reserved {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if r.batched() && len(ids) >= 2 {
			if err := r.teardownBatch(ep, ids); err != nil {
				return nil, err
			}
			continue
		}
		for _, id := range ids {
			if err := r.teardown(ep.reserved[id]); err != nil {
				return nil, err
			}
		}
	}
	if _, active, err := r.stats(); err == nil {
		r.res.FinalActive = active
	} else {
		return nil, fmt.Errorf("loadgen: final stats: %w", err)
	}

	r.finish()
	r.res.Elapsed = time.Since(start)
	return &r.res, nil
}

// dial opens one connection to the target in the configured transport:
// net.Pipe (stream transports) or a loopback datagram socket (udp) into an
// in-process server, or a network dial for a remote one.
func (r *runner) dial() (rclient, error) {
	cfg := &r.cfg
	network := cfg.Network
	if network == "" {
		network = "tcp"
	}
	switch cfg.Transport {
	case "mux":
		if cfg.Server != nil {
			cEnd, sEnd := net.Pipe()
			go cfg.Server.HandleConn(sEnd)
			return resv.NewMuxClient(cEnd), nil
		}
		ctx, cancel := rpcCtx()
		defer cancel()
		return resv.DialMux(ctx, network, cfg.Addr)
	case "udp":
		addr := cfg.Addr
		if cfg.Server != nil {
			// The in-process datagram target still needs a real socket:
			// net.Pipe has stream semantics, and the datagram transport's
			// loss model only makes sense over packets. One loopback
			// listener serves the whole endpoint pool.
			if r.udpLn == nil {
				pc, err := net.ListenPacket("udp", "127.0.0.1:0")
				if err != nil {
					return nil, fmt.Errorf("loadgen: udp listener: %w", err)
				}
				srv := cfg.Server
				go func() { _ = srv.ServePacket(pc) }()
				r.udpLn = pc
			}
			addr = r.udpLn.LocalAddr().String()
		}
		nc, err := net.Dial("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: dial udp %s: %w", addr, err)
		}
		conn := net.Conn(nc)
		if cfg.UDPLossEvery > 0 {
			conn = &lossyConn{Conn: nc, every: uint64(cfg.UDPLossEvery), sent: &r.lossSent, received: &r.lossRecv}
		}
		return resv.NewUDPClient(conn, resv.UDPConfig{Timeout: cfg.UDPTimeout}), nil
	default: // classic
		return dialClassic(cfg.Server, network, cfg.Addr)
	}
}

// dialClassic opens one plain stream connection: net.Pipe into an
// in-process server, or a network dial. The soft-state probe always uses
// this transport.
func dialClassic(server *resv.Server, network, addr string) (*resv.Client, error) {
	if server != nil {
		cEnd, sEnd := net.Pipe()
		go server.HandleConn(sEnd)
		return resv.NewClient(cEnd), nil
	}
	if network == "" {
		network = "tcp"
	}
	ctx, cancel := rpcCtx()
	defer cancel()
	return resv.Dial(ctx, network, addr)
}

// connect opens one harness endpoint wired into the shared instrument set.
func (r *runner) connect() (*endpoint, error) {
	c, err := r.dial()
	if err != nil {
		return nil, err
	}
	c.SetMetrics(r.cm)
	return &endpoint{client: c, reserved: make(map[uint64]*flow)}, nil
}

func rpcCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), rpcTimeout)
}

// stats fetches (kmax, active) over any live connection.
func (r *runner) stats() (int, int, error) {
	ctx, cancel := rpcCtx()
	defer cancel()
	return r.eps[0].client.Stats(ctx)
}

// inWindow reports whether the current instant is measured, and its batch.
func (r *runner) inWindow() (int, bool) {
	now := r.eng.Now()
	if now < r.cfg.Warmup || now >= r.cfg.Warmup+r.cfg.Duration {
		return 0, false
	}
	b := int((now - r.cfg.Warmup) / (r.cfg.Duration / batches))
	if b >= batches {
		b = batches - 1
	}
	return b, true
}

// advance integrates the piecewise-constant state up to virtual time `to`,
// splitting across batch boundaries.
func (r *runner) advance(to float64) {
	from := r.last
	r.last = to
	w, d := r.cfg.Warmup, r.cfg.Duration
	lo := math.Max(from, w)
	hi := math.Min(to, w+d)
	if hi <= lo {
		return
	}
	bd := d / batches
	for lo < hi {
		b := int((lo - w) / bd)
		if b >= batches {
			b = batches - 1
		}
		end := math.Min(w+float64(b+1)*bd, hi)
		dt := end - lo
		r.time[b] += dt
		r.popInt[b] += dt * float64(r.pop)
		if r.pop > r.kmax {
			r.overload[b] += dt
		}
		r.utilInt[b] += dt * r.piTimes[r.nres]
		for len(r.occ) <= r.pop {
			r.occ = append(r.occ, 0)
		}
		r.occ[r.pop] += dt
		lo = end
	}
	if r.wl != nil {
		r.advancePhases(from, to)
	}
}

// arrive handles one flow arrival: it joins the offered population, issues
// its first reservation attempt, and schedules its departure.
func (r *runner) arrive(a arrival) {
	if r.err != nil {
		return
	}
	r.advance(r.eng.Now())
	r.nextID++
	f := &flow{id: r.nextID, conn: r.rrNext, tier: a.tier, phase: a.phase, present: true}
	r.rrNext = (r.rrNext + 1) % len(r.eps)
	r.pop++
	if r.pop > r.peak {
		r.peak = r.pop
	}
	b, counted := r.inWindow()
	if counted {
		r.res.Flows++
		r.firstAtt[b]++
		r.phaseFirst(f.phase, false)
	}
	granted := r.request(f)
	if r.err != nil {
		return
	}
	if !granted {
		if counted {
			r.res.FirstDenied++
			r.firstDen[b]++
			r.phaseFirst(f.phase, true)
		}
		r.waiting = append(r.waiting, f)
	}
	r.eng.Schedule(a.hold, func() { r.depart(f) })
}

// drawGroup pre-draws n stationary arrivals (holding times in flow order,
// the run-wide wire class) for one virtual instant.
func (r *runner) drawGroup(hold sim.Holding, n int) []arrival {
	g := make([]arrival, n)
	for i := range g {
		g[i] = arrival{hold: hold.Sample(r.src), tier: r.cfg.Class}
	}
	return g
}

// request issues one reservation attempt (or a retry burst) for f and
// updates the harness's book-keeping from the server's answer.
func (r *runner) request(f *flow) bool {
	ep := r.eps[f.conn]
	ctx, cancel := rpcCtx()
	defer cancel()
	var ok bool
	var share float64
	var err error
	if r.cfg.RetryAttempts > 1 {
		ok, share, _, err = ep.client.ReserveWithRetry(ctx, f.id, 1, resv.RetryPolicy{
			MaxAttempts: r.cfg.RetryAttempts,
			Multiplier:  1,
			Rand:        r.retryRand,
		})
	} else {
		ok, share, err = ep.client.ReserveClass(ctx, f.id, 1, f.tier)
	}
	if err != nil {
		r.err = fmt.Errorf("loadgen: reserve flow %d: %w", f.id, err)
		return false
	}
	if ok {
		if r.nres >= r.kmax {
			r.res.Anomalies++ // grant beyond the admission threshold
		}
		if math.Abs(share-r.share) > 1e-9 {
			r.res.Anomalies++ // share must be the worst-case C/kmax
		}
		f.reserved = true
		r.nres++
		ep.reserved[f.id] = f
	} else if r.nres < r.kmax && !r.cfg.PolicyDenies {
		r.res.Anomalies++ // denial with free capacity
	}
	return ok
}

// batched reports whether multi-op bodies are enabled.
func (r *runner) batched() bool { return r.cfg.Batch >= 2 }

// arriveGroup handles n flow arrivals at one virtual instant. In
// single-frame mode (or for a lone arrival) each goes through arrive; in
// batch mode the group's first attempts coalesce into multi-reserve
// bodies of up to Batch ops, one connection per body (round-robin moves
// per body instead of per flow). The server grants a body's ops exactly
// as it would grant the same frames sent one at a time, and the holding
// times draw from the RNG in the same order either way, so a batched run
// reproduces the sequential run's dynamics and statistics bit for bit.
func (r *runner) arriveGroup(g []arrival) {
	if !r.batched() || len(g) < 2 {
		for _, a := range g {
			r.arrive(a)
		}
		return
	}
	r.advance(r.eng.Now())
	b, counted := r.inWindow()
	for len(g) > 0 && r.err == nil {
		chunk := len(g)
		if chunk > r.cfg.Batch {
			chunk = r.cfg.Batch
		}
		ci := r.rrNext
		r.rrNext = (r.rrNext + 1) % len(r.eps)
		flows := make([]*flow, chunk)
		for i := range flows {
			r.nextID++
			flows[i] = &flow{id: r.nextID, conn: ci, tier: g[i].tier, phase: g[i].phase, present: true}
			r.pop++
			if r.pop > r.peak {
				r.peak = r.pop
			}
			if counted {
				r.res.Flows++
				r.firstAtt[b]++
				r.phaseFirst(g[i].phase, false)
			}
		}
		granted := r.requestBatch(ci, flows)
		if r.err != nil {
			return
		}
		for i, f := range flows {
			if !granted[i] {
				if counted {
					r.res.FirstDenied++
					r.firstDen[b]++
					r.phaseFirst(f.phase, true)
				}
				r.waiting = append(r.waiting, f)
			}
			f := f
			r.eng.Schedule(g[i].hold, func() { r.depart(f) })
		}
		g = g[chunk:]
	}
}

// issueBatch sends one multi-op body over ep's connection and tallies it.
func (r *runner) issueBatch(ep *endpoint, ops []resv.Frame) (resv.BatchVerdict, float64, error) {
	ctx, cancel := rpcCtx()
	defer cancel()
	r.res.Batches++
	r.res.BatchedOps += len(ops)
	return ep.client.ReserveBatch(ctx, ops)
}

// requestBatch issues one multi-reserve body for flows (all assigned to
// connection ci) and books every verdict bit exactly as request books a
// single reply: grant and share anomalies, harness reservation state,
// the endpoint's conn-scoped books. It returns per-flow grants, nil when
// the run aborted.
func (r *runner) requestBatch(ci int, flows []*flow) []bool {
	ep := r.eps[ci]
	ops := make([]resv.Frame, len(flows))
	for i, f := range flows {
		ops[i] = resv.Frame{Type: resv.MsgRequest, Class: f.tier, FlowID: f.id, Value: 1}
	}
	v, share, err := r.issueBatch(ep, ops)
	if err != nil {
		r.err = fmt.Errorf("loadgen: batch reserve (%d flows): %w", len(flows), err)
		return nil
	}
	granted := make([]bool, len(flows))
	anyGrant := false
	for i, f := range flows {
		ok := v.Granted(i)
		granted[i] = ok
		if ok {
			anyGrant = true
			if r.nres >= r.kmax {
				r.res.Anomalies++ // grant beyond the admission threshold
			}
			f.reserved = true
			r.nres++
			ep.reserved[f.id] = f
		} else if r.nres < r.kmax && !r.cfg.PolicyDenies {
			r.res.Anomalies++ // denial with free capacity
		}
	}
	if anyGrant && math.Abs(share-r.share) > 1e-9 {
		r.res.Anomalies++ // the batch share must be the worst-case C/kmax
	}
	return granted
}

// teardownPromote is depart's batched tail: the departing flow's teardown
// and the promotion reserves its slot frees ride one body. A waiting flow
// has no server-side state, so a promotion candidate is reassigned to the
// departing flow's connection to share its body; in-order body processing
// frees the slot before the first reserve claims it. Denied candidates
// return to the head of the waiting list and end the promotion round,
// exactly like a sequential promote.
func (r *runner) teardownPromote(f *flow) {
	free := r.kmax - (r.nres - 1)
	limit := r.cfg.Batch - 1
	if limit > free {
		limit = free
	}
	var cands []*flow
	for len(cands) < limit {
		var c *flow
		for len(r.waiting) > 0 {
			head := r.waiting[0]
			r.waiting = r.waiting[1:]
			if head.present && !head.reserved {
				c = head
				break
			}
		}
		if c == nil {
			break
		}
		c.conn = f.conn
		cands = append(cands, c)
	}
	if len(cands) == 0 { // a lone teardown travels as a single frame
		if err := r.teardown(f); err != nil {
			r.err = err
		}
		return
	}
	ep := r.eps[f.conn]
	ops := make([]resv.Frame, 0, len(cands)+1)
	ops = append(ops, resv.Frame{Type: resv.MsgTeardown, FlowID: f.id})
	for _, c := range cands {
		ops = append(ops, resv.Frame{Type: resv.MsgRequest, Class: c.tier, FlowID: c.id, Value: 1})
	}
	v, share, err := r.issueBatch(ep, ops)
	if err != nil {
		r.err = fmt.Errorf("loadgen: teardown+promote batch for flow %d: %w", f.id, err)
		return
	}
	if !v.Granted(0) {
		r.err = fmt.Errorf("loadgen: server rejected teardown of reserved flow %d", f.id)
		return
	}
	f.reserved = false
	r.nres--
	delete(ep.reserved, f.id)
	anyGrant := false
	var back []*flow
	for i, c := range cands {
		if v.Granted(i + 1) {
			anyGrant = true
			if r.nres >= r.kmax {
				r.res.Anomalies++ // grant beyond the admission threshold
			}
			c.reserved = true
			r.nres++
			ep.reserved[c.id] = c
		} else {
			if r.nres < r.kmax && !r.cfg.PolicyDenies {
				r.res.Anomalies++ // denial with free capacity
			}
			back = append(back, c)
		}
	}
	if anyGrant && math.Abs(share-r.share) > 1e-9 {
		r.res.Anomalies++ // the batch share must be the worst-case C/kmax
	}
	if len(back) > 0 {
		r.waiting = append(back, r.waiting...)
		return // a denial ends the promotion round, as in promote
	}
	// More free slots than one body could carry: finish promoting singly.
	r.promote()
}

// teardownBatch releases ep's remaining reservations in multi-teardown
// bodies; every op's bit must come back set.
func (r *runner) teardownBatch(ep *endpoint, ids []uint64) error {
	for lo := 0; lo < len(ids); lo += r.cfg.Batch {
		hi := lo + r.cfg.Batch
		if hi > len(ids) {
			hi = len(ids)
		}
		chunk := ids[lo:hi]
		ops := make([]resv.Frame, len(chunk))
		for i, id := range chunk {
			ops[i] = resv.Frame{Type: resv.MsgTeardown, FlowID: id}
		}
		v, _, err := r.issueBatch(ep, ops)
		if err != nil {
			return fmt.Errorf("loadgen: batch teardown: %w", err)
		}
		for i, id := range chunk {
			if !v.Granted(i) {
				return fmt.Errorf("loadgen: server rejected teardown of reserved flow %d", id)
			}
			f := ep.reserved[id]
			f.reserved = false
			r.nres--
			delete(ep.reserved, id)
		}
	}
	return nil
}

// teardown releases f's reservation.
func (r *runner) teardown(f *flow) error {
	ep := r.eps[f.conn]
	ctx, cancel := rpcCtx()
	defer cancel()
	if err := ep.client.Teardown(ctx, f.id); err != nil {
		return fmt.Errorf("loadgen: teardown flow %d: %w", f.id, err)
	}
	f.reserved = false
	r.nres--
	delete(ep.reserved, f.id)
	return nil
}

// depart handles one flow leaving the offered population.
func (r *runner) depart(f *flow) {
	if r.err != nil {
		return
	}
	r.advance(r.eng.Now())
	r.pop--
	f.present = false
	if !f.reserved {
		return // was waiting; lazily skipped at promotion
	}
	if r.cfg.DropEvery > 0 {
		r.dropTick++
		if r.dropTick%r.cfg.DropEvery == 0 {
			r.dropConn(f)
			r.promote()
			return
		}
	}
	if r.batched() {
		r.teardownPromote(f)
		return
	}
	if err := r.teardown(f); err != nil {
		r.err = err
		return
	}
	r.promote()
}

// promote hands freed capacity to waiting flows, oldest first.
func (r *runner) promote() {
	for r.err == nil && r.nres < r.kmax {
		var f *flow
		for len(r.waiting) > 0 {
			head := r.waiting[0]
			r.waiting = r.waiting[1:]
			if head.present && !head.reserved {
				f = head
				break
			}
		}
		if f == nil {
			return
		}
		if !r.request(f) {
			if r.err == nil {
				// Unexpected denial (already counted as an anomaly): put
				// the flow back and stop promoting this round.
				r.waiting = append([]*flow{f}, r.waiting...)
			}
			return
		}
	}
}

// dropConn injects a connection fault: the departing flow's connection is
// closed with reservations live, the server's connection-scoped release is
// awaited, and surviving flows re-reserve over a replacement connection.
// All of it happens at one virtual instant, so the fault exercises the
// protocol without perturbing the time-weighted statistics.
func (r *runner) dropConn(departing *flow) {
	ci := departing.conn
	ep := r.eps[ci]
	affected := len(ep.reserved) // includes the departing flow
	survivors := make([]*flow, 0, affected)
	for _, f := range ep.reserved {
		f.reserved = false
		if f.present {
			survivors = append(survivors, f)
		}
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].id < survivors[j].id })
	r.nres -= affected
	expect := r.nres
	_ = ep.client.Close()
	r.res.Drops++

	fresh, err := r.connect()
	if err != nil {
		r.err = fmt.Errorf("loadgen: reconnect after drop: %w", err)
		return
	}
	r.eps[ci] = fresh
	r.res.Reconnects++

	// Wait for the server to process the connection-scoped release before
	// re-reserving — otherwise the re-requests race the release and can be
	// spuriously denied.
	deadline := time.Now().Add(rpcTimeout)
	for {
		_, active, err := r.stats()
		if err != nil {
			r.err = fmt.Errorf("loadgen: stats after drop: %w", err)
			return
		}
		if active == expect {
			break
		}
		if time.Now().After(deadline) {
			r.err = fmt.Errorf("loadgen: server holds %d reservations %v after drop, want %d", active, rpcTimeout, expect)
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	if r.batched() && len(survivors) >= 2 {
		for lo := 0; lo < len(survivors); lo += r.cfg.Batch {
			hi := lo + r.cfg.Batch
			if hi > len(survivors) {
				hi = len(survivors)
			}
			granted := r.requestBatch(ci, survivors[lo:hi])
			if r.err != nil {
				return
			}
			for i, f := range survivors[lo:hi] {
				if !granted[i] {
					r.waiting = append(r.waiting, f) // anomaly already counted
					continue
				}
				r.res.Reissued++
			}
		}
		return
	}
	for _, f := range survivors {
		if !r.request(f) {
			if r.err != nil {
				return
			}
			r.waiting = append(r.waiting, f) // anomaly already counted
			continue
		}
		r.res.Reissued++
	}
}

// ratio folds per-batch numerators/denominators into an overall ratio and
// its batch-means standard error.
func ratio(num, den []float64) (v, sigma float64) {
	var sn, sd float64
	var vals []float64
	for b := range num {
		sn += num[b]
		sd += den[b]
		if den[b] > 0 {
			vals = append(vals, num[b]/den[b])
		}
	}
	if sd == 0 {
		return 0, 0
	}
	v = sn / sd
	n := len(vals)
	if n < 2 {
		return v, 0
	}
	var mean float64
	for _, x := range vals {
		mean += x
	}
	mean /= float64(n)
	var ss float64
	for _, x := range vals {
		ss += (x - mean) * (x - mean)
	}
	sigma = math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n))
	return v, sigma
}

// finish derives the summary statistics from the batch accumulators and
// the shared client instruments.
func (r *runner) finish() {
	r.res.Attempts = int(r.cm.Requests.Load())
	r.res.Denied = int(r.cm.Denials.Load())
	r.res.Grants = int(r.cm.Grants.Load())
	r.res.Teardowns = int(r.cm.Teardowns.Load())
	r.res.Retries = int(r.cm.Retries.Load())
	r.res.UDPRetransmits = int(r.cm.Retransmits.Load())
	r.res.Latency = r.cm.RTT.Snapshot()
	r.res.OverloadFraction, r.res.OverloadSigma = ratio(r.overload, r.time)
	r.res.DenyRate, r.res.DenySigma = ratio(r.firstDen, r.firstAtt)
	r.res.MeanUtility, r.res.UtilitySigma = ratio(r.utilInt, r.popInt)
	r.res.MeasuredMeanLoad, r.res.LoadSigma = ratio(r.popInt, r.time)
	r.res.PeakLoad = r.peak
	r.res.OccupancyWeights = append([]float64(nil), r.occ...)
	if r.wl != nil {
		r.finishPhases()
	}
}
