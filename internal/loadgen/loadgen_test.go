package loadgen

import (
	"math"
	"testing"
	"time"

	"beqos/internal/core"
	"beqos/internal/dist"
	"beqos/internal/resv"
	"beqos/internal/utility"
)

// newModel builds the analytical reference: Poisson load with the given
// mean against the given utility.
func newModel(t *testing.T, mean float64, util utility.Function) *core.Model {
	t.Helper()
	load, err := dist.NewPoisson(mean)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(load, util)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newServer(t *testing.T, capacity float64, util utility.Function) *resv.Server {
	t.Helper()
	s, err := resv.NewServer(capacity, util)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestLoadHarnessMatchesModel is the acceptance scenario: a run against an
// in-process server at k̄ = 100 with adaptive utility and C = 100 must
// report blocking within 3σ of the model's P(k > kmax) and mean utility
// within 3σ of R(C).
func TestLoadHarnessMatchesModel(t *testing.T) {
	util := utility.NewAdaptive()
	const c = 100.0
	srv := newServer(t, c, util)
	res, err := Run(Config{
		Server:   srv,
		Capacity: c,
		Util:     util,
		Rate:     100,
		Hold:     1,
		Duration: 80,
		Seed1:    2, Seed2: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.KMax != 100 {
		t.Fatalf("kmax = %d, want 100 (adaptive utility has kmax = C)", res.KMax)
	}
	if res.Anomalies != 0 {
		t.Errorf("anomalies = %d, want 0", res.Anomalies)
	}
	if res.FinalActive != 0 {
		t.Errorf("final active = %d, want 0", res.FinalActive)
	}
	m := newModel(t, 100, util)
	cr, err := CrossCheck(res, m, c)
	if err != nil {
		t.Fatal(err)
	}
	for _, ck := range cr.Checks {
		t.Logf("%-28s measured %.4f  model %.4f  sigma %.4f  z %.2f  ok %v",
			ck.Name, ck.Measured, ck.Predicted, ck.Sigma, ck.Z, ck.OK)
	}
	if !cr.AllOK() {
		t.Errorf("cross-validation failed: %v", cr.Failed())
	}
	// The acceptance criterion spelled out, independent of CrossCheck's
	// plumbing: measured blocking vs P(k > kmax), measured utility vs R(C).
	if z := math.Abs(res.OverloadFraction-m.Load().TailProb(res.KMax)) / res.OverloadSigma; z > 3 {
		t.Errorf("blocking %.4f is %.1fσ from P(k > kmax) = %.4f", res.OverloadFraction, z, m.Load().TailProb(res.KMax))
	}
	if z := math.Abs(res.MeanUtility-m.Reservation(c)) / res.UtilitySigma; z > 3 {
		t.Errorf("mean utility %.4f is %.1fσ from R(C) = %.4f", res.MeanUtility, z, m.Reservation(c))
	}
	if res.Latency.Count == 0 {
		t.Error("latency histogram is empty")
	}
	// The harness's counters are the shared client instrument set read out;
	// they must satisfy the protocol's own conservation law.
	if res.Grants != res.Attempts-res.Denied {
		t.Errorf("grants = %d, want attempts − denied = %d", res.Grants, res.Attempts-res.Denied)
	}
}

// TestRigidUtilityScenario cross-validates a second operating point: rigid
// utility at C = 8 (kmax = 8) under k̄ = 6.
func TestRigidUtilityScenario(t *testing.T) {
	util, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	const c = 8.0
	srv := newServer(t, c, util)
	res, err := Run(Config{
		Server:   srv,
		Capacity: c,
		Util:     util,
		Conns:    2,
		Rate:     12,
		Hold:     0.5,
		Duration: 60,
		Seed1:    7, Seed2: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := CrossCheck(res, newModel(t, 6, util), c)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.AllOK() {
		for _, ck := range cr.Checks {
			t.Logf("%-28s measured %.4f  model %.4f  sigma %.4f  z %.2f  ok %v",
				ck.Name, ck.Measured, ck.Predicted, ck.Sigma, ck.Z, ck.OK)
		}
		t.Errorf("cross-validation failed: %v", cr.Failed())
	}
}

// TestDeterministicForFixedSeed runs the same configuration twice and
// demands bit-identical measurements.
func TestDeterministicForFixedSeed(t *testing.T) {
	util := utility.NewAdaptive()
	run := func() *Result {
		res, err := Run(Config{
			Server:   newServer(t, 10, util),
			Capacity: 10,
			Util:     util,
			Rate:     20,
			Hold:     0.5,
			Duration: 20,
			Seed1:    3, Seed2: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Flows != b.Flows || a.FirstDenied != b.FirstDenied ||
		a.Attempts != b.Attempts || a.Denied != b.Denied ||
		a.Grants != b.Grants || a.Teardowns != b.Teardowns {
		t.Errorf("counters differ between identical runs:\n%+v\n%+v", a, b)
	}
	if a.OverloadFraction != b.OverloadFraction || a.DenyRate != b.DenyRate ||
		a.MeanUtility != b.MeanUtility || a.MeasuredMeanLoad != b.MeasuredMeanLoad ||
		a.OverloadSigma != b.OverloadSigma || a.UtilitySigma != b.UtilitySigma {
		t.Errorf("statistics differ between identical runs:\n%+v\n%+v", a, b)
	}
}

// TestRetryRunsDeterministic is the regression test for retry-backoff
// jitter drawing from the process-global generator: a run exercising
// ReserveWithRetry must be exactly as reproducible as a plain run, because
// the harness seeds the retry policy's RNG from the run seed.
func TestRetryRunsDeterministic(t *testing.T) {
	util := utility.NewAdaptive()
	run := func() *Result {
		res, err := Run(Config{
			Server:   newServer(t, 10, util),
			Capacity: 10,
			Util:     util,
			Rate:     20,
			Hold:     0.5,
			Duration: 20,
			Seed1:    11, Seed2: 13,
			RetryAttempts: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Retries == 0 {
		t.Fatal("the run exercised no retries; raise the load")
	}
	if a.Flows != b.Flows || a.FirstDenied != b.FirstDenied ||
		a.Attempts != b.Attempts || a.Denied != b.Denied ||
		a.Grants != b.Grants || a.Retries != b.Retries {
		t.Errorf("counters differ between identical retrying runs:\n%+v\n%+v", a, b)
	}
	if a.DenyRate != b.DenyRate || a.MeanUtility != b.MeanUtility ||
		a.MeasuredMeanLoad != b.MeasuredMeanLoad {
		t.Errorf("statistics differ between identical retrying runs:\n%+v\n%+v", a, b)
	}
}

// TestDropFaultsRecover injects connection drops and demands the harness
// books stay consistent with the server's: reservations are re-established
// and the statistics still match the model.
func TestDropFaultsRecover(t *testing.T) {
	util := utility.NewAdaptive()
	srv := newServer(t, 10, util)
	res, err := Run(Config{
		Server:   srv,
		Capacity: 10,
		Util:     util,
		Conns:    2,
		Rate:     20,
		Hold:     0.5,
		Duration: 30,
		Seed1:    5, Seed2: 6,
		DropEvery: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops == 0 {
		t.Fatal("no drops were injected")
	}
	if res.Reconnects != res.Drops {
		t.Errorf("reconnects = %d, want %d (one per drop)", res.Reconnects, res.Drops)
	}
	if res.Reissued == 0 {
		t.Error("no reservations were re-established after drops")
	}
	if res.Anomalies != 0 {
		t.Errorf("anomalies = %d, want 0", res.Anomalies)
	}
	if res.FinalActive != 0 {
		t.Errorf("final active = %d, want 0", res.FinalActive)
	}
	cr, err := CrossCheck(res, newModel(t, 10, util), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.AllOK() {
		t.Errorf("cross-validation failed under drops: %v", cr.Failed())
	}
}

// TestRetryPathExercised drives arrivals through ReserveWithRetry and
// checks the retry accounting: immediate same-instant retries must all be
// denied (nothing can change between synchronous attempts), so retries are
// observed without perturbing the admission statistics.
func TestRetryPathExercised(t *testing.T) {
	util := utility.NewAdaptive()
	res, err := Run(Config{
		Server:   newServer(t, 10, util),
		Capacity: 10,
		Util:     util,
		Rate:     20,
		Hold:     0.5,
		Duration: 20,
		Seed1:    3, Seed2: 4,
		RetryAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Fatal("no retries were performed")
	}
	// Each denied arrival burns all 3 attempts: 2 retries and 3 denials per
	// burst, so the counters must stay in a strict 2:3 ratio.
	if res.Retries*3 != res.Denied*2 {
		t.Errorf("retries = %d, denied = %d; want a 2:3 ratio", res.Retries, res.Denied)
	}
	cr, err := CrossCheck(res, newModel(t, 10, util), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.AllOK() {
		t.Errorf("cross-validation failed under retries: %v", cr.Failed())
	}
}

// TestConfigValidation exercises Run's input checking.
func TestConfigValidation(t *testing.T) {
	util := utility.NewAdaptive()
	srv := newServer(t, 4, util)
	base := Config{Server: srv, Capacity: 4, Util: util, Rate: 1, Hold: 1, Duration: 1}
	bad := []func(*Config){
		func(c *Config) { c.Server = nil },
		func(c *Config) { c.Addr = "localhost:1" },
		func(c *Config) { c.Capacity = 0 },
		func(c *Config) { c.Util = nil },
		func(c *Config) { c.Rate = 0 },
		func(c *Config) { c.Hold = -1 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.Conns = -1 },
		func(c *Config) { c.DropEvery = -1 },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d was accepted", i)
		}
	}
}

// TestProbeSoftState exercises the real-time TTL probe end to end against
// an in-process soft-state server.
func TestProbeSoftState(t *testing.T) {
	util := utility.NewAdaptive()
	const ttl = 150 * time.Millisecond
	srv, err := resv.NewServerTTL(4, util, ttl)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := ProbeSoftState(ProbeConfig{Server: srv})
	if err != nil {
		t.Fatal(err)
	}
	if res.TTL != ttl {
		t.Errorf("probe saw TTL %v, want %v", res.TTL, ttl)
	}
	if res.Reserved != 4 || res.Keepers != 2 || res.Stalled != 2 {
		t.Errorf("probe filled %d slots with %d keepers / %d stalled, want 4 = 2 + 2",
			res.Reserved, res.Keepers, res.Stalled)
	}
	if !res.RetryGranted || res.Retries < 1 {
		t.Errorf("newcomer not granted after retries (granted %v, retries %d)", res.RetryGranted, res.Retries)
	}
	if res.Kept != res.Keepers {
		t.Errorf("kept %d of %d refreshed reservations", res.Kept, res.Keepers)
	}
	if res.Expired != res.Stalled {
		t.Errorf("only %d of %d stalled reservations expired", res.Expired, res.Stalled)
	}
	if !res.OK() {
		t.Errorf("probe result not OK: %+v", res)
	}
	if srv.Active() != 0 {
		t.Errorf("server still holds %d reservations after probe cleanup", srv.Active())
	}
}

// TestProbeRejectsNoTTLServer: probing a server that never expires
// reservations must fail loudly rather than hang.
func TestProbeRejectsNoTTLServer(t *testing.T) {
	util := utility.NewAdaptive()
	srv := newServer(t, 4, util)
	if _, err := ProbeSoftState(ProbeConfig{Server: srv}); err == nil {
		t.Fatal("probing a no-TTL server should fail")
	}
}

// TestHarnessWithConcurrentObservers runs the load harness while outside
// goroutines hammer the server's lock-free observers — the same accessors
// the soft-state probe samples in real time. Under -race this pins down
// that Active/Allocated reads need no lock against live admission traffic;
// the harness result must be unaffected.
func TestHarnessWithConcurrentObservers(t *testing.T) {
	util := utility.NewAdaptive()
	const c = 20.0
	srv := newServer(t, c, util)
	stop := make(chan struct{})
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if a := srv.Active(); a < 0 || a > int(c) {
					t.Errorf("Active() = %d outside [0, %g]", a, c)
					return
				}
				if al := srv.Allocated(); al < 0 || al > c {
					t.Errorf("Allocated() = %g outside [0, %g]", al, c)
					return
				}
			}
		}()
	}
	res, err := Run(Config{
		Server:   srv,
		Capacity: c,
		Util:     util,
		Rate:     20,
		Hold:     1,
		Duration: 40,
		Seed1:    7, Seed2: 7,
	})
	close(stop)
	for w := 0; w < 4; w++ {
		<-done
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalies != 0 {
		t.Errorf("anomalies = %d, want 0", res.Anomalies)
	}
	if res.FinalActive != 0 {
		t.Errorf("final active = %d, want 0", res.FinalActive)
	}
}
