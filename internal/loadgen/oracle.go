package loadgen

import (
	"fmt"
	"math"

	"beqos/internal/core"
)

// SigmaBound is the acceptance threshold for the cross-validation checks:
// a measurement passes when it lies within SigmaBound batch-means standard
// errors of the analytical prediction.
const SigmaBound = 3.0

// Check is one measured-versus-model comparison.
type Check struct {
	// Name identifies the statistic.
	Name string
	// Measured is the harness's estimate and Predicted the analytical value.
	Measured  float64
	Predicted float64
	// Sigma is the measurement's batch-means standard error (0 for exact
	// checks, which pass only on equality).
	Sigma float64
	// Z is |Measured − Predicted| / Sigma (+Inf for a failed exact check).
	Z float64
	// OK reports whether the check passed (Z ≤ SigmaBound).
	OK bool
}

// CheckReport is the outcome of CrossCheck.
type CheckReport struct {
	Checks []Check
}

// AllOK reports whether every check passed.
func (cr *CheckReport) AllOK() bool {
	for _, c := range cr.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// Failed returns the names of failed checks.
func (cr *CheckReport) Failed() []string {
	var out []string
	for _, c := range cr.Checks {
		if !c.OK {
			out = append(out, c.Name)
		}
	}
	return out
}

func check(name string, measured, predicted, sigma float64) Check {
	c := Check{Name: name, Measured: measured, Predicted: predicted, Sigma: sigma}
	diff := math.Abs(measured - predicted)
	switch {
	case diff == 0:
		c.Z, c.OK = 0, true
	case sigma > 0:
		c.Z = diff / sigma
		c.OK = c.Z <= SigmaBound
	default:
		c.Z, c.OK = math.Inf(1), false
	}
	return c
}

func exact(name string, measured, predicted float64) Check {
	return check(name, measured, predicted, 0)
}

// CrossCheck compares a run's measurements against the analytical model at
// capacity c. The load side of m must describe the harness's offered
// population — for Poisson arrivals at rate λ with mean holding h, a
// Poisson load with mean k̄ = λ·h — and the utility side must match the
// server's. It validates:
//
//   - the admission threshold against kmax(C) (exact);
//   - the time-weighted overload fraction against the paper's blocking
//     probability P(k > kmax);
//   - the arriving-flow denial rate against P(k ≥ kmax) (PASTA: an arrival
//     finds the link full exactly when the standing population is ≥ kmax);
//   - the measured per-flow utility against the reservation performance
//     R(C) = E[min(k, kmax)·π(C/min(k, kmax))] / k̄;
//   - the time-averaged offered population against k̄;
//   - protocol hygiene: zero anomalies and zero residual reservations
//     (exact).
func CrossCheck(res *Result, m *core.Model, c float64) (*CheckReport, error) {
	if res == nil || m == nil {
		return nil, fmt.Errorf("loadgen: CrossCheck needs a result and a model")
	}
	if res.KMax < 1 {
		return nil, fmt.Errorf("loadgen: result has kmax = %d", res.KMax)
	}
	load := m.Load()
	cr := &CheckReport{}
	cr.Checks = append(cr.Checks,
		exact("admission threshold kmax", float64(res.KMax), float64(m.KMax(c))),
		check("blocking P(k > kmax)", res.OverloadFraction, load.TailProb(res.KMax), res.OverloadSigma),
		check("arrival denial P(k ≥ kmax)", res.DenyRate, load.TailProb(res.KMax-1), res.DenySigma),
		check("mean utility R(C)", res.MeanUtility, m.Reservation(c), res.UtilitySigma),
		check("offered load k̄", res.MeasuredMeanLoad, m.MeanLoad(), res.LoadSigma),
		exact("protocol anomalies", float64(res.Anomalies), 0),
		exact("residual reservations", float64(res.FinalActive), 0),
	)
	return cr, nil
}
