package loadgen

import (
	"context"
	"fmt"
	"time"

	"beqos/internal/resv"
)

// probeFlowBase keeps probe flow IDs out of the way of harness flow IDs
// (which count up from 1).
const probeFlowBase uint64 = 1 << 32

// probeStats and probeRefresh are Stats/Refresh with a per-call deadline.
func probeStats(c *resv.Client) (kmax, active int, err error) {
	ctx, cancel := rpcCtx()
	defer cancel()
	return c.Stats(ctx)
}

func probeRefresh(c *resv.Client, id uint64) (time.Duration, error) {
	ctx, cancel := rpcCtx()
	defer cancel()
	return c.Refresh(ctx, id)
}

// ProbeConfig describes one soft-state probe. The target must be a TTL
// server (resv.NewServerTTL); probing a server without expiry is an error
// because nothing the probe asserts could happen.
type ProbeConfig struct {
	// Server is an in-process target; when nil, Network/Addr name a remote
	// one.
	Server  *resv.Server
	Network string
	Addr    string
	// Keepers is the number of reservations kept alive with refreshes
	// (default 2). The rest of the link's free capacity is filled with
	// stalled reservations that must expire.
	Keepers int
}

// ProbeResult reports one soft-state probe.
type ProbeResult struct {
	// TTL is the server's soft-state lifetime.
	TTL time.Duration
	// KMax is the server's admission threshold and Reserved the number of
	// slots the probe filled (all free capacity).
	KMax     int
	Reserved int
	// Keepers reservations ran refresh loops; Kept of them were still alive
	// at the end (want Kept == Keepers).
	Keepers int
	Kept    int
	// Stalled reservations were never refreshed; Expired of them were gone
	// at the end (want Expired == Stalled).
	Stalled int
	Expired int
	// RetryGranted reports whether a reservation attempted against the full
	// link was eventually granted — after Retries denials — once stalled
	// soft state expired.
	RetryGranted bool
	Retries      int
	Elapsed      time.Duration
}

// OK reports whether the probe observed exactly the soft-state behavior the
// protocol promises: refreshed reservations survived, stalled ones expired,
// and a retrying newcomer won a freed slot.
func (p *ProbeResult) OK() bool {
	return p.RetryGranted && p.Retries >= 1 && p.Kept == p.Keepers && p.Expired == p.Stalled
}

// ProbeSoftState exercises the protocol's RSVP-style soft state against a
// live TTL server, in real time: it fills the link's free capacity with
// reservations, keeps a few alive with Client.KeepAlive, stalls the rest,
// and races a ReserveWithRetry newcomer against the stalled flows' expiry.
// On a correct server the kept flows survive (~3 TTLs), the stalled flows
// expire, and the newcomer's retries are denied while the link is full and
// granted once the sweeper frees a stalled slot.
func ProbeSoftState(cfg ProbeConfig) (*ProbeResult, error) {
	start := time.Now()
	if cfg.Keepers == 0 {
		cfg.Keepers = 2
	}
	if cfg.Keepers < 1 {
		return nil, fmt.Errorf("loadgen: probe needs at least one keeper, got %d", cfg.Keepers)
	}
	client, err := dialClassic(cfg.Server, cfg.Network, cfg.Addr)
	if err != nil {
		return nil, err
	}
	defer client.Close()

	kmax, active, err := probeStats(client)
	if err != nil {
		return nil, fmt.Errorf("loadgen: probe stats: %w", err)
	}
	free := kmax - active
	if free < cfg.Keepers+1 {
		return nil, fmt.Errorf("loadgen: probe needs ≥ %d free slots (keepers + one stall), server has %d", cfg.Keepers+1, free)
	}
	res := &ProbeResult{KMax: kmax, Keepers: cfg.Keepers, Stalled: free - cfg.Keepers}

	// Fill every free slot; the first Keepers flows will be refreshed, the
	// rest stalled.
	for i := 0; i < free; i++ {
		ctx, cancel := rpcCtx()
		ok, _, err := client.Reserve(ctx, probeFlowBase+uint64(i), 1)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("loadgen: probe reserve: %w", err)
		}
		if !ok {
			return nil, fmt.Errorf("loadgen: probe reserve %d/%d denied with free capacity", i+1, free)
		}
		res.Reserved++
	}
	ttl, err := probeRefresh(client, probeFlowBase)
	if err != nil {
		return nil, fmt.Errorf("loadgen: probe refresh: %w", err)
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("loadgen: probe target does not expire reservations (TTL 0); use a TTL server")
	}
	res.TTL = ttl
	interval := ttl / 4
	if interval <= 0 {
		return nil, fmt.Errorf("loadgen: probe TTL %v too small to refresh against", ttl)
	}

	kaCtx, kaCancel := context.WithCancel(context.Background())
	defer kaCancel()
	kaErr := make(chan error, cfg.Keepers)
	for i := 0; i < cfg.Keepers; i++ {
		id := probeFlowBase + uint64(i)
		go func() { kaErr <- client.KeepAlive(kaCtx, id, interval) }()
	}

	// Race a newcomer against the stalled flows' expiry: the link is full,
	// so its first attempts are denied; once the sweeper frees a stalled
	// slot a retry is granted. Expiry takes at most TTL + one sweep period
	// (≤ TTL/4), so half-TTL backoff with plenty of attempts covers it.
	newcomer := probeFlowBase + uint64(free)
	retryCtx, retryCancel := context.WithTimeout(context.Background(), 10*ttl+5*time.Second)
	defer retryCancel()
	granted, _, retries, err := client.ReserveWithRetry(retryCtx, newcomer, 1, resv.RetryPolicy{
		MaxAttempts: 20,
		BaseDelay:   ttl / 2,
		Multiplier:  1,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: probe retry: %w", err)
	}
	res.RetryGranted = granted
	res.Retries = retries

	// Wait for the remaining stalled reservations to expire. Refreshing a
	// stalled flow would resurrect it, so watch the aggregate count instead:
	// the link should settle at the keepers plus the newcomer (plus whatever
	// was active before the probe).
	want := active + cfg.Keepers
	if granted {
		want++
	}
	deadline := time.Now().Add(10*ttl + 5*time.Second)
	for {
		_, now, err := probeStats(client)
		if err != nil {
			return nil, fmt.Errorf("loadgen: probe stats: %w", err)
		}
		if unexpired := now - want; unexpired <= 0 {
			res.Expired = res.Stalled
			break
		} else if time.Now().After(deadline) {
			res.Expired = res.Stalled - unexpired
			break
		}
		time.Sleep(ttl / 8)
	}

	// The keepers must have survived: stop their refresh loops (KeepAlive
	// returns nil on cancellation, an error if a refresh ever failed) and
	// confirm each reservation is still known to the server.
	kaCancel()
	for i := 0; i < cfg.Keepers; i++ {
		if err := <-kaErr; err != nil {
			return nil, fmt.Errorf("loadgen: probe keep-alive: %w", err)
		}
	}
	for i := 0; i < cfg.Keepers; i++ {
		if _, err := probeRefresh(client, probeFlowBase+uint64(i)); err == nil {
			res.Kept++
		}
	}

	// Cleanup: release everything the probe still holds.
	ctx, cancel := rpcCtx()
	defer cancel()
	for i := 0; i < cfg.Keepers; i++ {
		_ = client.Teardown(ctx, probeFlowBase+uint64(i))
	}
	if granted {
		_ = client.Teardown(ctx, newcomer)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
