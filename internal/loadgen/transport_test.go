package loadgen

import (
	"testing"
	"time"

	"beqos/internal/utility"
)

// rigidConfig is the shared operating point for the transport matrix:
// rigid utility at C = 8 (kmax = 8) under offered load k̄ = 6 — small
// enough to keep every transport variant fast, loaded enough (k̄ near
// kmax) that admission decisions actually bite.
func rigidConfig(t *testing.T) (Config, utility.Function) {
	t.Helper()
	util, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Capacity: 8,
		Util:     util,
		Conns:    2,
		Rate:     12,
		Hold:     0.5,
		Duration: 60,
		Seed1:    7, Seed2: 9,
	}, util
}

// TestMuxTransportMatchesModel runs the harness over the flow-multiplexed
// stream transport: the cross-validation must hold exactly as on the
// classic transport, and the server's counters must agree with the
// client's — the multiplexer may not lose, duplicate, or misroute a reply.
func TestMuxTransportMatchesModel(t *testing.T) {
	cfg, util := rigidConfig(t)
	srv := newServer(t, cfg.Capacity, util)
	cfg.Server = srv
	cfg.Transport = "mux"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalies != 0 || res.FinalActive != 0 {
		t.Errorf("anomalies = %d, final active = %d, want 0, 0", res.Anomalies, res.FinalActive)
	}
	cr, err := CrossCheck(res, newModel(t, 6, util), cfg.Capacity)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.AllOK() {
		for _, ck := range cr.Checks {
			t.Logf("%-28s measured %.4f  model %.4f  sigma %.4f  z %.2f  ok %v",
				ck.Name, ck.Measured, ck.Predicted, ck.Sigma, ck.Z, ck.OK)
		}
		t.Errorf("cross-validation failed: %v", cr.Failed())
	}
	m := srv.Metrics()
	if got, want := m.Grants.Load(), uint64(res.Grants); got != want {
		t.Errorf("server grants = %d, client grants = %d — must agree exactly", got, want)
	}
	if got, want := m.Denials.Load(), uint64(res.Denied); got != want {
		t.Errorf("server denials = %d, client denials = %d — must agree exactly", got, want)
	}
}

// TestMuxTransportWithDrops runs the connection-fault injection over the
// mux transport: closing a multiplexed connection must release every flow
// it carried (mux fate-sharing), and the harness must recover on a fresh
// multiplexed connection.
func TestMuxTransportWithDrops(t *testing.T) {
	cfg, util := rigidConfig(t)
	srv := newServer(t, cfg.Capacity, util)
	cfg.Server = srv
	cfg.Transport = "mux"
	cfg.DropEvery = 40
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops == 0 || res.Reconnects != res.Drops {
		t.Errorf("drops = %d, reconnects = %d; want ≥ 1 drop and a reconnect per drop", res.Drops, res.Reconnects)
	}
	if res.Anomalies != 0 || res.FinalActive != 0 {
		t.Errorf("anomalies = %d, final active = %d, want 0, 0", res.Anomalies, res.FinalActive)
	}
}

// TestUDPTransportMatchesModel runs the harness over the datagram
// transport with no loss: the cross-validation and the exact
// client/server counter agreement must both hold.
func TestUDPTransportMatchesModel(t *testing.T) {
	cfg, util := rigidConfig(t)
	srv := newServer(t, cfg.Capacity, util)
	cfg.Server = srv
	cfg.Transport = "udp"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalies != 0 || res.FinalActive != 0 {
		t.Errorf("anomalies = %d, final active = %d, want 0, 0", res.Anomalies, res.FinalActive)
	}
	if res.UDPRetransmits != 0 {
		t.Errorf("retransmits = %d on a lossless loopback, want 0", res.UDPRetransmits)
	}
	cr, err := CrossCheck(res, newModel(t, 6, util), cfg.Capacity)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.AllOK() {
		for _, ck := range cr.Checks {
			t.Logf("%-28s measured %.4f  model %.4f  sigma %.4f  z %.2f  ok %v",
				ck.Name, ck.Measured, ck.Predicted, ck.Sigma, ck.Z, ck.OK)
		}
		t.Errorf("cross-validation failed: %v", cr.Failed())
	}
	m := srv.Metrics()
	if got, want := m.Grants.Load(), uint64(res.Grants); got != want {
		t.Errorf("server grants = %d, client grants = %d — must agree exactly", got, want)
	}
	if dup := m.DupReserves.Load(); dup != 0 {
		t.Errorf("dup reserves = %d without loss, want 0", dup)
	}
}

// TestUDPTransportLossTransparent injects deterministic packet loss and
// demands the retransmit layer make it invisible: every statistical field
// of the Result must be bit-identical to the lossless run with the same
// seed, the server's admission count must still agree exactly with the
// client's (retransmitted reserves answered from the live grant, never
// re-admitted), and the injected loss must actually have forced
// retransmissions.
func TestUDPTransportLossTransparent(t *testing.T) {
	base, util := rigidConfig(t)
	base.Transport = "udp"
	base.UDPTimeout = 5 * time.Millisecond // loopback: only lost flights wait

	clean := base
	clean.Server = newServer(t, base.Capacity, util)
	want, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}

	lossy := base
	srv := newServer(t, base.Capacity, util)
	lossy.Server = srv
	lossy.UDPLossEvery = 10
	got, err := Run(lossy)
	if err != nil {
		t.Fatal(err)
	}

	if got.UDPRetransmits == 0 {
		t.Fatal("no retransmits under 10% send loss; the fault injection exercised nothing")
	}
	if dup := srv.Metrics().DupReserves.Load(); dup == 0 {
		t.Error("no dup reserves on the server; no grant was ever re-sent")
	}
	if g, w := srv.Metrics().Grants.Load(), uint64(got.Grants); g != w {
		t.Errorf("server grants = %d, client grants = %d — retransmits must not double-admit", g, w)
	}
	// Loss transparency: the virtual-time measurements may not move at all.
	if got.Flows != want.Flows || got.FirstDenied != want.FirstDenied ||
		got.Grants != want.Grants || got.Teardowns != want.Teardowns ||
		got.OverloadFraction != want.OverloadFraction ||
		got.MeanUtility != want.MeanUtility ||
		got.MeasuredMeanLoad != want.MeasuredMeanLoad {
		t.Errorf("lossy run diverged from lossless run:\nlossless: flows=%d denied=%d grants=%d teardowns=%d overload=%g util=%g load=%g\nlossy:    flows=%d denied=%d grants=%d teardowns=%d overload=%g util=%g load=%g",
			want.Flows, want.FirstDenied, want.Grants, want.Teardowns, want.OverloadFraction, want.MeanUtility, want.MeasuredMeanLoad,
			got.Flows, got.FirstDenied, got.Grants, got.Teardowns, got.OverloadFraction, got.MeanUtility, got.MeasuredMeanLoad)
	}
	if got.Anomalies != 0 || got.FinalActive != 0 {
		t.Errorf("anomalies = %d, final active = %d, want 0, 0", got.Anomalies, got.FinalActive)
	}
}

// TestTransportConfigValidation pins the transport-specific Config rules.
func TestTransportConfigValidation(t *testing.T) {
	base, util := rigidConfig(t)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"unknown transport", func(c *Config) { c.Transport = "quic" }},
		{"udp with DropEvery", func(c *Config) { c.Transport = "udp"; c.DropEvery = 5 }},
		{"loss on classic", func(c *Config) { c.UDPLossEvery = 10 }},
		{"loss on mux", func(c *Config) { c.Transport = "mux"; c.UDPLossEvery = 10 }},
		{"loss every packet", func(c *Config) { c.Transport = "udp"; c.UDPLossEvery = 1 }},
		{"negative loss", func(c *Config) { c.Transport = "udp"; c.UDPLossEvery = -3 }},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Server = newServer(t, base.Capacity, util)
		tc.mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted an invalid config", tc.name)
		}
	}
}
