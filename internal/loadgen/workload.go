package loadgen

import (
	"fmt"
	"math"

	"beqos/internal/core"
	"beqos/internal/dist"
	"beqos/internal/utility"
	"beqos/internal/workload"
)

// phaseSlices is the number of equal time slices per phase used for the
// per-phase batch-means standard errors. Phases are shorter than the whole
// run, so they get fewer batches than the run-wide 16.
const phaseSlices = 8

// phaseAccum holds one phase's per-slice integrals, mirroring the run-wide
// batch accumulators in runner.
type phaseAccum struct {
	time     [phaseSlices]float64
	overload [phaseSlices]float64
	popInt   [phaseSlices]float64
	utilInt  [phaseSlices]float64
	firstAtt [phaseSlices]float64
	firstDen [phaseSlices]float64
}

// PhaseStats is one phase's measured breakdown of a workload-driven run.
// The ratio statistics carry batch-means standard errors over the phase's
// time slices, like their run-wide counterparts in Result.
type PhaseStats struct {
	// Name is the phase's declared name; Start and End are its absolute
	// bounds in virtual time.
	Name       string
	Start, End float64
	// Flows counts the phase's measured arrivals and FirstDenied their
	// denied first attempts; DenyRate is their ratio.
	Flows       int
	FirstDenied int
	DenyRate    float64
	DenySigma   float64
	// OverloadFraction is the fraction of the phase with offered
	// population above kmax.
	OverloadFraction float64
	OverloadSigma    float64
	// MeanLoad is the phase's time-averaged offered population.
	MeanLoad  float64
	LoadSigma float64
	// MeanUtility is the phase's measured per-flow utility.
	MeanUtility  float64
	UtilitySigma float64
}

// pull consumes one record from the workload stream into the lookahead
// slot, feeding the golden-determinism trace hook in stream order.
func (r *runner) pull() {
	rec, ok := r.wl.Next()
	if ok && r.cfg.WorkloadRecord != nil {
		r.cfg.WorkloadRecord(rec)
	}
	r.wlNext, r.wlOK = rec, ok
}

// toArrival maps one workload record to a harness arrival: the wire tier
// comes from the scenario's class mixture when it has one, else from the
// run-wide Class.
func (r *runner) toArrival(rec workload.Flow) arrival {
	tier := r.cfg.Class
	if cls := r.cfg.Workload.Classes; len(cls) > 0 {
		tier = cls[rec.Class].Tier
	}
	return arrival{hold: rec.Hold, tier: tier, phase: rec.Phase}
}

// takeGroup collects every pending record scheduled for exactly virtual
// time at — the prefill block and any coincident arrivals — so they land
// at one instant and batch mode can coalesce them.
func (r *runner) takeGroup(at float64) []arrival {
	var g []arrival
	for r.wlOK && r.wlNext.At == at {
		g = append(g, r.toArrival(r.wlNext))
		r.pull()
	}
	return g
}

// pumpWorkload schedules the next arrival group off the stream lookahead;
// each firing re-arms the pump, like the stationary Poisson pump.
func (r *runner) pumpWorkload() {
	if !r.wlOK {
		return
	}
	at := r.wlNext.At
	r.eng.Schedule(at-r.eng.Now(), func() {
		if r.err != nil {
			return
		}
		r.arriveGroup(r.takeGroup(at))
		r.pumpWorkload()
	})
}

// phaseSlice maps the instant t inside phase ph to its slice index.
func phaseSlice(ph *workload.Phase, t float64) int {
	s := int((t - ph.Start) / (ph.Duration / phaseSlices))
	if s < 0 {
		s = 0
	}
	if s >= phaseSlices {
		s = phaseSlices - 1
	}
	return s
}

// phaseFirst tallies one measured first attempt (and optionally its
// denial) against the owning phase's slice accumulators.
func (r *runner) phaseFirst(phase int, denied bool) {
	if r.wl == nil {
		return
	}
	ph := &r.cfg.Workload.Phases[phase]
	pa := &r.phases[phase]
	s := phaseSlice(ph, r.eng.Now())
	if denied {
		pa.firstDen[s]++
	} else {
		pa.firstAtt[s]++
	}
}

// advancePhases integrates the piecewise-constant state over (from, to],
// clipped to the measurement window, splitting across phase and slice
// boundaries. It mirrors advance's run-wide integrals per phase.
func (r *runner) advancePhases(from, to float64) {
	lo := math.Max(from, r.cfg.Warmup)
	hi := math.Min(to, r.cfg.Warmup+r.cfg.Duration)
	if hi <= lo {
		return
	}
	scn := r.cfg.Workload
	for lo < hi {
		pi := scn.PhaseAt(lo)
		ph := &scn.Phases[pi]
		s := phaseSlice(ph, lo)
		end := ph.Start + float64(s+1)*(ph.Duration/phaseSlices)
		if pe := ph.Start + ph.Duration; end > pe {
			end = pe
		}
		if end > hi {
			end = hi
		}
		if !(end > lo) {
			// Floating-point corner: a boundary rounded onto lo. Force
			// minimal progress so the walk terminates.
			end = math.Nextafter(lo, math.Inf(1))
			if end > hi {
				return
			}
		}
		dt := end - lo
		pa := &r.phases[pi]
		pa.time[s] += dt
		pa.popInt[s] += dt * float64(r.pop)
		if r.pop > r.kmax {
			pa.overload[s] += dt
		}
		pa.utilInt[s] += dt * r.piTimes[r.nres]
		lo = end
	}
}

// finishPhases folds the per-phase accumulators into Result.Phases.
func (r *runner) finishPhases() {
	scn := r.cfg.Workload
	r.res.Phases = make([]PhaseStats, len(scn.Phases))
	for i := range scn.Phases {
		ph := &scn.Phases[i]
		pa := &r.phases[i]
		ps := &r.res.Phases[i]
		ps.Name = ph.Name
		ps.Start = ph.Start
		ps.End = ph.Start + ph.Duration
		for s := 0; s < phaseSlices; s++ {
			ps.Flows += int(pa.firstAtt[s])
			ps.FirstDenied += int(pa.firstDen[s])
		}
		ps.DenyRate, ps.DenySigma = ratio(pa.firstDen[:], pa.firstAtt[:])
		ps.OverloadFraction, ps.OverloadSigma = ratio(pa.overload[:], pa.time[:])
		ps.MeanLoad, ps.LoadSigma = ratio(pa.popInt[:], pa.time[:])
		ps.MeanUtility, ps.UtilitySigma = ratio(pa.utilInt[:], pa.popInt[:])
	}
}

// checkRare guards the rare-event corner of the per-phase oracle: a
// phase can measure exactly zero denials or overload while the model
// predicts a vanishing but nonzero tail probability, and the batch-means
// sigma (also zero — no slice saw the event) cannot absorb the gap. Fall
// back to the binomial standard error over the phase's n trials, which is
// the right scale for whether zero observed events is consistent with
// the predicted probability.
func checkRare(name string, measured, predicted, sigma float64, n int) Check {
	if sigma == 0 && measured != predicted && n > 0 {
		if s := math.Sqrt(predicted * (1 - predicted) / float64(n)); s > 0 {
			sigma = s
		}
	}
	return check(name, measured, predicted, sigma)
}

// CrossCheckWorkload validates a workload-driven run's per-phase
// measurements against the analytical model wherever a phase is both
// tractable (Poisson, no events → M/G/∞ offered mean rate·E[hold]) and
// enforceable (the population entering it is already stationary at that
// mean, see Scenario.Enforceable). For each such phase it checks the
// blocking fraction against P(k > kmax), the arrival denial rate against
// P(k ≥ kmax), the mean utility against R(C), and the offered load against
// k̄, all at 3σ; protocol hygiene (anomalies, residual reservations) is
// checked exactly. Phases that are bursty or transient contribute no
// checks — they are what the analytical model cannot cover.
func CrossCheckWorkload(res *Result, scn *workload.Scenario, util utility.Function, capacity float64) (*CheckReport, error) {
	if res == nil || scn == nil || util == nil {
		return nil, fmt.Errorf("loadgen: CrossCheckWorkload needs a result, a scenario and a utility")
	}
	if res.KMax < 1 {
		return nil, fmt.Errorf("loadgen: result has kmax = %d", res.KMax)
	}
	if len(res.Phases) != len(scn.Phases) {
		return nil, fmt.Errorf("loadgen: result has %d phase breakdowns, scenario %d phases", len(res.Phases), len(scn.Phases))
	}
	cr := &CheckReport{}
	enf := scn.Enforceable()
	for i := range scn.Phases {
		if !enf[i] {
			continue
		}
		ph := &scn.Phases[i]
		mean, _ := ph.Tractable()
		load, err := dist.NewPoisson(mean)
		if err != nil {
			return nil, fmt.Errorf("loadgen: phase %q offered load: %w", ph.Name, err)
		}
		m, err := core.New(load, util)
		if err != nil {
			return nil, fmt.Errorf("loadgen: phase %q model: %w", ph.Name, err)
		}
		ps := &res.Phases[i]
		cr.Checks = append(cr.Checks,
			checkRare(fmt.Sprintf("phase %s: blocking P(k > kmax)", ph.Name), ps.OverloadFraction, load.TailProb(res.KMax), ps.OverloadSigma, ps.Flows),
			checkRare(fmt.Sprintf("phase %s: arrival denial P(k ≥ kmax)", ph.Name), ps.DenyRate, load.TailProb(res.KMax-1), ps.DenySigma, ps.Flows),
			check(fmt.Sprintf("phase %s: mean utility R(C)", ph.Name), ps.MeanUtility, m.Reservation(capacity), ps.UtilitySigma),
			check(fmt.Sprintf("phase %s: offered load k̄", ph.Name), ps.MeanLoad, mean, ps.LoadSigma),
		)
	}
	cr.Checks = append(cr.Checks,
		exact("protocol anomalies", float64(res.Anomalies), 0),
		exact("residual reservations", float64(res.FinalActive), 0),
	)
	return cr, nil
}
