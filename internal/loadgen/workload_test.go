package loadgen

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"beqos/internal/sim"
	"beqos/internal/utility"
	"beqos/internal/workload"
)

func parseSpec(t *testing.T, text string) *workload.Scenario {
	t.Helper()
	scn, err := workload.Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return scn
}

func loadSpecFile(t *testing.T, path string) *workload.Scenario {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	scn, err := workload.Parse(string(data))
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return scn
}

// TestWorkloadBaselineBitForBit is the compatibility anchor: driving the
// harness from specs/baseline.spec must reproduce the legacy stationary
// pump's run — same RPC tallies, same time-weighted statistics, same
// occupancy histogram — bit for bit, because the scenario stream draws
// from the seed RNG in exactly the legacy order.
func TestWorkloadBaselineBitForBit(t *testing.T) {
	util := utility.NewAdaptive()
	const c = 100.0

	plain, err := Run(Config{
		Server:   newServer(t, c, util),
		Capacity: c,
		Util:     util,
		Rate:     100,
		Hold:     1,
		Duration: 80,
		Seed1:    21, Seed2: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	scn := loadSpecFile(t, filepath.Join("..", "..", "specs", "baseline.spec"))
	wl, err := Run(Config{
		Server:   newServer(t, c, util),
		Capacity: c,
		Util:     util,
		Workload: scn,
		Seed1:    21, Seed2: 22,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Everything deterministic must agree exactly; only Latency and
	// Elapsed are wall-clock, and Phases exists only on the workload run.
	a, b := *plain, *wl
	a.Latency, b.Latency = wl.Latency, wl.Latency
	a.Elapsed, b.Elapsed = 0, 0
	b.Phases = nil
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("baseline workload run diverged from the legacy pump:\nplain %+v\nspec  %+v", a, b)
	}
	if len(wl.Phases) != 1 || wl.Phases[0].Name != "steady" {
		t.Fatalf("baseline phase breakdown: %+v", wl.Phases)
	}
	if wl.Phases[0].Flows != wl.Flows || wl.Phases[0].FirstDenied != wl.FirstDenied {
		t.Fatalf("single-phase tallies disagree with run totals: %+v vs Flows %d Denied %d",
			wl.Phases[0], wl.Flows, wl.FirstDenied)
	}
}

// TestWorkloadTraceMatchesSimAndLoadgen is the cross-consumer leg of the
// golden-determinism contract: the simulator, the live harness, and a
// directly instantiated stream must all consume the identical record
// sequence for the same spec and seed.
func TestWorkloadTraceMatchesSimAndLoadgen(t *testing.T) {
	scn := parseSpec(t, `scenario trace
prefill 10
warmup 2
phase calm 12
arrivals poisson rate=10
holding exp mean=1
phase storm 8
arrivals mmpp rate=15 burst=4 sojourn=2
holding pareto mean=1 shape=2
`)
	const s1, s2 = 31, 32
	collect := func(record func(func(workload.Flow))) string {
		var sb strings.Builder
		record(func(f workload.Flow) {
			sb.WriteString(f.String())
			sb.WriteByte('\n')
		})
		return sb.String()
	}

	direct := collect(func(hook func(workload.Flow)) {
		st := scn.Stream(s1, s2)
		for {
			rec, ok := st.Next()
			if !ok {
				break
			}
			hook(rec)
		}
	})
	simTrace := collect(func(hook func(workload.Flow)) {
		_, err := sim.Run(sim.Config{
			Capacity:       50,
			Util:           utility.NewAdaptive(),
			Workload:       scn,
			WorkloadRecord: hook,
			Seed1:          s1, Seed2: s2,
		})
		if err != nil {
			t.Fatalf("sim.Run: %v", err)
		}
	})
	lgTrace := collect(func(hook func(workload.Flow)) {
		_, err := Run(Config{
			Server:         newServer(t, 50, utility.NewAdaptive()),
			Capacity:       50,
			Util:           utility.NewAdaptive(),
			Workload:       scn,
			WorkloadRecord: hook,
			Seed1:          s1, Seed2: s2,
		})
		if err != nil {
			t.Fatalf("loadgen.Run: %v", err)
		}
	})

	if direct == "" || !strings.Contains(direct, "\n") {
		t.Fatalf("empty direct trace")
	}
	if simTrace != direct {
		t.Fatalf("sim trace diverged from the direct stream (%d vs %d bytes)", len(simTrace), len(direct))
	}
	if lgTrace != direct {
		t.Fatalf("loadgen trace diverged from the direct stream (%d vs %d bytes)", len(lgTrace), len(direct))
	}
}

// TestWorkloadSpecsRunGreen runs every bundled spec through both
// consumers: the whole corpus must parse, simulate, and drive a live
// server with zero protocol anomalies and clean teardown.
func TestWorkloadSpecsRunGreen(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.spec"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no bundled specs found: %v", err)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			scn := loadSpecFile(t, path)
			util := utility.NewAdaptive()
			simRes, err := sim.Run(sim.Config{
				Capacity: 120,
				Util:     util,
				Policy:   sim.Reservation,
				KMax:     120,
				Workload: scn,
				Seed1:    41, Seed2: 42,
			})
			if err != nil {
				t.Fatalf("sim.Run: %v", err)
			}
			if simRes.Flows == 0 || len(simRes.PhaseFlows) != len(scn.Phases) {
				t.Fatalf("sim run: %d flows, %d phase tallies", simRes.Flows, len(simRes.PhaseFlows))
			}
			res, err := Run(Config{
				Server:   newServer(t, 120, util),
				Capacity: 120,
				Util:     util,
				Workload: scn,
				Seed1:    41, Seed2: 42,
			})
			if err != nil {
				t.Fatalf("loadgen.Run: %v", err)
			}
			if res.Anomalies != 0 || res.FinalActive != 0 {
				t.Fatalf("anomalies %d, residual reservations %d", res.Anomalies, res.FinalActive)
			}
			if res.Flows == 0 || len(res.Phases) != len(scn.Phases) {
				t.Fatalf("loadgen run: %d flows, %d phase breakdowns", res.Flows, len(res.Phases))
			}
		})
	}
}

// flashSpec drives the per-phase statistics tests: calm stationary
// bracket, a crowd phase whose flash quadruples the rate, and recovery.
const flashSpec = `scenario flashy
prefill 50
warmup 5
phase calm 35
arrivals poisson rate=50
holding exp mean=1
phase crowd 20
arrivals poisson rate=50
holding exp mean=1
event flash at=2 mult=4 width=12
phase recovery 25
arrivals poisson rate=50
holding exp mean=1
`

func TestWorkloadPerPhaseStats(t *testing.T) {
	util := utility.NewAdaptive()
	scn := parseSpec(t, flashSpec)
	res, err := Run(Config{
		Server:   newServer(t, 65, util),
		Capacity: 65,
		Util:     util,
		Workload: scn,
		Seed1:    51, Seed2: 52,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("want 3 phase breakdowns, got %d", len(res.Phases))
	}
	total := 0
	for i, ps := range res.Phases {
		total += ps.Flows
		if ps.Name != scn.Phases[i].Name || ps.Start != scn.Phases[i].Start {
			t.Fatalf("phase %d labels wrong: %+v vs %+v", i, ps, scn.Phases[i])
		}
		if ps.Flows == 0 {
			t.Fatalf("phase %q measured no flows", ps.Name)
		}
	}
	if total != res.Flows {
		t.Fatalf("phase flows sum to %d, run total %d", total, res.Flows)
	}
	calm, crowd := res.Phases[0], res.Phases[1]
	if crowd.DenyRate <= calm.DenyRate {
		t.Fatalf("crowd denial %.3f not above calm %.3f", crowd.DenyRate, calm.DenyRate)
	}
	if crowd.MeanLoad <= calm.MeanLoad+10 {
		t.Fatalf("crowd mean load %.1f not clearly above calm %.1f", crowd.MeanLoad, calm.MeanLoad)
	}
	if crowd.MeanUtility >= calm.MeanUtility {
		t.Fatalf("crowd utility %.3f should dip below calm %.3f", crowd.MeanUtility, calm.MeanUtility)
	}
}

// TestWorkloadBatchedBitForBit extends the batch-coalescing equivalence
// to scenario-driven runs: batch mode must reproduce the single-frame
// run's statistics exactly, per phase included.
func TestWorkloadBatchedBitForBit(t *testing.T) {
	util := utility.NewAdaptive()
	run := func(batch int) *Result {
		res, err := Run(Config{
			Server:   newServer(t, 65, util),
			Capacity: 65,
			Util:     util,
			Workload: parseSpec(t, flashSpec),
			Batch:    batch,
			Seed1:    61, Seed2: 62,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	single, batched := run(0), run(8)
	if batched.Batches == 0 || batched.BatchedOps == 0 {
		t.Fatalf("batch mode issued no bodies: %+v", batched)
	}
	a, b := *single, *batched
	a.Latency, b.Latency = batched.Latency, batched.Latency
	a.Elapsed, b.Elapsed = 0, 0
	a.Batches, a.BatchedOps = b.Batches, b.BatchedOps
	a.Attempts, b.Attempts = 0, 0 // batched bodies collapse per-op request tallies
	a.Grants, b.Grants = 0, 0
	a.Denied, b.Denied = 0, 0
	a.Teardowns, b.Teardowns = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("batched workload run diverged:\nsingle %+v\nbatch  %+v", a, b)
	}
}

// TestCrossCheckWorkload validates the per-phase oracle on the flash
// spec: calm is enforceable (prefill matches its mean), so it gets the
// full 3σ battery; crowd and recovery are transient and contribute none.
func TestCrossCheckWorkload(t *testing.T) {
	util := utility.NewAdaptive()
	scn := parseSpec(t, flashSpec)
	res, err := Run(Config{
		Server:   newServer(t, 65, util),
		Capacity: 65,
		Util:     util,
		Workload: scn,
		Seed1:    71, Seed2: 72,
	})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := CrossCheckWorkload(res, scn, util, 65)
	if err != nil {
		t.Fatal(err)
	}
	for _, ck := range cr.Checks {
		t.Logf("%-36s measured %.4f  model %.4f  z %.2f  ok %v",
			ck.Name, ck.Measured, ck.Predicted, ck.Z, ck.OK)
	}
	// 4 statistical checks for the calm phase + 2 exact hygiene checks.
	if len(cr.Checks) != 6 {
		t.Fatalf("want 6 checks (one enforceable phase), got %d", len(cr.Checks))
	}
	if !cr.AllOK() {
		t.Fatalf("cross-validation failed: %v", cr.Failed())
	}
	for _, ck := range cr.Checks {
		if strings.Contains(ck.Name, "crowd") || strings.Contains(ck.Name, "recovery") {
			t.Fatalf("transient phase leaked into the oracle: %q", ck.Name)
		}
	}
}

// TestCrossCheckWorkloadStationary checks the all-enforceable path on the
// baseline spec, whose single phase is the stationary M/M/∞ anchor.
func TestCrossCheckWorkloadStationary(t *testing.T) {
	util := utility.NewAdaptive()
	scn := loadSpecFile(t, filepath.Join("..", "..", "specs", "baseline.spec"))
	if mean, ok := scn.Stationary(); !ok || mean != 100 {
		t.Fatalf("baseline must be stationary at 100, got (%g, %v)", mean, ok)
	}
	res, err := Run(Config{
		Server:   newServer(t, 100, util),
		Capacity: 100,
		Util:     util,
		Workload: scn,
		Seed1:    81, Seed2: 82,
	})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := CrossCheckWorkload(res, scn, util, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.AllOK() {
		t.Fatalf("cross-validation failed: %v", cr.Failed())
	}
	// The classic whole-run oracle applies too: one stationary segment.
	classic, err := CrossCheck(res, newModel(t, 100, util), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !classic.AllOK() {
		t.Fatalf("classic cross-check failed on a stationary workload: %v", classic.Failed())
	}
}

// TestWorkloadClassTiersOnWire drives a class-mixture scenario and
// verifies the mixture reaches the wire: a tier-aware policy is not in
// play, but the harness must carry each record's tier without
// perturbing the dynamics.
func TestWorkloadClassTiersOnWire(t *testing.T) {
	util := utility.NewAdaptive()
	scn := parseSpec(t, `scenario tiers
prefill 30
warmup 3
phase p 40
arrivals poisson rate=30
holding exp mean=1
`)
	mixed := parseSpec(t, `scenario tiers
prefill 30
warmup 3
class gold weight=1 tier=1
class bulk weight=3 tier=2
phase p 40
arrivals poisson rate=30
holding exp mean=1
`)
	run := func(s *workload.Scenario) *Result {
		res, err := Run(Config{
			Server:   newServer(t, 40, util),
			Capacity: 40,
			Util:     util,
			Workload: s,
			Seed1:    91, Seed2: 92,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, withClasses := run(scn), run(mixed)
	// The class picks ride the modulation substream, so the mixture must
	// not perturb the arrival dynamics or any deterministic statistic.
	a, b := *plain, *withClasses
	a.Latency, b.Latency = withClasses.Latency, withClasses.Latency
	a.Elapsed, b.Elapsed = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("class mixture perturbed the dynamics:\nplain %+v\nmixed %+v", a, b)
	}
}

func TestWorkloadConfigErrors(t *testing.T) {
	util := utility.NewAdaptive()
	scn := parseSpec(t, "scenario v\nphase p 2\narrivals poisson rate=1\nholding exp mean=1\n")
	mixed := parseSpec(t, "scenario m\nclass a weight=1 tier=1\nphase p 2\narrivals poisson rate=1\nholding exp mean=1\n")
	base := Config{
		Server:   newServer(t, 10, util),
		Capacity: 10,
		Util:     util,
		Workload: scn,
		Seed1:    1, Seed2: 2,
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"rate", func(c *Config) { c.Rate = 1 }, "must be zero"},
		{"hold", func(c *Config) { c.Hold = 1 }, "must be zero"},
		{"duration", func(c *Config) { c.Duration = 1 }, "must be zero"},
		{"warmup", func(c *Config) { c.Warmup = 1 }, "must be zero"},
		{"class-vs-mixture", func(c *Config) { c.Workload, c.Class = mixed, 1 }, "class mixture"},
		{"retries-vs-mixture", func(c *Config) { c.Workload, c.RetryAttempts = mixed, 3 }, "class-blind"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want %q", tc.name, err, tc.want)
		}
	}
	if _, err := Run(base); err != nil {
		t.Fatalf("valid workload config rejected: %v", err)
	}
}

// TestWorkloadStationaryLoadMatches sanity-checks the measured offered
// load of a short stationary scenario against its mean — the loadgen
// analogue of the simulator's occupancy test.
func TestWorkloadStationaryLoadMatches(t *testing.T) {
	util := utility.NewAdaptive()
	scn := parseSpec(t, `scenario s
prefill 20
warmup 4
phase only 84
arrivals poisson rate=20
holding exp mean=1
`)
	res, err := Run(Config{
		Server:   newServer(t, 30, util),
		Capacity: 30,
		Util:     util,
		Workload: scn,
		Seed1:    13, Seed2: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeasuredMeanLoad-20) > 2 {
		t.Fatalf("stationary offered load %.2f, want ≈ 20", res.MeasuredMeanLoad)
	}
}
