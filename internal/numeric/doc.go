// Package numeric provides the numerical substrate used throughout beqos:
// root finding, maximization, adaptive quadrature, infinite-series summation,
// and the special functions (Hurwitz zeta, Lambert W) needed by the
// analytical model of Breslau & Shenker (SIGCOMM 1998).
//
// Go's standard library has no scientific-computing package, so this package
// implements the small, well-understood subset the model needs. All routines
// are deterministic, allocation-light, and validated against closed-form
// identities in the package tests.
package numeric
