package numeric

import "math"

// Integrate computes the definite integral of f over [a, b] using adaptive
// Simpson quadrature with absolute tolerance tol. It handles a > b by sign
// convention and a == b by returning 0.
func Integrate(f func(float64) float64, a, b, tol float64) float64 {
	if a == b {
		return 0
	}
	sign := 1.0
	if a > b {
		a, b = b, a
		sign = -1
	}
	c := a + (b-a)/2
	fa, fb, fc := f(a), f(b), f(c)
	whole := simpson(fa, fc, fb, b-a)
	// Never demand more than ~1e-13 relative accuracy: callers pass small
	// absolute tolerances for integrals whose magnitude they cannot know in
	// advance (e.g. far power-law tails of order 1e-11).
	if rel := 1e-13 * math.Abs(whole); rel > tol {
		tol = rel
	}
	return sign * adaptiveSimpson(f, a, b, fa, fb, fc, whole, tol, 50)
}

func simpson(fa, fm, fb, h float64) float64 {
	return h / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fb, fc, whole, tol float64, depth int) float64 {
	c := a + (b-a)/2
	lm := a + (c-a)/2
	rm := c + (b-c)/2
	flm, frm := f(lm), f(rm)
	left := simpson(fa, flm, fc, c-a)
	right := simpson(fc, frm, fb, b-c)
	delta := left + right - whole
	if depth <= 0 || math.Abs(delta) <= 15*tol {
		return left + right + delta/15
	}
	return adaptiveSimpson(f, a, c, fa, fc, flm, left, tol/2, depth-1) +
		adaptiveSimpson(f, c, b, fc, fb, frm, right, tol/2, depth-1)
}

// IntegrateToInf computes the integral of f over [a, ∞) by mapping the tail
// onto a finite interval with the scaled substitution x = a + s·t/(1−t),
// t ∈ [0, 1), where s = max(|a|, 1). The scale keeps power-law tails
// starting at large a well resolved (x doubles at t = 1/2 instead of being
// squeezed against t = 1). f must decay fast enough for the transformed
// integrand to vanish as t → 1.
func IntegrateToInf(f func(float64) float64, a, tol float64) float64 {
	s := math.Abs(a)
	if s < 1 {
		s = 1
	}
	return IntegrateToInfScaled(f, a, s, tol)
}

// IntegrateToInfScaled is IntegrateToInf with an explicit substitution scale
// s: x = a + s·t/(1−t). Use it when f's decay scale is much larger than a
// (e.g. a heavy tail whose mass sits near x ≈ λ^(1/z) ≫ a), which the
// default scale would squeeze against t = 1.
func IntegrateToInfScaled(f func(float64) float64, a, s, tol float64) float64 {
	if !(s > 0) {
		s = 1
	}
	g := func(t float64) float64 {
		if t >= 1 {
			return 0
		}
		u := 1 - t
		x := a + s*t/u
		v := s * f(x) / (u * u)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return v
	}
	return Integrate(g, 0, 1, tol)
}

// SumTail sums f(k) for k = start, start+1, … until the running tail becomes
// negligible: it stops after seeing consecutive terms below tol·(1+|sum|) for
// a guard window, or after maxTerms terms. Summation is compensated (Kahan).
func SumTail(f func(k int) float64, start int, tol float64, maxTerms int) float64 {
	var sum, comp float64
	small := 0
	const guard = 32
	for k, n := start, 0; n < maxTerms; k, n = k+1, n+1 {
		t := f(k)
		y := t - comp
		s := sum + y
		comp = (s - sum) - y
		sum = s
		if math.Abs(t) <= tol*(1+math.Abs(sum)) {
			small++
			if small >= guard {
				break
			}
		} else {
			small = 0
		}
	}
	return sum
}

// KahanSum accumulates a compensated (Kahan) running sum. The zero value is
// ready to use.
type KahanSum struct {
	sum, comp float64
}

// Add folds x into the sum.
func (k *KahanSum) Add(x float64) {
	y := x - k.comp
	s := k.sum + y
	k.comp = (s - k.sum) - y
	k.sum = s
}

// Sum reports the accumulated total.
func (k *KahanSum) Sum() float64 { return k.sum }
