package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntegratePolynomial(t *testing.T) {
	got := Integrate(func(x float64) float64 { return x * x }, 0, 1, 1e-12)
	almostEqual(t, got, 1.0/3, 1e-10, "∫₀¹ x² dx")
}

func TestIntegrateSin(t *testing.T) {
	got := Integrate(math.Sin, 0, math.Pi, 1e-12)
	almostEqual(t, got, 2, 1e-9, "∫₀^π sin x dx")
}

func TestIntegrateReversedAndEmpty(t *testing.T) {
	f := func(x float64) float64 { return x }
	if got := Integrate(f, 1, 1, 1e-12); got != 0 {
		t.Errorf("empty interval: got %v", got)
	}
	fwd := Integrate(f, 0, 2, 1e-12)
	rev := Integrate(f, 2, 0, 1e-12)
	almostEqual(t, rev, -fwd, 1e-10, "reversed bounds negate")
}

func TestIntegrateToInfExponential(t *testing.T) {
	got := IntegrateToInf(func(x float64) float64 { return math.Exp(-x) }, 0, 1e-12)
	almostEqual(t, got, 1, 1e-8, "∫₀^∞ e^(−x) dx")
}

func TestIntegrateToInfPowerTail(t *testing.T) {
	got := IntegrateToInf(func(x float64) float64 { return math.Pow(x, -2) }, 1, 1e-12)
	almostEqual(t, got, 1, 1e-8, "∫₁^∞ x^(−2) dx")
}

func TestIntegrateToInfShiftedExponential(t *testing.T) {
	// ∫_a^∞ e^(−x) dx = e^(−a), for several a.
	for _, a := range []float64{0.5, 1, 3, 10} {
		got := IntegrateToInf(func(x float64) float64 { return math.Exp(-x) }, a, 1e-12)
		almostEqual(t, got, math.Exp(-a), 1e-8, "shifted exponential tail")
	}
}

func TestIntegrateAdditivityProperty(t *testing.T) {
	// ∫_a^c = ∫_a^b + ∫_b^c for a smooth integrand.
	f := func(x float64) float64 { return math.Exp(-x*x/10) * math.Cos(x) }
	prop := func(s1, s2 float64) bool {
		a := math.Mod(math.Abs(s1), 5)
		c := a + 1 + math.Mod(math.Abs(s2), 5)
		b := (a + c) / 2
		whole := Integrate(f, a, c, 1e-11)
		parts := Integrate(f, a, b, 1e-11) + Integrate(f, b, c, 1e-11)
		return math.Abs(whole-parts) < 1e-8
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSumTailGeometric(t *testing.T) {
	got := SumTail(func(k int) float64 { return math.Pow(0.5, float64(k)) }, 0, 1e-16, 1_000_000)
	almostEqual(t, got, 2, 1e-12, "Σ 2^(−k)")
}

func TestSumTailPoissonNormalization(t *testing.T) {
	// Σ_k ν^k e^(−ν)/k! = 1 for ν = 100, using log-space PMF evaluation.
	nu := 100.0
	pmf := func(k int) float64 {
		lg, _ := math.Lgamma(float64(k) + 1)
		return math.Exp(float64(k)*math.Log(nu) - nu - lg)
	}
	got := SumTail(pmf, 0, 1e-18, 100000)
	almostEqual(t, got, 1, 1e-10, "Poisson normalization")
}

func TestKahanSumPrecision(t *testing.T) {
	var ks KahanSum
	ks.Add(1e16)
	for i := 0; i < 10000; i++ {
		ks.Add(1)
	}
	ks.Add(-1e16)
	almostEqual(t, ks.Sum(), 10000, 1e-6, "compensated summation")
}
