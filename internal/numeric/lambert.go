package numeric

import "math"

// LambertW0 computes the principal branch W₀ of the Lambert W function:
// the solution w ≥ −1 of w·e^w = x, defined for x ≥ −1/e.
// It returns NaN for x < −1/e.
func LambertW0(x float64) float64 {
	const negInvE = -1.0 / math.E
	switch {
	case math.IsNaN(x) || x < negInvE:
		return math.NaN()
	case x == 0:
		return 0
	case x == negInvE:
		return -1
	}
	// Initial guess.
	var w float64
	if x < 1 {
		// Series around the branch point for x near −1/e, else simple start.
		p := math.Sqrt(2 * (math.E*x + 1))
		w = -1 + p - p*p/3 + 11*p*p*p/72
	} else {
		w = math.Log(x)
		if w > 3 {
			w -= math.Log(w)
		}
	}
	return halleyW(x, w)
}

// LambertWm1 computes the secondary real branch W₋₁: the solution w ≤ −1 of
// w·e^w = x, defined for x ∈ [−1/e, 0). It returns NaN outside that domain.
func LambertWm1(x float64) float64 {
	const negInvE = -1.0 / math.E
	if math.IsNaN(x) || x < negInvE || x >= 0 {
		return math.NaN()
	}
	if x == negInvE {
		return -1
	}
	// Initial guess: w ≈ ln(−x) − ln(−ln(−x)).
	l1 := math.Log(-x)
	w := l1
	if -l1 > 0 {
		w = l1 - math.Log(-l1)
	}
	if w > -1 {
		w = -1.000001
	}
	return halleyW(x, w)
}

// halleyW refines w·e^w = x by Halley's method.
func halleyW(x, w float64) float64 {
	for i := 0; i < 100; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		if f == 0 {
			return w
		}
		d := ew*(w+1) - (w+2)*f/(2*(w+1))
		dw := f / d
		nw := w - dw
		if math.Abs(nw-w) <= 1e-14*(1+math.Abs(nw)) {
			return nw
		}
		w = nw
	}
	return w
}
