package numeric

import "math"

// invPhi is 1/φ, the golden-section step ratio.
const invPhi = 0.6180339887498949

// GoldenMax maximizes a unimodal function f on [a, b] by golden-section
// search, returning the maximizing argument and the maximum value. tol is the
// absolute argument tolerance.
func GoldenMax(f func(float64) float64, a, b, tol float64) (x, fx float64) {
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc >= fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	x = a + (b-a)/2
	return x, f(x)
}

// MaxScan maximizes f on [a, b] without assuming unimodality: it evaluates f
// on an n-point grid, then refines around the best grid point with a
// golden-section search. It returns the maximizing argument and value.
// The grid guards against the piecewise-linear / stepped value functions that
// arise with rigid utilities, for which pure golden-section can stall on a
// local plateau.
func MaxScan(f func(float64) float64, a, b float64, n int, tol float64) (x, fx float64) {
	if n < 3 {
		n = 3
	}
	bestX, bestF := a, math.Inf(-1)
	h := (b - a) / float64(n-1)
	for i := 0; i < n; i++ {
		xi := a + h*float64(i)
		fi := f(xi)
		if fi > bestF {
			bestX, bestF = xi, fi
		}
	}
	lo := math.Max(a, bestX-h)
	hi := math.Min(b, bestX+h)
	gx, gf := GoldenMax(f, lo, hi, tol)
	if gf >= bestF {
		return gx, gf
	}
	return bestX, bestF
}

// MaxScanLog is MaxScan on a logarithmic grid, for objectives whose
// interesting scale spans orders of magnitude (e.g. capacity vs price
// sweeps). a must be positive.
func MaxScanLog(f func(float64) float64, a, b float64, n int, tol float64) (x, fx float64) {
	if a <= 0 {
		return MaxScan(f, math.Max(a, 1e-12), b, n, tol)
	}
	g := func(u float64) float64 { return f(math.Exp(u)) }
	u, _ := MaxScan(g, math.Log(a), math.Log(b), n, math.Min(tol, 1e-10))
	// Refine in linear space around the log-grid winner.
	la, lb := math.Exp(u)/1.5, math.Exp(u)*1.5
	if la < a {
		la = a
	}
	if lb > b {
		lb = b
	}
	return MaxScan(f, la, lb, 64, tol)
}

// ArgmaxInt maximizes g over the integers [lo, hi] by direct scan, returning
// the smallest maximizing integer and the maximum value.
func ArgmaxInt(g func(int) float64, lo, hi int) (int, float64) {
	bestK, bestV := lo, math.Inf(-1)
	for k := lo; k <= hi; k++ {
		if v := g(k); v > bestV {
			bestK, bestV = k, v
		}
	}
	return bestK, bestV
}
