package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGoldenMaxParabola(t *testing.T) {
	f := func(x float64) float64 { return -(x - 2) * (x - 2) }
	x, fx := GoldenMax(f, -10, 10, 1e-10)
	almostEqual(t, x, 2, 1e-7, "argmax")
	almostEqual(t, fx, 0, 1e-12, "max value")
}

func TestGoldenMaxProperty(t *testing.T) {
	// Any downward parabola with vertex in the interval is found.
	prop := func(seed float64) bool {
		v := math.Mod(math.Abs(seed), 8) - 4
		f := func(x float64) float64 { return -(x - v) * (x - v) }
		x, _ := GoldenMax(f, -5, 5, 1e-10)
		return math.Abs(x-v) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxScanMultimodal(t *testing.T) {
	// f has local maxima near x ≈ π/2 + 2πn with a rising envelope; on
	// [0, 14.5] the global max is the interior peak at x = π/2 + 4π.
	f := func(x float64) float64 { return math.Sin(x) + 0.05*x }
	x, fx := MaxScan(f, 0, 14.5, 256, 1e-10)
	want := 4*math.Pi + math.Acos(-0.05) // stationary point near π/2 + 4π
	if math.Abs(x-want) > 0.01 {
		t.Errorf("argmax: got %v, want ≈ %v", x, want)
	}
	if fx < f(want)-1e-6 {
		t.Errorf("max value too small: %v", fx)
	}
}

func TestMaxScanStepFunction(t *testing.T) {
	// A step objective minus a linear cost: max is at the step.
	f := func(x float64) float64 {
		v := math.Floor(x)
		return v - 0.4*x
	}
	x, _ := MaxScan(f, 0, 10.5, 2048, 1e-9)
	// Every integer step gains 1 at cost 0.4, so the best point is the last
	// step at x = 10.
	if math.Abs(x-10) > 0.01 {
		t.Errorf("argmax: got %v, want 10", x)
	}
}

func TestMaxScanLog(t *testing.T) {
	// Peak at x = 100 on a domain spanning 6 decades.
	f := func(x float64) float64 {
		l := math.Log(x / 100)
		return -l * l
	}
	x, _ := MaxScanLog(f, 1e-3, 1e3, 512, 1e-9)
	if math.Abs(x-100) > 0.5 {
		t.Errorf("argmax: got %v, want 100", x)
	}
}

func TestArgmaxInt(t *testing.T) {
	g := func(k int) float64 { return -float64(k-7) * float64(k-7) }
	k, v := ArgmaxInt(g, 0, 100)
	if k != 7 || v != 0 {
		t.Errorf("got (%d, %v), want (7, 0)", k, v)
	}
}

func TestArgmaxIntTiesPickSmallest(t *testing.T) {
	g := func(k int) float64 { return 1 }
	k, _ := ArgmaxInt(g, 3, 10)
	if k != 3 {
		t.Errorf("got %d, want 3", k)
	}
}
