package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned when a root-finding routine cannot bracket a sign
// change in the supplied interval.
var ErrNoBracket = errors.New("numeric: no sign change in bracket")

// ErrNoConverge is returned when an iterative routine exhausts its iteration
// budget without meeting its tolerance.
var ErrNoConverge = errors.New("numeric: iteration did not converge")

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs (zero endpoint values are accepted as roots). The result is
// accurate to within tol in the argument.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.IsNaN(fa) || math.IsNaN(fb) || fa*fb > 0 {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	for i := 0; i < 200; i++ {
		m := a + (b-a)/2
		if b-a <= tol || m == a || m == b {
			return m, nil
		}
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if fa*fm < 0 {
			b = m
		} else {
			a, fa = m, fm
		}
	}
	return a + (b-a)/2, nil
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection fallback). f(a) and f(b) must have opposite
// signs. tol is the absolute argument tolerance.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.IsNaN(fa) || math.IsNaN(fb) || fa*fb > 0 {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b, fa, fb = b, a, fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) <= tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = a + (b-a)/2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if fa*fs < 0 {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b, fa, fb = b, a, fb, fa
		}
	}
	return b, nil
}

// BracketUp expands an initial interval [lo, hi] geometrically to the right
// until f changes sign (or hits max), then returns the bracketing interval.
// It is intended for monotone f with f(lo) of known sign.
func BracketUp(f func(float64) float64, lo, hi, max float64) (a, b float64, err error) {
	flo := f(lo)
	if flo == 0 {
		return lo, lo, nil
	}
	a = lo
	for hi <= max {
		if flo*f(hi) <= 0 {
			return a, hi, nil
		}
		a = hi
		hi *= 2
	}
	if flo*f(max) <= 0 {
		return a, max, nil
	}
	return 0, 0, fmt.Errorf("%w: no sign change up to %g", ErrNoBracket, max)
}

// InvertMonotone solves f(x) = y for x, where f is nondecreasing on
// [lo, hi]. It brackets by expanding from lo and refines with Brent.
func InvertMonotone(f func(float64) float64, y, lo, hi, tol float64) (float64, error) {
	g := func(x float64) float64 { return f(x) - y }
	a, b, err := BracketUp(g, lo, math.Min(lo*2+1, hi), hi)
	if err != nil {
		return 0, err
	}
	if a == b {
		return a, nil
	}
	return Brent(g, a, b, tol)
}

// Newton runs Newton iterations for a root of f with derivative df starting
// at x0. It falls back to halving the step when the iterate leaves [lo, hi].
func Newton(f, df func(float64) float64, x0, lo, hi, tol float64) (float64, error) {
	x := x0
	for i := 0; i < 100; i++ {
		fx := f(x)
		if math.Abs(fx) == 0 {
			return x, nil
		}
		d := df(x)
		if d == 0 || math.IsNaN(d) {
			return 0, fmt.Errorf("%w: zero derivative at %g", ErrNoConverge, x)
		}
		step := fx / d
		nx := x - step
		for j := 0; j < 60 && (nx < lo || nx > hi || math.IsNaN(f(nx))); j++ {
			step /= 2
			nx = x - step
		}
		if math.Abs(nx-x) <= tol*(1+math.Abs(x)) {
			return nx, nil
		}
		x = nx
	}
	return 0, ErrNoConverge
}
