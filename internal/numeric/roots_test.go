package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v (tol %g)", msg, got, want, tol)
	}
}

func TestBisectCosFixedPoint(t *testing.T) {
	f := func(x float64) float64 { return math.Cos(x) - x }
	x, err := Bisect(f, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, x, 0.7390851332151607, 1e-10, "dottie number")
}

func TestBrentCosFixedPoint(t *testing.T) {
	f := func(x float64) float64 { return math.Cos(x) - x }
	x, err := Brent(f, 0, 1, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, x, 0.7390851332151607, 1e-10, "dottie number")
}

func TestBrentEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	x, err := Brent(f, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, x, 0, 1e-12, "root at left endpoint")
	x, err = Brent(f, -1, 0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, x, 0, 1e-12, "root at right endpoint")
}

func TestBrentNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Brent(f, -1, 1, 1e-12); err == nil {
		t.Fatal("expected ErrNoBracket")
	}
	if _, err := Bisect(f, -1, 1, 1e-12); err == nil {
		t.Fatal("expected ErrNoBracket")
	}
}

func TestBrentPolynomialRootsProperty(t *testing.T) {
	// For any r in (−5, 5), Brent on f(x) = (x−r)(x²+1) over [−10, 10]
	// recovers r.
	prop := func(seed float64) bool {
		r := math.Mod(math.Abs(seed), 10) - 5
		f := func(x float64) float64 { return (x - r) * (x*x + 1) }
		x, err := Brent(f, -10, 10, 1e-12)
		return err == nil && math.Abs(x-r) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBracketUp(t *testing.T) {
	f := func(x float64) float64 { return x - 37 }
	a, b, err := BracketUp(f, 1, 2, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !(a <= 37 && 37 <= b) {
		t.Errorf("bracket [%g, %g] does not contain 37", a, b)
	}
	if _, _, err := BracketUp(f, 1, 2, 10); err == nil {
		t.Error("expected failure when root beyond max")
	}
}

func TestInvertMonotone(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	x, err := InvertMonotone(f, 9, 0, 1e6, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, x, 3, 1e-9, "inverse of square")
}

func TestInvertMonotoneProperty(t *testing.T) {
	// f(x) = x³ + x is strictly increasing; inversion then evaluation is
	// the identity.
	f := func(x float64) float64 { return x*x*x + x }
	prop := func(seed float64) bool {
		y := math.Mod(math.Abs(seed), 1000)
		x, err := InvertMonotone(f, y, 0, 1e4, 1e-12)
		return err == nil && math.Abs(f(x)-y) < 1e-6*(1+y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestNewtonSqrt(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	df := func(x float64) float64 { return 2 * x }
	x, err := Newton(f, df, 1, 0, 10, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, x, math.Sqrt2, 1e-12, "sqrt(2)")
}

func TestNewtonZeroDerivative(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	df := func(x float64) float64 { return 2 * x }
	if _, err := Newton(f, df, 0, -1, 1, 1e-12); err == nil {
		t.Error("expected error for zero derivative at start")
	}
}
