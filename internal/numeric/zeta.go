package numeric

import "math"

// bernoulli2n holds B_2, B_4, …, B_16: the even-index Bernoulli numbers used
// by the Euler–Maclaurin correction in HurwitzZeta.
var bernoulli2n = [...]float64{
	1.0 / 6,
	-1.0 / 30,
	1.0 / 42,
	-1.0 / 30,
	5.0 / 66,
	-691.0 / 2730,
	7.0 / 6,
	-3617.0 / 510,
}

// HurwitzZeta computes the Hurwitz zeta function
//
//	ζ(s, q) = Σ_{n=0}^{∞} (q + n)^(−s)
//
// for s > 1 and q > 0, via direct summation of the first terms plus an
// Euler–Maclaurin tail. Accuracy is near machine precision for the parameter
// ranges used by the algebraic load distribution (s in (1, 20], q ≥ 0.5).
//
// It returns NaN outside the supported domain.
func HurwitzZeta(s, q float64) float64 {
	if s <= 1 || q <= 0 {
		return math.NaN()
	}
	// Sum the first N terms directly, then correct the remainder with
	// Euler–Maclaurin at x = q + N.
	const N = 24
	var head KahanSum
	for n := 0; n < N; n++ {
		head.Add(math.Pow(q+float64(n), -s))
	}
	x := q + N
	// ∫_x^∞ t^(−s) dt = x^(1−s)/(s−1), plus the midpoint and derivative terms.
	tail := math.Pow(x, 1-s)/(s-1) + math.Pow(x, -s)/2
	// Σ_j B_2j/(2j)! · (s)(s+1)…(s+2j−2) · x^(−s−2j+1)
	rising := s // (s)_1
	xpow := math.Pow(x, -s-1)
	fact := 2.0 // (2j)! running value for j = 1
	for j := 1; j <= len(bernoulli2n); j++ {
		tail += bernoulli2n[j-1] / fact * rising * xpow
		// Advance to j+1: multiply rising by (s+2j−1)(s+2j), factorial by
		// (2j+1)(2j+2), and xpow by x^(−2).
		tj := float64(2 * j)
		rising *= (s + tj - 1) * (s + tj)
		fact *= (tj + 1) * (tj + 2)
		xpow /= x * x
	}
	return head.Sum() + tail
}

// RiemannZeta computes ζ(s) for s > 1.
func RiemannZeta(s float64) float64 { return HurwitzZeta(s, 1) }
