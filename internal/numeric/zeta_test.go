package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRiemannZetaKnownValues(t *testing.T) {
	cases := []struct {
		s, want float64
	}{
		{2, math.Pi * math.Pi / 6},
		{4, math.Pow(math.Pi, 4) / 90},
		{3, 1.2020569031595943}, // Apéry's constant
		{1.5, 2.612375348685488},
		{6, math.Pow(math.Pi, 6) / 945},
	}
	for _, c := range cases {
		almostEqual(t, RiemannZeta(c.s), c.want, 1e-12, "ζ(s)")
	}
}

func TestHurwitzZetaRecurrence(t *testing.T) {
	// ζ(s, q) = q^(−s) + ζ(s, q+1) for random (s, q).
	prop := func(s1, s2 float64) bool {
		s := 1.1 + math.Mod(math.Abs(s1), 10)
		q := 0.5 + math.Mod(math.Abs(s2), 50)
		lhs := HurwitzZeta(s, q)
		rhs := math.Pow(q, -s) + HurwitzZeta(s, q+1)
		return math.Abs(lhs-rhs) < 1e-11*(1+math.Abs(lhs))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHurwitzZetaMatchesDirectSum(t *testing.T) {
	// Compare against brute-force summation for a rapidly converging case.
	s, q := 5.0, 3.7
	var direct KahanSum
	for n := 0; n < 2_000_000; n++ {
		direct.Add(math.Pow(q+float64(n), -s))
	}
	almostEqual(t, HurwitzZeta(s, q), direct.Sum(), 1e-12, "Hurwitz vs direct sum")
}

func TestHurwitzZetaSlowCase(t *testing.T) {
	// s close to 1 converges very slowly by direct summation; Euler–Maclaurin
	// must still nail it. Reference computed from the recurrence applied to a
	// shifted fast case is impractical, so use ζ(1.2) from the identity with
	// a very deep direct sum plus integral tail bound.
	s := 1.2
	const N = 4_000_000
	var head KahanSum
	for n := 1; n <= N; n++ {
		head.Add(math.Pow(float64(n), -s))
	}
	// Tail ∫_{N+1/2}^∞ x^(−s) dx approximates the remainder (midpoint rule).
	tail := math.Pow(float64(N)+0.5, 1-s) / (s - 1)
	want := head.Sum() + tail
	almostEqual(t, RiemannZeta(s), want, 1e-7, "ζ(1.2)")
}

func TestHurwitzZetaDomain(t *testing.T) {
	if !math.IsNaN(HurwitzZeta(0.5, 1)) {
		t.Error("expected NaN for s ≤ 1")
	}
	if !math.IsNaN(HurwitzZeta(2, -1)) {
		t.Error("expected NaN for q ≤ 0")
	}
}

func TestLambertW0KnownValues(t *testing.T) {
	almostEqual(t, LambertW0(0), 0, 0, "W₀(0)")
	almostEqual(t, LambertW0(math.E), 1, 1e-12, "W₀(e)")
	almostEqual(t, LambertW0(1), 0.5671432904097838, 1e-12, "Ω constant")
	almostEqual(t, LambertW0(-1/math.E), -1, 1e-9, "branch point")
}

func TestLambertW0Identity(t *testing.T) {
	prop := func(seed float64) bool {
		x := math.Mod(math.Abs(seed), 100) - 1/math.E + 1e-9
		w := LambertW0(x)
		return math.Abs(w*math.Exp(w)-x) < 1e-9*(1+math.Abs(x))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLambertWm1KnownValues(t *testing.T) {
	almostEqual(t, LambertWm1(-1/math.E), -1, 1e-9, "branch point")
	// W₋₁(−0.1) ≈ −3.577152063957297
	almostEqual(t, LambertWm1(-0.1), -3.577152063957297, 1e-10, "W₋₁(−0.1)")
}

func TestLambertWm1Identity(t *testing.T) {
	prop := func(seed float64) bool {
		// x in (−1/e, 0)
		u := math.Mod(math.Abs(seed), 1) // (0,1)
		x := -u / math.E
		if x == 0 {
			return true
		}
		w := LambertWm1(x)
		return w <= -1 && math.Abs(w*math.Exp(w)-x) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLambertDomain(t *testing.T) {
	if !math.IsNaN(LambertW0(-1)) {
		t.Error("W₀ below branch point should be NaN")
	}
	if !math.IsNaN(LambertWm1(0.5)) {
		t.Error("W₋₁ of positive argument should be NaN")
	}
}
