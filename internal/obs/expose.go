package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus writes the registry's current state in the Prometheus
// text exposition format (version 0.0.4). Histograms are emitted as
// cumulative `_bucket{le="..."}` series with `_sum` and `_count`; bucket
// edges are the power-of-two upper bounds, in the instrument's native unit
// (the serving plane records nanoseconds and frames; metric names carry
// the unit suffix).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, sanitizeHelp(m.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
			return err
		}
		if m.Kind != KindHistogram {
			if _, err := fmt.Fprintf(w, "%s %g\n", m.Name, m.Value); err != nil {
				return err
			}
			continue
		}
		h := m.Hist
		var cum uint64
		for i, n := range h.Buckets {
			cum += n
			// Skip empty leading/intermediate buckets that add no
			// information: emit a bucket only when its count changes the
			// cumulative total (plus the mandatory +Inf below).
			if n == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", m.Name, bucketUpper(i), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.Name, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", m.Name, h.Sum, m.Name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeHelp keeps HELP lines single-line.
func sanitizeHelp(s string) string {
	return strings.NewReplacer("\n", " ", "\\", `\\`).Replace(s)
}

// jsonHist is the JSON shape of a histogram snapshot.
type jsonHist struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Max   uint64  `json:"max"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
}

// WriteJSON writes the registry's current state as a single JSON object
// keyed by metric name — the expvar convention, so existing debug-vars
// tooling can scrape it. Counters and gauges map to numbers, histograms to
// {count, sum, max, mean, p50, p95, p99} objects.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]interface{})
	for _, m := range r.Snapshot() {
		if m.Kind != KindHistogram {
			out[m.Name] = m.Value
			continue
		}
		h := m.Hist
		out[m.Name] = jsonHist{
			Count: h.Count,
			Sum:   h.Sum,
			Max:   h.Max,
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
