package obs

import (
	"math"
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
)

const (
	// histBuckets covers the full uint64 range with power-of-two buckets:
	// bucket i holds values v with bits.Len64(v) == i, i.e. v ∈ [2^(i−1),
	// 2^i). This is report.Histogram's geometric bucket scheme specialized
	// to growth factor 2, which turns the floating-point log indexing into
	// one BSR instruction — the right trade for a hot path that must not
	// allocate or stall. Relative quantile error is one bucket: ≤ 2×.
	histBuckets = 65

	// histShards stripes the bucket counters so concurrent recorders from
	// different connections do not serialize on one cache line. Shard
	// choice is a per-goroutine cheap random draw; snapshots merge shards.
	histShards     = 4
	histShardMask  = histShards - 1
	cacheLineBytes = 64
)

// histShard is one stripe of a histogram. Each shard carries its own
// sum/max so a record touches exactly one shard; trailing padding keeps
// shards on distinct cache lines. There is deliberately no count field:
// the buckets are the single source of truth for the count, so a
// snapshot's Count always equals the sum of its Buckets — an invariant a
// separate atomic could not guarantee against concurrent recorders.
type histShard struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	_       [cacheLineBytes - (histBuckets*8+2*8)%cacheLineBytes]byte
}

// Histogram is a lock-free streaming histogram over nonnegative integer
// values (typically nanoseconds or batch sizes): constant memory, O(1)
// atomic Record, quantiles with one-bucket (≤ 2×) relative error. The zero
// value is NOT usable on its own — obtain histograms from
// Registry.Histogram (or NewHistogram for unregistered use).
type Histogram struct {
	shards [histShards]histShard
}

// NewHistogram returns an unregistered histogram, for callers that manage
// exposition themselves (e.g. per-run instruments folded into a Result).
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a value to its power-of-two bucket.
func bucketOf(v uint64) int { return bits.Len64(v) }

// bucketUpper returns the inclusive upper edge of bucket i.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) { h.RecordN(v, 1) }

// RecordN adds n observations of the same value v with one set of atomic
// updates — the batched-I/O hot path records a whole frame batch's
// per-request latency this way, so instrumentation cost is per batch, not
// per frame.
func (h *Histogram) RecordN(v uint64, n uint64) {
	if n == 0 {
		return
	}
	sh := &h.shards[rand.Uint32()&histShardMask]
	sh.buckets[bucketOf(v)].Add(n)
	sh.sum.Add(v * n)
	for {
		old := sh.max.Load()
		if v <= old || sh.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Snapshot merges the shards into one consistent-enough view: each shard
// is read atomically, and counters only grow, so a snapshot taken during
// concurrent recording is bounded below by any earlier snapshot. Count is
// derived from the merged buckets, so Count == sum(Buckets) holds in
// every snapshot, live or quiescent.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.buckets {
			s.Buckets[b] += sh.buckets[b].Load()
		}
		s.Sum += sh.sum.Load()
		if m := sh.max.Load(); m > s.Max {
			s.Max = m
		}
	}
	for _, n := range s.Buckets {
		s.Count += n
	}
	return s
}

// HistSnapshot is a histogram's merged state at one instant.
type HistSnapshot struct {
	// Buckets[i] counts values v with bits.Len64(v) == i (v < 2^i).
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

// Mean returns the mean recorded value (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-th quantile (q in [0, 1]): the
// upper edge of the bucket holding that rank, clamped to the observed
// maximum. It returns 0 when the histogram is empty.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, n := range s.Buckets {
		seen += n
		if rank <= seen {
			upper := bucketUpper(i)
			if upper > s.Max {
				upper = s.Max
			}
			return upper
		}
	}
	return s.Max
}
