package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry: Prometheus text by default, expvar-style
// JSON with `?format=json` (or via the /metrics.json alias DebugMux adds).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// DebugMux returns the serving plane's debug endpoint catalog, suitable
// for an operator-only listener (`beqos serve -debug-addr`):
//
//	/metrics       Prometheus text exposition
//	/metrics.json  expvar-style JSON snapshot
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  the standard Go profiling endpoints
//
// The pprof handlers are mounted explicitly rather than via the
// net/http/pprof side-effect import, so nothing leaks onto
// http.DefaultServeMux.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
