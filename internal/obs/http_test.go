package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// get performs one request against the debug mux and returns status + body.
func get(t *testing.T, mux *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := mux.Client().Get(mux.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestDebugMuxEndpoints(t *testing.T) {
	r := New()
	r.Counter("beqos_test_total", "help").Add(9)
	r.Histogram("beqos_test_ns", "").Record(512)
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()

	code, body, ctype := get(t, srv, "/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	_ = ctype

	code, body, ctype = get(t, srv, "/metrics")
	if code != 200 || !strings.Contains(body, "beqos_test_total 9") {
		t.Errorf("/metrics = %d, body:\n%s", code, body)
	}
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("/metrics content-type = %q", ctype)
	}

	code, body, ctype = get(t, srv, "/metrics.json")
	if code != 200 || !strings.Contains(body, `"beqos_test_total": 9`) {
		t.Errorf("/metrics.json = %d, body:\n%s", code, body)
	}
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/metrics.json content-type = %q", ctype)
	}

	code, body, _ = get(t, srv, "/metrics?format=json")
	if code != 200 || !strings.Contains(body, `"beqos_test_total": 9`) {
		t.Errorf("/metrics?format=json = %d, body:\n%s", code, body)
	}

	code, body, _ = get(t, srv, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d, body:\n%.200s", code, body)
	}

	code, _, _ = get(t, srv, "/debug/pprof/cmdline")
	if code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}
