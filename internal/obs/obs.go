// Package obs is the observability plane for the serving stack: a
// zero-allocation, lock-free metrics registry with a pull-based snapshot
// API and HTTP exposition (Prometheus text, expvar-style JSON, pprof).
//
// Design rules (DESIGN.md §9):
//
//   - The observe path — Counter.Add, Gauge.Set, Histogram.Record — is
//     atomics-only: no locks, no maps, no interface boxing, no allocation.
//     Instruments are plain structs reached through pointers captured at
//     registration; the registry itself is never touched after that.
//   - Registration is rare and may lock. Duplicate names panic (programmer
//     error, like expvar.Publish).
//   - Reads are pull-based: Snapshot atomically loads every instrument into
//     plain values. Snapshots of a live registry are monotone per counter —
//     concurrent writers can only make later snapshots larger.
//   - Gauge callbacks (GaugeFunc) run only during a snapshot; they must be
//     safe to call from the scraping goroutine.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The struct is
// padded to a full cache line: counters are registered back-to-back and the
// hot ones (e.g. a server's grants and denials) are hammered from many
// goroutines — without padding they would false-share one line.
type Counter struct {
	v atomic.Uint64
	_ [cacheLineBytes - 8]byte
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value, cache-line padded like Counter.
type Gauge struct {
	v atomic.Int64
	_ [cacheLineBytes - 8]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc and Dec adjust the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Kind distinguishes instrument types in snapshots and exposition.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Metric is one instrument's state at snapshot time.
type Metric struct {
	Name string
	Help string
	Kind Kind
	// Value carries the counter or gauge reading (unused for histograms).
	Value float64
	// Hist carries the merged histogram state (KindHistogram only).
	Hist *HistSnapshot
}

// metric is one registered instrument.
type metric struct {
	name, help string
	kind       Kind
	counter    *Counter
	gauge      *Gauge
	gaugeFn    func() float64
	hist       *Histogram
}

// Registry holds a fixed set of named instruments. Registration locks;
// the instruments themselves never touch the registry again, so observing
// is lock-free regardless of how many goroutines share an instrument.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]struct{}
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

// register appends m, panicking on a duplicate or empty name.
func (r *Registry) register(m metric) {
	if m.name == "" {
		panic("obs: metric name must be non-empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic("obs: duplicate metric name " + m.name)
	}
	r.byName[m.name] = struct{}{}
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(metric{name: name, help: help, kind: KindCounter, counter: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(metric{name: name, help: help, kind: KindGauge, gauge: g})
	return g
}

// GaugeFunc registers a pull-only gauge: fn is evaluated at snapshot time
// and must be safe to call from the scraping goroutine (e.g. read only
// atomics, like resv.Server.Active).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(metric{name: name, help: help, kind: KindGauge, gaugeFn: fn})
}

// Histogram registers and returns a new histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.register(metric{name: name, help: help, kind: KindHistogram, hist: h})
	return h
}

// Snapshot atomically reads every instrument, in registration order.
// Counter readings are monotone across snapshots of a live registry.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	ms := r.metrics // registration only appends; the prefix is immutable
	r.mu.Unlock()
	out := make([]Metric, 0, len(ms))
	for i := range ms {
		m := &ms[i]
		s := Metric{Name: m.name, Help: m.help, Kind: m.kind}
		switch {
		case m.counter != nil:
			s.Value = float64(m.counter.Load())
		case m.gauge != nil:
			s.Value = float64(m.gauge.Load())
		case m.gaugeFn != nil:
			s.Value = m.gaugeFn()
		case m.hist != nil:
			hs := m.hist.Snapshot()
			s.Hist = &hs
		}
		out = append(out, s)
	}
	return out
}

// Get returns the named metric from a fresh snapshot (ok = false when the
// name is not registered). Intended for tests and cross-checks, not hot
// paths.
func (r *Registry) Get(name string) (Metric, bool) {
	for _, m := range r.Snapshot() {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.metrics))
	for i := range r.metrics {
		names = append(names, r.metrics[i].name)
	}
	sort.Strings(names)
	return names
}
