package obs

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	g.Set(7)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Load(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	r.GaugeFunc("gf", "a pulled gauge", func() float64 { return 2.5 })
	m, ok := r.Get("gf")
	if !ok || m.Value != 2.5 || m.Kind != KindGauge {
		t.Errorf("gauge func snapshot = %+v, ok=%v", m, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("Get of unregistered name should report false")
	}
	want := []string{"c_total", "g", "gf"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := New()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram()
	// 100 values of 100ns, 10 of 10000ns, 1 of 1e6 ns.
	h.RecordN(100, 100)
	h.RecordN(10000, 10)
	h.Record(1000000)
	s := h.Snapshot()
	if s.Count != 111 {
		t.Fatalf("count = %d, want 111", s.Count)
	}
	if s.Max != 1000000 {
		t.Errorf("max = %d, want 1000000", s.Max)
	}
	wantSum := uint64(100*100 + 10*10000 + 1000000)
	if s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
	if got, want := s.Mean(), float64(wantSum)/111; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %g, want %g", got, want)
	}
	// p50 lands in the bucket holding 100 (upper edge 127); p99 in the
	// 10000 bucket (upper edge 16383); p100 clamps to the observed max.
	if q := s.Quantile(0.5); q < 100 || q > 127 {
		t.Errorf("p50 = %d, want in [100, 127]", q)
	}
	if q := s.Quantile(0.99); q < 10000 || q > 16383 {
		t.Errorf("p99 = %d, want in [10000, 16383]", q)
	}
	if q := s.Quantile(1); q != 1000000 {
		t.Errorf("p100 = %d, want the observed max 1000000", q)
	}
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty snapshot should report zeros")
	}
}

func TestHistogramZeroAndHuge(t *testing.T) {
	h := NewHistogram()
	h.Record(0)
	h.Record(math.MaxUint64)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.Buckets[0] != 1 || s.Buckets[64] != 1 {
		t.Errorf("extreme values landed in wrong buckets: %v ... %v", s.Buckets[0], s.Buckets[64])
	}
	if q := s.Quantile(0.25); q != 0 {
		t.Errorf("p25 = %d, want 0", q)
	}
}

// TestSnapshotConsistencyUnderConcurrency hammers counters and a histogram
// from N goroutines while concurrently snapshotting: every snapshot's
// totals must be monotone nondecreasing (counters never go backward, no
// torn reads), and the final totals must be exact. Run under -race this is
// also the registry's data-race proof.
func TestSnapshotConsistencyUnderConcurrency(t *testing.T) {
	r := New()
	c := r.Counter("ops_total", "")
	h := r.Histogram("lat_ns", "")
	const (
		writers = 8
		perG    = 5000
	)
	var stop atomic.Bool
	snapErr := make(chan string, 1)
	fail := func(msg string) {
		select {
		case snapErr <- msg:
		default:
		}
	}
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		var lastC, lastH uint64
		for !stop.Load() {
			var curC, curH uint64
			for _, m := range r.Snapshot() {
				switch m.Name {
				case "ops_total":
					curC = uint64(m.Value)
				case "lat_ns":
					curH = m.Hist.Count
					var sum uint64
					for _, b := range m.Hist.Buckets {
						sum += b
					}
					if sum != m.Hist.Count {
						fail("histogram bucket sum diverged from count")
						return
					}
				}
			}
			if curC < lastC || curH < lastH {
				fail("snapshot totals went backward")
				return
			}
			lastC, lastH = curC, curH
		}
	}()
	var writersWG sync.WaitGroup
	for i := 0; i < writers; i++ {
		writersWG.Add(1)
		go func(seed uint64) {
			defer writersWG.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				h.Record(seed*31 + uint64(j)%1000)
			}
		}(uint64(i + 1))
	}
	writersWG.Wait()
	stop.Store(true)
	<-snapDone
	select {
	case msg := <-snapErr:
		t.Fatal(msg)
	default:
	}
	if got := c.Load(); got != writers*perG {
		t.Errorf("final counter = %d, want %d", got, writers*perG)
	}
	if got := h.Snapshot().Count; got != writers*perG {
		t.Errorf("final histogram count = %d, want %d", got, writers*perG)
	}
}

// TestObservePathZeroAlloc pins the hot observe path at zero allocations.
func TestObservePathZeroAlloc(t *testing.T) {
	r := New()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		g.Add(-1)
		h.Record(1234)
		h.RecordN(77, 32)
	})
	if allocs != 0 {
		t.Errorf("observe path allocates %v/op, want 0", allocs)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	c := r.Counter("beqos_reqs_total", "total requests\nwith a newline")
	g := r.Gauge("beqos_active", "active flows")
	h := r.Histogram("beqos_lat_ns", "latency")
	c.Add(5)
	g.Set(3)
	h.RecordN(100, 4)
	h.Record(5000)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE beqos_reqs_total counter",
		"beqos_reqs_total 5",
		"# HELP beqos_reqs_total total requests with a newline",
		"# TYPE beqos_active gauge",
		"beqos_active 3",
		"# TYPE beqos_lat_ns histogram",
		`beqos_lat_ns_bucket{le="127"} 4`,
		`beqos_lat_ns_bucket{le="8191"} 5`,
		`beqos_lat_ns_bucket{le="+Inf"} 5`,
		"beqos_lat_ns_sum 5400",
		"beqos_lat_ns_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := New()
	r.Counter("a", "").Add(2)
	h := r.Histogram("lat", "")
	h.RecordN(64, 10)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"a": 2`, `"lat"`, `"count": 10`, `"p50": 64`} {
		if !strings.Contains(out, want) {
			t.Errorf("json output missing %q:\n%s", want, out)
		}
	}
}
