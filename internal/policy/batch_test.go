package policy

import (
	"sync"
	"sync/atomic"
	"testing"
)

// batchCase describes one policy under the batch-boundary harness: the
// policy, the rate and class its requests carry, and the effective
// admission bound for that (rate, class) pair.
type batchCase struct {
	name  string
	pol   Policy
	rate  float64
	class uint8
	bound int
}

// batchCases builds the five built-ins, each configured so its boundary
// for the harness's request stream sits at bound.
func batchCases(t *testing.T, bound int) []batchCase {
	t.Helper()
	counting := newCounting(t, float64(bound), bound)
	bw, err := NewBandwidth(float64(bound))
	if err != nil {
		t.Fatal(err)
	}
	// Ample tokens: the bucket never sheds, so the boundary is the inner
	// counting bound (a denied inner admit refunds its token).
	tb, err := NewTokenBucket(newCounting(t, float64(bound), bound), 1, float64(2*bound))
	if err != nil {
		t.Fatal(err)
	}
	// Standard-class requests cut at the standard tier, set to the bound.
	tiered, err := NewTiered(float64(bound), bound, bound, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Target above kmax: the measurement gate never binds, the hard bound
	// at kmax does.
	meas, err := NewMeasured(float64(bound), bound, float64(bound+2), 1)
	if err != nil {
		t.Fatal(err)
	}
	return []batchCase{
		{"counting", counting, 0, ClassStandard, bound},
		{"bandwidth", bw, 1, ClassStandard, bound},
		{"token-bucket", tb, 0, ClassStandard, bound},
		{"tiered", tiered, 0, ClassStandard, bound},
		{"measured", meas, 0, ClassStandard, bound},
	}
}

// TestAdmitBatchPrefixAtBoundary pins the partial-grant contract on every
// built-in: with j slots left before the bound, a batch of n > j grants
// exactly the first j ops and denies the other n−j, the grant side of the
// Decision carries the share, and releasing the batch drains the books.
func TestAdmitBatchPrefixAtBoundary(t *testing.T) {
	const bound, j, n = 16, 5, 12
	for _, tc := range batchCases(t, bound) {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < bound-j; i++ {
				if d := tc.pol.Admit(0, uint64(i+1), tc.rate, tc.class); !d.Admit {
					t.Fatalf("prefill admit %d denied: %+v", i, d)
				}
			}
			granted, dec := AdmitBatch(tc.pol, 0, 1000, tc.rate, tc.class, n)
			if granted != j {
				t.Fatalf("batch of %d against %d free slots granted %d, want exactly %d", n, j, granted, j)
			}
			if !dec.Admit || !(dec.Share > 0) {
				t.Fatalf("partial grant decision lost the grant side: %+v", dec)
			}
			if dec.Load <= 0 {
				t.Fatalf("partial grant decision lost the denial's observed load: %+v", dec)
			}
			if a := tc.pol.Active(); a != int64(bound) {
				t.Fatalf("active = %d after the boundary batch, want %d", a, bound)
			}
			// A follow-up batch against the full link grants nothing.
			if g, d := AdmitBatch(tc.pol, 0, 2000, tc.rate, tc.class, n); g != 0 || d.Admit {
				t.Fatalf("batch against a full link granted %d (%+v)", g, d)
			}
			ReleaseBatch(tc.pol, 0, tc.rate, j)
			ReleaseBatch(tc.pol, 0, tc.rate, bound-j)
			if a := tc.pol.Active(); a != 0 {
				t.Fatalf("active = %d after releasing everything, want 0", a)
			}
		})
	}
}

// TestAdmitBatchBoundaryRaced races concurrent batches at the admission
// boundary: with exactly j free slots and every racer asking for more than
// its fair share, the grants across all racers must sum to exactly j —
// the vectored built-ins claim their prefix in a single CAS, and the loop
// fallback's per-op claims are individually atomic — and the denied
// remainder must leave no residue. Run under -race in CI.
func TestAdmitBatchBoundaryRaced(t *testing.T) {
	const bound, j, racers, n = 64, 5, 8, 16
	for _, tc := range batchCases(t, bound) {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < bound-j; i++ {
				if d := tc.pol.Admit(0, uint64(i+1), tc.rate, tc.class); !d.Admit {
					t.Fatalf("prefill admit %d denied: %+v", i, d)
				}
			}
			var total atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < racers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					granted, _ := AdmitBatch(tc.pol, 0, uint64(1000+w), tc.rate, tc.class, n)
					total.Add(int64(granted))
				}(w)
			}
			wg.Wait()
			if g := total.Load(); g != j {
				t.Fatalf("raced batches granted %d across %d racers, want exactly the %d free slots", g, racers, j)
			}
			if a := tc.pol.Active(); a != int64(bound) {
				t.Fatalf("active = %d after the race, want %d", a, bound)
			}
			ReleaseBatch(tc.pol, 0, tc.rate, bound)
			if a := tc.pol.Active(); a != 0 {
				t.Fatalf("active = %d after releasing everything, want 0", a)
			}
		})
	}
}

// TestAdmitBatchMatchesSerialSingles is the loop-fallback conformance
// check: for every built-in, a batch decides exactly like the same ops
// sent one Admit at a time at the same frozen now — same grant count from
// the same starting state, including a token bucket that sheds mid-batch.
func TestAdmitBatchMatchesSerialSingles(t *testing.T) {
	mk := func(t *testing.T) []batchCase {
		cases := batchCases(t, 8)
		// A shedding bucket: 3 tokens, so a batch of 6 cuts at 3 even
		// though the inner link has room — the fallback loop must stop
		// exactly where serial singles would.
		tb, err := NewTokenBucket(newCounting(t, 8, 8), 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		return append(cases, batchCase{"token-bucket-shedding", tb, 0, ClassStandard, 3})
	}
	serial := mk(t)
	batched := mk(t)
	const n = 6
	for i := range serial {
		t.Run(serial[i].name, func(t *testing.T) {
			s, b := serial[i], batched[i]
			var want int
			for k := 0; k < n; k++ {
				if s.pol.Admit(0, uint64(k+1), s.rate, s.class).Admit {
					want++
				}
			}
			got, _ := AdmitBatch(b.pol, 0, 1, b.rate, b.class, n)
			if got != want {
				t.Fatalf("batch granted %d, serial singles granted %d", got, want)
			}
			if sa, ba := s.pol.Active(), b.pol.Active(); sa != ba {
				t.Fatalf("active diverged: serial %d, batched %d", sa, ba)
			}
		})
	}
}
