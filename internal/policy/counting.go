package policy

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Counting is the paper's reservation rule: admit iff active < kmax(C),
// where kmax is the largest population the utility function still serves
// acceptably at capacity C. It is the default policy of counting-mode
// servers and preserves their pre-policy wire behavior bit for bit: grants
// carry the worst-case share C/kmax, denials carry the observed active
// count.
//
// Admission is a CAS loop on a single atomic counter — the exact discipline
// the sharded serving plane used before policies were pluggable — so
// concurrent reserves can never over-admit and the deny path stays a pure
// atomic load. Admit/Release are allocation-free.
type Counting struct {
	capacity float64
	bound    int64
	share    float64
	active   atomic.Int64
}

// NewCounting returns a counting policy admitting at most kmax concurrent
// flows on a link of the given capacity.
func NewCounting(capacity float64, kmax int) (*Counting, error) {
	if !(capacity > 0) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("policy: capacity must be positive and finite, got %v", capacity)
	}
	if kmax < 1 {
		return nil, fmt.Errorf("policy: kmax must be ≥ 1, got %d", kmax)
	}
	return &Counting{
		capacity: capacity,
		bound:    int64(kmax),
		share:    capacity / float64(kmax),
	}, nil
}

// Name implements Policy.
func (p *Counting) Name() string { return "counting" }

// Mode implements Policy.
func (p *Counting) Mode() Mode { return ModeCount }

// Bound implements Policy.
func (p *Counting) Bound() int { return int(p.bound) }

// Capacity implements Policy.
func (p *Counting) Capacity() float64 { return p.capacity }

// Admit implements Policy.
func (p *Counting) Admit(now int64, flowID uint64, rate float64, class uint8) Decision {
	for {
		cur := p.active.Load()
		if cur >= p.bound {
			return Decision{Load: float64(cur)}
		}
		if p.active.CompareAndSwap(cur, cur+1) {
			return Decision{Admit: true, Share: p.share}
		}
	}
}

// AdmitN implements BatchPolicy: one CAS claims min(n, kmax−active)
// slots, so a batch straddling the boundary grants exactly the free slots
// and denies the rest — the same winners a serial race would pick, n
// admissions cheaper.
func (p *Counting) AdmitN(now int64, rate float64, class uint8, n int) (int, Decision) {
	for {
		cur := p.active.Load()
		j := p.bound - cur
		if j <= 0 {
			return 0, Decision{Load: float64(cur)}
		}
		if int64(n) < j {
			j = int64(n)
		}
		if p.active.CompareAndSwap(cur, cur+j) {
			d := Decision{Admit: true, Share: p.share}
			if int(j) < n {
				d.Load = float64(cur + j)
			}
			return int(j), d
		}
	}
}

// ReleaseN implements BatchPolicy.
func (p *Counting) ReleaseN(now int64, rate float64, n int) { p.active.Add(-int64(n)) }

// Release implements Policy.
func (p *Counting) Release(now int64, rate float64) { p.active.Add(-1) }

// Share implements Policy.
func (p *Counting) Share(rate float64) float64 { return p.share }

// Active implements Policy.
func (p *Counting) Active() int64 { return p.active.Load() }

// Allocated implements Policy.
func (p *Counting) Allocated() float64 { return float64(p.active.Load()) }

// Bandwidth admits by literal traffic specification: a request for rate r
// is admitted iff the running rate sum stays within capacity (with a small
// tolerance so repeated float adds at an exactly-full link don't deny a
// fitting request). Grants carry the granted rate, denials the allocated
// sum — the pre-policy bandwidth-mode wire behavior, bit for bit.
//
// The rate sum is CAS-maintained as float64 bits in a single atomic word,
// again the pre-policy discipline: concurrent reserves cannot oversubscribe
// the link and the deny path is lock-free. Admit/Release are
// allocation-free.
type Bandwidth struct {
	capacity  float64
	allocBits atomic.Uint64
	active    atomic.Int64
}

// bwTolerance absorbs accumulated float64 rounding when the link is
// exactly full; it matches the serving plane's historic admission check.
const bwTolerance = 1e-12

// NewBandwidth returns a bandwidth-accounting policy for a link of the
// given capacity.
func NewBandwidth(capacity float64) (*Bandwidth, error) {
	if !(capacity > 0) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("policy: capacity must be positive and finite, got %v", capacity)
	}
	return &Bandwidth{capacity: capacity}, nil
}

// Name implements Policy.
func (p *Bandwidth) Name() string { return "bandwidth" }

// Mode implements Policy.
func (p *Bandwidth) Mode() Mode { return ModeBandwidth }

// Bound implements Policy. Bandwidth mode has no flow-count bound.
func (p *Bandwidth) Bound() int { return 0 }

// Capacity implements Policy.
func (p *Bandwidth) Capacity() float64 { return p.capacity }

// Admit implements Policy.
func (p *Bandwidth) Admit(now int64, flowID uint64, rate float64, class uint8) Decision {
	for {
		bits := p.allocBits.Load()
		cur := math.Float64frombits(bits)
		if cur+rate > p.capacity+bwTolerance {
			return Decision{Load: cur}
		}
		if p.allocBits.CompareAndSwap(bits, math.Float64bits(cur+rate)) {
			p.active.Add(1)
			return Decision{Admit: true, Share: rate}
		}
	}
}

// AdmitN implements BatchPolicy: the largest prefix whose cumulative rate
// still fits under capacity is claimed with one CAS of the rate-sum word,
// accumulating the sum in the same left-to-right order n single Admits
// would, so the cut lands on exactly the same request.
func (p *Bandwidth) AdmitN(now int64, rate float64, class uint8, n int) (int, Decision) {
	for {
		bits := p.allocBits.Load()
		cur := math.Float64frombits(bits)
		next := cur
		j := 0
		for j < n && next+rate <= p.capacity+bwTolerance {
			next += rate
			j++
		}
		if j == 0 {
			return 0, Decision{Load: cur}
		}
		if p.allocBits.CompareAndSwap(bits, math.Float64bits(next)) {
			p.active.Add(int64(j))
			d := Decision{Admit: true, Share: rate}
			if j < n {
				d.Load = next
			}
			return j, d
		}
	}
}

// ReleaseN implements BatchPolicy, mirroring AdmitN's sequential
// accumulation so a batch admit+release round-trips the rate sum exactly.
func (p *Bandwidth) ReleaseN(now int64, rate float64, n int) {
	for {
		bits := p.allocBits.Load()
		next := math.Float64frombits(bits)
		for i := 0; i < n; i++ {
			next -= rate
		}
		if next < 0 {
			next = 0 // float drift must never leave a phantom allocation
		}
		if p.allocBits.CompareAndSwap(bits, math.Float64bits(next)) {
			p.active.Add(-int64(n))
			return
		}
	}
}

// Release implements Policy.
func (p *Bandwidth) Release(now int64, rate float64) {
	for {
		bits := p.allocBits.Load()
		next := math.Float64frombits(bits) - rate
		if next < 0 {
			next = 0 // float drift must never leave a phantom allocation
		}
		if p.allocBits.CompareAndSwap(bits, math.Float64bits(next)) {
			p.active.Add(-1)
			return
		}
	}
}

// Share implements Policy.
func (p *Bandwidth) Share(rate float64) float64 { return rate }

// Active implements Policy.
func (p *Bandwidth) Active() int64 { return p.active.Load() }

// Allocated implements Policy.
func (p *Bandwidth) Allocated() float64 {
	return math.Float64frombits(p.allocBits.Load())
}
