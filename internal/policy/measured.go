package policy

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Measured is measurement-based admission: instead of trusting the
// configured kmax alone, it smooths the link's own observed occupancy with
// an exponentially weighted moving average over a time window tau and
// admits a request only while the smoothed occupancy leaves room under a
// target (the capacity-region-oblivious style of admission control in
// PAPERS.md: act on what the link measures, not on what the operator
// declared). kmax remains a hard CAS-enforced ceiling — the estimator can
// only be more conservative than Counting, never less, so the
// no-over-admit invariant is inherited unchanged.
//
// The EWMA update ewma += (1 - exp(-dt/tau)) · (active - ewma) is
// time-correct for irregular observation instants: back-to-back bursts
// barely move the estimate while a quiet tau drags it to the current
// occupancy. Estimator state is mutex-guarded (two words, a handful of
// float ops); the admission counter itself stays atomic.
//
// With target ≥ kmax + 1 the smoothed gate can never bind (the EWMA of a
// quantity bounded by kmax is bounded by kmax), and the policy reduces
// exactly to Counting — the calibration corner the sweep harness
// cross-validates against the analytical model.
type Measured struct {
	capacity float64
	bound    int64
	share    float64
	target   float64
	tauNs    float64
	active   atomic.Int64

	mu     sync.Mutex
	ewma   float64
	lastNs int64
}

// NewMeasured returns a measurement-based policy: a hard bound of kmax
// concurrent flows, additionally gated on the EWMA occupancy (window tau,
// in seconds) staying below target after admitting one more flow.
func NewMeasured(capacity float64, kmax int, target, tau float64) (*Measured, error) {
	if !(capacity > 0) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("policy: capacity must be positive and finite, got %v", capacity)
	}
	if kmax < 1 {
		return nil, fmt.Errorf("policy: kmax must be ≥ 1, got %d", kmax)
	}
	if !(target > 0) || math.IsInf(target, 0) {
		return nil, fmt.Errorf("policy: occupancy target must be positive and finite, got %v", target)
	}
	if !(tau > 0) || math.IsInf(tau, 0) {
		return nil, fmt.Errorf("policy: averaging window tau must be positive and finite, got %v", tau)
	}
	return &Measured{
		capacity: capacity,
		bound:    int64(kmax),
		share:    capacity / float64(kmax),
		target:   target,
		tauNs:    tau * 1e9,
	}, nil
}

// Name implements Policy.
func (p *Measured) Name() string { return "measured" }

// Mode implements Policy.
func (p *Measured) Mode() Mode { return ModeCount }

// Bound implements Policy.
func (p *Measured) Bound() int { return int(p.bound) }

// Capacity implements Policy.
func (p *Measured) Capacity() float64 { return p.capacity }

// NeedsClock implements ClockUser: the EWMA window is a time constant.
func (p *Measured) NeedsClock() bool { return true }

// Admit implements Policy.
func (p *Measured) Admit(now int64, flowID uint64, rate float64, class uint8) Decision {
	est := p.observe(now)
	if est+1 > p.target {
		return Decision{Load: float64(p.active.Load())}
	}
	for {
		cur := p.active.Load()
		if cur >= p.bound {
			return Decision{Load: float64(cur)}
		}
		if p.active.CompareAndSwap(cur, cur+1) {
			return Decision{Admit: true, Share: p.share}
		}
	}
}

// observe folds the current occupancy into the EWMA and returns the
// estimate. Non-advancing clocks (dt ≤ 0) leave the estimate untouched, so
// clockless callers see a permanently optimistic estimator rather than a
// corrupted one.
func (p *Measured) observe(now int64) float64 {
	a := float64(p.active.Load())
	p.mu.Lock()
	if now > p.lastNs {
		w := 1 - math.Exp(-float64(now-p.lastNs)/p.tauNs)
		p.ewma += w * (a - p.ewma)
		p.lastNs = now
	}
	est := p.ewma
	p.mu.Unlock()
	return est
}

// Release implements Policy. The departure is folded into the estimator so
// freed capacity is observed without waiting for the next arrival.
func (p *Measured) Release(now int64, rate float64) {
	p.active.Add(-1)
	p.observe(now)
}

// Share implements Policy.
func (p *Measured) Share(rate float64) float64 { return p.share }

// Active implements Policy.
func (p *Measured) Active() int64 { return p.active.Load() }

// Allocated implements Policy.
func (p *Measured) Allocated() float64 { return float64(p.active.Load()) }

// Occupancy returns the current smoothed occupancy estimate.
func (p *Measured) Occupancy() float64 {
	p.mu.Lock()
	est := p.ewma
	p.mu.Unlock()
	return est
}

// Gauges implements Instrumented.
func (p *Measured) Gauges() []Gauge {
	return []Gauge{
		{Name: "ewma_occupancy", Help: "Smoothed (EWMA) occupancy estimate driving admission.", Value: p.Occupancy},
		{Name: "occupancy_target", Help: "Configured smoothed-occupancy admission target.", Value: func() float64 {
			return p.target
		}},
	}
}
