// Package policy defines the pluggable admission-control interface of the
// resv serving plane, plus the built-in policies: the paper's counting rule
// (admit iff active < kmax(C)), literal bandwidth accounting, token-bucket
// admission under burst, class-tiered admission with a priority cascade,
// and measurement-based admission from observed occupancy.
//
// A Policy is the admission decision only. The server keeps owning soft
// state (flow tables, TTL wheels, retransmit dedup); the policy owns the
// counters that bound it. Every implementation must uphold two invariants
// the serving plane's tests enforce per policy (DESIGN.md §12):
//
//   - no over-admit: concurrent Admit calls never exceed the policy's
//     bound. The built-ins use the same CAS-claimed atomic counters as the
//     pre-policy server, so the winners of a race at the boundary are
//     exactly the first bound-n claims;
//   - exact release accounting: every admitted claim is returned by exactly
//     one Release (teardown, connection drop, TTL expiry, or the server
//     rolling back a duplicate install), so Active/Allocated converge to
//     zero when the link drains.
//
// Policies must be safe for concurrent use and, for the default counting
// and bandwidth policies, allocation-free at steady state — the serving
// plane's reserve→grant path stays at 0 allocs/op.
package policy

// Mode distinguishes how a policy accounts the link.
type Mode uint8

const (
	// ModeCount admits by concurrent flow count; grants carry the
	// worst-case share C/bound.
	ModeCount Mode = iota
	// ModeBandwidth admits by traffic specification; grants carry the
	// requested rate.
	ModeBandwidth
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeBandwidth {
		return "bandwidth"
	}
	return "count"
}

// Admission classes, carried in the top two bits of a resv frame's type
// byte (see the resv codec). The zero value is the standard class, so
// class-unaware clients emit byte-identical frames.
const (
	// ClassStandard is the default class.
	ClassStandard uint8 = 0
	// ClassCritical is never shed before standard traffic: tiered policies
	// admit it up to the full bound.
	ClassCritical uint8 = 1
	// ClassSheddable is the first class denied under load.
	ClassSheddable uint8 = 2
	// NumClasses is the size of the wire class space (2 bits). Class 3 is
	// reserved; tiered policies treat it as sheddable.
	NumClasses = 4
)

// Decision is one admission verdict.
type Decision struct {
	// Admit reports whether the request was admitted.
	Admit bool
	// Share is the value a grant frame carries: the guaranteed worst-case
	// share C/bound in count mode, the granted rate in bandwidth mode.
	Share float64
	// Load is the value a deny frame carries: the occupancy the decision
	// observed (active count in count mode, allocated rate in bandwidth
	// mode) — the same number the pre-policy server reported.
	Load float64
}

// Policy is one link's admission rule.
//
// now is a monotonic clock in nanoseconds. Servers read it only for
// policies that implement ClockUser with NeedsClock() == true; clockless
// policies receive 0, keeping the default hot path free of time syscalls.
// The simulator passes virtual nanoseconds (1 virtual time unit = 1s), so
// clocked policies' rates are per-second in both settings.
type Policy interface {
	// Name identifies the policy ("counting", "token-bucket", ...).
	Name() string
	// Mode reports how the policy accounts the link.
	Mode() Mode
	// Bound is the hard admission ceiling in flows (0 in bandwidth mode).
	// No policy state can make Active exceed it.
	Bound() int
	// Capacity is the link capacity C the policy guards.
	Capacity() float64
	// Admit decides one reservation request. rate is the requested
	// bandwidth (ignored in count mode) and class the frame's admission
	// class. Implementations must be lock-free or near — Admit is the
	// serving plane's hot path.
	Admit(now int64, flowID uint64, rate float64, class uint8) Decision
	// Release returns one admitted claim (rate is the granted rate in
	// bandwidth mode, ignored otherwise). Called on teardown, connection
	// release, TTL expiry, and duplicate-install rollback.
	Release(now int64, rate float64)
	// Share is the grant value for a re-sent (deduplicated) grant: the
	// worst-case share in count mode, the stored rate in bandwidth mode.
	Share(rate float64) float64
	// Active is the number of live claims. Lock-free.
	Active() int64
	// Allocated is the admitted load: Σ granted rates in bandwidth mode,
	// the active count otherwise. Lock-free.
	Allocated() float64
}

// BatchPolicy is optionally implemented by policies that can vector a run
// of identical admission requests into one atomic transition. AdmitN
// grants with exact prefix semantics: of n requests it admits the first
// `granted` and denies the rest, and at the bound the cut is exact — a
// batch straddling the last kmax−j free slots grants exactly j, under any
// concurrency, because the built-ins claim all j slots in a single CAS.
//
// The returned Decision describes both sides of the cut: when granted > 0
// it is the grant verdict (Admit true, Share set); when granted < n, Load
// carries the occupancy the denial observed, exactly as a single denied
// Admit would report it.
type BatchPolicy interface {
	// AdmitN decides n identical requests (same rate and class) at once.
	AdmitN(now int64, rate float64, class uint8, n int) (granted int, dec Decision)
	// ReleaseN returns n claims of the same granted rate.
	ReleaseN(now int64, rate float64, n int)
}

// AdmitBatch admits a run of n identical requests against p: vectored via
// BatchPolicy when p implements it, otherwise a serial Admit loop that
// stops at the first denial. The loop preserves exact prefix semantics for
// the clocked built-ins (token-bucket, measured) because their gates are
// frozen at a fixed now — token refill and occupancy smoothing only move
// when the clock does — so once one request in the batch is denied, every
// later identical request would be denied too.
func AdmitBatch(p Policy, now int64, flowID uint64, rate float64, class uint8, n int) (granted int, dec Decision) {
	if bp, ok := p.(BatchPolicy); ok {
		return bp.AdmitN(now, rate, class, n)
	}
	for i := 0; i < n; i++ {
		d := p.Admit(now, flowID, rate, class)
		if !d.Admit {
			dec.Load = d.Load
			return i, dec
		}
		dec.Admit, dec.Share = true, d.Share
	}
	return n, dec
}

// ReleaseBatch returns n claims of the same granted rate to p, vectored
// when p implements BatchPolicy.
func ReleaseBatch(p Policy, now int64, rate float64, n int) {
	if bp, ok := p.(BatchPolicy); ok {
		bp.ReleaseN(now, rate, n)
		return
	}
	for i := 0; i < n; i++ {
		p.Release(now, rate)
	}
}

// ClockUser is optionally implemented by policies whose decisions depend
// on time (token refill, occupancy smoothing). Servers skip the per-request
// clock read for policies that do not implement it or return false.
type ClockUser interface {
	NeedsClock() bool
}

// Gauge is one policy-specific observable, exported by Instrumented
// policies; the server registers each as a resv_policy_* gauge.
type Gauge struct {
	// Name is the metric suffix (the server prefixes "resv_policy_").
	Name string
	// Help is the metric description.
	Help string
	// Value reads the current value; it must be safe to call concurrently
	// with Admit/Release.
	Value func() float64
}

// Instrumented is optionally implemented by policies with internal state
// worth scraping (token level, shed counts, smoothed occupancy).
type Instrumented interface {
	Gauges() []Gauge
}
