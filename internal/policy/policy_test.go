package policy

import (
	"math"
	"sync"
	"testing"
)

func newCounting(t *testing.T, capacity float64, kmax int) *Counting {
	t.Helper()
	p, err := NewCounting(capacity, kmax)
	if err != nil {
		t.Fatalf("NewCounting: %v", err)
	}
	return p
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewCounting(0, 4); err == nil {
		t.Error("NewCounting accepted capacity 0")
	}
	if _, err := NewCounting(math.Inf(1), 4); err == nil {
		t.Error("NewCounting accepted infinite capacity")
	}
	if _, err := NewCounting(4, 0); err == nil {
		t.Error("NewCounting accepted kmax 0")
	}
	if _, err := NewBandwidth(math.NaN()); err == nil {
		t.Error("NewBandwidth accepted NaN capacity")
	}
	inner := newCounting(t, 4, 4)
	if _, err := NewTokenBucket(nil, 1, 1); err == nil {
		t.Error("NewTokenBucket accepted nil inner policy")
	}
	if _, err := NewTokenBucket(inner, 0, 1); err == nil {
		t.Error("NewTokenBucket accepted rate 0")
	}
	if _, err := NewTokenBucket(inner, 1, 0.5); err == nil {
		t.Error("NewTokenBucket accepted burst < 1 (a bucket that can never admit)")
	}
	if _, err := NewTiered(4, 4, 2, 3); err == nil {
		t.Error("NewTiered accepted sheddable > standard")
	}
	if _, err := NewTiered(4, 4, 5, 1); err == nil {
		t.Error("NewTiered accepted standard > kmax")
	}
	if _, err := NewTiered(4, 4, 4, 0); err == nil {
		t.Error("NewTiered accepted sheddable 0")
	}
	if _, err := NewMeasured(4, 0, 4, 1); err == nil {
		t.Error("NewMeasured accepted kmax 0")
	}
	if _, err := NewMeasured(4, 4, 0, 1); err == nil {
		t.Error("NewMeasured accepted target 0")
	}
	if _, err := NewMeasured(4, 4, 4, 0); err == nil {
		t.Error("NewMeasured accepted tau 0")
	}
}

func TestCountingSemantics(t *testing.T) {
	p := newCounting(t, 100, 4)
	if p.Mode() != ModeCount || p.Bound() != 4 || p.Capacity() != 100 {
		t.Fatalf("counting identity wrong: mode %v bound %d capacity %g", p.Mode(), p.Bound(), p.Capacity())
	}
	for i := 0; i < 4; i++ {
		d := p.Admit(0, uint64(i), 0, ClassStandard)
		if !d.Admit || d.Share != 25 {
			t.Fatalf("admit %d: %+v", i, d)
		}
	}
	d := p.Admit(0, 9, 0, ClassStandard)
	if d.Admit {
		t.Fatal("admitted past the bound")
	}
	if d.Load != 4 {
		t.Fatalf("deny load = %g, want observed active 4", d.Load)
	}
	if p.Share(123) != 25 {
		t.Fatalf("Share = %g, want worst-case 25 regardless of rate", p.Share(123))
	}
	p.Release(0, 0)
	if p.Active() != 3 || p.Allocated() != 3 {
		t.Fatalf("after release: active %d allocated %g", p.Active(), p.Allocated())
	}
	if !p.Admit(0, 10, 0, ClassStandard).Admit {
		t.Fatal("freed slot not reusable")
	}
}

func TestBandwidthSemantics(t *testing.T) {
	p, err := NewBandwidth(10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode() != ModeBandwidth || p.Bound() != 0 {
		t.Fatalf("bandwidth identity wrong: mode %v bound %d", p.Mode(), p.Bound())
	}
	if d := p.Admit(0, 1, 6, 0); !d.Admit || d.Share != 6 {
		t.Fatalf("admit rate 6: %+v", d)
	}
	if d := p.Admit(0, 2, 5, 0); d.Admit || d.Load != 6 {
		t.Fatalf("oversubscription verdict: %+v", d)
	}
	if d := p.Admit(0, 3, 4, 0); !d.Admit {
		t.Fatalf("fitting request denied: %+v", d)
	}
	if p.Active() != 2 || p.Allocated() != 10 {
		t.Fatalf("active %d allocated %g", p.Active(), p.Allocated())
	}
	if p.Share(4) != 4 {
		t.Fatalf("Share = %g, want stored rate", p.Share(4))
	}
	p.Release(0, 6)
	p.Release(0, 4.0000000001) // float drift floors at zero
	if p.Active() != 0 || p.Allocated() != 0 {
		t.Fatalf("after drain: active %d allocated %g", p.Active(), p.Allocated())
	}
}

func TestTokenBucketShedAndRefill(t *testing.T) {
	inner := newCounting(t, 4, 4)
	p, err := NewTokenBucket(inner, 1, 2) // 1 token/s, burst 2, starts full
	if err != nil {
		t.Fatal(err)
	}
	if !p.NeedsClock() {
		t.Fatal("token bucket must request the server clock")
	}
	if !p.Admit(0, 1, 0, 0).Admit || !p.Admit(0, 2, 0, 0).Admit {
		t.Fatal("burst of 2 not admitted from a full bucket")
	}
	if d := p.Admit(0, 3, 0, 0); d.Admit {
		t.Fatalf("empty bucket admitted: %+v", d)
	} else if d.Load != 2 {
		t.Fatalf("shed load = %g, want inner active 2", d.Load)
	}
	// Half a second refills half a token — still shed.
	if p.Admit(5e8, 4, 0, 0).Admit {
		t.Fatal("admitted on a fractional token")
	}
	// A full second from t=0 banks a whole token.
	if !p.Admit(1e9, 5, 0, 0).Admit {
		t.Fatal("refilled token not honored")
	}
	c := p.Calibration()
	if c.Decisions != 5 || c.Sheds != 2 || c.Blocks != 0 {
		t.Fatalf("calibration tally: %+v", c)
	}
}

func TestTokenBucketRefundsInnerDenial(t *testing.T) {
	inner := newCounting(t, 1, 1)
	p, err := NewTokenBucket(inner, 1e-9, 2) // effectively no refill
	if err != nil {
		t.Fatal(err)
	}
	if !p.Admit(0, 1, 0, 0).Admit {
		t.Fatal("first admit failed")
	}
	// Inner is full: the denial must refund the token, so after releasing
	// the flow the same token admits again.
	if d := p.Admit(0, 2, 0, 0); d.Admit {
		t.Fatal("admitted past the inner bound")
	}
	c := p.Calibration()
	if c.Blocks != 1 || c.Sheds != 0 {
		t.Fatalf("inner denial tallied wrong: %+v", c)
	}
	p.Release(0, 0)
	if !p.Admit(0, 3, 0, 0).Admit {
		t.Fatal("refunded token was lost")
	}
	// Now both tokens are spent and refill is negligible: shed.
	p.Release(0, 0)
	if p.Admit(0, 4, 0, 0).Admit {
		t.Fatal("admitted from an empty bucket")
	}
}

func TestTokenBucketDegenerateCalibration(t *testing.T) {
	inner := newCounting(t, 100, 100)
	p, err := NewTokenBucket(inner, 1e-9, 1) // one token ever: pure shedder
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		d := p.Admit(int64(i), uint64(i), 0, 0)
		if d.Admit {
			p.Release(int64(i), 0)
		}
	}
	c := p.Calibration()
	if !c.Degenerate {
		t.Fatalf("bucket shedding %.0f%% of %d decisions not flagged degenerate: %+v",
			100*c.ShedFraction, c.Decisions, c)
	}
	// A healthy bucket on the same sample must not be flagged.
	h, err := NewTokenBucket(newCounting(t, 100, 100), 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Admit(int64(i), uint64(i), 0, 0)
	}
	if hc := h.Calibration(); hc.Degenerate {
		t.Fatalf("healthy bucket flagged degenerate: %+v", hc)
	}
}

func TestTieredCascade(t *testing.T) {
	p, err := NewTiered(8, 8, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bound() != 8 || p.Limit(ClassStandard) != 6 || p.Limit(ClassSheddable) != 4 || p.Limit(3) != 4 {
		t.Fatalf("limits wrong: bound %d std %d shed %d reserved %d",
			p.Bound(), p.Limit(ClassStandard), p.Limit(ClassSheddable), p.Limit(3))
	}
	// Fill to the sheddable threshold with sheddable flows.
	for i := 0; i < 4; i++ {
		if !p.Admit(0, uint64(i), 0, ClassSheddable).Admit {
			t.Fatalf("sheddable admit %d failed", i)
		}
	}
	if p.Admit(0, 10, 0, ClassSheddable).Admit {
		t.Fatal("sheddable admitted at its threshold")
	}
	if p.Admit(0, 11, 0, 3).Admit {
		t.Fatal("reserved class 3 admitted past the sheddable threshold")
	}
	// Standard still has headroom up to 6.
	for i := 0; i < 2; i++ {
		if !p.Admit(0, uint64(20+i), 0, ClassStandard).Admit {
			t.Fatalf("standard admit %d failed", i)
		}
	}
	if p.Admit(0, 30, 0, ClassStandard).Admit {
		t.Fatal("standard admitted at its threshold")
	}
	// Critical owns the last two slots.
	for i := 0; i < 2; i++ {
		if !p.Admit(0, uint64(40+i), 0, ClassCritical).Admit {
			t.Fatalf("critical admit %d failed", i)
		}
	}
	if d := p.Admit(0, 50, 0, ClassCritical); d.Admit || d.Load != 8 {
		t.Fatalf("critical past full link: %+v", d)
	}
	if p.Active() != 8 {
		t.Fatalf("active = %d, want 8", p.Active())
	}
	// Departures reopen the cascade bottom-up.
	for i := 0; i < 5; i++ {
		p.Release(0, 0)
	}
	if !p.Admit(0, 60, 0, ClassSheddable).Admit {
		t.Fatal("sheddable not re-admitted after drain")
	}
}

func TestMeasuredGate(t *testing.T) {
	// Tiny tau: the estimate tracks the instantaneous occupancy after ~1ms.
	p, err := NewMeasured(8, 8, 3, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !p.NeedsClock() {
		t.Fatal("measured policy must request the server clock")
	}
	now := int64(0)
	tick := func() int64 { now += int64(1e6); return now } // +1ms per event
	for i := 0; i < 3; i++ {
		if !p.Admit(tick(), uint64(i), 0, 0).Admit {
			t.Fatalf("admit %d under target failed", i)
		}
	}
	// Estimate has converged to 3 ≥ target-1: deny, even though the hard
	// bound (8) has room.
	if d := p.Admit(tick(), 10, 0, 0); d.Admit {
		t.Fatalf("admitted above the occupancy target: %+v", d)
	} else if d.Load != 3 {
		t.Fatalf("deny load = %g, want active 3", d.Load)
	}
	// A departure is observed immediately; the freed room admits again.
	p.Release(tick(), 0)
	if !p.Admit(tick(), 11, 0, 0).Admit {
		t.Fatal("freed occupancy not admitted")
	}
}

func TestMeasuredHardBound(t *testing.T) {
	// Huge target: the gate never binds, leaving pure Counting behavior.
	p, err := NewMeasured(4, 4, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !p.Admit(int64(i), uint64(i), 0, 0).Admit {
			t.Fatalf("admit %d failed", i)
		}
	}
	if d := p.Admit(5, 9, 0, 0); d.Admit || d.Load != 4 {
		t.Fatalf("hard bound verdict: %+v", d)
	}
}

// TestConcurrentAdmitRelease hammers every policy with concurrent
// admit/release churn and checks the bound and the final accounting.
func TestConcurrentAdmitRelease(t *testing.T) {
	const kmax = 8
	builders := map[string]func(t *testing.T) Policy{
		"counting": func(t *testing.T) Policy { return newCounting(t, kmax, kmax) },
		"bandwidth": func(t *testing.T) Policy {
			p, err := NewBandwidth(kmax)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"token-bucket": func(t *testing.T) Policy {
			p, err := NewTokenBucket(newCounting(t, kmax, kmax), 1e12, 1e6)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"tiered": func(t *testing.T) Policy {
			p, err := NewTiered(kmax, kmax, 6, 4)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"measured": func(t *testing.T) Policy {
			p, err := NewMeasured(kmax, kmax, 1000, 1e-3)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			p := build(t)
			var wg sync.WaitGroup
			for g := 0; g < 16; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						now := int64(g*500+i) * 1000
						d := p.Admit(now, uint64(g*500+i), 1, uint8(i%NumClasses))
						if a := p.Active(); a > kmax {
							t.Errorf("active %d exceeded bound %d", a, kmax)
							return
						}
						if d.Admit {
							p.Release(now, 1)
						}
					}
				}(g)
			}
			wg.Wait()
			if p.Active() != 0 {
				t.Fatalf("final active = %d, want 0", p.Active())
			}
			if p.Allocated() != 0 {
				t.Fatalf("final allocated = %g, want 0", p.Allocated())
			}
		})
	}
}

// TestDefaultPoliciesZeroAlloc pins the default policies' hot paths at
// zero allocations — the serving plane's reserve→grant path budget.
func TestDefaultPoliciesZeroAlloc(t *testing.T) {
	c := newCounting(t, 8, 8)
	if n := testing.AllocsPerRun(1000, func() {
		if c.Admit(0, 1, 0, 0).Admit {
			c.Release(0, 0)
		}
	}); n != 0 {
		t.Errorf("counting admit/release allocates %.1f/op, want 0", n)
	}
	b, err := NewBandwidth(8)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if b.Admit(0, 1, 1, 0).Admit {
			b.Release(0, 1)
		}
	}); n != 0 {
		t.Errorf("bandwidth admit/release allocates %.1f/op, want 0", n)
	}
}

func TestModeString(t *testing.T) {
	if ModeCount.String() != "count" || ModeBandwidth.String() != "bandwidth" {
		t.Fatalf("mode strings: %q %q", ModeCount.String(), ModeBandwidth.String())
	}
}
