package policy

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Tiered admits by class against a priority cascade of occupancy
// thresholds over one shared flow counter: sheddable traffic is admitted
// only while the link is below sheddableMax, standard traffic below
// standardMax, and critical traffic up to the full kmax bound — so as load
// rises, sheddable flows are denied first, then standard, and critical
// flows keep the headroom between standardMax and kmax to themselves (the
// critical/standard/sheddable template of SNIPPETS.md Snippet 3, with the
// load signal being the link's own occupancy rather than an external
// monitor).
//
// Each class's admission is a CAS loop on the shared counter against that
// class's threshold, so the no-over-admit invariant holds per class and
// overall: Active can never exceed kmax, and a class-c flow is never
// admitted at or above limits[c]. The reserved wire class 3 is treated as
// sheddable. With standardMax == sheddableMax == kmax the policy is
// exactly Counting.
type Tiered struct {
	capacity float64
	share    float64
	limits   [NumClasses]int64
	active   atomic.Int64
	denials  [NumClasses]atomic.Uint64
}

// NewTiered returns a tiered policy on a link of the given capacity with
// per-class occupancy thresholds. Thresholds must satisfy
// 1 ≤ sheddableMax ≤ standardMax ≤ kmax.
func NewTiered(capacity float64, kmax, standardMax, sheddableMax int) (*Tiered, error) {
	if !(capacity > 0) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("policy: capacity must be positive and finite, got %v", capacity)
	}
	if sheddableMax < 1 || sheddableMax > standardMax || standardMax > kmax {
		return nil, fmt.Errorf("policy: tier thresholds need 1 ≤ sheddable (%d) ≤ standard (%d) ≤ kmax (%d)",
			sheddableMax, standardMax, kmax)
	}
	p := &Tiered{capacity: capacity, share: capacity / float64(kmax)}
	p.limits[ClassStandard] = int64(standardMax)
	p.limits[ClassCritical] = int64(kmax)
	p.limits[ClassSheddable] = int64(sheddableMax)
	p.limits[3] = int64(sheddableMax) // reserved class: most conservative tier
	return p, nil
}

// Name implements Policy.
func (p *Tiered) Name() string { return "tiered" }

// Mode implements Policy.
func (p *Tiered) Mode() Mode { return ModeCount }

// Bound implements Policy: the critical tier's (full) bound.
func (p *Tiered) Bound() int { return int(p.limits[ClassCritical]) }

// Capacity implements Policy.
func (p *Tiered) Capacity() float64 { return p.capacity }

// Limit is the admission threshold for one class.
func (p *Tiered) Limit(class uint8) int { return int(p.limits[class%NumClasses]) }

// Admit implements Policy.
func (p *Tiered) Admit(now int64, flowID uint64, rate float64, class uint8) Decision {
	limit := p.limits[class%NumClasses]
	for {
		cur := p.active.Load()
		if cur >= limit {
			p.denials[class%NumClasses].Add(1)
			return Decision{Load: float64(cur)}
		}
		if p.active.CompareAndSwap(cur, cur+1) {
			return Decision{Admit: true, Share: p.share}
		}
	}
}

// AdmitN implements BatchPolicy: one CAS on the shared counter claims
// min(n, limit−active) slots against the class's own threshold, and the
// denied remainder lands in that class's denial tally exactly as n single
// Admits would record it.
func (p *Tiered) AdmitN(now int64, rate float64, class uint8, n int) (int, Decision) {
	limit := p.limits[class%NumClasses]
	for {
		cur := p.active.Load()
		j := limit - cur
		if j <= 0 {
			p.denials[class%NumClasses].Add(uint64(n))
			return 0, Decision{Load: float64(cur)}
		}
		if int64(n) < j {
			j = int64(n)
		}
		if p.active.CompareAndSwap(cur, cur+j) {
			d := Decision{Admit: true, Share: p.share}
			if int(j) < n {
				p.denials[class%NumClasses].Add(uint64(n - int(j)))
				d.Load = float64(cur + j)
			}
			return int(j), d
		}
	}
}

// ReleaseN implements BatchPolicy.
func (p *Tiered) ReleaseN(now int64, rate float64, n int) { p.active.Add(-int64(n)) }

// Release implements Policy.
func (p *Tiered) Release(now int64, rate float64) { p.active.Add(-1) }

// Share implements Policy.
func (p *Tiered) Share(rate float64) float64 { return p.share }

// Active implements Policy.
func (p *Tiered) Active() int64 { return p.active.Load() }

// Allocated implements Policy.
func (p *Tiered) Allocated() float64 { return float64(p.active.Load()) }

// Gauges implements Instrumented.
func (p *Tiered) Gauges() []Gauge {
	return []Gauge{
		{Name: "denied_standard", Help: "Standard-class denials.", Value: func() float64 {
			return float64(p.denials[ClassStandard].Load())
		}},
		{Name: "denied_critical", Help: "Critical-class denials.", Value: func() float64 {
			return float64(p.denials[ClassCritical].Load())
		}},
		{Name: "denied_sheddable", Help: "Sheddable-class denials (reserved class 3 included).", Value: func() float64 {
			return float64(p.denials[ClassSheddable].Load() + p.denials[3].Load())
		}},
	}
}
