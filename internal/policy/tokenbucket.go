package policy

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// TokenBucket rate-limits admissions under burst: each admission consumes
// one token from a bucket refilled at rate tokens/second up to burst, and a
// request that finds the bucket empty is shed before the inner policy is
// consulted. Requests that pass the bucket are decided by the wrapped inner
// policy (normally Counting), whose CAS counter is what upholds the
// no-over-admit bound — the bucket shapes the admission *rate*, it never
// relaxes the capacity rule. An inner denial refunds the token, so capacity
// blocking does not drain the bucket: tokens meter admissions, not
// attempts.
//
// Calibration matters. A bucket provisioned well below the offered
// admission rate stops being burst protection and degenerates into blind
// load shedding (the pathology SNIPPETS.md Snippet 1 records: a 100-a-day
// bucket in front of thousands of daily requests rejects ~96% of traffic).
// The policy therefore counts its decisions and sheds, and Calibration
// flags the bucket Degenerate when a statistically meaningful sample sheds
// more than degenerateShedFrac of requests — scrape resv_policy_shed_fraction
// or check the sweep harness output rather than discovering it from user
// reports.
//
// Bucket state (token level + last refill time) is mutex-guarded: a
// two-word CAS refill can lose tokens between the load and the store, and
// the critical section is a handful of arithmetic ops. The mutex is
// per-policy, not per-shard, so configure the bucket on links where
// admission decisions — not data frames — are the rate being limited.
type TokenBucket struct {
	inner Policy
	rate  float64 // tokens per second
	burst float64

	mu     sync.Mutex
	tokens float64
	lastNs int64

	decisions atomic.Uint64
	sheds     atomic.Uint64
	blocks    atomic.Uint64 // inner-policy denials (token refunded)
}

// Degeneracy thresholds for Calibration: with at least
// degenerateMinSample decisions observed, a shed fraction above
// degenerateShedFrac means the bucket is miscalibrated for the offered
// load and is acting as a load shedder.
const (
	degenerateMinSample = 64
	degenerateShedFrac  = 0.9
)

// NewTokenBucket wraps inner with a token bucket refilled at rate
// tokens/second, holding at most burst tokens. The bucket starts full.
// burst must be ≥ 1: a bucket that can never hold a whole token admits
// nothing, which is a configuration error, not a policy.
func NewTokenBucket(inner Policy, rate, burst float64) (*TokenBucket, error) {
	if inner == nil {
		return nil, fmt.Errorf("policy: token bucket needs an inner policy")
	}
	if !(rate > 0) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("policy: token rate must be positive and finite, got %v", rate)
	}
	if !(burst >= 1) || math.IsInf(burst, 0) {
		return nil, fmt.Errorf("policy: burst must be ≥ 1, got %v", burst)
	}
	return &TokenBucket{inner: inner, rate: rate, burst: burst, tokens: burst}, nil
}

// Name implements Policy.
func (p *TokenBucket) Name() string { return "token-bucket" }

// Mode implements Policy.
func (p *TokenBucket) Mode() Mode { return p.inner.Mode() }

// Bound implements Policy.
func (p *TokenBucket) Bound() int { return p.inner.Bound() }

// Capacity implements Policy.
func (p *TokenBucket) Capacity() float64 { return p.inner.Capacity() }

// NeedsClock implements ClockUser: refill is driven by the server clock.
func (p *TokenBucket) NeedsClock() bool { return true }

// Admit implements Policy.
func (p *TokenBucket) Admit(now int64, flowID uint64, rate float64, class uint8) Decision {
	p.decisions.Add(1)
	if !p.take(now) {
		p.sheds.Add(1)
		return Decision{Load: float64(p.inner.Active())}
	}
	d := p.inner.Admit(now, flowID, rate, class)
	if !d.Admit {
		p.blocks.Add(1)
		p.refund()
	}
	return d
}

// take refills the bucket to now and consumes one token if available.
func (p *TokenBucket) take(now int64) bool {
	p.mu.Lock()
	if now > p.lastNs {
		p.tokens += float64(now-p.lastNs) * p.rate / 1e9
		if p.tokens > p.burst {
			p.tokens = p.burst
		}
		p.lastNs = now
	}
	ok := p.tokens >= 1
	if ok {
		p.tokens--
	}
	p.mu.Unlock()
	return ok
}

// refund returns a token consumed by an attempt the inner policy denied.
func (p *TokenBucket) refund() {
	p.mu.Lock()
	if p.tokens+1 <= p.burst {
		p.tokens++
	}
	p.mu.Unlock()
}

// Release implements Policy. Departures do not return tokens: the bucket
// meters the admission rate, not the standing population.
func (p *TokenBucket) Release(now int64, rate float64) { p.inner.Release(now, rate) }

// Share implements Policy.
func (p *TokenBucket) Share(rate float64) float64 { return p.inner.Share(rate) }

// Active implements Policy.
func (p *TokenBucket) Active() int64 { return p.inner.Active() }

// Allocated implements Policy.
func (p *TokenBucket) Allocated() float64 { return p.inner.Allocated() }

// Calibration summarizes whether the bucket fits the offered load.
type Calibration struct {
	// Decisions is the number of Admit calls observed.
	Decisions uint64
	// Sheds is how many were denied by the bucket itself (no token).
	Sheds uint64
	// Blocks is how many passed the bucket but were denied by the inner
	// policy (token refunded).
	Blocks uint64
	// ShedFraction is Sheds/Decisions (0 when no decisions yet).
	ShedFraction float64
	// Degenerate reports a miscalibrated bucket: at least
	// degenerateMinSample decisions with ShedFraction above
	// degenerateShedFrac — the bucket is load shedding, not smoothing
	// bursts.
	Degenerate bool
}

// Calibration reports the bucket's running calibration verdict.
func (p *TokenBucket) Calibration() Calibration {
	d := p.decisions.Load()
	s := p.sheds.Load()
	c := Calibration{Decisions: d, Sheds: s, Blocks: p.blocks.Load()}
	if d > 0 {
		c.ShedFraction = float64(s) / float64(d)
	}
	c.Degenerate = d >= degenerateMinSample && c.ShedFraction > degenerateShedFrac
	return c
}

// Gauges implements Instrumented.
func (p *TokenBucket) Gauges() []Gauge {
	return []Gauge{
		{Name: "tokens", Help: "Current token-bucket level.", Value: func() float64 {
			p.mu.Lock()
			t := p.tokens
			p.mu.Unlock()
			return t
		}},
		{Name: "sheds_total", Help: "Requests shed by the token bucket (no token available).", Value: func() float64 {
			return float64(p.sheds.Load())
		}},
		{Name: "shed_fraction", Help: "Fraction of admission decisions shed by the bucket (>0.9 on a meaningful sample means the bucket is miscalibrated).", Value: func() float64 {
			return p.Calibration().ShedFraction
		}},
	}
}
