package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes a header plus float64 rows in standard CSV form.
func WriteCSV(w io.Writer, header []string, rows [][]float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("report: row %d has %d cells, header has %d", i, len(row), len(header))
		}
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', 10, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
