package report

import (
	"fmt"
	"math"
)

// Histogram is a small streaming histogram with geometrically spaced
// buckets, built for request-latency percentiles: constant memory, O(1)
// Record, and quantile queries with bounded relative error (one bucket
// width, ~7% at the default growth factor). Values are unit-agnostic;
// callers pick seconds, nanoseconds, or anything else positive.
//
// The zero value is not usable; construct with NewHistogram. Histogram is
// not safe for concurrent use.
type Histogram struct {
	min     float64  // lower bound of bucket 0
	logMin  float64  // log(min), cached for bucket indexing
	logG    float64  // log(growth)
	buckets []uint64 // counts per geometric bucket
	under   uint64   // values below min (recorded, reported as ≤ min)
	count   uint64   // total recorded values
	sum     float64  // Σ values, for Mean
	maxSeen float64  // largest recorded value
}

// NewHistogram returns a histogram covering [min, max] with buckets whose
// widths grow by the given factor (> 1). Values below min clamp into an
// underflow bucket; values above max land in the last bucket.
func NewHistogram(min, max, growth float64) (*Histogram, error) {
	if !(min > 0) || !(max > min) {
		return nil, fmt.Errorf("report: histogram needs 0 < min < max, got [%g, %g]", min, max)
	}
	if !(growth > 1) {
		return nil, fmt.Errorf("report: histogram growth must exceed 1, got %g", growth)
	}
	n := int(math.Ceil(math.Log(max/min)/math.Log(growth))) + 1
	return &Histogram{
		min:     min,
		logMin:  math.Log(min),
		logG:    math.Log(growth),
		buckets: make([]uint64, n),
	}, nil
}

// NewLatencyHistogram returns a histogram tuned for wall-clock request
// latencies in seconds: 100ns to 100s with ~7% quantile resolution.
func NewLatencyHistogram() *Histogram {
	h, err := NewHistogram(100e-9, 100, 1.07)
	if err != nil {
		panic("report: latency histogram construction cannot fail: " + err.Error())
	}
	return h
}

// Record adds one value. Nonpositive and NaN values clamp into the
// underflow bucket so counts stay consistent.
func (h *Histogram) Record(v float64) {
	h.count++
	if v > h.maxSeen {
		h.maxSeen = v
	}
	if v > 0 && !math.IsNaN(v) {
		h.sum += v
	}
	if !(v >= h.min) { // catches v < min and NaN
		h.under++
		return
	}
	i := int((math.Log(v) - h.logMin) / h.logG)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean of the recorded values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() float64 { return h.maxSeen }

// Quantile returns an upper bound for the q-th quantile (q in [0, 1]) of
// the recorded values: the upper edge of the bucket holding that rank,
// clamped to the observed maximum. It returns 0 when the histogram is
// empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	seen := h.under
	if rank <= seen {
		return math.Min(h.min, h.maxSeen)
	}
	for i, n := range h.buckets {
		seen += n
		if rank <= seen {
			if i == len(h.buckets)-1 {
				// Overflow bucket: its nominal upper edge understates
				// clamped out-of-range values.
				return h.maxSeen
			}
			upper := math.Exp(h.logMin + float64(i+1)*h.logG)
			return math.Min(upper, h.maxSeen)
		}
	}
	return h.maxSeen
}

// Merge folds other into h. The histograms must share a geometry (same
// min/growth/bucket count), e.g. both from NewLatencyHistogram.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if h.min != other.min || h.logG != other.logG || len(h.buckets) != len(other.buckets) {
		return fmt.Errorf("report: cannot merge histograms with different geometries")
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	h.under += other.under
	h.count += other.count
	h.sum += other.sum
	if other.maxSeen > h.maxSeen {
		h.maxSeen = other.maxSeen
	}
	return nil
}
