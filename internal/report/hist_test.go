package report

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 2); err == nil {
		t.Error("min = 0 should fail")
	}
	if _, err := NewHistogram(1, 1, 2); err == nil {
		t.Error("max = min should fail")
	}
	if _, err := NewHistogram(1, 2, 1); err == nil {
		t.Error("growth = 1 should fail")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram not all-zero: count=%d mean=%g max=%g p50=%g",
			h.Count(), h.Mean(), h.Max(), h.Quantile(0.5))
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	// Uniform values in [1ms, 1s]: each quantile estimate must bracket the
	// true quantile within one bucket's relative width.
	h := NewLatencyHistogram()
	r := rand.New(rand.NewPCG(1, 2))
	const n = 20000
	for i := 0; i < n; i++ {
		h.Record(0.001 + 0.999*r.Float64())
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		truth := 0.001 + 0.999*q
		got := h.Quantile(q)
		if got < truth*0.92 || got > truth*1.08 {
			t.Errorf("q=%g: got %g, want within 8%% of %g", q, got, truth)
		}
	}
	wantMean := 0.001 + 0.999/2
	if got := h.Mean(); math.Abs(got-wantMean) > 0.01 {
		t.Errorf("mean = %g, want ≈ %g", got, wantMean)
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewLatencyHistogram()
	h.Record(-1)    // underflow
	h.Record(0)     // underflow
	h.Record(1e-12) // below min
	h.Record(1e6)   // above max: clamps into the last bucket
	h.Record(math.NaN())
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Quantile(0.2); got > 100e-9 {
		t.Errorf("low quantile = %g, want ≤ min", got)
	}
	if got := h.Quantile(1); got != 1e6 {
		t.Errorf("p100 = %g, want the observed max 1e6", got)
	}
}

func TestHistogramQuantileNeverExceedsMax(t *testing.T) {
	h := NewLatencyHistogram()
	h.Record(0.010)
	h.Record(0.011)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got > h.Max() {
			t.Errorf("q=%g: %g exceeds observed max %g", q, got, h.Max())
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewLatencyHistogram(), NewLatencyHistogram()
	for i := 0; i < 100; i++ {
		a.Record(0.001)
		b.Record(0.1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 200 {
		t.Errorf("merged count = %d, want 200", a.Count())
	}
	if got := a.Quantile(0.25); got > 0.0012 {
		t.Errorf("p25 = %g, want ≈ 0.001", got)
	}
	if got := a.Quantile(0.75); got < 0.09 {
		t.Errorf("p75 = %g, want ≈ 0.1", got)
	}
	if err := a.Merge(nil); err != nil {
		t.Error("merging nil should be a no-op")
	}
	other, err := NewHistogram(1, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(other); err == nil {
		t.Error("mismatched geometries should fail to merge")
	}
}
