package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Plot is an ASCII line chart with one or more series sharing axes.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// LogY plots log10(y); nonpositive values are dropped.
	LogY   bool
	series []Series
}

// seriesMarks assigns one marker character per series.
var seriesMarks = []byte{'*', '+', 'o', 'x', '#', '@'}

// Add appends a series; X and Y must have equal length.
func (p *Plot) Add(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("report: series %q: %d x-values vs %d y-values", s.Name, len(s.X), len(s.Y))
	}
	p.series = append(p.series, s)
	return nil
}

// Render draws the chart into w as a width×height character grid plus
// axes, labels, and a legend.
func (p *Plot) Render(w io.Writer, width, height int) error {
	if width < 16 || height < 4 {
		return fmt.Errorf("report: plot area %dx%d too small", width, height)
	}
	if len(p.series) == 0 {
		return fmt.Errorf("report: no series to plot")
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tr := func(y float64) (float64, bool) {
		if p.LogY {
			if y <= 0 {
				return 0, false
			}
			return math.Log10(y), true
		}
		return y, true
	}
	for _, s := range p.series {
		for i := range s.X {
			y, ok := tr(s.Y[i])
			if !ok {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if math.IsInf(xmin, 1) {
		return fmt.Errorf("report: no plottable points")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			y, ok := tr(s.Y[i])
			if !ok {
				continue
			}
			cx := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((y - ymin) / (ymax - ymin) * float64(height-1))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = mark
			}
		}
	}
	if p.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", p.Title); err != nil {
			return err
		}
	}
	yl := func(row int) float64 {
		frac := float64(height-1-row) / float64(height-1)
		v := ymin + frac*(ymax-ymin)
		if p.LogY {
			return math.Pow(10, v)
		}
		return v
	}
	for row := 0; row < height; row++ {
		label := " "
		if row == 0 || row == height-1 || row == height/2 {
			label = fmt.Sprintf("%10.3g", yl(row))
		}
		if _, err := fmt.Fprintf(w, "%10s |%s\n", label, string(grid[row])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10s  %-*.4g%*.4g\n", "", width/2, xmin, width-width/2, xmax); err != nil {
		return err
	}
	var legend []string
	for si, s := range p.series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesMarks[si%len(seriesMarks)], s.Name))
	}
	axis := p.XLabel
	if p.YLabel != "" {
		axis = p.YLabel + " vs " + p.XLabel
	}
	_, err := fmt.Fprintf(w, "%10s  [%s]  %s\n", "", strings.Join(legend, ", "), axis)
	return err
}
