package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("C", "B(C)", "R(C)")
	tb.AddRow(100.0, 0.25, 0.5)
	tb.AddRow(200.0, "n/a", 0.75)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "B(C)") || !strings.Contains(lines[2], "0.25") {
		t.Errorf("unexpected table:\n%s", out)
	}
	if !strings.Contains(lines[3], "n/a") {
		t.Errorf("string cell missing:\n%s", out)
	}
}

func TestPlotRender(t *testing.T) {
	var p Plot
	p.Title = "demo"
	p.XLabel = "C"
	p.YLabel = "B"
	if err := p.Add(Series{Name: "b", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 4, 9}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(Series{Name: "r", X: []float64{0, 1, 2, 3}, Y: []float64{9, 4, 1, 0}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Render(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("plot missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "b") || !strings.Contains(out, "B vs C") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestPlotErrors(t *testing.T) {
	var p Plot
	if err := p.Add(Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	var empty Plot
	var buf bytes.Buffer
	if err := empty.Render(&buf, 40, 10); err == nil {
		t.Error("empty plot should fail")
	}
	var tiny Plot
	_ = tiny.Add(Series{Name: "s", X: []float64{1}, Y: []float64{1}})
	if err := tiny.Render(&buf, 2, 2); err == nil {
		t.Error("tiny plot area should fail")
	}
}

func TestPlotLogYDropsNonpositive(t *testing.T) {
	var p Plot
	p.LogY = true
	if err := p.Add(Series{Name: "s", X: []float64{1, 2, 3}, Y: []float64{0, 10, 100}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Render(&buf, 30, 8); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"c", "b"}, [][]float64{{1, 0.5}, {2, 0.75}})
	if err != nil {
		t.Fatal(err)
	}
	want := "c,b\n1,0.5\n2,0.75\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
	if err := WriteCSV(&buf, []string{"a"}, [][]float64{{1, 2}}); err == nil {
		t.Error("ragged row should fail")
	}
}
