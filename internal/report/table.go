// Package report renders the figure harness's output: aligned text tables,
// ASCII line plots for the paper's figures, and CSV series for external
// plotting. Everything writes to an io.Writer and uses only the standard
// library.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells are rendered with %v, and float64 cells with
// %.6g.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.6g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := line(t.headers); err != nil {
		return err
	}
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}
