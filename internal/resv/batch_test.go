package resv

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// TestBatchMixedOpsBitmap drives one body mixing teardowns and reserves
// through the classic client: ops are processed in body order — a flow
// torn down early in the body can be re-reserved later in the same body —
// and every op's verdict bit must come back set.
func TestBatchMixedOpsBitmap(t *testing.T) {
	s := newServer(t, 8)
	defer s.Close()
	cl := pipeClient(t, s)
	c := ctx(t)
	for id := uint64(1); id <= 2; id++ {
		if ok, _, err := cl.Reserve(c, id, 1); err != nil || !ok {
			t.Fatalf("seed reserve %d: ok=%v err=%v", id, ok, err)
		}
	}
	ops := []Frame{
		{Type: MsgTeardown, FlowID: 1},
		{Type: MsgRequest, FlowID: 3, Value: 1},
		{Type: MsgRequest, FlowID: 4, Value: 1},
		{Type: MsgTeardown, FlowID: 2},
		{Type: MsgRequest, FlowID: 1, Value: 1}, // re-reserve after the body's own teardown
	}
	v, share, err := cl.ReserveBatch(c, ops)
	if err != nil {
		t.Fatalf("ReserveBatch: %v", err)
	}
	if v.Count() != len(ops) {
		t.Fatalf("verdict %064b: %d ops ok, want all %d", uint64(v), v.Count(), len(ops))
	}
	if share != 1 { // C/kmax = 8/8
		t.Fatalf("batch share %g, want 1", share)
	}
	if a := s.Active(); a != 3 {
		t.Fatalf("active = %d after the mixed body, want 3 (flows 1, 3, 4)", a)
	}
}

// TestBatchStraddlesBound pins the wire-level partial-grant contract: a
// body straddling the last j free slots grants bits for exactly the first
// j requests, and a follow-up batch against the full link grants nothing
// and carries share 0.
func TestBatchStraddlesBound(t *testing.T) {
	s := newServer(t, 4)
	defer s.Close()
	cl := pipeClient(t, s)
	c := ctx(t)
	ops := make([]Frame, 6)
	for i := range ops {
		ops[i] = Frame{Type: MsgRequest, FlowID: uint64(i + 1), Value: 1}
	}
	v, share, err := cl.ReserveBatch(c, ops)
	if err != nil {
		t.Fatalf("ReserveBatch: %v", err)
	}
	for i := 0; i < 4; i++ {
		if !v.Granted(i) {
			t.Errorf("op %d inside the bound denied (verdict %06b)", i, uint64(v))
		}
	}
	for i := 4; i < 6; i++ {
		if v.Granted(i) {
			t.Errorf("op %d beyond the bound granted (verdict %06b)", i, uint64(v))
		}
	}
	if share != 1 {
		t.Errorf("partial batch share %g, want C/kmax = 1", share)
	}
	if a := s.Active(); a != 4 {
		t.Fatalf("active = %d, want the bound 4", a)
	}
	v, share, err = cl.ReserveBatch(c, []Frame{{Type: MsgRequest, FlowID: 9, Value: 1}, {Type: MsgRequest, FlowID: 10, Value: 1}})
	if err != nil || v != 0 || share != 0 {
		t.Fatalf("batch against a full link: verdict %b share %g err %v, want all-deny with share 0", uint64(v), share, err)
	}
}

// TestBatchDuplicateClearsBit sends the same flow twice in one body: the
// first op is granted, the duplicate rolls its claim back and keeps its
// bit clear, and exactly one reservation exists afterwards.
func TestBatchDuplicateClearsBit(t *testing.T) {
	s := newServer(t, 4)
	defer s.Close()
	cl := pipeClient(t, s)
	v, _, err := cl.ReserveBatch(ctx(t), []Frame{
		{Type: MsgRequest, FlowID: 7, Value: 1},
		{Type: MsgRequest, FlowID: 7, Value: 1},
	})
	if err != nil {
		t.Fatalf("ReserveBatch: %v", err)
	}
	if !v.Granted(0) || v.Granted(1) {
		t.Fatalf("verdict %02b, want the first grant and the duplicate's bit clear", uint64(v))
	}
	if a := s.Active(); a != 1 {
		t.Fatalf("active = %d after a duplicate in the body, want exactly 1", a)
	}
}

// TestBatchBodySpansReads splits a batch body across writes: the header
// and first body frame arrive in one segment, the second body frame in
// another. The per-connection collector must hold the partial body across
// the read boundary and answer the completed batch with one reply.
func TestBatchBodySpansReads(t *testing.T) {
	s := newServer(t, 4)
	defer s.Close()
	cEnd, sEnd := net.Pipe()
	defer cEnd.Close()
	go s.HandleConn(sEnd)
	_ = cEnd.SetDeadline(time.Now().Add(5 * time.Second))

	first := AppendFrame(nil, BatchHeader(2))
	first = AppendFrame(first, Frame{Type: MsgRequest, FlowID: 1, Value: 1})
	if _, err := cEnd.Write(first); err != nil {
		t.Fatalf("write header+first op: %v", err)
	}
	// The body is incomplete: the server must be blocked reading, not
	// replying. Give it a moment to mis-reply if it were going to.
	time.Sleep(10 * time.Millisecond)
	if _, err := cEnd.Write(AppendFrame(nil, Frame{Type: MsgRequest, FlowID: 2, Value: 1})); err != nil {
		t.Fatalf("write second op: %v", err)
	}
	buf := make([]byte, FrameSize)
	if _, err := io.ReadFull(cEnd, buf); err != nil {
		t.Fatalf("read batch reply: %v", err)
	}
	reply, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != MsgReserveBatchReply {
		t.Fatalf("reply type %s, want %s", reply.Type, MsgReserveBatchReply)
	}
	if v := BatchVerdict(reply.FlowID); v.Count() != 2 {
		t.Fatalf("verdict %02b, want both ops granted", reply.FlowID)
	}
	if a := s.Active(); a != 2 {
		t.Fatalf("active = %d, want 2", a)
	}
}

// TestBatchInvalidHeaderAndBody exercises the malformed-batch paths over a
// raw connection: a header with a length outside [1, MaxBatch] earns a
// MsgError, a non-request frame inside a body aborts the batch (dropping
// the collected prefix un-admitted) and is then served on its own terms,
// and the connection keeps working afterwards.
func TestBatchInvalidHeaderAndBody(t *testing.T) {
	s := newServer(t, 4)
	defer s.Close()
	cEnd, sEnd := net.Pipe()
	defer cEnd.Close()
	go s.HandleConn(sEnd)
	_ = cEnd.SetDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, FrameSize)
	read := func() Frame {
		t.Helper()
		if _, err := io.ReadFull(cEnd, buf); err != nil {
			t.Fatalf("read reply: %v", err)
		}
		f, err := DecodeFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	for _, n := range []uint64{0, MaxBatch + 1} {
		if _, err := cEnd.Write(AppendFrame(nil, Frame{Type: MsgReserveBatch, FlowID: n})); err != nil {
			t.Fatal(err)
		}
		if f := read(); f.Type != MsgError || ErrorCode(f.Value) != ErrCodeBadRequest {
			t.Fatalf("batch length %d: reply %+v, want a bad-request error", n, f)
		}
	}

	// Header for 3 ops, one collected request, then a stats frame: the
	// batch aborts (MsgError), the stats frame is answered normally, and
	// the collected request must NOT have been admitted.
	bad := AppendFrame(nil, BatchHeader(3))
	bad = AppendFrame(bad, Frame{Type: MsgRequest, FlowID: 1, Value: 1})
	bad = AppendFrame(bad, Frame{Type: MsgStats})
	if _, err := cEnd.Write(bad); err != nil {
		t.Fatal(err)
	}
	if f := read(); f.Type != MsgError || ErrorCode(f.Value) != ErrCodeBadRequest {
		t.Fatalf("aborted batch: reply %+v, want a bad-request error", f)
	}
	if f := read(); f.Type != MsgStatsReply {
		t.Fatalf("frame after the aborted batch: reply %+v, want it served on its own terms (%s)", f, MsgStatsReply)
	}
	if a := s.Active(); a != 0 {
		t.Fatalf("active = %d after an aborted batch, want the collected prefix dropped un-admitted", a)
	}

	// The connection survives: a clean batch goes through.
	ok := AppendFrame(nil, BatchHeader(1))
	ok = AppendFrame(ok, Frame{Type: MsgRequest, FlowID: 9, Value: 1})
	if _, err := cEnd.Write(ok); err != nil {
		t.Fatal(err)
	}
	if f := read(); f.Type != MsgReserveBatchReply || !BatchVerdict(f.FlowID).Granted(0) {
		t.Fatalf("batch after recovery: reply %+v, want a granted verdict", f)
	}
}

// TestBatchConnDropReleasesOnce is the release-exactly-once funnel check:
// a connection dies holding batch-granted reservations, the server's
// connection-scoped release reclaims each exactly once, and the freed
// capacity is fully — and not more than fully — reusable.
func TestBatchConnDropReleasesOnce(t *testing.T) {
	const kmax = 8
	s := newServer(t, kmax)
	defer s.Close()

	// A survivor connection holds one flow throughout.
	keeper := pipeClient(t, s)
	c := ctx(t)
	if ok, _, err := keeper.Reserve(c, 100, 1); err != nil || !ok {
		t.Fatalf("keeper reserve: ok=%v err=%v", ok, err)
	}

	// The doomed connection batch-reserves 5 flows, then drops mid-life.
	cEnd, sEnd := net.Pipe()
	go s.HandleConn(sEnd)
	doomed := NewClient(cEnd)
	ops := make([]Frame, 5)
	for i := range ops {
		ops[i] = Frame{Type: MsgRequest, FlowID: uint64(i + 1), Value: 1}
	}
	v, _, err := doomed.ReserveBatch(c, ops)
	if err != nil || v.Count() != len(ops) {
		t.Fatalf("doomed batch: verdict %05b err=%v, want all granted", uint64(v), err)
	}
	if a := s.Active(); a != 6 {
		t.Fatalf("active = %d, want 6", a)
	}
	_ = doomed.Close()
	waitActive(t, s, 1)

	// A second doomed connection dies with a batch body half-collected:
	// nothing was dispatched, so nothing may leak or be released.
	c2End, s2End := net.Pipe()
	go s.HandleConn(s2End)
	partial := AppendFrame(nil, BatchHeader(4))
	partial = AppendFrame(partial, Frame{Type: MsgRequest, FlowID: 11, Value: 1})
	partial = AppendFrame(partial, Frame{Type: MsgRequest, FlowID: 12, Value: 1})
	if _, err := c2End.Write(partial); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	_ = c2End.Close()
	waitActive(t, s, 1)

	// Exactly kmax−1 slots must be reusable — a double release would
	// let an extra flow in, a leak would deny a fitting one.
	refill := make([]Frame, kmax-1)
	for i := range refill {
		refill[i] = Frame{Type: MsgRequest, FlowID: uint64(200 + i), Value: 1}
	}
	v, _, err = keeper.ReserveBatch(c, refill)
	if err != nil || v.Count() != kmax-1 {
		t.Fatalf("refill: %d of %d granted, err=%v — released capacity must be exactly reusable", v.Count(), kmax-1, err)
	}
	if ok, _, err := keeper.Reserve(c, 999, 1); err != nil || ok {
		t.Fatalf("reserve beyond kmax: ok=%v err=%v, want a denial", ok, err)
	}
}

// TestMuxBatchInterleaved races batched reserves, single-frame churn, and
// stats over one mux connection: FIFO batch-reply matching must never
// hand a batch verdict to a single-frame waiter or vice versa.
func TestMuxBatchInterleaved(t *testing.T) {
	const kmax = 256
	s := newServer(t, kmax)
	defer s.Close()
	m := pipeMux(t, s)
	c := ctx(t)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * 1000)
			ops := make([]Frame, 8)
			for i := 0; i < 20; i++ {
				for k := range ops {
					ops[k] = Frame{Type: MsgRequest, FlowID: base + uint64(k) + 1, Value: 1}
				}
				v, share, err := m.ReserveBatch(c, ops)
				if err != nil || v.Count() != len(ops) {
					t.Errorf("batch %d/%d: verdict %08b share %g err %v", w, i, uint64(v), share, err)
					return
				}
				if share != 1 {
					t.Errorf("batch share %g, want 1", share)
					return
				}
				for k := range ops {
					ops[k].Type = MsgTeardown
				}
				if v, _, err = m.ReserveBatch(c, ops); err != nil || v.Count() != len(ops) {
					t.Errorf("teardown batch %d/%d: verdict %08b err %v", w, i, uint64(v), err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ok, _, err := m.Reserve(c, id, 1)
				if err != nil {
					t.Errorf("single reserve %d: %v", id, err)
					return
				}
				if ok {
					if err := m.Teardown(c, id); err != nil {
						t.Errorf("single teardown %d: %v", id, err)
						return
					}
				}
			}
		}(uint64(9000 + w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			k, active, err := m.Stats(c)
			if err != nil || k != kmax || active < 0 || active > kmax {
				t.Errorf("stats: kmax=%d active=%d err=%v", k, active, err)
				return
			}
		}
	}()
	wg.Wait()
	if a := s.Active(); a != 0 {
		t.Fatalf("active = %d after the churn, want 0", a)
	}
}
