package resv

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"
)

// Client speaks the resv protocol over a single connection. One request is
// in flight at a time; methods are safe for concurrent use (they serialize
// on an internal mutex).
//
// Over a stream transport (TCP, Unix, net.Pipe) a round trip is one write
// and one read. Over a datagram transport (NewUDPClient/DialUDP) the
// client owns reliability: it retransmits the request on a reply timeout,
// skips stale duplicated replies, and leans on the server's retransmit
// semantics — reserve dedups against the live grant, refresh is
// idempotent, and a teardown answered "unknown flow" after a retransmit
// means an earlier flight already succeeded.
type Client struct {
	mu sync.Mutex
	nc net.Conn
	// wbuf/rbuf are the frame scratch buffers, guarded by mu. A stack
	// array would escape through the net.Conn interface call; these keep
	// the steady-state round trip at zero allocations.
	wbuf, rbuf [FrameSize]byte
	// bbuf is ReserveBatch's reusable encode buffer (header + body frames
	// in one write), grown on first use, guarded by mu.
	bbuf []byte
	// udp, when non-nil, switches round trips to datagram mode with the
	// given retransmit parameters.
	udp *UDPConfig
	// udpStale marks that a previous datagram round trip may have left
	// late replies queued in the socket: it retransmitted (a reply that
	// was delayed rather than lost means two answers on the wire) or gave
	// up with flights unanswered. Before the next request the socket is
	// swept — a stale DENY or GRANT for a re-requested flow ID would be
	// indistinguishable from the new answer. Guarded by mu.
	udpStale bool
	// metrics, if non-nil, observes every round trip (atomics-only; a set
	// may be shared across clients). Install with SetMetrics before use.
	metrics *ClientMetrics
}

// UDPConfig tunes the datagram transport's request-level retransmit.
type UDPConfig struct {
	// Timeout is how long one flight waits for a reply before the request
	// is retransmitted (default 250ms).
	Timeout time.Duration
	// MaxFlights caps total sends per request, first attempt included
	// (default 4): a request still unanswered after MaxFlights·Timeout
	// fails the round trip.
	MaxFlights int
}

// withDefaults fills unset retransmit parameters.
func (cfg UDPConfig) withDefaults() UDPConfig {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 250 * time.Millisecond
	}
	if cfg.MaxFlights < 1 {
		cfg.MaxFlights = 4
	}
	return cfg
}

// Dial connects to a resv server at the given network address.
func Dial(ctx context.Context, network, addr string) (*Client, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, fmt.Errorf("resv: dial %s %s: %w", network, addr, err)
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection (e.g. one end of a net.Pipe).
func NewClient(nc net.Conn) *Client {
	return &Client{nc: nc}
}

// DialUDP connects to a resv server's datagram endpoint. The connection is
// a connected UDP socket: the OS filters datagrams to the server's address,
// so readDatagram never sees unrelated traffic.
func DialUDP(ctx context.Context, addr string, cfg UDPConfig) (*Client, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "udp", addr)
	if err != nil {
		return nil, fmt.Errorf("resv: dial udp %s: %w", addr, err)
	}
	return NewUDPClient(nc, cfg), nil
}

// NewUDPClient wraps an established datagram connection (a connected
// *net.UDPConn, or any net.Conn with datagram semantics — each Write sends
// one datagram, each Read returns one) in a client running the datagram
// transport's retransmit protocol.
func NewUDPClient(nc net.Conn, cfg UDPConfig) *Client {
	cfg = cfg.withDefaults()
	return &Client{nc: nc, udp: &cfg}
}

// Close tears down the connection; the server releases all reservations
// held through it.
func (c *Client) Close() error { return c.nc.Close() }

// SetMetrics installs a client instrument set (see NewClientMetrics); nil
// disables instrumentation. Not safe to call concurrently with requests.
func (c *Client) SetMetrics(m *ClientMetrics) { c.metrics = m }

// writeFrame and readFrame are WriteFrame/ReadFrame through the client's
// scratch buffers. Callers hold c.mu.
func (c *Client) writeFrame(f Frame) error {
	putFrame(&c.wbuf, f)
	_, err := c.nc.Write(c.wbuf[:])
	return err
}

func (c *Client) readFrame() (Frame, error) {
	if _, err := io.ReadFull(c.nc, c.rbuf[:]); err != nil {
		return Frame{}, err
	}
	return DecodeFrame(c.rbuf[:])
}

// roundTrip sends one frame and reads one reply, honoring the context
// deadline. sent reports whether the request reached the wire: when it did
// and err is non-nil, the server may have processed the request even though
// no reply arrived.
func (c *Client) roundTrip(ctx context.Context, req Frame) (reply Frame, sent bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.udp != nil {
		return c.roundTripUDP(ctx, req)
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Time{}
	}
	if err := c.nc.SetDeadline(deadline); err != nil {
		return Frame{}, false, fmt.Errorf("resv: set deadline: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return Frame{}, false, err
	}
	// Clock reads only when instrumented: the uninstrumented round trip
	// stays free of time syscalls.
	var t0 time.Time
	if c.metrics != nil {
		t0 = time.Now()
	}
	if err := c.writeFrame(req); err != nil {
		err = fmt.Errorf("resv: send %s: %w", req.Type, err)
		if c.metrics != nil {
			c.metrics.observe(req, Frame{}, 0, err)
		}
		return Frame{}, false, err
	}
	reply, err = c.readFrame()
	if err != nil {
		err = fmt.Errorf("resv: awaiting reply to %s: %w", req.Type, err)
		if c.metrics != nil {
			c.metrics.observe(req, Frame{}, 0, err)
		}
		return Frame{}, true, err
	}
	if c.metrics != nil {
		c.metrics.observe(req, reply, time.Since(t0), nil)
	}
	return reply, true, nil
}

// roundTripUDP is the datagram round trip: send the request, wait up to one
// flight timeout for a matching reply, retransmit on silence, give up after
// MaxFlights. Caller holds c.mu. Non-matching replies — late duplicates
// from an earlier flight's retransmit, or garbage — are skipped without
// consuming flight budget; only the timer bounds them.
func (c *Client) roundTripUDP(ctx context.Context, req Frame) (Frame, bool, error) {
	if c.udpStale {
		c.udpStale = false
		c.drainUDP()
	}
	var overall time.Time // zero: no overall deadline
	if d, ok := ctx.Deadline(); ok {
		overall = d
	}
	var t0 time.Time
	if c.metrics != nil {
		t0 = time.Now()
	}
	sent := false
	fail := func(err error) (Frame, bool, error) {
		// Flights that went out unanswered may still draw replies after we
		// give up; sweep them before the next request touches the socket.
		if sent {
			c.udpStale = true
		}
		if c.metrics != nil {
			c.metrics.observe(req, Frame{}, 0, err)
		}
		return Frame{}, sent, err
	}
	for flight := 1; flight <= c.udp.MaxFlights; flight++ {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		if flight > 1 && c.metrics != nil {
			c.metrics.Retransmits.Inc()
		}
		if err := c.writeFrame(req); err != nil {
			// A datagram send fails only locally (closed socket, bad
			// address); on-path loss is silent and handled by the timer.
			return fail(fmt.Errorf("resv: send %s: %w", req.Type, err))
		}
		sent = true
		rto := time.Now().Add(c.udp.Timeout)
		if !overall.IsZero() && overall.Before(rto) {
			rto = overall
		}
		if err := c.nc.SetReadDeadline(rto); err != nil {
			return fail(fmt.Errorf("resv: set deadline: %w", err))
		}
		for {
			reply, err := c.readDatagram()
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					break // flight expired; retransmit
				}
				return fail(fmt.Errorf("resv: awaiting reply to %s: %w", req.Type, err))
			}
			if !udpReplyMatches(req, reply) {
				continue
			}
			// A teardown answered "unknown flow" after a retransmit means an
			// earlier flight tore the flow down and its reply was lost — the
			// operation succeeded, so synthesize the confirmation.
			if flight > 1 && req.Type == MsgTeardown && reply.Type == MsgError &&
				ErrorCode(reply.Value) == ErrCodeUnknownFlow {
				reply = Frame{Type: MsgTeardownOK, FlowID: req.FlowID}
			}
			if flight > 1 {
				// A retransmit means up to flight replies are on the wire
				// and we consumed one. If the reply was late rather than
				// lost, the extras will land in the socket buffer, where a
				// later re-request of the same flow ID could mistake one —
				// a stale DENY, say — for its own answer.
				c.udpStale = true
			}
			if c.metrics != nil {
				c.metrics.Flights.Record(uint64(flight))
				c.metrics.observe(req, reply, time.Since(t0), nil)
			}
			return reply, true, nil
		}
	}
	return fail(fmt.Errorf("resv: %s flow %d: no reply after %d flights of %v",
		req.Type, req.FlowID, c.udp.MaxFlights, c.udp.Timeout))
}

// readDatagram reads one datagram into the scratch buffer and decodes it.
// Unlike readFrame it never spans reads: a runt or oversized datagram is a
// decode error for that packet alone, not a framing desync. Caller holds
// c.mu.
func (c *Client) readDatagram() (Frame, error) {
	n, err := c.nc.Read(c.rbuf[:])
	if err != nil {
		return Frame{}, err
	}
	f, err := DecodeDatagram(c.rbuf[:n])
	if err != nil {
		// Treat garbage like a non-matching reply: report a frame that
		// matches nothing so the caller keeps waiting out the flight.
		return Frame{}, nil
	}
	return f, nil
}

// drainUDP sweeps leftover replies from an earlier round trip out of the
// socket. Everything read here predates the next request, so discarding it
// is always correct; keeping it could alias a later exchange for the same
// flow ID. The window is a fraction of the flight timeout: long enough on
// any path for a trailing duplicate to land, short enough that the cost is
// only paid after the rare round trip that retransmitted or gave up.
// Caller holds c.mu.
func (c *Client) drainUDP() {
	window := c.udp.Timeout / 2
	if window < time.Millisecond {
		window = time.Millisecond
	}
	if err := c.nc.SetReadDeadline(time.Now().Add(window)); err != nil {
		return
	}
	for {
		if _, err := c.nc.Read(c.rbuf[:]); err != nil {
			return
		}
	}
}

// udpReplyMatches reports whether reply can answer req: right flow, and a
// type the request could elicit. Anything else is a stale duplicate from an
// earlier exchange. (A stale MsgError for the same flow is indistinguishable
// from a fresh one and may be matched; errors carry no sequence numbers in
// the 20-byte frame.)
func udpReplyMatches(req, reply Frame) bool {
	switch req.Type {
	case MsgRequest:
		return reply.FlowID == req.FlowID &&
			(reply.Type == MsgGrant || reply.Type == MsgDeny || reply.Type == MsgError)
	case MsgTeardown:
		return reply.FlowID == req.FlowID &&
			(reply.Type == MsgTeardownOK || reply.Type == MsgError)
	case MsgRefresh:
		return reply.FlowID == req.FlowID &&
			(reply.Type == MsgRefreshOK || reply.Type == MsgError)
	case MsgStats:
		return reply.Type == MsgStatsReply
	default:
		return true
	}
}

// Reserve requests a reservation for flowID with the given bandwidth
// demand. It reports whether the reservation was granted, and the granted
// share when it was.
func (c *Client) Reserve(ctx context.Context, flowID uint64, bandwidth float64) (granted bool, share float64, err error) {
	granted, share, _, err = c.reserve(ctx, flowID, bandwidth, 0)
	return granted, share, err
}

// ReserveClass is Reserve with an admission class (policy.ClassStandard /
// ClassCritical / ClassSheddable), carried in the request frame's class
// bits. Class 0 requests are byte-identical to Reserve; class-unaware
// servers (and policies) ignore the bits.
func (c *Client) ReserveClass(ctx context.Context, flowID uint64, bandwidth float64, class uint8) (granted bool, share float64, err error) {
	granted, share, _, err = c.reserve(ctx, flowID, bandwidth, class)
	return granted, share, err
}

// reserve is Reserve plus a sent indicator: when the request hit the wire
// but the reply was lost, the server may hold a grant the caller never saw.
func (c *Client) reserve(ctx context.Context, flowID uint64, bandwidth float64, class uint8) (granted bool, share float64, sent bool, err error) {
	reply, sent, err := c.roundTrip(ctx, Frame{Type: MsgRequest, Class: class, FlowID: flowID, Value: bandwidth})
	if err != nil {
		return false, 0, sent, err
	}
	switch reply.Type {
	case MsgGrant:
		return true, reply.Value, true, nil
	case MsgDeny:
		return false, 0, true, nil
	case MsgError:
		return false, 0, true, fmt.Errorf("resv: reserve flow %d: server error code %d", flowID, uint64(reply.Value))
	default:
		return false, 0, true, fmt.Errorf("resv: reserve flow %d: unexpected %s reply", flowID, reply.Type)
	}
}

// ReserveBatch ships up to MaxBatch reservation ops — MsgRequest and
// MsgTeardown frames, processed by the server strictly in order — as one
// multi-reserve frame sequence and one reply: a single round trip where N
// single ops would pay N. Bit i of the verdict reports op i (granted /
// torn down); share is the server's count-mode worst-case share, 0 in
// bandwidth mode. Stream transports only: the datagram transport has no
// retransmit story for partially-applied batches, so it refuses.
func (c *Client) ReserveBatch(ctx context.Context, ops []Frame) (BatchVerdict, float64, error) {
	if len(ops) < 1 || len(ops) > MaxBatch {
		return 0, 0, fmt.Errorf("resv: batch of %d ops (want 1..%d)", len(ops), MaxBatch)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.udp != nil {
		return 0, 0, fmt.Errorf("resv: batched reserve needs a stream transport")
	}
	deadline, _ := ctx.Deadline()
	if err := c.nc.SetDeadline(deadline); err != nil {
		return 0, 0, fmt.Errorf("resv: set deadline: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	var t0 time.Time
	if c.metrics != nil {
		t0 = time.Now()
	}
	if c.bbuf == nil {
		c.bbuf = make([]byte, 0, (MaxBatch+1)*FrameSize)
	}
	buf := AppendFrame(c.bbuf[:0], BatchHeader(len(ops)))
	for _, f := range ops {
		buf = AppendFrame(buf, f)
	}
	c.bbuf = buf[:0]
	fail := func(err error) (BatchVerdict, float64, error) {
		if c.metrics != nil {
			c.metrics.observeBatch(ops, 0, 0, err)
		}
		return 0, 0, err
	}
	if _, err := c.nc.Write(buf); err != nil {
		return fail(fmt.Errorf("resv: send batch: %w", err))
	}
	reply, err := c.readFrame()
	if err != nil {
		return fail(fmt.Errorf("resv: awaiting batch reply: %w", err))
	}
	if reply.Type != MsgReserveBatchReply {
		return fail(fmt.Errorf("resv: batch reserve: unexpected %s reply", reply.Type))
	}
	v := BatchVerdict(reply.FlowID)
	if c.metrics != nil {
		c.metrics.observeBatch(ops, v, time.Since(t0), nil)
	}
	return v, reply.Value, nil
}

// Teardown releases flowID's reservation.
func (c *Client) Teardown(ctx context.Context, flowID uint64) error {
	reply, _, err := c.roundTrip(ctx, Frame{Type: MsgTeardown, FlowID: flowID})
	if err != nil {
		return err
	}
	switch reply.Type {
	case MsgTeardownOK:
		return nil
	case MsgError:
		return fmt.Errorf("resv: teardown flow %d: server error code %d", flowID, uint64(reply.Value))
	default:
		return fmt.Errorf("resv: teardown flow %d: unexpected %s reply", flowID, reply.Type)
	}
}

// Refresh renews flowID's soft-state deadline on a TTL server. It returns
// the server's TTL (0 when the server never expires reservations).
func (c *Client) Refresh(ctx context.Context, flowID uint64) (ttl time.Duration, err error) {
	reply, _, err := c.roundTrip(ctx, Frame{Type: MsgRefresh, FlowID: flowID})
	if err != nil {
		return 0, err
	}
	switch reply.Type {
	case MsgRefreshOK:
		return time.Duration(reply.Value * float64(time.Second)), nil
	case MsgError:
		return 0, fmt.Errorf("resv: refresh flow %d: server error code %d", flowID, uint64(reply.Value))
	default:
		return 0, fmt.Errorf("resv: refresh flow %d: unexpected %s reply", flowID, reply.Type)
	}
}

// KeepAlive refreshes flowID at the given interval until ctx is canceled
// or a refresh fails (e.g. the reservation was torn down or already
// expired). It refreshes once immediately on entry — a first refresh only
// after a full interval could miss the reservation's first TTL deadline —
// and rejects interval ≥ the server's TTL, which would guarantee expiry
// between refreshes. It blocks; run it in its own goroutine. The returned
// error is nil on context cancellation.
func (c *Client) KeepAlive(ctx context.Context, flowID uint64, interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("resv: keep-alive interval must be positive, got %v", interval)
	}
	ttl, err := c.Refresh(ctx, flowID)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return err
	}
	if ttl > 0 && interval >= ttl {
		return fmt.Errorf("resv: keep-alive interval %v must be shorter than the server TTL %v", interval, ttl)
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
			if _, err := c.Refresh(ctx, flowID); err != nil {
				if ctx.Err() != nil {
					return nil
				}
				return err
			}
		}
	}
}

// Stats returns the server's admission threshold and active reservation
// count.
func (c *Client) Stats(ctx context.Context) (kmax, active int, err error) {
	reply, _, err := c.roundTrip(ctx, Frame{Type: MsgStats})
	if err != nil {
		return 0, 0, err
	}
	return statsFromReply(reply)
}

// RetryPolicy governs ReserveWithRetry, mirroring the paper's §5.2
// retrying extension: a denied request waits and tries again, at a utility
// cost per retry that the caller accounts separately.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts (≥ 1).
	MaxAttempts int
	// BaseDelay is the wait before the first retry.
	BaseDelay time.Duration
	// Multiplier scales the delay after each attempt (≥ 1).
	Multiplier float64
	// Jitter, in [0, 1], randomizes each delay by ±Jitter·delay to avoid
	// synchronized retry storms. 0 means no jitter.
	Jitter float64
	// Rand, if non-nil, supplies the jitter draws (uniform in [0, 1)), so
	// harnesses can seed the backoff sequence and reproduce a run exactly;
	// nil falls back to the process-global generator. Ignored when Jitter
	// is 0.
	Rand func() float64
}

// jittered randomizes one backoff delay by ±Jitter·d, drawing from the
// policy's injected generator or the process-global one. Both retrying
// clients (Client and MuxClient) funnel their waits through it.
func (p RetryPolicy) jittered(d time.Duration) time.Duration {
	if p.Jitter <= 0 || d <= 0 {
		return d
	}
	r := p.Rand
	if r == nil {
		r = rand.Float64
	}
	return time.Duration(float64(d) * (1 + p.Jitter*(2*r()-1)))
}

// Validate checks the policy.
func (p RetryPolicy) Validate() error {
	if p.MaxAttempts < 1 {
		return fmt.Errorf("resv: retry policy needs MaxAttempts ≥ 1, got %d", p.MaxAttempts)
	}
	if p.BaseDelay < 0 || p.Multiplier < 1 || p.Jitter < 0 || p.Jitter > 1 {
		return fmt.Errorf("resv: invalid retry policy {MaxAttempts:%d BaseDelay:%v Multiplier:%g Jitter:%g}",
			p.MaxAttempts, p.BaseDelay, p.Multiplier, p.Jitter)
	}
	return nil
}

// ReserveWithRetry requests a reservation, retrying denials per the policy
// until granted, the attempts are exhausted, or the context expires. It
// returns the granted share and the number of retries performed (0 when
// the first attempt succeeded). When all attempts are denied it returns
// granted = false with a nil error.
func (c *Client) ReserveWithRetry(ctx context.Context, flowID uint64, bandwidth float64, policy RetryPolicy) (granted bool, share float64, retries int, err error) {
	if err := policy.Validate(); err != nil {
		return false, 0, 0, err
	}
	delay := policy.BaseDelay
	for attempt := 1; ; attempt++ {
		ok, sh, sent, err := c.reserve(ctx, flowID, bandwidth, 0)
		if err != nil {
			if sent {
				// The request reached the wire but its reply did not come
				// back (timeout, connection drop). The server may hold the
				// grant while we report failure — release it rather than
				// leak a reservation nobody will use or tear down.
				c.teardownBestEffort(flowID)
			}
			return false, 0, attempt - 1, err
		}
		if ok {
			return true, sh, attempt - 1, nil
		}
		if attempt >= policy.MaxAttempts {
			return false, 0, attempt - 1, nil
		}
		if c.metrics != nil {
			c.metrics.Retries.Inc()
		}
		d := policy.jittered(delay)
		select {
		case <-ctx.Done():
			return false, 0, attempt - 1, ctx.Err()
		case <-time.After(d):
		}
		delay = time.Duration(float64(delay) * policy.Multiplier)
	}
}

// bestEffortTeardownTimeout bounds how long a post-failure cleanup may
// occupy the connection.
const bestEffortTeardownTimeout = time.Second

// teardownBestEffort tries to release flowID after a transport failure left
// the reservation state unknown. The reply stream may still hold a stale
// reply to the failed request, so it drains frames until the teardown's own
// reply arrives (or the deadline passes). Errors are deliberately swallowed:
// the connection is already suspect, and closing it remains the backstop
// that releases everything.
func (c *Client) teardownBestEffort(flowID uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.udp != nil {
		// The datagram round trip already retransmits and skips stale
		// replies; on a TTL server even total loss here only delays the
		// release until the soft state expires.
		ctx, cancel := context.WithTimeout(context.Background(), bestEffortTeardownTimeout)
		defer cancel()
		_, _, _ = c.roundTripUDP(ctx, Frame{Type: MsgTeardown, FlowID: flowID})
		return
	}
	if err := c.nc.SetDeadline(time.Now().Add(bestEffortTeardownTimeout)); err != nil {
		return
	}
	if err := c.writeFrame(Frame{Type: MsgTeardown, FlowID: flowID}); err != nil {
		return
	}
	for {
		reply, err := c.readFrame()
		if err != nil {
			return
		}
		// Skip the failed request's late reply (a grant or denial for the
		// same flow); stop at the teardown's MsgTeardownOK, or at MsgError
		// if the request never took effect server-side.
		if reply.FlowID == flowID && (reply.Type == MsgTeardownOK || reply.Type == MsgError) {
			return
		}
	}
}
