// Package resv implements a minimal reservation signaling protocol — an
// RSVP-inspired substrate for the integrated-services architecture the
// paper analyzes (§1). A client asks the network for a reservation; the
// server runs admission control with the model's utility-maximizing
// threshold kmax(C) and grants or denies. Denied clients may retry with
// backoff, mirroring the §5.2 extension.
//
// The protocol is deliberately small: fixed 20-byte frames over any
// net.Conn (TCP, Unix sockets, or net.Pipe in tests), one request in
// flight per connection, and reservations tied to the connection's
// lifetime — a connection drop releases its flows, the moral equivalent of
// RSVP's soft state.
package resv

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync"
)

// MsgType identifies a protocol frame.
type MsgType uint8

const (
	// MsgRequest asks for a reservation for FlowID; Value carries the
	// requested bandwidth.
	MsgRequest MsgType = iota + 1
	// MsgGrant accepts a request. In flow-count mode Value carries the
	// guaranteed worst-case share C/kmax — NOT the instantaneous share
	// C/min(k, kmax), which changes as flows arrive and depart and would
	// be stale as soon as the frame hit the wire. In bandwidth mode Value
	// is the granted rate (exactly the requested rate).
	MsgGrant
	// MsgDeny rejects a request; Value carries the current active count.
	MsgDeny
	// MsgTeardown releases FlowID's reservation.
	MsgTeardown
	// MsgTeardownOK confirms a teardown.
	MsgTeardownOK
	// MsgStats asks for link statistics.
	MsgStats
	// MsgStatsReply answers MsgStats; see the "MsgStatsReply field
	// packing" note below and use StatsReplyFrame/ParseStatsReply rather
	// than reaching into the fields.
	MsgStatsReply
	// MsgRefresh renews FlowID's soft-state timer (RSVP-style): on a
	// server with a reservation TTL, unrefreshed reservations expire.
	MsgRefresh
	// MsgRefreshOK confirms a refresh; Value carries the TTL in seconds
	// (0 when the server does not expire reservations).
	MsgRefreshOK
	// MsgError reports a protocol-level failure; Value is an ErrorCode.
	MsgError
	// MsgGossip carries one per-link occupancy snapshot of the cluster
	// plane (internal/cluster): FlowID packs the link's global index in its
	// top 16 bits and a monotone per-owner version in the low 48, Value is
	// the link's active reservation count. Gossip is one-way — a receiver
	// never replies — so it can piggyback on any stream the sender already
	// writes (MuxClient.Post) without disturbing request/reply matching.
	MsgGossip
	// MsgReserveBatch opens a batched admission request: FlowID carries the
	// body length N (1..MaxBatch) and the header is followed by exactly N
	// ordinary body frames, each a MsgRequest or MsgTeardown, processed in
	// order. The server answers the whole batch with one
	// MsgReserveBatchReply. Batch framing is stream-only: a datagram-mode
	// server rejects the header with ErrCodeBadRequest, because the body
	// would span packets.
	MsgReserveBatch
	// MsgReserveBatchReply answers a MsgReserveBatch: FlowID is a
	// BatchVerdict bitmap (bit i set ⇔ body op i granted / torn down OK)
	// and Value carries the count-mode worst-case share C/kmax for granted
	// requests (0 in bandwidth mode, where the granted rate is the
	// requested rate).
	MsgReserveBatchReply
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgRequest:
		return "REQUEST"
	case MsgGrant:
		return "GRANT"
	case MsgDeny:
		return "DENY"
	case MsgTeardown:
		return "TEARDOWN"
	case MsgTeardownOK:
		return "TEARDOWN-OK"
	case MsgStats:
		return "STATS"
	case MsgStatsReply:
		return "STATS-REPLY"
	case MsgRefresh:
		return "REFRESH"
	case MsgRefreshOK:
		return "REFRESH-OK"
	case MsgError:
		return "ERROR"
	case MsgGossip:
		return "GOSSIP"
	case MsgReserveBatch:
		return "RESERVE-BATCH"
	case MsgReserveBatchReply:
		return "RESERVE-BATCH-REPLY"
	default:
		return fmt.Sprintf("MSG(%d)", uint8(t))
	}
}

// ErrorCode enumerates MsgError payloads.
type ErrorCode uint64

const (
	// ErrCodeUnknownFlow reports an operation on a flow the server does
	// not know.
	ErrCodeUnknownFlow ErrorCode = iota + 1
	// ErrCodeDuplicateFlow reports a reservation request for an
	// already-reserved flow ID.
	ErrCodeDuplicateFlow
	// ErrCodeBadRequest reports a malformed or out-of-range request.
	ErrCodeBadRequest
)

const (
	// frameMagic guards against cross-protocol traffic.
	frameMagic uint16 = 0xBE05
	// protocolVersion is bumped on incompatible changes.
	protocolVersion uint8 = 1
	// FrameSize is the fixed wire size of every message.
	FrameSize = 20
)

// Frame is one protocol message.
type Frame struct {
	Type MsgType
	// Class is the admission class of a request (policy.ClassStandard /
	// ClassCritical / ClassSheddable), carried in the top two bits of the
	// type byte. The zero value is the standard class, so frames from
	// class-unaware clients are byte-identical to protocol version 1
	// before classes existed; replies always carry class 0.
	Class  uint8
	FlowID uint64
	// Value is type-dependent: bandwidth for requests/grants, a count for
	// denials and stats, an ErrorCode for errors.
	Value float64
}

const (
	// classShift positions the 2-bit class field in the type byte. MsgType
	// needs 4 bits (1..13), leaving the top bits free; bits 4–5 stay
	// reserved-zero for future types.
	classShift = 6
	// typeMask extracts the message type from the type byte.
	typeMask = (1 << classShift) - 1
	// ClassMask bounds the wire class space (policy.NumClasses values).
	ClassMask = 0xff >> classShift
)

// ErrBadFrame is wrapped by decoding errors.
var ErrBadFrame = fmt.Errorf("resv: bad frame")

// putFrame encodes f into a fixed-size buffer.
func putFrame(buf *[FrameSize]byte, f Frame) {
	binary.BigEndian.PutUint16(buf[0:2], frameMagic)
	buf[2] = protocolVersion
	buf[3] = uint8(f.Type) | (f.Class&ClassMask)<<classShift
	binary.BigEndian.PutUint64(buf[4:12], f.FlowID)
	binary.BigEndian.PutUint64(buf[12:20], math.Float64bits(f.Value))
}

// AppendFrame appends the wire encoding of f to dst.
func AppendFrame(dst []byte, f Frame) []byte {
	var buf [FrameSize]byte
	putFrame(&buf, f)
	return append(dst, buf[:]...)
}

// DecodeFrame parses one frame from exactly FrameSize bytes.
func DecodeFrame(b []byte) (Frame, error) {
	if len(b) != FrameSize {
		return Frame{}, fmt.Errorf("%w: length %d, want %d", ErrBadFrame, len(b), FrameSize)
	}
	if got := binary.BigEndian.Uint16(b[0:2]); got != frameMagic {
		return Frame{}, fmt.Errorf("%w: magic %#04x", ErrBadFrame, got)
	}
	if b[2] != protocolVersion {
		return Frame{}, fmt.Errorf("%w: version %d, want %d", ErrBadFrame, b[2], protocolVersion)
	}
	t := MsgType(b[3] & typeMask)
	if t < MsgRequest || t > MsgReserveBatchReply {
		return Frame{}, fmt.Errorf("%w: unknown type %d", ErrBadFrame, b[3]&typeMask)
	}
	return Frame{
		Type:   t,
		Class:  b[3] >> classShift,
		FlowID: binary.BigEndian.Uint64(b[4:12]),
		Value:  math.Float64frombits(binary.BigEndian.Uint64(b[12:20])),
	}, nil
}

// DecodeFrames decodes every complete frame at the front of buf, appending
// them to dst (append-style, like AppendFrame: pass a scratch slice's [:0]
// to reuse its backing array). It returns the extended slice and the
// undecoded remainder — a partial trailing frame, possibly empty. On a
// malformed frame it returns the frames decoded before it, the remainder
// starting at the bad frame, and the decode error.
func DecodeFrames(dst []Frame, buf []byte) ([]Frame, []byte, error) {
	for len(buf) >= FrameSize {
		f, err := DecodeFrame(buf[:FrameSize])
		if err != nil {
			return dst, buf, err
		}
		dst = append(dst, f)
		buf = buf[FrameSize:]
	}
	return dst, buf, nil
}

// DecodeDatagram parses the one frame a datagram-mode packet must carry:
// exactly FrameSize bytes, decoded by the same rules as DecodeFrame. The
// datagram transport never coalesces frames — UDP already preserves
// message boundaries, and one-frame datagrams make request-level
// retransmission trivial — so a short, long, or torn payload is rejected
// outright rather than buffered for a next read that will never come.
func DecodeDatagram(b []byte) (Frame, error) {
	if len(b) != FrameSize {
		return Frame{}, fmt.Errorf("%w: datagram length %d, want exactly %d", ErrBadFrame, len(b), FrameSize)
	}
	return DecodeFrame(b)
}

// MsgStatsReply field packing
//
// A stats reply repurposes the two payload fields of the fixed frame:
//
//	FlowID — the admission threshold kmax, as the uint64 it is
//	Value  — the active reservation count, as a float64
//
// FlowID is lossless. Value is not: float64 represents every integer only
// up to 2^53, and a hostile or corrupt peer can put a NaN, a negative, or
// a fractional value on the wire, any of which `int(f.Value)` turns into
// platform-defined garbage. StatsReplyFrame and ParseStatsReply are the
// only sanctioned way through this packing: the encoder refuses counts a
// float64 cannot hold exactly, and the parser rejects anything that is not
// a non-negative integral count in the exact range. Policy-extended stats
// must add frames (or a new message type), not squeeze more meaning into
// these two fields.

// maxExactCount is the largest count float64 round-trips exactly (2^53).
const maxExactCount = int64(1) << 53

// StatsReplyFrame packs a stats reply. It returns an error if the active
// count cannot survive the float64 leg of the packing.
func StatsReplyFrame(kmax int, active int64) (Frame, error) {
	if kmax < 0 {
		return Frame{}, fmt.Errorf("resv: stats reply kmax %d is negative", kmax)
	}
	if active < 0 || active > maxExactCount {
		return Frame{}, fmt.Errorf("resv: stats reply active count %d outside [0, 2^53]", active)
	}
	return Frame{Type: MsgStatsReply, FlowID: uint64(kmax), Value: float64(active)}, nil
}

// ParseStatsReply unpacks a stats reply, validating both packed fields.
func ParseStatsReply(f Frame) (kmax, active int64, err error) {
	if f.Type != MsgStatsReply {
		return 0, 0, fmt.Errorf("resv: %s frame is not a stats reply", f.Type)
	}
	if f.FlowID > math.MaxInt64 {
		return 0, 0, fmt.Errorf("resv: stats reply kmax %d overflows int64", f.FlowID)
	}
	v := f.Value
	if math.IsNaN(v) || v < 0 || v > float64(maxExactCount) || v != math.Trunc(v) {
		return 0, 0, fmt.Errorf("resv: stats reply active count %v is not an exact count", v)
	}
	return int64(f.FlowID), int64(v), nil
}

// statsFromReply is the shared client-side stats decode: both the classic
// client and the mux client funnel replies through it so neither can
// regress to bare int(Value) truncation. It additionally guards the
// conversion to the platform int.
func statsFromReply(reply Frame) (kmax, active int, err error) {
	if reply.Type == MsgError {
		return 0, 0, fmt.Errorf("resv: stats failed: server error %v", ErrorCode(reply.FlowID))
	}
	k, a, err := ParseStatsReply(reply)
	if err != nil {
		return 0, 0, err
	}
	if int64(int(k)) != k || int64(int(a)) != a {
		return 0, 0, fmt.Errorf("resv: stats counts (%d, %d) overflow int on this platform", k, a)
	}
	return int(k), int(a), nil
}

// frameBufPool recycles frame scratch buffers for WriteFrame/ReadFrame. A
// local array would escape through the io.Writer/io.Reader interface call
// (the function is past the inlining budget, so no devirtualization saves
// it), putting one heap allocation on every frame — the pool makes the
// steady state allocation-free. Hot paths with a stable peer keep their
// own scratch instead (Client's buffers, the server's batch buffers).
var frameBufPool = sync.Pool{New: func() interface{} { return new([FrameSize]byte) }}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	buf := frameBufPool.Get().(*[FrameSize]byte)
	putFrame(buf, f)
	_, err := w.Write(buf[:])
	frameBufPool.Put(buf)
	return err
}

// MaxBatch is the largest body a MsgReserveBatch may carry. 64 ops keep
// the reply verdict an exact one-frame bitmap (one bit per op in the
// reply's FlowID) and match the mux transport's write-coalescing window,
// so a full batch still flushes as a single vectored write.
const MaxBatch = 64

// BatchVerdict is the per-op outcome bitmap a MsgReserveBatchReply
// carries in its FlowID field: bit i is set iff body op i succeeded
// (a MsgRequest was granted, a MsgTeardown found its flow).
type BatchVerdict uint64

// Granted reports the outcome of body op i.
func (v BatchVerdict) Granted(i int) bool { return v&(1<<uint(i)) != 0 }

// Count is the number of successful ops in the batch.
func (v BatchVerdict) Count() int { return bits.OnesCount64(uint64(v)) }

// BatchHeader builds the MsgReserveBatch header frame for an n-op body.
func BatchHeader(n int) Frame {
	return Frame{Type: MsgReserveBatch, FlowID: uint64(n)}
}

// BatchCollector accumulates the body of an in-flight MsgReserveBatch.
// Body frames may span read boundaries, so stream loops keep one collector
// per connection: Begin on the header, Add on each subsequent frame until
// it reports done, then Ops for the completed body. The zero value is an
// idle collector.
type BatchCollector struct {
	want int
	n    int
	ops  [MaxBatch]Frame
}

// Active reports whether a batch header has been seen and its body is
// still incomplete.
func (c *BatchCollector) Active() bool { return c.want > 0 }

// Begin starts collecting the body of header, which must be a
// MsgReserveBatch frame. It rejects a nested batch and a body length
// outside 1..MaxBatch.
func (c *BatchCollector) Begin(header Frame) error {
	if c.want > 0 {
		return fmt.Errorf("%w: batch header inside a batch body", ErrBadFrame)
	}
	n := header.FlowID
	if n < 1 || n > MaxBatch {
		return fmt.Errorf("%w: batch length %d outside [1, %d]", ErrBadFrame, n, MaxBatch)
	}
	c.want = int(n)
	c.n = 0
	return nil
}

// Add appends one body frame. Only MsgRequest and MsgTeardown may appear
// in a batch body; anything else aborts the batch (the collector resets,
// dropping the collected prefix) and returns the error. done reports that
// the body is complete and Ops may be read.
func (c *BatchCollector) Add(f Frame) (done bool, err error) {
	if c.want == 0 {
		return false, fmt.Errorf("%w: batch body frame outside a batch", ErrBadFrame)
	}
	if f.Type != MsgRequest && f.Type != MsgTeardown {
		c.Reset()
		return false, fmt.Errorf("%w: %s frame in a batch body", ErrBadFrame, f.Type)
	}
	c.ops[c.n] = f
	c.n++
	if c.n == c.want {
		c.want = 0
		return true, nil
	}
	return false, nil
}

// Ops returns the completed body after Add reported done. The slice
// aliases the collector's buffer and is valid until the next Begin.
func (c *BatchCollector) Ops() []Frame { return c.ops[:c.n] }

// Reset discards any partially collected body.
func (c *BatchCollector) Reset() { c.want, c.n = 0, 0 }

// ReadFrame reads exactly one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	buf := frameBufPool.Get().(*[FrameSize]byte)
	defer frameBufPool.Put(buf)
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Frame{}, err
	}
	return DecodeFrame(buf[:])
}
