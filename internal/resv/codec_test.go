package resv

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	prop := func(typ uint8, flowID uint64, value float64) bool {
		f := Frame{
			Type:   MsgType(typ%uint8(MsgError)) + MsgRequest,
			FlowID: flowID,
			Value:  value,
		}
		if f.Type > MsgError {
			f.Type = MsgError
		}
		got, err := DecodeFrame(AppendFrame(nil, f))
		if err != nil {
			return false
		}
		same := got.Type == f.Type && got.FlowID == f.FlowID
		if math.IsNaN(f.Value) {
			return same && math.IsNaN(got.Value)
		}
		return same && got.Value == f.Value
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeFrame(make([]byte, 7)); !errors.Is(err, ErrBadFrame) {
		t.Error("short frame should fail")
	}
	good := AppendFrame(nil, Frame{Type: MsgGrant, FlowID: 1, Value: 2})
	bad := append([]byte(nil), good...)
	bad[0] = 0xFF // magic
	if _, err := DecodeFrame(bad); !errors.Is(err, ErrBadFrame) {
		t.Error("bad magic should fail")
	}
	bad = append([]byte(nil), good...)
	bad[2] = 99 // version
	if _, err := DecodeFrame(bad); !errors.Is(err, ErrBadFrame) {
		t.Error("bad version should fail")
	}
	bad = append([]byte(nil), good...)
	bad[3] = 0 // type below range
	if _, err := DecodeFrame(bad); !errors.Is(err, ErrBadFrame) {
		t.Error("type 0 should fail")
	}
	bad[3] = uint8(MsgReserveBatchReply) + 1
	if _, err := DecodeFrame(bad); !errors.Is(err, ErrBadFrame) {
		t.Error("type beyond range should fail")
	}
}

func TestGossipFrameRoundTrip(t *testing.T) {
	// A gossip frame packs linkIdx<<48 | version in FlowID and the active
	// count in Value; it must survive the wire like any other frame.
	want := Frame{Type: MsgGossip, FlowID: 7<<48 | 123456, Value: 42}
	got, err := DecodeFrame(AppendFrame(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func TestWriteReadFrame(t *testing.T) {
	var buf bytes.Buffer
	want := Frame{Type: MsgDeny, FlowID: 42, Value: 7.5}
	if err := WriteFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != FrameSize {
		t.Errorf("wire size %d, want %d", buf.Len(), FrameSize)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for typ := MsgRequest; typ <= MsgGossip; typ++ {
		if typ.String() == "" {
			t.Errorf("empty name for %d", typ)
		}
	}
	if MsgType(200).String() == "" {
		t.Error("unknown type should still render")
	}
}

func TestDecodeFrames(t *testing.T) {
	want := []Frame{
		{Type: MsgRequest, FlowID: 1, Value: 1},
		{Type: MsgGrant, FlowID: 2, Value: 2.5},
		{Type: MsgTeardown, FlowID: 3},
	}
	var wire []byte
	for _, f := range want {
		wire = AppendFrame(wire, f)
	}
	got, rest, err := DecodeFrames(nil, wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("rest = % x, want empty", rest)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("frame %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDecodeFramesTrailingPartial(t *testing.T) {
	wire := AppendFrame(nil, Frame{Type: MsgRequest, FlowID: 1, Value: 1})
	wire = AppendFrame(wire, Frame{Type: MsgRequest, FlowID: 2, Value: 1})
	for cut := 0; cut < FrameSize; cut++ {
		buf := wire[:FrameSize+cut]
		got, rest, err := DecodeFrames(nil, buf)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != 1 {
			t.Fatalf("cut %d: decoded %d frames, want 1", cut, len(got))
		}
		if len(rest) != cut {
			t.Errorf("cut %d: rest length %d, want %d", cut, len(rest), cut)
		}
	}
}

func TestDecodeFramesBadFrameMidStream(t *testing.T) {
	wire := AppendFrame(nil, Frame{Type: MsgRequest, FlowID: 1, Value: 1})
	bad := len(wire)
	wire = AppendFrame(wire, Frame{Type: MsgRequest, FlowID: 2, Value: 1})
	wire[bad] = 0xFF // corrupt frame 1's magic
	got, rest, err := DecodeFrames(nil, wire)
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
	if len(got) != 1 || got[0].FlowID != 1 {
		t.Errorf("frames before the bad one: %+v, want just flow 1", got)
	}
	if len(rest) != FrameSize {
		t.Errorf("rest length %d, want the bad frame (%d bytes)", len(rest), FrameSize)
	}
}

// TestCodecZeroAllocs pins the codec hot paths at zero allocations:
// AppendFrame into a reusable buffer, WriteFrame to a concrete writer,
// DecodeFrame, and DecodeFrames into a reusable slice. WriteFrame used to
// heap-allocate its scratch slice on every call.
func TestCodecZeroAllocs(t *testing.T) {
	f := Frame{Type: MsgRequest, FlowID: 42, Value: 3.25}
	buf := make([]byte, 0, 4*FrameSize)
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendFrame(buf[:0], f)
	}); n != 0 {
		t.Errorf("AppendFrame: %v allocs/op, want 0", n)
	}
	wire := AppendFrame(nil, f)
	if n := testing.AllocsPerRun(100, func() {
		if _, err := DecodeFrame(wire); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeFrame: %v allocs/op, want 0", n)
	}
	var batch []byte
	for i := 0; i < 8; i++ {
		batch = AppendFrame(batch, f)
	}
	frames := make([]Frame, 0, 8)
	if n := testing.AllocsPerRun(100, func() {
		var err error
		frames, _, err = DecodeFrames(frames[:0], batch)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeFrames: %v allocs/op, want 0", n)
	}
	w := &countingWriter{}
	if n := testing.AllocsPerRun(100, func() {
		if err := WriteFrame(w, f); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("WriteFrame: %v allocs/op, want 0", n)
	}
	if w.n == 0 {
		t.Fatal("countingWriter never written to")
	}
}

// countingWriter is a concrete io.Writer that keeps WriteFrame's stack
// buffer from escaping (a bytes.Buffer would devirtualize too, but this
// makes the intent explicit).
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
