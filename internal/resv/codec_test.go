package resv

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	prop := func(typ uint8, flowID uint64, value float64) bool {
		f := Frame{
			Type:   MsgType(typ%uint8(MsgError)) + MsgRequest,
			FlowID: flowID,
			Value:  value,
		}
		if f.Type > MsgError {
			f.Type = MsgError
		}
		got, err := DecodeFrame(AppendFrame(nil, f))
		if err != nil {
			return false
		}
		same := got.Type == f.Type && got.FlowID == f.FlowID
		if math.IsNaN(f.Value) {
			return same && math.IsNaN(got.Value)
		}
		return same && got.Value == f.Value
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeFrame(make([]byte, 7)); !errors.Is(err, ErrBadFrame) {
		t.Error("short frame should fail")
	}
	good := AppendFrame(nil, Frame{Type: MsgGrant, FlowID: 1, Value: 2})
	bad := append([]byte(nil), good...)
	bad[0] = 0xFF // magic
	if _, err := DecodeFrame(bad); !errors.Is(err, ErrBadFrame) {
		t.Error("bad magic should fail")
	}
	bad = append([]byte(nil), good...)
	bad[2] = 99 // version
	if _, err := DecodeFrame(bad); !errors.Is(err, ErrBadFrame) {
		t.Error("bad version should fail")
	}
	bad = append([]byte(nil), good...)
	bad[3] = 0 // type below range
	if _, err := DecodeFrame(bad); !errors.Is(err, ErrBadFrame) {
		t.Error("type 0 should fail")
	}
	bad[3] = uint8(MsgError) + 1
	if _, err := DecodeFrame(bad); !errors.Is(err, ErrBadFrame) {
		t.Error("type beyond range should fail")
	}
}

func TestWriteReadFrame(t *testing.T) {
	var buf bytes.Buffer
	want := Frame{Type: MsgDeny, FlowID: 42, Value: 7.5}
	if err := WriteFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != FrameSize {
		t.Errorf("wire size %d, want %d", buf.Len(), FrameSize)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for typ := MsgRequest; typ <= MsgError; typ++ {
		if typ.String() == "" {
			t.Errorf("empty name for %d", typ)
		}
	}
	if MsgType(200).String() == "" {
		t.Error("unknown type should still render")
	}
}
