package resv

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame exercises the wire decoder with arbitrary bytes: it must
// never panic, and every successfully decoded frame must re-encode to the
// same bytes (canonical wire form).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Type: MsgRequest, FlowID: 1, Value: 1}))
	f.Add(AppendFrame(nil, Frame{Type: MsgError, FlowID: ^uint64(0), Value: -1}))
	f.Add(make([]byte, FrameSize))
	f.Add([]byte{0xBE, 0x05})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		out := AppendFrame(nil, fr)
		if !bytes.Equal(out, data) {
			// NaN payloads are the one non-canonical case: the bit
			// pattern may differ while the value is still NaN.
			if fr.Value == fr.Value { // not NaN
				t.Errorf("re-encode mismatch: % x vs % x", out, data)
			}
		}
	})
}

// FuzzDecodeDatagram exercises the datagram decoder with truncated,
// duplicated, and reordered payloads: it must never panic, must accept
// exactly what DecodeFrame accepts at exactly FrameSize bytes, and must
// reject every other length outright — a datagram is one frame or garbage,
// never a partial to buffer.
func FuzzDecodeDatagram(f *testing.F) {
	one := AppendFrame(nil, Frame{Type: MsgRequest, FlowID: 7, Value: 2})
	f.Add(one)                                      // clean datagram
	f.Add(one[:FrameSize-1])                        // truncated by one byte
	f.Add(one[:3])                                  // deep truncation
	f.Add(append(append([]byte{}, one...), one...)) // duplicated payload (two frames glued)
	swapped := append([]byte{}, one...)
	swapped[4], swapped[11] = swapped[11], swapped[4] // reordered bytes inside the frame
	f.Add(swapped)
	f.Add([]byte{})
	f.Add(make([]byte, FrameSize+1))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeDatagram(data)
		if len(data) != FrameSize {
			if err == nil {
				t.Fatalf("DecodeDatagram accepted %d bytes, want FrameSize-only", len(data))
			}
			return
		}
		want, werr := DecodeFrame(data)
		if (err == nil) != (werr == nil) {
			t.Fatalf("DecodeDatagram err=%v, DecodeFrame err=%v — must agree at FrameSize", err, werr)
		}
		if err == nil && fr != want && (fr.Value == fr.Value || want.Value == want.Value) { // NaN-tolerant
			t.Fatalf("DecodeDatagram %+v vs DecodeFrame %+v", fr, want)
		}
	})
}

// FuzzDecodeFrames exercises the multi-frame decoder: it must never panic,
// must agree with frame-at-a-time DecodeFrame on every prefix, and must
// leave a remainder that is exactly the undecoded tail (partial trailing
// frame, or everything from the first bad frame on).
func FuzzDecodeFrames(f *testing.F) {
	one := AppendFrame(nil, Frame{Type: MsgRequest, FlowID: 1, Value: 1})
	two := AppendFrame(one, Frame{Type: MsgGrant, FlowID: 2, Value: 0.5})
	f.Add(two)                                  // clean batch
	f.Add(two[:FrameSize+7])                    // split mid-frame
	f.Add(append([]byte{}, make([]byte, 3)...)) // short garbage
	corrupt := append([]byte(nil), two...)
	corrupt[FrameSize] = 0xFF // bad magic in frame k=1
	f.Add(corrupt)
	f.Add(append(append([]byte(nil), two...), 0xBE)) // trailing partial
	f.Fuzz(func(t *testing.T, data []byte) {
		frames, rest, err := DecodeFrames(nil, data)
		// The remainder must be a tail of the input aligned right after
		// the decoded frames.
		if len(frames)*FrameSize+len(rest) != len(data) {
			t.Fatalf("decoded %d frames + rest %d ≠ input %d", len(frames), len(rest), len(data))
		}
		// Each decoded frame must match the frame-at-a-time decoder.
		for i, fr := range frames {
			want, werr := DecodeFrame(data[i*FrameSize : (i+1)*FrameSize])
			if werr != nil {
				t.Fatalf("frame %d: DecodeFrames accepted what DecodeFrame rejects: %v", i, werr)
			}
			if fr != want && (fr.Value == fr.Value || want.Value == want.Value) { // NaN-tolerant
				t.Fatalf("frame %d: %+v vs %+v", i, fr, want)
			}
		}
		switch {
		case err != nil:
			// Error ⇒ the remainder starts with a full-size bad frame.
			if len(rest) < FrameSize {
				t.Fatalf("error %v with short rest %d", err, len(rest))
			}
			if _, werr := DecodeFrame(rest[:FrameSize]); werr == nil {
				t.Fatalf("error %v but remainder head decodes fine", err)
			}
		default:
			// No error ⇒ only a partial frame may remain.
			if len(rest) >= FrameSize {
				t.Fatalf("no error but %d undecoded bytes remain", len(rest))
			}
		}
	})
}
