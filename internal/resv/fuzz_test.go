package resv

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame exercises the wire decoder with arbitrary bytes: it must
// never panic, and every successfully decoded frame must re-encode to the
// same bytes (canonical wire form).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Type: MsgRequest, FlowID: 1, Value: 1}))
	f.Add(AppendFrame(nil, Frame{Type: MsgError, FlowID: ^uint64(0), Value: -1}))
	f.Add(make([]byte, FrameSize))
	f.Add([]byte{0xBE, 0x05})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		out := AppendFrame(nil, fr)
		if !bytes.Equal(out, data) {
			// NaN payloads are the one non-canonical case: the bit
			// pattern may differ while the value is still NaN.
			if fr.Value == fr.Value { // not NaN
				t.Errorf("re-encode mismatch: % x vs % x", out, data)
			}
		}
	})
}

// FuzzDecodeDatagram exercises the datagram decoder with truncated,
// duplicated, and reordered payloads: it must never panic, must accept
// exactly what DecodeFrame accepts at exactly FrameSize bytes, and must
// reject every other length outright — a datagram is one frame or garbage,
// never a partial to buffer.
func FuzzDecodeDatagram(f *testing.F) {
	one := AppendFrame(nil, Frame{Type: MsgRequest, FlowID: 7, Value: 2})
	f.Add(one)                                      // clean datagram
	f.Add(one[:FrameSize-1])                        // truncated by one byte
	f.Add(one[:3])                                  // deep truncation
	f.Add(append(append([]byte{}, one...), one...)) // duplicated payload (two frames glued)
	swapped := append([]byte{}, one...)
	swapped[4], swapped[11] = swapped[11], swapped[4] // reordered bytes inside the frame
	f.Add(swapped)
	f.Add([]byte{})
	f.Add(make([]byte, FrameSize+1))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeDatagram(data)
		if len(data) != FrameSize {
			if err == nil {
				t.Fatalf("DecodeDatagram accepted %d bytes, want FrameSize-only", len(data))
			}
			return
		}
		want, werr := DecodeFrame(data)
		if (err == nil) != (werr == nil) {
			t.Fatalf("DecodeDatagram err=%v, DecodeFrame err=%v — must agree at FrameSize", err, werr)
		}
		if err == nil && fr != want && (fr.Value == fr.Value || want.Value == want.Value) { // NaN-tolerant
			t.Fatalf("DecodeDatagram %+v vs DecodeFrame %+v", fr, want)
		}
	})
}

// FuzzDecodeBatch exercises the batch framing state machine with
// arbitrary frame streams: the collector must never panic, must accept a
// header iff its body length is in [1, MaxBatch], must accept exactly
// request/teardown body frames (anything else aborts the batch and drops
// the collected prefix), and a completed body must surface exactly the
// frames that were added, in order.
func FuzzDecodeBatch(f *testing.F) {
	clean := AppendFrame(nil, BatchHeader(2))
	clean = AppendFrame(clean, Frame{Type: MsgRequest, FlowID: 1, Value: 1})
	clean = AppendFrame(clean, Frame{Type: MsgTeardown, FlowID: 2})
	f.Add(clean)                                                                // complete two-op body
	f.Add(clean[:FrameSize+7])                                                  // header + torn body frame
	f.Add(AppendFrame(nil, BatchHeader(MaxBatch)))                              // max-length header, body missing
	f.Add(AppendFrame(nil, Frame{Type: MsgReserveBatch, FlowID: 0}))            // empty batch: rejected
	f.Add(AppendFrame(nil, Frame{Type: MsgReserveBatch, FlowID: MaxBatch + 1})) // oversized: rejected
	nested := AppendFrame(nil, BatchHeader(2))
	nested = AppendFrame(nested, BatchHeader(1)) // header inside a body: aborts
	f.Add(nested)
	aborted := AppendFrame(nil, BatchHeader(2))
	aborted = AppendFrame(aborted, Frame{Type: MsgRequest, FlowID: 3, Value: 1})
	aborted = AppendFrame(aborted, Frame{Type: MsgStats}) // illegal body frame
	f.Add(aborted)
	f.Fuzz(func(t *testing.T, data []byte) {
		frames, _, _ := DecodeFrames(nil, data)
		var bc BatchCollector
		var want []Frame
		for _, fr := range frames {
			switch {
			case bc.Active():
				done, err := bc.Add(fr)
				if err != nil {
					if fr.Type == MsgRequest || fr.Type == MsgTeardown {
						t.Fatalf("Add rejected a legal body frame %+v: %v", fr, err)
					}
					if bc.Active() {
						t.Fatal("collector still active after aborting the batch")
					}
					want = nil
					continue
				}
				want = append(want, fr)
				if done {
					ops := bc.Ops()
					if len(ops) != len(want) {
						t.Fatalf("completed body has %d ops, %d were added", len(ops), len(want))
					}
					for i, op := range ops {
						w := want[i]
						if op != w && (op.Value == op.Value || w.Value == w.Value) { // NaN-tolerant
							t.Fatalf("op %d: collected %+v, added %+v", i, op, w)
						}
					}
					want = nil
				} else if len(want) >= int(MaxBatch) {
					t.Fatalf("collector never completed after %d ops", len(want))
				}
			case fr.Type == MsgReserveBatch:
				err := bc.Begin(fr)
				legal := fr.FlowID >= 1 && fr.FlowID <= MaxBatch
				if (err == nil) != legal {
					t.Fatalf("Begin(len=%d): err=%v, want accept iff length in [1, %d]", fr.FlowID, err, MaxBatch)
				}
				if err == nil && !bc.Active() {
					t.Fatal("collector idle right after a legal header")
				}
			}
		}
	})
}

// FuzzDecodeFrames exercises the multi-frame decoder: it must never panic,
// must agree with frame-at-a-time DecodeFrame on every prefix, and must
// leave a remainder that is exactly the undecoded tail (partial trailing
// frame, or everything from the first bad frame on).
func FuzzDecodeFrames(f *testing.F) {
	one := AppendFrame(nil, Frame{Type: MsgRequest, FlowID: 1, Value: 1})
	two := AppendFrame(one, Frame{Type: MsgGrant, FlowID: 2, Value: 0.5})
	f.Add(two)                                  // clean batch
	f.Add(two[:FrameSize+7])                    // split mid-frame
	f.Add(append([]byte{}, make([]byte, 3)...)) // short garbage
	corrupt := append([]byte(nil), two...)
	corrupt[FrameSize] = 0xFF // bad magic in frame k=1
	f.Add(corrupt)
	f.Add(append(append([]byte(nil), two...), 0xBE)) // trailing partial
	f.Fuzz(func(t *testing.T, data []byte) {
		frames, rest, err := DecodeFrames(nil, data)
		// The remainder must be a tail of the input aligned right after
		// the decoded frames.
		if len(frames)*FrameSize+len(rest) != len(data) {
			t.Fatalf("decoded %d frames + rest %d ≠ input %d", len(frames), len(rest), len(data))
		}
		// Each decoded frame must match the frame-at-a-time decoder.
		for i, fr := range frames {
			want, werr := DecodeFrame(data[i*FrameSize : (i+1)*FrameSize])
			if werr != nil {
				t.Fatalf("frame %d: DecodeFrames accepted what DecodeFrame rejects: %v", i, werr)
			}
			if fr != want && (fr.Value == fr.Value || want.Value == want.Value) { // NaN-tolerant
				t.Fatalf("frame %d: %+v vs %+v", i, fr, want)
			}
		}
		switch {
		case err != nil:
			// Error ⇒ the remainder starts with a full-size bad frame.
			if len(rest) < FrameSize {
				t.Fatalf("error %v with short rest %d", err, len(rest))
			}
			if _, werr := DecodeFrame(rest[:FrameSize]); werr == nil {
				t.Fatalf("error %v but remainder head decodes fine", err)
			}
		default:
			// No error ⇒ only a partial frame may remain.
			if len(rest) >= FrameSize {
				t.Fatalf("no error but %d undecoded bytes remain", len(rest))
			}
		}
	})
}
