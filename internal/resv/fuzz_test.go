package resv

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame exercises the wire decoder with arbitrary bytes: it must
// never panic, and every successfully decoded frame must re-encode to the
// same bytes (canonical wire form).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Type: MsgRequest, FlowID: 1, Value: 1}))
	f.Add(AppendFrame(nil, Frame{Type: MsgError, FlowID: ^uint64(0), Value: -1}))
	f.Add(make([]byte, FrameSize))
	f.Add([]byte{0xBE, 0x05})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		out := AppendFrame(nil, fr)
		if !bytes.Equal(out, data) {
			// NaN payloads are the one non-canonical case: the bit
			// pattern may differ while the value is still NaN.
			if fr.Value == fr.Value { // not NaN
				t.Errorf("re-encode mismatch: % x vs % x", out, data)
			}
		}
	})
}
