package resv

import (
	"time"

	"beqos/internal/obs"
)

// ServerMetrics is the admission plane's instrument set, always on: every
// Server owns one, registered in its private obs.Registry (Server.Registry
// serves it at /metrics). All instruments are atomics; the reserve→grant
// hot path updates them with one batched flush per decoded frame batch, so
// instrumentation adds no allocation and no per-frame clock reads.
type ServerMetrics struct {
	// Reserves counts admission requests (MsgRequest frames); Grants and
	// Denials partition their outcomes (plus Errors for malformed or
	// duplicate requests).
	Reserves *obs.Counter
	Grants   *obs.Counter
	Denials  *obs.Counter
	// Teardowns counts explicit MsgTeardown releases; Releases counts
	// flows released implicitly by a connection drop; Expiries counts
	// soft-state TTL expirations.
	Teardowns *obs.Counter
	Releases  *obs.Counter
	Expiries  *obs.Counter
	// Refreshes and Stats count the remaining request types; Errors counts
	// MsgError replies of any cause.
	Refreshes *obs.Counter
	Stats     *obs.Counter
	Errors    *obs.Counter
	// DupReserves counts retransmitted reserves answered from the live
	// entry (datagram transport): grant frames re-sent without a second
	// admission. Grants + DupReserves = grant frames on the wire;
	// Grants alone = admissions.
	DupReserves *obs.Counter
	// Datagrams counts UDP datagrams received; BadDatagrams counts the
	// ones dropped before dispatch (wrong size, bad magic/version/type).
	Datagrams    *obs.Counter
	BadDatagrams *obs.Counter
	// Connections tracks live client connections; UDPPeers tracks live
	// datagram virtual connections (distinct source addresses holding
	// flows or mid-dispatch).
	Connections *obs.Gauge
	UDPPeers    *obs.Gauge
	// BatchFrames is the frames-per-read-batch histogram — the batched
	// frame I/O's coalescing factor. RequestNS is the per-request service
	// time in nanoseconds (decode + dispatch, amortized over the batch).
	BatchFrames *obs.Histogram
	RequestNS   *obs.Histogram
}

// newServerMetrics registers the server instrument set in reg.
func newServerMetrics(reg *obs.Registry) *ServerMetrics {
	return &ServerMetrics{
		Reserves:     reg.Counter("resv_reserves_total", "admission requests received"),
		Grants:       reg.Counter("resv_grants_total", "reservations granted"),
		Denials:      reg.Counter("resv_denials_total", "reservations denied (link full)"),
		Teardowns:    reg.Counter("resv_teardowns_total", "explicit teardowns"),
		Releases:     reg.Counter("resv_releases_total", "flows released by connection drops"),
		Expiries:     reg.Counter("resv_expiries_total", "soft-state TTL expirations"),
		Refreshes:    reg.Counter("resv_refreshes_total", "soft-state refreshes"),
		Stats:        reg.Counter("resv_stats_total", "stats requests"),
		Errors:       reg.Counter("resv_errors_total", "error replies"),
		DupReserves:  reg.Counter("resv_dup_reserves_total", "retransmitted reserves answered from the live grant"),
		Datagrams:    reg.Counter("resv_datagrams_total", "UDP datagrams received"),
		BadDatagrams: reg.Counter("resv_bad_datagrams_total", "UDP datagrams dropped before dispatch"),
		Connections:  reg.Gauge("resv_connections", "live client connections"),
		UDPPeers:     reg.Gauge("resv_udp_peers", "live datagram virtual connections"),
		BatchFrames:  reg.Histogram("resv_batch_frames", "frames per decoded read batch"),
		RequestNS:    reg.Histogram("resv_request_ns", "per-request service time, nanoseconds"),
	}
}

// batchStats tallies one frame batch's outcomes in plain locals; the
// handler flushes them to the shared atomics once per batch, keeping the
// per-frame cost at zero even under heavy pipelining.
type batchStats struct {
	reserves, grants, denials         uint64
	teardowns, refreshes, stats, errs uint64
	// dups counts grant frames re-sent for retransmitted reserves;
	// dispatch moves them out of grants so grants counts admissions only.
	dups uint64
}

// count classifies one dispatched request/reply pair.
func (b *batchStats) count(req, reply Frame) {
	if req.Type == MsgRequest {
		b.reserves++
	}
	switch reply.Type {
	case MsgGrant:
		b.grants++
	case MsgDeny:
		b.denials++
	case MsgTeardownOK:
		b.teardowns++
	case MsgRefreshOK:
		b.refreshes++
	case MsgStatsReply:
		b.stats++
	case MsgError:
		b.errs++
	}
}

// flushBatch folds one batch into the shared instruments: one atomic add
// per touched counter, one histogram sample for the batch size, and the
// batch's service time spread evenly over its frames (RecordN — a single
// atomic add).
func (m *ServerMetrics) flushBatch(b *batchStats, nframes int, elapsed time.Duration) {
	if nframes <= 0 {
		return
	}
	m.BatchFrames.Record(uint64(nframes))
	m.RequestNS.RecordN(uint64(elapsed)/uint64(nframes), uint64(nframes))
	if b.reserves > 0 {
		m.Reserves.Add(b.reserves)
	}
	if b.grants > 0 {
		m.Grants.Add(b.grants)
	}
	if b.denials > 0 {
		m.Denials.Add(b.denials)
	}
	if b.teardowns > 0 {
		m.Teardowns.Add(b.teardowns)
	}
	if b.refreshes > 0 {
		m.Refreshes.Add(b.refreshes)
	}
	if b.stats > 0 {
		m.Stats.Add(b.stats)
	}
	if b.errs > 0 {
		m.Errors.Add(b.errs)
	}
	if b.dups > 0 {
		m.DupReserves.Add(b.dups)
	}
	*b = batchStats{}
}

// ClientMetrics instruments a Client (or several sharing one set): request
// and outcome counts, retry attempts, and the round-trip-time histogram.
// All updates are atomic, so one set may be shared across connections —
// the loadgen harness aggregates its whole endpoint pool this way.
type ClientMetrics struct {
	Requests  *obs.Counter // reservation requests sent
	Grants    *obs.Counter
	Denials   *obs.Counter
	Teardowns *obs.Counter
	Refreshes *obs.Counter
	Retries   *obs.Counter // retry attempts performed by ReserveWithRetry
	Errors    *obs.Counter // MsgError replies
	Failures  *obs.Counter // transport-level round-trip failures
	// Retransmits counts datagram re-sends after a reply timeout; Flights
	// is the sends-per-round-trip histogram (1 = no loss). Both stay zero
	// on stream transports.
	Retransmits *obs.Counter
	Flights     *obs.Histogram
	RTT         *obs.Histogram
}

// NewClientMetrics registers a client instrument set in reg.
func NewClientMetrics(reg *obs.Registry) *ClientMetrics {
	return &ClientMetrics{
		Requests:    reg.Counter("resv_client_requests_total", "reservation requests sent"),
		Grants:      reg.Counter("resv_client_grants_total", "grants received"),
		Denials:     reg.Counter("resv_client_denials_total", "denials received"),
		Teardowns:   reg.Counter("resv_client_teardowns_total", "teardown confirmations received"),
		Refreshes:   reg.Counter("resv_client_refreshes_total", "refresh confirmations received"),
		Retries:     reg.Counter("resv_client_retries_total", "retry attempts performed"),
		Errors:      reg.Counter("resv_client_errors_total", "error replies received"),
		Failures:    reg.Counter("resv_client_failures_total", "transport round-trip failures"),
		Retransmits: reg.Counter("resv_client_retransmits_total", "datagram re-sends after reply timeout"),
		Flights:     reg.Histogram("resv_client_flights", "datagram sends per round trip"),
		RTT:         reg.Histogram("resv_client_rtt_ns", "request round-trip time, nanoseconds"),
	}
}

// observe classifies one round trip.
func (m *ClientMetrics) observe(req, reply Frame, rtt time.Duration, err error) {
	if req.Type == MsgRequest {
		m.Requests.Inc()
	}
	if err != nil {
		m.Failures.Inc()
		return
	}
	m.RTT.Record(uint64(rtt))
	switch reply.Type {
	case MsgGrant:
		m.Grants.Inc()
	case MsgDeny:
		m.Denials.Inc()
	case MsgTeardownOK:
		m.Teardowns.Inc()
	case MsgRefreshOK:
		m.Refreshes.Inc()
	case MsgError:
		m.Errors.Inc()
	}
}

// observeBatch classifies one batch round trip op by op, so client
// tallies stay in exact agreement with the server's per-op counters: a
// request op's verdict bit maps to a grant or denial, a teardown op's to
// a teardown or error. (A duplicate request also clears its bit — the
// server counts it as an error — but well-behaved clients never send
// duplicates, so the grant/denial equality the load harness checks
// holds exactly.)
func (m *ClientMetrics) observeBatch(ops []Frame, v BatchVerdict, rtt time.Duration, err error) {
	var reqs uint64
	for _, f := range ops {
		if f.Type == MsgRequest {
			reqs++
		}
	}
	if reqs > 0 {
		m.Requests.Add(reqs)
	}
	if err != nil {
		m.Failures.Inc()
		return
	}
	m.RTT.Record(uint64(rtt))
	var grants, denials, teardowns, errs uint64
	for i, f := range ops {
		switch ok := v.Granted(i); {
		case f.Type == MsgRequest && ok:
			grants++
		case f.Type == MsgRequest:
			denials++
		case ok:
			teardowns++
		default:
			errs++
		}
	}
	if grants > 0 {
		m.Grants.Add(grants)
	}
	if denials > 0 {
		m.Denials.Add(denials)
	}
	if teardowns > 0 {
		m.Teardowns.Add(teardowns)
	}
	if errs > 0 {
		m.Errors.Add(errs)
	}
}

// TraceKind tags a TraceEvent with the admission-path decision it reports.
type TraceKind uint8

const (
	// TraceGrant and TraceDeny report admission decisions; Value carries
	// the granted share (or rate) and the active count respectively.
	TraceGrant TraceKind = iota + 1
	TraceDeny
	// TraceTeardown reports an explicit release, TraceExpire a soft-state
	// TTL expiry, TraceRelease a connection-scoped release.
	TraceTeardown
	TraceExpire
	TraceRelease
	// TraceRefresh reports a soft-state renewal.
	TraceRefresh
	// TraceError reports an error reply (bad request, duplicate flow,
	// unknown flow); Value carries the ErrorCode.
	TraceError
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceGrant:
		return "grant"
	case TraceDeny:
		return "deny"
	case TraceTeardown:
		return "teardown"
	case TraceExpire:
		return "expire"
	case TraceRelease:
		return "release"
	case TraceRefresh:
		return "refresh"
	case TraceError:
		return "error"
	default:
		return "trace(?)"
	}
}

// TraceEvent is one admission-path decision, delivered synchronously to
// the Server.Trace hook. The struct is passed by value — installing a hook
// adds a call and a branch to the hot path but no allocation, so tests and
// the load harness can observe decisions without log scraping.
type TraceEvent struct {
	Kind   TraceKind
	FlowID uint64
	// Value is kind-dependent: the granted share or rate (grant), the
	// active count at denial (deny), or the ErrorCode (error).
	Value float64
	// Active is the live reservation count after the event.
	Active int64
}
