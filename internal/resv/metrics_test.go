package resv

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"beqos/internal/utility"
)

// startPair wires a client to an in-process server over net.Pipe.
func startPair(t *testing.T, s *Server) *Client {
	t.Helper()
	cEnd, sEnd := net.Pipe()
	go s.HandleConn(sEnd)
	c := NewClient(cEnd)
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestServerMetricsCounters drives the protocol surface through a real
// connection and checks the always-on instrument set: the counters must
// agree exactly with the outcomes the client observed. Counter flushes are
// batch-granular but a flush always precedes the batch's reply write, so by
// the time a reply arrives its outcome is visible in the metrics.
func TestServerMetricsCounters(t *testing.T) {
	util := utility.NewAdaptive()
	s, err := NewServer(2, util) // kmax = 2
	if err != nil {
		t.Fatal(err)
	}
	c := startPair(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	for id := uint64(1); id <= 2; id++ {
		if ok, _, err := c.Reserve(ctx, id, 1); err != nil || !ok {
			t.Fatalf("reserve %d: ok=%v err=%v", id, ok, err)
		}
	}
	if ok, _, err := c.Reserve(ctx, 3, 1); err != nil || ok {
		t.Fatalf("reserve beyond kmax: ok=%v err=%v", ok, err)
	}
	if _, err := c.Refresh(ctx, 1); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if err := c.Teardown(ctx, 1); err != nil {
		t.Fatalf("teardown: %v", err)
	}
	if _, _, err := c.Stats(ctx); err != nil {
		t.Fatalf("stats: %v", err)
	}
	// A duplicate flow ID must be rejected with an error reply.
	if _, _, err := c.Reserve(ctx, 2, 1); err == nil {
		t.Fatal("duplicate reserve should error")
	}

	m := s.Metrics()
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"reserves", m.Reserves.Load(), 4},
		{"grants", m.Grants.Load(), 2},
		{"denials", m.Denials.Load(), 1},
		{"teardowns", m.Teardowns.Load(), 1},
		{"refreshes", m.Refreshes.Load(), 1},
		{"stats", m.Stats.Load(), 1},
		{"errors", m.Errors.Load(), 1},
		{"expiries", m.Expiries.Load(), 0},
		{"releases", m.Releases.Load(), 0},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, ck.got, ck.want)
		}
	}
	if got := m.Connections.Load(); got != 1 {
		t.Errorf("connections = %d, want 1", got)
	}
	bf := m.BatchFrames.Snapshot()
	if bf.Count == 0 {
		t.Error("batch-frames histogram is empty")
	}
	rq := m.RequestNS.Snapshot()
	// One histogram sample per dispatched frame: 4 reserves (including the
	// duplicate) + refresh + teardown + stats = 7.
	if rq.Count != 7 {
		t.Errorf("request-ns samples = %d, want 7", rq.Count)
	}

	// The connection-scoped release path: drop the client with flow 2 live.
	_ = c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for m.Releases.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection-scoped release was never counted")
		}
		time.Sleep(time.Millisecond)
	}
	if got := m.Releases.Load(); got != 1 {
		t.Errorf("releases = %d, want 1", got)
	}
}

// TestServerMetricsExpiry checks the soft-state expiry counter against a
// TTL server with a stalled client.
func TestServerMetricsExpiry(t *testing.T) {
	util := utility.NewAdaptive()
	s, err := NewServerTTL(4, util, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := startPair(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if ok, _, err := c.Reserve(ctx, 1, 1); err != nil || !ok {
		t.Fatalf("reserve: ok=%v err=%v", ok, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Expiries.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("expiry was never counted")
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.Active(); got != 0 {
		t.Errorf("active = %d after expiry, want 0", got)
	}
}

// TestTraceHookEvents pins the trace hook's event stream for a scripted
// request sequence: every admission-path decision must surface exactly
// once, in order, with its kind-specific payload.
func TestTraceHookEvents(t *testing.T) {
	util := utility.NewAdaptive()
	s, err := NewServer(2, util) // kmax = 2
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []TraceEvent
	s.Trace = func(ev TraceEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	c := startPair(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if ok, _, err := c.Reserve(ctx, 1, 1); err != nil || !ok {
		t.Fatalf("reserve: ok=%v err=%v", ok, err)
	}
	// Duplicate with free capacity: the claim succeeds but install finds
	// the ID taken, so the slot rolls back and an error reply goes out.
	if _, _, err := c.Reserve(ctx, 1, 1); err == nil {
		t.Fatal("duplicate reserve should error")
	}
	if ok, _, err := c.Reserve(ctx, 2, 1); err != nil || !ok {
		t.Fatalf("reserve: ok=%v err=%v", ok, err)
	}
	if ok, _, err := c.Reserve(ctx, 3, 1); err != nil || ok {
		t.Fatalf("reserve at full link: ok=%v err=%v", ok, err)
	}
	if err := c.Teardown(ctx, 1); err != nil {
		t.Fatalf("teardown: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	wantKinds := []TraceKind{TraceGrant, TraceError, TraceGrant, TraceDeny, TraceTeardown}
	if len(events) != len(wantKinds) {
		t.Fatalf("got %d trace events %v, want %d", len(events), events, len(wantKinds))
	}
	for i, want := range wantKinds {
		if events[i].Kind != want {
			t.Errorf("event %d kind = %s, want %s", i, events[i].Kind, want)
		}
	}
	if g := events[0]; g.FlowID != 1 || g.Value != 1 || g.Active != 1 {
		t.Errorf("grant event = %+v, want flow 1, share 1, active 1", g)
	}
	if e := events[1]; e.FlowID != 1 || e.Value != float64(ErrCodeDuplicateFlow) {
		t.Errorf("error event = %+v, want flow 1 with code %d", e, ErrCodeDuplicateFlow)
	}
	if d := events[3]; d.FlowID != 3 || d.Active != 2 {
		t.Errorf("deny event = %+v, want flow 3 at active 2", d)
	}
	if td := events[4]; td.FlowID != 1 || td.Active != 1 {
		t.Errorf("teardown event = %+v, want flow 1, active 1", td)
	}
}

// TestInstrumentedDispatchZeroAlloc pins the fully instrumented hot path —
// dispatch with metrics tally, trace hook installed, and the per-batch
// flush — at zero allocations per reserve→teardown cycle. This is the
// in-process counterpart of the BenchmarkServerThroughput allocs/op gate.
func TestInstrumentedDispatchZeroAlloc(t *testing.T) {
	util := utility.NewAdaptive()
	s, err := NewServer(8, util)
	if err != nil {
		t.Fatal(err)
	}
	var traced uint64
	s.Trace = func(ev TraceEvent) { traced++ }
	c := &conn{flows: make(map[uint64]struct{})}
	var bs batchStats
	reserve := Frame{Type: MsgRequest, FlowID: 42, Value: 1}
	teardown := Frame{Type: MsgTeardown, FlowID: 42}
	allocs := testing.AllocsPerRun(1000, func() {
		s.dispatch(c, reserve, &bs)
		s.dispatch(c, teardown, &bs)
		s.metrics.flushBatch(&bs, 2, 1500*time.Nanosecond)
	})
	if allocs != 0 {
		t.Errorf("instrumented dispatch allocates %v/op, want 0", allocs)
	}
	if traced == 0 {
		t.Error("trace hook never fired")
	}
}
