package resv

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// The multiplexed stream transport (DESIGN.md §11): one TCP connection
// carries many concurrent flows. Callers from any number of goroutines
// hand frames to a single writer goroutine, which coalesces whatever has
// queued into one vectored write (net.Buffers → writev), while a single
// reader goroutine fans replies back out to the waiting callers. The
// server already pipelines — it answers frames in arrival order on each
// connection — so no framing changes are needed: replies to flow-scoped
// requests are matched by FlowID, and stats replies (whose FlowID field
// carries kmax, not a flow) are matched first-in-first-out, which arrival
// order makes exact.
//
// Compared to connection-per-flow this removes the goroutine, socket, and
// kernel buffers per flow: 100k flows cost one connection, two goroutines,
// and a map entry per in-flight request. The trade is RSVP fate-sharing
// granularity — dropping the connection releases every flow it carries.

// maxMuxBatch caps frames per vectored flush. 64 frames is 1280 bytes —
// one TCP segment — and matches the server's read-batch horizon.
const maxMuxBatch = 64

// muxCall is one in-flight request's rendezvous. done is buffered so the
// deliverer never blocks; reply/err are valid after a receive from done.
type muxCall struct {
	reply Frame
	err   error
	// abandoned marks a stats call whose waiter gave up (context expired).
	// It keeps its statsq slot — the reply is still on its way, and FIFO
	// matching needs the slot consumed by exactly that reply. Guarded by
	// MuxClient.mu.
	abandoned bool
	done      chan struct{}
}

// muxSend is one send-queue item: a single frame, or a complete batch
// whose header and body frames must stay contiguous on the wire (a batch
// is one item, so another sender's frame can never land inside it).
type muxSend struct {
	f     Frame
	batch *muxBatch // nil for single frames
}

// muxBatch is a pooled, self-contained copy of a batch's frames (header +
// body). The copy is taken at enqueue time so the caller may return (e.g.
// on context cancellation) while the writer still owns the buffer.
type muxBatch struct {
	n      int
	frames [MaxBatch + 1]Frame
}

// MuxClient multiplexes many flows' requests over one stream connection.
// Methods are safe for concurrent use and do not serialize on each other:
// requests from different goroutines coalesce into shared batched writes.
// At most one request may be in flight per flow ID at a time.
type MuxClient struct {
	nc      net.Conn
	metrics *ClientMetrics

	mu      sync.Mutex
	pending map[uint64]*muxCall // in-flight flow-scoped requests
	statsq  []*muxCall          // in-flight stats requests, send order
	batchq  []*muxCall          // in-flight batch requests, send order
	closed  bool
	err     error // terminal error, set once with closed

	// batchMu serializes batch senders across [register in batchq, enqueue
	// on sendq], so batchq order always matches wire order — the FIFO reply
	// matching depends on it. fail never takes it, so a sender blocked on a
	// full sendq under batchMu is still unblocked by m.dead.
	batchMu sync.Mutex

	// onGossip, if non-nil, receives one-way MsgGossip frames the server
	// piggybacks on this connection's replies (cluster plane). Set via
	// OnGossip before issuing requests; called from the reader goroutine.
	onGossip func(Frame)

	sendq     chan muxSend
	dead      chan struct{} // closed by fail; unblocks senders and the writer
	pool      sync.Pool
	batchPool sync.Pool
	wg        sync.WaitGroup
}

// NewMuxClient wraps an established stream connection in a multiplexing
// client and starts its writer and reader goroutines. Close releases all
// flows reserved through it (connection-scoped soft state, as with Client).
func NewMuxClient(nc net.Conn) *MuxClient {
	m := &MuxClient{
		nc:      nc,
		pending: make(map[uint64]*muxCall),
		sendq:   make(chan muxSend, maxMuxBatch),
		dead:    make(chan struct{}),
	}
	m.pool.New = func() interface{} {
		return &muxCall{done: make(chan struct{}, 1)}
	}
	m.batchPool.New = func() interface{} { return new(muxBatch) }
	m.wg.Add(2)
	go m.writer()
	go m.reader()
	return m
}

// DialMux connects to a resv server and multiplexes flows over the
// resulting stream connection.
func DialMux(ctx context.Context, network, addr string) (*MuxClient, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, fmt.Errorf("resv: dial %s %s: %w", network, addr, err)
	}
	return NewMuxClient(nc), nil
}

// SetMetrics installs a client instrument set (see NewClientMetrics); nil
// disables instrumentation. Not safe to call concurrently with requests.
func (m *MuxClient) SetMetrics(cm *ClientMetrics) { m.metrics = cm }

// Close tears down the connection and fails every in-flight request; the
// server releases all reservations held through the connection.
func (m *MuxClient) Close() error {
	m.fail(net.ErrClosed)
	err := m.nc.Close()
	m.wg.Wait()
	return err
}

// fail marks the client dead with err (first caller wins), fails every
// in-flight call, and unblocks queued senders.
func (m *MuxClient) fail(err error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.err = err
	pending, statsq, batchq := m.pending, m.statsq, m.batchq
	m.pending, m.statsq, m.batchq = nil, nil, nil
	close(m.dead)
	m.mu.Unlock()
	for _, call := range pending {
		call.err = err
		call.done <- struct{}{}
	}
	for _, call := range statsq {
		call.err = err
		call.done <- struct{}{}
	}
	for _, call := range batchq {
		call.err = err
		call.done <- struct{}{}
	}
}

// writer drains sendq into batched writes: every item queued by the time
// the writer gets scheduled is encoded into one contiguous buffer and goes
// out in a single write syscall. The buffer is reused across flushes, so
// the steady state allocates nothing; a batch item's pooled frame copy is
// recycled as soon as it is encoded.
func (m *MuxClient) writer() {
	defer m.wg.Done()
	buf := make([]byte, 0, (MaxBatch+1)*FrameSize)
	for {
		var s muxSend
		select {
		case s = <-m.sendq:
		case <-m.dead:
			return
		}
		buf = m.appendSend(buf[:0], s)
	coalesce:
		for n := 1; n < maxMuxBatch; n++ {
			select {
			case s = <-m.sendq:
				buf = m.appendSend(buf, s)
			default:
				break coalesce
			}
		}
		if _, err := m.nc.Write(buf); err != nil {
			m.fail(fmt.Errorf("resv: mux write: %w", err))
			return
		}
	}
}

// appendSend encodes one send item into buf and recycles its batch copy.
func (m *MuxClient) appendSend(buf []byte, s muxSend) []byte {
	if s.batch == nil {
		return AppendFrame(buf, s.f)
	}
	for i := 0; i < s.batch.n; i++ {
		buf = AppendFrame(buf, s.batch.frames[i])
	}
	m.batchPool.Put(s.batch)
	return buf
}

// reader fans replies back out: flow-scoped replies to their pending call
// by FlowID, stats and batch replies to their FIFO heads, one-way gossip
// frames to the OnGossip hook. A reply with no waiter — a call canceled
// between send and reply — is dropped on the floor.
func (m *MuxClient) reader() {
	defer m.wg.Done()
	br := bufio.NewReaderSize(m.nc, maxMuxBatch*FrameSize)
	for {
		reply, err := ReadFrame(br)
		if err != nil {
			m.fail(fmt.Errorf("resv: mux read: %w", err))
			return
		}
		if reply.Type == MsgGossip {
			// One-way: never matches a call, and must not be mistaken for a
			// flow-scoped reply (its FlowID packs link index and version).
			if m.onGossip != nil {
				m.onGossip(reply)
			}
			continue
		}
		m.mu.Lock()
		var call *muxCall
		switch reply.Type {
		case MsgStatsReply:
			call = popFIFO(&m.statsq, &m.pool)
		case MsgReserveBatchReply:
			call = popFIFO(&m.batchq, &m.pool)
		default:
			if c, ok := m.pending[reply.FlowID]; ok {
				delete(m.pending, reply.FlowID)
				call = c
			}
		}
		m.mu.Unlock()
		if call != nil {
			call.reply = reply
			call.done <- struct{}{}
		}
	}
}

// popFIFO consumes the head of a send-ordered reply queue (statsq or
// batchq). An abandoned slot — its waiter gave up — is recycled here and
// reported as no waiter. Caller holds m.mu.
func popFIFO(q *[]*muxCall, pool *sync.Pool) *muxCall {
	s := *q
	if len(s) == 0 {
		return nil
	}
	call := s[0]
	// Shift rather than re-slice: the queue is at most a few entries deep,
	// and keeping the backing array's base lets appends reuse it forever —
	// (*q)[1:] would bleed capacity off the front and reallocate steadily.
	copy(s, s[1:])
	s[len(s)-1] = nil
	*q = s[:len(s)-1]
	if call.abandoned {
		// The waiter is gone; the slot existed only to keep the FIFO
		// aligned. Recycle the call here.
		call.abandoned = false
		pool.Put(call)
		return nil
	}
	return call
}

// roundTrip registers a call, queues the frame, and waits for its reply or
// the context. The zero-loss fast path — register, channel send, channel
// receive, recycle — allocates nothing.
func (m *MuxClient) roundTrip(ctx context.Context, req Frame) (Frame, error) {
	call := m.pool.Get().(*muxCall)
	call.reply, call.err = Frame{}, nil
	var t0 time.Time
	if m.metrics != nil {
		t0 = time.Now()
	}
	stats := req.Type == MsgStats

	m.mu.Lock()
	if m.closed {
		err := m.err
		m.mu.Unlock()
		m.pool.Put(call)
		return Frame{}, fmt.Errorf("resv: mux: client closed: %w", err)
	}
	if stats {
		m.statsq = append(m.statsq, call)
	} else {
		if _, dup := m.pending[req.FlowID]; dup {
			m.mu.Unlock()
			m.pool.Put(call)
			return Frame{}, fmt.Errorf("resv: mux: flow %d already has a request in flight", req.FlowID)
		}
		m.pending[req.FlowID] = call
	}
	m.mu.Unlock()

	select {
	case m.sendq <- muxSend{f: req}:
	case <-m.dead:
		// fail already delivered the error into the call.
		<-call.done
		return m.finish(req, call, t0)
	case <-ctx.Done():
		// The frame never reached sendq: no reply will come, so the
		// registration can be withdrawn outright (for stats, the FIFO slot
		// must go too — nothing will consume it).
		m.withdraw(req, call, stats)
		return Frame{}, ctx.Err()
	}

	select {
	case <-call.done:
		return m.finish(req, call, t0)
	case <-ctx.Done():
		if m.abandon(req, call, stats) {
			if m.metrics != nil {
				m.metrics.observe(req, Frame{}, 0, ctx.Err())
			}
			return Frame{}, ctx.Err()
		}
		// Delivery raced the cancellation; the reply is here — use it.
		<-call.done
		return m.finish(req, call, t0)
	}
}

// Post queues a frame for the next batched write without registering a
// reply rendezvous — fire-and-forget, for one-way frames (MsgGossip) that
// the peer never answers. The frame coalesces into whatever request batch
// the writer flushes next, so piggybacked gossip costs its 20 bytes and no
// extra syscall. Post never blocks on a full send queue: a queue the writer
// is not draining means the connection is stalled or dead, and gossip is
// refreshed continuously — dropping one snapshot is always safe. queued
// reports whether the frame actually made the queue, so senders tracking
// what the peer has seen (gossip suppression) don't mark a dropped
// snapshot as delivered.
func (m *MuxClient) Post(f Frame) (queued bool, err error) {
	select {
	case <-m.dead:
		m.mu.Lock()
		err := m.err
		m.mu.Unlock()
		return false, fmt.Errorf("resv: mux: client closed: %w", err)
	default:
	}
	select {
	case m.sendq <- muxSend{f: f}:
		return true, nil
	default: // queue full: drop, the next snapshot supersedes this one
		return false, nil
	}
}

// OnGossip installs a hook receiving one-way MsgGossip frames arriving on
// this connection (reply-piggybacked occupancy from a cluster peer). The
// hook runs on the reader goroutine and must be fast. Not safe to call
// concurrently with traffic — set it right after NewMuxClient.
func (m *MuxClient) OnGossip(h func(Frame)) { m.onGossip = h }

// ReserveBatch submits ops — 1..MaxBatch body frames, each a MsgRequest or
// MsgTeardown — as one MsgReserveBatch and returns the per-op verdict
// bitmap plus the count-mode grant share (0 in bandwidth mode). Ops are
// processed by the server in order with exact partial-grant semantics at
// the admission boundary; bit i of the verdict reports op i's outcome.
// The ops slice is copied before this call returns a cancellation, so the
// caller may reuse it freely.
func (m *MuxClient) ReserveBatch(ctx context.Context, ops []Frame) (BatchVerdict, float64, error) {
	n := len(ops)
	if n < 1 || n > MaxBatch {
		return 0, 0, fmt.Errorf("resv: mux: batch of %d ops outside [1, %d]", n, MaxBatch)
	}
	call := m.pool.Get().(*muxCall)
	call.reply, call.err = Frame{}, nil
	b := m.batchPool.Get().(*muxBatch)
	b.frames[0] = BatchHeader(n)
	copy(b.frames[1:], ops)
	b.n = n + 1
	var t0 time.Time
	if m.metrics != nil {
		t0 = time.Now()
	}

	// Register and enqueue under batchMu so batchq order matches wire
	// order even with concurrent batch senders — the reader matches batch
	// replies strictly FIFO.
	m.batchMu.Lock()
	m.mu.Lock()
	if m.closed {
		err := m.err
		m.mu.Unlock()
		m.batchMu.Unlock()
		m.pool.Put(call)
		m.batchPool.Put(b)
		return 0, 0, fmt.Errorf("resv: mux: client closed: %w", err)
	}
	m.batchq = append(m.batchq, call)
	m.mu.Unlock()

	select {
	case m.sendq <- muxSend{batch: b}:
		m.batchMu.Unlock()
	case <-m.dead:
		m.batchMu.Unlock()
		m.batchPool.Put(b)
		// fail already delivered the error into the call.
		<-call.done
		return m.finishBatch(ops, call, t0)
	case <-ctx.Done():
		m.batchMu.Unlock()
		m.batchPool.Put(b)
		m.withdrawBatch(call)
		if m.metrics != nil {
			m.metrics.observeBatch(ops, 0, 0, ctx.Err())
		}
		return 0, 0, ctx.Err()
	}

	select {
	case <-call.done:
		return m.finishBatch(ops, call, t0)
	case <-ctx.Done():
		if m.abandonBatch(call) {
			if m.metrics != nil {
				m.metrics.observeBatch(ops, 0, 0, ctx.Err())
			}
			return 0, 0, ctx.Err()
		}
		// Delivery raced the cancellation; the reply is here — use it.
		<-call.done
		return m.finishBatch(ops, call, t0)
	}
}

// finishBatch consumes a delivered batch call.
func (m *MuxClient) finishBatch(ops []Frame, call *muxCall, t0 time.Time) (BatchVerdict, float64, error) {
	reply, err := call.reply, call.err
	m.pool.Put(call)
	if err == nil && reply.Type != MsgReserveBatchReply {
		err = fmt.Errorf("resv: mux: unexpected %s reply to a batch", reply.Type)
	}
	v := BatchVerdict(reply.FlowID)
	if err != nil {
		v = 0
	}
	if m.metrics != nil {
		m.metrics.observeBatch(ops, v, time.Since(t0), err)
	}
	if err != nil {
		return 0, 0, err
	}
	return v, reply.Value, nil
}

// withdrawBatch removes a batch call whose frames were never sent. Caller
// does not hold m.mu.
func (m *MuxClient) withdrawBatch(call *muxCall) {
	m.mu.Lock()
	for i, c := range m.batchq {
		if c == call {
			m.batchq = append(m.batchq[:i], m.batchq[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	m.pool.Put(call)
}

// abandonBatch gives up on a sent batch call, keeping its FIFO slot for
// alignment (the reader recycles it). It reports false when delivery
// already happened.
func (m *MuxClient) abandonBatch(call *muxCall) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.batchq {
		if c == call {
			call.abandoned = true
			return true
		}
	}
	return false
}

// finish consumes a delivered call: record metrics, recycle, return.
func (m *MuxClient) finish(req Frame, call *muxCall, t0 time.Time) (Frame, error) {
	reply, err := call.reply, call.err
	m.pool.Put(call)
	if m.metrics != nil {
		m.metrics.observe(req, reply, time.Since(t0), err)
	}
	if err != nil {
		return Frame{}, err
	}
	return reply, nil
}

// withdraw removes a call whose frame was never sent. Caller does not hold
// m.mu.
func (m *MuxClient) withdraw(req Frame, call *muxCall, stats bool) {
	m.mu.Lock()
	if stats {
		for i, c := range m.statsq {
			if c == call {
				m.statsq = append(m.statsq[:i], m.statsq[i+1:]...)
				break
			}
		}
	} else if m.pending[req.FlowID] == call {
		delete(m.pending, req.FlowID)
	}
	m.mu.Unlock()
	m.pool.Put(call)
}

// abandon gives up on a sent call. It reports true when the waiter may
// leave (the reply, when it arrives, is dropped — or, for stats, consumed
// into the abandoned slot) and false when delivery already happened, in
// which case call.done holds the reply. Caller does not hold m.mu.
func (m *MuxClient) abandon(req Frame, call *muxCall, stats bool) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if stats {
		for _, c := range m.statsq {
			if c == call {
				// Keep the slot for FIFO alignment; the reader recycles it.
				call.abandoned = true
				return true
			}
		}
		return false
	}
	if m.pending[req.FlowID] == call {
		delete(m.pending, req.FlowID)
		// No deliverer can hold the call anymore; it is ours to recycle.
		// The late reply finds no pending entry and is dropped. NOTE: the
		// request may still take effect server-side — Reserve callers that
		// time out should tear the flow down (ReserveWithRetry does).
		m.pool.Put(call)
		return true
	}
	return false
}

// Reserve requests a reservation for flowID with the given bandwidth
// demand. It reports whether the reservation was granted, and the granted
// share when it was. Reservations live until torn down, expired by the
// server's TTL, or the MuxClient's connection closes.
func (m *MuxClient) Reserve(ctx context.Context, flowID uint64, bandwidth float64) (granted bool, share float64, err error) {
	return m.ReserveClass(ctx, flowID, bandwidth, 0)
}

// ReserveClass is Reserve with an admission class (policy.ClassStandard /
// ClassCritical / ClassSheddable), carried in the request frame's class
// bits. Class 0 requests are byte-identical to Reserve.
func (m *MuxClient) ReserveClass(ctx context.Context, flowID uint64, bandwidth float64, class uint8) (granted bool, share float64, err error) {
	reply, err := m.roundTrip(ctx, Frame{Type: MsgRequest, Class: class, FlowID: flowID, Value: bandwidth})
	if err != nil {
		return false, 0, err
	}
	switch reply.Type {
	case MsgGrant:
		return true, reply.Value, nil
	case MsgDeny:
		return false, 0, nil
	case MsgError:
		return false, 0, fmt.Errorf("resv: reserve flow %d: server error code %d", flowID, uint64(reply.Value))
	default:
		return false, 0, fmt.Errorf("resv: reserve flow %d: unexpected %s reply", flowID, reply.Type)
	}
}

// Teardown releases flowID's reservation.
func (m *MuxClient) Teardown(ctx context.Context, flowID uint64) error {
	reply, err := m.roundTrip(ctx, Frame{Type: MsgTeardown, FlowID: flowID})
	if err != nil {
		return err
	}
	switch reply.Type {
	case MsgTeardownOK:
		return nil
	case MsgError:
		return fmt.Errorf("resv: teardown flow %d: server error code %d", flowID, uint64(reply.Value))
	default:
		return fmt.Errorf("resv: teardown flow %d: unexpected %s reply", flowID, reply.Type)
	}
}

// Refresh renews flowID's soft-state deadline on a TTL server. It returns
// the server's TTL (0 when the server never expires reservations).
func (m *MuxClient) Refresh(ctx context.Context, flowID uint64) (ttl time.Duration, err error) {
	reply, err := m.roundTrip(ctx, Frame{Type: MsgRefresh, FlowID: flowID})
	if err != nil {
		return 0, err
	}
	switch reply.Type {
	case MsgRefreshOK:
		return time.Duration(reply.Value * float64(time.Second)), nil
	case MsgError:
		return 0, fmt.Errorf("resv: refresh flow %d: server error code %d", flowID, uint64(reply.Value))
	default:
		return 0, fmt.Errorf("resv: refresh flow %d: unexpected %s reply", flowID, reply.Type)
	}
}

// Stats returns the server's admission threshold and active reservation
// count.
func (m *MuxClient) Stats(ctx context.Context) (kmax, active int, err error) {
	reply, err := m.roundTrip(ctx, Frame{Type: MsgStats})
	if err != nil {
		return 0, 0, err
	}
	return statsFromReply(reply)
}

// ReserveWithRetry requests a reservation, retrying denials per the policy
// until granted, the attempts are exhausted, or the context expires — the
// MuxClient counterpart of Client.ReserveWithRetry, sharing its semantics:
// all attempts denied returns granted = false with a nil error, and an
// attempt that fails after its request may have reached the server tears
// the flow down rather than leak a grant nobody saw.
func (m *MuxClient) ReserveWithRetry(ctx context.Context, flowID uint64, bandwidth float64, policy RetryPolicy) (granted bool, share float64, retries int, err error) {
	if err := policy.Validate(); err != nil {
		return false, 0, 0, err
	}
	delay := policy.BaseDelay
	for attempt := 1; ; attempt++ {
		ok, sh, err := m.Reserve(ctx, flowID, bandwidth)
		if err != nil {
			if ctx.Err() != nil {
				// The request may have been sent and granted after the
				// waiter left. Best-effort release, as with Client.
				tctx, cancel := context.WithTimeout(context.Background(), bestEffortTeardownTimeout)
				_ = m.Teardown(tctx, flowID)
				cancel()
			}
			return false, 0, attempt - 1, err
		}
		if ok {
			return true, sh, attempt - 1, nil
		}
		if attempt >= policy.MaxAttempts {
			return false, 0, attempt - 1, nil
		}
		if m.metrics != nil {
			m.metrics.Retries.Inc()
		}
		d := policy.jittered(delay)
		select {
		case <-ctx.Done():
			return false, 0, attempt - 1, ctx.Err()
		case <-time.After(d):
		}
		delay = time.Duration(float64(delay) * policy.Multiplier)
	}
}
