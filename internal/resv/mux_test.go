package resv

import (
	"context"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"beqos/internal/utility"
)

// pipeMux connects a MuxClient to the server over an in-memory pipe.
func pipeMux(t *testing.T, s *Server) *MuxClient {
	t.Helper()
	cEnd, sEnd := net.Pipe()
	go s.HandleConn(sEnd)
	m := NewMuxClient(cEnd)
	t.Cleanup(func() { _ = m.Close() })
	return m
}

// TestMuxConcurrentFlows races 128 flows over one connection against
// kmax = 64: exactly 64 must win, every grant must carry C/kmax, and
// tearing the winners down must drain the books — all multiplexed through
// a single stream.
func TestMuxConcurrentFlows(t *testing.T) {
	const kmax = 64
	s := newServer(t, kmax)
	defer s.Close()
	m := pipeMux(t, s)
	c := ctx(t)

	var granted atomic.Int64
	var wonIDs sync.Map
	var wg sync.WaitGroup
	for i := 1; i <= 128; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			ok, share, err := m.Reserve(c, id, 1)
			if err != nil {
				t.Errorf("reserve flow %d: %v", id, err)
				return
			}
			if ok {
				granted.Add(1)
				wonIDs.Store(id, struct{}{})
				if share != 1 { // C/kmax = 64/64
					t.Errorf("flow %d: share %g, want 1", id, share)
				}
			}
		}(uint64(i))
	}
	wg.Wait()
	if g := granted.Load(); g != kmax {
		t.Fatalf("granted %d of 128 flows, want exactly kmax = %d", g, kmax)
	}
	if a := s.Active(); a != kmax {
		t.Fatalf("active = %d, want %d", a, kmax)
	}
	wonIDs.Range(func(k, _ interface{}) bool {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			if err := m.Teardown(c, id); err != nil {
				t.Errorf("teardown flow %d: %v", id, err)
			}
		}(k.(uint64))
		return true
	})
	wg.Wait()
	if a := s.Active(); a != 0 {
		t.Fatalf("active = %d after teardowns, want 0", a)
	}
}

// TestMuxStatsInterleaved interleaves stats requests with reserve/teardown
// churn: the FIFO stats matching must never hand a flow reply to a stats
// waiter or vice versa.
func TestMuxStatsInterleaved(t *testing.T) {
	const kmax = 8
	s := newServer(t, kmax)
	defer s.Close()
	m := pipeMux(t, s)
	c := ctx(t)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ok, _, err := m.Reserve(c, id, 1)
				if err != nil {
					t.Errorf("reserve flow %d: %v", id, err)
					return
				}
				if ok {
					if err := m.Teardown(c, id); err != nil {
						t.Errorf("teardown flow %d: %v", id, err)
						return
					}
				}
			}
		}(uint64(w + 1))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k, active, err := m.Stats(c)
				if err != nil {
					t.Errorf("stats: %v", err)
					return
				}
				if k != kmax || active < 0 || active > kmax {
					t.Errorf("stats = (%d, %d), want kmax %d and active in [0, %d]", k, active, kmax, kmax)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestMuxDuplicateInFlight rejects a second request for a flow whose first
// is still awaiting its reply — the one-outstanding-op-per-flow rule.
func TestMuxDuplicateInFlight(t *testing.T) {
	cEnd, sEnd := net.Pipe()
	defer sEnd.Close()
	m := NewMuxClient(cEnd) // nobody serves sEnd: the first request hangs
	firstDone := make(chan error, 1)
	go func() {
		_, _, err := m.Reserve(context.Background(), 1, 1)
		firstDone <- err
	}()
	// Wait until the first request is registered and in the writer.
	deadline := time.Now().Add(2 * time.Second)
	for {
		m.mu.Lock()
		registered := len(m.pending) == 1
		m.mu.Unlock()
		if registered {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first request never registered")
		}
		time.Sleep(time.Millisecond)
	}
	_, _, err := m.Reserve(ctx(t), 1, 1)
	if err == nil || !strings.Contains(err.Error(), "already has a request in flight") {
		t.Fatalf("second reserve on an in-flight flow: err = %v, want in-flight rejection", err)
	}
	_ = m.Close()
	if err := <-firstDone; err == nil {
		t.Error("first reserve survived Close, want a failure")
	}
}

// TestMuxCloseReleasesFlows checks mux fate-sharing: closing the one
// connection releases every flow it carried, and fails later calls fast.
func TestMuxCloseReleasesFlows(t *testing.T) {
	s := newServer(t, 8)
	defer s.Close()
	cEnd, sEnd := net.Pipe()
	go s.HandleConn(sEnd)
	m := NewMuxClient(cEnd)
	c := ctx(t)
	for id := uint64(1); id <= 5; id++ {
		if ok, _, err := m.Reserve(c, id, 1); err != nil || !ok {
			t.Fatalf("reserve flow %d: ok=%v err=%v", id, ok, err)
		}
	}
	if a := s.Active(); a != 5 {
		t.Fatalf("active = %d, want 5", a)
	}
	_ = m.Close()
	waitActive(t, s, 0)
	if _, _, err := m.Reserve(c, 99, 1); err == nil {
		t.Error("reserve on a closed MuxClient: err = nil, want failure")
	}
}

// TestMuxReserveWithRetry mirrors the Client retry semantics on the mux
// transport: denials are retried per policy, and freeing the slot between
// attempts lets a retry win.
func TestMuxReserveWithRetry(t *testing.T) {
	s := newServer(t, 1)
	defer s.Close()
	m := pipeMux(t, s)
	c := ctx(t)
	if ok, _, err := m.Reserve(c, 1, 1); err != nil || !ok {
		t.Fatalf("seed reserve: ok=%v err=%v", ok, err)
	}
	policy := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Multiplier: 1}
	ok, share, retries, err := m.ReserveWithRetry(c, 2, 1, policy)
	if err != nil || ok || retries != 2 {
		t.Fatalf("retry against a full link = (ok=%v, retries=%d, err=%v), want all 3 attempts denied", ok, retries, err)
	}
	// Free the slot mid-retry: the next attempt must win.
	go func() {
		time.Sleep(20 * time.Millisecond)
		_ = m.Teardown(context.Background(), 1)
	}()
	ok, share, retries, err = m.ReserveWithRetry(c, 2, 1, RetryPolicy{MaxAttempts: 50, BaseDelay: 5 * time.Millisecond, Multiplier: 1})
	if err != nil || !ok {
		t.Fatalf("retry after slot freed: ok=%v err=%v", ok, err)
	}
	if share != 1 || retries < 1 {
		t.Errorf("granted share %g after %d retries, want share 1 after ≥ 1 retry", share, retries)
	}
}

// TestMuxRefresh exercises soft-state renewal through the mux transport
// against a TTL server: refreshed flows live, unrefreshed ones expire.
func TestMuxRefresh(t *testing.T) {
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServerTTL(4, r, 120*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := pipeMux(t, s)
	c := ctx(t)
	if ok, _, err := m.Reserve(c, 1, 1); err != nil || !ok {
		t.Fatalf("reserve: ok=%v err=%v", ok, err)
	}
	for i := 0; i < 5; i++ {
		time.Sleep(60 * time.Millisecond)
		if ttl, err := m.Refresh(c, 1); err != nil || ttl != 120*time.Millisecond {
			t.Fatalf("refresh %d = (%v, %v), want (120ms, nil)", i, ttl, err)
		}
	}
	if a := s.Active(); a != 1 {
		t.Fatalf("active = %d after 5 refreshes across 2.5×TTL, want 1", a)
	}
	waitActive(t, s, 0) // stop refreshing: TTL reclaims the flow
}

// TestMuxCanceledCallDoesNotPoisonFlow cancels a request mid-flight and
// checks the flow ID is usable again once the stale reply drains.
func TestMuxCanceledCallDoesNotPoisonFlow(t *testing.T) {
	s := newServer(t, 4)
	defer s.Close()
	m := pipeMux(t, s)
	cctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the wait path must unwind cleanly
	if _, _, err := m.Reserve(cctx, 1, 1); err == nil {
		t.Fatal("reserve with canceled context: err = nil")
	}
	// The canceled call deregistered; the flow must be immediately usable.
	// (A reply to the canceled request, if it was sent, is dropped.)
	deadline := time.Now().Add(2 * time.Second)
	for {
		ok, _, err := m.Reserve(ctx(t), 1, 1)
		if err == nil {
			if !ok {
				t.Fatal("reserve denied on an empty link")
			}
			break
		}
		if strings.Contains(err.Error(), "in flight") {
			if time.Now().After(deadline) {
				t.Fatalf("flow still poisoned: %v", err)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		t.Fatalf("reserve after canceled call: %v", err)
	}
	// The server may or may not have seen the canceled request; either
	// way exactly one reservation must be live now.
	if a := s.Active(); a != 1 {
		t.Fatalf("active = %d, want 1", a)
	}
}

// TestMuxPost posts one-way frames between request/reply traffic: the
// posted frames must not disturb FlowID/FIFO reply matching, and the
// server's reply to a frame type it does not serve (gossip) must be
// dropped by the reader rather than delivered to any waiter.
func TestMuxPost(t *testing.T) {
	s := newServer(t, 4)
	defer s.Close()
	m := pipeMux(t, s)
	c := ctx(t)
	for i := 0; i < 8; i++ {
		queued, err := m.Post(Frame{Type: MsgGossip, FlowID: uint64(i) << 48, Value: float64(i)})
		if err != nil || !queued {
			t.Fatalf("post %d: queued=%v err=%v", i, queued, err)
		}
		ok, _, err := m.Reserve(c, uint64(i+1), 1)
		if err != nil || !ok {
			t.Fatalf("reserve %d interleaved with posts: ok=%v err=%v", i+1, ok, err)
		}
		if err := m.Teardown(c, uint64(i+1)); err != nil {
			t.Fatalf("teardown %d: %v", i+1, err)
		}
		kmax, active, err := m.Stats(c)
		if err != nil || kmax != 4 || active != 0 {
			t.Fatalf("stats after post: kmax=%d active=%d err=%v", kmax, active, err)
		}
	}
	_ = m.Close()
	if _, err := m.Post(Frame{Type: MsgGossip}); err == nil {
		t.Fatal("post on a closed client should fail")
	}
}
