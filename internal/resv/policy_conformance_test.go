package resv

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"beqos/internal/policy"
)

// The policy conformance suite: every admission policy behind
// NewServerPolicy must uphold the serving plane's invariants —
//
//   - no over-admit under concurrent reserves at the admission boundary;
//   - a retransmitted reserve at a full link resolves through the dedup
//     lookup, never a second admission and never a spurious denial;
//   - TTL expiry returns exactly the claims admission took, so the link
//     refills to the same bound;
//   - the default policies keep the instrumented dispatch path at zero
//     allocations per reserve→teardown cycle.
//
// Builders return a fresh policy per subtest (policies are stateful).

// transparentTB is a token bucket deep and fast enough never to shed in a
// test: it must be behaviorally invisible in front of its inner policy.
func transparentTB(t *testing.T, capacity float64, kmax int) policy.Policy {
	t.Helper()
	inner, err := policy.NewCounting(capacity, kmax)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := policy.NewTokenBucket(inner, 1e9, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// openMeasured is a measured policy whose target can never bind (target ≥
// kmax+1), leaving the hard CAS bound as the only gate — the estimator
// must not perturb admission accounting.
func openMeasured(t *testing.T, capacity float64, kmax int) policy.Policy {
	t.Helper()
	p, err := policy.NewMeasured(capacity, kmax, float64(kmax)+2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// conformancePolicies builds one fresh instance of every policy sized so
// that class-`class` traffic is admitted up to `bound` on a link of the
// given capacity.
type conformanceCase struct {
	name  string
	class uint8
	bound int
	build func(t *testing.T) policy.Policy
}

func conformanceCases(t *testing.T, capacity float64, kmax int) []conformanceCase {
	t.Helper()
	mk := func(f func() (policy.Policy, error)) func(*testing.T) policy.Policy {
		return func(t *testing.T) policy.Policy {
			t.Helper()
			p, err := f()
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
	}
	tieredStd := kmax * 3 / 4
	tieredShed := kmax / 2
	if tieredStd < 1 {
		tieredStd = 1
	}
	if tieredShed < 1 {
		tieredShed = 1
	}
	return []conformanceCase{
		{"counting", policy.ClassStandard, kmax,
			mk(func() (policy.Policy, error) { return policy.NewCounting(capacity, kmax) })},
		{"bandwidth", policy.ClassStandard, int(capacity),
			mk(func() (policy.Policy, error) { return policy.NewBandwidth(capacity) })},
		{"token-bucket", policy.ClassStandard, kmax,
			func(t *testing.T) policy.Policy { return transparentTB(t, capacity, kmax) }},
		{"tiered-standard", policy.ClassStandard, tieredStd,
			mk(func() (policy.Policy, error) { return policy.NewTiered(capacity, kmax, tieredStd, tieredShed) })},
		{"tiered-critical", policy.ClassCritical, kmax,
			mk(func() (policy.Policy, error) { return policy.NewTiered(capacity, kmax, tieredStd, tieredShed) })},
		{"tiered-sheddable", policy.ClassSheddable, tieredShed,
			mk(func() (policy.Policy, error) { return policy.NewTiered(capacity, kmax, tieredStd, tieredShed) })},
		{"measured", policy.ClassStandard, kmax,
			func(t *testing.T) policy.Policy { return openMeasured(t, capacity, kmax) }},
	}
}

// TestPolicyConformanceConcurrentAdmit races many clients at each policy's
// admission boundary: exactly `bound` simultaneous class-tagged requests
// may win, the books must balance, and the connection-scoped release must
// drain everything.
func TestPolicyConformanceConcurrentAdmit(t *testing.T) {
	const capacity = 8.0
	const kmax = 8
	const clients = 32
	for _, tc := range conformanceCases(t, capacity, kmax) {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewServerPolicy(tc.build(t), 0)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for round := 0; round < 5; round++ {
				cls := make([]*Client, clients)
				for i := range cls {
					cEnd, sEnd := net.Pipe()
					go s.HandleConn(sEnd)
					cls[i] = NewClient(cEnd)
				}
				var granted atomic.Int64
				var start, done sync.WaitGroup
				start.Add(1)
				for i, cl := range cls {
					done.Add(1)
					go func(cl *Client, id uint64) {
						defer done.Done()
						start.Wait()
						ok, _, err := cl.ReserveClass(context.Background(), id, 1, tc.class)
						if err != nil {
							t.Errorf("reserve flow %d: %v", id, err)
							return
						}
						if ok {
							granted.Add(1)
						}
					}(cl, uint64(round*clients+i+1))
				}
				start.Done()
				done.Wait()
				if g := granted.Load(); g != int64(tc.bound) {
					t.Fatalf("round %d: granted %d of %d simultaneous requests, want exactly %d", round, g, clients, tc.bound)
				}
				if a := s.Active(); a != tc.bound {
					t.Fatalf("round %d: active = %d, want %d", round, a, tc.bound)
				}
				for _, cl := range cls {
					cl.Close()
				}
				waitActive(t, s, 0)
			}
		})
	}
}

// TestPolicyConformanceRetransmitAtFullLink pins the nastiest dedup corner
// for every policy: the lost grant's own admission filled the link, so the
// retransmitted reserve arrives with the policy at its bound. The deny
// path must fall through to the dedup lookup and re-grant from the live
// reservation — one grant, one dup, zero denials, zero double admissions.
func TestPolicyConformanceRetransmitAtFullLink(t *testing.T) {
	for _, tc := range conformanceCases(t, 1, 1) {
		if tc.class != policy.ClassStandard {
			// Retransmission semantics are class-independent; the standard
			// tier (identical bound at kmax 1) covers the tiered policy.
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewServerPolicy(tc.build(t), time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			addr := startUDPServer(t, s)
			cl, fc := dialUDPTest(t, addr, fastUDP)

			dropped := false
			fc.recvDrop = func(f Frame) bool {
				if f.Type == MsgGrant && !dropped {
					dropped = true
					return true
				}
				return false
			}
			ok, share, err := cl.Reserve(ctx(t), 9, 1)
			if err != nil || !ok {
				t.Fatalf("reserve: ok=%v err=%v (a full-link retransmit was denied?)", ok, err)
			}
			if share != 1 {
				t.Errorf("re-granted share = %g, want the original grant's 1", share)
			}
			if !dropped {
				t.Fatal("filter never dropped a grant; the test exercised nothing")
			}
			m := s.Metrics()
			if g, d, den := m.Grants.Load(), m.DupReserves.Load(), m.Denials.Load(); g != 1 || d != 1 || den != 0 {
				t.Errorf("grants=%d dups=%d denials=%d, want 1, 1, 0", g, d, den)
			}
			if a := s.Active(); a != 1 {
				t.Errorf("active = %d, want 1", a)
			}
		})
	}
}

// TestPolicyConformanceTTLExpiryReleases fills each policy to its bound,
// lets the soft state expire unrefreshed, and refills: expiry must return
// exactly the claims admission took, for every policy.
func TestPolicyConformanceTTLExpiryReleases(t *testing.T) {
	const capacity = 4.0
	const kmax = 4
	for _, tc := range conformanceCases(t, capacity, kmax) {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewServerPolicy(tc.build(t), 40*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			cl := pipeClient(t, s)
			fill := func(base uint64) {
				t.Helper()
				for i := 0; i < tc.bound; i++ {
					ok, _, err := cl.ReserveClass(ctx(t), base+uint64(i), 1, tc.class)
					if err != nil || !ok {
						t.Fatalf("reserve flow %d: ok=%v err=%v", base+uint64(i), ok, err)
					}
				}
				// The next request must be denied: the policy is at its bound.
				ok, _, err := cl.ReserveClass(ctx(t), base+uint64(tc.bound), 1, tc.class)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					t.Fatalf("admitted past the bound %d", tc.bound)
				}
			}
			fill(1)
			waitActive(t, s, 0) // unrefreshed soft state expires
			fill(100)           // expiry returned every claim: the link refills
			if a := s.Active(); a != tc.bound {
				t.Errorf("active after refill = %d, want %d", a, tc.bound)
			}
		})
	}
}

// TestPolicyServerZeroAllocDefaults holds the default policies, served
// through the pluggable path, to the same standard as the legacy
// constructors: zero allocations per instrumented reserve→teardown cycle.
func TestPolicyServerZeroAllocDefaults(t *testing.T) {
	counting, err := policy.NewCounting(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	bandwidth, err := policy.NewBandwidth(8)
	if err != nil {
		t.Fatal(err)
	}
	for name, pol := range map[string]policy.Policy{"counting": counting, "bandwidth": bandwidth} {
		t.Run(name, func(t *testing.T) {
			s, err := NewServerPolicy(pol, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			c := &conn{flows: make(map[uint64]struct{})}
			var bs batchStats
			reserve := Frame{Type: MsgRequest, FlowID: 42, Value: 1}
			teardown := Frame{Type: MsgTeardown, FlowID: 42}
			allocs := testing.AllocsPerRun(1000, func() {
				s.dispatch(c, reserve, &bs)
				s.dispatch(c, teardown, &bs)
				s.metrics.flushBatch(&bs, 2, 1500*time.Nanosecond)
			})
			if allocs != 0 {
				t.Errorf("policy-served dispatch allocates %v/op, want 0", allocs)
			}
		})
	}
}
