package resv

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"beqos/internal/rng"
)

// Regression tests for two protocol-plumbing bugs:
//
//   - MsgStatsReply packs kmax into FlowID and the active count through a
//     float64 Value; both client paths used to decode it with a bare
//     int(reply.Value), which turns a NaN, negative, fractional, or
//     beyond-2^53 value into platform-defined garbage instead of an error.
//   - Retry backoff jitter drew from the process-global rand.Float64(), so
//     runs exercising ReserveWithRetry were not reproducible; the RNG is
//     now injectable per policy.

func TestStatsReplyRoundTripAtScale(t *testing.T) {
	counts := []int64{0, 1, 100000, 1 << 20, 1<<31 + 5, 1 << 40, 1 << 53}
	kmaxes := []int{0, 1, 100000, 1 << 31}
	for _, k := range kmaxes {
		for _, a := range counts {
			f, err := StatsReplyFrame(k, a)
			if err != nil {
				t.Fatalf("StatsReplyFrame(%d, %d): %v", k, a, err)
			}
			// Through the wire and back: the packing must be lossless.
			decoded, err := DecodeFrame(AppendFrame(nil, f))
			if err != nil {
				t.Fatalf("decode stats reply (%d, %d): %v", k, a, err)
			}
			gotK, gotA, err := ParseStatsReply(decoded)
			if err != nil {
				t.Fatalf("ParseStatsReply(%d, %d): %v", k, a, err)
			}
			if gotK != int64(k) || gotA != a {
				t.Fatalf("stats round trip (%d, %d) → (%d, %d)", k, a, gotK, gotA)
			}
		}
	}
}

func TestStatsReplyFrameRejectsUnpackable(t *testing.T) {
	if _, err := StatsReplyFrame(-1, 0); err == nil {
		t.Error("negative kmax encoded")
	}
	if _, err := StatsReplyFrame(0, -1); err == nil {
		t.Error("negative active count encoded")
	}
	if _, err := StatsReplyFrame(0, 1<<53+1); err == nil {
		t.Error("active count beyond float64 exactness encoded")
	}
}

func TestParseStatsReplyRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		f    Frame
	}{
		{"wrong type", Frame{Type: MsgGrant, Value: 3}},
		{"NaN count", Frame{Type: MsgStatsReply, Value: math.NaN()}},
		{"negative count", Frame{Type: MsgStatsReply, Value: -1}},
		{"fractional count", Frame{Type: MsgStatsReply, Value: 2.5}},
		{"huge count", Frame{Type: MsgStatsReply, Value: 1e300}},
		{"kmax overflows int64", Frame{Type: MsgStatsReply, FlowID: 1 << 63, Value: 1}},
	}
	for _, tc := range cases {
		if _, _, err := ParseStatsReply(tc.f); err == nil {
			t.Errorf("%s: parsed without error", tc.name)
		}
	}
}

// TestStatsRejectsCorruptReply is the pre-fix-failing client-path check: a
// corrupt or hostile stats reply must surface as an error, not as the
// garbage count int(NaN) produces.
func TestStatsRejectsCorruptReply(t *testing.T) {
	cs, cc := net.Pipe()
	defer cs.Close()
	client := NewClient(cc)
	defer client.Close()
	go func() {
		// Consume the MsgStats request, answer with a NaN active count.
		if _, err := ReadFrame(cs); err != nil {
			return
		}
		_ = WriteFrame(cs, Frame{Type: MsgStatsReply, FlowID: 8, Value: math.NaN()})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if kmax, active, err := client.Stats(ctx); err == nil {
		t.Fatalf("NaN active count decoded as (%d, %d) instead of failing", kmax, active)
	}
}

// TestRetryJitterSeedable is the determinism half of the jitter fix: two
// policies seeded identically must produce byte-identical backoff
// sequences, and the draws must really come from the injected generator.
func TestRetryJitterSeedable(t *testing.T) {
	base := RetryPolicy{MaxAttempts: 8, BaseDelay: time.Second, Multiplier: 2, Jitter: 0.5}
	run := func(seed uint64) []time.Duration {
		src := rng.New(seed, seed^0x9e3779b97f4a7c15)
		p := base
		p.Rand = src.Float64
		var ds []time.Duration
		d := p.BaseDelay
		for i := 0; i < 32; i++ {
			ds = append(ds, p.jittered(d))
			d = time.Duration(float64(d) * p.Multiplier)
		}
		return ds
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed jitter diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter — injected RNG unused")
	}
}

// TestReserveWithRetryUsesInjectedRand pins the retry loop itself to the
// injected generator: every jittered wait of every attempt must draw from
// policy.Rand, and none from the process-global generator.
func TestReserveWithRetryUsesInjectedRand(t *testing.T) {
	s := newServer(t, 1) // kmax 1
	occupant := pipeClient(t, s)
	ok, _, err := occupant.Reserve(ctx(t), 1, 1)
	if err != nil || !ok {
		t.Fatalf("occupant reserve: ok=%v err=%v", ok, err)
	}
	client := pipeClient(t, s)
	draws := 0
	p := RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Microsecond,
		Multiplier:  1,
		Jitter:      1,
		Rand:        func() float64 { draws++; return 0.5 },
	}
	granted, _, retries, err := client.ReserveWithRetry(ctx(t), 2, 1, p)
	if err != nil {
		t.Fatalf("ReserveWithRetry: %v", err)
	}
	if granted || retries != 2 {
		t.Fatalf("expected 2 denied retries on a full link, got granted=%v retries=%d", granted, retries)
	}
	if draws != 2 {
		t.Fatalf("injected RNG drawn %d times, want one per backoff wait (2)", draws)
	}
}
