package resv

// Regression tests for the protocol/soft-state bugs fixed in the admission
// plane hardening pass. Each test fails against the pre-fix code:
//
//  1. clean client disconnects (io.EOF) were logged as connection errors;
//  2. grants reported the stale instantaneous share C/active instead of the
//     guaranteed worst-case share C/kmax;
//  3. KeepAlive waited a full interval before its first refresh (missing the
//     first TTL deadline) and accepted interval ≥ TTL; the soft-state
//     sweeper panicked on sub-4ns TTLs;
//  4. ReserveWithRetry leaked a server-side grant when the request was
//     written but the reply was lost.

import (
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"beqos/internal/utility"
)

// captureLogs installs a log collector on s and returns a snapshot func.
func captureLogs(s *Server) func() []string {
	var mu sync.Mutex
	var lines []string
	s.Logf = func(format string, args ...interface{}) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	return func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), lines...)
	}
}

func waitActive(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.Active() != want {
		if time.Now().After(deadline) {
			t.Fatalf("active = %d, want %d", s.Active(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCleanDisconnectNotLoggedAsError(t *testing.T) {
	s := newServer(t, 2)
	logs := captureLogs(s)
	cEnd, sEnd := net.Pipe()
	go s.HandleConn(sEnd)
	c := NewClient(cEnd)
	if ok, _, err := c.Reserve(ctx(t), 1, 1); err != nil || !ok {
		t.Fatalf("reserve: %v %v", ok, err)
	}
	// Orderly close: the server's ReadFrame returns io.EOF, which must not
	// be reported as a connection error.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitActive(t, s, 0) // release runs after the logging decision
	for _, l := range logs() {
		if strings.Contains(l, "closed:") {
			t.Errorf("clean disconnect logged as error: %q", l)
		}
	}
}

func TestAbortiveDisconnectStillLogged(t *testing.T) {
	s := newServer(t, 2)
	logs := captureLogs(s)
	cEnd, sEnd := net.Pipe()
	go s.HandleConn(sEnd)
	// Half a frame then close: ReadFrame sees io.ErrUnexpectedEOF — a real
	// failure that must keep producing a log line.
	if _, err := cEnd.Write(make([]byte, FrameSize/2)); err != nil {
		t.Fatal(err)
	}
	if err := cEnd.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		var found bool
		for _, l := range logs() {
			if strings.Contains(l, "closed:") {
				found = true
			}
		}
		if found {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("truncated-frame disconnect was not logged")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGrantShareIsWorstCase(t *testing.T) {
	cases := []struct {
		name      string
		capacity  float64
		kmax      int
		wantShare float64
	}{
		{"integer capacity", 4, 4, 1},
		{"fractional capacity", 2.5, 2, 1.25},
		{"single slot", 1, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newServer(t, tc.capacity)
			if s.KMax() != tc.kmax {
				t.Fatalf("kmax = %d, want %d", s.KMax(), tc.kmax)
			}
			c := pipeClient(t, s)
			cx := ctx(t)
			// Every grant — including the first, when the flow is alone on
			// the link — reports the guaranteed worst-case share C/kmax,
			// not the stale instantaneous share C/active.
			for id := 1; id <= tc.kmax; id++ {
				ok, share, err := c.Reserve(cx, uint64(id), 1)
				if err != nil || !ok {
					t.Fatalf("reserve %d: ok=%v err=%v", id, ok, err)
				}
				if share != tc.wantShare {
					t.Errorf("flow %d: share = %v, want C/kmax = %v", id, share, tc.wantShare)
				}
			}
		})
	}
}

func TestKeepAliveRefreshesImmediately(t *testing.T) {
	const ttl = 200 * time.Millisecond
	s := newTTLServer(t, 2, ttl)
	c := pipeClient(t, s)
	cx := ctx(t)
	if ok, _, err := c.Reserve(cx, 1, 1); err != nil || !ok {
		t.Fatalf("reserve: %v %v", ok, err)
	}
	// Start the keep-alive deep into the first TTL window. Pre-fix, the
	// first refresh only fired after a full interval (~260ms from reserve),
	// past the 200ms deadline, so the reservation silently expired.
	time.Sleep(120 * time.Millisecond)
	kaCtx, cancel := context.WithCancel(cx)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- c.KeepAlive(kaCtx, 1, 140*time.Millisecond) }()
	time.Sleep(3 * ttl)
	if s.Active() != 1 {
		t.Error("reservation expired despite an active keep-alive")
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("keep-alive returned %v on cancellation", err)
	}
}

func TestKeepAliveRejectsIntervalNotBelowTTL(t *testing.T) {
	const ttl = time.Second
	s := newTTLServer(t, 2, ttl)
	c := pipeClient(t, s)
	cx := ctx(t)
	if ok, _, err := c.Reserve(cx, 1, 1); err != nil || !ok {
		t.Fatalf("reserve: %v %v", ok, err)
	}
	for _, interval := range []time.Duration{ttl, 2 * ttl} {
		if err := c.KeepAlive(cx, 1, interval); err == nil {
			t.Errorf("interval %v ≥ TTL %v should be rejected", interval, ttl)
		}
	}
	// The probe refreshes ran, so the reservation is still alive.
	if s.Active() != 1 {
		t.Error("reservation lost during interval validation")
	}
}

func TestTinyTTLDoesNotPanicSweeper(t *testing.T) {
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	// ttl/4 == 0 for sub-4ns TTLs; pre-fix the sweeper goroutine panicked
	// in time.NewTicker and took the process down.
	s, err := NewServerTTL(2, r, 3*time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	time.Sleep(20 * time.Millisecond)
}

// gatedProxy sits between a client and a server, forwarding request frames
// verbatim but holding all replies until the client's next request — enough
// to turn a granted reservation into a client-side timeout.
func gatedProxy(t *testing.T, s *Server) net.Conn {
	t.Helper()
	cliConn, proxyCli := net.Pipe()
	proxySrv, srvConn := net.Pipe()
	go s.HandleConn(srvConn)
	t.Cleanup(func() {
		_ = cliConn.Close()
		_ = proxyCli.Close()
		_ = proxySrv.Close()
	})
	release := make(chan struct{})
	// client → server: forward, and open the reply gate once the second
	// request (the recovery teardown) comes through.
	go func() {
		buf := make([]byte, FrameSize)
		for n := 1; ; n++ {
			if _, err := io.ReadFull(proxyCli, buf); err != nil {
				return
			}
			if n == 2 {
				close(release)
			}
			if _, err := proxySrv.Write(buf); err != nil {
				return
			}
		}
	}()
	// server → client: hold everything until released.
	go func() {
		buf := make([]byte, FrameSize)
		gated := true
		for {
			if _, err := io.ReadFull(proxySrv, buf); err != nil {
				return
			}
			if gated {
				<-release
				gated = false
			}
			if _, err := proxyCli.Write(buf); err != nil {
				return
			}
		}
	}()
	return cliConn
}

func TestReserveWithRetryReleasesLeakedGrant(t *testing.T) {
	s := newServer(t, 2)
	c := NewClient(gatedProxy(t, s))
	short, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	// The request reaches the server (which grants it), but the reply is
	// held past the deadline: the client sees a transport error.
	ok, _, _, err := c.ReserveWithRetry(short, 7, 1, RetryPolicy{MaxAttempts: 1, Multiplier: 1})
	if ok {
		t.Fatal("reply was gated; reservation should not appear granted")
	}
	if err == nil {
		t.Fatal("expected a transport error")
	}
	// The fix sends a best-effort teardown for the in-doubt flow; pre-fix,
	// the grant leaked and the slot stayed occupied forever.
	waitActive(t, s, 0)
}
