package resv

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"beqos/internal/utility"
)

func newServer(t *testing.T, capacity float64) *Server {
	t.Helper()
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(capacity, r)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// pipeClient connects a client to the server over an in-memory pipe.
func pipeClient(t *testing.T, s *Server) *Client {
	t.Helper()
	cEnd, sEnd := net.Pipe()
	go s.HandleConn(sEnd)
	c := NewClient(cEnd)
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return c
}

func TestNewServerValidation(t *testing.T) {
	r, _ := utility.NewRigid(1)
	if _, err := NewServer(0, r); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := NewServer(10, nil); err == nil {
		t.Error("nil utility should fail")
	}
	if _, err := NewServer(10, utility.Elastic{}); err == nil {
		t.Error("elastic utility should fail (no finite kmax)")
	}
	if _, err := NewServer(0.5, r); err == nil {
		t.Error("capacity below one flow should fail")
	}
}

func TestReserveGrantDeny(t *testing.T) {
	s := newServer(t, 2) // kmax = 2
	c := pipeClient(t, s)
	cx := ctx(t)

	// Granted shares are the worst-case guarantee C/kmax = 1, regardless
	// of how many flows are active at grant time.
	ok, share, err := c.Reserve(cx, 1, 1)
	if err != nil || !ok {
		t.Fatalf("first reserve: ok=%v err=%v", ok, err)
	}
	if share != 1 {
		t.Errorf("share = %v, want C/kmax = 1", share)
	}
	ok, share, err = c.Reserve(cx, 2, 1)
	if err != nil || !ok {
		t.Fatalf("second reserve: ok=%v err=%v", ok, err)
	}
	if share != 1 {
		t.Errorf("share = %v, want C/kmax = 1", share)
	}
	ok, _, err = c.Reserve(cx, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("third reservation should be denied at kmax = 2")
	}
	if got := s.Active(); got != 2 {
		t.Errorf("active = %d, want 2", got)
	}
}

func TestTeardownFreesCapacity(t *testing.T) {
	s := newServer(t, 1)
	c := pipeClient(t, s)
	cx := ctx(t)

	if ok, _, err := c.Reserve(cx, 10, 1); err != nil || !ok {
		t.Fatalf("reserve: %v %v", ok, err)
	}
	if ok, _, _ := c.Reserve(cx, 11, 1); ok {
		t.Fatal("second reservation should be denied")
	}
	if err := c.Teardown(cx, 10); err != nil {
		t.Fatal(err)
	}
	if ok, _, err := c.Reserve(cx, 11, 1); err != nil || !ok {
		t.Errorf("post-teardown reserve should succeed: %v %v", ok, err)
	}
}

func TestDuplicateFlowRejected(t *testing.T) {
	s := newServer(t, 5)
	c := pipeClient(t, s)
	cx := ctx(t)
	if ok, _, err := c.Reserve(cx, 7, 1); err != nil || !ok {
		t.Fatalf("reserve: %v %v", ok, err)
	}
	if _, _, err := c.Reserve(cx, 7, 1); err == nil {
		t.Error("duplicate flow ID should error")
	}
}

func TestTeardownUnknownFlow(t *testing.T) {
	s := newServer(t, 5)
	c := pipeClient(t, s)
	if err := c.Teardown(ctx(t), 999); err == nil {
		t.Error("teardown of unknown flow should error")
	}
}

func TestTeardownWrongOwner(t *testing.T) {
	s := newServer(t, 5)
	c1 := pipeClient(t, s)
	c2 := pipeClient(t, s)
	cx := ctx(t)
	if ok, _, err := c1.Reserve(cx, 1, 1); err != nil || !ok {
		t.Fatalf("reserve: %v %v", ok, err)
	}
	if err := c2.Teardown(cx, 1); err == nil {
		t.Error("teardown by a different connection should error")
	}
}

func TestConnectionDropReleasesReservations(t *testing.T) {
	s := newServer(t, 3)
	c1 := pipeClient(t, s)
	cx := ctx(t)
	for id := uint64(1); id <= 3; id++ {
		if ok, _, err := c1.Reserve(cx, id, 1); err != nil || !ok {
			t.Fatalf("reserve %d: %v %v", id, ok, err)
		}
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	// Soft state: the server releases the dropped connection's flows.
	deadline := time.Now().Add(2 * time.Second)
	for s.Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("active = %d after connection drop, want 0", s.Active())
		}
		time.Sleep(time.Millisecond)
	}
	c2 := pipeClient(t, s)
	if ok, _, err := c2.Reserve(cx, 50, 1); err != nil || !ok {
		t.Errorf("capacity should be free again: %v %v", ok, err)
	}
}

func TestStats(t *testing.T) {
	s := newServer(t, 4)
	c := pipeClient(t, s)
	cx := ctx(t)
	if ok, _, err := c.Reserve(cx, 1, 1); err != nil || !ok {
		t.Fatalf("reserve: %v %v", ok, err)
	}
	kmax, active, err := c.Stats(cx)
	if err != nil {
		t.Fatal(err)
	}
	if kmax != 4 || active != 1 {
		t.Errorf("stats = (%d, %d), want (4, 1)", kmax, active)
	}
}

func TestReserveWithRetryEventuallyGranted(t *testing.T) {
	s := newServer(t, 1)
	holder := pipeClient(t, s)
	cx := ctx(t)
	if ok, _, err := holder.Reserve(cx, 1, 1); err != nil || !ok {
		t.Fatalf("holder reserve: %v %v", ok, err)
	}
	// Free the slot shortly after the retrier starts.
	go func() {
		time.Sleep(50 * time.Millisecond)
		_ = holder.Teardown(context.Background(), 1)
	}()
	c := pipeClient(t, s)
	policy := RetryPolicy{MaxAttempts: 50, BaseDelay: 10 * time.Millisecond, Multiplier: 1.2, Jitter: 0.2}
	ok, share, retries, err := c.ReserveWithRetry(cx, 2, 1, policy)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("retrier should eventually be granted")
	}
	if share <= 0 || retries < 1 {
		t.Errorf("share=%v retries=%d; expected positive share after ≥ 1 retry", share, retries)
	}
}

func TestReserveWithRetryExhausts(t *testing.T) {
	s := newServer(t, 1)
	holder := pipeClient(t, s)
	cx := ctx(t)
	if ok, _, err := holder.Reserve(cx, 1, 1); err != nil || !ok {
		t.Fatalf("holder reserve: %v %v", ok, err)
	}
	c := pipeClient(t, s)
	ok, _, retries, err := c.ReserveWithRetry(cx, 2, 1, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Multiplier: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok || retries != 2 {
		t.Errorf("ok=%v retries=%d, want denied after 2 retries", ok, retries)
	}
}

func TestRetryPolicyValidation(t *testing.T) {
	c := pipeClient(t, newServer(t, 1))
	if _, _, _, err := c.ReserveWithRetry(ctx(t), 1, 1, RetryPolicy{MaxAttempts: 0}); err == nil {
		t.Error("MaxAttempts = 0 should fail")
	}
	if _, _, _, err := c.ReserveWithRetry(ctx(t), 1, 1, RetryPolicy{MaxAttempts: 1, Multiplier: 0.5}); err == nil {
		t.Error("Multiplier < 1 should fail")
	}
	if _, _, _, err := c.ReserveWithRetry(ctx(t), 1, 1, RetryPolicy{MaxAttempts: 1, Multiplier: 1, Jitter: 2}); err == nil {
		t.Error("Jitter > 1 should fail")
	}
}

func TestContextCancellation(t *testing.T) {
	s := newServer(t, 1)
	holder := pipeClient(t, s)
	if ok, _, err := holder.Reserve(ctx(t), 1, 1); err != nil || !ok {
		t.Fatalf("holder reserve: %v %v", ok, err)
	}
	c := pipeClient(t, s)
	short, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	ok, _, _, err := c.ReserveWithRetry(short, 2, 1, RetryPolicy{MaxAttempts: 1000, BaseDelay: 5 * time.Millisecond, Multiplier: 1})
	if ok {
		t.Error("should not be granted while slot held")
	}
	if err == nil {
		t.Error("expected context deadline error")
	}
}

func TestOverTCP(t *testing.T) {
	s := newServer(t, 10)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = s.Serve(ln) }()

	cx := ctx(t)
	c, err := Dial(cx, "tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ok, share, err := c.Reserve(cx, 1, 1)
	if err != nil || !ok || share != 1 {
		t.Fatalf("tcp reserve: ok=%v share=%v (want C/kmax = 1) err=%v", ok, share, err)
	}
	if err := c.Teardown(cx, 1); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClientsRespectKMax(t *testing.T) {
	const kmax = 8
	s := newServer(t, kmax)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = s.Serve(ln) }()

	cx := ctx(t)
	var wg sync.WaitGroup
	var mu sync.Mutex
	granted := 0
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			c, err := Dial(cx, "tcp", ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			ok, _, err := c.Reserve(cx, id, 1)
			if err != nil {
				t.Error(err)
				return
			}
			if ok {
				mu.Lock()
				granted++
				mu.Unlock()
				// Hold the reservation until the test ends.
				time.Sleep(200 * time.Millisecond)
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	if granted != kmax {
		t.Errorf("granted = %d, want exactly kmax = %d", granted, kmax)
	}
}

func TestInvalidRequestValue(t *testing.T) {
	s := newServer(t, 5)
	c := pipeClient(t, s)
	if _, _, err := c.Reserve(ctx(t), 1, -3); err == nil {
		t.Error("negative bandwidth should error")
	}
}

func newTTLServer(t *testing.T, capacity float64, ttl time.Duration) *Server {
	t.Helper()
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServerTTL(capacity, r, ttl)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestSoftStateExpiry(t *testing.T) {
	s := newTTLServer(t, 2, 60*time.Millisecond)
	c := pipeClient(t, s)
	cx := ctx(t)
	if ok, _, err := c.Reserve(cx, 1, 1); err != nil || !ok {
		t.Fatalf("reserve: %v %v", ok, err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("reservation did not expire; active = %d", s.Active())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRefreshKeepsReservationAlive(t *testing.T) {
	s := newTTLServer(t, 2, 80*time.Millisecond)
	c := pipeClient(t, s)
	cx := ctx(t)
	if ok, _, err := c.Reserve(cx, 1, 1); err != nil || !ok {
		t.Fatalf("reserve: %v %v", ok, err)
	}
	// Refresh several times across multiple TTLs.
	for i := 0; i < 8; i++ {
		time.Sleep(30 * time.Millisecond)
		ttl, err := c.Refresh(cx, 1)
		if err != nil {
			t.Fatalf("refresh %d: %v", i, err)
		}
		if ttl != 80*time.Millisecond {
			t.Fatalf("reported TTL = %v", ttl)
		}
	}
	if s.Active() != 1 {
		t.Errorf("active = %d after refreshes, want 1", s.Active())
	}
}

func TestRefreshUnknownFlow(t *testing.T) {
	s := newTTLServer(t, 2, time.Second)
	c := pipeClient(t, s)
	if _, err := c.Refresh(ctx(t), 99); err == nil {
		t.Error("refreshing an unknown flow should error")
	}
}

func TestRefreshWrongOwner(t *testing.T) {
	s := newTTLServer(t, 2, time.Second)
	c1 := pipeClient(t, s)
	c2 := pipeClient(t, s)
	cx := ctx(t)
	if ok, _, err := c1.Reserve(cx, 1, 1); err != nil || !ok {
		t.Fatalf("reserve: %v %v", ok, err)
	}
	if _, err := c2.Refresh(cx, 1); err == nil {
		t.Error("refresh by a non-owner should error")
	}
}

func TestKeepAliveLoop(t *testing.T) {
	s := newTTLServer(t, 2, 80*time.Millisecond)
	c := pipeClient(t, s)
	cx := ctx(t)
	if ok, _, err := c.Reserve(cx, 1, 1); err != nil || !ok {
		t.Fatalf("reserve: %v %v", ok, err)
	}
	kaCtx, cancel := context.WithCancel(cx)
	done := make(chan error, 1)
	go func() { done <- c.KeepAlive(kaCtx, 1, 25*time.Millisecond) }()
	time.Sleep(300 * time.Millisecond)
	if s.Active() != 1 {
		t.Errorf("active = %d during keep-alive, want 1", s.Active())
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("keep-alive returned %v on cancellation", err)
	}
	// Without the keep-alive, the reservation now lapses.
	deadline := time.Now().Add(2 * time.Second)
	for s.Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("reservation survived after keep-alive stopped")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestKeepAliveValidatesInterval(t *testing.T) {
	c := pipeClient(t, newServer(t, 1))
	if err := c.KeepAlive(ctx(t), 1, 0); err == nil {
		t.Error("zero interval should fail")
	}
}

func TestNoTTLNeverExpires(t *testing.T) {
	s := newServer(t, 2) // TTL 0
	if s.TTL() != 0 {
		t.Fatalf("TTL = %v", s.TTL())
	}
	c := pipeClient(t, s)
	cx := ctx(t)
	if ok, _, err := c.Reserve(cx, 1, 1); err != nil || !ok {
		t.Fatalf("reserve: %v %v", ok, err)
	}
	// Refresh on a no-TTL server succeeds and reports 0.
	ttl, err := c.Refresh(cx, 1)
	if err != nil || ttl != 0 {
		t.Errorf("refresh on no-TTL server: ttl=%v err=%v", ttl, err)
	}
	time.Sleep(100 * time.Millisecond)
	if s.Active() != 1 {
		t.Errorf("reservation vanished without TTL")
	}
}

func TestNegativeTTLRejected(t *testing.T) {
	r, _ := utility.NewRigid(1)
	if _, err := NewServerTTL(2, r, -time.Second); err == nil {
		t.Error("negative TTL should fail")
	}
}

func TestServerSurvivesGarbageBytes(t *testing.T) {
	s := newServer(t, 2)
	cEnd, sEnd := net.Pipe()
	go s.HandleConn(sEnd)
	defer cEnd.Close()
	// Write garbage: the server must drop the connection without panicking
	// and other clients must keep working.
	garbage := make([]byte, FrameSize)
	for i := range garbage {
		garbage[i] = 0xAB
	}
	_, _ = cEnd.Write(garbage)
	c2 := pipeClient(t, s)
	if ok, _, err := c2.Reserve(ctx(t), 7, 1); err != nil || !ok {
		t.Errorf("healthy client affected by garbage peer: %v %v", ok, err)
	}
}

func newBandwidthServer(t *testing.T, capacity float64) *Server {
	t.Helper()
	s, err := NewServerBandwidth(capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestBandwidthAdmission(t *testing.T) {
	s := newBandwidthServer(t, 10)
	c := pipeClient(t, s)
	cx := ctx(t)
	// 6 + 3 fit; 2 more does not; 1 more does.
	if ok, rate, err := c.Reserve(cx, 1, 6); err != nil || !ok || rate != 6 {
		t.Fatalf("reserve 6: ok=%v rate=%v err=%v", ok, rate, err)
	}
	if ok, rate, err := c.Reserve(cx, 2, 3); err != nil || !ok || rate != 3 {
		t.Fatalf("reserve 3: ok=%v rate=%v err=%v", ok, rate, err)
	}
	if ok, _, err := c.Reserve(cx, 3, 2); err != nil || ok {
		t.Fatalf("reserve 2 should be denied at 9/10 allocated: ok=%v err=%v", ok, err)
	}
	if ok, _, err := c.Reserve(cx, 4, 1); err != nil || !ok {
		t.Fatalf("reserve 1 should fit exactly: ok=%v err=%v", ok, err)
	}
	if got := s.Allocated(); math.Abs(got-10) > 1e-12 {
		t.Errorf("allocated = %v, want 10", got)
	}
}

func TestBandwidthTeardownReturnsRate(t *testing.T) {
	s := newBandwidthServer(t, 5)
	c := pipeClient(t, s)
	cx := ctx(t)
	if ok, _, err := c.Reserve(cx, 1, 5); err != nil || !ok {
		t.Fatalf("reserve: %v %v", ok, err)
	}
	if ok, _, _ := c.Reserve(cx, 2, 1); ok {
		t.Fatal("full link should deny")
	}
	if err := c.Teardown(cx, 1); err != nil {
		t.Fatal(err)
	}
	if got := s.Allocated(); got != 0 {
		t.Errorf("allocated = %v after teardown", got)
	}
	if ok, _, err := c.Reserve(cx, 2, 4); err != nil || !ok {
		t.Errorf("rate should be free again: %v %v", ok, err)
	}
}

func TestBandwidthConnDropReturnsRate(t *testing.T) {
	s := newBandwidthServer(t, 5)
	c := pipeClient(t, s)
	if ok, _, err := c.Reserve(ctx(t), 1, 4); err != nil || !ok {
		t.Fatalf("reserve: %v %v", ok, err)
	}
	_ = c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for s.Allocated() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("allocated = %v after drop", s.Allocated())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBandwidthRejectsZeroRate(t *testing.T) {
	s := newBandwidthServer(t, 5)
	c := pipeClient(t, s)
	if _, _, err := c.Reserve(ctx(t), 1, 0); err == nil {
		t.Error("zero-rate request should error in bandwidth mode")
	}
}

func TestBandwidthExpiry(t *testing.T) {
	s, err := NewServerBandwidth(5, 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c := pipeClient(t, s)
	if ok, _, err := c.Reserve(ctx(t), 1, 5); err != nil || !ok {
		t.Fatalf("reserve: %v %v", ok, err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Allocated() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("rate did not expire; allocated = %v", s.Allocated())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBandwidthServerValidation(t *testing.T) {
	if _, err := NewServerBandwidth(0, 0); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := NewServerBandwidth(5, -time.Second); err == nil {
		t.Error("negative TTL should fail")
	}
}
