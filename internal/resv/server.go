package resv

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"beqos/internal/obs"
	"beqos/internal/policy"
	"beqos/internal/utility"
)

// Server is a single-link admission controller speaking the resv protocol.
// The admission decision is delegated to a policy.Policy; the default
// (NewServer/NewServerTTL) is the paper's counting rule — at most
// kmax(C) = argmax k·π(C/k) concurrent reservations, each guaranteed the
// worst-case share C/kmax — and NewServerPolicy accepts any policy
// upholding the package's admission invariants (DESIGN.md §12).
//
// Reservations are soft state, in two senses mirroring RSVP:
//   - scoped to their connection — a connection drop releases its flows;
//   - optionally time-limited — with a TTL configured, reservations expire
//     unless the client refreshes them (Client.Refresh / Client.KeepAlive).
//
// The serving plane is built for throughput (DESIGN.md §8):
//   - soft state is lock-striped across shards keyed by a hash of the
//     flow ID, each with its own mutex, flow table, and TTL wheel; the
//     stripe count autotunes from GOMAXPROCS (see shardCountFor);
//   - the admission decision itself is a CAS on a single atomic counter,
//     so concurrent reserves never over-admit and the reject path (and
//     Active/Allocated/Stats) never takes a lock;
//   - TTL expiry is a per-shard hierarchical timing wheel (wheel.go), so a
//     refresh is an O(1) relink and expiry work is proportional to the
//     flows actually expiring — not to all flows, as the old map sweep was;
//   - frame I/O is batched per connection: one read can yield many
//     requests, and their replies coalesce into one write (flush-on-idle).
type Server struct {
	capacity float64
	kmax     int
	ttl      time.Duration
	// byBandwidth switches admission from flow counting to traffic-spec
	// accounting: a request for rate r is admitted iff allocated + r ≤ C.
	byBandwidth bool

	// epoch anchors the wheel's monotonic nanosecond clock; wheelRes is the
	// level-0 tick width (TTL servers only).
	epoch    time.Time
	wheelRes int64

	// pol owns the admission counters: reserve claims a slot through
	// pol.Admit (the built-ins CAS a single atomic bounded by kmax or
	// capacity, so racing clients can never over-admit and a full link is
	// denied lock-free) and every departure path returns it via
	// pol.Release. The server's soft state (shards, wheels, dedup) is
	// policy-independent.
	pol policy.Policy
	// polClock records that pol implements policy.ClockUser and wants the
	// server clock on every decision; clockless policies (the defaults)
	// skip the per-request time read.
	polClock bool

	// epochSeq issues each installed flow a unique, monotonically
	// increasing epoch, so a retransmitted reserve answered from the live
	// entry is observably the same admission (not a second one) and a
	// reincarnated flow ID is observably a different one.
	epochSeq atomic.Uint64

	// shards is the lock-striped soft state; the stripe count is a power
	// of two chosen at construction from GOMAXPROCS, and shardShift is the
	// matching hash shift (64 - log2(len(shards))).
	shards     []shard
	shardShift uint

	// udpMu guards udpPeers, the datagram transport's per-source-address
	// virtual connections (udp.go). A peer's inflight count is also
	// guarded by udpMu; a peer may be reaped only when it owns no flows
	// and no reader goroutine is mid-dispatch on it.
	udpMu    sync.Mutex
	udpPeers map[string]*conn

	// reg/metrics are the server's observability plane (DESIGN.md §9):
	// always on, atomics-only, flushed once per frame batch on the hot
	// path. Registry serves them at /metrics.
	reg     *obs.Registry
	metrics *ServerMetrics

	stop     chan struct{}
	stopOnce sync.Once

	// Logf, if non-nil, receives one line per protocol event; defaults to
	// silent. Set before calling Serve.
	Logf func(format string, args ...interface{})

	// Trace, if non-nil, receives one TraceEvent per admission-path
	// decision (grant, deny, teardown, refresh, expire, release, error),
	// synchronously from the serving goroutine. The hook must be fast and
	// must not call back into the server. Set before calling Serve.
	Trace func(TraceEvent)
}

const (
	// minShards/maxShards bound the autotuned lock-stripe width of the
	// soft-state tables (see shardCountFor). Shard index is a mixed hash
	// of the flow ID, so sequential IDs spread evenly across stripes.
	minShards = 16
	maxShards = 1024

	// readBufSize is the per-connection input buffer — up to ~200 frames
	// per read syscall. writeFlushThreshold flushes the reply buffer
	// mid-batch, bounding per-connection memory under deep pipelines.
	readBufSize         = 4096
	writeFlushThreshold = 16 * 1024

	// wheelResDivisor sets the TTL wheel's resolution to ttl/256 (floored
	// at 1ms, like the old sweeper's ticker, so pathological TTLs cannot
	// busy-loop the expiry goroutine or panic time.NewTicker).
	wheelResDivisor = 256
)

// shard is one lock stripe of the soft-state tables.
type shard struct {
	mu      sync.Mutex
	entries map[uint64]*entry
	free    *entry // spent entry nodes, next-linked, reused by reserves
	wheel   *wheel // TTL expiry index; nil when the server has no TTL
}

// conn tracks one client connection's reservations. Stream transports own
// a net.Conn; datagram peers are virtual connections keyed by source
// address (nc nil, datagram true), created on first datagram and reaped
// once they hold no flows and no dispatch is in flight.
type conn struct {
	nc net.Conn
	// datagram marks a UDP virtual connection: its client retransmits
	// requests, so a duplicate reserve is answered from the live grant
	// instead of erroring (see reserve).
	datagram bool
	// raddr is the peer's address, for logging (nc.RemoteAddr() for
	// stream connections).
	raddr net.Addr
	// inflight counts reader goroutines mid-dispatch on this datagram
	// peer; guarded by Server.udpMu.
	inflight int
	// mu guards flows: the handler goroutine adds and removes, the expiry
	// goroutine removes (always with the flow's shard lock held first).
	mu    sync.Mutex
	flows map[uint64]struct{}
}

// shardCountFor returns the soft-state stripe count for a machine with p
// schedulable CPUs: the next power of two ≥ 8·p, clamped to
// [minShards, maxShards]. The 8× headroom keeps the probability that two
// of p concurrently-served requests contend on one stripe low, while the
// floor preserves the old compile-time width (16) on small machines and
// the cap bounds idle-table memory on very wide ones.
func shardCountFor(p int) int {
	if p < 1 {
		p = 1
	}
	n := minShards
	for n < 8*p && n < maxShards {
		n <<= 1
	}
	return n
}

// shardFor picks a flow's stripe by Fibonacci-hashing its ID.
func (s *Server) shardFor(id uint64) *shard {
	return &s.shards[(id*0x9e3779b97f4a7c15)>>s.shardShift]
}

// now is the wheel clock: nanoseconds since the server's epoch.
func (s *Server) now() int64 {
	return int64(time.Since(s.epoch))
}

// NewServer returns an admission controller for a link of the given
// capacity whose clients run applications with the given utility function.
// Reservations persist until torn down or their connection drops.
func NewServer(capacity float64, util utility.Function) (*Server, error) {
	return NewServerTTL(capacity, util, 0)
}

// NewServerTTL is NewServer with RSVP-style soft state: reservations not
// refreshed within ttl are released. ttl = 0 disables expiry. Servers with
// a TTL run a background expiry goroutine; call Close when done with them.
func NewServerTTL(capacity float64, util utility.Function, ttl time.Duration) (*Server, error) {
	if !(capacity > 0) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("resv: capacity must be positive and finite, got %g", capacity)
	}
	if util == nil {
		return nil, fmt.Errorf("resv: utility must be non-nil")
	}
	kmax, ok := utility.KMax(util, capacity)
	if !ok {
		return nil, fmt.Errorf("resv: utility %q is elastic; admission control does not apply", util.Name())
	}
	if kmax < 1 {
		return nil, fmt.Errorf("resv: capacity %g admits no flows (kmax = %d)", capacity, kmax)
	}
	pol, err := policy.NewCounting(capacity, kmax)
	if err != nil {
		return nil, err
	}
	return buildServer(pol, ttl)
}

// NewServerBandwidth returns an admission controller that accounts the
// paper's traffic specifications literally: a request for rate r is
// admitted while the sum of granted rates stays within capacity, and a
// grant reserves exactly the requested rate. This is the natural mode for
// heterogeneous demands (cf. utility mixtures with per-class Demand).
func NewServerBandwidth(capacity float64, ttl time.Duration) (*Server, error) {
	if !(capacity > 0) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("resv: capacity must be positive and finite, got %g", capacity)
	}
	pol, err := policy.NewBandwidth(capacity)
	if err != nil {
		return nil, err
	}
	return buildServer(pol, ttl)
}

// NewServerPolicy returns an admission controller running the given
// admission policy — the policy owns the admit/release counters, the
// server owns everything else (soft state, TTL wheels, retransmit dedup,
// transports, metrics). Policies implementing policy.Instrumented have
// their gauges registered as resv_policy_<name>; policies implementing
// policy.ClockUser receive the server's monotonic clock on every decision.
func NewServerPolicy(pol policy.Policy, ttl time.Duration) (*Server, error) {
	if pol == nil {
		return nil, fmt.Errorf("resv: policy must be non-nil")
	}
	if !(pol.Capacity() > 0) || math.IsInf(pol.Capacity(), 0) {
		return nil, fmt.Errorf("resv: policy %q has no positive finite capacity", pol.Name())
	}
	if pol.Mode() == policy.ModeCount && pol.Bound() < 1 {
		return nil, fmt.Errorf("resv: counting-mode policy %q admits no flows (bound %d)", pol.Name(), pol.Bound())
	}
	return buildServer(pol, ttl)
}

func buildServer(pol policy.Policy, ttl time.Duration) (*Server, error) {
	if ttl < 0 {
		return nil, fmt.Errorf("resv: TTL must be nonnegative, got %v", ttl)
	}
	s := &Server{
		capacity:    pol.Capacity(),
		kmax:        pol.Bound(),
		ttl:         ttl,
		byBandwidth: pol.Mode() == policy.ModeBandwidth,
		pol:         pol,
		epoch:       time.Now(),
		stop:        make(chan struct{}),
		reg:         obs.New(),
	}
	if cu, ok := pol.(policy.ClockUser); ok && cu.NeedsClock() {
		s.polClock = true
	}
	nshards := shardCountFor(runtime.GOMAXPROCS(0))
	s.shards = make([]shard, nshards)
	s.shardShift = uint(64 - bits.TrailingZeros(uint(nshards)))
	s.metrics = newServerMetrics(s.reg)
	s.reg.GaugeFunc("resv_active_flows", "live reservations", func() float64 {
		return float64(s.pol.Active())
	})
	s.reg.GaugeFunc("resv_allocated", "granted rate sum (bandwidth mode) or active count", s.Allocated)
	s.reg.GaugeFunc("resv_capacity", "link capacity C", func() float64 { return s.capacity })
	s.reg.GaugeFunc("resv_kmax", "admission threshold kmax(C)", func() float64 { return float64(s.kmax) })
	s.reg.GaugeFunc("resv_shards", "soft-state lock stripes", func() float64 { return float64(len(s.shards)) })
	if inst, ok := pol.(policy.Instrumented); ok {
		for _, g := range inst.Gauges() {
			s.reg.GaugeFunc("resv_policy_"+g.Name, g.Help, g.Value)
		}
	}
	for i := range s.shards {
		s.shards[i].entries = make(map[uint64]*entry)
	}
	if ttl > 0 {
		s.wheelRes = int64(ttl) / wheelResDivisor
		if s.wheelRes < int64(time.Millisecond) {
			s.wheelRes = int64(time.Millisecond)
		}
		for i := range s.shards {
			s.shards[i].wheel = newWheel(s.wheelRes)
		}
		go s.expireLoop()
	}
	return s, nil
}

// Allocated returns the sum of granted rates (bandwidth mode) or the
// active reservation count (flow-count mode). Lock-free: safe to poll at
// any rate, concurrently with reserves.
func (s *Server) Allocated() float64 {
	return s.pol.Allocated()
}

// Active returns the current number of reservations. Lock-free.
func (s *Server) Active() int {
	return int(s.pol.Active())
}

// Policy returns the server's admission policy.
func (s *Server) Policy() policy.Policy { return s.pol }

// polNow is the clock handed to the policy: the server's monotonic
// nanosecond clock for policies that asked for one, 0 otherwise — the
// default policies' hot path never pays a time read.
func (s *Server) polNow() int64 {
	if s.polClock {
		return s.now()
	}
	return 0
}

// Capacity returns the link capacity.
func (s *Server) Capacity() float64 { return s.capacity }

// KMax returns the admission threshold.
func (s *Server) KMax() int { return s.kmax }

// TTL returns the soft-state lifetime (0 = no expiry).
func (s *Server) TTL() time.Duration { return s.ttl }

// Shards returns the lock-stripe width of the soft-state tables — the
// runtime-chosen count (shardCountFor of GOMAXPROCS at construction), the
// same value the resv_shards gauge reports.
func (s *Server) Shards() int { return len(s.shards) }

// Metrics returns the server's instrument set. Counters may be read at
// any time (atomic loads); they are updated with per-batch granularity.
func (s *Server) Metrics() *ServerMetrics { return s.metrics }

// Registry returns the server's metrics registry, for snapshotting or
// mounting at /metrics (obs.DebugMux).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Close stops the soft-state expiry goroutine (if any). It does not close
// client connections or the listener.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// expireLoop drives every shard's timing wheel at the wheel resolution.
// Per tick it does work proportional to the flows actually expiring, plus
// one O(1) bucket visit per shard — never a scan of all flows.
func (s *Server) expireLoop() {
	tick := time.NewTicker(time.Duration(s.wheelRes))
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			now := s.now()
			for i := range s.shards {
				sh := &s.shards[i]
				sh.mu.Lock()
				sh.wheel.advance(now, func(e *entry) {
					id := e.id
					s.removeLocked(sh, e, false)
					s.metrics.Expiries.Inc()
					if s.Trace != nil {
						s.Trace(TraceEvent{Kind: TraceExpire, FlowID: id, Active: s.pol.Active()})
					}
					if s.Logf != nil {
						s.logf("resv: expired flow %d (active %d)", id, s.pol.Active())
					}
				})
				sh.mu.Unlock()
			}
		}
	}
}

// Serve accepts connections on ln until ln is closed. It always returns a
// non-nil error (net.ErrClosed after a clean shutdown).
func (s *Server) Serve(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.handle(nc)
	}
}

// HandleConn serves a single already-established connection (e.g. one end
// of a net.Pipe). It returns when the connection fails or closes.
func (s *Server) HandleConn(nc net.Conn) {
	s.handle(nc)
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// handle runs one connection's read→dispatch→reply loop with batched frame
// I/O: every complete frame buffered by one read is decoded and served,
// and the replies coalesce into a single write issued when the batch is
// done (flush-on-idle) or the reply buffer fills. The steady-state
// reserve→grant path allocates nothing.
func (s *Server) handle(nc net.Conn) {
	c := &conn{nc: nc, flows: make(map[uint64]struct{})}
	defer s.release(c)
	s.metrics.Connections.Inc()
	defer s.metrics.Connections.Dec()
	br := bufio.NewReaderSize(nc, readBufSize)
	wbuf := make([]byte, 0, 1024)
	var frames []Frame
	var bs batchStats
	var bc BatchCollector
	for {
		// Block until at least one full frame is buffered.
		if _, err := br.Peek(FrameSize); err != nil {
			// io.EOF with an empty buffer is an orderly close from the
			// peer and net.ErrClosed a local shutdown — neither is an
			// error. Anything else (including a connection cut mid-frame,
			// leaving a partial frame buffered) is logged.
			if s.Logf != nil && !(errors.Is(err, io.EOF) && br.Buffered() == 0) && !errors.Is(err, net.ErrClosed) {
				s.logf("resv: connection %v closed: %v", nc.RemoteAddr(), err)
			}
			return
		}
		data, _ := br.Peek(br.Buffered())
		var rest []byte
		var derr error
		frames, rest, derr = DecodeFrames(frames[:0], data)
		if _, err := br.Discard(len(data) - len(rest)); err != nil {
			return
		}
		// Instrumentation is batch-granular: outcomes tally into plain
		// locals and flush as one set of atomic adds per batch; the two
		// clock reads amortize over every frame the batch coalesced.
		t0 := time.Now()
		for _, f := range frames {
			// A batch body may span read boundaries, so the collector is
			// per-connection state: the header opens it, body frames fill
			// it, and only a completed body dispatches (as one vectored
			// admission answered by one bitmap reply).
			var reply Frame
			switch {
			case bc.Active():
				done, berr := bc.Add(f)
				if berr != nil {
					// The collected prefix is dropped un-admitted; the batch
					// fails as a whole and the offending frame is then
					// served on its own terms.
					wbuf = AppendFrame(wbuf, Frame{Type: MsgError, FlowID: f.FlowID, Value: float64(ErrCodeBadRequest)})
					bs.errs++
					reply = s.dispatch(c, f, &bs)
				} else if done {
					reply = s.dispatchBatch(c, bc.Ops(), &bs)
				} else {
					continue
				}
			case f.Type == MsgReserveBatch:
				if berr := bc.Begin(f); berr != nil {
					reply = Frame{Type: MsgError, FlowID: f.FlowID, Value: float64(ErrCodeBadRequest)}
					bs.errs++
				} else {
					continue
				}
			default:
				reply = s.dispatch(c, f, &bs)
			}
			wbuf = AppendFrame(wbuf, reply)
			if len(wbuf) >= writeFlushThreshold {
				if !s.flush(nc, &wbuf) {
					s.metrics.flushBatch(&bs, len(frames), time.Since(t0))
					return
				}
			}
		}
		s.metrics.flushBatch(&bs, len(frames), time.Since(t0))
		// Flush-on-idle: the decoded batch is fully served and the next
		// read may block, so everything coalesced so far goes out now.
		if !s.flush(nc, &wbuf) {
			return
		}
		if derr != nil {
			s.logf("resv: connection %v closed: %v", nc.RemoteAddr(), derr)
			return
		}
	}
}

// flush writes the coalesced replies in one syscall.
func (s *Server) flush(nc net.Conn, wbuf *[]byte) bool {
	if len(*wbuf) == 0 {
		return true
	}
	_, err := nc.Write(*wbuf)
	*wbuf = (*wbuf)[:0]
	if err != nil {
		s.logf("resv: write to %v failed: %v", nc.RemoteAddr(), err)
		return false
	}
	return true
}

// dispatch serves one frame, tallying its outcome into bs. Counting lives
// here (not in the caller) because only the reserve path can tell a fresh
// grant from a retransmit answered out of the live entry — the two carry
// identical reply frames but must land in different counters.
func (s *Server) dispatch(c *conn, f Frame, bs *batchStats) Frame {
	var reply Frame
	var dup bool
	switch f.Type {
	case MsgRequest:
		reply, dup = s.reserve(c, f)
	case MsgTeardown:
		reply = s.teardown(c, f)
	case MsgRefresh:
		reply = s.refresh(c, f)
	case MsgStats:
		var err error
		reply, err = StatsReplyFrame(s.kmax, s.pol.Active())
		if err != nil { // a policy bound beyond 2^53 flows; unreachable for the built-ins
			reply = Frame{Type: MsgError, FlowID: f.FlowID, Value: float64(ErrCodeBadRequest)}
		}
	default:
		reply = Frame{Type: MsgError, FlowID: f.FlowID, Value: float64(ErrCodeBadRequest)}
	}
	bs.count(f, reply)
	if dup {
		// A re-sent grant is not a second admission: move it from the
		// grant tally to the dup tally so resv_grants_total keeps counting
		// admissions exactly.
		bs.grants--
		bs.dups++
	}
	return reply
}

// dispatchBatch serves one completed MsgReserveBatch body: runs of
// consecutive requests with identical rate and class are admitted through
// one vectored policy claim (policy.AdmitBatch — a single CAS for the
// built-in count/bandwidth/tiered policies), teardown ops go through the
// ordinary teardown path in order, and the whole body is answered with a
// single bitmap reply. Ops are processed in body order, so a batch is
// semantically identical to its ops sent one frame at a time — only the
// admission arithmetic and the reply framing are amortized.
func (s *Server) dispatchBatch(c *conn, ops []Frame, bs *batchStats) Frame {
	var verdict BatchVerdict
	share := 0.0
	for i := 0; i < len(ops); {
		f := ops[i]
		if f.Type == MsgTeardown {
			reply := s.teardown(c, f)
			bs.count(f, reply)
			if reply.Type == MsgTeardownOK {
				verdict |= 1 << uint(i)
			}
			i++
			continue
		}
		j := i + 1
		for j < len(ops) && ops[j].Type == MsgRequest && ops[j].Value == f.Value && ops[j].Class == f.Class {
			j++
		}
		if sh := s.reserveRun(c, ops[i:j], i, &verdict, bs); sh != 0 {
			share = sh
		}
		i = j
	}
	return Frame{Type: MsgReserveBatchReply, FlowID: uint64(verdict), Value: share}
}

// reserveRun admits one run of identical batched requests (same rate and
// class), setting each installed op's bit in verdict. The policy grants a
// prefix of the run in one claim; a granted op whose flow ID is already
// installed rolls its single claim back and keeps its bit clear (batch
// framing is stream-only, so there is no datagram-retransmit re-grant
// case — a duplicate in a batch is simply an error outcome). It returns
// the count-mode grant share when anything was installed, 0 otherwise.
func (s *Server) reserveRun(c *conn, run []Frame, base int, verdict *BatchVerdict, bs *batchStats) float64 {
	n := len(run)
	bs.reserves += uint64(n)
	v := run[0].Value
	if !(v >= 0) || math.IsInf(v, 0) || (s.byBandwidth && !(v > 0)) {
		bs.errs += uint64(n)
		if s.Trace != nil {
			for _, f := range run {
				s.Trace(TraceEvent{Kind: TraceError, FlowID: f.FlowID, Value: float64(ErrCodeBadRequest), Active: s.pol.Active()})
			}
		}
		return 0
	}
	rate := 0.0
	if s.byBandwidth {
		rate = v
	}
	granted, dec := policy.AdmitBatch(s.pol, s.polNow(), run[0].FlowID, v, run[0].Class, n)
	installed := 0
	for i := 0; i < granted; i++ {
		f := run[i]
		if st := s.install(c, f.FlowID, rate); st.kind != installedNew {
			s.pol.Release(s.polNow(), rate) // roll this op's claim back
			bs.errs++
			if s.Trace != nil {
				s.Trace(TraceEvent{Kind: TraceError, FlowID: f.FlowID, Value: float64(ErrCodeDuplicateFlow), Active: s.pol.Active()})
			}
			continue
		}
		*verdict |= 1 << uint(base+i)
		installed++
		bs.grants++
		if s.Trace != nil {
			s.Trace(TraceEvent{Kind: TraceGrant, FlowID: f.FlowID, Value: dec.Share, Active: s.pol.Active()})
		}
	}
	if granted < n {
		bs.denials += uint64(n - granted)
		if s.Trace != nil {
			for _, f := range run[granted:] {
				s.Trace(TraceEvent{Kind: TraceDeny, FlowID: f.FlowID, Value: dec.Load, Active: s.pol.Active()})
			}
		}
	}
	if installed == 0 || s.byBandwidth {
		return 0
	}
	return dec.Share
}

// reserve runs admission control for one request. dup reports that the
// reply is a re-sent grant for an already-installed flow (datagram
// retransmit), not a fresh admission.
//
// The decision itself belongs to the policy: the built-ins claim a slot
// with a CAS bounded by kmax (or capacity, in bandwidth mode), so the
// winners of a race at the boundary are exactly the first bound-n claims
// and a full link is denied from an atomic alone — no shard lock. The
// server's job is the soft state around the decision: install the admitted
// flow, roll the claim back on a duplicate, and answer retransmits of live
// admissions from the entry rather than re-admitting.
func (s *Server) reserve(c *conn, f Frame) (reply Frame, dup bool) {
	if !(f.Value >= 0) || math.IsInf(f.Value, 0) || (s.byBandwidth && !(f.Value > 0)) {
		if s.Trace != nil {
			s.Trace(TraceEvent{Kind: TraceError, FlowID: f.FlowID, Value: float64(ErrCodeBadRequest), Active: s.pol.Active()})
		}
		return Frame{Type: MsgError, FlowID: f.FlowID, Value: float64(ErrCodeBadRequest)}, false
	}
	dec := s.pol.Admit(s.polNow(), f.FlowID, f.Value, f.Class)
	if !dec.Admit {
		// A denial must not reject a datagram retransmit of a live
		// admission — possibly the very admission that filled the link
		// (grant lost, client re-sent). Only the deny path pays the shard
		// lookup; fresh admissions stay lock-free in the policy.
		if c.datagram {
			if st := s.lookupOwn(c, f.FlowID); st.kind == dupOwnConn {
				return s.duplicate(c, f, st, s.pol.Share(st.rate))
			}
		}
		if s.Trace != nil {
			s.Trace(TraceEvent{Kind: TraceDeny, FlowID: f.FlowID, Value: dec.Load, Active: s.pol.Active()})
		}
		if s.Logf != nil {
			if s.byBandwidth {
				s.logf("resv: deny flow %d (allocated %g + %g > capacity %g)", f.FlowID, dec.Load, f.Value, s.capacity)
			} else {
				s.logf("resv: deny flow %d (%s: active %d)", f.FlowID, s.pol.Name(), int64(dec.Load))
			}
		}
		return Frame{Type: MsgDeny, FlowID: f.FlowID, Value: dec.Load}, false
	}
	rate := 0.0
	if s.byBandwidth {
		rate = f.Value
	}
	if st := s.install(c, f.FlowID, rate); st.kind != installedNew {
		s.pol.Release(s.polNow(), rate) // roll the claimed admission back
		// A retransmit is answered with what the original admission
		// granted (its stored rate, or the worst-case share), which need
		// not equal this request's.
		return s.duplicate(c, f, st, s.pol.Share(st.rate))
	}
	// In count mode the grant carries the guaranteed worst-case share
	// C/kmax — the instantaneous share C/min(k, kmax) would be stale the
	// moment another flow is admitted — and in bandwidth mode exactly the
	// requested rate; either way dec.Share is the policy's word.
	if s.Trace != nil {
		s.Trace(TraceEvent{Kind: TraceGrant, FlowID: f.FlowID, Value: dec.Share, Active: s.pol.Active()})
	}
	if s.Logf != nil {
		if s.byBandwidth {
			s.logf("resv: grant flow %d rate %g (allocated %g/%g)", f.FlowID, rate, s.pol.Allocated(), s.capacity)
		} else {
			s.logf("resv: grant flow %d (active %d, share %g)", f.FlowID, s.pol.Active(), dec.Share)
		}
	}
	return Frame{Type: MsgGrant, FlowID: f.FlowID, Value: dec.Share}, false
}

// duplicate resolves a reserve that found its flow ID already installed,
// after the caller rolled back the claimed slot/rate. On a datagram
// connection whose own live flow it is, the reserve is a client
// retransmit whose grant was lost in flight: re-send the grant — the
// entry's epoch ties the reply to the original admission, so the
// retransmit can never double-admit. Everything else is a genuine
// duplicate-flow error.
func (s *Server) duplicate(c *conn, f Frame, st installStatus, value float64) (Frame, bool) {
	if c.datagram && st.kind == dupOwnConn {
		if s.Trace != nil {
			s.Trace(TraceEvent{Kind: TraceGrant, FlowID: f.FlowID, Value: value, Active: s.pol.Active()})
		}
		if s.Logf != nil {
			s.logf("resv: re-grant flow %d (retransmitted reserve)", f.FlowID)
		}
		return Frame{Type: MsgGrant, FlowID: f.FlowID, Value: value}, true
	}
	if s.Trace != nil {
		s.Trace(TraceEvent{Kind: TraceError, FlowID: f.FlowID, Value: float64(ErrCodeDuplicateFlow), Active: s.pol.Active()})
	}
	return Frame{Type: MsgError, FlowID: f.FlowID, Value: float64(ErrCodeDuplicateFlow)}, false
}

// installStatus is install's verdict: the flow was installed, or the ID
// was already taken — by this very connection (a datagram retransmit
// candidate, with the live grant's rate) or by some other owner.
type installStatus struct {
	kind int8 // one of installedNew/dupOwnConn/dupOtherConn
	rate float64
}

const (
	installedNew int8 = iota
	dupOwnConn
	dupOtherConn
)

// lookupOwn reports whether id is already installed, and by whom, without
// touching any state: installedNew means no live entry. Used by the deny
// paths to recognize a datagram retransmit of the admission that filled
// the link.
func (s *Server) lookupOwn(c *conn, id uint64) installStatus {
	sh := s.shardFor(id)
	sh.mu.Lock()
	st := installStatus{kind: installedNew}
	if e, ok := sh.entries[id]; ok {
		st.kind = dupOtherConn
		if e.owner == c {
			st = installStatus{kind: dupOwnConn, rate: e.rate}
		}
	}
	sh.mu.Unlock()
	return st
}

// install records an admitted flow in its shard (and TTL wheel) and on its
// owning connection. On a duplicate flow ID it leaves all state untouched
// and reports who owns the live entry (the caller rolls back its claim and
// decides between a retransmit re-grant and a duplicate error).
func (s *Server) install(c *conn, id uint64, rate float64) installStatus {
	sh := s.shardFor(id)
	sh.mu.Lock()
	if e, dup := sh.entries[id]; dup {
		st := installStatus{kind: dupOtherConn}
		if e.owner == c {
			st = installStatus{kind: dupOwnConn, rate: e.rate}
		}
		sh.mu.Unlock()
		return st
	}
	e := sh.free
	if e != nil {
		sh.free = e.next
		e.next = nil
	} else {
		e = new(entry)
	}
	e.id, e.owner, e.rate = id, c, rate
	e.epoch = s.epochSeq.Add(1)
	sh.entries[id] = e
	if sh.wheel != nil {
		e.deadline = s.now() + int64(s.ttl)
		sh.wheel.insert(e)
	}
	c.mu.Lock()
	c.flows[id] = struct{}{}
	c.mu.Unlock()
	sh.mu.Unlock()
	return installStatus{kind: installedNew}
}

// removeLocked unrecords a flow: wheel, flow table, owning connection, and
// the policy's claim (rate and active count). Callers hold sh.mu; when the
// entry is being expired by the wheel (wheelLinked = false) it is already
// unlinked.
func (s *Server) removeLocked(sh *shard, e *entry, wheelLinked bool) {
	if wheelLinked && sh.wheel != nil {
		e.unlink()
	}
	delete(sh.entries, e.id)
	c := e.owner
	c.mu.Lock()
	delete(c.flows, e.id)
	c.mu.Unlock()
	s.pol.Release(s.polNow(), e.rate)
	e.owner = nil
	e.next = sh.free
	sh.free = e
}

func (s *Server) teardown(c *conn, f Frame) Frame {
	sh := s.shardFor(f.FlowID)
	sh.mu.Lock()
	e, ok := sh.entries[f.FlowID]
	if !ok || e.owner != c {
		sh.mu.Unlock()
		return Frame{Type: MsgError, FlowID: f.FlowID, Value: float64(ErrCodeUnknownFlow)}
	}
	s.removeLocked(sh, e, true)
	sh.mu.Unlock()
	active := s.pol.Active()
	if s.Trace != nil {
		s.Trace(TraceEvent{Kind: TraceTeardown, FlowID: f.FlowID, Active: active})
	}
	if s.Logf != nil {
		s.logf("resv: teardown flow %d (active %d)", f.FlowID, active)
	}
	return Frame{Type: MsgTeardownOK, FlowID: f.FlowID, Value: float64(active)}
}

// refresh renews a reservation's soft-state deadline: an O(1) relink into
// the wheel bucket owning the new deadline.
func (s *Server) refresh(c *conn, f Frame) Frame {
	sh := s.shardFor(f.FlowID)
	sh.mu.Lock()
	e, ok := sh.entries[f.FlowID]
	if !ok || e.owner != c {
		sh.mu.Unlock()
		return Frame{Type: MsgError, FlowID: f.FlowID, Value: float64(ErrCodeUnknownFlow)}
	}
	if sh.wheel != nil {
		e.unlink()
		e.deadline = s.now() + int64(s.ttl)
		sh.wheel.insert(e)
	}
	sh.mu.Unlock()
	if s.Trace != nil {
		s.Trace(TraceEvent{Kind: TraceRefresh, FlowID: f.FlowID, Value: s.ttl.Seconds(), Active: s.pol.Active()})
	}
	return Frame{Type: MsgRefreshOK, FlowID: f.FlowID, Value: s.ttl.Seconds()}
}

// release frees every reservation held by a departing connection.
func (s *Server) release(c *conn) {
	_ = c.nc.Close()
	c.mu.Lock()
	ids := make([]uint64, 0, len(c.flows))
	for id := range c.flows {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	n := 0
	for _, id := range ids {
		sh := s.shardFor(id)
		sh.mu.Lock()
		// The flow may have expired or been torn down since the snapshot;
		// only entries still owned by this connection are released.
		if e, ok := sh.entries[id]; ok && e.owner == c {
			s.removeLocked(sh, e, true)
			n++
			if s.Trace != nil {
				s.Trace(TraceEvent{Kind: TraceRelease, FlowID: id, Active: s.pol.Active()})
			}
		}
		sh.mu.Unlock()
	}
	if n > 0 {
		s.metrics.Releases.Add(uint64(n))
		s.logf("resv: released %d reservations from %v", n, c.nc.RemoteAddr())
	}
}
