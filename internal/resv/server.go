package resv

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"beqos/internal/utility"
)

// Server is a single-link admission controller speaking the resv protocol.
// Admission policy follows the paper: at most kmax(C) = argmax k·π(C/k)
// concurrent reservations, each guaranteed the worst-case share C/kmax.
//
// Reservations are soft state, in two senses mirroring RSVP:
//   - scoped to their connection — a connection drop releases its flows;
//   - optionally time-limited — with a TTL configured, reservations expire
//     unless the client refreshes them (Client.Refresh / Client.KeepAlive).
type Server struct {
	capacity float64
	kmax     int
	ttl      time.Duration
	// byBandwidth switches admission from flow counting to traffic-spec
	// accounting: a request for rate r is admitted iff allocated + r ≤ C.
	byBandwidth bool

	mu        sync.Mutex
	owners    map[uint64]*conn     // flowID → owning connection
	expires   map[uint64]time.Time // flowID → soft-state deadline (TTL > 0)
	rates     map[uint64]float64   // flowID → granted rate (bandwidth mode)
	allocated float64              // Σ granted rates (bandwidth mode)

	stop     chan struct{}
	stopOnce sync.Once

	// Logf, if non-nil, receives one line per protocol event; defaults to
	// silent. Set before calling Serve.
	Logf func(format string, args ...interface{})
}

// conn tracks one client connection's reservations.
type conn struct {
	nc    net.Conn
	flows map[uint64]struct{}
}

// NewServer returns an admission controller for a link of the given
// capacity whose clients run applications with the given utility function.
// Reservations persist until torn down or their connection drops.
func NewServer(capacity float64, util utility.Function) (*Server, error) {
	return NewServerTTL(capacity, util, 0)
}

// NewServerTTL is NewServer with RSVP-style soft state: reservations not
// refreshed within ttl are released. ttl = 0 disables expiry. Servers with
// a TTL run a background sweeper; call Close when done with them.
func NewServerTTL(capacity float64, util utility.Function, ttl time.Duration) (*Server, error) {
	if !(capacity > 0) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("resv: capacity must be positive and finite, got %g", capacity)
	}
	if util == nil {
		return nil, fmt.Errorf("resv: utility must be non-nil")
	}
	if ttl < 0 {
		return nil, fmt.Errorf("resv: TTL must be nonnegative, got %v", ttl)
	}
	kmax, ok := utility.KMax(util, capacity)
	if !ok {
		return nil, fmt.Errorf("resv: utility %q is elastic; admission control does not apply", util.Name())
	}
	if kmax < 1 {
		return nil, fmt.Errorf("resv: capacity %g admits no flows (kmax = %d)", capacity, kmax)
	}
	s := &Server{
		capacity: capacity,
		kmax:     kmax,
		ttl:      ttl,
		owners:   make(map[uint64]*conn),
		expires:  make(map[uint64]time.Time),
		rates:    make(map[uint64]float64),
		stop:     make(chan struct{}),
	}
	if ttl > 0 {
		go s.sweep()
	}
	return s, nil
}

// NewServerBandwidth returns an admission controller that accounts the
// paper's traffic specifications literally: a request for rate r is
// admitted while the sum of granted rates stays within capacity, and a
// grant reserves exactly the requested rate. This is the natural mode for
// heterogeneous demands (cf. utility mixtures with per-class Demand).
func NewServerBandwidth(capacity float64, ttl time.Duration) (*Server, error) {
	if !(capacity > 0) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("resv: capacity must be positive and finite, got %g", capacity)
	}
	if ttl < 0 {
		return nil, fmt.Errorf("resv: TTL must be nonnegative, got %v", ttl)
	}
	s := &Server{
		capacity:    capacity,
		byBandwidth: true,
		ttl:         ttl,
		owners:      make(map[uint64]*conn),
		expires:     make(map[uint64]time.Time),
		rates:       make(map[uint64]float64),
		stop:        make(chan struct{}),
	}
	if ttl > 0 {
		go s.sweep()
	}
	return s, nil
}

// Allocated returns the sum of granted rates (bandwidth mode) or the
// active reservation count (flow-count mode).
func (s *Server) Allocated() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byBandwidth {
		return s.allocated
	}
	return float64(len(s.owners))
}

// Close stops the soft-state sweeper (if any). It does not close client
// connections or the listener.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// TTL returns the soft-state lifetime (0 = no expiry).
func (s *Server) TTL() time.Duration { return s.ttl }

// sweep periodically releases expired reservations.
func (s *Server) sweep() {
	// A quarter TTL keeps expiry latency well under one TTL; the floor
	// keeps time.NewTicker from panicking on sub-4ns TTLs (ttl/4 == 0)
	// and stops pathological TTLs from turning the sweeper into a busy
	// loop.
	period := s.ttl / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-tick.C:
			s.mu.Lock()
			for id, deadline := range s.expires {
				if now.After(deadline) {
					if c := s.owners[id]; c != nil {
						delete(c.flows, id)
					}
					delete(s.owners, id)
					delete(s.expires, id)
					s.releaseRateLocked(id)
					s.logf("resv: expired flow %d (active %d)", id, len(s.owners))
				}
			}
			s.mu.Unlock()
		}
	}
}

// Capacity returns the link capacity.
func (s *Server) Capacity() float64 { return s.capacity }

// KMax returns the admission threshold.
func (s *Server) KMax() int { return s.kmax }

// Active returns the current number of reservations.
func (s *Server) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.owners)
}

// Serve accepts connections on ln until ln is closed. It always returns a
// non-nil error (net.ErrClosed after a clean shutdown).
func (s *Server) Serve(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.handle(nc)
	}
}

// HandleConn serves a single already-established connection (e.g. one end
// of a net.Pipe). It returns when the connection fails or closes.
func (s *Server) HandleConn(nc net.Conn) {
	s.handle(nc)
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) handle(nc net.Conn) {
	c := &conn{nc: nc, flows: make(map[uint64]struct{})}
	defer s.release(c)
	for {
		f, err := ReadFrame(nc)
		if err != nil {
			// io.EOF is an orderly close from the peer and net.ErrClosed a
			// local shutdown — neither is an error. Anything else (including
			// io.ErrUnexpectedEOF, a connection cut mid-frame) is logged.
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("resv: connection %v closed: %v", nc.RemoteAddr(), err)
			}
			return
		}
		var reply Frame
		switch f.Type {
		case MsgRequest:
			reply = s.reserve(c, f)
		case MsgTeardown:
			reply = s.teardown(c, f)
		case MsgRefresh:
			reply = s.refresh(c, f)
		case MsgStats:
			s.mu.Lock()
			reply = Frame{Type: MsgStatsReply, FlowID: uint64(s.kmax), Value: float64(len(s.owners))}
			s.mu.Unlock()
		default:
			reply = Frame{Type: MsgError, FlowID: f.FlowID, Value: float64(ErrCodeBadRequest)}
		}
		if err := WriteFrame(nc, reply); err != nil {
			s.logf("resv: write to %v failed: %v", nc.RemoteAddr(), err)
			return
		}
	}
}

// reserve runs admission control for one request.
func (s *Server) reserve(c *conn, f Frame) Frame {
	if !(f.Value >= 0) || math.IsInf(f.Value, 0) || (s.byBandwidth && !(f.Value > 0)) {
		return Frame{Type: MsgError, FlowID: f.FlowID, Value: float64(ErrCodeBadRequest)}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.owners[f.FlowID]; dup {
		return Frame{Type: MsgError, FlowID: f.FlowID, Value: float64(ErrCodeDuplicateFlow)}
	}
	if s.byBandwidth {
		if s.allocated+f.Value > s.capacity+1e-12 {
			s.logf("resv: deny flow %d (allocated %g + %g > capacity %g)",
				f.FlowID, s.allocated, f.Value, s.capacity)
			return Frame{Type: MsgDeny, FlowID: f.FlowID, Value: s.allocated}
		}
		s.owners[f.FlowID] = c
		c.flows[f.FlowID] = struct{}{}
		s.rates[f.FlowID] = f.Value
		s.allocated += f.Value
		if s.ttl > 0 {
			s.expires[f.FlowID] = time.Now().Add(s.ttl)
		}
		s.logf("resv: grant flow %d rate %g (allocated %g/%g)", f.FlowID, f.Value, s.allocated, s.capacity)
		return Frame{Type: MsgGrant, FlowID: f.FlowID, Value: f.Value}
	}
	if len(s.owners) >= s.kmax {
		s.logf("resv: deny flow %d (active %d ≥ kmax %d)", f.FlowID, len(s.owners), s.kmax)
		return Frame{Type: MsgDeny, FlowID: f.FlowID, Value: float64(len(s.owners))}
	}
	s.owners[f.FlowID] = c
	c.flows[f.FlowID] = struct{}{}
	if s.ttl > 0 {
		s.expires[f.FlowID] = time.Now().Add(s.ttl)
	}
	// The instantaneous share C/min(k, kmax) changes with every arrival and
	// departure, so a snapshot C/active would be stale the moment another
	// flow is admitted. Grant the guaranteed worst-case share C/kmax — the
	// floor the flow keeps no matter how full the link gets.
	share := s.capacity / float64(s.kmax)
	s.logf("resv: grant flow %d (active %d, share %g)", f.FlowID, len(s.owners), share)
	return Frame{Type: MsgGrant, FlowID: f.FlowID, Value: share}
}

// releaseRateLocked returns a flow's rate to the pool (bandwidth mode).
// Callers hold s.mu.
func (s *Server) releaseRateLocked(id uint64) {
	if rate, ok := s.rates[id]; ok {
		s.allocated -= rate
		if s.allocated < 0 {
			s.allocated = 0
		}
		delete(s.rates, id)
	}
}

func (s *Server) teardown(c *conn, f Frame) Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	owner, ok := s.owners[f.FlowID]
	if !ok || owner != c {
		return Frame{Type: MsgError, FlowID: f.FlowID, Value: float64(ErrCodeUnknownFlow)}
	}
	delete(s.owners, f.FlowID)
	delete(c.flows, f.FlowID)
	delete(s.expires, f.FlowID)
	s.releaseRateLocked(f.FlowID)
	s.logf("resv: teardown flow %d (active %d)", f.FlowID, len(s.owners))
	return Frame{Type: MsgTeardownOK, FlowID: f.FlowID, Value: float64(len(s.owners))}
}

// refresh renews a reservation's soft-state deadline.
func (s *Server) refresh(c *conn, f Frame) Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	owner, ok := s.owners[f.FlowID]
	if !ok || owner != c {
		return Frame{Type: MsgError, FlowID: f.FlowID, Value: float64(ErrCodeUnknownFlow)}
	}
	if s.ttl > 0 {
		s.expires[f.FlowID] = time.Now().Add(s.ttl)
	}
	return Frame{Type: MsgRefreshOK, FlowID: f.FlowID, Value: s.ttl.Seconds()}
}

// release frees every reservation held by a departing connection.
func (s *Server) release(c *conn) {
	_ = c.nc.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := range c.flows {
		delete(s.owners, id)
		delete(s.expires, id)
		s.releaseRateLocked(id)
	}
	if n := len(c.flows); n > 0 {
		s.logf("resv: released %d reservations from %v", n, c.nc.RemoteAddr())
	}
}
