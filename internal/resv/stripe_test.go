package resv

import (
	"context"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"beqos/internal/utility"
)

// TestConcurrentReservesNeverOverAdmit races M clients at the kmax
// boundary: exactly kmax of their simultaneous requests may win, the rest
// must be denied, and the books must balance afterwards. This is the
// regression test for the CAS-bounded admission claim — a read-then-lock
// design would over-admit here.
func TestConcurrentReservesNeverOverAdmit(t *testing.T) {
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	const kmax = 8
	const clients = 64
	s, err := NewServer(kmax, r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for round := 0; round < 20; round++ {
		cls := make([]*Client, clients)
		for i := range cls {
			cEnd, sEnd := net.Pipe()
			go s.HandleConn(sEnd)
			cls[i] = NewClient(cEnd)
		}
		ctx := context.Background()
		var granted atomic.Int64
		var start, done sync.WaitGroup
		start.Add(1)
		for i, cl := range cls {
			done.Add(1)
			go func(cl *Client, id uint64) {
				defer done.Done()
				start.Wait() // maximize the race at the boundary
				ok, share, err := cl.Reserve(ctx, id, 1)
				if err != nil {
					t.Errorf("reserve flow %d: %v", id, err)
					return
				}
				if ok {
					granted.Add(1)
					if share != float64(kmax)/float64(kmax) {
						t.Errorf("flow %d: share %g, want C/kmax = 1", id, share)
					}
				}
			}(cl, uint64(round*clients+i+1))
		}
		start.Done()
		done.Wait()
		if g := granted.Load(); g != kmax {
			t.Fatalf("round %d: granted %d of %d simultaneous requests, want exactly kmax = %d", round, g, clients, kmax)
		}
		if a := s.Active(); a != kmax {
			t.Fatalf("round %d: active = %d, want %d", round, a, kmax)
		}
		for _, cl := range cls {
			cl.Close()
		}
		waitActive(t, s, 0) // connection-scoped release drains everything
	}
}

// TestStatsLockFreeUnderLoad hammers the lock-free observers
// (Active/Allocated and the Stats RPC — the loadgen probe's sample path)
// concurrently with reserve/teardown churn. Run under -race this checks
// the atomics carry all cross-goroutine state; invariants check the
// counters never escape [0, kmax].
func TestStatsLockFreeUnderLoad(t *testing.T) {
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	const kmax = 16
	s, err := NewServer(kmax, r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Churners: reserve/teardown loops over disjoint flow IDs.
	for w := 0; w < 8; w++ {
		cEnd, sEnd := net.Pipe()
		go s.HandleConn(sEnd)
		cl := NewClient(cEnd)
		wg.Add(1)
		go func(cl *Client, id uint64) {
			defer wg.Done()
			defer cl.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ok, _, err := cl.Reserve(ctx, id, 1)
				if err != nil {
					t.Errorf("reserve flow %d: %v", id, err)
					return
				}
				if ok {
					if err := cl.Teardown(ctx, id); err != nil {
						t.Errorf("teardown flow %d: %v", id, err)
						return
					}
				}
			}
		}(cl, uint64(w+1))
	}
	// Observers: direct accessor hammering plus the Stats RPC.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if a := s.Active(); a < 0 || a > kmax {
					t.Errorf("Active() = %d outside [0, %d]", a, kmax)
					return
				}
				if al := s.Allocated(); al < 0 || al > kmax {
					t.Errorf("Allocated() = %g outside [0, %d]", al, kmax)
					return
				}
			}
		}()
	}
	cEnd, sEnd := net.Pipe()
	go s.HandleConn(sEnd)
	statsCl := NewClient(cEnd)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer statsCl.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			k, active, err := statsCl.Stats(ctx)
			if err != nil {
				t.Errorf("stats: %v", err)
				return
			}
			if k != kmax || active < 0 || active > kmax {
				t.Errorf("stats: kmax=%d active=%d, want kmax=%d active in [0,%d]", k, active, kmax, kmax)
				return
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		_ = s.Active()
	}
	close(stop)
	wg.Wait()
}

// TestShardDistribution checks the flow-ID hash actually stripes:
// sequential IDs — the worst case for a naive id%N shard map — must spread
// across every shard the server chose at startup.
func TestShardDistribution(t *testing.T) {
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(8, r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	nshards := s.Shards()
	ids := uint64(64 * nshards)
	seen := make(map[*shard]int)
	for id := uint64(1); id <= ids; id++ {
		seen[s.shardFor(id)]++
	}
	if len(seen) != nshards {
		t.Fatalf("sequential IDs hit %d of %d shards", len(seen), nshards)
	}
	for sh, n := range seen {
		if n > 4*int(ids)/nshards {
			t.Errorf("shard %p got %d of %d IDs — badly skewed", sh, n, ids)
		}
	}
}

// TestShardAutotune checks the GOMAXPROCS-driven shard sizing: the count
// must be a power of two (the shift-based shardFor depends on it), never
// below the minShards floor that preserves the old fixed constant, and the
// server must report the runtime-chosen count through Shards().
func TestShardAutotune(t *testing.T) {
	cases := []struct {
		procs, want int
	}{
		{1, 16}, {2, 16}, {3, 32}, {4, 32}, {8, 64}, {16, 128}, {100, 1024}, {200, 1024},
	}
	for _, tc := range cases {
		if got := shardCountFor(tc.procs); got != tc.want {
			t.Errorf("shardCountFor(%d) = %d, want %d", tc.procs, got, tc.want)
		}
	}
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(8, r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := s.Shards()
	if n != shardCountFor(runtime.GOMAXPROCS(0)) {
		t.Errorf("Shards() = %d, want shardCountFor(GOMAXPROCS) = %d", n, shardCountFor(runtime.GOMAXPROCS(0)))
	}
	if n&(n-1) != 0 || n < minShards || n > maxShards {
		t.Errorf("Shards() = %d: want a power of two in [%d, %d]", n, minShards, maxShards)
	}
}
