package resv

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"time"
)

// The datagram transport (DESIGN.md §11): reserve/refresh/teardown over
// UDP, one frame per datagram, sharing the stream transport's wire codec
// and admission semantics. There are no connections to scope soft state
// to, so reliability inverts: the *client* retransmits requests on a reply
// timeout, and the server makes every request safe to retransmit —
// reserve dedups against the live entry (re-sending the grant, never
// admitting twice), refresh is naturally idempotent, and a lost teardown
// is healed by the soft-state TTL. Run datagram servers with a TTL;
// without one, flows whose teardowns are lost leak until the peer
// re-reserves them.
//
// Each distinct source address gets a virtual connection (a *conn with no
// net.Conn), so ownership checks, duplicate detection, and the flow
// accounting are exactly the stream transport's. Peers are reaped as soon
// as they hold no flows and no dispatch is in flight; a silent peer whose
// flows all expired lingers only until its next datagram or reap.

// maxUDPReaders bounds the fixed reader pool ServePacket spawns.
const maxUDPReaders = 8

// udpReaderCount sizes the reader pool: one reader per schedulable CPU,
// at least 2 (so a reader mid-dispatch never idles the socket), at most
// maxUDPReaders (more readers than cores just shuffle the same work).
func udpReaderCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	if n > maxUDPReaders {
		n = maxUDPReaders
	}
	return n
}

// ServePacket serves the resv protocol in datagram mode on pc until pc is
// closed or fails. It always returns a non-nil error (net.ErrClosed after
// a clean shutdown). A small fixed pool of reader goroutines feeds the
// sharded admission plane; replies go back to each datagram's source
// address. ServePacket may run concurrently with Serve on the same
// Server — stream and datagram clients share one admission state.
func (s *Server) ServePacket(pc net.PacketConn) error {
	readers := udpReaderCount()
	errc := make(chan error, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errc <- s.readPackets(pc)
		}()
	}
	err := <-errc
	// The first failure wins; closing pc unblocks the remaining readers.
	_ = pc.Close()
	wg.Wait()
	return err
}

// readPackets is one reader-pool goroutine: read a datagram, decode the
// one frame it must carry, dispatch it on the source address's virtual
// connection, and send the reply. Malformed datagrams are counted and
// dropped without a reply — a reply to garbage would let spoofed junk
// turn the server into a reflector.
func (s *Server) readPackets(pc net.PacketConn) error {
	// One spare byte detects oversized datagrams without a second read.
	var buf [FrameSize + 1]byte
	var wbuf [FrameSize]byte
	var bs batchStats
	for {
		n, addr, err := pc.ReadFrom(buf[:])
		if err != nil {
			return err
		}
		s.metrics.Datagrams.Inc()
		f, derr := DecodeDatagram(buf[:n])
		if derr != nil {
			s.metrics.BadDatagrams.Inc()
			if s.Logf != nil {
				s.logf("resv: dropped datagram from %v: %v", addr, derr)
			}
			continue
		}
		t0 := time.Now()
		key, c := s.acquireUDPPeer(addr)
		reply := s.dispatch(c, f, &bs)
		s.releaseUDPPeer(key, c)
		s.metrics.flushBatch(&bs, 1, time.Since(t0))
		putFrame(&wbuf, reply)
		if _, err := pc.WriteTo(wbuf[:], addr); err != nil {
			// A reply that cannot be sent is indistinguishable from one
			// lost in flight: the client retransmits, and the dispatch
			// above already made that safe. Keep serving unless the
			// socket itself died.
			if errors.Is(err, net.ErrClosed) {
				return err
			}
			if s.Logf != nil {
				s.logf("resv: reply to %v failed: %v", addr, err)
			}
		}
	}
}

// acquireUDPPeer resolves addr to its virtual connection, creating one on
// first contact, and marks a dispatch in flight so a concurrent reader
// cannot reap the peer between lookup and install.
func (s *Server) acquireUDPPeer(addr net.Addr) (string, *conn) {
	key := addr.String()
	s.udpMu.Lock()
	c := s.udpPeers[key]
	if c == nil {
		c = &conn{datagram: true, raddr: addr, flows: make(map[uint64]struct{})}
		if s.udpPeers == nil {
			s.udpPeers = make(map[string]*conn)
		}
		s.udpPeers[key] = c
		s.metrics.UDPPeers.Inc()
	}
	c.inflight++
	s.udpMu.Unlock()
	return key, c
}

// releaseUDPPeer ends a dispatch and reaps the peer if it is now idle and
// holds no flows. Flows removed later by TTL expiry or teardown leave the
// peer to be reaped on its next datagram.
func (s *Server) releaseUDPPeer(key string, c *conn) {
	s.udpMu.Lock()
	c.inflight--
	if c.inflight == 0 {
		c.mu.Lock()
		idle := len(c.flows) == 0
		c.mu.Unlock()
		if idle {
			delete(s.udpPeers, key)
			s.metrics.UDPPeers.Dec()
		}
	}
	s.udpMu.Unlock()
}
