package resv

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"beqos/internal/obs"
	"beqos/internal/utility"
)

// The datagram-transport tests run against real UDP sockets on loopback
// with *deterministic* fault injection in the client's connection wrapper:
// dropping an outgoing frame models request loss, dropping an incoming one
// models reply loss. Loopback never reorders or loses datagrams of this
// size on its own, so every retransmission in these tests is one the
// filter forced — the assertions on Grants/DupReserves/Expiries are exact.

// filterConn wraps a datagram connection with deterministic loss. sendDrop
// inspects each outgoing frame and recvDrop each incoming one; returning
// true swallows the datagram. Filters run under a mutex, so closures may
// keep plain counters.
type filterConn struct {
	net.Conn
	mu       sync.Mutex
	sendDrop func(Frame) bool
	recvDrop func(Frame) bool
}

func (fc *filterConn) Write(b []byte) (int, error) {
	if f, err := DecodeDatagram(b); err == nil {
		fc.mu.Lock()
		drop := fc.sendDrop != nil && fc.sendDrop(f)
		fc.mu.Unlock()
		if drop {
			return len(b), nil // request loss: the server never sees it
		}
	}
	return fc.Conn.Write(b)
}

func (fc *filterConn) Read(b []byte) (int, error) {
	for {
		n, err := fc.Conn.Read(b)
		if err != nil {
			return n, err
		}
		if f, derr := DecodeDatagram(b[:n]); derr == nil {
			fc.mu.Lock()
			drop := fc.recvDrop != nil && fc.recvDrop(f)
			fc.mu.Unlock()
			if drop {
				continue // reply loss: the client never sees it
			}
		}
		return n, err
	}
}

// startUDPServer serves s in datagram mode on a loopback socket.
func startUDPServer(t *testing.T, s *Server) net.Addr {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.ServePacket(pc) }()
	t.Cleanup(func() { _ = pc.Close() })
	return pc.LocalAddr()
}

// dialUDPTest connects a datagram client through a loss filter.
func dialUDPTest(t *testing.T, addr net.Addr, cfg UDPConfig) (*Client, *filterConn) {
	t.Helper()
	nc, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	fc := &filterConn{Conn: nc}
	cl := NewUDPClient(fc, cfg)
	t.Cleanup(func() { _ = cl.Close() })
	return cl, fc
}

// fastUDP keeps retransmission tests quick without shaving margins so thin
// that scheduler hiccups masquerade as packet loss.
var fastUDP = UDPConfig{Timeout: 50 * time.Millisecond, MaxFlights: 4}

// TestUDPBasicRoundTrips drives the lossless datagram path end to end:
// reserve, stats, refresh, teardown, with the datagram counters moving.
func TestUDPBasicRoundTrips(t *testing.T) {
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServerTTL(4, r, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := startUDPServer(t, s)
	cl, _ := dialUDPTest(t, addr, fastUDP)
	c := ctx(t)

	ok, share, err := cl.Reserve(c, 1, 1)
	if err != nil || !ok {
		t.Fatalf("reserve: ok=%v err=%v", ok, err)
	}
	if share != 1 { // C/kmax = 4/4
		t.Errorf("share = %g, want 1", share)
	}
	if kmax, active, err := cl.Stats(c); err != nil || kmax != 4 || active != 1 {
		t.Errorf("stats = (%d, %d, %v), want (4, 1, nil)", kmax, active, err)
	}
	if ttl, err := cl.Refresh(c, 1); err != nil || ttl != time.Second {
		t.Errorf("refresh = (%v, %v), want (1s, nil)", ttl, err)
	}
	if err := cl.Teardown(c, 1); err != nil {
		t.Errorf("teardown: %v", err)
	}
	if a := s.Active(); a != 0 {
		t.Errorf("active = %d after teardown, want 0", a)
	}
	m := s.Metrics()
	if got := m.Datagrams.Load(); got != 4 {
		t.Errorf("datagrams = %d, want 4", got)
	}
	if got := m.UDPPeers.Load(); got != 0 {
		t.Errorf("udp peers = %d after teardown, want 0 (peer reaped)", got)
	}
}

// TestUDPRetransmitAtFullLink pins the nastiest dedup corner: the lost
// grant's own admission filled the link, so the retransmitted reserve
// arrives at active == kmax. The fast-path deny must not fire before the
// dedup lookup — the server must recognize the live entry and re-grant,
// in both admission modes.
func TestUDPRetransmitAtFullLink(t *testing.T) {
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	flowCount, err := NewServerTTL(1, r, time.Second) // kmax = 1
	if err != nil {
		t.Fatal(err)
	}
	bandwidth, err := NewServerBandwidth(1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*Server{"flow-count": flowCount, "bandwidth": bandwidth} {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			addr := startUDPServer(t, s)
			cl, fc := dialUDPTest(t, addr, fastUDP)

			dropped := false
			fc.recvDrop = func(f Frame) bool {
				if f.Type == MsgGrant && !dropped {
					dropped = true
					return true
				}
				return false
			}
			ok, share, err := cl.Reserve(ctx(t), 9, 1)
			if err != nil || !ok {
				t.Fatalf("reserve: ok=%v err=%v (a full-link retransmit was denied?)", ok, err)
			}
			if share != 1 {
				t.Errorf("re-granted share = %g, want the original grant's 1", share)
			}
			if !dropped {
				t.Fatal("filter never dropped a grant; the test exercised nothing")
			}
			m := s.Metrics()
			if g, d, den := m.Grants.Load(), m.DupReserves.Load(), m.Denials.Load(); g != 1 || d != 1 || den != 0 {
				t.Errorf("grants=%d dups=%d denials=%d, want 1, 1, 0", g, d, den)
			}
			if a := s.Active(); a != 1 {
				t.Errorf("active = %d, want 1", a)
			}
		})
	}
}

// TestUDPRetransmitNoDoubleAdmit is the core retransmit-semantics check:
// a reserve whose grant is lost is retransmitted, and the server answers
// from the live entry — re-sending the grant, never admitting twice.
func TestUDPRetransmitNoDoubleAdmit(t *testing.T) {
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServerTTL(4, r, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := startUDPServer(t, s)
	cl, fc := dialUDPTest(t, addr, fastUDP)
	cm := NewClientMetrics(obs.New())
	cl.SetMetrics(cm)

	dropped := false
	fc.recvDrop = func(f Frame) bool {
		if f.Type == MsgGrant && !dropped {
			dropped = true
			return true
		}
		return false
	}
	ok, share, err := cl.Reserve(ctx(t), 7, 1)
	if err != nil || !ok {
		t.Fatalf("reserve: ok=%v err=%v", ok, err)
	}
	if share != 1 {
		t.Errorf("re-granted share = %g, want the original grant's 1", share)
	}
	if !dropped {
		t.Fatal("filter never dropped a grant; the test exercised nothing")
	}
	if a := s.Active(); a != 1 {
		t.Errorf("active = %d, want 1 — retransmitted reserve must not double-admit", a)
	}
	m := s.Metrics()
	if g := m.Grants.Load(); g != 1 {
		t.Errorf("server grants = %d, want 1 (admissions only)", g)
	}
	if d := m.DupReserves.Load(); d != 1 {
		t.Errorf("dup reserves = %d, want 1 (one re-sent grant)", d)
	}
	if rt := cm.Retransmits.Load(); rt != 1 {
		t.Errorf("client retransmits = %d, want 1", rt)
	}
}

// TestUDPRequestLossRetransmit covers the other loss direction: the
// request itself vanishes, the retransmit is the first copy the server
// sees, and exactly one admission results.
func TestUDPRequestLossRetransmit(t *testing.T) {
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServerTTL(4, r, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := startUDPServer(t, s)
	cl, fc := dialUDPTest(t, addr, fastUDP)

	dropped := false
	fc.sendDrop = func(f Frame) bool {
		if f.Type == MsgRequest && !dropped {
			dropped = true
			return true
		}
		return false
	}
	ok, _, err := cl.Reserve(ctx(t), 9, 1)
	if err != nil || !ok {
		t.Fatalf("reserve: ok=%v err=%v", ok, err)
	}
	m := s.Metrics()
	if g, d := m.Grants.Load(), m.DupReserves.Load(); g != 1 || d != 0 {
		t.Errorf("grants = %d, dups = %d; want 1 admission and no dup (server saw one copy)", g, d)
	}
}

// TestUDPRefreshIdempotentUnderLoss keeps a reservation alive across a TTL
// horizon while every other refresh reply is lost: the retransmitted
// refreshes are idempotent renewals, so the flow must survive until the
// keep-alive stops — and then expire.
func TestUDPRefreshIdempotentUnderLoss(t *testing.T) {
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	const ttl = 400 * time.Millisecond
	s, err := NewServerTTL(4, r, ttl)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := startUDPServer(t, s)
	cl, fc := dialUDPTest(t, addr, UDPConfig{Timeout: 25 * time.Millisecond, MaxFlights: 4})

	if ok, _, err := cl.Reserve(ctx(t), 3, 1); err != nil || !ok {
		t.Fatalf("reserve: ok=%v err=%v", ok, err)
	}
	n := 0
	fc.recvDrop = func(f Frame) bool {
		if f.Type != MsgRefreshOK {
			return false
		}
		n++
		return n%2 == 1 // every other refresh reply lost
	}
	// Refresh across two TTL horizons. Each refresh may need a retransmit
	// (~25ms); an 80ms cadence renews well inside the 400ms TTL anyway.
	deadline := time.Now().Add(2 * ttl)
	for time.Now().Before(deadline) {
		if _, err := cl.Refresh(ctx(t), 3); err != nil {
			t.Fatalf("refresh: %v", err)
		}
		time.Sleep(80 * time.Millisecond)
	}
	if a := s.Active(); a != 1 {
		t.Fatalf("active = %d after refreshing across 2×TTL under loss, want 1", a)
	}
	if n < 2 {
		t.Fatalf("filter saw %d refresh replies; loss injection exercised nothing", n)
	}
	// Stop refreshing: the soft state must now expire on its own.
	waitActive(t, s, 0)
	if e := s.Metrics().Expiries.Load(); e != 1 {
		t.Errorf("expiries = %d, want 1", e)
	}
}

// TestUDPTeardownLossHealedByTTL loses every copy of a teardown: the
// client reports the failure, the reservation lingers, and the soft-state
// TTL — not the signaling — releases it.
func TestUDPTeardownLossHealedByTTL(t *testing.T) {
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServerTTL(4, r, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := startUDPServer(t, s)
	cl, fc := dialUDPTest(t, addr, UDPConfig{Timeout: 10 * time.Millisecond, MaxFlights: 2})

	if ok, _, err := cl.Reserve(ctx(t), 5, 1); err != nil || !ok {
		t.Fatalf("reserve: ok=%v err=%v", ok, err)
	}
	fc.sendDrop = func(f Frame) bool { return f.Type == MsgTeardown }
	err = cl.Teardown(ctx(t), 5)
	if err == nil || !strings.Contains(err.Error(), "no reply") {
		t.Fatalf("teardown with every copy lost: err = %v, want a no-reply failure", err)
	}
	if a := s.Active(); a != 1 {
		t.Fatalf("active = %d right after lost teardown, want 1 (server never heard it)", a)
	}
	waitActive(t, s, 0) // TTL heals the leak
	m := s.Metrics()
	if e := m.Expiries.Load(); e != 1 {
		t.Errorf("expiries = %d, want 1", e)
	}
	if td := m.Teardowns.Load(); td != 0 {
		t.Errorf("teardowns = %d, want 0 — the release must be the TTL's", td)
	}
}

// TestUDPTeardownReplyLossSynthesized loses only the teardown's
// confirmation: the retransmit finds the flow already gone, the server
// answers "unknown flow", and the client recognizes that as success.
func TestUDPTeardownReplyLossSynthesized(t *testing.T) {
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServerTTL(4, r, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := startUDPServer(t, s)
	cl, fc := dialUDPTest(t, addr, fastUDP)

	if ok, _, err := cl.Reserve(ctx(t), 11, 1); err != nil || !ok {
		t.Fatalf("reserve: ok=%v err=%v", ok, err)
	}
	dropped := false
	fc.recvDrop = func(f Frame) bool {
		if f.Type == MsgTeardownOK && !dropped {
			dropped = true
			return true
		}
		return false
	}
	if err := cl.Teardown(ctx(t), 11); err != nil {
		t.Fatalf("teardown with lost confirmation: %v, want nil (unknown-flow after retransmit means done)", err)
	}
	if !dropped {
		t.Fatal("filter never dropped a teardown-ok; the test exercised nothing")
	}
	if a := s.Active(); a != 0 {
		t.Errorf("active = %d, want 0", a)
	}
}

// TestUDPMalformedDatagramsDropped sends garbage at the server: it must
// count and drop it without replying (no reflection) and keep serving.
func TestUDPMalformedDatagramsDropped(t *testing.T) {
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(4, r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := startUDPServer(t, s)
	nc, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	for _, junk := range [][]byte{
		[]byte("x"),                       // runt
		make([]byte, FrameSize-1),         // one byte short
		make([]byte, FrameSize+1),         // one byte long
		make([]byte, 64),                  // oversized zeros
		AppendFrame(nil, Frame{Type: 99}), // right size, bad type
	} {
		if _, err := nc.Write(junk); err != nil {
			t.Fatal(err)
		}
	}
	cl, _ := dialUDPTest(t, addr, fastUDP)
	if _, _, err := cl.Stats(ctx(t)); err != nil {
		t.Fatalf("stats after garbage: %v — server stopped serving", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Metrics().BadDatagrams.Load() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("bad datagrams = %d, want 5", s.Metrics().BadDatagrams.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if p := s.Metrics().UDPPeers.Load(); p != 0 {
		t.Errorf("udp peers = %d, want 0 (garbage sources never become peers; the stats peer was reaped)", p)
	}
}

// TestDecodeDatagram pins the exact-size contract of the datagram codec.
func TestDecodeDatagram(t *testing.T) {
	wire := AppendFrame(nil, Frame{Type: MsgRequest, FlowID: 42, Value: 1.5})
	f, err := DecodeDatagram(wire)
	if err != nil || f.Type != MsgRequest || f.FlowID != 42 || f.Value != 1.5 {
		t.Fatalf("DecodeDatagram(valid) = %+v, %v", f, err)
	}
	for _, n := range []int{0, 1, FrameSize - 1, FrameSize + 1, 2 * FrameSize} {
		b := append(append([]byte{}, wire...), wire...)[:n]
		if _, err := DecodeDatagram(b); err == nil {
			t.Errorf("DecodeDatagram(%d bytes) = nil error, want ErrBadFrame", n)
		}
	}
}
