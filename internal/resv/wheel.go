package resv

// The soft-state expiry index: a two-level hierarchical timing wheel, one
// per shard. The old design swept the entire expiry map on a ticker —
// O(flows) per tick whether or not anything was due. The wheel keeps every
// TTL deadline in a bucket keyed by its deadline tick, so a refresh is an
// O(1) unlink + relink and an advance only touches entries that actually
// expire (plus one coarse-bucket cascade every wheelSlots ticks).
//
// Level 0 buckets are one resolution tick wide and cover the next
// wheelSlots ticks; level 1 buckets are wheelSlots ticks wide and cover
// wheelSlots× that horizon. Deadlines beyond level 1 simply take extra
// laps: each cascade re-bins them until they fall within a finer window.
// All buckets are circular lists threaded through the entries themselves
// (sentinel-headed), so linking and unlinking never allocate.

const (
	wheelBits  = 6
	wheelSlots = 1 << wheelBits // 64 buckets per level
	wheelMask  = wheelSlots - 1
)

// entry is one reservation's soft state: the value of its shard's flow
// table and, on TTL servers, an intrusive node in the shard's timing wheel.
type entry struct {
	id    uint64
	owner *conn
	rate  float64 // granted rate (bandwidth mode; 0 in flow-count mode)
	// epoch is the admission's unique sequence number (Server.epochSeq):
	// a retransmitted reserve answered from this entry is the SAME
	// admission (same epoch), while a reserve that reincarnates a torn
	// down or expired flow ID installs a fresh entry with a new epoch.
	epoch uint64
	// deadline is the soft-state expiry instant in nanoseconds since the
	// server's epoch; meaningful only on TTL servers.
	deadline int64
	// next/prev link the entry into a wheel bucket (circular, sentinel
	// headed). Freed entries reuse next as the shard free-list link.
	next, prev *entry
}

// unlink removes e from its bucket. Safe only while e is linked.
func (e *entry) unlink() {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.next, e.prev = nil, nil
}

// wheel is the two-level timing wheel. All methods are called under the
// owning shard's mutex.
type wheel struct {
	res  int64 // nanoseconds per level-0 tick
	tick int64 // next unprocessed tick: every entry with deadline/res < tick has been expired or re-binned
	// slots are circular-list sentinels; an empty bucket points at itself.
	slots [2][wheelSlots]entry
}

func newWheel(res int64) *wheel {
	w := &wheel{res: res}
	for l := range w.slots {
		for i := range w.slots[l] {
			s := &w.slots[l][i]
			s.next, s.prev = s, s
		}
	}
	return w
}

// insert links e into the bucket owning its deadline. Deadlines whose tick
// has already been processed land in the imminent level-0 bucket and expire
// on the next advance.
func (w *wheel) insert(e *entry) {
	dt := e.deadline / w.res
	if dt < w.tick {
		dt = w.tick
	}
	var s *entry
	if dt-w.tick < wheelSlots {
		s = &w.slots[0][dt&wheelMask]
	} else {
		s = &w.slots[1][(dt>>wheelBits)&wheelMask]
	}
	e.prev = s.prev
	e.next = s
	s.prev.next = e
	s.prev = e
}

// advance processes every tick now has fully passed and calls expire for
// each entry that is due. Tick t is processed only once now/res > t, i.e.
// once now is past the tick's *end* — so an entry expires strictly after
// its deadline, never at it. A flow refreshed exactly at its TTL boundary
// has therefore always been relinked before its old bucket drains.
func (w *wheel) advance(now int64, expire func(*entry)) {
	for nowTick := now / w.res; w.tick < nowTick; w.tick++ {
		t := w.tick
		if t&wheelMask == 0 {
			w.cascade(t)
		}
		s := &w.slots[0][t&wheelMask]
		for e := s.next; e != s; {
			next := e.next
			e.unlink()
			expire(e)
			e = next
		}
	}
}

// cascade lazily re-bins the level-1 bucket covering the level-0 window
// that starts at tick t: entries due inside the window drop to level 0,
// entries a full lap (or more) away go back into level 1.
func (w *wheel) cascade(t int64) {
	s := &w.slots[1][(t>>wheelBits)&wheelMask]
	// Detach the whole list first: a re-binned entry may land back in this
	// very bucket (another lap out) and must not be rescanned now.
	head := s.next
	s.next, s.prev = s, s
	for e := head; e != s; {
		next := e.next
		e.next, e.prev = nil, nil
		w.insert(e)
		e = next
	}
}
