package resv

import (
	"context"
	"net"
	"testing"
	"time"

	"beqos/internal/utility"
)

// collectExpired advances w to now and returns the expired flow IDs.
func collectExpired(w *wheel, now int64) []uint64 {
	var ids []uint64
	w.advance(now, func(e *entry) { ids = append(ids, e.id) })
	return ids
}

func TestWheelExpiresAfterDeadlineNeverAt(t *testing.T) {
	w := newWheel(10)
	e := &entry{id: 1, deadline: 50}
	w.insert(e)
	// At the deadline itself (and anywhere inside its tick) nothing may
	// expire: tick 5 is only processed once now is past its end (now ≥ 60).
	for _, now := range []int64{0, 49, 50, 59} {
		if got := collectExpired(w, now); len(got) != 0 {
			t.Fatalf("advance(%d) expired %v; deadline 50 must survive to its tick end", now, got)
		}
	}
	if got := collectExpired(w, 60); len(got) != 1 || got[0] != 1 {
		t.Fatalf("advance(60) expired %v, want [1]", got)
	}
}

func TestWheelRefreshRelinksBeforeExpiry(t *testing.T) {
	// The off-by-one-bucket hazard: a flow refreshed exactly at its TTL
	// boundary (new deadline set while the old bucket is still pending)
	// must survive the advance that drains the old bucket.
	w := newWheel(10)
	e := &entry{id: 7, deadline: 100}
	w.insert(e)
	// Refresh at t = 100 — exactly the old deadline.
	e.unlink()
	e.deadline = 100 + 100
	w.insert(e)
	if got := collectExpired(w, 110); len(got) != 0 {
		t.Fatalf("refreshed flow expired by old bucket: %v", got)
	}
	if got := collectExpired(w, 210); len(got) != 1 || got[0] != 7 {
		t.Fatalf("advance(210) expired %v, want [7]", got)
	}
}

func TestWheelCascadeLevels(t *testing.T) {
	// Deadlines beyond the level-0 horizon (64 ticks) must cascade down
	// and still expire strictly after their deadline.
	w := newWheel(1)
	for _, tc := range []struct {
		id       uint64
		deadline int64
	}{
		{1, 10},    // level 0
		{2, 100},   // level 1
		{3, 4000},  // level 1, same lap
		{4, 40000}, // multiple laps through level 1
	} {
		w.insert(&entry{id: tc.id, deadline: tc.deadline})
	}
	expired := make(map[uint64]int64)
	for now := int64(0); now <= 50000; now += 7 {
		w.advance(now, func(e *entry) { expired[e.id] = now })
	}
	want := map[uint64]int64{1: 10, 2: 100, 3: 4000, 4: 40000}
	for id, dl := range want {
		at, ok := expired[id]
		if !ok {
			t.Errorf("flow %d (deadline %d) never expired", id, dl)
			continue
		}
		if at <= dl {
			t.Errorf("flow %d expired at %d, not strictly after deadline %d", id, at, dl)
		}
		if at > dl+wheelSlots+7 {
			t.Errorf("flow %d expired at %d, far past deadline %d", id, at, dl)
		}
	}
}

func TestWheelUnlinkRemoves(t *testing.T) {
	w := newWheel(1)
	keep := &entry{id: 1, deadline: 5}
	gone := &entry{id: 2, deadline: 5}
	w.insert(keep)
	w.insert(gone)
	gone.unlink() // teardown before expiry
	if got := collectExpired(w, 100); len(got) != 1 || got[0] != 1 {
		t.Fatalf("expired %v, want [1]", got)
	}
}

func TestWheelPastDeadlineStillExpires(t *testing.T) {
	// A deadline whose tick was already processed must land in an imminent
	// bucket, not be lost for a full wheel lap.
	w := newWheel(1)
	w.advance(100, func(e *entry) { t.Fatalf("unexpected expiry of %d", e.id) })
	w.insert(&entry{id: 9, deadline: 3}) // long past
	if got := collectExpired(w, 102); len(got) != 1 || got[0] != 9 {
		t.Fatalf("expired %v, want [9]", got)
	}
}

// TestRefreshAtTTLBoundaryNotExpired is the end-to-end form of the
// off-by-one-bucket regression: against a live TTL server, a refresh
// landing right at the deadline must keep the reservation alive for a
// fresh TTL.
func TestRefreshAtTTLBoundaryNotExpired(t *testing.T) {
	r, err := utility.NewRigid(1)
	if err != nil {
		t.Fatal(err)
	}
	const ttl = 300 * time.Millisecond
	s, err := NewServerTTL(4, r, ttl)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cEnd, sEnd := net.Pipe()
	go s.HandleConn(sEnd)
	cl := NewClient(cEnd)
	defer cl.Close()
	ctx := context.Background()
	ok, _, err := cl.Reserve(ctx, 1, 1)
	if err != nil || !ok {
		t.Fatalf("reserve: ok=%v err=%v", ok, err)
	}
	// Refresh as close to the TTL deadline as a real-time test can get.
	time.Sleep(ttl - 20*time.Millisecond)
	if _, err := cl.Refresh(ctx, 1); err != nil {
		t.Fatalf("refresh at boundary: %v", err)
	}
	// Well past the original deadline, within the refreshed one.
	time.Sleep(ttl / 2)
	if s.Active() != 1 {
		t.Fatalf("flow expired despite boundary refresh: active = %d", s.Active())
	}
	// And with no further refresh it must still expire.
	deadline := time.Now().Add(3 * ttl)
	for s.Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("flow never expired after refreshes stopped")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
