package rng

import (
	"math"
	"testing"

	"beqos/internal/dist"
)

// TestPoissonGoldenValues pins the sampler's exact output for fixed seeds,
// so any change to the PTRS implementation (constants, draw order, the
// 30-mean crossover) is caught as a determinism break, not a silent
// statistics shift.
func TestPoissonGoldenValues(t *testing.T) {
	golden := map[float64][]int{
		31:      {28, 34, 29, 39, 32, 34, 29, 25},
		100:     {104, 86, 97, 102, 93, 107, 103, 109},
		1000:    {1013, 1006, 976, 1001, 1018, 995, 956, 999},
		12345.6: {12307, 12242, 12518, 12322, 12360, 12447, 12267, 12350},
	}
	s := New(7, 11)
	for _, mean := range []float64{31, 100, 1000, 12345.6} {
		for i, want := range golden[mean] {
			if got := s.Poisson(mean); got != want {
				t.Errorf("Poisson(%g) draw %d = %d, want %d", mean, i, got, want)
			}
		}
	}
	// Two identically seeded sources must agree draw for draw at any mean.
	a, b := New(3, 9), New(3, 9)
	for i := 0; i < 2000; i++ {
		mean := 0.5 + float64(i%80)
		if va, vb := a.Poisson(mean), b.Poisson(mean); va != vb {
			t.Fatalf("draw %d (mean %g): %d vs %d", i, mean, va, vb)
		}
	}
}

// TestPoissonChiSquaredGOF checks the PTRS sampler's distribution against
// the exact Poisson PMF with a chi-squared goodness-of-fit test at the
// paper's k̄ = 100 regime. Everything is seeded, so the statistic is
// deterministic; the bound is the χ²(df) p ≈ 0.999 critical value.
func TestPoissonChiSquaredGOF(t *testing.T) {
	const (
		mean = 100.0
		n    = 200000
		lo   = 70 // pool k < lo and k > hi into tail bins
		hi   = 130
	)
	d, err := dist.NewPoisson(mean)
	if err != nil {
		t.Fatal(err)
	}
	s := New(13, 37)
	counts := make([]int, hi-lo+3) // [below | lo..hi | above]
	for i := 0; i < n; i++ {
		k := s.Poisson(mean)
		switch {
		case k < lo:
			counts[0]++
		case k > hi:
			counts[len(counts)-1]++
		default:
			counts[k-lo+1]++
		}
	}
	var chi2 float64
	for bin, obs := range counts {
		var p float64
		switch bin {
		case 0:
			p = d.CDF(lo - 1)
		case len(counts) - 1:
			p = d.TailProb(hi)
		default:
			p = d.PMF(lo + bin - 1)
		}
		exp := p * n
		if exp < 5 {
			t.Fatalf("bin %d expected count %v too small for chi-squared", bin, exp)
		}
		diff := float64(obs) - exp
		chi2 += diff * diff / exp
	}
	// df = 62 bins − 1; χ²_{0.999, 61} ≈ 101. A broken sampler (wrong
	// constants, biased squeeze) lands orders of magnitude above this.
	if chi2 > 101 {
		t.Errorf("chi-squared = %v over %d bins, exceeds the 0.999 critical value 101", chi2, len(counts))
	}
}

// TestPoissonLargeMeanMoments covers the PTRS-only regime well past the
// old chunked method's comfortable range.
func TestPoissonLargeMeanMoments(t *testing.T) {
	s := New(21, 4)
	for _, mean := range []float64{31, 300, 5000} {
		const n = 50000
		var sum, sq float64
		for i := 0; i < n; i++ {
			x := float64(s.Poisson(mean))
			sum += x
			sq += x * x
		}
		m := sum / n
		v := sq/n - m*m
		if math.Abs(m-mean) > 0.02*mean {
			t.Errorf("poisson(%g) mean = %v", mean, m)
		}
		if math.Abs(v-mean) > 0.06*mean {
			t.Errorf("poisson(%g) variance = %v, want ≈ mean", mean, v)
		}
	}
}

// TestSubstreamIndependence pins Substream's derivation and sanity-checks
// decorrelation between neighboring substreams.
func TestSubstreamGolden(t *testing.T) {
	s1, s2 := Substream(7, 11, 0)
	if s1 != 0x63cbe1e459320dd7 || s2 != 0x760fec77aacb280e {
		t.Errorf("Substream(7,11,0) = %#x, %#x", s1, s2)
	}
	s1, s2 = Substream(7, 11, 1)
	if s1 != 0xe6984080bab12a02 || s2 != 0x812e6299272e6df0 {
		t.Errorf("Substream(7,11,1) = %#x, %#x", s1, s2)
	}
}

func TestSubstreamDecorrelated(t *testing.T) {
	// Streams from adjacent indices must not track each other.
	a1, a2 := Substream(42, 43, 5)
	b1, b2 := Substream(42, 43, 6)
	sa, sb := New(a1, a2), New(b1, b2)
	same := 0
	for i := 0; i < 1000; i++ {
		if sa.IntN(1000) == sb.IntN(1000) {
			same++
		}
	}
	// Expect ~1 collision per 1000 draws for independent streams.
	if same > 20 {
		t.Errorf("adjacent substreams collide %d/1000 times", same)
	}
}

func BenchmarkPoisson(b *testing.B) {
	s := New(1, 2)
	for _, mean := range []float64{10, 100, 1000} {
		b.Run(formatMean(mean), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = s.Poisson(mean)
			}
		})
	}
}

func formatMean(m float64) string {
	switch m {
	case 10:
		return "mean10"
	case 100:
		return "mean100"
	default:
		return "mean1000"
	}
}
