// Package rng provides the deterministic random samplers used by the
// flow-level simulator: exponential, Poisson, Pareto, and inversion
// sampling from any discrete load distribution. All samplers draw from an
// explicit source so simulations are reproducible from a seed.
package rng

import (
	"fmt"
	"math"
	"math/rand/v2"

	"beqos/internal/dist"
)

// Source is a seeded random source. It wraps math/rand/v2's PCG generator.
type Source struct {
	r *rand.Rand
}

// New returns a deterministic source seeded from the two words.
func New(seed1, seed2 uint64) *Source {
	return &Source{r: rand.New(rand.NewPCG(seed1, seed2))}
}

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// IntN returns a uniform integer in [0, n).
func (s *Source) IntN(n int) int { return s.r.IntN(n) }

// Exp returns an exponential variate with the given mean.
func (s *Source) Exp(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Poisson returns a Poisson variate with the given mean. Small means use
// Knuth's product method; larger means are split into chunks so the method
// stays numerically exact (the product method underflows past mean ≈ 700,
// and slows linearly, so chunking keeps both properties acceptable for the
// simulator's mean ≈ 100 regime).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	total := 0
	for mean > 30 {
		total += s.poissonKnuth(30)
		mean -= 30
	}
	return total + s.poissonKnuth(mean)
}

func (s *Source) poissonKnuth(mean float64) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Pareto returns a Pareto variate with scale xm > 0 and shape alpha > 0:
// P(X > x) = (xm/x)^alpha for x ≥ xm.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return xm * math.Pow(u, -1/alpha)
}

// DiscreteSampler draws variates from an arbitrary dist.Discrete by
// inversion against a cached CDF table, falling back to quantile search in
// the far tail so heavy-tailed distributions remain exact.
type DiscreteSampler struct {
	d   dist.Discrete
	cdf []float64 // cdf[k] = CDF(k)
}

// NewDiscreteSampler builds a sampler for d. The table covers the bulk of
// the distribution (to the 1−2⁻³⁰ quantile).
func NewDiscreteSampler(d dist.Discrete) (*DiscreteSampler, error) {
	if d == nil {
		return nil, fmt.Errorf("rng: nil distribution")
	}
	top := d.Quantile(1 - math.Pow(2, -30))
	if top < 1 {
		top = 1
	}
	cdf := make([]float64, top+1)
	for k := 0; k <= top; k++ {
		cdf[k] = d.CDF(k)
	}
	return &DiscreteSampler{d: d, cdf: cdf}, nil
}

// Sample draws one variate.
func (ds *DiscreteSampler) Sample(s *Source) int {
	u := s.Float64()
	// Binary search the cached table.
	lo, hi := 0, len(ds.cdf)-1
	if u <= ds.cdf[hi] {
		for lo < hi {
			mid := lo + (hi-lo)/2
			if ds.cdf[mid] >= u {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
	// Far tail: exact quantile search on the distribution itself.
	return ds.d.Quantile(u)
}
