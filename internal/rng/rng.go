// Package rng provides the deterministic random samplers used by the
// flow-level simulator: exponential, Poisson, Pareto, and inversion
// sampling from any discrete load distribution. All samplers draw from an
// explicit source so simulations are reproducible from a seed.
package rng

import (
	"fmt"
	"math"
	"math/rand/v2"

	"beqos/internal/dist"
)

// Source is a seeded random source. It wraps math/rand/v2's PCG generator.
type Source struct {
	r *rand.Rand
}

// New returns a deterministic source seeded from the two words.
func New(seed1, seed2 uint64) *Source {
	return &Source{r: rand.New(rand.NewPCG(seed1, seed2))}
}

// Substream derives the i-th independent substream seed pair from a base
// seed via SplitMix64 finalization. Each (base, i) maps to a decorrelated
// PCG seed pair, so parallel replications can draw from disjoint streams
// that depend only on the base seed and the replicate index — never on
// scheduling order.
func Substream(seed1, seed2 uint64, i uint64) (uint64, uint64) {
	const golden = 0x9e3779b97f4a7c15
	return splitmix64(seed1 + (2*i+1)*golden), splitmix64(seed2 ^ (2*i+2)*golden)
}

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood 2014).
func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// IntN returns a uniform integer in [0, n).
func (s *Source) IntN(n int) int { return s.r.IntN(n) }

// Exp returns an exponential variate with the given mean.
func (s *Source) Exp(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Poisson returns a Poisson variate with the given mean. Small means use
// Knuth's product method (expected mean+1 uniforms); means above 30 use
// Hörmann's PTRS transformed-rejection sampler, which draws an expected
// O(1) uniforms at any mean — constant time where the previously used
// chunked product method was linear in the mean (~mean/30 inner loops at
// the simulator's k̄ ≈ 100 regime).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		return s.poissonPTRS(mean)
	}
	return s.poissonKnuth(mean)
}

func (s *Source) poissonKnuth(mean float64) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// poissonPTRS is Hörmann's PTRS algorithm ("The transformed rejection
// method for generating Poisson random variables", 1993), exact for
// mean ≥ 10: a transformed uniform proposes k, a squeeze accepts the bulk
// with one comparison, and the rare leftover goes through the exact
// log-density test. Acceptance probability stays above ≈ 0.92 for all
// means, so the expected number of uniforms drawn is constant.
func (s *Source) poissonPTRS(mean float64) int {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMean := math.Log(mean)
	for {
		u := s.r.Float64() - 0.5
		v := s.r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logMean-mean-lg {
			return int(k)
		}
	}
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return s.r.NormFloat64()*stddev + mean
}

// LogNormal returns exp(Normal(mu, sigma)). Note mu and sigma are the
// log-scale parameters, not the variate's mean and deviation: the mean is
// exp(mu + sigma²/2).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Gamma returns a gamma variate with the given shape k > 0 and scale
// θ > 0 (mean k·θ) via Marsaglia & Tsang's squeeze method ("A simple
// method for generating gamma variables", 2000). Shapes below 1 use the
// boosting identity Gamma(k) = Gamma(k+1)·U^(1/k).
func (s *Source) Gamma(shape, scale float64) float64 {
	if shape < 1 {
		u := s.Float64()
		for u == 0 {
			u = s.Float64()
		}
		return s.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = s.r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := s.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Pareto returns a Pareto variate with scale xm > 0 and shape alpha > 0:
// P(X > x) = (xm/x)^alpha for x ≥ xm.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return xm * math.Pow(u, -1/alpha)
}

// DiscreteSampler draws variates from an arbitrary dist.Discrete by
// inversion against a cached CDF table, falling back to quantile search in
// the far tail so heavy-tailed distributions remain exact.
type DiscreteSampler struct {
	d   dist.Discrete
	cdf []float64 // cdf[k] = CDF(k)
}

// NewDiscreteSampler builds a sampler for d. The table covers the bulk of
// the distribution (to the 1−2⁻³⁰ quantile).
func NewDiscreteSampler(d dist.Discrete) (*DiscreteSampler, error) {
	if d == nil {
		return nil, fmt.Errorf("rng: nil distribution")
	}
	top := d.Quantile(1 - math.Pow(2, -30))
	if top < 1 {
		top = 1
	}
	cdf := make([]float64, top+1)
	for k := 0; k <= top; k++ {
		cdf[k] = d.CDF(k)
	}
	return &DiscreteSampler{d: d, cdf: cdf}, nil
}

// Sample draws one variate.
func (ds *DiscreteSampler) Sample(s *Source) int {
	u := s.Float64()
	// Binary search the cached table.
	lo, hi := 0, len(ds.cdf)-1
	if u <= ds.cdf[hi] {
		for lo < hi {
			mid := lo + (hi-lo)/2
			if ds.cdf[mid] >= u {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
	// Far tail: exact quantile search on the distribution itself.
	return ds.d.Quantile(u)
}
